// Unit tests for the netlist partitioner (src/partition) and the BBD solver
// (sparse/bbd.hpp): plan invariants, determinism, numeric parity against the
// monolithic LU, the refactor path, parallel execution, and the injected
// Schur pivot failure feeding Newton's rescue ladder.
#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sparse/bbd.hpp"
#include "sparse/lu.hpp"
#include "sparse/triplet.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace wavepipe {
namespace {

using partition::PartitionOptions;
using partition::PartitionPattern;
using partition::PartitionTelemetry;
using sparse::BbdPlan;
using sparse::BbdSolver;
using sparse::CscMatrix;
using sparse::SparseLu;
using sparse::TripletBuilder;

/// Diagonally dominant tridiagonal system — a 1D resistor chain's Jacobian.
CscMatrix MakeChain(int n, double diag = 4.0) {
  TripletBuilder builder(n, n);
  for (int i = 0; i < n; ++i) {
    builder.Add(i, i, diag + 0.01 * i);
    if (i + 1 < n) {
      builder.Add(i, i + 1, -1.0);
      builder.Add(i + 1, i, -1.0);
    }
  }
  return builder.ToCsc();
}

/// rows x cols 5-point grid Laplacian with a dominant diagonal.
CscMatrix MakeGrid(int rows, int cols) {
  const int n = rows * cols;
  TripletBuilder builder(n, n);
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      builder.Add(id(r, c), id(r, c), 5.0 + 0.001 * id(r, c));
      if (c + 1 < cols) {
        builder.Add(id(r, c), id(r, c + 1), -1.0);
        builder.Add(id(r, c + 1), id(r, c), -1.0);
      }
      if (r + 1 < rows) {
        builder.Add(id(r, c), id(r + 1, c), -1.0);
        builder.Add(id(r + 1, c), id(r, c), -1.0);
      }
    }
  }
  return builder.ToCsc();
}

std::vector<double> MakeRhs(int n) {
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rhs[static_cast<std::size_t>(i)] = std::sin(0.3 * i) + 2.0;
  }
  return rhs;
}

/// max|a - b| over the vectors.
double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(Partitioner, SinglePieceIsTrivial) {
  const CscMatrix m = MakeChain(12);
  const auto plan = PartitionPattern(m, 1);
  EXPECT_EQ(plan->num_pieces, 1);
  EXPECT_EQ(plan->dimension, 12);
  EXPECT_TRUE(plan->interface_nodes.empty());
  ASSERT_EQ(plan->interiors.size(), 1u);
  EXPECT_EQ(plan->interiors[0].size(), 12u);
  for (int p : plan->piece_of) EXPECT_EQ(p, 0);
  EXPECT_TRUE(plan->Validate(m));
}

TEST(Partitioner, RequestClampsToDimension) {
  const CscMatrix m = MakeChain(5);
  const auto plan = PartitionPattern(m, 64);
  EXPECT_LE(plan->num_pieces, 5);
  EXPECT_TRUE(plan->Validate(m));
  // Every unknown lands somewhere: interior or interface.
  std::size_t assigned = plan->interface_nodes.size();
  for (const auto& interior : plan->interiors) assigned += interior.size();
  EXPECT_EQ(assigned, 5u);
}

TEST(Partitioner, ChainPartitionIsThinAndBalanced) {
  const CscMatrix m = MakeChain(100);
  PartitionTelemetry telem;
  PartitionOptions options;
  options.pieces = 4;
  const auto plan = PartitionPattern(m, options, &telem);
  EXPECT_TRUE(plan->Validate(m));
  // A chain's separator is one vertex per piece boundary.
  EXPECT_LE(plan->interface_nodes.size(), 3u);
  EXPECT_EQ(telem.interface_size, plan->interface_nodes.size());
  EXPECT_LT(plan->Imbalance(), 1.25);
  EXPECT_GE(plan->SmallestPiece(), 1u);
}

TEST(Partitioner, GridPartitionSeparatorHoldsAndRefinementHelps) {
  const CscMatrix m = MakeGrid(24, 6);
  PartitionTelemetry telem;
  PartitionOptions options;
  options.pieces = 4;
  const auto plan = PartitionPattern(m, options, &telem);
  EXPECT_TRUE(plan->Validate(m));
  EXPECT_GT(plan->interface_nodes.size(), 0u);
  EXPECT_LE(telem.edge_cut_after, telem.edge_cut_before);
  // local_index is consistent with the block orders.
  for (std::size_t k = 0; k < plan->interiors.size(); ++k) {
    for (std::size_t i = 0; i < plan->interiors[k].size(); ++i) {
      const int g = plan->interiors[k][i];
      EXPECT_EQ(plan->piece_of[static_cast<std::size_t>(g)], static_cast<int>(k));
      EXPECT_EQ(plan->local_index[static_cast<std::size_t>(g)], static_cast<int>(i));
    }
  }
  for (std::size_t i = 0; i < plan->interface_nodes.size(); ++i) {
    const int g = plan->interface_nodes[i];
    EXPECT_EQ(plan->piece_of[static_cast<std::size_t>(g)], BbdPlan::kInterface);
    EXPECT_EQ(plan->local_index[static_cast<std::size_t>(g)], static_cast<int>(i));
  }
}

TEST(Partitioner, DeterministicAcrossCalls) {
  const CscMatrix m = MakeGrid(16, 8);
  const auto a = PartitionPattern(m, 4);
  const auto b = PartitionPattern(m, 4);
  EXPECT_EQ(a->piece_of, b->piece_of);
  EXPECT_EQ(a->interface_nodes, b->interface_nodes);
  EXPECT_EQ(a->interiors, b->interiors);
}

TEST(Partitioner, DisconnectedGraphReseedsCleanly) {
  // Two unconnected chains in one matrix.
  const int half = 10;
  TripletBuilder builder(2 * half, 2 * half);
  for (int block = 0; block < 2; ++block) {
    const int base = block * half;
    for (int i = 0; i < half; ++i) {
      builder.Add(base + i, base + i, 4.0);
      if (i + 1 < half) {
        builder.Add(base + i, base + i + 1, -1.0);
        builder.Add(base + i + 1, base + i, -1.0);
      }
    }
  }
  const CscMatrix m = builder.ToCsc();
  const auto plan = PartitionPattern(m, 2);
  EXPECT_TRUE(plan->Validate(m));
  std::size_t assigned = plan->interface_nodes.size();
  for (const auto& interior : plan->interiors) assigned += interior.size();
  EXPECT_EQ(assigned, static_cast<std::size_t>(2 * half));
}

TEST(Partitioner, ValidateRejectsCrossPieceCoupling) {
  const CscMatrix m = MakeChain(4);
  // Hand-built plan splitting the chain 0,1 | 2,3 with NO separator: the
  // (1,2) entry couples two interiors, which Validate must flag.
  auto plan = std::make_shared<BbdPlan>();
  plan->num_pieces = 2;
  plan->dimension = 4;
  plan->piece_of = {0, 0, 1, 1};
  plan->interiors = {{0, 1}, {2, 3}};
  plan->local_index = {0, 1, 0, 1};
  EXPECT_FALSE(plan->Validate(m));
}

TEST(BbdSolverTest, MatchesMonolithicOnChainAndGrid) {
  for (int pieces : {2, 4}) {
    for (const CscMatrix& m : {MakeChain(60), MakeGrid(12, 5)}) {
      const int n = m.cols();
      SparseLu mono;
      mono.Factor(m);
      std::vector<double> x_mono = MakeRhs(n), ws;
      mono.Solve(x_mono, ws);

      BbdSolver bbd;
      bbd.Configure(PartitionPattern(m, pieces), m);
      bbd.FactorOrRefactor(m, nullptr);
      std::vector<double> x_bbd = MakeRhs(n);
      bbd.Solve(x_bbd, nullptr);

      EXPECT_LT(MaxAbsDiff(x_mono, x_bbd), 1e-10) << "pieces=" << pieces;
      EXPECT_TRUE(bbd.factored());
      EXPECT_EQ(bbd.stats().solve_count, 1u);
    }
  }
}

TEST(BbdSolverTest, RefactorPathTracksChangedValues) {
  CscMatrix m = MakeGrid(10, 6);
  const auto plan = PartitionPattern(m, 3);
  BbdSolver bbd;
  bbd.Configure(plan, m);
  bbd.FactorOrRefactor(m, nullptr);
  EXPECT_GE(bbd.stats().full_factor_count, 1u);

  // Scale the values (same pattern) and refactor: the numeric-only path must
  // engage and produce the solution of the SCALED system.
  for (std::size_t i = 0; i < m.num_nonzeros(); ++i) m.mutable_values()[i] *= 2.0;
  bbd.FactorOrRefactor(m, nullptr);
  EXPECT_GE(bbd.stats().refactor_count, 1u);

  SparseLu mono;
  mono.Factor(m);
  const int n = m.cols();
  std::vector<double> x_mono = MakeRhs(n), ws;
  mono.Solve(x_mono, ws);
  std::vector<double> x_bbd = MakeRhs(n);
  bbd.Solve(x_bbd, nullptr);
  EXPECT_LT(MaxAbsDiff(x_mono, x_bbd), 1e-10);
}

TEST(BbdSolverTest, SinglePiecePlanHasEmptyInterface) {
  const CscMatrix m = MakeChain(30);
  BbdSolver bbd;
  bbd.Configure(PartitionPattern(m, 1), m);
  bbd.FactorOrRefactor(m, nullptr);
  EXPECT_EQ(bbd.stats().interface_size, 0u);
  EXPECT_EQ(bbd.stats().schur_nnz, 0u);

  SparseLu mono;
  mono.Factor(m);
  std::vector<double> x_mono = MakeRhs(30), ws;
  mono.Solve(x_mono, ws);
  std::vector<double> x_bbd = MakeRhs(30);
  bbd.Solve(x_bbd, nullptr);
  EXPECT_LT(MaxAbsDiff(x_mono, x_bbd), 1e-11);
}

TEST(BbdSolverTest, ParallelExecutionIsBitIdenticalToSerial) {
  const CscMatrix m = MakeGrid(20, 8);
  const auto plan = PartitionPattern(m, 4);

  BbdSolver serial;
  serial.Configure(plan, m);
  serial.FactorOrRefactor(m, nullptr);
  std::vector<double> x_serial = MakeRhs(m.cols());
  serial.Solve(x_serial, nullptr);

  util::ThreadPool pool(4);
  BbdSolver parallel;
  parallel.Configure(plan, m);
  parallel.FactorOrRefactor(m, &pool);
  std::vector<double> x_parallel = MakeRhs(m.cols());
  parallel.Solve(x_parallel, &pool);

  // Determinism promise: identical results regardless of thread count.
  EXPECT_EQ(x_serial, x_parallel);
}

TEST(BbdSolverTest, ConfigureRejectsSeparatorViolation) {
  const CscMatrix m = MakeChain(4);
  auto plan = std::make_shared<BbdPlan>();
  plan->num_pieces = 2;
  plan->dimension = 4;
  plan->piece_of = {0, 0, 1, 1};
  plan->interiors = {{0, 1}, {2, 3}};
  plan->local_index = {0, 1, 0, 1};
  BbdSolver bbd;
  EXPECT_THROW(bbd.Configure(std::move(plan), m), Error);
}

class BbdFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_F(BbdFaultTest, SchurFactorFaultThrowsSingularMatrixError) {
  const CscMatrix m = MakeGrid(12, 6);
  const auto plan = PartitionPattern(m, 4);
  ASSERT_GT(plan->interface_nodes.size(), 0u);  // fault site needs a Schur block

  BbdSolver bbd;
  bbd.Configure(plan, m);
  util::fault::Schedule once;
  once.fire = 1;
  util::fault::ScopedFault site("schur.factor", once);
  EXPECT_THROW(bbd.FactorOrRefactor(m, nullptr), SingularMatrixError);

  // The window passed: the next attempt recovers — the rescue-ladder
  // contract (transient drivers retry after a singular factorization).
  bbd.FactorOrRefactor(m, nullptr);
  EXPECT_TRUE(bbd.factored());
  std::vector<double> x = MakeRhs(m.cols());
  bbd.Solve(x, nullptr);
}

}  // namespace
}  // namespace wavepipe
