// End-to-end parity for the --partition path: domain-decomposed transients
// must match the monolithic solve within solver tolerances on real decks and
// generated circuits, across every engine, at piece counts 1/2/4/8 — and the
// default (partition off) must stay bit-identical run to run.
#include <gtest/gtest.h>

#include <memory>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "netlist/elaborate.hpp"
#include "parallel/fine_grained.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe {
namespace {

constexpr const char* kRcDeck = R"(rc lowpass
V1 in 0 DC 0 PULSE(0 1 100u 1u 1u 10m 20m)
R1 in out 1k
C1 out 0 1u
.tran 10u 5m
.print v(out) v(in)
.end
)";

constexpr const char* kClipperDeck = R"(clipper
V1 in 0 SIN(0 3 10k)
R1 in out 1k
D1 out 0 dclip
D2 0 out dclip
.model dclip D (is=1e-14 n=1.2)
.tran 1u 300u
.print v(in) v(out)
)";

/// Deviation budget: both runs satisfy the same Newton/LTE tolerances, so
/// traces may differ by a few times reltol but no more.
constexpr double kTol = 5e-3;

engine::TransientResult RunSerialDeck(const char* deck, int pieces) {
  auto e = netlist::ParseAndElaborate(deck);
  engine::MnaStructure mna(*e.circuit);
  engine::SimOptions options = e.sim_options;
  options.partition_pieces = pieces;
  return engine::RunTransientSerial(*e.circuit, mna, e.spec, options);
}

TEST(PartitionParity, SerialEngineDecksMatchAcrossPieceCounts) {
  for (const char* deck : {kRcDeck, kClipperDeck}) {
    const auto baseline = RunSerialDeck(deck, 0);
    EXPECT_EQ(baseline.stats.partition_pieces, 0);
    EXPECT_EQ(baseline.stats.partition_solves, 0u);
    for (int pieces : {1, 2, 4, 8}) {
      const auto partitioned = RunSerialDeck(deck, pieces);
      EXPECT_LT(engine::Trace::MaxDeviationAll(baseline.trace, partitioned.trace),
                kTol)
          << "pieces=" << pieces;
      EXPECT_GE(partitioned.stats.partition_pieces, 1) << "pieces=" << pieces;
      EXPECT_GT(partitioned.stats.partition_solves, 0u) << "pieces=" << pieces;
    }
  }
}

TEST(PartitionParity, SerialEngineGeneratorsMatchAcrossPieceCounts) {
  std::vector<circuits::GeneratedCircuit> gens;
  gens.push_back(circuits::MakeRcMesh(10, 10));
  gens.push_back(circuits::MakeInverterChain(8));
  for (const auto& gen : gens) {
    engine::MnaStructure mna(*gen.circuit);
    const auto baseline =
        engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
    for (int pieces : {2, 4, 8}) {
      engine::SimOptions options;
      options.partition_pieces = pieces;
      const auto partitioned =
          engine::RunTransientSerial(*gen.circuit, mna, gen.spec, options);
      EXPECT_LT(engine::Trace::MaxDeviationAll(baseline.trace, partitioned.trace),
                kTol)
          << gen.name << " pieces=" << pieces;
    }
  }
}

TEST(PartitionParity, DefaultOffIsBitIdenticalRunToRun) {
  // partition_pieces defaults to 0; two identical runs must agree sample by
  // sample, which pins the off-path's determinism (and that adding the BBD
  // plumbing left the monolithic solve untouched at runtime).
  const auto a = RunSerialDeck(kRcDeck, 0);
  const auto b = RunSerialDeck(kRcDeck, 0);
  ASSERT_EQ(a.trace.num_samples(), b.trace.num_samples());
  for (std::size_t i = 0; i < a.trace.num_samples(); ++i) {
    ASSERT_EQ(a.trace.time(i), b.trace.time(i)) << i;
    for (std::size_t p = 0; p < 2; ++p) {
      ASSERT_EQ(a.trace.value(i, p), b.trace.value(i, p)) << i;
    }
  }
}

TEST(PartitionParity, FineGrainedEngineMatchesSerialUnderPartition) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);
  const auto baseline = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});

  parallel::FineGrainedOptions options;
  options.threads = 2;
  options.sim.partition_pieces = 4;
  const auto fine =
      parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
  EXPECT_LT(engine::Trace::MaxDeviationAll(baseline.trace, fine.trace), kTol);
  EXPECT_GE(fine.stats.partition_pieces, 1);
  EXPECT_GT(fine.stats.partition_solves, 0u);
}

TEST(PartitionParity, WavePipeEngineMatchesSerialUnderPartition) {
  auto e = netlist::ParseAndElaborate(kRcDeck);
  engine::MnaStructure mna(*e.circuit);
  const auto baseline =
      engine::RunTransientSerial(*e.circuit, mna, e.spec, e.sim_options);

  pipeline::WavePipeOptions options;
  options.scheme = pipeline::Scheme::kCombined;
  options.threads = 3;
  options.sim = e.sim_options;
  options.sim.partition_pieces = 4;
  const auto piped = pipeline::RunWavePipe(*e.circuit, mna, e.spec, options);
  // Pipelined schemes carry their own speculation-induced deviation on top
  // of the partition's: use the deck-flow suite's cross-scheme budget.
  EXPECT_LT(engine::Trace::MaxDeviationAll(baseline.trace, piped.trace), 0.03);
  EXPECT_GE(piped.stats.partition_pieces, 1);
  EXPECT_GT(piped.stats.partition_solves, 0u);
}

}  // namespace
}  // namespace wavepipe
