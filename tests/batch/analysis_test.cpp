// DC-sweep and AC analysis parity against analytic answers.  Both verbs are
// linear-algebra exact on RC circuits, so the tolerances here are rounding
// noise, not physics slack: the divider is solved at machine precision and
// the lowpass transfer function is |H| = 1/sqrt(1 + (wRC)^2) with phase
// -atan(wRC).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <string>

#include "batch/runner.hpp"
#include "netlist/elaborate.hpp"
#include "netlist/parser.hpp"

namespace wavepipe::batch {
namespace {

BatchOptions SingleRun(const netlist::ParsedNetlist& parsed) {
  BatchOptions options;
  options.sim = netlist::Elaborate(ApplyParamDefaults(parsed)).sim_options;
  return options;
}

const VariantResult& RunOne(const netlist::ParsedNetlist& parsed,
                            BatchResult& storage) {
  storage = RunBatch(parsed, SingleRun(parsed));
  EXPECT_EQ(storage.variants.size(), 1u);
  EXPECT_TRUE(storage.variants[0].ok) << storage.variants[0].error;
  return storage.variants[0];
}

int ProbeIndex(const engine::Trace& trace, const std::string& name) {
  const auto& names = trace.probes().names;
  for (std::size_t p = 0; p < names.size(); ++p) {
    if (names[p] == name) return static_cast<int>(p);
  }
  ADD_FAILURE() << "no probe named " << name;
  return -1;
}

TEST(DcSweep, ResistiveDividerIsExactAtEveryPoint) {
  const auto parsed = netlist::ParseNetlist(R"(divider
V1 in 0 DC 0
R1 in out 1k
R2 out 0 1k
.dc V1 0 2 0.5
.print v(in) v(out)
.end
)");
  BatchResult storage;
  const VariantResult& run = RunOne(parsed, storage);
  EXPECT_EQ(run.analysis, "dc");
  EXPECT_EQ(run.points, 5u);  // 0, 0.5, 1, 1.5, 2
  const engine::Trace& trace = run.trace;
  // .print v(x) probes carry the bare node name.
  const int in = ProbeIndex(trace, "in");
  const int out = ProbeIndex(trace, "out");
  ASSERT_EQ(trace.num_samples(), 5u);
  for (std::size_t i = 0; i < trace.num_samples(); ++i) {
    const double swept = trace.time(i);  // trace time axis = swept value
    EXPECT_DOUBLE_EQ(swept, 0.5 * static_cast<double>(i));
    EXPECT_NEAR(trace.value(i, in), swept, 1e-12);
    EXPECT_NEAR(trace.value(i, out), swept / 2.0, 1e-12);
  }
}

TEST(DcSweep, DescendingSweepWorks) {
  const auto parsed = netlist::ParseNetlist(R"(down
V1 in 0 DC 2
R1 in out 1k
R2 out 0 1k
.dc V1 2 0 -1
.print v(out)
.end
)");
  BatchResult storage;
  const VariantResult& run = RunOne(parsed, storage);
  // Solved 2 -> 0 (warm start in the asked direction) but recorded with the
  // ascending axis the Trace contract requires.
  ASSERT_EQ(run.trace.num_samples(), 3u);
  const int out = ProbeIndex(run.trace, "out");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(run.trace.time(i), static_cast<double>(i));
    EXPECT_NEAR(run.trace.value(i, out), run.trace.time(i) / 2.0, 1e-12);
  }
}

constexpr const char* kLowpassDeck = R"(ac lowpass
V1 in 0 DC 0 ac 1
R1 in out 1k
C1 out 0 1u
.ac dec 10 10 10k
.print v(out)
.end
)";

TEST(AcAnalysis, LowpassMagnitudeAndPhaseMatchAnalytic) {
  const auto parsed = netlist::ParseNetlist(kLowpassDeck);
  BatchResult storage;
  const VariantResult& run = RunOne(parsed, storage);
  EXPECT_EQ(run.analysis, "ac");
  EXPECT_EQ(run.points, 31u);  // 3 decades x 10 points + endpoint
  const engine::Trace& trace = run.trace;
  const int vm = ProbeIndex(trace, "vm(out)");
  const int vp = ProbeIndex(trace, "vp(out)");
  constexpr double kRc = 1e3 * 1e-6;
  for (std::size_t i = 0; i < trace.num_samples(); ++i) {
    const double w = 2.0 * std::numbers::pi * trace.time(i);  // time axis = Hz
    const double mag = 1.0 / std::sqrt(1.0 + w * kRc * w * kRc);
    const double phase = -std::atan(w * kRc) * 180.0 / std::numbers::pi;
    EXPECT_NEAR(trace.value(i, vm), mag, 1e-9 + 1e-9 * mag) << "f=" << trace.time(i);
    EXPECT_NEAR(trace.value(i, vp), phase, 1e-7) << "f=" << trace.time(i);
  }
  // The corner frequency sits inside the sweep: magnitude crosses 1/sqrt(2).
  EXPECT_GT(trace.value(0, vm), 0.99);
  EXPECT_LT(trace.value(trace.num_samples() - 1, vm), 0.02);
}

TEST(AcAnalysis, DrivingSourceIsUnityMagnitudeZeroPhase) {
  const auto parsed = netlist::ParseNetlist(R"(ac ref
V1 in 0 DC 0 ac 1
R1 in out 1k
C1 out 0 1u
.ac lin 5 100 500
.print v(in) v(out)
.end
)");
  BatchResult storage;
  const VariantResult& run = RunOne(parsed, storage);
  EXPECT_EQ(run.points, 5u);
  const int vm = ProbeIndex(run.trace, "vm(in)");
  const int vp = ProbeIndex(run.trace, "vp(in)");
  for (std::size_t i = 0; i < run.trace.num_samples(); ++i) {
    EXPECT_NEAR(run.trace.value(i, vm), 1.0, 1e-12);
    EXPECT_NEAR(run.trace.value(i, vp), 0.0, 1e-9);
  }
}

TEST(AcAnalysis, DeckWithoutAcStimulusFailsTheVariant) {
  const auto parsed = netlist::ParseNetlist(R"(no stimulus
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1u
.ac dec 10 10 10k
.end
)");
  const BatchResult result = RunBatch(parsed, SingleRun(parsed));
  ASSERT_EQ(result.variants.size(), 1u);
  EXPECT_FALSE(result.variants[0].ok);
  EXPECT_NE(result.variants[0].error.find("no source carries an AC stimulus"),
            std::string::npos)
      << result.variants[0].error;
}

TEST(AcAnalysis, SweepingAcOverStepAxisKeepsAnalyticParity) {
  // The batch path end to end: a .step over R shifts the corner frequency;
  // every variant must still match its own analytic curve.
  const auto parsed = netlist::ParseNetlist(R"(ac sweep
.param rload=1k
V1 in 0 DC 0 ac 1
R1 in out {rload}
C1 out 0 1u
.step param rload list 500 1k 2k
.ac dec 5 10 10k
.print v(out)
.end
)");
  BatchOptions options = SingleRun(parsed);
  options.threads = 3;
  const BatchResult result = RunBatch(parsed, options);
  ASSERT_EQ(result.variants.size(), 3u);
  const double rs[] = {500.0, 1000.0, 2000.0};
  for (int v = 0; v < 3; ++v) {
    const VariantResult& run = result.variants[v];
    ASSERT_TRUE(run.ok) << run.error;
    const int vm = ProbeIndex(run.trace, "vm(out)");
    const double rc = rs[v] * 1e-6;
    for (std::size_t i = 0; i < run.trace.num_samples(); ++i) {
      const double w = 2.0 * std::numbers::pi * run.trace.time(i);
      EXPECT_NEAR(run.trace.value(i, vm), 1.0 / std::sqrt(1.0 + w * rc * w * rc),
                  1e-9);
    }
  }
  EXPECT_EQ(result.stats.ac_points, 3u * result.variants[0].points);
}

}  // namespace
}  // namespace wavepipe::batch
