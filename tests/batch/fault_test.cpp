// Failure isolation: one bad corner aborts only its own variant.  The batch
// keeps running, the failure is captured in that VariantResult and counted
// in batch.variants_failed — never thrown out of RunBatch.  Runs under both
// sanitizer presets via the "faults" ctest label.
#include <gtest/gtest.h>

#include <string>

#include "batch/runner.hpp"
#include "netlist/elaborate.hpp"
#include "netlist/parser.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace wavepipe::batch {
namespace {

// rload=0 elaborates to a zero resistance, which the front end rejects —
// a corner-local failure injected through the sweep axis itself.
constexpr const char* kBadCornerDeck = R"(bad corner
.param rload=1k
V1 in 0 DC 0 PULSE(0 1 1u 100n 100n 10u 20u)
R1 in out {rload}
C1 out 0 1n
.step param rload list 1k 0 2k
.tran 0.5u 10u
.print v(out)
.end
)";

BatchOptions Options(const netlist::ParsedNetlist& parsed, int threads) {
  BatchOptions options;
  options.threads = threads;
  options.sim = netlist::Elaborate(ApplyParamDefaults(parsed)).sim_options;
  return options;
}

TEST(BatchFaults, OneBadCornerFailsAloneAndIsCounted) {
  const auto parsed = netlist::ParseNetlist(kBadCornerDeck);
  const BatchResult result = RunBatch(parsed, Options(parsed, 4));
  ASSERT_EQ(result.variants.size(), 3u);

  EXPECT_TRUE(result.variants[0].ok) << result.variants[0].error;
  EXPECT_FALSE(result.variants[1].ok);
  EXPECT_TRUE(result.variants[2].ok) << result.variants[2].error;

  const VariantResult& bad = result.variants[1];
  EXPECT_NE(bad.error.find("zero resistance"), std::string::npos) << bad.error;
  EXPECT_EQ(bad.waveform_hash, 0u);

  EXPECT_EQ(result.stats.variants_total, 3u);
  EXPECT_EQ(result.stats.variants_ok, 2u);
  EXPECT_EQ(result.stats.variants_failed, 1u);
}

TEST(BatchFaults, FailureCountSurvivesIntoExportedCounters) {
  const auto parsed = netlist::ParseNetlist(kBadCornerDeck);
  const BatchResult result = RunBatch(parsed, Options(parsed, 2));
  util::telemetry::CounterRegistry registry;
  result.stats.ExportCounters(registry);
  bool found = false;
  for (const auto& counter : registry.counters()) {
    if (counter.name == "batch.variants_failed") {
      found = true;
      EXPECT_EQ(counter.value, 1.0);
    }
  }
  EXPECT_TRUE(found) << "batch.variants_failed missing from the registry";
}

TEST(BatchFaults, SurvivingVariantsAreStillDeterministic) {
  const auto parsed = netlist::ParseNetlist(kBadCornerDeck);
  const BatchResult a = RunBatch(parsed, Options(parsed, 1));
  const BatchResult b = RunBatch(parsed, Options(parsed, 4));
  for (int i : {0, 2}) {
    EXPECT_EQ(a.variants[i].waveform_hash, b.variants[i].waveform_hash)
        << "variant " << i;
    EXPECT_NE(a.variants[i].waveform_hash, 0u);
  }
}

TEST(BatchFaults, AllCornersBadStillReturnsNormallyWithoutSharing) {
  const auto parsed = netlist::ParseNetlist(R"(all bad
.param rload=0
V1 in 0 DC 1
R1 in out {rload}
C1 out 0 1n
.step param rload list 0 0
.tran 0.5u 5u
.end
)");
  // No Options() helper here: even the DEFAULT deck elaborates to the broken
  // corner, so sim options stay at engine defaults.
  BatchOptions options;
  options.threads = 2;
  options.share_artifacts = false;
  const BatchResult result = RunBatch(parsed, options);
  EXPECT_EQ(result.stats.variants_failed, 2u);
  EXPECT_EQ(result.stats.variants_ok, 0u);
}

TEST(BatchFaults, UnelaboratablePrototypeIsAWholeBatchError) {
  // Artifact sharing elaborates variant 0 up front: when THAT variant is the
  // broken one there is nothing to share and the failure surfaces
  // immediately instead of poisoning every corner (runner.cpp documents it).
  const auto parsed = netlist::ParseNetlist(R"(bad prototype
.param rload=1k
V1 in 0 DC 1
R1 in out {rload}
C1 out 0 1n
.step param rload list 0 1k
.tran 0.5u 5u
.end
)");
  EXPECT_THROW(RunBatch(parsed, Options(parsed, 2)), ElaborationError);
}

TEST(BatchFaults, DeckWithNoAnalysisCardThrowsWholeBatch) {
  const auto parsed = netlist::ParseNetlist("t\nV1 a 0 DC 1\nR1 a 0 1k\n.end\n");
  BatchOptions options;
  EXPECT_THROW(RunBatch(parsed, options), Error);
}

}  // namespace
}  // namespace wavepipe::batch
