// Batch runner determinism: waveforms are a pure function of the VariantSpec
// — never of pool size, artifact sharing, or scheduling order (the contract
// src/batch/runner.hpp documents).  The concurrent suites run under
// ThreadSanitizer via the "tsan" ctest label: many workers reusing one
// SharedAnalysisArtifacts bundle and one OrderingCache is exactly the data
// pattern tsan would flag if the read-only contract were violated.
#include "batch/runner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netlist/elaborate.hpp"
#include "netlist/parser.hpp"
#include "util/error.hpp"

namespace wavepipe::batch {
namespace {

constexpr const char* kSweptDeck = R"(rc sweep
.param rload=1k
V1 in 0 DC 0 PULSE(0 1 1u 100n 100n 10u 20u)
R1 in out {rload}
C1 out 0 1n
.step param rload list 500 1k 2k
.mc 2 variation=0.05
.tran 0.5u 10u
.print v(in) v(out)
.end
)";

BatchOptions Options(const netlist::ParsedNetlist& parsed, int threads,
                     bool share = true) {
  BatchOptions options;
  options.threads = threads;
  options.mc_seed = 7;
  options.share_artifacts = share;
  options.sim = netlist::Elaborate(ApplyParamDefaults(parsed)).sim_options;
  return options;
}

std::vector<std::uint64_t> Hashes(const BatchResult& result) {
  std::vector<std::uint64_t> hashes;
  for (const VariantResult& v : result.variants) {
    EXPECT_TRUE(v.ok) << "variant " << v.index << ": " << v.error;
    hashes.push_back(v.waveform_hash);
  }
  return hashes;
}

TEST(BatchRunner, PoolSizesOneAndFourAreBitIdentical) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const BatchResult serial = RunBatch(parsed, Options(parsed, 1));
  const BatchResult pooled = RunBatch(parsed, Options(parsed, 4));
  ASSERT_EQ(serial.variants.size(), 6u);
  EXPECT_EQ(Hashes(serial), Hashes(pooled));
}

TEST(BatchRunner, SharedArtifactsMatchColdRebuilds) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const BatchResult shared = RunBatch(parsed, Options(parsed, 4, true));
  const BatchResult cold = RunBatch(parsed, Options(parsed, 4, false));
  EXPECT_EQ(Hashes(shared), Hashes(cold));
  EXPECT_TRUE(shared.artifacts.built);
  EXPECT_FALSE(cold.artifacts.built);
}

TEST(BatchRunner, EachVariantMatchesItsStandaloneRun) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const BatchResult batch = RunBatch(parsed, Options(parsed, 4));
  const auto variants = ExpandVariants(batch.plan, parsed, 7);
  ASSERT_EQ(variants.size(), batch.variants.size());
  for (const VariantSpec& spec : variants) {
    // A standalone run: the variant's rewritten deck as a plain single-variant
    // batch with no shared artifacts and no sweep cards left.
    netlist::ParsedNetlist standalone = ApplyVariant(parsed, spec);
    standalone.steps.clear();
    standalone.mc = netlist::McCard{};
    BatchOptions options = Options(parsed, 1, false);
    const BatchResult single = RunBatch(standalone, options);
    ASSERT_EQ(single.variants.size(), 1u);
    ASSERT_TRUE(single.variants[0].ok) << single.variants[0].error;
    EXPECT_EQ(single.variants[0].waveform_hash,
              batch.variants[spec.index].waveform_hash)
        << "variant " << spec.index << " diverged from its standalone run";
  }
}

TEST(BatchRunner, ConcurrentReuseSharesOneOrdering) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const BatchResult result = RunBatch(parsed, Options(parsed, 8));
  EXPECT_TRUE(result.artifacts.built);
  EXPECT_GT(result.artifacts.dimension, 0);
  // The prototype's miss is the only min-degree run; every variant hits.
  EXPECT_LE(result.stats.ordering_misses, 1u);
  EXPECT_GE(result.stats.ordering_hits, result.variants.size());
  EXPECT_EQ(result.stats.artifacts_shared, result.variants.size());
}

TEST(BatchRunner, AggregateStatsDescribeTheGrid) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const BatchResult result = RunBatch(parsed, Options(parsed, 2));
  EXPECT_EQ(result.stats.variants_total, 6u);
  EXPECT_EQ(result.stats.variants_ok, 6u);
  EXPECT_EQ(result.stats.variants_failed, 0u);
  EXPECT_EQ(result.stats.step_axes, 1u);
  EXPECT_EQ(result.stats.mc_samples, 2u);
  EXPECT_GT(result.stats.steps_accepted, 0u);
  EXPECT_GT(result.stats.newton_iterations, 0u);
  for (const VariantResult& v : result.variants) {
    EXPECT_EQ(v.analysis, "tran");
    EXPECT_GT(v.steps_accepted, 0u);
    EXPECT_NE(v.waveform_hash, 0u);
  }
}

TEST(BatchRunner, HashTraceDistinguishesSingleBitChanges) {
  engine::ProbeSet probes;
  probes.unknowns = {0};
  probes.names = {"v(a)"};
  engine::Trace a(probes), b(probes);
  const double va[] = {1.0}, vb[] = {1.0 + 1e-15};
  a.AppendProbeSample(0.0, va);
  b.AppendProbeSample(0.0, vb);
  EXPECT_EQ(HashTrace(a), HashTrace(a));
  EXPECT_NE(HashTrace(a), HashTrace(b));
}

TEST(BatchRunner, DifferentSeedsChangeMcWaveforms) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  BatchOptions a = Options(parsed, 2);
  BatchOptions b = Options(parsed, 2);
  b.mc_seed = 99;
  const auto ha = Hashes(RunBatch(parsed, a));
  const auto hb = Hashes(RunBatch(parsed, b));
  EXPECT_NE(ha, hb);
}

}  // namespace
}  // namespace wavepipe::batch
