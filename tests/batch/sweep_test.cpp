// Sweep planner: .step expansion edge rules, grid order, seed derivation and
// card-level variant rewriting (src/batch/sweep.hpp documents the contract).
#include "batch/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "netlist/elaborate.hpp"
#include "netlist/parser.hpp"
#include "util/error.hpp"

namespace wavepipe::batch {
namespace {

netlist::StepCard Lin(double start, double stop, double step) {
  netlist::StepCard card;
  card.param = "p";
  card.kind = netlist::StepCard::Kind::kLin;
  card.start = start;
  card.stop = stop;
  card.step = step;
  return card;
}

TEST(ExpandStep, LinIncludesStopOnExactLanding) {
  const auto values = ExpandStepValues(Lin(1.0, 3.0, 1.0));
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
  EXPECT_DOUBLE_EQ(values[2], 3.0);
}

TEST(ExpandStep, LinStopsBeforeOvershoot) {
  // 0, 0.4, 0.8 — 1.2 overshoots stop=1 and must not appear.
  const auto values = ExpandStepValues(Lin(0.0, 1.0, 0.4));
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values.back(), 0.8);
}

TEST(ExpandStep, LinSinglePointWhenStartEqualsStop) {
  const auto values = ExpandStepValues(Lin(5.0, 5.0, 1.0));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 5.0);
}

TEST(ExpandStep, DecIsLogSpacedAndEndpointInclusive) {
  netlist::StepCard card;
  card.param = "p";
  card.kind = netlist::StepCard::Kind::kDec;
  card.start = 1.0;
  card.stop = 100.0;
  card.points_per_decade = 2;
  const auto values = ExpandStepValues(card);
  ASSERT_EQ(values.size(), 5u);  // 1, sqrt(10), 10, 10*sqrt(10), 100
  EXPECT_DOUBLE_EQ(values.front(), 1.0);
  EXPECT_NEAR(values[1], std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(values.back(), 100.0, 1e-9);
}

TEST(ExpandStep, ListIsVerbatim) {
  netlist::StepCard card;
  card.param = "p";
  card.kind = netlist::StepCard::Kind::kList;
  card.values = {500.0, 1000.0, 2000.0};
  EXPECT_EQ(ExpandStepValues(card), card.values);
}

constexpr const char* kSweptDeck = R"(sweep deck
.param rload=1k cap=1n
V1 in 0 DC 0 PULSE(0 1 1u 100n 100n 10u 20u)
R1 in out {rload}
C1 out 0 {cap}
.step param rload list 500 1k 2k
.step param cap lin 1n 2n 1n
.mc 2 variation=0.1
.tran 0.5u 5u
.print v(out)
.end
)";

TEST(SweepPlan, GridIsStepProductTimesMcRuns) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const SweepPlan plan = BuildSweepPlan(parsed);
  ASSERT_EQ(plan.axis_names.size(), 2u);
  EXPECT_EQ(plan.axis_names[0], "rload");
  EXPECT_EQ(plan.axis_names[1], "cap");
  EXPECT_EQ(plan.axis_values[0].size(), 3u);
  EXPECT_EQ(plan.axis_values[1].size(), 2u);
  EXPECT_TRUE(plan.mc_present);
  EXPECT_EQ(plan.mc_runs, 2);
  EXPECT_EQ(plan.num_variants(), 12u);  // 3 x 2 x 2
}

TEST(SweepPlan, DeckWithoutSweepCardsIsTrivial) {
  const auto parsed = netlist::ParseNetlist("t\nR1 a 0 1k\n.tran 1u 2u\n.end\n");
  const SweepPlan plan = BuildSweepPlan(parsed);
  EXPECT_TRUE(plan.axis_names.empty());
  EXPECT_FALSE(plan.mc_present);
  EXPECT_EQ(plan.num_variants(), 1u);
}

TEST(ExpandVariants, OrderIsMcMajorThenLastAxisFastest) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const auto variants = ExpandVariants(BuildSweepPlan(parsed), parsed, 1);
  ASSERT_EQ(variants.size(), 12u);
  // First MC sample occupies indices 0..5, second 6..11.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(variants[i].mc_index, 0);
  for (int i = 6; i < 12; ++i) EXPECT_EQ(variants[i].mc_index, 1);
  // Last axis (cap) fastest: consecutive variants differ in cap, rload every 2.
  EXPECT_DOUBLE_EQ(variants[0].step_values[1].second, 1e-9);
  EXPECT_DOUBLE_EQ(variants[1].step_values[1].second, 2e-9);
  EXPECT_DOUBLE_EQ(variants[0].step_values[0].second, variants[1].step_values[0].second);
  EXPECT_NE(variants[0].step_values[0].second, variants[2].step_values[0].second);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(variants[i].index, i);
}

TEST(ExpandVariants, SeedsDependOnlyOnMcIndex) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const auto variants = ExpandVariants(BuildSweepPlan(parsed), parsed, 42);
  std::set<std::uint64_t> seeds_per_sample[2];
  for (const VariantSpec& v : variants) {
    EXPECT_NE(v.seed, 0u);  // .mc present: every variant perturbs
    seeds_per_sample[v.mc_index].insert(v.seed);
  }
  // One seed per MC sample (shared across its grid points), distinct samples.
  EXPECT_EQ(seeds_per_sample[0].size(), 1u);
  EXPECT_EQ(seeds_per_sample[1].size(), 1u);
  EXPECT_NE(*seeds_per_sample[0].begin(), *seeds_per_sample[1].begin());
}

TEST(ExpandVariants, NoMcMeansNoPerturbationSeed) {
  const auto parsed = netlist::ParseNetlist(
      "t\n.param r=1k\nR1 a 0 {r}\n.step param r list 1 2\n.tran 1u 2u\n.end\n");
  const auto variants = ExpandVariants(BuildSweepPlan(parsed), parsed, 42);
  ASSERT_EQ(variants.size(), 2u);
  for (const VariantSpec& v : variants) EXPECT_EQ(v.seed, 0u);
}

TEST(ExpandVariants, DeterministicAcrossCalls) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const SweepPlan plan = BuildSweepPlan(parsed);
  const auto a = ExpandVariants(plan, parsed, 7);
  const auto b = ExpandVariants(plan, parsed, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].params, b[i].params);
  }
}

TEST(ApplyVariant, SubstitutesSteppedParamsAtCardLevel) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const auto variants = ExpandVariants(BuildSweepPlan(parsed), parsed, 1);
  const auto rewritten = ApplyVariant(parsed, variants[0]);
  for (const netlist::ElementCard& card : rewritten.elements) {
    for (const std::string& arg : card.args) {
      EXPECT_EQ(arg.find('{'), std::string::npos)
          << card.name << " kept unsubstituted arg " << arg;
    }
  }
  // The rewritten deck elaborates through the unchanged front end.
  EXPECT_NO_THROW(netlist::Elaborate(rewritten));
}

TEST(ApplyVariant, McPerturbationIsBoundedAndSampleDistinct) {
  const auto parsed = netlist::ParseNetlist(kSweptDeck);
  const auto variants = ExpandVariants(BuildSweepPlan(parsed), parsed, 1);
  // Same grid point (rload=500, cap=1n) in MC samples 0 and 1.
  const auto s0 = ApplyVariant(parsed, variants[0]);
  const auto s1 = ApplyVariant(parsed, variants[6]);
  const double r0 = std::stod(s0.elements[1].args[2]);
  const double r1 = std::stod(s1.elements[1].args[2]);
  EXPECT_GE(r0, 500.0 * 0.9);
  EXPECT_LE(r0, 500.0 * 1.1);
  EXPECT_NE(r0, r1);  // different samples draw different factors
  // Re-applying the same variant reproduces the same deck text.
  const auto again = ApplyVariant(parsed, variants[0]);
  EXPECT_EQ(s0.elements[1].args[2], again.elements[1].args[2]);
}

TEST(ApplyVariant, UndefinedParamReferenceThrows) {
  const auto parsed = netlist::ParseNetlist("t\nR1 a 0 {nope}\n.tran 1u 2u\n.end\n");
  const auto variants = ExpandVariants(BuildSweepPlan(parsed), parsed, 1);
  EXPECT_THROW(ApplyVariant(parsed, variants[0]), ParseError);
}

TEST(ApplyParamDefaults, SubstitutesDeclaredDefaults) {
  const auto parsed =
      netlist::ParseNetlist("t\n.param r=2k\nR1 a 0 {r}\n.tran 1u 2u\n.end\n");
  const auto rewritten = ApplyParamDefaults(parsed);
  // Substitution is textual — the raw "2k" token lands in the card and the
  // unchanged front end gives it its SPICE suffix meaning.
  EXPECT_EQ(rewritten.elements[0].args[2], "2k");
  const auto elab = netlist::Elaborate(rewritten);
  EXPECT_EQ(elab.circuit->num_devices(), 1u);
}

}  // namespace
}  // namespace wavepipe::batch
