#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace wavepipe::util {
namespace {

TEST(Strings, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC123xYz"), "abc123xyz");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii('Z'), 'z');
  EXPECT_EQ(ToLowerAscii('a'), 'a');
  EXPECT_EQ(ToLowerAscii('1'), '1');
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("PULSE", "pulse"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("pulse", "pulses"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(Strings, StartsWithIgnoreCase) {
  EXPECT_TRUE(StartsWithIgnoreCase(".MODEL nmos1", ".model"));
  EXPECT_FALSE(StartsWithIgnoreCase(".mod", ".model"));
}

TEST(Strings, TrimAscii) {
  EXPECT_EQ(TrimAscii("  hello \t\r\n"), "hello");
  EXPECT_EQ(TrimAscii(""), "");
  EXPECT_EQ(TrimAscii(" \t "), "");
  EXPECT_EQ(TrimAscii("x"), "x");
}

TEST(Strings, SplitTokens) {
  const auto tokens = SplitTokens("r1  in \t out  1k");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "r1");
  EXPECT_EQ(tokens[3], "1k");
  EXPECT_TRUE(SplitTokens("   ").empty());
}

TEST(Strings, SplitExactKeepsEmptyFields) {
  const auto fields = SplitExact("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

struct SpiceNumberCase {
  const char* text;
  double expected;
};

class SpiceNumberTest : public ::testing::TestWithParam<SpiceNumberCase> {};

TEST_P(SpiceNumberTest, Parses) {
  const auto& param = GetParam();
  const auto value = ParseSpiceNumber(param.text);
  ASSERT_TRUE(value.has_value()) << param.text;
  EXPECT_DOUBLE_EQ(*value, param.expected) << param.text;
}

INSTANTIATE_TEST_SUITE_P(
    Suffixes, SpiceNumberTest,
    ::testing::Values(
        SpiceNumberCase{"1", 1.0}, SpiceNumberCase{"-2.5", -2.5},
        SpiceNumberCase{"1k", 1e3}, SpiceNumberCase{"1K", 1e3},
        SpiceNumberCase{"2.5u", 2.5e-6}, SpiceNumberCase{"10MEG", 1e7},
        SpiceNumberCase{"10meg", 1e7}, SpiceNumberCase{"3mil", 3 * 25.4e-6},
        SpiceNumberCase{"1m", 1e-3}, SpiceNumberCase{"1n", 1e-9},
        SpiceNumberCase{"1p", 1e-12}, SpiceNumberCase{"1f", 1e-15},
        SpiceNumberCase{"1a", 1e-18}, SpiceNumberCase{"1t", 1e12},
        SpiceNumberCase{"1g", 1e9}, SpiceNumberCase{"10pF", 10e-12},
        SpiceNumberCase{"10V", 10.0}, SpiceNumberCase{"1e-3", 1e-3},
        SpiceNumberCase{"1.5e3k", 1.5e6}, SpiceNumberCase{"  7 ", 7.0}));

TEST(SpiceNumber, RejectsGarbage) {
  EXPECT_FALSE(ParseSpiceNumber("").has_value());
  EXPECT_FALSE(ParseSpiceNumber("abc").has_value());
  EXPECT_FALSE(ParseSpiceNumber("1.2.3").has_value());
  EXPECT_FALSE(ParseSpiceNumber("1k 2").has_value());
  EXPECT_FALSE(ParseSpiceNumber("1k!").has_value());
}

TEST(FormatDouble, Compact) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(1234567.0, 3), "1.23e+06");
}

}  // namespace
}  // namespace wavepipe::util
