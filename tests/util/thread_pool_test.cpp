#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace wavepipe::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([] { return 21 * 2; });
  auto f2 = pool.Submit([] { return std::string("hello"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "hello");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor must wait for queued work.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TasksRunConcurrentlyWithWorkers) {
  // Submit from inside a task (reentrant submission must not deadlock as
  // long as the submitting task doesn't block on its child with 1 worker).
  ThreadPool pool(2);
  auto outer = pool.Submit([&pool] {
    auto inner = pool.Submit([] { return 5; });
    return inner.get();
  });
  EXPECT_EQ(outer.get(), 5);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  // Historically this silently enqueued a task no worker would ever run;
  // the caller's future.get() then deadlocked forever.
  ThreadPool pool(2);
  auto pre = pool.Submit([] { return 1; });
  EXPECT_EQ(pre.get(), 1);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] { return 2; }), Error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrains) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  pool.Shutdown();  // must be a no-op, not a crash
  EXPECT_EQ(counter.load(), 20);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, InjectedTaskThrowSurfacesThroughFuture) {
  // The pool.task_throw fault fires inside the packaged task, so the
  // injected exception takes the same path as a genuine task failure.
  ThreadPool pool(2);
  {
    fault::ScopedFault site("pool.task_throw");
    auto f = pool.Submit([] { return 3; });
    EXPECT_THROW(f.get(), fault::FaultInjectedError);
    EXPECT_EQ(site.fired(), 1u);
  }
  // Disarmed again: the pool is healthy and reusable.
  auto ok = pool.Submit([] { return 4; });
  EXPECT_EQ(ok.get(), 4);
}

}  // namespace
}  // namespace wavepipe::util
