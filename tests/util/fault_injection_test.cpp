#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace wavepipe::util::fault {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

TEST_F(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(Enabled());
  // The macro must be safe (and false) with nothing armed.
  EXPECT_FALSE(WP_FAULT_POINT("newton.converge"));
  EXPECT_EQ(Hits("newton.converge"), 0u);
}

TEST_F(FaultInjectionTest, SkipThenFireWindow) {
  Schedule schedule;
  schedule.skip = 2;
  schedule.fire = 3;
  Arm("test.site", schedule);
  EXPECT_TRUE(Enabled());

  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(WP_FAULT_POINT("test.site"));
  const std::vector<bool> expected = {false, false, true, true, true,
                                      false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(Hits("test.site"), 8u);
  EXPECT_EQ(Fired("test.site"), 3u);
}

TEST_F(FaultInjectionTest, UnarmedSiteNeverFiresWhileAnotherIsArmed) {
  Arm("test.armed", {});
  EXPECT_TRUE(Enabled());
  EXPECT_FALSE(WP_FAULT_POINT("test.other"));
  EXPECT_TRUE(WP_FAULT_POINT("test.armed"));
}

TEST_F(FaultInjectionTest, RearmResetsCounters) {
  Schedule schedule;
  schedule.fire = Schedule::kUnlimited;
  Arm("test.site", schedule);
  EXPECT_TRUE(WP_FAULT_POINT("test.site"));
  EXPECT_TRUE(WP_FAULT_POINT("test.site"));
  EXPECT_EQ(Fired("test.site"), 2u);

  Arm("test.site", schedule);  // re-arm resets
  EXPECT_EQ(Hits("test.site"), 0u);
  EXPECT_EQ(Fired("test.site"), 0u);
}

TEST_F(FaultInjectionTest, ProbabilityStreamIsDeterministic) {
  Schedule schedule;
  schedule.fire = Schedule::kUnlimited;
  schedule.probability = 0.4;
  schedule.seed = 12345;

  auto run = [&schedule]() {
    Arm("test.prob", schedule);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(WP_FAULT_POINT("test.prob"));
    Disarm("test.prob");
    return fired;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);

  // The stream must actually mix: neither all-true nor all-false at p=0.4.
  int count = 0;
  for (const bool b : first) count += b ? 1 : 0;
  EXPECT_GT(count, 8);
  EXPECT_LT(count, 56);
}

TEST_F(FaultInjectionTest, DisarmAllTurnsTheHarnessOff) {
  Arm("test.a", {});
  Arm("test.b", {});
  EXPECT_TRUE(Enabled());
  DisarmAll();
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(WP_FAULT_POINT("test.a"));
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault fault("test.scoped");
    EXPECT_TRUE(Enabled());
    EXPECT_TRUE(WP_FAULT_POINT("test.scoped"));
    EXPECT_EQ(fault.hits(), 1u);
    EXPECT_EQ(fault.fired(), 1u);
  }
  EXPECT_FALSE(Enabled());
}

TEST_F(FaultInjectionTest, InjectedErrorIsDistinctType) {
  try {
    throw FaultInjectedError("test.site");
  } catch (const Error& error) {
    EXPECT_STREQ(error.what(), "injected fault: test.site");
  }
}

}  // namespace
}  // namespace wavepipe::util::fault
