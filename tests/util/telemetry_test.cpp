// Telemetry layer: counter-registry semantics (ordering, uniqueness) and the
// span capture machinery (lanes, nesting, epoch discipline).  Span tests are
// gated on kSpansCompiledIn so the suite still passes in a
// WAVEPIPE_TELEMETRY=OFF build.
#include "util/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "engine/newton.hpp"
#include "engine/transient.hpp"
#include "parallel/fine_grained.hpp"
#include "sparse/lu.hpp"
#include "util/error.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::util::telemetry {
namespace {

TEST(CounterRegistryTest, PreservesInsertionOrder) {
  CounterRegistry registry;
  registry.Count("b.second", 2);
  registry.Count("a.first", 1);
  registry.Value("c.third", 3.5);

  ASSERT_EQ(registry.size(), 3u);
  const auto names = registry.Names();
  EXPECT_EQ(names[0], "b.second");
  EXPECT_EQ(names[1], "a.first");
  EXPECT_EQ(names[2], "c.third");
  EXPECT_TRUE(registry.counters()[0].integral);
  EXPECT_FALSE(registry.counters()[2].integral);
}

TEST(CounterRegistryTest, FindLocatesByName) {
  CounterRegistry registry;
  registry.Count("x.count", 7);
  const Counter* counter = registry.Find("x.count");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 7.0);
  EXPECT_EQ(registry.Find("missing"), nullptr);
}

TEST(CounterRegistryTest, DuplicateNameThrows) {
  CounterRegistry registry;
  registry.Count("dup", 1);
  EXPECT_THROW(registry.Count("dup", 2), Error);
  EXPECT_THROW(registry.Value("dup", 2.0), Error);
}

// The run-stats schema depends on every stats struct exporting into ONE
// registry without prefix collisions; a new counter that clashes should die
// here, not in a CLI run.
TEST(CounterRegistryTest, AllStatsStructsExportDisjointNames) {
  CounterRegistry registry;
  engine::TransientStats transient;
  engine::NewtonStats newton;
  engine::AssemblyStats assembly;
  pipeline::PipelineSchedStats sched;
  parallel::PhaseBreakdown phases;
  sparse::SparseLu::Stats lu;

  EXPECT_NO_THROW({
    transient.ExportCounters(registry);
    newton.ExportCounters(registry);
    assembly.ExportCounters(registry);
    sched.ExportCounters(registry);
    phases.ExportCounters(registry);
    lu.ExportCounters(registry);
  });
  EXPECT_GT(registry.size(), 50u);
}

TEST(SpanCaptureTest, InactiveByDefault) {
  EXPECT_FALSE(CaptureActive());
  {
    Span span("cat", "ignored");
    Instant("cat", "ignored");
  }
  // Starting a capture AFTER those spans must not resurrect them.
  if (kSpansCompiledIn) {
    StartCapture();
    const Capture capture = StopCapture();
    EXPECT_TRUE(capture.events.empty());
  }
}

TEST(SpanCaptureTest, RecordsNestedSpansWithDepth) {
  if (!kSpansCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  StartCapture();
  {
    ScopedLane lane(3, "lane-three");
    Span outer("outer-cat", "outer");
    {
      Span inner("inner-cat", "inner");
    }
  }
  const Capture capture = StopCapture();

  ASSERT_EQ(capture.events.size(), 2u);
  // Events are sorted by start time: outer opened first.
  const SpanEvent& outer = capture.events[0];
  const SpanEvent& inner = capture.events[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(outer.lane, 3u);
  EXPECT_EQ(inner.lane, 3u);
  EXPECT_EQ(inner.depth, outer.depth + 1);
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_GE(outer.start_us + outer.dur_us, inner.start_us + inner.dur_us);

  // Lane labels are process-global (first registration wins), so look up
  // this test's lane rather than assuming a fresh table.
  const auto lane_it =
      std::find_if(capture.lanes.begin(), capture.lanes.end(),
                   [](const LaneLabel& l) { return l.lane == 3u; });
  ASSERT_NE(lane_it, capture.lanes.end());
  EXPECT_EQ(lane_it->label, "lane-three");
}

TEST(SpanCaptureTest, ThreadsRecordIntoTheirOwnLanes) {
  if (!kSpansCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  StartCapture();
  // Span names must be static strings (nothing is copied on the hot path).
  static const char* const kTaskNames[] = {"task-0", "task-1", "task-2"};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] {
      ScopedLane lane(static_cast<std::uint32_t>(t + 10),
                      "worker-" + std::to_string(t));
      Span span("work", kTaskNames[t]);
    });
  }
  for (auto& thread : threads) thread.join();
  const Capture capture = StopCapture();

  ASSERT_EQ(capture.events.size(), 3u);
  // Every worker lane registered (lane table is global; only check ours).
  for (int t = 0; t < 3; ++t) {
    const auto id = static_cast<std::uint32_t>(t + 10);
    const auto it = std::find_if(capture.lanes.begin(), capture.lanes.end(),
                                 [id](const LaneLabel& l) { return l.lane == id; });
    ASSERT_NE(it, capture.lanes.end());
    EXPECT_EQ(it->label, "worker-" + std::to_string(t));
  }
  for (const auto& event : capture.events) {
    const std::string expected = "task-" + std::to_string(event.lane - 10);
    EXPECT_EQ(std::string(event.name), expected);
  }
}

TEST(SpanCaptureTest, ScopedLaneRestoresPreviousLane) {
  ScopedLane outer(5, "outer");
  EXPECT_EQ(CurrentLane(), 5u);
  {
    ScopedLane inner(9, "inner");
    EXPECT_EQ(CurrentLane(), 9u);
  }
  EXPECT_EQ(CurrentLane(), 5u);
}

TEST(SpanCaptureTest, SpanStraddlingStartIsDropped) {
  if (!kSpansCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  // A span opened before StartCapture belongs to no epoch; closing it inside
  // the capture window must not record a torn event.
  auto straddler = std::make_unique<Span>("cat", "straddler");
  StartCapture();
  {
    Span fresh("cat", "fresh");
  }
  straddler.reset();
  const Capture capture = StopCapture();
  ASSERT_EQ(capture.events.size(), 1u);
  EXPECT_STREQ(capture.events[0].name, "fresh");
}

TEST(SpanCaptureTest, InstantEventsAreMarked) {
  if (!kSpansCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  StartCapture();
  Instant("lte", "reject");
  const Capture capture = StopCapture();
  ASSERT_EQ(capture.events.size(), 1u);
  EXPECT_TRUE(capture.events[0].instant);
  EXPECT_STREQ(capture.events[0].category, "lte");
  EXPECT_EQ(capture.events[0].dur_us, 0.0);
}

}  // namespace
}  // namespace wavepipe::util::telemetry
