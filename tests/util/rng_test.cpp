#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wavepipe::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowCoversRangeUnbiased) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit in 1000 draws
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LogUniformWithinBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.LogUniform(1e-12, 1e-6);
    EXPECT_GE(v, 1e-12);
    EXPECT_LE(v, 1e-6 * (1 + 1e-12));
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace wavepipe::util
