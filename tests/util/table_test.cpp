#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wavepipe::util {
namespace {

TEST(Table, RendersAlignedAscii) {
  Table t({"circuit", "nodes", "speedup"});
  t.AddRow({"mesh32", "1024", "1.52"});
  t.AddRow({"ring9", "11", "1.9"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| circuit"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  // Numeric columns right-aligned: "1.9" should be padded on the left.
  EXPECT_NE(s.find(" 1.9 "), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.AddRow({"a,b", "say \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CellFormatters) {
  EXPECT_EQ(Table::Cell(3), "3");
  EXPECT_EQ(Table::Cell(std::size_t{42}), "42");
  EXPECT_EQ(Table::Cell(1.25, 3), "1.25");
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::logic_error);
}

TEST(Table, EmptyTableStillRenders) {
  Table t({"h1"});
  EXPECT_NE(t.ToString().find("h1"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "h1\n");
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  AsciiChart chart(40, 10);
  chart.AddSeries("rising", {{0, 0}, {1, 1}});
  chart.AddSeries("falling", {{0, 1}, {1, 0}});
  const std::string s = chart.ToString();
  EXPECT_NE(s.find("rising"), std::string::npos);
  EXPECT_NE(s.find("falling"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);
}

TEST(AsciiChart, EmptyChartDoesNotCrash) {
  AsciiChart chart(10, 5);
  EXPECT_EQ(chart.ToString(), "(empty chart)\n");
}

}  // namespace
}  // namespace wavepipe::util
