#include "util/error.hpp"

#include <gtest/gtest.h>

namespace wavepipe {
namespace {

TEST(Error, HierarchyIsCatchable) {
  try {
    throw ParseError("bad token", 12);
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 12"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad token"), std::string::npos);
  }
}

TEST(Error, ParseErrorWithoutLine) {
  ParseError e("oops");
  EXPECT_EQ(std::string(e.what()), "parse error: oops");
  EXPECT_EQ(e.line(), 0);
}

TEST(Error, SingularMatrixCarriesColumn) {
  SingularMatrixError e("singular", 5);
  EXPECT_EQ(e.column(), 5);
  SingularMatrixError no_col("singular");
  EXPECT_EQ(no_col.column(), -1);
}

TEST(Error, AssertMacroThrowsLogicError) {
  EXPECT_THROW(WP_ASSERT(1 == 2), std::logic_error);
  EXPECT_NO_THROW(WP_ASSERT(1 == 1));
}

TEST(Error, AssertMessageNamesExpression) {
  try {
    WP_ASSERT(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("2 + 2 == 5"), std::string::npos);
  }
}

}  // namespace
}  // namespace wavepipe
