// Single-device test harness: implements Binder + PatternBuilder and drives
// Eval() against hand-written unknown vectors, exposing the stamped Jacobian
// as a (row, col) -> value map.  Lets device unit tests check stamps without
// the full engine.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "devices/device.hpp"
#include "util/error.hpp"

namespace wavepipe::testutil {

class DeviceHarness : public devices::Binder, public devices::PatternBuilder {
 public:
  /// `num_nodes` fixes where branch unknowns start.
  explicit DeviceHarness(int num_nodes) : num_nodes_(num_nodes) {}

  /// Runs Bind + DeclarePattern for the device (call once).
  void Setup(devices::Device& device) {
    device.Bind(*this);
    device.DeclarePattern(*this);
    limit_a_.assign(static_cast<std::size_t>(num_limits_), 0.0);
    limit_b_.assign(static_cast<std::size_t>(num_limits_), 0.0);
    state_now_.assign(static_cast<std::size_t>(num_states_), 0.0);
    state_hist_.assign(static_cast<std::size_t>(num_states_), 0.0);
  }

  struct EvalResult {
    std::map<std::pair<int, int>, double> jacobian;
    std::vector<double> rhs;
    std::vector<double> states;
  };

  struct EvalSpec {
    std::vector<double> x;  ///< unknowns (nodes then branches)
    double time = 0.0;
    double a0 = 0.0;
    bool transient = false;
    double gmin = 0.0;
    double source_scale = 1.0;
    std::vector<double> state_hist;  ///< optional; zero if empty
    bool limit_valid = false;        ///< carry limiting memory from last Eval
  };

  EvalResult Eval(const devices::Device& device, const EvalSpec& spec) {
    const int total = num_nodes_ + num_branches_;
    std::vector<double> x = spec.x;
    x.resize(static_cast<std::size_t>(total), 0.0);
    std::vector<double> values(coords_.size(), 0.0);
    std::vector<double> rhs(static_cast<std::size_t>(total), 0.0);
    if (!spec.state_hist.empty()) {
      state_hist_ = spec.state_hist;
      state_hist_.resize(static_cast<std::size_t>(num_states_), 0.0);
    } else {
      state_hist_.assign(static_cast<std::size_t>(num_states_), 0.0);
    }

    devices::EvalContext ctx;
    ctx.time = spec.time;
    ctx.a0 = spec.a0;
    ctx.transient = spec.transient;
    ctx.first_iteration = !spec.limit_valid;
    ctx.gmin = spec.gmin;
    ctx.source_scale = spec.source_scale;
    ctx.x = x;
    ctx.jacobian_values = values;
    ctx.rhs = rhs;
    ctx.state_now = state_now_;
    ctx.state_hist = state_hist_;
    ctx.limit_prev = limit_a_;
    ctx.limit_now = limit_b_;
    ctx.limit_valid = spec.limit_valid;
    device.Eval(ctx);
    std::swap(limit_a_, limit_b_);

    EvalResult out;
    out.rhs = std::move(rhs);
    out.states = state_now_;
    for (std::size_t k = 0; k < coords_.size(); ++k) {
      out.jacobian[coords_[k]] += values[k];
    }
    return out;
  }

  int num_branches() const { return num_branches_; }
  int num_states() const { return num_states_; }

  // Binder:
  int AddBranch(const std::string&) override { return num_nodes_ + num_branches_++; }
  int AddState(const std::string&) override { return num_states_++; }
  int AddLimitSlot() override { return num_limits_++; }
  int BranchOf(const std::string& name) override {
    const auto it = known_branches_.find(name);
    if (it == known_branches_.end()) throw wavepipe::ElaborationError("no branch: " + name);
    return it->second;
  }

  /// Pre-registers a foreign branch for F/H/K devices.
  void RegisterBranch(const std::string& name, int index) { known_branches_[name] = index; }

  // PatternBuilder:
  int Entry(int row, int col) override {
    if (row < 0 || col < 0) return -1;
    coords_.emplace_back(row, col);
    return static_cast<int>(coords_.size()) - 1;
  }

 private:
  int num_nodes_;
  int num_branches_ = 0;
  int num_states_ = 0;
  int num_limits_ = 0;
  std::vector<std::pair<int, int>> coords_;
  std::map<std::string, int> known_branches_;
  std::vector<double> limit_a_, limit_b_;
  std::vector<double> state_now_, state_hist_;
};

}  // namespace wavepipe::testutil
