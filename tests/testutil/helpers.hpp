// Shared helpers for the WavePipe test suites: tiny canonical circuits with
// closed-form behaviour, plus wrappers that run an analysis in one call.
#pragma once

#include <cmath>
#include <memory>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/circuit.hpp"
#include "engine/dcop.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"
#include "engine/transient.hpp"

namespace wavepipe::testutil {

/// V(1V) -> R(1k) -> node out -> C(1uF) to ground.  tau = 1 ms.
struct RcFixture {
  std::unique_ptr<engine::Circuit> circuit;
  int in = -1;
  int out = -1;
  double r = 1e3;
  double c = 1e-6;
  double tau() const { return r * c; }
};

inline RcFixture MakeStepRc(double delay = 0.0) {
  RcFixture f;
  f.circuit = std::make_unique<engine::Circuit>();
  f.in = f.circuit->AddNode("in");
  f.out = f.circuit->AddNode("out");
  std::unique_ptr<devices::Waveform> wave;
  if (delay > 0.0) {
    wave = std::make_unique<devices::PulseWaveform>(0.0, 1.0, delay, 1e-9, 1e-9, 1.0, 2.0);
  } else {
    wave = std::make_unique<devices::DcWaveform>(1.0);
  }
  f.circuit->Emplace<devices::VoltageSource>("vin", f.in, devices::kGround, std::move(wave));
  f.circuit->Emplace<devices::Resistor>("r1", f.in, f.out, f.r);
  f.circuit->Emplace<devices::Capacitor>("c1", f.out, devices::kGround, f.c);
  f.circuit->Finalize();
  return f;
}

/// Series RLC: V(step at t = delay) - R - L - C to ground.  Underdamped for
/// the defaults.  The source steps AFTER t = 0 so the DC operating point is
/// the discharged state and a real transient follows.
struct RlcFixture {
  std::unique_ptr<engine::Circuit> circuit;
  int vc = -1;  ///< capacitor voltage node
  double r = 10.0, l = 1e-3, c = 1e-6;
  double delay = 1e-5;
  double omega0() const { return 1.0 / std::sqrt(l * c); }
  double alpha() const { return r / (2 * l); }
};

inline RlcFixture MakeSeriesRlc() {
  RlcFixture f;
  f.circuit = std::make_unique<engine::Circuit>();
  const int in = f.circuit->AddNode("in");
  const int mid = f.circuit->AddNode("mid");
  f.vc = f.circuit->AddNode("vc");
  f.circuit->Emplace<devices::VoltageSource>(
      "vin", in, devices::kGround,
      std::make_unique<devices::PulseWaveform>(0.0, 1.0, f.delay, 1e-9, 1e-9, 1.0, 2.0));
  f.circuit->Emplace<devices::Resistor>("r1", in, mid, f.r);
  f.circuit->Emplace<devices::Inductor>("l1", mid, f.vc, f.l);
  f.circuit->Emplace<devices::Capacitor>("c1", f.vc, devices::kGround, f.c);
  f.circuit->Finalize();
  return f;
}

/// Runs DC on a finalized circuit, returns the solution vector.
inline std::vector<double> SolveDc(const engine::Circuit& circuit,
                                   engine::SimOptions options = {}) {
  engine::MnaStructure mna(circuit);
  engine::SolveContext ctx(circuit, mna);
  engine::SolveDcOperatingPoint(ctx, options);
  return ctx.x;
}

/// Runs a serial transient with default options.
inline engine::TransientResult RunSerial(const engine::Circuit& circuit,
                                         const engine::TransientSpec& spec,
                                         engine::SimOptions options = {}) {
  engine::MnaStructure mna(circuit);
  return engine::RunTransientSerial(circuit, mna, spec, options);
}

}  // namespace wavepipe::testutil
