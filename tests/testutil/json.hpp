// Minimal recursive-descent JSON parser for tests that need to validate
// machine-readable artifacts by parsing them back (trace_export_test.cpp).
// Strict on structure (throws std::runtime_error on malformed input), loose
// on nothing — it accepts exactly the JSON grammar, no extensions.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace wavepipe::testutil {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("json: missing key '" + key + "'");
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (Consume("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (Consume("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (Consume("null")) return JsonValue{};
    return ParseNumber();
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      v.object[key.string] = ParseValue();
      const char c = Peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      const char c = Peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
  }

  JsonValue ParseString() {
    Expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Tests only emit ASCII control escapes; keep the decoder simple.
            v.string += static_cast<char>(code & 0x7f);
            break;
          }
          default: Fail("bad escape");
        }
      } else {
        v.string += c;
      }
    }
  }

  JsonValue ParseNumber() {
    SkipSpace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) Fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) Fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) Fail("digits required in exponent");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline JsonValue ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace wavepipe::testutil
