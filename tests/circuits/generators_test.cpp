#include "circuits/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "engine/transient.hpp"

namespace wavepipe::circuits {
namespace {

TEST(Generators, RcLadderTopology) {
  const auto gen = MakeRcLadder(10);
  EXPECT_EQ(gen.circuit->num_nodes(), 11);      // in + 10 stages
  EXPECT_EQ(gen.circuit->num_branches(), 1);    // the driver
  EXPECT_EQ(gen.circuit->num_devices(), 21u);   // 10 R + 10 C + 1 V
  EXPECT_FALSE(gen.circuit->is_nonlinear());
  EXPECT_EQ(gen.kind, "linear");
  EXPECT_GT(gen.spec.tstop, 0.0);
}

TEST(Generators, RcMeshScalesWithGrid) {
  const auto small = MakeRcMesh(4, 4);
  const auto big = MakeRcMesh(8, 8);
  EXPECT_GT(big.circuit->num_nodes(), small.circuit->num_nodes());
  EXPECT_EQ(small.circuit->num_nodes(), 17);  // 16 grid + vdd pin
}

TEST(Generators, RcMeshDeterministicBySeed) {
  const auto a = MakeRcMesh(5, 5, /*seed=*/3);
  const auto b = MakeRcMesh(5, 5, /*seed=*/3);
  EXPECT_EQ(a.circuit->num_devices(), b.circuit->num_devices());
  const auto bps_a = a.circuit->CollectBreakpoints(0, a.spec.tstop);
  const auto bps_b = b.circuit->CollectBreakpoints(0, b.spec.tstop);
  EXPECT_EQ(bps_a, bps_b);
}

TEST(Generators, RingOscillatorOscillates) {
  const auto gen = MakeRingOscillator(5);
  engine::MnaStructure mna(*gen.circuit);
  const auto res =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  int crossings = 0;
  const double mid = 1.25;
  for (std::size_t i = 1; i < res.trace.num_samples(); ++i) {
    if ((res.trace.value(i - 1, 0) - mid) * (res.trace.value(i, 0) - mid) < 0) ++crossings;
  }
  EXPECT_GE(crossings, 6) << "ring oscillator failed to start";
}

TEST(Generators, RingRequiresOddStages) {
  EXPECT_THROW(MakeRingOscillator(4), std::logic_error);
  EXPECT_THROW(MakeRingOscillator(1), std::logic_error);
}

TEST(Generators, InverterChainPropagatesEdge) {
  const auto gen = MakeInverterChain(4);
  engine::MnaStructure mna(*gen.circuit);
  const auto res =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  // Probe 1 is the last stage; with an even number of inverters it follows
  // the input, so it must swing rail-to-rail at least once.
  double vmin = 1e9, vmax = -1e9;
  for (std::size_t i = 0; i < res.trace.num_samples(); ++i) {
    vmin = std::min(vmin, res.trace.value(i, 1));
    vmax = std::max(vmax, res.trace.value(i, 1));
  }
  EXPECT_LT(vmin, 0.3);
  EXPECT_GT(vmax, 2.2);
}

TEST(Generators, RectifierRectifies) {
  const auto gen = MakeDiodeRectifier(0);
  engine::MnaStructure mna(*gen.circuit);
  const auto res =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  // Probe 1 = outp: after a few cycles the smoothed DC output is positive
  // and clearly nonzero.
  const double v_late = res.trace.value(res.trace.num_samples() - 1, 1);
  EXPECT_GT(v_late, 1.0);
}

TEST(Generators, AmplifierAmplifies) {
  const auto gen = MakeMosAmplifierChain(1, /*freq=*/5e6);
  engine::MnaStructure mna(*gen.circuit);
  const auto res =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  // Output AC amplitude in the second half of the run must exceed the 10 mV
  // input amplitude (stage gain ~ gm * Rd >> 1).
  double vmin = 1e9, vmax = -1e9;
  for (std::size_t i = res.trace.num_samples() / 2; i < res.trace.num_samples(); ++i) {
    vmin = std::min(vmin, res.trace.value(i, 1));
    vmax = std::max(vmax, res.trace.value(i, 1));
  }
  EXPECT_GT(vmax - vmin, 2 * 10e-3);
}

TEST(Generators, ClockTreeLeavesToggle) {
  const auto gen = MakeClockTree(2);
  engine::MnaStructure mna(*gen.circuit);
  const auto res =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  double vmin = 1e9, vmax = -1e9;
  for (std::size_t i = 0; i < res.trace.num_samples(); ++i) {
    vmin = std::min(vmin, res.trace.value(i, 1));
    vmax = std::max(vmax, res.trace.value(i, 1));
  }
  EXPECT_LT(vmin, 0.4);
  EXPECT_GT(vmax, 2.1);
}

TEST(Generators, BenchmarkSuiteCoversAllKinds) {
  const auto suite = MakeBenchmarkSuite();
  ASSERT_GE(suite.size(), 6u);
  bool linear = false, digital = false, analog = false, mixed = false;
  for (const auto& gen : suite) {
    ASSERT_TRUE(gen.circuit->finalized()) << gen.name;
    EXPECT_GT(gen.spec.tstop, gen.spec.tstart) << gen.name;
    EXPECT_GT(gen.spec.probes.size(), 0u) << gen.name;
    linear |= gen.kind == "linear";
    digital |= gen.kind == "digital";
    analog |= gen.kind == "analog";
    mixed |= gen.kind == "mixed";
  }
  EXPECT_TRUE(linear && digital && analog && mixed);
}

TEST(Generators, DefaultModelsSane) {
  const auto nmos = DefaultNmos();
  const auto pmos = DefaultPmos();
  EXPECT_EQ(nmos.type, 1);
  EXPECT_EQ(pmos.type, -1);
  EXPECT_GT(nmos.vto, 0);
  EXPECT_LT(pmos.vto, 0);
  EXPECT_GT(nmos.CoxPerArea(), 0);
}

}  // namespace
}  // namespace wavepipe::circuits
