#include "devices/passive.hpp"

#include <gtest/gtest.h>

#include "testutil/device_harness.hpp"

namespace wavepipe::devices {
namespace {

using testutil::DeviceHarness;

TEST(Resistor, StampsConductanceBlock) {
  Resistor r("r1", 0, 1, 100.0);
  DeviceHarness h(2);
  h.Setup(r);
  const auto out = h.Eval(r, {.x = {1.0, 0.0}});
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, 0}), 0.01);
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, 1}), -0.01);
  EXPECT_DOUBLE_EQ(out.jacobian.at({1, 0}), -0.01);
  EXPECT_DOUBLE_EQ(out.jacobian.at({1, 1}), 0.01);
  EXPECT_DOUBLE_EQ(out.rhs[0], 0.0);
}

TEST(Resistor, GroundedTerminalDiscardsGroundStamps) {
  Resistor r("r1", 0, kGround, 1e3);
  DeviceHarness h(1);
  h.Setup(r);
  const auto out = h.Eval(r, {.x = {2.0}});
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, 0}), 1e-3);
  EXPECT_EQ(out.jacobian.size(), 1u);  // only the (0,0) entry exists
}

TEST(Capacitor, OpenInDc) {
  Capacitor c("c1", 0, 1, 1e-9);
  DeviceHarness h(2);
  h.Setup(c);
  const auto out = h.Eval(c, {.x = {1.0, 0.0}, .a0 = 0.0, .transient = false});
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(out.rhs[0], 0.0);
  // Charge still tracked for the transient handoff.
  EXPECT_DOUBLE_EQ(out.states[0], 1e-9 * 1.0);
}

TEST(Capacitor, CompanionModelBackwardEuler) {
  // BE with h: a0 = 1/h; hist = -q_n/h.  v_n = 1 (q_n = C), v_new = 2.
  const double c_val = 1e-9, hstep = 1e-6;
  Capacitor c("c1", 0, kGround, c_val);
  DeviceHarness h(1);
  h.Setup(c);
  const double a0 = 1.0 / hstep;
  const double hist = -c_val * 1.0 / hstep;
  const auto out = h.Eval(c, {.x = {2.0}, .a0 = a0, .transient = true,
                              .state_hist = {hist}});
  const double geq = a0 * c_val;
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, 0}), geq);
  // i = a0*q_new + hist = C*(2-1)/h; ieq = i - geq*v = C/h - 2C/h = -C/h.
  EXPECT_NEAR(out.rhs[0], c_val / hstep, 1e-18);
  EXPECT_DOUBLE_EQ(out.states[0], 2.0 * c_val);
}

TEST(Inductor, ShortInDc) {
  Inductor l("l1", 0, 1, 1e-3);
  DeviceHarness h(2);
  h.Setup(l);
  ASSERT_EQ(h.num_branches(), 1);
  const int b = 2;  // branch unknown index
  const auto out = h.Eval(l, {.x = {1.0, 1.0, 0.5}, .a0 = 0.0, .transient = false});
  // Branch equation v_p - v_n = 0 and KCL hookups.
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 0}), 1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 1}), -1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, b}), 1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({1, b}), -1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, b}), 0.0);
  EXPECT_DOUBLE_EQ(out.rhs[b], 0.0);
  // Flux state = L * i.
  EXPECT_DOUBLE_EQ(out.states[0], 1e-3 * 0.5);
}

TEST(Inductor, TransientBranchEquation) {
  const double l_val = 1e-3, hstep = 1e-6, i_old = 2.0;
  Inductor l("l1", 0, kGround, l_val);
  DeviceHarness h(1);
  h.Setup(l);
  const int b = 1;
  const double a0 = 1.0 / hstep;                       // BE
  const double hist = -l_val * i_old / hstep;          // -phi_n / h
  const auto out = h.Eval(l, {.x = {0.0, 3.0}, .a0 = a0, .transient = true,
                              .state_hist = {hist}});
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, b}), -a0 * l_val);
  // RHS = hist term: flux_dot - a0*flux = hist.
  EXPECT_NEAR(out.rhs[b], hist, 1e-12);
}

TEST(MutualInductance, CrossCouplesBranches) {
  Inductor l1("l1", 0, kGround, 1e-3);
  Inductor l2("l2", 1, kGround, 4e-3);
  MutualInductance k("k1", "l1", "l2", 0.5, 1e-3, 4e-3);
  // M = 0.5 * sqrt(4e-6) = 1e-3.
  EXPECT_DOUBLE_EQ(k.mutual(), 1e-3);

  DeviceHarness h(2);
  h.Setup(l1);
  h.Setup(l2);
  h.RegisterBranch("l1", 2);
  h.RegisterBranch("l2", 3);
  h.Setup(k);
  const double a0 = 1e6;
  const auto out = h.Eval(k, {.x = {0, 0, 1.0, 2.0}, .a0 = a0, .transient = true});
  EXPECT_DOUBLE_EQ(out.jacobian.at({2, 3}), -a0 * 1e-3);
  EXPECT_DOUBLE_EQ(out.jacobian.at({3, 2}), -a0 * 1e-3);
  // Cross fluxes recorded: q12 = M*i2, q21 = M*i1.
  EXPECT_DOUBLE_EQ(out.states[2], 1e-3 * 2.0);
  EXPECT_DOUBLE_EQ(out.states[3], 1e-3 * 1.0);
}

TEST(MutualInductance, RejectsInvalidCoupling) {
  EXPECT_THROW(MutualInductance("k", "a", "b", 1.5, 1e-3, 1e-3), std::logic_error);
  EXPECT_THROW(MutualInductance("k", "a", "b", 0.0, 1e-3, 1e-3), std::logic_error);
}

TEST(Resistor, ZeroResistanceAsserts) {
  EXPECT_THROW(Resistor("r", 0, 1, 0.0), std::logic_error);
}

}  // namespace
}  // namespace wavepipe::devices
