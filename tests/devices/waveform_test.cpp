#include "devices/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wavepipe::devices {
namespace {

TEST(DcWaveform, Constant) {
  DcWaveform w(2.5);
  EXPECT_DOUBLE_EQ(w.Value(0.0), 2.5);
  EXPECT_DOUBLE_EQ(w.Value(1e9), 2.5);
  EXPECT_DOUBLE_EQ(w.DcValue(), 2.5);
  std::vector<double> bps;
  w.CollectBreakpoints(0, 1, bps);
  EXPECT_TRUE(bps.empty());
}

TEST(PulseWaveform, PiecewiseShape) {
  // v1=0 v2=1 td=1 tr=1 tf=1 pw=2 per=10
  PulseWaveform w(0, 1, 1, 1, 1, 2, 10);
  EXPECT_DOUBLE_EQ(w.Value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.Value(0.999), 0.0);
  EXPECT_DOUBLE_EQ(w.Value(1.5), 0.5);   // mid-rise
  EXPECT_DOUBLE_EQ(w.Value(2.0), 1.0);   // top start
  EXPECT_DOUBLE_EQ(w.Value(3.5), 1.0);   // still top
  EXPECT_DOUBLE_EQ(w.Value(4.5), 0.5);   // mid-fall
  EXPECT_DOUBLE_EQ(w.Value(6.0), 0.0);   // low
  // Periodicity.
  EXPECT_DOUBLE_EQ(w.Value(11.5), 0.5);
  EXPECT_DOUBLE_EQ(w.Value(12.0), 1.0);
}

TEST(PulseWaveform, SinglePulseWhenNoPeriod) {
  PulseWaveform w(0, 1, 0, 0.1, 0.1, 0.5, 0.0);  // period <= 0 -> single shot
  EXPECT_DOUBLE_EQ(w.Value(0.3), 1.0);
  EXPECT_DOUBLE_EQ(w.Value(100.0), 0.0);
}

TEST(PulseWaveform, BreakpointsWithinWindow) {
  PulseWaveform w(0, 1, 1, 1, 1, 2, 10);
  std::vector<double> bps;
  w.CollectBreakpoints(0.0, 10.0, bps);
  // First period corners: 1, 2, 4, 5.
  ASSERT_GE(bps.size(), 4u);
  EXPECT_DOUBLE_EQ(bps[0], 1.0);
  EXPECT_DOUBLE_EQ(bps[1], 2.0);
  EXPECT_DOUBLE_EQ(bps[2], 4.0);
  EXPECT_DOUBLE_EQ(bps[3], 5.0);
}

TEST(PulseWaveform, BreakpointsRespectHalfOpenWindow) {
  PulseWaveform w(0, 1, 1, 1, 1, 2, 10);
  std::vector<double> bps;
  w.CollectBreakpoints(1.0, 4.0, bps);  // (1, 4]: excludes t=1, includes t=4
  ASSERT_EQ(bps.size(), 2u);
  EXPECT_DOUBLE_EQ(bps[0], 2.0);
  EXPECT_DOUBLE_EQ(bps[1], 4.0);
}

TEST(PulseWaveform, ZeroRiseFallDegradedToFinite) {
  PulseWaveform w(0, 1, 0, 0, 0, 1, 3);
  // Must remain a function (finite slope): value just after t=0 is defined.
  EXPECT_GE(w.Value(1e-13), 0.0);
  EXPECT_DOUBLE_EQ(w.Value(0.5), 1.0);
}

TEST(SinWaveform, BasicSinusoid) {
  SinWaveform w(1.0, 2.0, 1.0);  // offset 1, amp 2, 1 Hz
  EXPECT_DOUBLE_EQ(w.Value(0.0), 1.0);
  EXPECT_NEAR(w.Value(0.25), 3.0, 1e-12);
  EXPECT_NEAR(w.Value(0.75), -1.0, 1e-12);
}

TEST(SinWaveform, DelayAndDamping) {
  SinWaveform w(0.0, 1.0, 1.0, /*delay=*/1.0, /*damping=*/1.0);
  EXPECT_DOUBLE_EQ(w.Value(0.5), 0.0);  // before delay
  EXPECT_NEAR(w.Value(1.25), std::exp(-0.25), 1e-12);
  std::vector<double> bps;
  w.CollectBreakpoints(0, 2, bps);
  ASSERT_EQ(bps.size(), 1u);
  EXPECT_DOUBLE_EQ(bps[0], 1.0);
}

TEST(ExpWaveform, RiseAndFall) {
  ExpWaveform w(0, 1, 1, 0.5, 3, 0.5);
  EXPECT_DOUBLE_EQ(w.Value(0.5), 0.0);
  EXPECT_NEAR(w.Value(1.5), 1 - std::exp(-1.0), 1e-12);
  // Past fall delay the two exponentials superpose.
  const double v4 = w.Value(4.0);
  EXPECT_LT(v4, w.Value(3.0));
  std::vector<double> bps;
  w.CollectBreakpoints(0, 5, bps);
  EXPECT_EQ(bps.size(), 2u);
}

TEST(PwlWaveform, InterpolatesAndClamps) {
  PwlWaveform w({{1, 0}, {2, 1}, {4, -1}});
  EXPECT_DOUBLE_EQ(w.Value(0.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(w.Value(1.5), 0.5);
  EXPECT_DOUBLE_EQ(w.Value(3.0), 0.0);
  EXPECT_DOUBLE_EQ(w.Value(10.0), -1.0); // clamp right
  std::vector<double> bps;
  w.CollectBreakpoints(0, 5, bps);
  EXPECT_EQ(bps.size(), 3u);
}

TEST(PwlWaveform, RejectsNonMonotonicTimes) {
  EXPECT_THROW(PwlWaveform({{1, 0}, {1, 1}}), std::logic_error);
  EXPECT_THROW(PwlWaveform({{2, 0}, {1, 1}}), std::logic_error);
}

TEST(Waveform, NegativeTimeClampedToZero) {
  PulseWaveform p(0, 1, 0.5, 0.1, 0.1, 1, 5);
  EXPECT_DOUBLE_EQ(p.Value(-1.0), p.Value(0.0));
  SinWaveform s(0, 1, 1);
  EXPECT_DOUBLE_EQ(s.Value(-1.0), s.Value(0.0));
}

}  // namespace
}  // namespace wavepipe::devices
