#include "devices/diode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "testutil/device_harness.hpp"

namespace wavepipe::devices {
namespace {

using testutil::DeviceHarness;

DiodeModel TestModel() {
  DiodeModel m;
  m.is = 1e-14;
  m.n = 1.0;
  m.cj0 = 1e-12;
  m.vj = 0.8;
  m.m = 0.5;
  m.tt = 1e-9;
  return m;
}

TEST(Diode, ShockleyCurrent) {
  Diode d("d1", 0, 1, TestModel());
  const double vt = TestModel().ThermalVoltage();
  EXPECT_NEAR(d.Current(0.0, 0.0), 0.0, 1e-20);
  EXPECT_NEAR(d.Current(vt, 0.0), 1e-14 * (std::exp(1.0) - 1), 1e-18);
  // Reverse saturation.
  EXPECT_NEAR(d.Current(-1.0, 0.0), -1e-14, 1e-15);
}

TEST(Diode, ConductanceIsCurrentDerivative) {
  Diode d("d1", 0, 1, TestModel());
  for (double v : {-0.5, 0.0, 0.3, 0.5, 0.65}) {
    const double eps = 1e-7;
    const double numeric = (d.Current(v + eps, 0.0) - d.Current(v - eps, 0.0)) / (2 * eps);
    const double analytic = d.Conductance(v, 0.0);
    EXPECT_NEAR(analytic, numeric, std::abs(numeric) * 1e-4 + 1e-15) << "v=" << v;
  }
}

TEST(Diode, CapacitanceIsChargeDerivative) {
  Diode d("d1", 0, 1, TestModel());
  for (double v : {-1.0, 0.0, 0.2, 0.39, 0.41, 0.6}) {  // spans the fc*vj corner at 0.4
    const double eps = 1e-7;
    const double numeric = (d.Charge(v + eps) - d.Charge(v - eps)) / (2 * eps);
    const double analytic = d.Capacitance(v);
    EXPECT_NEAR(analytic, numeric, std::abs(numeric) * 1e-3 + 1e-18) << "v=" << v;
  }
}

TEST(Diode, ChargeIsContinuousAcrossFcCorner) {
  Diode d("d1", 0, 1, TestModel());
  const double corner = 0.5 * 0.8;  // fc * vj
  EXPECT_NEAR(d.Charge(corner - 1e-9), d.Charge(corner + 1e-9), 1e-18);
  EXPECT_NEAR(d.Capacitance(corner - 1e-9), d.Capacitance(corner + 1e-9), 1e-15);
}

TEST(Diode, AreaScalesCurrent) {
  Diode d1("d1", 0, 1, TestModel(), 1.0);
  Diode d2("d2", 0, 1, TestModel(), 3.0);
  EXPECT_NEAR(d2.Current(0.5, 0.0), 3.0 * d1.Current(0.5, 0.0), 1e-18);
}

TEST(Diode, GminAddsLinearTerm) {
  Diode d("d1", 0, 1, TestModel());
  const double gmin = 1e-12;
  EXPECT_NEAR(d.Current(0.1, gmin) - d.Current(0.1, 0.0), gmin * 0.1, 1e-18);
  EXPECT_NEAR(d.Conductance(-2.0, gmin), d.Conductance(-2.0, 0.0) + gmin, 1e-20);
}

TEST(Diode, StampConsistentWithModelFunctions) {
  Diode d("d1", 0, kGround, TestModel());
  DeviceHarness h(1);
  h.Setup(d);
  const double vd = 0.55;
  const auto out = h.Eval(d, {.x = {vd}, .gmin = 1e-12});
  const double g = d.Conductance(vd, 1e-12);
  const double i = d.Current(vd, 1e-12);
  EXPECT_NEAR(out.jacobian.at({0, 0}), g, g * 1e-12);
  // rhs = -(i - g*vd).
  EXPECT_NEAR(out.rhs[0], -(i - g * vd), std::abs(i) * 1e-9 + 1e-18);
}

TEST(Diode, LimitingKicksInOnSecondIteration) {
  Diode d("d1", 0, kGround, TestModel());
  DeviceHarness h(1);
  h.Setup(d);
  // First eval seeds the limiting memory near vcrit.
  (void)h.Eval(d, {.x = {0.6}});
  // Second eval proposes a destructive 5 V junction voltage; the stamp must
  // stay finite (unlimited exp(5/0.026) would overflow the companion terms).
  const auto out = h.Eval(d, {.x = {5.0}, .limit_valid = true});
  EXPECT_TRUE(std::isfinite(out.jacobian.at({0, 0})));
  EXPECT_TRUE(std::isfinite(out.rhs[0]));
  EXPECT_LT(out.jacobian.at({0, 0}), 1e3);  // far below exp(5/vt) scale
}

TEST(Diode, ReverseRegionHasPositiveConductance) {
  Diode d("d1", 0, 1, TestModel());
  for (double v : {-0.2, -1.0, -5.0, -20.0}) {
    EXPECT_GT(d.Conductance(v, 0.0), 0.0) << v;
  }
}

TEST(Diode, TransientStampAddsJunctionCap) {
  Diode d("d1", 0, kGround, TestModel());
  DeviceHarness h(1);
  h.Setup(d);
  const double vd = 0.2, a0 = 1e9;
  const auto out = h.Eval(d, {.x = {vd}, .a0 = a0, .transient = true});
  const double expected = d.Conductance(vd, 0.0) + a0 * d.Capacitance(vd);
  EXPECT_NEAR(out.jacobian.at({0, 0}), expected, expected * 1e-9);
}

}  // namespace
}  // namespace wavepipe::devices
