#include "devices/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "testutil/device_harness.hpp"

namespace wavepipe::devices {
namespace {

using testutil::DeviceHarness;

MosfetModel Nmos() {
  MosfetModel m;
  m.type = 1;
  m.vto = 0.7;
  m.kp = 100e-6;
  m.gamma = 0.4;
  m.phi = 0.65;
  m.lambda = 0.02;
  return m;
}

MosfetModel Pmos() {
  MosfetModel m = Nmos();
  m.type = -1;
  m.vto = -0.7;
  return m;
}

TEST(Mosfet, CutoffHasNoCurrent) {
  Mosfet m("m1", 0, 1, 2, 3, Nmos(), 2e-6, 1e-6);
  const auto ch = m.EvalChannel(0.3, 1.0, 0.0);  // vgs < vto
  EXPECT_DOUBLE_EQ(ch.ids, 0.0);
  EXPECT_DOUBLE_EQ(ch.gm, 0.0);
}

TEST(Mosfet, SaturationSquareLaw) {
  MosfetModel model = Nmos();
  model.gamma = 0.0;
  model.lambda = 0.0;
  Mosfet m("m1", 0, 1, 2, 3, model, 2e-6, 1e-6);
  const double beta = model.kp * 2.0;
  const double vgs = 1.7, vds = 2.0;  // vgst = 1.0 < vds -> saturation
  const auto ch = m.EvalChannel(vgs, vds, 0.0);
  EXPECT_NEAR(ch.ids, 0.5 * beta * 1.0, 1e-12);
  EXPECT_NEAR(ch.gm, beta * 1.0, 1e-12);
  EXPECT_NEAR(ch.gds, 0.0, 1e-15);
}

TEST(Mosfet, TriodeRegion) {
  MosfetModel model = Nmos();
  model.gamma = 0.0;
  model.lambda = 0.0;
  Mosfet m("m1", 0, 1, 2, 3, model, 2e-6, 1e-6);
  const double beta = model.kp * 2.0;
  const double vgs = 2.7, vds = 0.5;  // vgst = 2.0 > vds -> triode
  const auto ch = m.EvalChannel(vgs, vds, 0.0);
  EXPECT_NEAR(ch.ids, beta * vds * (2.0 - 0.25), 1e-12);
}

TEST(Mosfet, ChannelCurrentContinuousAtSatBoundary) {
  Mosfet m("m1", 0, 1, 2, 3, Nmos(), 2e-6, 1e-6);
  const double vgs = 1.7;
  // vds at vgst boundary (~1.0 with gamma=0.4 shifting vth slightly).
  for (double vbs : {0.0, -0.5}) {
    const auto a = m.EvalChannel(vgs, 0.999, vbs);
    const auto b = m.EvalChannel(vgs, 1.001, vbs);
    EXPECT_NEAR(a.ids, b.ids, std::abs(a.ids) * 0.02 + 1e-9);
  }
}

TEST(Mosfet, DerivativesMatchFiniteDifferences) {
  Mosfet m("m1", 0, 1, 2, 3, Nmos(), 4e-6, 1e-6);
  const double eps = 1e-6;
  for (double vgs : {0.5, 1.0, 1.8}) {
    for (double vds : {-1.5, -0.3, 0.2, 1.5}) {
      for (double vbs : {0.0, -0.8}) {
        const auto ch = m.EvalChannel(vgs, vds, vbs);
        const double gm_fd =
            (m.EvalChannel(vgs + eps, vds, vbs).ids - m.EvalChannel(vgs - eps, vds, vbs).ids) /
            (2 * eps);
        const double gds_fd =
            (m.EvalChannel(vgs, vds + eps, vbs).ids - m.EvalChannel(vgs, vds - eps, vbs).ids) /
            (2 * eps);
        const double gmbs_fd =
            (m.EvalChannel(vgs, vds, vbs + eps).ids - m.EvalChannel(vgs, vds, vbs - eps).ids) /
            (2 * eps);
        const double tol = 1e-4 * std::max(1e-6, std::abs(ch.ids) / 0.1);
        EXPECT_NEAR(ch.gm, gm_fd, tol) << vgs << " " << vds << " " << vbs;
        EXPECT_NEAR(ch.gds, gds_fd, tol) << vgs << " " << vds << " " << vbs;
        EXPECT_NEAR(ch.gmbs, gmbs_fd, tol) << vgs << " " << vds << " " << vbs;
      }
    }
  }
}

TEST(Mosfet, ReverseModeAntisymmetric) {
  MosfetModel model = Nmos();
  model.gamma = 0.0;  // body effect breaks pure D/S symmetry; remove it
  model.lambda = 0.0;
  Mosfet m("m1", 0, 1, 2, 3, model, 2e-6, 1e-6);
  // Swapping drain and source negates the current: I(vgs, vds) with roles
  // reversed equals -I(vgd, -vds).
  const auto fwd = m.EvalChannel(2.0, 1.0, 0.0);
  const auto rev = m.EvalChannel(1.0, -1.0, -1.0);  // vgs' = vgd = 1, vbs' = vbd
  EXPECT_NEAR(rev.ids, -fwd.ids, std::abs(fwd.ids) * 1e-9);
}

TEST(Mosfet, PmosMirrorsNmos) {
  MosfetModel nm = Nmos();
  nm.gamma = 0;
  MosfetModel pm = Pmos();
  pm.gamma = 0;
  pm.kp = nm.kp;
  Mosfet n("mn", 0, 1, 2, 3, nm, 2e-6, 1e-6);
  Mosfet p("mp", 0, 1, 2, 3, pm, 2e-6, 1e-6);
  // In the folded frame the devices are identical, so equal folded voltages
  // give equal folded currents.
  const auto cn = n.EvalChannel(1.5, 1.0, 0.0);
  const auto cp = p.EvalChannel(1.5, 1.0, 0.0);
  EXPECT_NEAR(cn.ids, cp.ids, std::abs(cn.ids) * 1e-12);
}

TEST(Mosfet, FullStampKclConsistency) {
  // Sum of each Jacobian column over all 4 device rows must be 0 (KCL: what
  // leaves the drain enters the source), and RHS entries must cancel.
  Mosfet m("m1", 0, 1, 2, 3, Nmos(), 2e-6, 1e-6);
  DeviceHarness h(4);
  h.Setup(m);
  const auto out = h.Eval(m, {.x = {1.8, 2.5, 0.0, 0.0}, .a0 = 1e9, .transient = true});
  for (int col = 0; col < 4; ++col) {
    double sum = 0.0;
    for (int row = 0; row < 4; ++row) {
      const auto it = out.jacobian.find({row, col});
      if (it != out.jacobian.end()) sum += it->second;
    }
    EXPECT_NEAR(sum, 0.0, 1e-9) << "column " << col;
  }
  EXPECT_NEAR(out.rhs[0] + out.rhs[1] + out.rhs[2] + out.rhs[3], 0.0, 1e-12);
}

TEST(Mosfet, MeyerCapsTrackRegions) {
  MosfetModel model = Nmos();
  model.meyer = true;
  Mosfet m("m1", 0, 1, 2, 3, model, 2e-6, 1e-6);
  DeviceHarness h(4);
  h.Setup(m);
  // Deep cutoff (vgs far below vth): all gate charge couples to bulk; the
  // qgb state must dominate qgs.
  const auto off = h.Eval(m, {.x = {0.0, -2.0, 0.0, 0.0}, .a0 = 1e9, .transient = true});
  EXPECT_GT(std::abs(off.states[2]), std::abs(off.states[0]));  // qgb > qgs
  // Strong saturation: qgs dominates qgd.
  const auto sat = h.Eval(m, {.x = {3.0, 2.0, 0.0, 0.0}, .a0 = 1e9, .transient = true});
  EXPECT_GT(std::abs(sat.states[0]), std::abs(sat.states[1]));
}

TEST(Mosfet, GminAnchorsFloatingTerminals) {
  Mosfet m("m1", 0, 1, 2, 3, Nmos(), 2e-6, 1e-6);
  DeviceHarness h(4);
  h.Setup(m);
  const auto out = h.Eval(m, {.x = {0, 0, 0, 0}, .gmin = 1e-9});
  EXPECT_NEAR(out.jacobian.at({0, 0}), 1e-9, 1e-15);  // drain diag has gmin
  EXPECT_NEAR(out.jacobian.at({2, 2}), 1e-9, 1e-15);  // source diag
}

}  // namespace
}  // namespace wavepipe::devices
