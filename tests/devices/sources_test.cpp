#include "devices/sources.hpp"

#include <gtest/gtest.h>

#include "testutil/device_harness.hpp"

namespace wavepipe::devices {
namespace {

using testutil::DeviceHarness;

TEST(VoltageSource, StampsBranchEquations) {
  VoltageSource v("v1", 0, 1, std::make_unique<DcWaveform>(5.0));
  DeviceHarness h(2);
  h.Setup(v);
  const int b = 2;
  const auto out = h.Eval(v, {.x = {0, 0, 0}});
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, b}), 1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({1, b}), -1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 0}), 1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 1}), -1.0);
  EXPECT_DOUBLE_EQ(out.rhs[b], 5.0);
}

TEST(VoltageSource, TransientUsesWaveformTime) {
  VoltageSource v("v1", 0, kGround,
                  std::make_unique<PulseWaveform>(0, 1, 1, 1, 1, 2, 10));
  DeviceHarness h(1);
  h.Setup(v);
  const auto dc = h.Eval(v, {.x = {0, 0}, .transient = false});
  EXPECT_DOUBLE_EQ(dc.rhs[1], 0.0);  // t=0 value
  const auto tr = h.Eval(v, {.x = {0, 0}, .time = 2.5, .transient = true});
  EXPECT_DOUBLE_EQ(tr.rhs[1], 1.0);
}

TEST(VoltageSource, SourceScaleApplies) {
  VoltageSource v("v1", 0, kGround, std::make_unique<DcWaveform>(10.0));
  DeviceHarness h(1);
  h.Setup(v);
  const auto out = h.Eval(v, {.x = {0, 0}, .source_scale = 0.25});
  EXPECT_DOUBLE_EQ(out.rhs[1], 2.5);
}

TEST(CurrentSource, StampsRhsOnly) {
  CurrentSource i("i1", 0, 1, std::make_unique<DcWaveform>(1e-3));
  DeviceHarness h(2);
  h.Setup(i);
  const auto out = h.Eval(i, {.x = {0, 0}});
  EXPECT_TRUE(out.jacobian.empty());
  EXPECT_DOUBLE_EQ(out.rhs[0], -1e-3);
  EXPECT_DOUBLE_EQ(out.rhs[1], 1e-3);
}

TEST(Vcvs, BranchAndControlStamps) {
  Vcvs e("e1", 0, 1, 2, 3, 10.0);
  DeviceHarness h(4);
  h.Setup(e);
  const int b = 4;
  const auto out = h.Eval(e, {.x = {0, 0, 0, 0, 0}});
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 0}), 1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 1}), -1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 2}), -10.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 3}), 10.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, b}), 1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({1, b}), -1.0);
}

TEST(Vccs, TransconductanceBlock) {
  Vccs g("g1", 0, 1, 2, 3, 1e-3);
  DeviceHarness h(4);
  h.Setup(g);
  const auto out = h.Eval(g, {.x = {0, 0, 0, 0}});
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, 2}), 1e-3);
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, 3}), -1e-3);
  EXPECT_DOUBLE_EQ(out.jacobian.at({1, 2}), -1e-3);
  EXPECT_DOUBLE_EQ(out.jacobian.at({1, 3}), 1e-3);
}

TEST(Cccs, CouplesToSenseBranch) {
  Cccs f("f1", 0, 1, "vsense", 2.0);
  DeviceHarness h(2);
  h.RegisterBranch("vsense", 7);
  h.Setup(f);
  const auto out = h.Eval(f, {.x = {0, 0}});
  EXPECT_DOUBLE_EQ(out.jacobian.at({0, 7}), 2.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({1, 7}), -2.0);
}

TEST(Cccs, MissingSenseThrows) {
  Cccs f("f1", 0, 1, "nope", 2.0);
  DeviceHarness h(2);
  EXPECT_THROW(h.Setup(f), wavepipe::ElaborationError);
}

TEST(Ccvs, BranchCouplesToSense) {
  Ccvs hdev("h1", 0, 1, "vsense", 50.0);
  DeviceHarness h(2);
  h.RegisterBranch("vsense", 9);
  h.Setup(hdev);
  const int b = 2;  // own branch allocated after sense lookup
  const auto out = h.Eval(hdev, {.x = {0, 0, 0}});
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 0}), 1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 1}), -1.0);
  EXPECT_DOUBLE_EQ(out.jacobian.at({b, 9}), -50.0);
}

}  // namespace
}  // namespace wavepipe::devices
