#include "devices/limiting.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wavepipe::devices {
namespace {

constexpr double kVt = 0.02585;

TEST(PnjLim, SmallStepsPassThrough) {
  bool limited = true;
  const double v = PnjLim(0.61, 0.60, kVt, 0.7, &limited);
  EXPECT_DOUBLE_EQ(v, 0.61);
  EXPECT_FALSE(limited);
}

TEST(PnjLim, LargeForwardStepIsLimited) {
  bool limited = false;
  const double v = PnjLim(5.0, 0.6, kVt, JunctionVcrit(1e-14, kVt), &limited);
  EXPECT_TRUE(limited);
  EXPECT_LT(v, 5.0);
  EXPECT_GT(v, 0.6);  // still moves forward
}

TEST(PnjLim, FromNegativeVoltage) {
  bool limited = false;
  const double vcrit = JunctionVcrit(1e-14, kVt);
  const double v = PnjLim(3.0, -1.0, kVt, vcrit, &limited);
  EXPECT_TRUE(limited);
  EXPECT_LT(v, 3.0);
}

TEST(PnjLim, BelowVcritUnlimited) {
  bool limited = false;
  const double v = PnjLim(0.3, -0.5, kVt, 0.7, &limited);
  EXPECT_DOUBLE_EQ(v, 0.3);
  EXPECT_FALSE(limited);
}

TEST(JunctionVcrit, TypicalDiode) {
  const double vcrit = JunctionVcrit(1e-14, kVt);
  EXPECT_GT(vcrit, 0.5);
  EXPECT_LT(vcrit, 1.0);
}

TEST(FetLim, SmallUpdatePassesThrough) {
  EXPECT_DOUBLE_EQ(FetLim(1.05, 1.0, 0.7), 1.05);
}

TEST(FetLim, LargeTurnOnLimited) {
  const double v = FetLim(10.0, 1.0, 0.7);
  EXPECT_LT(v, 10.0);
  EXPECT_GT(v, 1.0);
}

TEST(FetLim, LargeTurnOffLimited) {
  const double v = FetLim(-10.0, 3.0, 0.7);
  EXPECT_GT(v, -10.0);
  EXPECT_LT(v, 3.0);
}

TEST(FetLim, OffDeviceStaysBounded) {
  const double v = FetLim(5.0, -1.0, 0.7);
  EXPECT_LE(v, 1.3);  // capped near threshold region
}

TEST(LimVds, SmallStepsPass) {
  EXPECT_DOUBLE_EQ(LimVds(2.1, 2.0), 2.1);
}

TEST(LimVds, LargeJumpBounded) {
  EXPECT_LE(LimVds(50.0, 4.0), 3 * 4.0 + 2);
  EXPECT_LE(LimVds(50.0, 1.0), 4.0);
  EXPECT_GE(LimVds(-50.0, 1.0), -0.5);
}

// Property: limiting never reverses the direction of the update.
class PnjDirectionTest : public ::testing::TestWithParam<double> {};

TEST_P(PnjDirectionTest, PreservesDirection) {
  const double vold = GetParam();
  const double vcrit = JunctionVcrit(1e-14, kVt);
  for (double vnew : {vold + 3.0, vold + 0.01, vold - 0.01, vold - 3.0}) {
    bool limited = false;
    const double v = PnjLim(vnew, vold, kVt, vcrit, &limited);
    if (vnew > vold) {
      EXPECT_GE(v, vold - 1e-12) << "vold=" << vold << " vnew=" << vnew;
    }
    EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PnjDirectionTest,
                         ::testing::Values(-2.0, -0.5, 0.0, 0.3, 0.6, 0.75, 1.0));

}  // namespace
}  // namespace wavepipe::devices
