// Device latency bypass + chord-Newton factor reuse: the accelerations must
// never change what the simulator converges TO, only how much work it takes
// to get there.  Parity tests pin accepted traces to the always-recompute
// path within LTE-tolerance scale; unit tests pin the replay mechanics; the
// fault-injection test proves a degraded chord rate forces refactorization
// and never loops.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "engine/newton.hpp"
#include "engine/transient.hpp"
#include "netlist/elaborate.hpp"
#include "parallel/fine_grained.hpp"
#include "util/fault.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::engine {
namespace {

circuits::GeneratedCircuit MakeByName(const std::string& name) {
  if (name == "rcladder") return circuits::MakeRcLadder(24);
  if (name == "rcmesh") return circuits::MakeRcMesh(5, 5);
  if (name == "invchain") return circuits::MakeInverterChain(6);
  if (name == "rectifier") return circuits::MakeDiodeRectifier(2);
  if (name == "amp") return circuits::MakeMosAmplifierChain(2);
  throw std::logic_error("unknown circuit " + name);
}

bool HasBypassableDevices(const Circuit& circuit) {
  std::vector<int> ctrl;
  for (const auto& device : circuit.devices()) {
    ctrl.clear();
    device->ControllingUnknowns(ctrl);
    if (!ctrl.empty()) return true;
  }
  return false;
}

struct AccelCase {
  const char* circuit;
  bool bypass;
  bool chord;
  double max_deviation;     ///< absolute volts on the probe set
  bool expect_factor_cut;   ///< chord must strictly reduce factorizations
};

class AccelParityTest : public ::testing::TestWithParam<AccelCase> {};

// The accepted trace with bypass/chord enabled stays within LTE-tolerance
// scale of the always-recompute serial engine, and the accelerations
// actually engage where the circuit gives them something to do.
TEST_P(AccelParityTest, SerialTraceMatchesRecomputePath) {
  const AccelCase& param = GetParam();
  const auto gen = MakeByName(param.circuit);
  MnaStructure mna(*gen.circuit);

  const auto baseline = RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  ASSERT_TRUE(baseline.completed) << baseline.abort_reason;

  SimOptions accel;
  accel.device_bypass = param.bypass;
  accel.chord_newton = param.chord;
  accel.chord_fill_ratio = 0.0;  // tiny test circuits factor fill-free
  const auto result = RunTransientSerial(*gen.circuit, mna, gen.spec, accel);
  ASSERT_TRUE(result.completed) << result.abort_reason;

  EXPECT_LT(Trace::MaxDeviationAll(baseline.trace, result.trace), param.max_deviation)
      << param.circuit;
  ASSERT_NE(result.final_point, nullptr);
  EXPECT_NEAR(result.final_point->time, gen.spec.tstop, 1e-12 * gen.spec.tstop);

  if (param.bypass) {
    if (HasBypassableDevices(*gen.circuit)) {
      EXPECT_GT(result.stats.bypassed_evals, 0u) << param.circuit;
    } else {
      // No opt-in devices: the bypass must stay inert (and bit-exact, below).
      EXPECT_EQ(result.stats.bypassed_evals, 0u);
    }
  } else {
    EXPECT_EQ(result.stats.bypassed_evals, 0u);
  }
  if (param.chord) {
    EXPECT_GT(result.stats.chord_solves, 0u) << param.circuit;
    const auto accel_factors =
        result.stats.lu_full_factors + result.stats.lu_refactors;
    const auto base_factors =
        baseline.stats.lu_full_factors + baseline.stats.lu_refactors;
    if (param.expect_factor_cut) {
      // Factor reuse must save factorizations overall, not just shuffle them.
      EXPECT_LT(accel_factors, base_factors) << param.circuit;
    } else {
      // Strongly nonlinear circuits may not profit, but the adaptive backoff
      // must keep failed chord attempts close to cost-neutral.
      EXPECT_LE(accel_factors, base_factors + base_factors / 10 + 10)
          << param.circuit;
    }
  } else {
    EXPECT_EQ(result.stats.chord_solves, 0u);
    EXPECT_EQ(result.stats.forced_refactors, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Acceleration, AccelParityTest,
    ::testing::Values(AccelCase{"rcladder", true, false, 0.02, false},
                      AccelCase{"rcladder", false, true, 0.02, true},
                      AccelCase{"rcladder", true, true, 0.02, true},
                      AccelCase{"rcmesh", false, true, 0.02, true},
                      AccelCase{"invchain", true, false, 0.15, false},
                      AccelCase{"invchain", false, true, 0.15, false},
                      AccelCase{"invchain", true, true, 0.15, false},
                      AccelCase{"rectifier", true, false, 0.08, false},
                      AccelCase{"rectifier", true, true, 0.08, false},
                      AccelCase{"amp", true, true, 0.05, false}),
    [](const ::testing::TestParamInfo<AccelCase>& info) {
      return std::string(info.param.circuit) + (info.param.bypass ? "_bypass" : "") +
             (info.param.chord ? "_chord" : "");
    });

// On a circuit with no opt-in devices the armed-but-idle bypass must leave
// the waveform BIT-identical: active() stays false and the historical device
// loop runs unchanged.
TEST(DeviceBypassTest, InertOnLinearCircuitIsBitExact) {
  const auto gen = circuits::MakeRcLadder(12);
  MnaStructure mna(*gen.circuit);
  ASSERT_FALSE(HasBypassableDevices(*gen.circuit));

  const auto baseline = RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  SimOptions accel;
  accel.device_bypass = true;
  const auto result = RunTransientSerial(*gen.circuit, mna, gen.spec, accel);

  ASSERT_TRUE(baseline.completed);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(baseline.trace.num_samples(), result.trace.num_samples());
  for (std::size_t i = 0; i < baseline.trace.num_samples(); ++i) {
    EXPECT_DOUBLE_EQ(baseline.trace.time(i), result.trace.time(i)) << i;
    for (std::size_t p = 0; p < baseline.trace.probes().size(); ++p) {
      EXPECT_DOUBLE_EQ(baseline.trace.value(i, p), result.trace.value(i, p)) << i;
    }
  }
  EXPECT_EQ(result.stats.bypassed_evals, 0u);
  EXPECT_EQ(result.stats.bypass_full_evals, 0u);
}

// Replay mechanics at the EvalDevices level: a second pass at identical
// unknowns replays the cached stamps and reproduces the full evaluation.
// NEAR, not DOUBLE_EQ: when a bypassable device shares a matrix slot with an
// earlier device, replay computes prior + (final - prior), which is not
// bitwise `final` in floating point — only equal to rounding.
TEST(DeviceBypassTest, ReplayReproducesFullEvaluation) {
  const auto gen = circuits::MakeDiodeRectifier(2);
  MnaStructure mna(*gen.circuit);
  SolveContext ctx(*gen.circuit, mna);
  SimOptions options;
  options.device_bypass = true;
  ctx.ConfigureAcceleration(options);
  ASSERT_TRUE(ctx.bypass.active());

  for (std::size_t i = 0; i < ctx.x.size(); ++i) {
    ctx.x[i] = 0.4 * std::sin(1.7 * static_cast<double>(i) + 0.3);
  }
  NewtonInputs inputs;
  inputs.time = 1e-6;
  inputs.a0 = 2e6;
  inputs.transient = true;

  EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);
  EXPECT_EQ(ctx.bypass.bypassed_evals(), 0u);
  EXPECT_GT(ctx.bypass.full_evals(), 0u);
  const std::vector<double> matrix_ref(ctx.matrix.values().begin(),
                                       ctx.matrix.values().end());
  const std::vector<double> rhs_ref = ctx.rhs;
  const std::vector<double> state_ref = ctx.state_now;

  // Same unknowns, same pass scalars: bypassable devices must replay.
  EvalDevices(ctx, inputs, /*limit_valid=*/true, /*first_iteration=*/false);
  const std::uint64_t replayed = ctx.bypass.bypassed_evals();
  EXPECT_GT(replayed, 0u);
  const auto values = ctx.matrix.values();
  ASSERT_EQ(values.size(), matrix_ref.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(values[i], matrix_ref[i], 1e-9 * std::max(1.0, std::abs(matrix_ref[i])))
        << "matrix slot " << i;
  }
  for (std::size_t i = 0; i < rhs_ref.size(); ++i) {
    EXPECT_NEAR(ctx.rhs[i], rhs_ref[i], 1e-9 * std::max(1.0, std::abs(rhs_ref[i])))
        << "rhs row " << i;
  }
  for (std::size_t i = 0; i < state_ref.size(); ++i) {
    EXPECT_NEAR(ctx.state_now[i], state_ref[i],
                1e-12 * std::max(1.0, std::abs(state_ref[i])))
        << "state slot " << i;
  }

  // Moving every unknown far beyond the latency tolerance blocks replay.
  for (auto& v : ctx.x) v += 0.5;
  EvalDevices(ctx, inputs, /*limit_valid=*/true, /*first_iteration=*/false);
  EXPECT_EQ(ctx.bypass.bypassed_evals(), replayed);

  // A changed per-pass scalar (new integrator coefficient) blocks replay for
  // the whole pass even at unchanged unknowns.
  inputs.a0 = 4e6;
  EvalDevices(ctx, inputs, /*limit_valid=*/true, /*first_iteration=*/false);
  EXPECT_EQ(ctx.bypass.bypassed_evals(), replayed);

  // And the pass after THAT (scalars now stable again, unknowns unchanged)
  // replays once more — caches were refreshed, not abandoned.
  EvalDevices(ctx, inputs, /*limit_valid=*/true, /*first_iteration=*/false);
  EXPECT_GT(ctx.bypass.bypassed_evals(), replayed);

  // Invalidate drops every cached entry: the next identical pass recomputes.
  const std::uint64_t after_refresh = ctx.bypass.bypassed_evals();
  ctx.bypass.Invalidate();
  EvalDevices(ctx, inputs, /*limit_valid=*/true, /*first_iteration=*/false);
  EXPECT_EQ(ctx.bypass.bypassed_evals(), after_refresh);
}

// Fault site "chord.degraded": every chord iterate reports a degraded
// contraction rate, so each one must force a refactorization on the next
// iteration.  The simulation completing at all proves the safety net cannot
// ride a stale factor into an infinite loop; the trace staying on the
// baseline proves forced refactors are a clean fallback, not a perturbation.
TEST(ChordNewtonTest, DegradedRateFaultForcesRefactorAndTerminates) {
  const auto gen = circuits::MakeInverterChain(4);
  MnaStructure mna(*gen.circuit);

  const auto baseline = RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  ASSERT_TRUE(baseline.completed);

  SimOptions accel;
  accel.device_bypass = true;
  accel.chord_newton = true;
  accel.chord_fill_ratio = 0.0;

  util::fault::ScopedFault fault(
      "chord.degraded",
      {.skip = 0, .fire = util::fault::Schedule::kUnlimited});
  const auto result = RunTransientSerial(*gen.circuit, mna, gen.spec, accel);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GT(fault.fired(), 0u);
  EXPECT_GT(result.stats.chord_solves, 0u);
  EXPECT_GT(result.stats.forced_refactors, 0u);
  EXPECT_LT(Trace::MaxDeviationAll(baseline.trace, result.trace), 0.15);
}

// Tiny chord budget: the budget check alone must force refactors (the rate
// monitor never trips on a well-conditioned circuit) and still converge.
TEST(ChordNewtonTest, ExhaustedIterationBudgetForcesRefactor) {
  const auto gen = circuits::MakeDiodeRectifier(2);
  MnaStructure mna(*gen.circuit);

  SimOptions accel;
  accel.chord_newton = true;
  accel.chord_fill_ratio = 0.0;
  accel.chord_iter_budget = 1;
  const auto result = RunTransientSerial(*gen.circuit, mna, gen.spec, accel);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GT(result.stats.forced_refactors, 0u);
}

// The colored conflict-free assembler routes through the same bypass: at 4
// threads, replayed stamps land in the shared matrix concurrently (disjoint
// footprints per color).  Run under TSan via the tsan label.
TEST(DeviceBypassTest, ColoredAssemblyParityWithBypass) {
  const auto gen = circuits::MakeInverterChain(6);
  MnaStructure mna(*gen.circuit);

  parallel::FineGrainedOptions base;
  base.threads = 4;
  base.assembly = parallel::AssemblyMode::kColored;
  const auto baseline = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, base);

  parallel::FineGrainedOptions accel = base;
  accel.sim.device_bypass = true;
  accel.sim.chord_newton = true;
  accel.sim.chord_fill_ratio = 0.0;
  const auto result = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, accel);

  EXPECT_LT(Trace::MaxDeviationAll(baseline.trace, result.trace), 0.15);
  EXPECT_GT(result.stats.bypassed_evals, 0u);
  EXPECT_GT(result.stats.chord_solves, 0u);
}

// The chunked reduction assembler routes through the same bypass as the
// serial and colored paths, but replay parity there rests on an invariant
// nothing enforces at compile time: cached stamp deltas are replayed into
// chunk-private buffers that must be zeroed every pass.  Pin it with a
// parity run so a future buffer-reuse optimization cannot silently break
// replay correctness.
TEST(DeviceBypassTest, ReductionAssemblyParityWithBypass) {
  const auto gen = circuits::MakeInverterChain(6);
  MnaStructure mna(*gen.circuit);

  parallel::FineGrainedOptions base;
  base.threads = 4;
  base.assembly = parallel::AssemblyMode::kReduction;
  const auto baseline = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, base);

  parallel::FineGrainedOptions accel = base;
  accel.sim.device_bypass = true;
  const auto result = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, accel);

  EXPECT_LT(Trace::MaxDeviationAll(baseline.trace, result.trace), 0.15);
  EXPECT_GT(result.stats.bypassed_evals, 0u);
}

// End to end through the WavePipe driver: the combined pipelining scheme
// with both accelerations on still reproduces the plain serial waveform.
TEST(DeviceBypassTest, WavePipeCombinedParityWithAcceleration) {
  const auto gen = circuits::MakeDiodeRectifier(2);
  MnaStructure mna(*gen.circuit);

  pipeline::WavePipeOptions serial_options;
  serial_options.scheme = pipeline::Scheme::kSerial;
  const auto serial = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, serial_options);

  pipeline::WavePipeOptions options;
  options.scheme = pipeline::Scheme::kCombined;
  options.threads = 3;
  options.sim.device_bypass = true;
  options.sim.chord_newton = true;
  options.sim.chord_fill_ratio = 0.0;
  const auto piped = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, options);

  ASSERT_TRUE(piped.completed);
  EXPECT_LT(Trace::MaxDeviationAll(serial.trace, piped.trace), 0.08);
  EXPECT_GT(piped.stats.bypassed_evals, 0u);
}

// Regression: a netlist whose LTE budget sits below the replay wobble (5 fF
// load caps, 3 V swings) used to pin every accepted step at hmin — ~1e9
// steps, an effective hang — with bypass at the default tolerance.  The
// step-floor safety valve must disable the bypass mid-run and let the step
// size recover, finishing in a step count comparable to the bypass-off run.
TEST(DeviceBypassTest, StepFloorValveDisablesBypassOnLteStarvedDeck) {
  const char* deck = R"(valve regression
.model mn NMOS (vto=0.7 kp=120u)
.model mp PMOS (vto=-0.7 kp=40u)
Vdd vdd 0 3.0
Vin in 0 PULSE(0 3 2n 1n 1n 8n 20n)
M1 o1 in vdd vdd mp W=4u L=1u
M2 o1 in 0 0 mn W=2u L=1u
M3 o2 o1 vdd vdd mp W=4u L=1u
M4 o2 o1 0 0 mn W=2u L=1u
C1 o1 0 5f
C2 o2 0 5f
.tran 0.5n 3n
)";
  const auto elaborated = netlist::ParseAndElaborate(deck);
  const MnaStructure mna(*elaborated.circuit);

  SimOptions base_options = elaborated.sim_options;
  const auto base = RunTransientSerial(*elaborated.circuit, mna,
                                       elaborated.spec, base_options);
  ASSERT_TRUE(base.completed);

  SimOptions accel_options = base_options;
  accel_options.device_bypass = true;
  const auto accel = RunTransientSerial(*elaborated.circuit, mna,
                                        elaborated.spec, accel_options);
  ASSERT_TRUE(accel.completed);
  EXPECT_GE(accel.stats.bypass_auto_disables, 1u);
  // Valve streak + recovery on top of the baseline economy, nowhere near the
  // ~1e9 hmin crawl.
  EXPECT_LE(accel.stats.steps_accepted,
            base.stats.steps_accepted + 4 * DeviceBypass::kFloorStreakLimit);
}

// The trace pre-reservation satellite: the estimate is additive, capped, and
// visible so callers can mirror it for per-step detail storage.
TEST(TraceReserveTest, EstimateIsCappedAndAdditive) {
  Trace trace(ProbeSet::FirstNodes(4, 4));
  trace.ReserveEstimate(1024.0, 1.0);
  EXPECT_EQ(trace.reserved_samples(), 1024u);
  Trace huge(ProbeSet::FirstNodes(4, 4));
  huge.ReserveEstimate(1.0, 1e-12);  // span/hmin = 1e12: must hit the cap
  EXPECT_LE(huge.reserved_samples(), 4096u);
  Trace degenerate(ProbeSet::FirstNodes(4, 4));
  degenerate.ReserveEstimate(1.0, 0.0);  // no hmin: cap, not a division
  EXPECT_LE(degenerate.reserved_samples(), 4096u);
}

}  // namespace
}  // namespace wavepipe::engine
