#include "engine/step_control.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wavepipe::engine {
namespace {

SolutionPointPtr MakePoint(double t, std::vector<double> x) {
  auto p = std::make_shared<SolutionPoint>();
  p->time = t;
  p->x = std::move(x);
  p->q = {0.0};
  p->qdot = {0.0};
  return p;
}

StepControlParams Params(int order = 2) {
  StepControlParams p;
  p.order = order;
  p.num_nodes = 1;
  return p;
}

TEST(Predictor, ConstantWithOnePoint) {
  HistoryWindow w{MakePoint(0.0, {3.0})};
  std::vector<double> out(1);
  PredictSolution(w, 1, 1.0, out);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(Predictor, LinearWithTwoPoints) {
  HistoryWindow w{MakePoint(0.0, {0.0}), MakePoint(1.0, {2.0})};
  std::vector<double> out(1);
  PredictSolution(w, 2, 2.5, out);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
}

TEST(Predictor, QuadraticExactWithThreePoints) {
  auto f = [](double t) { return 1 + 2 * t + 3 * t * t; };
  HistoryWindow w{MakePoint(0.0, {f(0)}), MakePoint(0.7, {f(0.7)}),
                  MakePoint(1.0, {f(1.0)})};
  std::vector<double> out(1);
  PredictSolution(w, 3, 1.6, out);
  EXPECT_NEAR(out[0], f(1.6), 1e-12);
}

TEST(Predictor, PointsClampedToWindowSize) {
  HistoryWindow w{MakePoint(0.0, {1.0}), MakePoint(1.0, {2.0})};
  std::vector<double> out(1);
  PredictSolution(w, 4, 2.0, out);  // asks for 4, has 2 -> linear
  EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(Predictor, UsesNewestPointsOnly) {
  // Old garbage point must not affect a 2-point prediction.
  HistoryWindow w{MakePoint(-5.0, {1e9}), MakePoint(0.0, {0.0}), MakePoint(1.0, {1.0})};
  std::vector<double> out(1);
  PredictSolution(w, 2, 2.0, out);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
}

TEST(PredictPoint, ExtrapolatesAllFields) {
  auto p0 = std::make_shared<SolutionPoint>();
  p0->time = 0.0;
  p0->x = {0.0};
  p0->q = {1.0};
  p0->qdot = {0.5};
  auto p1 = std::make_shared<SolutionPoint>();
  p1->time = 1.0;
  p1->x = {2.0};
  p1->q = {3.0};
  p1->qdot = {1.5};
  const SolutionPointPtr pred = PredictPoint({p0, p1}, 2, 2.0);
  EXPECT_TRUE(pred->auxiliary);
  EXPECT_DOUBLE_EQ(pred->x[0], 4.0);
  EXPECT_DOUBLE_EQ(pred->q[0], 5.0);
  EXPECT_DOUBLE_EQ(pred->qdot[0], 2.5);
}

TEST(AssessStep, AcceptsSmallError) {
  std::vector<double> solved{1.0005}, predicted{1.0};
  const auto a = AssessStep(solved, predicted, 0.1, true, Params());
  // |diff| = 5e-4, tol ~ 1e-3 -> raw ~0.5, / trtol 7 -> ~0.07.
  EXPECT_TRUE(a.accept);
  EXPECT_LT(a.error, 1.0);
  EXPECT_GT(a.h_next, 0.1);  // grows
}

TEST(AssessStep, RejectsLargeError) {
  std::vector<double> solved{2.0}, predicted{1.0};
  const auto a = AssessStep(solved, predicted, 0.1, true, Params());
  EXPECT_FALSE(a.accept);
  EXPECT_LT(a.h_next, 0.1 * 0.5 + 1e-15);  // reject shrink applies
}

TEST(AssessStep, GrowthCapped) {
  std::vector<double> solved{1.0}, predicted{1.0};  // zero error
  StepControlParams p = Params();
  p.growth_cap = 3.0;
  const auto a = AssessStep(solved, predicted, 0.1, true, p);
  EXPECT_TRUE(a.accept);
  EXPECT_NEAR(a.h_next, 0.3, 1e-12);  // exactly the cap
}

TEST(AssessStep, InactiveAcceptsAndGrows) {
  std::vector<double> solved{5.0}, predicted{0.0};  // huge apparent error
  const auto a = AssessStep(solved, predicted, 0.1, /*lte_active=*/false, Params());
  EXPECT_TRUE(a.accept);
  EXPECT_DOUBLE_EQ(a.h_next, 0.2);
}

TEST(AssessStep, OrderControlsExponent) {
  // Same error, higher order -> milder shrink.
  std::vector<double> solved{1.1}, predicted{1.0};
  const auto a1 = AssessStep(solved, predicted, 0.1, true, Params(1));
  const auto a2 = AssessStep(solved, predicted, 0.1, true, Params(2));
  EXPECT_LT(a1.h_next, a2.h_next);
}

TEST(AssessStep, MinShrinkFloor) {
  std::vector<double> solved{100.0}, predicted{0.0};
  StepControlParams p = Params();
  p.min_shrink = 0.25;
  p.reject_shrink = 0.5;
  const auto a = AssessStep(solved, predicted, 1.0, true, p);
  EXPECT_FALSE(a.accept);
  EXPECT_GE(a.h_next, 0.25);
}

TEST(WrmsDistance, UsesVoltageAndCurrentTolerances) {
  StepControlParams p = Params();
  p.num_nodes = 1;
  p.norm_unknowns = -1;
  // Unknown 0 is a voltage (vntol), unknown 1 a current (abstol).
  std::vector<double> a{0.0, 0.0}, b{1e-6, 1e-6};
  const double d = SolutionWrmsDistance(a, b, p);
  // voltage error = 1e-6/1e-6 = 1; current error = 1e-6/1e-12 = 1e6.
  EXPECT_GT(d, 100.0);  // current term dominates: ~1e3/sqrt(2)
}

TEST(WrmsDistance, NormUnknownsRestricts) {
  StepControlParams p = Params();
  p.num_nodes = 1;
  p.norm_unknowns = 1;  // voltages only
  std::vector<double> a{0.0, 0.0}, b{1e-6, 1.0};  // huge current mismatch ignored
  const double d = SolutionWrmsDistance(a, b, p);
  EXPECT_NEAR(d, 1.0, 1e-2);
}

TEST(WrmsDistance, EmptyIsZero) {
  StepControlParams p = Params();
  p.norm_unknowns = 0;
  std::vector<double> a{1.0}, b{2.0};
  EXPECT_DOUBLE_EQ(SolutionWrmsDistance(a, b, p), 0.0);
}

}  // namespace
}  // namespace wavepipe::engine
