#include "engine/dcop.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/circuit.hpp"
#include "testutil/helpers.hpp"
#include "util/fault.hpp"

namespace wavepipe::engine {
namespace {

TEST(Dcop, LinearDividerDirect) {
  Circuit c;
  const int in = c.AddNode("in"), mid = c.AddNode("mid");
  c.Emplace<devices::VoltageSource>("v1", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(9.0));
  c.Emplace<devices::Resistor>("r1", in, mid, 2e3);
  c.Emplace<devices::Resistor>("r2", mid, devices::kGround, 1e3);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);
  const DcopResult result = SolveDcOperatingPoint(ctx, SimOptions{});
  EXPECT_EQ(result.strategy, "direct");
  EXPECT_NEAR(ctx.x[mid], 3.0, 1e-9);
}

TEST(Dcop, CapacitorIsOpen) {
  // in -- R -- out with only a capacitor to ground: out floats to v(in)
  // through R (no DC current), anchored by gmin.
  auto f = testutil::MakeStepRc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx(*f.circuit, mna);
  SolveDcOperatingPoint(ctx, SimOptions{});
  EXPECT_NEAR(ctx.x[f.out], 1.0, 1e-6);
}

TEST(Dcop, InductorIsShort) {
  auto f = testutil::MakeSeriesRlc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx(*f.circuit, mna);
  SolveDcOperatingPoint(ctx, SimOptions{});
  // The pulse source is at its t = 0 value (0 V); with the inductor a DC
  // short and the capacitor open, vc follows the source with no drop.
  EXPECT_NEAR(ctx.x[f.vc], 0.0, 1e-6);
  // A second fixture with a DC source: vc = source (short through R and L).
  engine::Circuit c;
  const int in = c.AddNode("in"), mid = c.AddNode("mid"), vc = c.AddNode("vc");
  c.Emplace<devices::VoltageSource>("v", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(1.0));
  c.Emplace<devices::Resistor>("r", in, mid, 10.0);
  c.Emplace<devices::Inductor>("l", mid, vc, 1e-3);
  c.Emplace<devices::Resistor>("rl", vc, devices::kGround, 1e3);
  c.Finalize();
  MnaStructure mna2(c);
  SolveContext ctx2(c, mna2);
  SolveDcOperatingPoint(ctx2, SimOptions{});
  // Divider 10 / 1000: vc = 1000/1010.
  EXPECT_NEAR(ctx2.x[vc], 1000.0 / 1010.0, 1e-6);
}

TEST(Dcop, DiodeBridgeConverges) {
  auto gen = circuits::MakeDiodeRectifier(0);
  MnaStructure mna(*gen.circuit);
  SolveContext ctx(*gen.circuit, mna);
  EXPECT_NO_THROW(SolveDcOperatingPoint(ctx, SimOptions{}));
}

TEST(Dcop, MosInverterMidpoint) {
  // CMOS inverter with input at VDD/2 conducts both devices.
  Circuit c;
  const int vdd = c.AddNode("vdd"), in = c.AddNode("in"), out = c.AddNode("out");
  c.Emplace<devices::VoltageSource>("vdd", vdd, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(2.5));
  c.Emplace<devices::VoltageSource>("vin", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(1.25));
  c.Emplace<devices::Mosfet>("mp", out, in, vdd, vdd, circuits::DefaultPmos(), 4e-6, 1e-6);
  c.Emplace<devices::Mosfet>("mn", out, in, devices::kGround, devices::kGround,
                             circuits::DefaultNmos(), 2e-6, 1e-6);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);
  SolveDcOperatingPoint(ctx, SimOptions{});
  EXPECT_GT(ctx.x[out], 0.01);
  EXPECT_LT(ctx.x[out], 2.49);
}

TEST(Dcop, SolutionPointSeedsHistory) {
  auto f = testutil::MakeStepRc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx(*f.circuit, mna);
  SolveDcOperatingPoint(ctx, SimOptions{});
  const SolutionPointPtr point = MakeDcSolutionPoint(ctx, 1.5);
  EXPECT_DOUBLE_EQ(point->time, 1.5);
  EXPECT_EQ(point->x, ctx.x);
  EXPECT_EQ(point->q.size(), static_cast<std::size_t>(f.circuit->num_states()));
  for (double qd : point->qdot) EXPECT_DOUBLE_EQ(qd, 0.0);
}

TEST(Dcop, EveryBenchmarkCircuitHasOperatingPoint) {
  for (auto& gen : circuits::MakeBenchmarkSuite()) {
    MnaStructure mna(*gen.circuit);
    SolveContext ctx(*gen.circuit, mna);
    EXPECT_NO_THROW(SolveDcOperatingPoint(ctx, SimOptions{})) << gen.name;
  }
}

TEST(Dcop, FailureRestoresInitialGuessAndEnumeratesStrategies) {
  // When every strategy fails, the context must come back exactly as handed
  // over — a half-stepped continuation iterate is a worse starting point than
  // the caller's guess — and the error must say what was tried.
  auto f = testutil::MakeStepRc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx(*f.circuit, mna);
  std::vector<double> guess(ctx.x.size());
  for (std::size_t i = 0; i < guess.size(); ++i) guess[i] = 0.25 * (i + 1);
  ctx.x = guess;

  util::fault::Schedule always;
  always.fire = util::fault::Schedule::kUnlimited;
  util::fault::ScopedFault site("newton.converge", always);

  try {
    SolveDcOperatingPoint(ctx, SimOptions{});
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("tried:"), std::string::npos) << what;
    EXPECT_NE(what.find("direct"), std::string::npos) << what;
    EXPECT_NE(what.find("gmin-stepping"), std::string::npos) << what;
    EXPECT_NE(what.find("source-stepping"), std::string::npos) << what;
  }
  EXPECT_EQ(ctx.x, guess);
}

}  // namespace
}  // namespace wavepipe::engine
