#include "engine/mna.hpp"

#include <gtest/gtest.h>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/circuit.hpp"
#include "engine/newton.hpp"

namespace wavepipe::engine {
namespace {

TEST(Mna, PatternCoversDeviceStamps) {
  Circuit c;
  const int a = c.AddNode("a"), b = c.AddNode("b");
  c.Emplace<devices::Resistor>("r1", a, b, 1e3);
  c.Emplace<devices::VoltageSource>("v1", a, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(1.0));
  c.Finalize();
  MnaStructure mna(c);
  EXPECT_EQ(mna.dimension(), 3);
  const auto& p = mna.pattern();
  // Resistor block.
  EXPECT_GE(p.FindEntry(a, a), 0);
  EXPECT_GE(p.FindEntry(a, b), 0);
  EXPECT_GE(p.FindEntry(b, a), 0);
  EXPECT_GE(p.FindEntry(b, b), 0);
  // Voltage source block (branch index 2).
  EXPECT_GE(p.FindEntry(a, 2), 0);
  EXPECT_GE(p.FindEntry(2, a), 0);
}

TEST(Mna, NodeDiagonalsAlwaysPresent) {
  // A node touched only by a V source has no natural diagonal entry; the
  // structure must synthesize one for gmin stepping.
  Circuit c;
  const int a = c.AddNode("a");
  c.Emplace<devices::VoltageSource>("v1", a, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(1.0));
  c.Finalize();
  MnaStructure mna(c);
  ASSERT_EQ(static_cast<int>(mna.node_diag_slots().size()), 1);
  EXPECT_GE(mna.node_diag_slots()[0], 0);
}

TEST(Mna, ValuesAssembleCorrectly) {
  // 1V -- R(2ohm) -- a -- R(2ohm) -- gnd: check assembled matrix numerics.
  Circuit c;
  const int in = c.AddNode("in"), a = c.AddNode("a");
  c.Emplace<devices::VoltageSource>("v1", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(1.0));
  c.Emplace<devices::Resistor>("r1", in, a, 2.0);
  c.Emplace<devices::Resistor>("r2", a, devices::kGround, 2.0);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);

  NewtonInputs inputs;
  EvalDevices(ctx, inputs, false, true);
  const auto& m = ctx.matrix;
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(in, in)), 0.5);
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(a, a)), 1.0);
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(in, a)), -0.5);
  EXPECT_DOUBLE_EQ(ctx.rhs[2], 1.0);  // source branch
}

TEST(Mna, GshuntStampsAllNodeDiagonals) {
  Circuit c;
  const int a = c.AddNode("a"), b = c.AddNode("b");
  c.Emplace<devices::Resistor>("r1", a, b, 1.0);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);
  NewtonInputs inputs;
  inputs.gshunt = 0.125;
  EvalDevices(ctx, inputs, false, true);
  const auto& m = ctx.matrix;
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(a, a)), 1.125);
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(b, b)), 1.125);
}

TEST(Mna, RepeatedEvalIsIdempotent) {
  Circuit c;
  const int a = c.AddNode("a");
  c.Emplace<devices::Resistor>("r1", a, devices::kGround, 4.0);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);
  NewtonInputs inputs;
  EvalDevices(ctx, inputs, false, true);
  EvalDevices(ctx, inputs, true, false);
  EXPECT_DOUBLE_EQ(ctx.matrix.value_of(ctx.matrix.FindEntry(a, a)), 0.25);
}

}  // namespace
}  // namespace wavepipe::engine
