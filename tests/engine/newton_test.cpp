#include "engine/newton.hpp"

#include <gtest/gtest.h>

#include "devices/diode.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/circuit.hpp"

namespace wavepipe::engine {
namespace {

TEST(Newton, LinearCircuitSolvesExactly) {
  // Divider: 1V across two 1k resistors -> 0.5V.
  Circuit c;
  const int in = c.AddNode("in"), mid = c.AddNode("mid");
  c.Emplace<devices::VoltageSource>("v1", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(1.0));
  c.Emplace<devices::Resistor>("r1", in, mid, 1e3);
  c.Emplace<devices::Resistor>("r2", mid, devices::kGround, 1e3);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);

  SimOptions options;
  NewtonInputs inputs;
  inputs.gmin = options.gmin;
  const NewtonStats stats = SolveNewton(ctx, inputs, options, 20);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 2);
  EXPECT_NEAR(ctx.x[mid], 0.5, 1e-9);
  EXPECT_NEAR(ctx.x[in], 1.0, 1e-12);
  // Branch current: 1V / 2k = 0.5 mA flowing out of the source.
  EXPECT_NEAR(ctx.x[2], -0.5e-3, 1e-9);
}

TEST(Newton, DiodeDividerConverges) {
  // 5V -- 1k -- diode to ground: V_diode ~ 0.6-0.7.
  Circuit c;
  const int in = c.AddNode("in"), d = c.AddNode("d");
  c.Emplace<devices::VoltageSource>("v1", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(5.0));
  c.Emplace<devices::Resistor>("r1", in, d, 1e3);
  devices::DiodeModel dm;
  c.Emplace<devices::Diode>("d1", d, devices::kGround, dm);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);

  SimOptions options;
  NewtonInputs inputs;
  inputs.gmin = options.gmin;
  const NewtonStats stats = SolveNewton(ctx, inputs, options, 60);
  ASSERT_TRUE(stats.converged);
  EXPECT_GT(ctx.x[d], 0.55);
  EXPECT_LT(ctx.x[d], 0.75);
  // KCL: resistor current equals diode current.
  devices::Diode probe("probe", 0, 1, dm);
  const double i_r = (ctx.x[in] - ctx.x[d]) / 1e3;
  const double i_d = probe.Current(ctx.x[d], options.gmin);
  EXPECT_NEAR(i_r, i_d, 1e-2 * i_r + 1e-9);
}

TEST(Newton, ReportsNonConvergenceWithinBudget) {
  Circuit c;
  const int in = c.AddNode("in"), d = c.AddNode("d");
  c.Emplace<devices::VoltageSource>("v1", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(5.0));
  c.Emplace<devices::Resistor>("r1", in, d, 1e3);
  c.Emplace<devices::Diode>("d1", d, devices::kGround, devices::DiodeModel{});
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);

  SimOptions options;
  NewtonInputs inputs;
  inputs.gmin = options.gmin;
  // A 1-iteration budget cannot converge a nonlinear circuit.
  const NewtonStats stats = SolveNewton(ctx, inputs, options, 1);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.iterations, 1);
}

TEST(Newton, StateConsistentWithSolution) {
  // After convergence, ctx.state_now must be the charge at ctx.x.
  Circuit c;
  const int a = c.AddNode("a");
  c.Emplace<devices::VoltageSource>("v1", a, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(2.0));
  c.Emplace<devices::Capacitor>("c1", a, devices::kGround, 3e-9);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);
  SimOptions options;
  NewtonInputs inputs;
  ASSERT_TRUE(SolveNewton(ctx, inputs, options, 10).converged);
  EXPECT_NEAR(ctx.state_now[0], 2.0 * 3e-9, 1e-18);
}

TEST(Newton, LuReusePathExercised) {
  // A nonlinear solve takes >= 2 iterations; after the first full factor,
  // subsequent iterations must go through Refactor.
  Circuit c;
  const int in = c.AddNode("in"), d = c.AddNode("d");
  c.Emplace<devices::VoltageSource>("v1", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(3.0));
  c.Emplace<devices::Resistor>("r1", in, d, 1e3);
  c.Emplace<devices::Diode>("d1", d, devices::kGround, devices::DiodeModel{});
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);
  SimOptions options;
  NewtonInputs inputs;
  inputs.gmin = options.gmin;
  const NewtonStats stats = SolveNewton(ctx, inputs, options, 60);
  ASSERT_TRUE(stats.converged);
  EXPECT_EQ(stats.lu_full_factors, 1);
  EXPECT_GE(stats.lu_refactors, 1);
}

TEST(Newton, SourceScaleScalesSolution) {
  Circuit c;
  const int in = c.AddNode("in");
  c.Emplace<devices::VoltageSource>("v1", in, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(4.0));
  c.Emplace<devices::Resistor>("r1", in, devices::kGround, 1.0);
  c.Finalize();
  MnaStructure mna(c);
  SolveContext ctx(c, mna);
  SimOptions options;
  NewtonInputs inputs;
  inputs.source_scale = 0.5;
  ASSERT_TRUE(SolveNewton(ctx, inputs, options, 10).converged);
  EXPECT_NEAR(ctx.x[in], 2.0, 1e-12);
}

}  // namespace
}  // namespace wavepipe::engine
