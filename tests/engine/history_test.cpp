#include "engine/history.hpp"

#include <gtest/gtest.h>

namespace wavepipe::engine {
namespace {

SolutionPointPtr Point(double t, bool auxiliary = false) {
  auto p = std::make_shared<SolutionPoint>();
  p->time = t;
  p->x = {t};
  p->q = {0.0};
  p->qdot = {0.0};
  p->auxiliary = auxiliary;
  return p;
}

TEST(History, KeepsAscendingOrder) {
  History h(8);
  h.Add(Point(1.0));
  h.Add(Point(3.0));
  h.Add(Point(2.0));  // backward-pipelined insertion
  ASSERT_EQ(h.size(), 3);
  EXPECT_DOUBLE_EQ(h.FromNewest(0)->time, 3.0);
  EXPECT_DOUBLE_EQ(h.FromNewest(1)->time, 2.0);
  EXPECT_DOUBLE_EQ(h.FromNewest(2)->time, 1.0);
  EXPECT_DOUBLE_EQ(h.newest_time(), 3.0);
}

TEST(History, BoundedDepthDropsOldest) {
  History h(3);
  for (int i = 0; i < 6; ++i) h.Add(Point(i));
  EXPECT_EQ(h.size(), 3);
  EXPECT_DOUBLE_EQ(h.FromNewest(2)->time, 3.0);  // 0,1,2 evicted
}

TEST(History, WindowAscendingAndClamped) {
  History h(8);
  for (int i = 0; i < 5; ++i) h.Add(Point(i));
  const HistoryWindow w = h.Window(3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0]->time, 2.0);
  EXPECT_DOUBLE_EQ(w[2]->time, 4.0);
  EXPECT_EQ(h.Window(100).size(), 5u);
}

TEST(History, WindowSharesOwnership) {
  History h(2);
  h.Add(Point(0.0));
  h.Add(Point(1.0));
  const HistoryWindow w = h.Window(2);
  h.Add(Point(2.0));  // evicts t=0 from the history...
  h.Add(Point(3.0));
  // ...but the snapshot stays valid (shared_ptr keeps the point alive).
  EXPECT_DOUBLE_EQ(w[0]->time, 0.0);
  EXPECT_DOUBLE_EQ(w[0]->x[0], 0.0);
}

TEST(History, BackwardPointBetweenExisting) {
  History h(8);
  h.Add(Point(0.0));
  h.Add(Point(1.0));
  h.Add(Point(0.5, /*auxiliary=*/true));
  EXPECT_DOUBLE_EQ(h.FromNewest(1)->time, 0.5);
  EXPECT_TRUE(h.FromNewest(1)->auxiliary);
  EXPECT_FALSE(h.newest()->auxiliary);
}

TEST(History, ClearEmpties) {
  History h(4);
  h.Add(Point(1.0));
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0);
}

TEST(History, MinDepthEnforced) {
  EXPECT_THROW(History h(1), std::logic_error);
}

}  // namespace
}  // namespace wavepipe::engine
