#include "engine/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/vector_ops.hpp"
#include "testutil/helpers.hpp"

namespace wavepipe::engine {
namespace {

using testutil::MakeSeriesRlc;
using testutil::MakeStepRc;

TEST(Transient, RcChargesWithAnalyticSolution) {
  auto f = MakeStepRc(/*delay=*/1e-4);
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  spec.tstop = 5e-3;
  spec.tstep = 1e-5;
  spec.probes.unknowns = {f.out};
  spec.probes.names = {"out"};
  const auto res = RunTransientSerial(*f.circuit, mna, spec, SimOptions{});

  for (double t : {5e-4, 1e-3, 2e-3, 4e-3}) {
    const double analytic = 1.0 - std::exp(-(t - 1e-4) / f.tau());
    EXPECT_NEAR(res.trace.Interpolate(t, 0), analytic, 3e-3) << "t=" << t;
  }
  EXPECT_GT(res.stats.steps_accepted, 10u);
  EXPECT_EQ(res.stats.dcop_strategy, "direct");
}

TEST(Transient, RlcRingsAtResonance) {
  auto f = MakeSeriesRlc();
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  // Underdamped: omega_d ~ omega0 = 1/sqrt(LC) ~ 3.16e4 rad/s -> ~5 kHz.
  spec.tstop = 2e-3;
  spec.tstep = 1e-6;
  spec.probes.unknowns = {f.vc};
  spec.probes.names = {"vc"};
  SimOptions options;
  options.method = Method::kTrapezoidal;
  const auto res = RunTransientSerial(*f.circuit, mna, spec, options);

  // Analytic step response of series RLC (underdamped), shifted by the
  // source delay: vc(t) = 1 - e^{-a tau}(cos wd tau + a/wd sin wd tau).
  const double a = f.alpha();
  const double wd = std::sqrt(f.omega0() * f.omega0() - a * a);
  for (double t : {1e-4, 3e-4, 6e-4, 1.5e-3}) {
    const double tau = t - f.delay;
    const double analytic =
        1.0 - std::exp(-a * tau) * (std::cos(wd * tau) + a / wd * std::sin(wd * tau));
    EXPECT_NEAR(res.trace.Interpolate(t, 0), analytic, 0.02) << "t=" << t;
  }
}

TEST(Transient, GearMatchesTrapOnRc) {
  auto f = MakeStepRc();
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  spec.tstop = 3e-3;
  spec.probes.unknowns = {f.out};
  spec.probes.names = {"out"};
  SimOptions trap, gear;
  trap.method = Method::kTrapezoidal;
  gear.method = Method::kGear2;
  const auto r1 = RunTransientSerial(*f.circuit, mna, spec, trap);
  const auto r2 = RunTransientSerial(*f.circuit, mna, spec, gear);
  EXPECT_LT(Trace::MaxDeviationAll(r1.trace, r2.trace), 5e-3);
}

TEST(Transient, BreakpointsHitExactly) {
  auto f = MakeStepRc(/*delay=*/1e-3);
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  spec.tstop = 2e-3;
  spec.probes.unknowns = {f.in};
  spec.probes.names = {"in"};
  const auto res = RunTransientSerial(*f.circuit, mna, spec, SimOptions{});
  // One sample must land exactly on the pulse delay.
  bool found = false;
  for (std::size_t i = 0; i < res.trace.num_samples(); ++i) {
    if (std::abs(res.trace.time(i) - 1e-3) < 1e-15) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Transient, TighterToleranceTakesMoreSteps) {
  auto f = MakeSeriesRlc();
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  spec.tstop = 1e-3;
  SimOptions loose, tight;
  loose.reltol = 1e-2;
  tight.reltol = 1e-5;
  const auto r_loose = RunTransientSerial(*f.circuit, mna, spec, loose);
  const auto r_tight = RunTransientSerial(*f.circuit, mna, spec, tight);
  EXPECT_GT(r_tight.stats.steps_accepted, r_loose.stats.steps_accepted);
}

TEST(Transient, StepRecordsTrackAcceptedSteps) {
  auto f = MakeStepRc();
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  spec.tstop = 1e-3;
  spec.record_step_details = true;
  const auto res = RunTransientSerial(*f.circuit, mna, spec, SimOptions{});
  std::size_t accepted = 0;
  for (const auto& s : res.steps) {
    if (s.accepted) ++accepted;
    EXPECT_GT(s.h, 0.0);
  }
  EXPECT_EQ(accepted, res.stats.steps_accepted);
}

TEST(Transient, FinalPointAtTstop) {
  auto f = MakeStepRc();
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  spec.tstop = 1e-3;
  const auto res = RunTransientSerial(*f.circuit, mna, spec, SimOptions{});
  ASSERT_NE(res.final_point, nullptr);
  EXPECT_NEAR(res.final_point->time, 1e-3, 1e-12);
}

TEST(Transient, SolveTimePointIsPureFunctionOfWindow) {
  // Two identical calls from the same window give identical results.
  auto f = MakeStepRc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx1(*f.circuit, mna), ctx2(*f.circuit, mna);
  SimOptions options;
  SolveDcOperatingPoint(ctx1, options);
  const SolutionPointPtr dc = MakeDcSolutionPoint(ctx1, 0.0);
  HistoryWindow window{dc};
  const auto r1 = SolveTimePoint(ctx1, window, 1e-5, options.method, true, options);
  const auto r2 = SolveTimePoint(ctx2, window, 1e-5, options.method, true, options);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(r1.point->x, r2.point->x);
  EXPECT_EQ(r1.point->q, r2.point->q);
}

TEST(Transient, SeedOverridesNewtonStart) {
  auto f = MakeStepRc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx(*f.circuit, mna);
  SimOptions options;
  SolveDcOperatingPoint(ctx, options);
  HistoryWindow window{MakeDcSolutionPoint(ctx, 0.0)};
  const auto plain = SolveTimePoint(ctx, window, 1e-5, options.method, true, options);
  // Seeding with the known answer converges at least as fast.
  const auto seeded = SolveTimePoint(ctx, window, 1e-5, options.method, true, options,
                                     plain.point->x);
  ASSERT_TRUE(seeded.converged);
  EXPECT_LE(seeded.newton.iterations, plain.newton.iterations);
  EXPECT_LT(sparse::MaxAbsDiff(seeded.point->x, plain.point->x), 1e-9);
}

TEST(Transient, StepLimitsDerivation) {
  TransientSpec spec;
  spec.tstart = 0;
  spec.tstop = 1.0;
  spec.tstep = 1e-4;
  SimOptions options;
  const auto limits = StepLimits::FromSpec(spec, options);
  EXPECT_DOUBLE_EQ(limits.hmax, 1.0 / 50.0);
  EXPECT_DOUBLE_EQ(limits.hmin, options.hmin_ratio * 1.0);
  EXPECT_LE(limits.h0, spec.tstep);
  options.hmax = 1e-3;
  EXPECT_DOUBLE_EQ(StepLimits::FromSpec(spec, options).hmax, 1e-3);
}

}  // namespace
}  // namespace wavepipe::engine
