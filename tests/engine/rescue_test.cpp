// Failure-path tests for the time-point rescue ladder and the serial
// engine's structured aborts.  Faults are injected deterministically
// (util/fault.hpp), so every scenario here is reproducible.
#include "engine/rescue.hpp"

#include <gtest/gtest.h>

#include "engine/transient.hpp"
#include "testutil/helpers.hpp"
#include "util/fault.hpp"

namespace wavepipe::engine {
namespace {

using util::fault::Schedule;
using util::fault::ScopedFault;

class RescueTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }

  /// Options that pin h0 to hmin, so ONE Newton failure exhausts the
  /// step-shrinking loop and hands control to the rescue ladder.
  static SimOptions ForcedHminOptions() {
    SimOptions options;
    options.hmin_ratio = 2e-5;  // hmin = 1e-7 on the 5 ms span below
    return options;
  }

  static TransientSpec RcSpec() {
    TransientSpec spec;
    spec.tstop = 5e-3;  // 5 tau of the testutil RC fixture
    return spec;
  }
};

TEST_F(RescueTest, FirstRungSucceedsOnHealthyCircuit) {
  const auto f = testutil::MakeStepRc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx(*f.circuit, mna);
  SimOptions options;
  SolveDcOperatingPoint(ctx, options);
  History history(options.history_depth);
  history.Add(MakeDcSolutionPoint(ctx, 0.0));

  TransientStats stats;
  const RescueOutcome outcome =
      AttemptRescue(ctx, history.Window(4), 1e-6, options, stats);
  EXPECT_TRUE(outcome.rescued);
  EXPECT_EQ(outcome.rung, RescueRung::kBackwardEuler);
  ASSERT_NE(outcome.solve.point, nullptr);
  EXPECT_DOUBLE_EQ(outcome.solve.point->time, 1e-6);
  EXPECT_EQ(stats.rescues_attempted[0], 1u);
  EXPECT_EQ(stats.rescues_succeeded[0], 1u);
  EXPECT_EQ(stats.rescues_attempted[1], 0u);
  EXPECT_EQ(stats.rescues_attempted[2], 0u);
  EXPECT_NE(outcome.attempts.find("be-restart"), std::string::npos);
}

TEST_F(RescueTest, LadderExhaustsWhenNewtonIsPermanentlyPoisoned) {
  const auto f = testutil::MakeStepRc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx(*f.circuit, mna);
  SimOptions options;
  SolveDcOperatingPoint(ctx, options);
  History history(options.history_depth);
  history.Add(MakeDcSolutionPoint(ctx, 0.0));

  Schedule always;
  always.fire = Schedule::kUnlimited;
  ScopedFault site("newton.converge", always);

  TransientStats stats;
  const RescueOutcome outcome =
      AttemptRescue(ctx, history.Window(4), 1e-6, options, stats);
  EXPECT_FALSE(outcome.rescued);
  for (int rung = 0; rung < kNumRescueRungs; ++rung) {
    EXPECT_EQ(stats.rescues_attempted[static_cast<std::size_t>(rung)], 1u) << rung;
    EXPECT_EQ(stats.rescues_succeeded[static_cast<std::size_t>(rung)], 0u) << rung;
  }
  // The attempts log names every rung, so the eventual abort is actionable.
  EXPECT_NE(outcome.attempts.find("be-restart"), std::string::npos);
  EXPECT_NE(outcome.attempts.find("damped-newton"), std::string::npos);
  EXPECT_NE(outcome.attempts.find("gshunt-ramp"), std::string::npos);
}

TEST_F(RescueTest, DisabledLadderReportsItself) {
  const auto f = testutil::MakeStepRc();
  MnaStructure mna(*f.circuit);
  SolveContext ctx(*f.circuit, mna);
  SimOptions options;
  options.rescue.enabled = false;
  SolveDcOperatingPoint(ctx, options);
  History history(options.history_depth);
  history.Add(MakeDcSolutionPoint(ctx, 0.0));

  TransientStats stats;
  const RescueOutcome outcome =
      AttemptRescue(ctx, history.Window(4), 1e-6, options, stats);
  EXPECT_FALSE(outcome.rescued);
  EXPECT_EQ(stats.TotalRescuesAttempted(), 0u);
  EXPECT_EQ(outcome.attempts, "rescue ladder disabled");
}

TEST_F(RescueTest, SerialRunRecoversViaRescueAndResumes) {
  const auto f = testutil::MakeStepRc();
  // Hit 0 is the DCOP solve; hits 1-2 are clean transient steps; hit 3 is
  // one injected Newton failure.  With h0 pinned at hmin the shrink loop is
  // immediately out of road, so the failure must go through the ladder.
  Schedule schedule;
  schedule.skip = 3;
  schedule.fire = 1;
  ScopedFault site("newton.converge", schedule);

  const TransientResult result =
      testutil::RunSerial(*f.circuit, RcSpec(), ForcedHminOptions());
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.abort_reason.empty());
  EXPECT_GE(result.stats.steps_rejected_newton, 1u);
  EXPECT_EQ(result.stats.rescues_attempted[0], 1u);
  EXPECT_EQ(result.stats.rescues_succeeded[0], 1u);
  // The run resumed after the rescue and reached tstop.
  ASSERT_NE(result.final_point, nullptr);
  EXPECT_NEAR(result.final_point->time, 5e-3, 1e-12);
  for (std::size_t i = 1; i < result.trace.num_samples(); ++i) {
    EXPECT_GT(result.trace.time(i), result.trace.time(i - 1));
  }
}

TEST_F(RescueTest, SerialRunAbortsStructurallyWithPartialTrace) {
  const auto f = testutil::MakeStepRc();
  Schedule schedule;
  schedule.skip = 3;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault site("newton.converge", schedule);

  const TransientResult result =
      testutil::RunSerial(*f.circuit, RcSpec(), ForcedHminOptions());
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("rescue ladder exhausted"), std::string::npos)
      << result.abort_reason;
  // The waveform computed before the abort is preserved: DC point plus the
  // two clean steps.
  EXPECT_GE(result.trace.num_samples(), 3u);
  EXPECT_GT(result.last_good_time, 0.0);
  EXPECT_LT(result.last_good_time, 5e-3);
  EXPECT_DOUBLE_EQ(result.trace.time(result.trace.num_samples() - 1),
                   result.last_good_time);
  EXPECT_EQ(result.stats.TotalRescuesAttempted(), 3u);
  EXPECT_EQ(result.stats.TotalRescuesSucceeded(), 0u);
}

TEST_F(RescueTest, DcopFailureReturnsStructuredAbortNotThrow) {
  const auto f = testutil::MakeStepRc();
  Schedule always;
  always.fire = Schedule::kUnlimited;
  ScopedFault site("newton.converge", always);

  TransientResult result;
  EXPECT_NO_THROW(result = testutil::RunSerial(*f.circuit, RcSpec()));
  EXPECT_FALSE(result.completed);
  // The abort enumerates every DC strategy that was tried.
  EXPECT_NE(result.abort_reason.find("DC operating point failed"), std::string::npos);
  EXPECT_NE(result.abort_reason.find("direct"), std::string::npos);
  EXPECT_NE(result.abort_reason.find("gmin-stepping"), std::string::npos);
  EXPECT_NE(result.abort_reason.find("source-stepping"), std::string::npos);
  EXPECT_EQ(result.trace.num_samples(), 0u);
}

TEST_F(RescueTest, SingularPivotIsARecoverableFailure) {
  const auto f = testutil::MakeStepRc();
  Schedule schedule;
  schedule.skip = 5;
  schedule.fire = 1;
  ScopedFault site("lu.pivot", schedule);

  const TransientResult result = testutil::RunSerial(*f.circuit, RcSpec());
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GE(result.stats.steps_rejected_newton, 1u);
  ASSERT_NE(result.final_point, nullptr);
  EXPECT_NEAR(result.final_point->time, 5e-3, 1e-12);
}

TEST_F(RescueTest, PoisonedDeviceEvaluationIsARecoverableFailure) {
  const auto f = testutil::MakeStepRc();
  Schedule schedule;
  schedule.skip = 5;
  schedule.fire = 1;
  ScopedFault site("device.eval_nan", schedule);

  const TransientResult result = testutil::RunSerial(*f.circuit, RcSpec());
  EXPECT_TRUE(result.completed) << result.abort_reason;
  ASSERT_NE(result.final_point, nullptr);
  EXPECT_NEAR(result.final_point->time, 5e-3, 1e-12);
}

TEST_F(RescueTest, CleanRunNeverTouchesTheLadder) {
  const auto f = testutil::MakeStepRc();
  const TransientResult result = testutil::RunSerial(*f.circuit, RcSpec());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stats.TotalRescuesAttempted(), 0u);
  EXPECT_EQ(result.stats.TotalRescuesSucceeded(), 0u);
}

}  // namespace
}  // namespace wavepipe::engine
