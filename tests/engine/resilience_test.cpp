// Durable-run machinery unit + engine-level tests: the run-budget governor,
// the feature circuit-breaker state machine, and the stall watchdog
// (including its fault-forced escalation path through a real serial run).
#include "engine/resilience.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "util/checkpoint.hpp"
#include "util/fault.hpp"

namespace wavepipe {
namespace {

using engine::BreakerBoard;
using engine::Feature;
using engine::FeatureBit;
using engine::ResilienceOptions;
using engine::ResilienceStats;
using engine::RunBudget;
using engine::StallWatchdog;
using util::fault::Schedule;

// ---------------------------------------------------------------------------
// RunBudget
// ---------------------------------------------------------------------------

TEST(RunBudgetTest, DisabledBudgetNeverTrips) {
  const RunBudget budget{ResilienceOptions{}};
  EXPECT_FALSE(budget.enabled());
  EXPECT_TRUE(budget.Exceeded(1u << 30, 1u << 30, 1e9).empty());
}

TEST(RunBudgetTest, EachLimitProducesAStructuredReason) {
  ResilienceOptions options;
  options.max_steps = 10;
  options.max_newton_total = 100;
  options.max_wall_seconds = 60.0;
  const RunBudget budget{options};
  EXPECT_TRUE(budget.enabled());
  EXPECT_TRUE(budget.Exceeded(9, 99, 59.0).empty());

  for (const auto& reason :
       {budget.Exceeded(10, 0, 0.0), budget.Exceeded(0, 100, 0.0),
        budget.Exceeded(0, 0, 60.0)}) {
    ASSERT_FALSE(reason.empty());
    // Every governor stop starts with the shared prefix consumers key off.
    EXPECT_EQ(reason.rfind(engine::kBudgetExhausted, 0), 0u) << reason;
  }
  EXPECT_NE(budget.Exceeded(10, 0, 0.0).find("--max-steps"), std::string::npos);
  EXPECT_NE(budget.Exceeded(0, 100, 0.0).find("--max-newton-total"),
            std::string::npos);
  EXPECT_NE(budget.Exceeded(0, 0, 61.0).find("--max-wall"), std::string::npos);
}

// ---------------------------------------------------------------------------
// BreakerBoard
// ---------------------------------------------------------------------------

class BreakerBoardTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }

  ResilienceOptions SmallCooldown() {
    ResilienceOptions options;
    options.breaker_trip_threshold = 3;
    options.breaker_cooldown_steps = 4;
    return options;
  }
};

TEST_F(BreakerBoardTest, TripsAfterConsecutiveAttributedFailures) {
  ResilienceStats stats;
  BreakerBoard board(SmallCooldown(), stats);
  const std::uint64_t mask = FeatureBit(Feature::kChord);

  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), 0u);
  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), 0u);
  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), mask);
  EXPECT_TRUE(board.IsOpen(Feature::kChord));
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.feature_trips[static_cast<int>(Feature::kChord)], 1u);
  EXPECT_EQ(stats.breaker_retrips, 0u);

  // An open breaker ignores further outcomes (the feature is disengaged).
  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), 0u);
  EXPECT_EQ(stats.breaker_trips, 1u);
}

TEST_F(BreakerBoardTest, SuccessResetsTheConsecutiveFailureCount) {
  ResilienceStats stats;
  BreakerBoard board(SmallCooldown(), stats);
  const std::uint64_t mask = FeatureBit(Feature::kPartition);

  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), 0u);
  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), 0u);
  EXPECT_EQ(board.OnSolveOutcome(mask, true, 0.0), 0u);  // resets the streak
  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), 0u);
  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), 0u);
  EXPECT_FALSE(board.IsOpen(Feature::kPartition));
  EXPECT_EQ(stats.breaker_trips, 0u);
}

TEST_F(BreakerBoardTest, CooldownLeadsToHalfOpenReprobeThenRecloses) {
  ResilienceStats stats;
  BreakerBoard board(SmallCooldown(), stats);
  const std::uint64_t mask = FeatureBit(Feature::kBypass);
  for (int i = 0; i < 3; ++i) board.OnSolveOutcome(mask, false, 0.0);
  ASSERT_TRUE(board.IsOpen(Feature::kBypass));

  // Four accepted steps of cooldown, then the half-open re-probe mask.
  EXPECT_EQ(board.OnAcceptedStep(), 0u);
  EXPECT_EQ(board.OnAcceptedStep(), 0u);
  EXPECT_EQ(board.OnAcceptedStep(), 0u);
  EXPECT_EQ(board.OnAcceptedStep(), mask);
  EXPECT_EQ(stats.breaker_reprobes, 1u);
  EXPECT_FALSE(board.IsOpen(Feature::kBypass));

  // A successful probe recloses the breaker for good.
  EXPECT_EQ(board.OnSolveOutcome(mask, true, 0.0), 0u);
  EXPECT_FALSE(board.IsOpen(Feature::kBypass));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(board.OnAcceptedStep(), 0u);
}

TEST_F(BreakerBoardTest, FailedReprobeRetripsWithDoubledCooldown) {
  ResilienceStats stats;
  BreakerBoard board(SmallCooldown(), stats);
  const std::uint64_t mask = FeatureBit(Feature::kParallelFactor);
  for (int i = 0; i < 3; ++i) board.OnSolveOutcome(mask, false, 0.0);
  for (int i = 0; i < 4; ++i) board.OnAcceptedStep();  // -> half-open

  // One failure in the half-open probe window re-trips immediately.
  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), mask);
  EXPECT_EQ(stats.breaker_trips, 2u);
  EXPECT_EQ(stats.breaker_retrips, 1u);

  // The second cooldown is doubled: 8 accepted steps, not 4.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(board.OnAcceptedStep(), 0u) << i;
  EXPECT_EQ(board.OnAcceptedStep(), mask);
}

TEST_F(BreakerBoardTest, FailureIsAttributedToEveryActiveFeature) {
  ResilienceStats stats;
  BreakerBoard board(SmallCooldown(), stats);
  const std::uint64_t mask =
      FeatureBit(Feature::kChord) | FeatureBit(Feature::kParallelAssembly);
  board.OnSolveOutcome(mask, false, 0.0);
  board.OnSolveOutcome(mask, false, 0.0);
  EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), mask);
  EXPECT_TRUE(board.IsOpen(Feature::kChord));
  EXPECT_TRUE(board.IsOpen(Feature::kParallelAssembly));
  EXPECT_FALSE(board.IsOpen(Feature::kPartition));
  EXPECT_EQ(stats.breaker_trips, 2u);
}

TEST_F(BreakerBoardTest, BreakerTripFaultForcesAnImmediateTrip) {
  ResilienceStats stats;
  BreakerBoard board(SmallCooldown(), stats);
  const std::uint64_t mask = FeatureBit(Feature::kPartition);
  util::fault::Arm("breaker.trip", Schedule{});

  // One outcome — even a CONVERGED one — trips under the forced fault.
  EXPECT_EQ(board.OnSolveOutcome(mask, true, 0.0), mask);
  EXPECT_EQ(util::fault::Fired("breaker.trip"), 1u);
  EXPECT_TRUE(board.IsOpen(Feature::kPartition));
  EXPECT_EQ(stats.feature_trips[static_cast<int>(Feature::kPartition)], 1u);
}

TEST_F(BreakerBoardTest, DisabledBoardIsInert) {
  ResilienceOptions options = SmallCooldown();
  options.breakers = false;
  ResilienceStats stats;
  BreakerBoard board(options, stats);
  const std::uint64_t mask = FeatureBit(Feature::kChord);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(board.OnSolveOutcome(mask, false, 0.0), 0u);
  EXPECT_FALSE(board.IsOpen(Feature::kChord));
  EXPECT_EQ(stats.breaker_trips, 0u);
}

TEST_F(BreakerBoardTest, EwmaDiagnosticsTrackOutcomes) {
  ResilienceStats stats;
  BreakerBoard board(SmallCooldown(), stats);
  const std::uint64_t mask = FeatureBit(Feature::kChord);
  EXPECT_EQ(board.FailureEwma(Feature::kChord), 0.0);
  board.OnSolveOutcome(mask, false, 0.25);
  EXPECT_GT(board.FailureEwma(Feature::kChord), 0.0);
  EXPECT_GT(board.LatencyEwma(Feature::kChord), 0.0);
  const double after_failure = board.FailureEwma(Feature::kChord);
  board.OnSolveOutcome(mask, true, 0.0);
  EXPECT_LT(board.FailureEwma(Feature::kChord), after_failure);
}

// ---------------------------------------------------------------------------
// StallWatchdog
// ---------------------------------------------------------------------------

class StallWatchdogTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_F(StallWatchdogTest, ForcedStallEscalatesAndCounts) {
  ResilienceOptions options;
  options.watchdog = true;
  options.watchdog_interval_seconds = 0.005;
  options.watchdog_stall_intervals = 2;
  ResilienceStats stats;
  std::atomic<std::uint64_t> beat{0};

  Schedule schedule;
  schedule.fire = Schedule::kUnlimited;
  util::fault::Arm("watchdog.stall", schedule);

  StallWatchdog watchdog(options, stats);
  watchdog.AddSource(&beat);
  watchdog.Start();
  for (int i = 0; i < 400 && !watchdog.ShouldAbort(); ++i) {
    beat.fetch_add(1, std::memory_order_relaxed);  // real progress is overridden
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(watchdog.ShouldAbort());
  watchdog.Finish();
  EXPECT_GE(stats.watchdog_stalls, 1u);
  EXPECT_NE(watchdog.AbortReason().find("watchdog stall"), std::string::npos);
}

TEST_F(StallWatchdogTest, ProgressPreventsEscalation) {
  ResilienceOptions options;
  options.watchdog = true;
  options.watchdog_interval_seconds = 0.002;
  options.watchdog_stall_intervals = 3;
  ResilienceStats stats;
  std::atomic<std::uint64_t> beat{0};

  StallWatchdog watchdog(options, stats);
  watchdog.AddSource(&beat);
  watchdog.Start();
  for (int i = 0; i < 40; ++i) {
    beat.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(watchdog.ShouldAbort());
  watchdog.Finish();
  EXPECT_EQ(stats.watchdog_stalls, 0u);
}

TEST_F(StallWatchdogTest, DisabledWatchdogNeverStartsItsThread) {
  ResilienceOptions options;  // watchdog defaults off
  ResilienceStats stats;
  std::atomic<std::uint64_t> beat{0};
  StallWatchdog watchdog(options, stats);
  watchdog.AddSource(&beat);
  watchdog.Start();
  EXPECT_FALSE(watchdog.enabled());
  EXPECT_FALSE(watchdog.ShouldAbort());
  watchdog.Finish();
  EXPECT_EQ(stats.watchdog_stalls, 0u);
}

// ---------------------------------------------------------------------------
// Engine-level escalation: stall -> final checkpoint -> structured abort
// ---------------------------------------------------------------------------

TEST_F(StallWatchdogTest, SerialEngineEscalatesAStallIntoACheckpointedAbort) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = ::testing::TempDir() + "/watchdog_abort.ckpt";
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());

  Schedule schedule;
  schedule.fire = Schedule::kUnlimited;
  util::fault::Arm("watchdog.stall", schedule);

  engine::SimOptions sim;
  sim.resilience.watchdog = true;
  sim.resilience.watchdog_interval_seconds = 0.001;
  sim.resilience.watchdog_stall_intervals = 1;
  sim.resilience.checkpoint_path = base;
  const auto result = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, sim);

  ASSERT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("watchdog stall"), std::string::npos)
      << result.abort_reason;
  EXPECT_GE(result.resilience.watchdog_stalls, 1u);
  EXPECT_GE(result.resilience.watchdog_escalations, 1u);
  EXPECT_GE(result.resilience.ckpt_writes, 1u);

  // The final checkpoint is loadable and belongs to this run: the stall
  // escalation path writes state BEFORE aborting, so the run is resumable.
  const engine::TransientCheckpoint ck = engine::LoadCheckpoint(base);
  EXPECT_EQ(ck.engine, "serial");
  EXPECT_EQ(ck.stats.steps_accepted, result.stats.steps_accepted);

  // With the fault disarmed, resuming that checkpoint completes the run.
  util::fault::DisarmAll();
  engine::SimOptions resume_sim;
  resume_sim.resilience.resume = &ck;
  const auto resumed = engine::RunTransientSerial(*gen.circuit, mna, gen.spec,
                                                  resume_sim);
  EXPECT_TRUE(resumed.completed) << resumed.abort_reason;
  EXPECT_EQ(resumed.last_good_time, gen.spec.tstop);
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

}  // namespace
}  // namespace wavepipe
