#include "engine/circuit.hpp"

#include <gtest/gtest.h>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "util/error.hpp"

namespace wavepipe::engine {
namespace {

TEST(Circuit, NodeCreationAndAliases) {
  Circuit c;
  EXPECT_EQ(c.AddNode("0"), devices::kGround);
  EXPECT_EQ(c.AddNode("GND"), devices::kGround);
  const int a = c.AddNode("a");
  EXPECT_EQ(c.AddNode("A"), a);  // case-insensitive
  EXPECT_EQ(c.AddNode("b"), a + 1);
  EXPECT_EQ(c.num_nodes(), 2);
}

TEST(Circuit, NodeIndexThrowsOnUnknown) {
  Circuit c;
  c.AddNode("a");
  EXPECT_THROW(c.NodeIndex("zz"), ElaborationError);
  EXPECT_TRUE(c.HasNode("a"));
  EXPECT_TRUE(c.HasNode("0"));
  EXPECT_FALSE(c.HasNode("zz"));
}

TEST(Circuit, FinalizeAssignsBranches) {
  Circuit c;
  const int a = c.AddNode("a");
  c.Emplace<devices::VoltageSource>("v1", a, devices::kGround,
                                    std::make_unique<devices::DcWaveform>(1.0));
  c.Emplace<devices::Inductor>("l1", a, devices::kGround, 1e-3);
  c.Finalize();
  EXPECT_EQ(c.num_branches(), 2);
  EXPECT_EQ(c.num_unknowns(), 3);
  EXPECT_EQ(c.BranchIndex("v1"), 1);
  EXPECT_EQ(c.BranchIndex("l1"), 2);
  EXPECT_EQ(c.num_states(), 1);  // inductor flux
}

TEST(Circuit, DeferredBindResolvesForwardReferences) {
  // K element before its inductors: Finalize must retry.
  Circuit c;
  const int a = c.AddNode("a"), b = c.AddNode("b");
  c.Emplace<devices::MutualInductance>("k1", "l1", "l2", 0.5, 1e-3, 1e-3);
  c.Emplace<devices::Inductor>("l1", a, devices::kGround, 1e-3);
  c.Emplace<devices::Inductor>("l2", b, devices::kGround, 1e-3);
  EXPECT_NO_THROW(c.Finalize());
  EXPECT_EQ(c.num_branches(), 2);
}

TEST(Circuit, UnresolvableReferenceThrows) {
  Circuit c;
  c.AddNode("a");
  c.Emplace<devices::Cccs>("f1", 0, devices::kGround, "ghost", 1.0);
  EXPECT_THROW(c.Finalize(), ElaborationError);
}

TEST(Circuit, NonlinearFlag) {
  Circuit c1;
  c1.Emplace<devices::Resistor>("r1", c1.AddNode("a"), devices::kGround, 1.0);
  c1.Finalize();
  EXPECT_FALSE(c1.is_nonlinear());
}

TEST(Circuit, BreakpointsSortedUnique) {
  Circuit c;
  const int a = c.AddNode("a");
  c.Emplace<devices::VoltageSource>(
      "v1", a, devices::kGround,
      std::make_unique<devices::PulseWaveform>(0, 1, 3, 1, 1, 2, 100));
  c.Emplace<devices::VoltageSource>(
      "v2", c.AddNode("b"), devices::kGround,
      std::make_unique<devices::PulseWaveform>(0, 1, 3, 1, 1, 2, 100));  // same corners
  c.Finalize();
  const auto bps = c.CollectBreakpoints(0, 10);
  ASSERT_EQ(bps.size(), 4u);  // duplicates merged: 3, 4, 6, 7
  EXPECT_DOUBLE_EQ(bps[0], 3.0);
  EXPECT_DOUBLE_EQ(bps[3], 7.0);
  for (std::size_t i = 1; i < bps.size(); ++i) EXPECT_LT(bps[i - 1], bps[i]);
}

TEST(Circuit, NodeNamesRoundTrip) {
  Circuit c;
  const int a = c.AddNode("Alpha");
  EXPECT_EQ(c.node_name(a), "alpha");
}

}  // namespace
}  // namespace wavepipe::engine
