// Checkpoint/restart: byte-level format tests (util/checkpoint.hpp) and the
// engine-level resume property — a run killed at an accepted-step boundary
// and resumed from its checkpoint produces a bitwise-identical trace.
//
// The kill is simulated deterministically with the run-budget governor
// (--max-steps): the governor stops the run AT an accepted-step boundary and
// the epilogue publishes a final checkpoint, which is exactly the state a
// kill -9 between checkpoints recovers to (the CI crash-recovery job does
// the real SIGKILL variant).
#include "util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "engine/resilience.hpp"
#include "engine/transient.hpp"
#include "parallel/fine_grained.hpp"
#include "util/fault.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe {
namespace {

using engine::TransientCheckpoint;
using util::ByteReader;
using util::ByteWriter;
using util::CheckpointError;
using util::fault::Schedule;
using util::fault::ScopedFault;

std::string TempBase(const std::string& name) {
  return ::testing::TempDir() + "/" + name + ".ckpt";
}

void RemoveSlots(const std::string& base) {
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
  std::remove(base.c_str());
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

TEST(ByteCodec, RoundTripsEveryType) {
  ByteWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(-1.5e-300);
  w.Bool(true);
  w.Bool(false);
  w.Str("wavepipe");
  w.Str("");
  w.DoubleVec(std::vector<double>{1.0, -2.5, 3e100});
  w.DoubleVec(std::vector<double>{});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), -1.5e-300);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.Str(), "wavepipe");
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.DoubleVec(), (std::vector<double>{1.0, -2.5, 3e100}));
  EXPECT_TRUE(r.DoubleVec().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteCodec, ReaderThrowsOnTruncation) {
  ByteWriter w;
  w.U64(7);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.U64(), CheckpointError);
}

TEST(ByteCodec, ReaderThrowsOnTruncatedString) {
  ByteWriter w;
  w.Str("hello");
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() - 2);  // cut into the character data
  ByteReader r(bytes);
  EXPECT_THROW(r.Str(), CheckpointError);
}

TEST(Crc32, MatchesIeeeCheckValue) {
  // The standard CRC-32 check vector: crc32("123456789") == 0xCBF43926.
  const std::string s = "123456789";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(util::Crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(util::Crc32(std::span<const std::uint8_t>{}), 0u);
}

// ---------------------------------------------------------------------------
// Slot write / load
// ---------------------------------------------------------------------------

TEST(CheckpointSlots, RoundTripAndDoubleBuffer) {
  const std::string base = TempBase("slots_roundtrip");
  RemoveSlots(base);
  const std::vector<std::uint8_t> gen0 = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> gen1 = {9, 8, 7};
  const std::vector<std::uint8_t> gen2 = {42};

  util::WriteCheckpointSlot(base, gen0, 0);  // -> .a
  auto loaded = util::LoadNewestCheckpoint(base);
  EXPECT_EQ(loaded.generation, 0u);
  EXPECT_EQ(loaded.payload, gen0);

  util::WriteCheckpointSlot(base, gen1, 1);  // -> .b, .a keeps gen 0
  loaded = util::LoadNewestCheckpoint(base);
  EXPECT_EQ(loaded.generation, 1u);
  EXPECT_EQ(loaded.payload, gen1);

  util::WriteCheckpointSlot(base, gen2, 2);  // overwrites .a
  loaded = util::LoadNewestCheckpoint(base);
  EXPECT_EQ(loaded.generation, 2u);
  EXPECT_EQ(loaded.payload, gen2);
  RemoveSlots(base);
}

TEST(CheckpointSlots, MissingFileThrows) {
  EXPECT_THROW(util::LoadNewestCheckpoint(TempBase("never_written")), CheckpointError);
}

TEST(CheckpointSlots, TruncatedSlotFallsBackToOlderGeneration) {
  const std::string base = TempBase("slots_truncated");
  RemoveSlots(base);
  util::WriteCheckpointSlot(base, std::vector<std::uint8_t>{1, 2, 3}, 4);  // .a
  util::WriteCheckpointSlot(base, std::vector<std::uint8_t>{6, 6, 6}, 5);  // .b
  // Truncate the newer slot mid-payload: a crash during publication.
  {
    std::FILE* f = std::fopen((base + ".b").c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate((base + ".b").c_str(), size - 2), 0);
  }
  const auto loaded = util::LoadNewestCheckpoint(base);
  EXPECT_EQ(loaded.generation, 4u);
  EXPECT_EQ(loaded.payload, (std::vector<std::uint8_t>{1, 2, 3}));
  RemoveSlots(base);
}

TEST(CheckpointSlots, CrcFlipIsRejected) {
  const std::string base = TempBase("slots_crcflip");
  RemoveSlots(base);
  util::WriteCheckpointSlot(base, std::vector<std::uint8_t>{10, 20, 30, 40}, 0);
  // Flip one payload byte on disk; the header CRC no longer matches.
  {
    std::FILE* f = std::fopen((base + ".a").c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 28 + 1, SEEK_SET), 0);  // header is 28 bytes
    const unsigned char flip = 0xFF;
    ASSERT_EQ(std::fwrite(&flip, 1, 1, f), 1u);
    std::fclose(f);
  }
  EXPECT_THROW(util::LoadNewestCheckpoint(base), CheckpointError);
  RemoveSlots(base);
}

TEST(CheckpointSlots, WriteFaultThrowsAndPreservesPreviousSlot) {
  const std::string base = TempBase("slots_writefault");
  RemoveSlots(base);
  util::WriteCheckpointSlot(base, std::vector<std::uint8_t>{5, 5}, 0);
  {
    Schedule schedule;
    schedule.fire = 1;
    ScopedFault fault("ckpt.write", schedule);
    EXPECT_THROW(
        util::WriteCheckpointSlot(base, std::vector<std::uint8_t>{7, 7}, 1),
        CheckpointError);
    EXPECT_EQ(util::fault::Fired("ckpt.write"), 1u);
  }
  const auto loaded = util::LoadNewestCheckpoint(base);
  EXPECT_EQ(loaded.generation, 0u);
  EXPECT_EQ(loaded.payload, (std::vector<std::uint8_t>{5, 5}));
  RemoveSlots(base);
}

TEST(CheckpointSlots, CorruptFaultProducesRejectedFile) {
  const std::string base = TempBase("slots_corruptfault");
  RemoveSlots(base);
  {
    Schedule schedule;
    schedule.fire = 1;
    ScopedFault fault("ckpt.corrupt", schedule);
    util::WriteCheckpointSlot(base, std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6}, 0);
    EXPECT_EQ(util::fault::Fired("ckpt.corrupt"), 1u);
  }
  // The write itself "succeeded" (the corruption models silent media error),
  // but the loader's CRC check must refuse the file.
  EXPECT_THROW(util::LoadNewestCheckpoint(base), CheckpointError);
  RemoveSlots(base);
}

// ---------------------------------------------------------------------------
// TransientCheckpoint payload
// ---------------------------------------------------------------------------

TransientCheckpoint MakeFullCheckpoint() {
  TransientCheckpoint ck;
  ck.engine = "pipeline";
  ck.scheme = "combined";
  ck.partition_pieces = 4;
  ck.num_unknowns = 3;
  ck.num_probes = 2;
  ck.tstop = 1e-6;
  ck.h = 1e-9;
  ck.restart = false;
  ck.steps_since_restart = 17;
  ck.floor_streak = 2;
  ck.next_breakpoint = 5;
  ck.last_leading_time = 4.5e-7;
  ck.bwp_cooldown = 3;
  ck.consecutive_failures = 1;
  ck.quarantine_rounds_left = 2;
  ck.last_growth_factor = 1.25;
  ck.avg_lead_iters = 3.5;
  ck.avg_repair_iters = 1.5;
  ck.repair_samples = 9;
  ck.sched_u64 = {1, 2, 3, 4};
  ck.sched_f64 = {0.5, 0.25};
  engine::CheckpointLedgerRecord rec;
  rec.id = 7;
  rec.kind = 2;
  rec.time_point = 3e-7;
  rec.seconds = 0.01;
  rec.newton_iterations = 4;
  rec.useful = false;
  rec.deps = {3, 5};
  ck.ledger.push_back(rec);
  engine::CheckpointPoint p;
  p.time = 4.5e-7;
  p.x = {1.0, 2.0, 3.0};
  p.q = {0.1, 0.2};
  p.qdot = {-0.1, -0.2};
  p.auxiliary = true;
  p.ledger_id = 7;
  ck.history.push_back(p);
  ck.stats.steps_accepted = 100;
  ck.stats.newton_iterations = 321;
  ck.stats.dcop_strategy = "direct";
  ck.stats.rescues_attempted[0] = 2;
  ck.steps.push_back({4.5e-7, 1e-9, 3, 0.4, true, false});
  ck.trace_times = {0.0, 4.5e-7};
  ck.trace_values = {0.0, 0.0, 1.0, 2.0};
  engine::CheckpointContextSeeds slot;
  slot.lu_full = {1.0, -2.0};
  slot.lu_numeric = {3.0};
  slot.bbd_full = {4.0, 5.0, 6.0};
  slot.bbd_numeric = {};
  ck.context_seeds.push_back(slot);
  ck.context_seeds.push_back(engine::CheckpointContextSeeds{});
  return ck;
}

TEST(CheckpointPayload, SerializeDeserializeRoundTrip) {
  const TransientCheckpoint ck = MakeFullCheckpoint();
  const auto payload = engine::SerializeCheckpoint(ck);
  const TransientCheckpoint back = engine::DeserializeCheckpoint(payload);

  EXPECT_EQ(back.engine, ck.engine);
  EXPECT_EQ(back.scheme, ck.scheme);
  EXPECT_EQ(back.partition_pieces, ck.partition_pieces);
  EXPECT_EQ(back.num_unknowns, ck.num_unknowns);
  EXPECT_EQ(back.num_probes, ck.num_probes);
  EXPECT_EQ(back.tstop, ck.tstop);
  EXPECT_EQ(back.h, ck.h);
  EXPECT_EQ(back.restart, ck.restart);
  EXPECT_EQ(back.steps_since_restart, ck.steps_since_restart);
  EXPECT_EQ(back.floor_streak, ck.floor_streak);
  EXPECT_EQ(back.next_breakpoint, ck.next_breakpoint);
  EXPECT_EQ(back.last_leading_time, ck.last_leading_time);
  EXPECT_EQ(back.bwp_cooldown, ck.bwp_cooldown);
  EXPECT_EQ(back.sched_u64, ck.sched_u64);
  EXPECT_EQ(back.sched_f64, ck.sched_f64);
  ASSERT_EQ(back.ledger.size(), 1u);
  EXPECT_EQ(back.ledger[0].id, 7);
  EXPECT_EQ(back.ledger[0].deps, (std::vector<std::int64_t>{3, 5}));
  ASSERT_EQ(back.history.size(), 1u);
  EXPECT_EQ(back.history[0].x, ck.history[0].x);
  EXPECT_EQ(back.history[0].ledger_id, 7);
  EXPECT_TRUE(back.history[0].auxiliary);
  EXPECT_EQ(back.stats.steps_accepted, 100u);
  EXPECT_EQ(back.stats.newton_iterations, 321u);
  EXPECT_EQ(back.stats.dcop_strategy, "direct");
  EXPECT_EQ(back.stats.rescues_attempted[0], 2u);
  ASSERT_EQ(back.steps.size(), 1u);
  EXPECT_EQ(back.steps[0].newton_iterations, 3);
  EXPECT_EQ(back.trace_times, ck.trace_times);
  EXPECT_EQ(back.trace_values, ck.trace_values);
  ASSERT_EQ(back.context_seeds.size(), 2u);
  EXPECT_EQ(back.context_seeds[0].lu_full, ck.context_seeds[0].lu_full);
  EXPECT_EQ(back.context_seeds[0].lu_numeric, ck.context_seeds[0].lu_numeric);
  EXPECT_EQ(back.context_seeds[0].bbd_full, ck.context_seeds[0].bbd_full);
  EXPECT_TRUE(back.context_seeds[0].bbd_numeric.empty());
  EXPECT_TRUE(back.context_seeds[1].lu_full.empty());
}

TEST(CheckpointPayload, TruncatedPayloadThrows) {
  auto payload = engine::SerializeCheckpoint(MakeFullCheckpoint());
  payload.resize(payload.size() / 2);
  EXPECT_THROW(engine::DeserializeCheckpoint(payload), CheckpointError);
}

TEST(CheckpointPayload, TrailingGarbageThrows) {
  auto payload = engine::SerializeCheckpoint(MakeFullCheckpoint());
  payload.push_back(0);
  EXPECT_THROW(engine::DeserializeCheckpoint(payload), CheckpointError);
}

TEST(CheckpointPayload, ValidateResumeRejectsMismatches) {
  const TransientCheckpoint ck = MakeFullCheckpoint();
  EXPECT_NO_THROW(engine::ValidateResume(ck, "pipeline", "combined", 4, 3, 2, 1e-6));
  EXPECT_THROW(engine::ValidateResume(ck, "serial", "combined", 4, 3, 2, 1e-6),
               CheckpointError);
  EXPECT_THROW(engine::ValidateResume(ck, "pipeline", "combined", 2, 3, 2, 1e-6),
               CheckpointError);
  EXPECT_THROW(engine::ValidateResume(ck, "pipeline", "combined", 4, 8, 2, 1e-6),
               CheckpointError);
  EXPECT_THROW(engine::ValidateResume(ck, "pipeline", "combined", 4, 3, 2, 2e-6),
               CheckpointError);
}

// ---------------------------------------------------------------------------
// Serial engine: budget abort + bit-identical resume
// ---------------------------------------------------------------------------

class SerialResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_F(SerialResumeTest, BudgetAbortWritesFinalCheckpoint) {
  const auto gen = circuits::MakeRcMesh(6, 6);
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("serial_budget");
  RemoveSlots(base);

  engine::SimOptions options;
  options.resilience.checkpoint_path = base;
  options.resilience.max_steps = 5;
  const auto result = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, options);

  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find(engine::kBudgetExhausted), std::string::npos)
      << result.abort_reason;
  EXPECT_EQ(result.stats.steps_accepted, 5u);
  EXPECT_EQ(result.resilience.budget_exhausted, 1u);
  EXPECT_GE(result.resilience.ckpt_writes, 1u);

  const TransientCheckpoint ck = engine::LoadCheckpoint(base);
  EXPECT_EQ(ck.engine, "serial");
  EXPECT_EQ(ck.stats.steps_accepted, 5u);
  EXPECT_FALSE(ck.history.empty());
  RemoveSlots(base);
}

// The resume property: reference run vs (run killed at step k, resumed) must
// agree BITWISE on the accepted trace and on every deterministic counter.
void ExpectResumeBitIdentical(const circuits::GeneratedCircuit& gen,
                              std::uint64_t kill_at_step, const std::string& tag) {
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("serial_resume_" + tag);
  RemoveSlots(base);

  const engine::SimOptions options;  // defaults
  const auto reference = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, options);
  ASSERT_TRUE(reference.completed) << reference.abort_reason;

  engine::SimOptions first = options;
  first.resilience.checkpoint_path = base;
  first.resilience.max_steps = kill_at_step;
  const auto partial = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, first);
  ASSERT_FALSE(partial.completed);

  const TransientCheckpoint ck = engine::LoadCheckpoint(base);
  engine::SimOptions second = options;
  second.resilience.resume = &ck;
  const auto resumed = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, second);
  ASSERT_TRUE(resumed.completed) << resumed.abort_reason;
  EXPECT_EQ(resumed.resilience.ckpt_resumed, 1u);

  // Trace: bitwise identical, sample by sample.
  ASSERT_EQ(resumed.trace.num_samples(), reference.trace.num_samples());
  const std::size_t probes = reference.trace.probes().size();
  for (std::size_t s = 0; s < reference.trace.num_samples(); ++s) {
    ASSERT_EQ(resumed.trace.times()[s], reference.trace.times()[s])
        << tag << " sample " << s;
    for (std::size_t p = 0; p < probes; ++p) {
      ASSERT_EQ(resumed.trace.value(s, p), reference.trace.value(s, p))
          << tag << " sample " << s << " probe " << p;
    }
  }

  // Deterministic counters.  lu full/refactor split may legitimately differ
  // (the resumed process's FIRST factorization is a full factor where the
  // uninterrupted run refactored), so those compare as sums.
  EXPECT_EQ(resumed.stats.steps_accepted, reference.stats.steps_accepted);
  EXPECT_EQ(resumed.stats.steps_rejected_lte, reference.stats.steps_rejected_lte);
  EXPECT_EQ(resumed.stats.steps_rejected_newton, reference.stats.steps_rejected_newton);
  EXPECT_EQ(resumed.stats.newton_iterations, reference.stats.newton_iterations);
  EXPECT_EQ(resumed.stats.lu_full_factors + resumed.stats.lu_refactors,
            reference.stats.lu_full_factors + reference.stats.lu_refactors);
  EXPECT_EQ(resumed.last_good_time, reference.last_good_time);
}

TEST_F(SerialResumeTest, RcMeshResumeIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  ExpectResumeBitIdentical(gen, 7, "rcmesh_k7");
}

TEST_F(SerialResumeTest, RingOscillatorResumeIsBitIdentical) {
  const auto gen = circuits::MakeRingOscillator(5);
  ExpectResumeBitIdentical(gen, 11, "ringosc_k11");
}

TEST_F(SerialResumeTest, ResumeAtEveryEarlyStepIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(6, 6);
  for (std::uint64_t k = 1; k <= 6; ++k) {
    ExpectResumeBitIdentical(gen, k, "rcmesh_sweep_k" + std::to_string(k));
  }
}

TEST_F(SerialResumeTest, PartitionedResumeIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("serial_resume_partition");
  RemoveSlots(base);

  engine::SimOptions options;
  options.partition_pieces = 4;
  const auto reference = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, options);
  ASSERT_TRUE(reference.completed) << reference.abort_reason;

  engine::SimOptions first = options;
  first.resilience.checkpoint_path = base;
  first.resilience.max_steps = 9;
  const auto partial = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, first);
  ASSERT_FALSE(partial.completed);

  const TransientCheckpoint ck = engine::LoadCheckpoint(base);
  engine::SimOptions second = options;
  second.resilience.resume = &ck;
  const auto resumed = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, second);
  ASSERT_TRUE(resumed.completed) << resumed.abort_reason;

  ASSERT_EQ(resumed.trace.num_samples(), reference.trace.num_samples());
  for (std::size_t s = 0; s < reference.trace.num_samples(); ++s) {
    ASSERT_EQ(resumed.trace.times()[s], reference.trace.times()[s]);
    for (std::size_t p = 0; p < reference.trace.probes().size(); ++p) {
      ASSERT_EQ(resumed.trace.value(s, p), reference.trace.value(s, p));
    }
  }
  EXPECT_EQ(resumed.stats.steps_accepted, reference.stats.steps_accepted);
  EXPECT_EQ(resumed.stats.newton_iterations, reference.stats.newton_iterations);
  EXPECT_EQ(
      resumed.stats.partition_full_factors + resumed.stats.partition_refactors,
      reference.stats.partition_full_factors + reference.stats.partition_refactors);
  RemoveSlots(base);
}

TEST_F(SerialResumeTest, ResumeRejectsMismatchedRun) {
  const auto gen = circuits::MakeRcMesh(6, 6);
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("serial_resume_mismatch");
  RemoveSlots(base);

  engine::SimOptions first;
  first.resilience.checkpoint_path = base;
  first.resilience.max_steps = 3;
  (void)engine::RunTransientSerial(*gen.circuit, mna, gen.spec, first);

  const TransientCheckpoint ck = engine::LoadCheckpoint(base);
  // Same checkpoint, DIFFERENT partitioning: the fingerprint must refuse.
  engine::SimOptions second;
  second.partition_pieces = 4;
  second.resilience.resume = &ck;
  EXPECT_THROW(engine::RunTransientSerial(*gen.circuit, mna, gen.spec, second),
               CheckpointError);
  RemoveSlots(base);
}

TEST_F(SerialResumeTest, CkptWriteFaultCountsFailureButRunSurvives) {
  const auto gen = circuits::MakeRcMesh(6, 6);
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("serial_writefault");
  RemoveSlots(base);

  Schedule schedule;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault fault("ckpt.write", schedule);
  engine::SimOptions options;
  options.resilience.checkpoint_path = base;
  options.resilience.checkpoint_every_steps = 2;
  const auto result = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, options);
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GE(result.resilience.ckpt_write_failures, 1u);
  EXPECT_EQ(result.resilience.ckpt_writes, 0u);
  RemoveSlots(base);
}

// ---------------------------------------------------------------------------
// Fine-grained engine resume
// ---------------------------------------------------------------------------

class FineGrainedResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

// Same property as the serial suite, through parallel::RunTransientFineGrained:
// threaded device evaluation must not perturb the resumed trajectory.
void ExpectFineGrainedResumeBitIdentical(const circuits::GeneratedCircuit& gen,
                                         std::uint64_t kill_at_step,
                                         std::int64_t partition_pieces,
                                         const std::string& tag) {
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("finegrained_resume_" + tag);
  RemoveSlots(base);

  parallel::FineGrainedOptions options;
  options.threads = 2;
  options.sim.partition_pieces = static_cast<int>(partition_pieces);
  const auto reference =
      parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
  ASSERT_TRUE(reference.completed) << reference.abort_reason;

  parallel::FineGrainedOptions first = options;
  first.sim.resilience.checkpoint_path = base;
  first.sim.resilience.max_steps = kill_at_step;
  const auto partial =
      parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, first);
  ASSERT_FALSE(partial.completed);
  ASSERT_NE(partial.abort_reason.find(engine::kBudgetExhausted), std::string::npos)
      << partial.abort_reason;

  const TransientCheckpoint ck = engine::LoadCheckpoint(base);
  EXPECT_EQ(ck.engine, "fine-grained");
  parallel::FineGrainedOptions second = options;
  second.sim.resilience.resume = &ck;
  const auto resumed =
      parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, second);
  ASSERT_TRUE(resumed.completed) << resumed.abort_reason;
  EXPECT_EQ(resumed.resilience.ckpt_resumed, 1u);

  ASSERT_EQ(resumed.trace.num_samples(), reference.trace.num_samples());
  const std::size_t probes = reference.trace.probes().size();
  for (std::size_t s = 0; s < reference.trace.num_samples(); ++s) {
    ASSERT_EQ(resumed.trace.times()[s], reference.trace.times()[s])
        << tag << " sample " << s;
    for (std::size_t p = 0; p < probes; ++p) {
      ASSERT_EQ(resumed.trace.value(s, p), reference.trace.value(s, p))
          << tag << " sample " << s << " probe " << p;
    }
  }

  EXPECT_EQ(resumed.stats.steps_accepted, reference.stats.steps_accepted);
  EXPECT_EQ(resumed.stats.steps_rejected_lte, reference.stats.steps_rejected_lte);
  EXPECT_EQ(resumed.stats.steps_rejected_newton,
            reference.stats.steps_rejected_newton);
  EXPECT_EQ(resumed.stats.newton_iterations, reference.stats.newton_iterations);
  EXPECT_EQ(resumed.stats.lu_full_factors + resumed.stats.lu_refactors,
            reference.stats.lu_full_factors + reference.stats.lu_refactors);
  EXPECT_EQ(resumed.last_good_time, reference.last_good_time);
  RemoveSlots(base);
}

TEST_F(FineGrainedResumeTest, RcMeshResumeIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  ExpectFineGrainedResumeBitIdentical(gen, 7, 0, "rcmesh_k7");
}

TEST_F(FineGrainedResumeTest, RingOscillatorResumeIsBitIdentical) {
  const auto gen = circuits::MakeRingOscillator(5);
  ExpectFineGrainedResumeBitIdentical(gen, 11, 0, "ringosc_k11");
}

TEST_F(FineGrainedResumeTest, PartitionedResumeIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  ExpectFineGrainedResumeBitIdentical(gen, 9, 4, "rcmesh_p4_k9");
}

TEST_F(FineGrainedResumeTest, ResumeRejectsSerialCheckpoint) {
  // An engine mismatch (serial checkpoint into the fine-grained runner) must
  // refuse at ValidateResume, not silently continue.
  const auto gen = circuits::MakeRcMesh(6, 6);
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("finegrained_engine_mismatch");
  RemoveSlots(base);

  engine::SimOptions serial;
  serial.resilience.checkpoint_path = base;
  serial.resilience.max_steps = 3;
  (void)engine::RunTransientSerial(*gen.circuit, mna, gen.spec, serial);

  const TransientCheckpoint ck = engine::LoadCheckpoint(base);
  parallel::FineGrainedOptions options;
  options.threads = 2;
  options.sim.resilience.resume = &ck;
  EXPECT_THROW(parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, options),
               CheckpointError);
  RemoveSlots(base);
}

// ---------------------------------------------------------------------------
// Pipeline engine resume (round-barrier checkpoints)
// ---------------------------------------------------------------------------

class PipelineResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

// The pipeline checkpoints at round barriers; the budget governor stops at
// the first barrier where >= kill_at_step steps are accepted — exactly a
// state the uninterrupted reference run also passes through, so the resumed
// run's complete trace must match the reference bitwise.
void ExpectPipelineResumeBitIdentical(const circuits::GeneratedCircuit& gen,
                                      pipeline::Scheme scheme, int threads,
                                      std::uint64_t kill_at_step,
                                      int partition_pieces, const std::string& tag) {
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("pipeline_resume_" + tag);
  RemoveSlots(base);

  pipeline::WavePipeOptions options;
  options.scheme = scheme;
  options.threads = threads;
  options.sim.partition_pieces = partition_pieces;
  const auto reference = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ASSERT_TRUE(reference.completed) << reference.abort_reason;

  pipeline::WavePipeOptions first = options;
  first.sim.resilience.checkpoint_path = base;
  first.sim.resilience.max_steps = kill_at_step;
  const auto partial = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, first);
  ASSERT_FALSE(partial.completed);
  ASSERT_NE(partial.abort_reason.find(engine::kBudgetExhausted), std::string::npos)
      << partial.abort_reason;

  const TransientCheckpoint ck = engine::LoadCheckpoint(base);
  EXPECT_EQ(ck.engine, "pipeline");
  EXPECT_EQ(ck.scheme, pipeline::SchemeName(scheme));
  pipeline::WavePipeOptions second = options;
  second.sim.resilience.resume = &ck;
  const auto resumed = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, second);
  ASSERT_TRUE(resumed.completed) << resumed.abort_reason;
  EXPECT_EQ(resumed.resilience.ckpt_resumed, 1u);

  ASSERT_EQ(resumed.trace.num_samples(), reference.trace.num_samples());
  const std::size_t probes = reference.trace.probes().size();
  for (std::size_t s = 0; s < reference.trace.num_samples(); ++s) {
    ASSERT_EQ(resumed.trace.times()[s], reference.trace.times()[s])
        << tag << " sample " << s;
    for (std::size_t p = 0; p < probes; ++p) {
      ASSERT_EQ(resumed.trace.value(s, p), reference.trace.value(s, p))
          << tag << " sample " << s << " probe " << p;
    }
  }

  EXPECT_EQ(resumed.stats.steps_accepted, reference.stats.steps_accepted);
  EXPECT_EQ(resumed.stats.steps_rejected_lte, reference.stats.steps_rejected_lte);
  EXPECT_EQ(resumed.stats.steps_rejected_newton,
            reference.stats.steps_rejected_newton);
  EXPECT_EQ(resumed.stats.newton_iterations, reference.stats.newton_iterations);
  EXPECT_EQ(resumed.stats.lu_full_factors + resumed.stats.lu_refactors,
            reference.stats.lu_full_factors + reference.stats.lu_refactors);
  // The scheduler replays the same rounds and ledger after resume.
  EXPECT_EQ(resumed.sched.rounds, reference.sched.rounds);
  EXPECT_EQ(resumed.ledger.size(), reference.ledger.size());
  EXPECT_EQ(resumed.last_good_time, reference.last_good_time);
  RemoveSlots(base);
}

TEST_F(PipelineResumeTest, SerialSchemeResumeIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  ExpectPipelineResumeBitIdentical(gen, pipeline::Scheme::kSerial, 1, 7, 0,
                                   "serial_k7");
}

TEST_F(PipelineResumeTest, BackwardResumeIsBitIdentical) {
  const auto gen = circuits::MakeRingOscillator(5);
  ExpectPipelineResumeBitIdentical(gen, pipeline::Scheme::kBackward, 3, 9, 0,
                                   "bwp_k9");
}

TEST_F(PipelineResumeTest, ForwardResumeIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  ExpectPipelineResumeBitIdentical(gen, pipeline::Scheme::kForward, 2, 5, 0,
                                   "fwp_k5");
}

TEST_F(PipelineResumeTest, CombinedResumeIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  ExpectPipelineResumeBitIdentical(gen, pipeline::Scheme::kCombined, 3, 7, 0,
                                   "combined_k7");
}

TEST_F(PipelineResumeTest, CombinedPartitionedResumeIsBitIdentical) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  ExpectPipelineResumeBitIdentical(gen, pipeline::Scheme::kCombined, 3, 9, 4,
                                   "combined_p4_k9");
}

TEST_F(PipelineResumeTest, ResumeRejectsSchemeMismatch) {
  const auto gen = circuits::MakeRcMesh(6, 6);
  engine::MnaStructure mna(*gen.circuit);
  const std::string base = TempBase("pipeline_scheme_mismatch");
  RemoveSlots(base);

  pipeline::WavePipeOptions first;
  first.scheme = pipeline::Scheme::kCombined;
  first.threads = 3;
  first.sim.resilience.checkpoint_path = base;
  first.sim.resilience.max_steps = 3;
  (void)pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, first);

  const TransientCheckpoint ck = engine::LoadCheckpoint(base);
  pipeline::WavePipeOptions second;
  second.scheme = pipeline::Scheme::kForward;  // fingerprint mismatch
  second.threads = 2;
  second.sim.resilience.resume = &ck;
  EXPECT_THROW(pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, second),
               CheckpointError);
  RemoveSlots(base);
}

}  // namespace
}  // namespace wavepipe
