#include "engine/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wavepipe::engine {
namespace {

SolutionPointPtr MakePoint(double t, double q, double qdot, bool auxiliary = false) {
  auto p = std::make_shared<SolutionPoint>();
  p->time = t;
  p->x = {0.0};
  p->q = {q};
  p->qdot = {qdot};
  p->auxiliary = auxiliary;
  return p;
}

TEST(Integrator, BackwardEulerCoefficients) {
  HistoryWindow w{MakePoint(0.0, 2.0, 0.0)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kBackwardEuler, 0.5, w, hist);
  EXPECT_EQ(plan.order, 1);
  EXPECT_DOUBLE_EQ(plan.a0, 2.0);         // 1/h
  EXPECT_DOUBLE_EQ(hist[0], -4.0);        // -q_n/h
  // Exactness on constant q: dq/dt = a0*q + hist = 0.
  EXPECT_DOUBLE_EQ(plan.a0 * 2.0 + hist[0], 0.0);
}

TEST(Integrator, TrapezoidalCoefficients) {
  HistoryWindow w{MakePoint(0.0, 1.0, 3.0)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kTrapezoidal, 0.5, w, hist);
  EXPECT_EQ(plan.order, 2);
  EXPECT_DOUBLE_EQ(plan.a0, 4.0);  // 2/h
  // dq/dt(new) = 2(q_new - q_n)/h - qdot_n; check against q_new = 2:
  EXPECT_DOUBLE_EQ(plan.a0 * 2.0 + hist[0], 2 * (2.0 - 1.0) / 0.5 - 3.0);
}

TEST(Integrator, TrapezoidalExactForLinearRamp) {
  // q(t) = 5t: qdot = 5 everywhere.
  HistoryWindow w{MakePoint(1.0, 5.0, 5.0)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kTrapezoidal, 1.5, w, hist);
  const double q_new = 5.0 * 1.5;
  EXPECT_NEAR(plan.a0 * q_new + hist[0], 5.0, 1e-12);
}

TEST(Integrator, Gear2VariableStepExactForQuadratic) {
  // q(t) = t^2 -> dq/dt = 2t.  Uneven steps h_prev = 1, h = 0.5.
  HistoryWindow w{MakePoint(0.0, 0.0, 0.0), MakePoint(1.0, 1.0, 2.0)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kGear2, 1.5, w, hist);
  EXPECT_EQ(plan.effective_method, Method::kGear2);
  const double q_new = 1.5 * 1.5;
  EXPECT_NEAR(plan.a0 * q_new + hist[0], 3.0, 1e-12);
}

TEST(Integrator, Gear2ExactForConstantAndLinear) {
  HistoryWindow w{MakePoint(0.0, 7.0, 0.0), MakePoint(0.3, 7.0, 0.0)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kGear2, 0.7, w, hist);
  EXPECT_NEAR(plan.a0 * 7.0 + hist[0], 0.0, 1e-10);  // constant

  HistoryWindow w2{MakePoint(0.0, 0.0, 2.0), MakePoint(0.4, 0.8, 2.0)};
  const auto plan2 = PlanIntegration(Method::kGear2, 1.0, w2, hist);
  EXPECT_NEAR(plan2.a0 * 2.0 + hist[0], 2.0, 1e-10);  // q = 2t at t=1
}

TEST(Integrator, Gear2DegradesToBeWithOnePoint) {
  HistoryWindow w{MakePoint(0.0, 1.0, 0.0)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kGear2, 0.5, w, hist);
  EXPECT_EQ(plan.effective_method, Method::kBackwardEuler);
  EXPECT_EQ(plan.order, 1);
}

TEST(Integrator, Gear2SkipsAuxiliaryPoints) {
  // Points: leading at t=0 (q=0), auxiliary at t=0.9, leading at t=1 (q=1).
  // Gear2 at t=1.5 must pair t=1 with t=0 (not the auxiliary t=0.9) for its
  // two-step history: verify by exactness on q = t^2 where the auxiliary
  // point carries a WRONG value that would poison the result if used.
  HistoryWindow w{MakePoint(0.0, 0.0, 0.0), MakePoint(0.9, 123.0, 0.0, /*aux=*/true),
                  MakePoint(1.0, 1.0, 2.0)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kGear2, 1.5, w, hist);
  EXPECT_EQ(plan.effective_method, Method::kGear2);
  EXPECT_NEAR(plan.a0 * 2.25 + hist[0], 3.0, 1e-10);
}

TEST(Integrator, Gear2AllAuxiliaryHistoryDegrades) {
  HistoryWindow w{MakePoint(0.0, 0.0, 0.0, /*aux=*/true), MakePoint(1.0, 1.0, 2.0)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kGear2, 1.5, w, hist);
  EXPECT_EQ(plan.effective_method, Method::kBackwardEuler);
}

TEST(Integrator, ComputeQdotInverts) {
  HistoryWindow w{MakePoint(0.0, 1.0, 0.5)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(Method::kTrapezoidal, 0.25, w, hist);
  std::vector<double> q_new{2.0}, qdot(1);
  ComputeQdot(plan, q_new, hist, qdot);
  EXPECT_DOUBLE_EQ(qdot[0], plan.a0 * 2.0 + hist[0]);
}

// Property: all three methods are exact on q(t) = a + b*t (order >= 1).
class LinearExactnessTest : public ::testing::TestWithParam<Method> {};

TEST_P(LinearExactnessTest, ExactOnLinear) {
  const double a = 2.0, b = -3.0;
  auto q = [&](double t) { return a + b * t; };
  HistoryWindow w{MakePoint(0.1, q(0.1), b), MakePoint(0.45, q(0.45), b)};
  std::vector<double> hist(1);
  const auto plan = PlanIntegration(GetParam(), 0.8, w, hist);
  EXPECT_NEAR(plan.a0 * q(0.8) + hist[0], b, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Methods, LinearExactnessTest,
                         ::testing::Values(Method::kBackwardEuler, Method::kTrapezoidal,
                                           Method::kGear2));

}  // namespace
}  // namespace wavepipe::engine
