#include "engine/trace.hpp"

#include <gtest/gtest.h>

namespace wavepipe::engine {
namespace {

ProbeSet TwoProbes() {
  ProbeSet p;
  p.unknowns = {0, 2};
  p.names = {"a", "c"};
  return p;
}

TEST(Trace, RecordsSelectedUnknowns) {
  Trace t(TwoProbes());
  t.Record(0.0, std::vector<double>{1.0, 99.0, 3.0});
  t.Record(1.0, std::vector<double>{2.0, 99.0, 6.0});
  EXPECT_EQ(t.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(t.value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.value(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(t.value(1, 1), 6.0);
}

TEST(Trace, RejectsNonMonotonicTime) {
  Trace t(TwoProbes());
  t.Record(1.0, std::vector<double>{0, 0, 0});
  EXPECT_THROW(t.Record(1.0, std::vector<double>{0, 0, 0}), std::logic_error);
  EXPECT_THROW(t.Record(0.5, std::vector<double>{0, 0, 0}), std::logic_error);
}

TEST(Trace, InterpolationLinearAndClamped) {
  Trace t(TwoProbes());
  t.Record(0.0, std::vector<double>{0.0, 0, 10.0});
  t.Record(2.0, std::vector<double>{4.0, 0, 20.0});
  EXPECT_DOUBLE_EQ(t.Interpolate(1.0, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.Interpolate(1.0, 1), 15.0);
  EXPECT_DOUBLE_EQ(t.Interpolate(-5.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.Interpolate(99.0, 0), 4.0);
}

TEST(Trace, SeriesExtraction) {
  Trace t(TwoProbes());
  t.Record(0.0, std::vector<double>{1.0, 0, 2.0});
  t.Record(1.0, std::vector<double>{3.0, 0, 4.0});
  const auto s = t.Series(1);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[1].second, 4.0);
}

TEST(Trace, MaxDeviationOnDifferentGrids) {
  // Same ramp sampled at different times must deviate ~0.
  Trace a(TwoProbes()), b(TwoProbes());
  a.Record(0.0, std::vector<double>{0.0, 0, 0.0});
  a.Record(1.0, std::vector<double>{1.0, 0, 1.0});
  b.Record(0.0, std::vector<double>{0.0, 0, 0.0});
  b.Record(0.5, std::vector<double>{0.5, 0, 0.5});
  b.Record(1.0, std::vector<double>{1.0, 0, 1.0});
  EXPECT_NEAR(Trace::MaxDeviationAll(a, b), 0.0, 1e-12);
}

TEST(Trace, MaxDeviationDetectsDifference) {
  Trace a(TwoProbes()), b(TwoProbes());
  a.Record(0.0, std::vector<double>{0.0, 0, 0.0});
  a.Record(1.0, std::vector<double>{1.0, 0, 0.0});
  b.Record(0.0, std::vector<double>{0.0, 0, 0.0});
  b.Record(1.0, std::vector<double>{1.5, 0, 0.0});
  EXPECT_NEAR(Trace::MaxDeviation(a, b, 0), 0.5, 1e-12);
  EXPECT_NEAR(Trace::MaxDeviation(a, b, 1), 0.0, 1e-12);
}

TEST(ProbeSet, Factories) {
  const auto all = ProbeSet::All(3);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(all.names[2], "u2");
  const auto first = ProbeSet::FirstNodes(10, 4);
  EXPECT_EQ(first.size(), 4u);
  const auto fewer = ProbeSet::FirstNodes(2, 4);
  EXPECT_EQ(fewer.size(), 2u);
}

}  // namespace
}  // namespace wavepipe::engine
