#include "parallel/fine_grained.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"

namespace wavepipe::parallel {
namespace {

TEST(FineGrained, MatchesSerialWaveform) {
  const auto gen = circuits::MakeInverterChain(5);
  engine::MnaStructure mna(*gen.circuit);
  const auto serial =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  FineGrainedOptions options;
  options.threads = 3;
  const auto fg = RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
  // Same math, different summation order: tiny rounding-level deviations.
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, fg.trace), 2e-3);
  EXPECT_EQ(fg.stats.steps_accepted, serial.stats.steps_accepted);
}

TEST(FineGrained, SingleThreadDegenerates) {
  const auto gen = circuits::MakeRcLadder(20);
  engine::MnaStructure mna(*gen.circuit);
  FineGrainedOptions options;
  options.threads = 1;
  const auto fg = RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
  const auto serial =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, fg.trace), 1e-9);
}

TEST(FineGrained, PhaseBreakdownPopulated) {
  const auto gen = circuits::MakeInverterChain(6);
  engine::MnaStructure mna(*gen.circuit);
  FineGrainedOptions options;
  options.threads = 2;
  const auto fg = RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
  EXPECT_GT(fg.phases.model_eval, 0.0);
  EXPECT_GT(fg.phases.lu, 0.0);
  EXPECT_GE(fg.phases.reduction, 0.0);
  EXPECT_GT(fg.phases.Total(), 0.0);
}

TEST(FineGrained, ForcedOrderPreservingColoredBitIdenticalWaveform) {
  // The acceptance invariant: colored assembly under the order-preserving
  // strategy replays every per-slot accumulation in exact device order, so
  // the whole transient — every Newton iterate, every step decision — is
  // BIT-identical to the serial engine.
  std::vector<circuits::GeneratedCircuit> gens;
  gens.push_back(circuits::MakeRcLadder(20));
  gens.push_back(circuits::MakeInverterChain(4));
  for (const auto& gen : gens) {
    engine::MnaStructure mna(*gen.circuit);
    const auto serial =
        engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
    FineGrainedOptions options;
    options.threads = 3;
    options.assembly = AssemblyMode::kColored;
    options.coloring.strategy = ColorStrategy::kOrderPreserving;
    const auto fg = RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
    EXPECT_STREQ(fg.assembly.strategy, "colored") << gen.name;
    EXPECT_EQ(engine::Trace::MaxDeviationAll(serial.trace, fg.trace), 0.0) << gen.name;
    EXPECT_EQ(fg.stats.steps_accepted, serial.stats.steps_accepted) << gen.name;
  }
}

TEST(FineGrained, ForcedColoredMatchesSerialWaveform) {
  // Default (largest-degree-first) coloring: rounding-level deviations only.
  const auto gen = circuits::MakeRcMesh(6, 6);
  engine::MnaStructure mna(*gen.circuit);
  const auto serial =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  FineGrainedOptions options;
  options.threads = 4;
  options.assembly = AssemblyMode::kColored;
  const auto fg = RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
  EXPECT_STREQ(fg.assembly.strategy, "colored");
  EXPECT_GT(fg.assembly.colors, 0);
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, fg.trace), 2e-3);
}

TEST(FineGrained, ForcedReductionMatchesSerialWaveform) {
  const auto gen = circuits::MakeRcMesh(6, 6);
  engine::MnaStructure mna(*gen.circuit);
  const auto serial =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  FineGrainedOptions options;
  options.threads = 4;
  options.assembly = AssemblyMode::kReduction;
  const auto fg = RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
  EXPECT_STREQ(fg.assembly.strategy, "reduction");
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, fg.trace), 2e-3);
}

TEST(FineGrained, AutoModePicksByCostModel) {
  // Large mesh: colorable at a profit.  Inverter chain: supply-rail clique,
  // reduction keeps the job.
  {
    const auto gen = circuits::MakeRcMesh(16, 16);
    engine::MnaStructure mna(*gen.circuit);
    FineGrainedOptions options;
    options.threads = 4;
    const auto fg = RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
    EXPECT_STREQ(fg.assembly.strategy, "colored");
  }
  {
    const auto gen = circuits::MakeInverterChain(5);
    engine::MnaStructure mna(*gen.circuit);
    FineGrainedOptions options;
    options.threads = 4;
    const auto fg = RunTransientFineGrained(*gen.circuit, mna, gen.spec, options);
    EXPECT_STREQ(fg.assembly.strategy, "reduction");
  }
}

TEST(FineGrained, AmdahlModelSaturates) {
  PhaseBreakdown phases;
  phases.model_eval = 8.0;
  phases.reduction = 0.1;
  phases.lu = 2.0;
  phases.control = 0.5;
  const double s2 = ModelFineGrainedSpeedup(phases, 2);
  const double s4 = ModelFineGrainedSpeedup(phases, 4);
  const double s16 = ModelFineGrainedSpeedup(phases, 16);
  EXPECT_GT(s2, 1.0);
  EXPECT_GT(s4, s2);
  // Serial LU bounds the speedup: total/(lu+control) = 10.5/2.5 = 4.2 minus
  // reduction overhead.
  EXPECT_LT(s16, 4.2);
}

TEST(FineGrained, ModelIdentityAtOneThread) {
  PhaseBreakdown phases;
  phases.model_eval = 3.0;
  phases.reduction = 0.2;
  phases.lu = 1.0;
  phases.control = 0.3;
  // One thread: reduction of one copy vs none; speedup ~ 1 (slightly below).
  EXPECT_NEAR(ModelFineGrainedSpeedup(phases, 1), 1.0, 0.1);
}

TEST(FineGrained, ReductionOverheadEventuallyHurts) {
  PhaseBreakdown phases;
  phases.model_eval = 1.0;
  phases.reduction = 0.5;  // heavy reduction (big matrix, light models)
  phases.lu = 1.0;
  phases.control = 0.1;
  const double s2 = ModelFineGrainedSpeedup(phases, 2);
  const double s32 = ModelFineGrainedSpeedup(phases, 32);
  EXPECT_LT(s32, s2);  // overhead dominates at high thread counts
}

}  // namespace
}  // namespace wavepipe::parallel
