#include "parallel/coloring.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "circuits/generators.hpp"
#include "engine/newton.hpp"
#include "engine/transient.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::parallel {
namespace {

std::vector<circuits::GeneratedCircuit> AllGenerators() {
  std::vector<circuits::GeneratedCircuit> all;
  all.push_back(circuits::MakeRcLadder(16));
  all.push_back(circuits::MakeRcMesh(4, 5));
  all.push_back(circuits::MakeRingOscillator(5));
  all.push_back(circuits::MakeInverterChain(5));
  all.push_back(circuits::MakeDiodeRectifier(4));
  all.push_back(circuits::MakeMosAmplifierChain(3));
  all.push_back(circuits::MakeClockTree(3));
  return all;
}

engine::NewtonInputs TransientInputs() {
  engine::NewtonInputs inputs;
  inputs.time = 1e-9;
  inputs.a0 = 2e9;
  inputs.transient = true;
  inputs.gmin = 1e-12;
  return inputs;
}

/// A deterministic, slightly-off-equilibrium iterate so nonlinear devices
/// stamp nontrivial values.
void SeedIterate(engine::SolveContext& ctx) {
  for (std::size_t i = 0; i < ctx.x.size(); ++i) {
    ctx.x[i] = 0.7 * std::sin(0.37 * static_cast<double>(i) + 0.2);
  }
}

// ---------------------------------------------------------------- schedules

TEST(Coloring, SameColorFootprintsDisjointOnAllGenerators) {
  for (const auto& gen : AllGenerators()) {
    const engine::MnaStructure mna(*gen.circuit);
    for (const ColorStrategy strategy :
         {ColorStrategy::kLargestDegreeFirst, ColorStrategy::kOrderPreserving}) {
      const ColorSchedule schedule =
          BuildColorSchedule(*gen.circuit, mna, ColoringOptions{strategy});
      ASSERT_EQ(schedule.num_devices(), gen.circuit->devices().size()) << gen.name;
      ASSERT_GT(schedule.num_colors(), 0) << gen.name;

      // Every device appears exactly once across the color groups.
      std::size_t scheduled = 0;
      for (int c = 0; c < schedule.num_colors(); ++c) {
        for (int id : schedule.ColorDevices(c)) {
          EXPECT_EQ(schedule.color_of(static_cast<std::size_t>(id)), c) << gen.name;
          ++scheduled;
        }
      }
      EXPECT_EQ(scheduled, schedule.num_devices()) << gen.name;

      // THE invariant: no two devices of one color share a Jacobian slot or
      // RHS row.
      for (int c = 0; c < schedule.num_colors(); ++c) {
        std::set<int> claimed;
        for (int id : schedule.ColorDevices(c)) {
          const StampFootprintSet fp =
              FootprintOf(*gen.circuit->devices()[static_cast<std::size_t>(id)], mna);
          for (int res : fp.resources) {
            EXPECT_TRUE(claimed.insert(res).second)
                << gen.name << ": color " << c << " resource " << res
                << " claimed twice";
          }
        }
      }
    }
  }
}

TEST(Coloring, OrderPreservingLayersRespectDeviceOrder) {
  const auto gen = circuits::MakeRcLadder(12);
  const engine::MnaStructure mna(*gen.circuit);
  const ColorSchedule schedule = BuildColorSchedule(
      *gen.circuit, mna, ColoringOptions{ColorStrategy::kOrderPreserving});
  // Conflicting pair (d1 < d2) => color(d1) < color(d2): per-slot fold order
  // is exactly device order, the property behind bit-identity.
  const auto& devices = gen.circuit->devices();
  for (std::size_t d2 = 0; d2 < devices.size(); ++d2) {
    const StampFootprintSet fp2 = FootprintOf(*devices[d2], mna);
    const std::set<int> res2(fp2.resources.begin(), fp2.resources.end());
    for (std::size_t d1 = 0; d1 < d2; ++d1) {
      const StampFootprintSet fp1 = FootprintOf(*devices[d1], mna);
      const bool conflict = std::any_of(fp1.resources.begin(), fp1.resources.end(),
                                        [&res2](int r) { return res2.count(r) > 0; });
      if (conflict) EXPECT_LT(schedule.color_of(d1), schedule.color_of(d2));
    }
  }
}

TEST(Coloring, LargestDegreeFirstUsesFewColorsOnMesh) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  const engine::MnaStructure mna(*gen.circuit);
  const ColorSchedule ldf = BuildColorSchedule(
      *gen.circuit, mna, ColoringOptions{ColorStrategy::kLargestDegreeFirst});
  // Greedy bound: at most max_degree + 1 colors; on a mesh that's a small
  // constant, far below the device count.
  EXPECT_LE(ldf.num_colors(), ldf.max_degree() + 1);
  EXPECT_LT(static_cast<std::size_t>(ldf.num_colors()), ldf.num_devices() / 4);
  EXPECT_GT(ldf.widest_color(), std::size_t{8});
}

// -------------------------------------------------------------- bit-identity

/// Runs one EvalDevices pass serially and once through the given assembler
/// on an identical context; returns max |difference| over matrix + RHS, with
/// exact 0.0 meaning bit-identical.
double AssemblyDeviation(const circuits::GeneratedCircuit& gen, AssemblyMode mode,
                         ColorStrategy strategy, int threads) {
  const engine::MnaStructure mna(*gen.circuit);
  engine::SolveContext serial_ctx(*gen.circuit, mna);
  engine::SolveContext parallel_ctx(*gen.circuit, mna);
  SeedIterate(serial_ctx);
  SeedIterate(parallel_ctx);

  const engine::NewtonInputs inputs = TransientInputs();
  engine::EvalDevices(serial_ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);

  const auto assembler =
      MakeAssembler(mode, *gen.circuit, mna, threads, ColoringOptions{strategy});
  parallel_ctx.assembler = assembler.get();
  engine::EvalDevices(parallel_ctx, inputs, /*limit_valid=*/false,
                      /*first_iteration=*/true);

  double deviation = 0.0;
  const auto a = serial_ctx.matrix.values();
  const auto b = parallel_ctx.matrix.values();
  for (std::size_t k = 0; k < a.size(); ++k) {
    deviation = std::max(deviation, std::abs(a[k] - b[k]));
  }
  for (std::size_t i = 0; i < serial_ctx.rhs.size(); ++i) {
    deviation = std::max(deviation, std::abs(serial_ctx.rhs[i] - parallel_ctx.rhs[i]));
  }
  return deviation;
}

TEST(Coloring, OrderPreservingColoredAssemblyBitIdenticalToSerial) {
  for (const auto& gen : AllGenerators()) {
    for (int threads : {2, 4}) {
      EXPECT_EQ(AssemblyDeviation(gen, AssemblyMode::kColored,
                                  ColorStrategy::kOrderPreserving, threads),
                0.0)
          << gen.name << " threads=" << threads;
    }
  }
}

TEST(Coloring, LargestDegreeFirstDeterministicAcrossThreadCounts) {
  // LDF reorders per-slot folds (color order, not device order): only
  // rounding-level deviation from serial is promised — but the bits must not
  // depend on the thread count, unlike the reduction path's chunk partition.
  const auto gen = circuits::MakeRcMesh(6, 6);
  const engine::MnaStructure mna(*gen.circuit);
  const engine::NewtonInputs inputs = TransientInputs();

  std::vector<std::vector<double>> matrices;
  for (int threads : {1, 2, 4}) {
    engine::SolveContext ctx(*gen.circuit, mna);
    SeedIterate(ctx);
    const auto assembler = MakeAssembler(AssemblyMode::kColored, *gen.circuit, mna,
                                         threads, ColoringOptions{});
    ctx.assembler = assembler.get();
    engine::EvalDevices(ctx, inputs, false, true);
    const auto values = ctx.matrix.values();
    matrices.emplace_back(values.begin(), values.end());
    matrices.back().insert(matrices.back().end(), ctx.rhs.begin(), ctx.rhs.end());
  }
  EXPECT_EQ(matrices[0], matrices[1]);
  EXPECT_EQ(matrices[0], matrices[2]);

  EXPECT_LT(AssemblyDeviation(gen, AssemblyMode::kColored,
                              ColorStrategy::kLargestDegreeFirst, 4),
            1e-9);
}

TEST(Coloring, SingleChunkReductionBitIdenticalToSerial) {
  for (const auto& gen : AllGenerators()) {
    EXPECT_EQ(AssemblyDeviation(gen, AssemblyMode::kReduction,
                                ColorStrategy::kLargestDegreeFirst, 1),
              0.0)
        << gen.name;
  }
}

// ---------------------------------------------------------------- cost model

TEST(Coloring, CostModelPrefersColoredOnLargeMesh) {
  const auto gen = circuits::MakeRcMesh(30, 30);
  const engine::MnaStructure mna(*gen.circuit);
  const ColorSchedule schedule = BuildColorSchedule(*gen.circuit, mna);
  for (int threads : {2, 4, 8}) {
    const AssemblyCostEstimate est = CompareAssemblyCosts(schedule, mna, threads);
    EXPECT_TRUE(est.prefer_colored) << threads;
    EXPECT_LT(est.colored, est.reduction) << threads;
  }
  const auto assembler = MakeAssembler(AssemblyMode::kAuto, *gen.circuit, mna, 4);
  EXPECT_STREQ(assembler->stats().strategy, "colored");
}

TEST(Coloring, CostModelFallsBackOnDegenerateSupplyClique) {
  // Every PMOS bulk ties to vdd: the (vdd,vdd) diagonal slot forms a clique
  // over all of them, so colors ~ device count and barriers swamp the win.
  const auto gen = circuits::MakeInverterChain(8);
  const engine::MnaStructure mna(*gen.circuit);
  const ColorSchedule schedule = BuildColorSchedule(*gen.circuit, mna);
  const AssemblyCostEstimate est = CompareAssemblyCosts(schedule, mna, 4);
  EXPECT_FALSE(est.prefer_colored);

  const auto assembler = MakeAssembler(AssemblyMode::kAuto, *gen.circuit, mna, 4);
  EXPECT_STREQ(assembler->stats().strategy, "reduction");
}

TEST(Coloring, AutoModeAtOneThreadIsReduction) {
  const auto gen = circuits::MakeRcMesh(30, 30);
  const engine::MnaStructure mna(*gen.circuit);
  const auto assembler = MakeAssembler(AssemblyMode::kAuto, *gen.circuit, mna, 1);
  EXPECT_STREQ(assembler->stats().strategy, "reduction");
}

TEST(Coloring, VirtualTimeModelRanksStrategies) {
  engine::AssemblyStats measured;
  measured.zero_seconds = 1.0;
  measured.stamp_seconds = 8.0;
  measured.merge_seconds = 0.5;

  measured.strategy = "serial";
  const double serial = ModelAssemblySeconds(measured, 4);
  measured.strategy = "reduction";
  const double reduction = ModelAssemblySeconds(measured, 4);
  measured.strategy = "colored";
  const double colored = ModelAssemblySeconds(measured, 4);
  EXPECT_LT(reduction, serial);  // stamping scales even with the merge tax
  EXPECT_LT(colored, reduction);  // zero scales too, merge doesn't grow
  // At one thread every strategy degenerates to its own measured total.
  measured.strategy = "colored";
  EXPECT_NEAR(ModelAssemblySeconds(measured, 1), 9.5, 1e-12);
}

// ----------------------------------------------------------------- wavepipe

TEST(Coloring, WavePipeWithColoredAssemblyMatchesPlainRun) {
  const auto gen = circuits::MakeRcMesh(20, 20);
  const engine::MnaStructure mna(*gen.circuit);

  pipeline::WavePipeOptions plain;
  plain.scheme = pipeline::Scheme::kCombined;
  plain.threads = 3;
  const auto base = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, plain);
  EXPECT_STREQ(base.assembly.strategy, "serial");  // knob off by default

  pipeline::WavePipeOptions with_assembly = plain;
  with_assembly.assembly_threads = 4;
  const auto colored = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, with_assembly);
  EXPECT_STREQ(colored.assembly.strategy, "colored");
  EXPECT_GT(colored.assembly.passes, 0u);
  EXPECT_GT(colored.assembly.colors, 0);

  // Colored assembly only reorders FP accumulation at rounding level, but
  // the combined scheme's directly-accepted speculative points carry
  // tolerance-scale noise that amplifies any rounding difference between two
  // pipelined runs — so the comparison bound is the solver-tolerance scale
  // the scheme-equivalence tests use, not machine epsilon.
  EXPECT_LT(engine::Trace::MaxDeviationAll(base.trace, colored.trace), 0.05);
  EXPECT_GT(colored.stats.steps_accepted, 0u);
}

TEST(Coloring, WavePipeSkipsAssemblerOnDegenerateCircuit) {
  const auto gen = circuits::MakeInverterChain(4);
  const engine::MnaStructure mna(*gen.circuit);
  pipeline::WavePipeOptions options;
  options.scheme = pipeline::Scheme::kForward;
  options.threads = 2;
  options.assembly_threads = 4;  // requested, but the cost model must refuse
  const auto result = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, options);
  EXPECT_STREQ(result.assembly.strategy, "serial");
  EXPECT_GT(result.stats.steps_accepted, 0u);
}

}  // namespace
}  // namespace wavepipe::parallel
