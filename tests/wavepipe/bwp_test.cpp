// Backward-pipelining behaviour: the two properties DESIGN.md calls out —
// every accepted step still passes the unchanged LTE test, and backward
// points are genuine solutions of the circuit equations.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "testutil/helpers.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {
namespace {

WavePipeResult RunScheme(const circuits::GeneratedCircuit& gen, Scheme scheme, int threads,
                         engine::SimOptions sim = {}) {
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions options;
  options.scheme = scheme;
  options.threads = threads;
  options.sim = sim;
  return RunWavePipe(*gen.circuit, mna, gen.spec, options);
}

TEST(Bwp, ProducesBackwardSolves) {
  const auto gen = circuits::MakeRcLadder(30);
  const auto res = RunScheme(gen, Scheme::kBackward, 2);
  EXPECT_GT(res.sched.backward_solves, 0u);
  EXPECT_GT(res.ledger.CountKind(SolveKind::kBackward), 0u);
  EXPECT_EQ(res.sched.speculative_solves, 0u);
}

TEST(Bwp, ReducesSequentialRoundsOnRampyCircuit) {
  // Pulse-driven ladders are growth-cap-limited after each breakpoint: the
  // raised cap must show up as fewer rounds than serial steps.
  const auto gen = circuits::MakeRcLadder(50);
  const auto serial = RunScheme(gen, Scheme::kSerial, 1);
  const auto bwp = RunScheme(gen, Scheme::kBackward, 2);
  EXPECT_LT(bwp.sched.rounds, serial.sched.rounds);
}

TEST(Bwp, WaveformMatchesSerialWithinTolerance) {
  const auto gen = circuits::MakeRcLadder(30);
  const auto serial = RunScheme(gen, Scheme::kSerial, 1);
  const auto bwp = RunScheme(gen, Scheme::kBackward, 2);
  // Driven linear circuit, ~1V swing: deviations stay at LTE-tolerance scale.
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, bwp.trace), 0.02);
}

TEST(Bwp, ThreeThreadsUseTwoBackwardPoints) {
  const auto gen = circuits::MakeRcLadder(30);
  const auto t2 = RunScheme(gen, Scheme::kBackward, 2);
  const auto t3 = RunScheme(gen, Scheme::kBackward, 3);
  // More helpers -> more backward solves per round on average.
  EXPECT_GT(static_cast<double>(t3.sched.backward_solves) / t3.sched.rounds,
            static_cast<double>(t2.sched.backward_solves) / t2.sched.rounds * 1.2);
}

TEST(Bwp, BackwardPointsAreTrueSolutions) {
  // Re-solve at a backward point's time from the same history must be a
  // fixed point: insert the point into a serial reference run and check the
  // interpolated waveform agrees with serial at those times.
  const auto gen = circuits::MakeRcLadder(20);
  const auto serial = RunScheme(gen, Scheme::kSerial, 1);
  const auto bwp = RunScheme(gen, Scheme::kBackward, 2);
  // Sample the serial trace at a fine grid; the bwp trace (whose accepted
  // points were all LTE-checked) must track it everywhere.
  for (int i = 0; i <= 100; ++i) {
    const double t = gen.spec.tstop * i / 100.0;
    EXPECT_NEAR(bwp.trace.Interpolate(t, 0), serial.trace.Interpolate(t, 0), 0.02)
        << "t=" << t;
  }
}

TEST(Bwp, LedgerRoundsOverlapOnTwoWorkers) {
  const auto gen = circuits::MakeRcLadder(40);
  const auto bwp = RunScheme(gen, Scheme::kBackward, 2);
  const auto replay1 = ReplayOnWorkers(bwp.ledger, 1);
  const auto replay2 = ReplayOnWorkers(bwp.ledger, 2);
  // Backward solves overlap the leading solve: 2 workers strictly faster.
  EXPECT_LT(replay2.makespan_seconds, replay1.makespan_seconds);
}

TEST(Bwp, GrowthCapsConfigurable) {
  const auto gen = circuits::MakeRcLadder(30);
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions narrow;
  narrow.scheme = Scheme::kBackward;
  narrow.threads = 2;
  narrow.bwp_growth_caps = {2.0};  // no benefit over serial cap
  const auto res_narrow = RunWavePipe(*gen.circuit, mna, gen.spec, narrow);

  WavePipeOptions wide = narrow;
  wide.bwp_growth_caps = {4.0};
  const auto res_wide = RunWavePipe(*gen.circuit, mna, gen.spec, wide);
  EXPECT_LE(res_wide.sched.rounds, res_narrow.sched.rounds);
}

TEST(Bwp, GearIntegrationAlsoWorks) {
  const auto gen = circuits::MakeRcLadder(20);
  engine::SimOptions sim;
  sim.method = engine::Method::kGear2;
  const auto serial = RunScheme(gen, Scheme::kSerial, 1, sim);
  const auto bwp = RunScheme(gen, Scheme::kBackward, 2, sim);
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, bwp.trace), 0.03);
}

TEST(Bwp, NonlinearCircuit) {
  const auto gen = circuits::MakeInverterChain(6);
  const auto serial = RunScheme(gen, Scheme::kSerial, 1);
  const auto bwp = RunScheme(gen, Scheme::kBackward, 2);
  // Digital swing is 2.5 V; allow small timing skew on sharp edges.
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, bwp.trace), 0.15);
  EXPECT_GT(bwp.sched.backward_solves, 0u);
}

}  // namespace
}  // namespace wavepipe::pipeline
