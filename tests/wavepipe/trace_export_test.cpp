// Trace/stats exporters: run_stats.json schema parity across all three
// engines, Chrome trace_event well-formedness (parsed back with the testutil
// JSON parser), wasted-work flagging, and replay-schedule consistency.
#include "wavepipe/trace_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "util/error.hpp"

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "parallel/fine_grained.hpp"
#include "testutil/json.hpp"
#include "util/telemetry.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {
namespace {

using testutil::JsonValue;
using testutil::ParseJson;

circuits::GeneratedCircuit SmallDeck() { return circuits::MakeRcLadder(10); }

/// A tiny hand-built ledger with one wasted speculative record.
Ledger MakeLedgerWithWaste() {
  Ledger ledger;
  SolveRecord dcop;
  dcop.kind = SolveKind::kDcop;
  dcop.seconds = 1e-3;
  dcop.newton_iterations = 4;
  const int dcop_id = ledger.Add(dcop);

  SolveRecord leading;
  leading.kind = SolveKind::kLeading;
  leading.time_point = 1e-6;
  leading.seconds = 2e-3;
  leading.newton_iterations = 3;
  leading.deps = {dcop_id};
  const int leading_id = ledger.Add(leading);

  SolveRecord wasted;
  wasted.kind = SolveKind::kSpeculative;
  wasted.time_point = 2e-6;
  wasted.seconds = 1.5e-3;
  wasted.newton_iterations = 2;
  wasted.deps = {dcop_id};
  wasted.useful = false;
  ledger.Add(wasted);

  SolveRecord tail;
  tail.kind = SolveKind::kLeading;
  tail.time_point = 2e-6;
  tail.seconds = 1e-3;
  tail.newton_iterations = 2;
  tail.deps = {leading_id};
  ledger.Add(tail);
  return ledger;
}

TEST(RunStatsJsonTest, SchemaIdenticalAcrossEngines) {
  const auto gen = SmallDeck();
  const engine::MnaStructure mna(*gen.circuit);

  // Serial engine.
  const auto serial = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  RunCounterInputs serial_inputs;
  serial_inputs.stats = serial.stats;

  // Fine-grained engine.
  parallel::FineGrainedOptions fg_options;
  fg_options.threads = 2;
  const auto fine = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec,
                                                      fg_options);
  RunCounterInputs fine_inputs;
  fine_inputs.stats = fine.stats;
  fine_inputs.assembly = fine.assembly;
  fine_inputs.phases = fine.phases;

  // WavePipe engine.
  WavePipeOptions wp_options;
  wp_options.scheme = Scheme::kCombined;
  wp_options.threads = 3;
  const auto wave = RunWavePipe(*gen.circuit, mna, gen.spec, wp_options);
  RunCounterInputs wave_inputs;
  wave_inputs.stats = wave.stats;
  wave_inputs.assembly = wave.assembly;
  wave_inputs.sched = wave.sched;
  wave_inputs.ledger = &wave.ledger;
  wave_inputs.replay = ReplayOnWorkers(wave.ledger, 3);

  const auto serial_names = BuildRunCounters(serial_inputs).Names();
  const auto fine_names = BuildRunCounters(fine_inputs).Names();
  const auto wave_names = BuildRunCounters(wave_inputs).Names();
  EXPECT_EQ(serial_names, fine_names);
  EXPECT_EQ(serial_names, wave_names);
  EXPECT_GT(serial_names.size(), 40u);

  // The serialized document parses back with the same keys, in order.
  RunInfo info;
  info.engine = "serial";
  info.deck = "rcladder10";
  const JsonValue doc = ParseJson(RunStatsJson(info, BuildRunCounters(serial_inputs)));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").string, kRunStatsSchema);
  EXPECT_EQ(doc.at("engine").string, "serial");
  EXPECT_EQ(doc.at("threads").number, 1.0);
  ASSERT_TRUE(doc.at("counters").is_object());
  EXPECT_EQ(doc.at("counters").object.size(), serial_names.size());
  for (const auto& name : serial_names) {
    EXPECT_TRUE(doc.at("counters").has(name)) << name;
  }
}

double CounterValue(const util::telemetry::CounterRegistry& registry,
                    const std::string& name) {
  for (const auto& counter : registry.counters()) {
    if (counter.name == name) return counter.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return -1.0;
}

TEST(RunStatsJsonTest, PerSchemeSubKeysAttributeWorkToTheConfiguredScheme) {
  const auto gen = SmallDeck();
  const engine::MnaStructure mna(*gen.circuit);

  auto run = [&](Scheme scheme, int threads) {
    WavePipeOptions options;
    options.scheme = scheme;
    options.threads = threads;
    const auto result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
    RunCounterInputs inputs;
    inputs.stats = result.stats;
    inputs.sched = result.sched;
    inputs.spec = result.spec;
    return BuildRunCounters(inputs);
  };

  // A forward run books its speculation under sched.fwp.*; the bwp/combined
  // sub-keys stay at their defaults (the schema is identical either way).
  const auto fwp = run(Scheme::kForward, 4);
  EXPECT_GT(CounterValue(fwp, "sched.fwp.speculative_solves"), 0.0);
  EXPECT_EQ(CounterValue(fwp, "sched.combined.speculative_solves"), 0.0);
  EXPECT_EQ(CounterValue(fwp, "sched.bwp.backward_solves"), 0.0);
  EXPECT_EQ(CounterValue(fwp, "sched.fwp.speculative_solves"),
            CounterValue(fwp, "sched.speculative_solves"));

  const auto bwp = run(Scheme::kBackward, 2);
  EXPECT_GT(CounterValue(bwp, "sched.bwp.backward_solves"), 0.0);
  EXPECT_EQ(CounterValue(bwp, "sched.fwp.speculative_solves"), 0.0);
  EXPECT_EQ(CounterValue(bwp, "sched.bwp.backward_solves"),
            CounterValue(bwp, "sched.backward_solves"));

  const auto combined = run(Scheme::kCombined, 4);
  EXPECT_GT(CounterValue(combined, "sched.combined.backward_solves"), 0.0);
  EXPECT_GT(CounterValue(combined, "sched.combined.speculative_solves"), 0.0);
  EXPECT_EQ(CounterValue(combined, "sched.fwp.speculative_solves"), 0.0);
  EXPECT_EQ(CounterValue(combined, "sched.bwp.backward_solves"), 0.0);

  // The per-scheme acceptance exports divide cleanly (0 when idle).
  EXPECT_EQ(CounterValue(fwp, "sched.combined.speculation_acceptance"), 0.0);
  EXPECT_GE(CounterValue(fwp, "sched.fwp.speculation_acceptance"), 0.0);
  EXPECT_LE(CounterValue(fwp, "sched.fwp.speculation_acceptance"), 1.0);
}

TEST(RunStatsJsonTest, SpecPolicyGroupExportsOnEveryEngine) {
  const auto gen = SmallDeck();
  const engine::MnaStructure mna(*gen.circuit);

  // An engine with no pipeline scheduler exports the spec.* defaults.
  const auto serial = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  RunCounterInputs serial_inputs;
  serial_inputs.stats = serial.stats;
  const auto serial_counters = BuildRunCounters(serial_inputs);
  EXPECT_EQ(CounterValue(serial_counters, "spec.depth_decisions"), 0.0);
  EXPECT_EQ(CounterValue(serial_counters, "spec.event_snaps"), 0.0);
  EXPECT_EQ(CounterValue(serial_counters, "spec.poly.predictor_hits"), 0.0);
  EXPECT_EQ(CounterValue(serial_counters, "spec.highorder.predictor_misses"), 0.0);
  EXPECT_EQ(CounterValue(serial_counters, "spec.event.predictor_hits"), 0.0);

  // A pipelined run populates the depth ledger even in fixed mode (every
  // round's depth decision is counted; the policy just never steers).
  WavePipeOptions options;
  options.scheme = Scheme::kForward;
  options.threads = 4;
  const auto wave = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  RunCounterInputs wave_inputs;
  wave_inputs.stats = wave.stats;
  wave_inputs.sched = wave.sched;
  wave_inputs.spec = wave.spec;
  const auto wave_counters = BuildRunCounters(wave_inputs);
  EXPECT_GT(CounterValue(wave_counters, "spec.depth_decisions"), 0.0);
  EXPECT_EQ(CounterValue(wave_counters, "spec.depth_raises"), 0.0);
  EXPECT_EQ(CounterValue(wave_counters, "spec.depth_cuts"), 0.0);
}

TEST(RunStatsJsonTest, SchemaTagIsPinned) {
  // v1.4 = v1.3 plus the appended batch-analysis group (batch.*).  Changing
  // this string (or the key sets below) is a schema bump: update
  // check_bench.py and the docs in trace_export.hpp alongside.
  EXPECT_STREQ(kRunStatsSchema, "wavepipe.run_stats.v1.4");
}

TEST(RunStatsJsonTest, ResilienceGroupExportsOnEveryEngine) {
  const auto gen = SmallDeck();
  const engine::MnaStructure mna(*gen.circuit);

  // Default run (no checkpointing, no budget): the v1.2 keys are present
  // with zero values on every engine, so the key set never depends on
  // whether durable-run machinery engaged.
  const auto serial = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  RunCounterInputs inputs;
  inputs.stats = serial.stats;
  inputs.resilience = serial.resilience;
  const auto counters = BuildRunCounters(inputs);
  for (const char* key :
       {"ckpt.writes", "ckpt.write_failures", "ckpt.bytes_last", "ckpt.generation",
        "ckpt.resumed", "watchdog.stalls", "watchdog.escalations",
        "resilience.breaker_trips", "resilience.breaker_retrips",
        "resilience.breaker_reprobes", "resilience.trips.chord",
        "resilience.trips.bypass", "resilience.trips.partition",
        "resilience.trips.parallel_factor", "resilience.trips.parallel_assembly",
        "resilience.budget_exhausted"}) {
    EXPECT_EQ(CounterValue(counters, key), 0.0) << key;
  }

  // A checkpointing run populates ckpt.*.
  engine::SimOptions sim;
  sim.resilience.checkpoint_path = ::testing::TempDir() + "/trace_export_res.ckpt";
  sim.resilience.checkpoint_every_steps = 5;
  const auto ck_run = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, sim);
  RunCounterInputs ck_inputs;
  ck_inputs.stats = ck_run.stats;
  ck_inputs.resilience = ck_run.resilience;
  const auto ck_counters = BuildRunCounters(ck_inputs);
  EXPECT_GT(CounterValue(ck_counters, "ckpt.writes"), 0.0);
  EXPECT_GT(CounterValue(ck_counters, "ckpt.bytes_last"), 0.0);
  std::remove((sim.resilience.checkpoint_path + ".a").c_str());
  std::remove((sim.resilience.checkpoint_path + ".b").c_str());
}

TEST(RunStatsJsonTest, OlderConsumersStillParseNewerDocuments) {
  // The schema grows additively: every v1.1 key keeps its name and position,
  // the v1.2 groups (ckpt./watchdog./resilience.) land strictly AFTER the
  // last v1.1 group (ledger.*), the v1.3 group (reduce.*) lands strictly
  // AFTER the last v1.2 key, and the v1.4 group (batch.*) lands strictly
  // AFTER the last v1.3 key.  A consumer of any older version that iterates
  // its own baseline keys therefore parses a newer document unchanged.  This
  // pins all three orderings.
  RunCounterInputs inputs;
  const auto names = BuildRunCounters(inputs).Names();
  std::size_t last_v11 = 0;
  std::size_t first_v12 = names.size();
  std::size_t last_v12 = 0;
  std::size_t first_v13 = names.size();
  std::size_t last_v13 = 0;
  std::size_t first_v14 = names.size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const bool v12 = names[i].rfind("ckpt.", 0) == 0 ||
                     names[i].rfind("watchdog.", 0) == 0 ||
                     names[i].rfind("resilience.", 0) == 0;
    const bool v13 = names[i].rfind("reduce.", 0) == 0;
    const bool v14 = names[i].rfind("batch.", 0) == 0;
    if (v14) {
      first_v14 = std::min(first_v14, i);
    } else if (v13) {
      first_v13 = std::min(first_v13, i);
      last_v13 = std::max(last_v13, i);
    } else if (v12) {
      first_v12 = std::min(first_v12, i);
      last_v12 = std::max(last_v12, i);
    } else {
      last_v11 = std::max(last_v11, i);
    }
  }
  ASSERT_LT(first_v12, names.size()) << "v1.2 groups missing from the registry";
  ASSERT_LT(first_v13, names.size()) << "v1.3 group missing from the registry";
  ASSERT_LT(first_v14, names.size()) << "v1.4 group missing from the registry";
  EXPECT_LT(last_v11, first_v12)
      << "v1.2 keys must append after every v1.1 key, not interleave";
  EXPECT_LT(last_v12, first_v13)
      << "v1.3 keys must append after every v1.2 key, not interleave";
  EXPECT_LT(last_v13, first_v14)
      << "v1.4 keys must append after every v1.3 key, not interleave";
  // The v1.1 ledger.* tail is still immediately before the v1.2 block, the
  // v1.3 reduce.* tail keeps its boundary key, and the v1.4 batch.* block is
  // the document's tail.
  ASSERT_GT(first_v12, 0u);
  EXPECT_EQ(names[last_v11], "ledger.useful_seconds");
  EXPECT_EQ(names[last_v13], "reduce.interior_expansions");
  EXPECT_EQ(names.back(), "batch.wall_seconds");
}

TEST(RunStatsJsonTest, ReduceGroupExportsOnEveryEngine) {
  const auto gen = SmallDeck();
  const engine::MnaStructure mna(*gen.circuit);

  // Default run (no --reduce): the v1.3 keys are present with zero values,
  // so the key set never depends on whether the reduction pass engaged.
  const auto serial = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  RunCounterInputs inputs;
  inputs.stats = serial.stats;
  const auto counters = BuildRunCounters(inputs);
  for (const char* key :
       {"reduce.subnets", "reduce.nodes_eliminated", "reduce.devices_absorbed",
        "reduce.static_subnets", "reduce.max_interior", "reduce.max_ports",
        "reduce.interior_expansions"}) {
    EXPECT_EQ(CounterValue(counters, key), 0.0) << key;
  }

  // A reduced run's stats flow through verbatim.
  RunCounterInputs on_inputs;
  on_inputs.stats = serial.stats;
  on_inputs.reduction.subnets = 3;
  on_inputs.reduction.nodes_eliminated = 17;
  const auto on_counters = BuildRunCounters(on_inputs);
  EXPECT_EQ(CounterValue(on_counters, "reduce.subnets"), 3.0);
  EXPECT_EQ(CounterValue(on_counters, "reduce.nodes_eliminated"), 17.0);
}

TEST(RunStatsJsonTest, PartitionGroupExportsOnEveryEngine) {
  const auto gen = SmallDeck();
  const engine::MnaStructure mna(*gen.circuit);

  // Partition off (the default): the group is present with zero values, so
  // the key set stays structurally identical whether or not BBD ran.
  const auto off = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  RunCounterInputs off_inputs;
  off_inputs.stats = off.stats;
  const auto off_counters = BuildRunCounters(off_inputs);
  for (const char* key :
       {"partition.pieces", "partition.interface_size", "partition.piece_imbalance",
        "partition.full_factors", "partition.refactors", "partition.solves",
        "partition.schur_factors", "partition.schur_nnz", "partition.schur_seconds"}) {
    EXPECT_EQ(CounterValue(off_counters, key), 0.0) << key;
  }

  // Partition on: the serial engine populates the group.
  engine::SimOptions sim;
  sim.partition_pieces = 2;
  const auto on = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, sim);
  RunCounterInputs on_inputs;
  on_inputs.stats = on.stats;
  const auto on_counters = BuildRunCounters(on_inputs);
  EXPECT_GE(CounterValue(on_counters, "partition.pieces"), 1.0);
  EXPECT_GT(CounterValue(on_counters, "partition.solves"), 0.0);
  EXPECT_GT(CounterValue(on_counters, "partition.full_factors"), 0.0);
}

TEST(RunStatsJsonTest, HeaderStringsAreEscaped) {
  RunInfo info;
  info.engine = "serial";
  info.deck = "deck \"quoted\"\nline2";
  info.abort_reason = "tab\there";
  util::telemetry::CounterRegistry registry;
  registry.Count("one", 1);
  const JsonValue doc = ParseJson(RunStatsJson(info, registry));
  EXPECT_EQ(doc.at("deck").string, "deck \"quoted\"\nline2");
  EXPECT_EQ(doc.at("abort_reason").string, "tab\there");
}

TEST(ChromeTraceJsonTest, ParsesBackWithLanesAndWastedFlags) {
  ChromeTraceInputs inputs;
  // Lane labels are process-global and first-registration-wins: engines run
  // by other tests may already own lanes 0/1, so use ids private to this
  // test.
  if (util::telemetry::kSpansCompiledIn) {
    util::telemetry::StartCapture();
    {
      util::telemetry::ScopedLane lane(7, "test-driver");
      util::telemetry::Span span("round", "bwp");
    }
    {
      util::telemetry::ScopedLane lane(8, "test-slot");
      util::telemetry::Span span("solve", "time_point");
    }
    inputs.capture = util::telemetry::StopCapture();
    ASSERT_EQ(inputs.capture.events.size(), 2u);
  }

  const Ledger ledger = MakeLedgerWithWaste();
  inputs.ledger = &ledger;
  inputs.replay_workers = 2;

  const JsonValue doc = ParseJson(ChromeTraceJson(inputs));
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");

  std::set<double> live_tids, replay_tids;
  std::map<std::string, std::string> thread_names;  // "pid/tid" -> name
  int wasted_events = 0;
  int complete_events = 0;
  for (const JsonValue& event : doc.at("traceEvents").array) {
    ASSERT_TRUE(event.is_object());
    const std::string ph = event.at("ph").string;
    const double pid = event.at("pid").number;
    const double tid = event.at("tid").number;
    if (ph == "M") {
      if (event.at("name").string == "thread_name") {
        thread_names[std::to_string(static_cast<int>(pid)) + "/" +
                     std::to_string(static_cast<int>(tid))] =
            event.at("args").at("name").string;
      }
      continue;
    }
    ASSERT_TRUE(ph == "X" || ph == "i") << ph;
    if (ph == "X") {
      ++complete_events;
      EXPECT_GE(event.at("dur").number, 0.0);
    }
    if (pid == 1.0) live_tids.insert(tid);
    if (pid == 2.0) {
      replay_tids.insert(tid);
      ASSERT_TRUE(event.has("args"));
      if (event.at("args").at("wasted").boolean) {
        ++wasted_events;
        EXPECT_EQ(event.at("cname").string, "terrible");
        EXPECT_NE(event.at("name").string.find("(wasted)"), std::string::npos);
      }
    }
  }

  // Replay lanes: 4 tasks on 2 workers, both engaged (the wasted speculative
  // solve runs concurrently with the leading chain).
  EXPECT_EQ(replay_tids.size(), 2u);
  EXPECT_EQ(thread_names["2/0"], "worker-0");
  EXPECT_EQ(thread_names["2/1"], "worker-1");
  EXPECT_EQ(wasted_events, 1);
  if (util::telemetry::kSpansCompiledIn) {
    EXPECT_EQ(live_tids.size(), 2u);
    EXPECT_TRUE(live_tids.count(7.0));
    EXPECT_TRUE(live_tids.count(8.0));
    EXPECT_EQ(thread_names["1/7"], "test-driver");
    EXPECT_EQ(thread_names["1/8"], "test-slot");
  }
  EXPECT_GE(complete_events, 4);
}

TEST(ReplayScheduleTest, ScheduleIsConsistentWithReplay) {
  const Ledger ledger = MakeLedgerWithWaste();
  std::vector<ReplayTask> schedule;
  const ReplayResult replay = ReplayOnWorkers(ledger, 2, ReplayCost::kMeasuredSeconds,
                                              &schedule);

  ASSERT_EQ(schedule.size(), ledger.size());
  double latest_finish = 0.0;
  std::map<int, std::vector<std::pair<double, double>>> per_worker;
  std::set<int> records_seen;
  for (const auto& task : schedule) {
    EXPECT_GE(task.worker, 0);
    EXPECT_LT(task.worker, 2);
    EXPECT_GE(task.finish, task.start);
    records_seen.insert(task.record);
    per_worker[task.worker].emplace_back(task.start, task.finish);
    latest_finish = std::max(latest_finish, task.finish);

    // Dependencies finished before this task started.
    const auto& record = ledger.records()[static_cast<std::size_t>(task.record)];
    for (const int dep : record.deps) {
      const auto it = std::find_if(schedule.begin(), schedule.end(),
                                   [&](const ReplayTask& t) { return t.record == dep; });
      ASSERT_NE(it, schedule.end());
      EXPECT_LE(it->finish, task.start + 1e-12);
    }
  }
  EXPECT_EQ(records_seen.size(), ledger.size());
  EXPECT_DOUBLE_EQ(latest_finish, replay.makespan_seconds);

  // No worker runs two tasks at once.
  for (auto& [worker, intervals] : per_worker) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-12)
          << "worker " << worker << " overlaps";
    }
  }
}

TEST(WriteTextFileTest, RoundTripsAndFailsOnBadPath) {
  const std::string path = ::testing::TempDir() + "/trace_export_roundtrip.json";
  WriteTextFile(path, "{\"ok\":true}\n");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {};
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buffer, n), "{\"ok\":true}\n");
  EXPECT_THROW(WriteTextFile("/nonexistent-dir/x.json", "x"), Error);
}

}  // namespace
}  // namespace wavepipe::pipeline
