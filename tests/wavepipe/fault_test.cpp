// Failure-path tests for the pipelined schemes under deterministic fault
// injection: a fault may cost steps, never the waveform.  Because fault-site
// hit counters are global across worker threads, WHICH solve absorbs an
// injection is scheduling-dependent — so these tests assert outcome
// properties (completed XOR structured abort, monotone trace, no hang,
// consistent stats), not which worker failed.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "parallel/fine_grained.hpp"
#include "util/fault.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {
namespace {

using util::fault::Schedule;
using util::fault::ScopedFault;

struct FaultCase {
  Scheme scheme;
  int threads;
};

std::string CaseName(const ::testing::TestParamInfo<FaultCase>& info) {
  return std::string(SchemeName(info.param.scheme)) + "_t" +
         std::to_string(info.param.threads);
}

/// Every outcome a faulted run is allowed to have: either it completed to
/// tstop, or it returned a structured abort — with the partial waveform
/// intact and monotone either way.  A throw or a hang fails the test.
void ExpectWaveformNeverLost(const WavePipeResult& result, double tstop) {
  if (result.completed) {
    EXPECT_TRUE(result.abort_reason.empty()) << result.abort_reason;
    ASSERT_NE(result.final_point, nullptr);
    EXPECT_NEAR(result.final_point->time, tstop, 1e-12 * tstop);
  } else {
    EXPECT_FALSE(result.abort_reason.empty());
    EXPECT_LT(result.last_good_time, tstop);
  }
  ASSERT_GE(result.trace.num_samples(), 1u);
  for (std::size_t i = 1; i < result.trace.num_samples(); ++i) {
    EXPECT_GT(result.trace.time(i), result.trace.time(i - 1));
  }
  EXPECT_DOUBLE_EQ(result.trace.time(result.trace.num_samples() - 1),
                   result.last_good_time);
}

class SchemeFaultTest : public ::testing::TestWithParam<FaultCase> {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_P(SchemeFaultTest, TransientNewtonFaultsNeverLoseTheWaveform) {
  const FaultCase& param = GetParam();
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 6;
  schedule.fire = 2;
  ScopedFault site("newton.converge", schedule);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
  // Two transient failures are recoverable by shrink/rescue on this circuit.
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST_P(SchemeFaultTest, SingularPivotsNeverLoseTheWaveform) {
  const FaultCase& param = GetParam();
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 10;
  schedule.fire = 2;
  ScopedFault site("lu.pivot", schedule);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
}

TEST_P(SchemeFaultTest, PoisonedDeviceEvalsNeverLoseTheWaveform) {
  const FaultCase& param = GetParam();
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 10;
  schedule.fire = 2;
  ScopedFault site("device.eval_nan", schedule);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
}

TEST_P(SchemeFaultTest, UnrecoverableFaultsAbortStructurally) {
  const FaultCase& param = GetParam();
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  // Every Newton solve after warm-up fails, including the rescue ladder's:
  // the run must abort with the partial trace — no throw, no hang.
  Schedule schedule;
  schedule.skip = 6;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault site("newton.converge", schedule);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("rescue ladder exhausted"), std::string::npos)
      << result.abort_reason;
  EXPECT_GE(result.stats.TotalRescuesAttempted(), 3u);
  EXPECT_EQ(result.stats.TotalRescuesSucceeded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeFaultTest,
    ::testing::Values(FaultCase{Scheme::kSerial, 1},
                      FaultCase{Scheme::kBackward, 2},
                      FaultCase{Scheme::kBackward, 4},
                      FaultCase{Scheme::kForward, 2},
                      FaultCase{Scheme::kForward, 4},
                      FaultCase{Scheme::kCombined, 3},
                      FaultCase{Scheme::kCombined, 4}),
    CaseName);

class PipelineFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_F(PipelineFaultTest, WorkerThrowMidRoundIsDrainedNotFatal) {
  // A task that throws inside the pool must be folded into a failed solve
  // (counted in drained_task_errors) while every sibling future of the same
  // round is still joined — the round may not hang or abandon workers.
  for (const FaultCase param : {FaultCase{Scheme::kBackward, 2},
                                FaultCase{Scheme::kForward, 4},
                                FaultCase{Scheme::kCombined, 3}}) {
    const auto gen = circuits::MakeRcLadder(12);
    engine::MnaStructure mna(*gen.circuit);

    Schedule schedule;
    schedule.skip = 4;
    schedule.fire = 2;
    ScopedFault site("pool.task_throw", schedule);

    WavePipeOptions options;
    options.scheme = param.scheme;
    options.threads = param.threads;
    const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
    EXPECT_TRUE(result.completed)
        << SchemeName(param.scheme) << ": " << result.abort_reason;
    EXPECT_EQ(result.sched.drained_task_errors, 2u) << SchemeName(param.scheme);
    util::fault::DisarmAll();
  }
}

TEST_F(PipelineFaultTest, QuarantineDegradesToSerialAfterRepeatedFailures) {
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  // A burst of failures long enough to cover at least one full round's
  // solves, so the leading solve fails at least once.
  Schedule schedule;
  schedule.skip = 8;
  schedule.fire = 6;
  ScopedFault site("newton.converge", schedule);

  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  options.quarantine_threshold = 1;
  options.quarantine_rounds = 4;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GE(result.sched.quarantine_activations, 1u);
  EXPECT_GE(result.sched.quarantined_rounds, 1u);
}

TEST_F(PipelineFaultTest, CleanRunHasNoFailureTelemetry) {
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.sched.quarantine_activations, 0u);
  EXPECT_EQ(result.sched.quarantined_rounds, 0u);
  EXPECT_EQ(result.sched.drained_task_errors, 0u);
  EXPECT_EQ(result.stats.TotalRescuesAttempted(), 0u);
}

TEST_F(PipelineFaultTest, SchurFactorFaultIsAttributedToNewtonNotDrained) {
  // Regression: a SingularMatrixError from the BBD Schur factor inside a
  // pipeline round must surface as a FAILED SOLVE routed through
  // OnNewtonFailure (steps_rejected_newton / rescue attribution), never as a
  // generic drained_task_errors abort — the Schur pivot breakdown is a
  // numerical event, not a worker crash.
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 3;
  schedule.fire = 1;
  ScopedFault site("schur.factor", schedule);

  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  options.sim.partition_pieces = 4;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(util::fault::Fired("schur.factor"), 1u);
  EXPECT_GE(result.stats.steps_rejected_newton, 1u);
  EXPECT_EQ(result.sched.drained_task_errors, 0u);
}

TEST_F(PipelineFaultTest, PersistentSchurFaultAbortsWithRescueAttribution) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 3;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault site("schur.factor", schedule);

  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  options.sim.partition_pieces = 4;
  // The partition breaker would otherwise degrade the run to the monolithic
  // path and complete it (asserted by the companion test below); this test
  // pins the undegraded abort attribution.
  options.sim.resilience.breakers = false;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
  EXPECT_FALSE(result.completed);
  // The abort must carry the Newton-failure attribution (singular pivot +
  // rescue ladder), not a drained-worker or generic scheduler reason.
  EXPECT_NE(result.abort_reason.find("singular"), std::string::npos)
      << result.abort_reason;
  EXPECT_GE(result.stats.TotalRescuesAttempted(), 1u);
  EXPECT_EQ(result.sched.drained_task_errors, 0u);
}

TEST_F(PipelineFaultTest, PartitionBreakerRescuesPersistentSchurFault) {
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 3;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault site("schur.factor", schedule);

  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  options.sim.partition_pieces = 4;
  // Default breakers: the persistent singular Schur factor trips the
  // partition breaker, the run degrades to the monolithic LU and COMPLETES
  // where the breaker-less run above aborts.
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GE(result.resilience.breaker_trips, 1u);
  EXPECT_GE(result.resilience.feature_trips[static_cast<int>(
                engine::Feature::kPartition)],
            1u);
  EXPECT_EQ(result.sched.drained_task_errors, 0u);
}

TEST_F(PipelineFaultTest, DcopFaultAbortsStructurally) {
  const auto gen = circuits::MakeRcLadder(8);
  engine::MnaStructure mna(*gen.circuit);
  Schedule always;
  always.fire = Schedule::kUnlimited;
  ScopedFault site("newton.converge", always);

  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  WavePipeResult result;
  EXPECT_NO_THROW(result = RunWavePipe(*gen.circuit, mna, gen.spec, options));
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("DC operating point failed"), std::string::npos);
  EXPECT_EQ(result.trace.num_samples(), 0u);
}

class FineGrainedFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_F(FineGrainedFaultTest, SchurFactorFaultIsAbsorbedAsNewtonFailure) {
  // Regression: a SingularMatrixError from the BBD Schur factor inside the
  // fine-grained Newton loop used to unwind the whole run.  It must instead
  // surface as a failed solve (steps_rejected_newton) recovered by the
  // step-shrink ladder, exactly like the serial engine.
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 3;
  schedule.fire = 1;
  ScopedFault site("schur.factor", schedule);

  parallel::FineGrainedOptions options;
  options.threads = 2;
  options.sim.partition_pieces = 4;
  parallel::FineGrainedResult result;
  ASSERT_NO_THROW(
      result = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, options));
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(util::fault::Fired("schur.factor"), 1u);
  EXPECT_GE(result.stats.steps_rejected_newton, 1u);
  ASSERT_NE(result.final_point, nullptr);
  EXPECT_NEAR(result.final_point->time, gen.spec.tstop, 1e-12 * gen.spec.tstop);
}

TEST_F(FineGrainedFaultTest, PersistentSchurFaultAbortsStructurally) {
  // With the partition breaker disabled, a persistent Schur pivot breakdown
  // exhausts the shrink ladder and must end in a structured abort (the old
  // behavior was an unwound SingularMatrixError), waveform intact.
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 3;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault site("schur.factor", schedule);

  parallel::FineGrainedOptions options;
  options.threads = 2;
  options.sim.partition_pieces = 4;
  options.sim.resilience.breakers = false;
  parallel::FineGrainedResult result;
  ASSERT_NO_THROW(
      result = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, options));
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("singular"), std::string::npos)
      << result.abort_reason;
  EXPECT_LT(result.last_good_time, gen.spec.tstop);
  // The waveform up to the abort is intact and monotone.
  for (std::size_t i = 1; i < result.trace.num_samples(); ++i) {
    EXPECT_GT(result.trace.time(i), result.trace.time(i - 1));
  }
}

TEST_F(FineGrainedFaultTest, PartitionBreakerDegradesPersistentSchurFault) {
  // Default breakers ON: the same persistent fault trips the partition
  // breaker after breaker_trip_threshold consecutive failures, the run
  // degrades to the monolithic LU path and COMPLETES.
  const auto gen = circuits::MakeRcMesh(8, 8);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 3;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault site("schur.factor", schedule);

  parallel::FineGrainedOptions options;
  options.threads = 2;
  options.sim.partition_pieces = 4;
  parallel::FineGrainedResult result;
  ASSERT_NO_THROW(
      result = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec, options));
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GE(result.resilience.breaker_trips, 1u);
  EXPECT_GE(
      result.resilience.feature_trips[static_cast<int>(engine::Feature::kPartition)],
      1u);
  ASSERT_NE(result.final_point, nullptr);
  EXPECT_NEAR(result.final_point->time, gen.spec.tstop, 1e-12 * gen.spec.tstop);
}

}  // namespace
}  // namespace wavepipe::pipeline
