// Failure-path tests for the pipelined schemes under deterministic fault
// injection: a fault may cost steps, never the waveform.  Because fault-site
// hit counters are global across worker threads, WHICH solve absorbs an
// injection is scheduling-dependent — so these tests assert outcome
// properties (completed XOR structured abort, monotone trace, no hang,
// consistent stats), not which worker failed.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "util/fault.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {
namespace {

using util::fault::Schedule;
using util::fault::ScopedFault;

struct FaultCase {
  Scheme scheme;
  int threads;
};

std::string CaseName(const ::testing::TestParamInfo<FaultCase>& info) {
  return std::string(SchemeName(info.param.scheme)) + "_t" +
         std::to_string(info.param.threads);
}

/// Every outcome a faulted run is allowed to have: either it completed to
/// tstop, or it returned a structured abort — with the partial waveform
/// intact and monotone either way.  A throw or a hang fails the test.
void ExpectWaveformNeverLost(const WavePipeResult& result, double tstop) {
  if (result.completed) {
    EXPECT_TRUE(result.abort_reason.empty()) << result.abort_reason;
    ASSERT_NE(result.final_point, nullptr);
    EXPECT_NEAR(result.final_point->time, tstop, 1e-12 * tstop);
  } else {
    EXPECT_FALSE(result.abort_reason.empty());
    EXPECT_LT(result.last_good_time, tstop);
  }
  ASSERT_GE(result.trace.num_samples(), 1u);
  for (std::size_t i = 1; i < result.trace.num_samples(); ++i) {
    EXPECT_GT(result.trace.time(i), result.trace.time(i - 1));
  }
  EXPECT_DOUBLE_EQ(result.trace.time(result.trace.num_samples() - 1),
                   result.last_good_time);
}

class SchemeFaultTest : public ::testing::TestWithParam<FaultCase> {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_P(SchemeFaultTest, TransientNewtonFaultsNeverLoseTheWaveform) {
  const FaultCase& param = GetParam();
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 6;
  schedule.fire = 2;
  ScopedFault site("newton.converge", schedule);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
  // Two transient failures are recoverable by shrink/rescue on this circuit.
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST_P(SchemeFaultTest, SingularPivotsNeverLoseTheWaveform) {
  const FaultCase& param = GetParam();
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 10;
  schedule.fire = 2;
  ScopedFault site("lu.pivot", schedule);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
}

TEST_P(SchemeFaultTest, PoisonedDeviceEvalsNeverLoseTheWaveform) {
  const FaultCase& param = GetParam();
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  Schedule schedule;
  schedule.skip = 10;
  schedule.fire = 2;
  ScopedFault site("device.eval_nan", schedule);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
}

TEST_P(SchemeFaultTest, UnrecoverableFaultsAbortStructurally) {
  const FaultCase& param = GetParam();
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  // Every Newton solve after warm-up fails, including the rescue ladder's:
  // the run must abort with the partial trace — no throw, no hang.
  Schedule schedule;
  schedule.skip = 6;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault site("newton.converge", schedule);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  ExpectWaveformNeverLost(result, gen.spec.tstop);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("rescue ladder exhausted"), std::string::npos)
      << result.abort_reason;
  EXPECT_GE(result.stats.TotalRescuesAttempted(), 3u);
  EXPECT_EQ(result.stats.TotalRescuesSucceeded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeFaultTest,
    ::testing::Values(FaultCase{Scheme::kSerial, 1},
                      FaultCase{Scheme::kBackward, 2},
                      FaultCase{Scheme::kBackward, 4},
                      FaultCase{Scheme::kForward, 2},
                      FaultCase{Scheme::kForward, 4},
                      FaultCase{Scheme::kCombined, 3},
                      FaultCase{Scheme::kCombined, 4}),
    CaseName);

class PipelineFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_F(PipelineFaultTest, WorkerThrowMidRoundIsDrainedNotFatal) {
  // A task that throws inside the pool must be folded into a failed solve
  // (counted in drained_task_errors) while every sibling future of the same
  // round is still joined — the round may not hang or abandon workers.
  for (const FaultCase param : {FaultCase{Scheme::kBackward, 2},
                                FaultCase{Scheme::kForward, 4},
                                FaultCase{Scheme::kCombined, 3}}) {
    const auto gen = circuits::MakeRcLadder(12);
    engine::MnaStructure mna(*gen.circuit);

    Schedule schedule;
    schedule.skip = 4;
    schedule.fire = 2;
    ScopedFault site("pool.task_throw", schedule);

    WavePipeOptions options;
    options.scheme = param.scheme;
    options.threads = param.threads;
    const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
    EXPECT_TRUE(result.completed)
        << SchemeName(param.scheme) << ": " << result.abort_reason;
    EXPECT_EQ(result.sched.drained_task_errors, 2u) << SchemeName(param.scheme);
    util::fault::DisarmAll();
  }
}

TEST_F(PipelineFaultTest, QuarantineDegradesToSerialAfterRepeatedFailures) {
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  // A burst of failures long enough to cover at least one full round's
  // solves, so the leading solve fails at least once.
  Schedule schedule;
  schedule.skip = 8;
  schedule.fire = 6;
  ScopedFault site("newton.converge", schedule);

  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  options.quarantine_threshold = 1;
  options.quarantine_rounds = 4;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GE(result.sched.quarantine_activations, 1u);
  EXPECT_GE(result.sched.quarantined_rounds, 1u);
}

TEST_F(PipelineFaultTest, CleanRunHasNoFailureTelemetry) {
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.sched.quarantine_activations, 0u);
  EXPECT_EQ(result.sched.quarantined_rounds, 0u);
  EXPECT_EQ(result.sched.drained_task_errors, 0u);
  EXPECT_EQ(result.stats.TotalRescuesAttempted(), 0u);
}

TEST_F(PipelineFaultTest, DcopFaultAbortsStructurally) {
  const auto gen = circuits::MakeRcLadder(8);
  engine::MnaStructure mna(*gen.circuit);
  Schedule always;
  always.fire = Schedule::kUnlimited;
  ScopedFault site("newton.converge", always);

  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  WavePipeResult result;
  EXPECT_NO_THROW(result = RunWavePipe(*gen.circuit, mna, gen.spec, options));
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("DC operating point failed"), std::string::npos);
  EXPECT_EQ(result.trace.num_samples(), 0u);
}

}  // namespace
}  // namespace wavepipe::pipeline
