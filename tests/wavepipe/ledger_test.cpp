#include "wavepipe/ledger.hpp"

#include <gtest/gtest.h>

namespace wavepipe::pipeline {
namespace {

SolveRecord Rec(SolveKind kind, double seconds, std::vector<int> deps = {},
                bool useful = true) {
  SolveRecord r;
  r.kind = kind;
  r.seconds = seconds;
  r.deps = std::move(deps);
  r.useful = useful;
  r.newton_iterations = 3;
  return r;
}

TEST(Ledger, AssignsSequentialIds) {
  Ledger ledger;
  EXPECT_EQ(ledger.Add(Rec(SolveKind::kDcop, 1.0)), 0);
  EXPECT_EQ(ledger.Add(Rec(SolveKind::kLeading, 2.0, {0})), 1);
  EXPECT_EQ(ledger.size(), 2u);
}

TEST(Ledger, RejectsForwardDependencies) {
  Ledger ledger;
  ledger.Add(Rec(SolveKind::kDcop, 1.0));
  EXPECT_THROW(ledger.Add(Rec(SolveKind::kLeading, 1.0, {5})), std::logic_error);
  EXPECT_THROW(ledger.Add(Rec(SolveKind::kLeading, 1.0, {1})), std::logic_error);  // self
}

TEST(Ledger, Totals) {
  Ledger ledger;
  ledger.Add(Rec(SolveKind::kDcop, 1.0));
  ledger.Add(Rec(SolveKind::kLeading, 2.0, {0}));
  ledger.Add(Rec(SolveKind::kSpeculative, 4.0, {0}, /*useful=*/false));
  EXPECT_DOUBLE_EQ(ledger.TotalSeconds(), 7.0);
  EXPECT_DOUBLE_EQ(ledger.UsefulSeconds(), 3.0);
  EXPECT_EQ(ledger.CountKind(SolveKind::kSpeculative), 1u);
  EXPECT_EQ(ledger.CountKind(SolveKind::kRepair), 0u);
  EXPECT_EQ(ledger.TotalNewtonIterations(), 9u);
}

TEST(Ledger, KindNames) {
  EXPECT_STREQ(SolveKindName(SolveKind::kDcop), "dcop");
  EXPECT_STREQ(SolveKindName(SolveKind::kBackward), "backward");
  EXPECT_STREQ(SolveKindName(SolveKind::kRepair), "repair");
}

}  // namespace
}  // namespace wavepipe::pipeline
