#include "wavepipe/virtual_pipeline.hpp"

#include <gtest/gtest.h>

namespace wavepipe::pipeline {
namespace {

SolveRecord Rec(double seconds, std::vector<int> deps = {}) {
  SolveRecord r;
  r.seconds = seconds;
  r.deps = std::move(deps);
  return r;
}

TEST(Replay, SequentialChainHasNoParallelism) {
  Ledger ledger;
  int prev = ledger.Add(Rec(1.0));
  for (int i = 0; i < 4; ++i) prev = ledger.Add(Rec(1.0, {prev}));
  const auto r1 = ReplayOnWorkers(ledger, 1);
  const auto r4 = ReplayOnWorkers(ledger, 4);
  EXPECT_DOUBLE_EQ(r1.makespan_seconds, 5.0);
  EXPECT_DOUBLE_EQ(r4.makespan_seconds, 5.0);  // chain: extra workers idle
  EXPECT_DOUBLE_EQ(r4.critical_path_seconds, 5.0);
}

TEST(Replay, IndependentTasksParallelize) {
  Ledger ledger;
  for (int i = 0; i < 4; ++i) ledger.Add(Rec(1.0));
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 1).makespan_seconds, 4.0);
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 2).makespan_seconds, 2.0);
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 4).makespan_seconds, 1.0);
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 4).critical_path_seconds, 1.0);
}

TEST(Replay, DiamondDependency) {
  //   0
  //  / \\
  // 1   2
  //  \\ /
  //   3
  Ledger ledger;
  const int a = ledger.Add(Rec(1.0));
  const int b = ledger.Add(Rec(2.0, {a}));
  const int c = ledger.Add(Rec(3.0, {a}));
  ledger.Add(Rec(1.0, {b, c}));
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 1).makespan_seconds, 7.0);
  // 2 workers: b and c overlap -> 1 + 3 + 1.
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 2).makespan_seconds, 5.0);
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 2).critical_path_seconds, 5.0);
}

TEST(Replay, UtilizationComputed) {
  Ledger ledger;
  ledger.Add(Rec(1.0));
  ledger.Add(Rec(1.0));
  const auto r = ReplayOnWorkers(ledger, 2);
  EXPECT_DOUBLE_EQ(r.busy_seconds, 2.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
  const auto r4 = ReplayOnWorkers(ledger, 4);
  EXPECT_DOUBLE_EQ(r4.utilization, 0.5);
}

TEST(Replay, EmptyLedger) {
  Ledger ledger;
  const auto r = ReplayOnWorkers(ledger, 2);
  EXPECT_DOUBLE_EQ(r.makespan_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.utilization, 0.0);
}

TEST(Replay, WavePipeRoundShape) {
  // One BWP-style round: leading (cost 3) and backward (cost 2) both depend
  // on the previous point; next leading depends on both.
  Ledger ledger;
  const int prev = ledger.Add(Rec(1.0));
  const int lead = ledger.Add(Rec(3.0, {prev}));
  const int back = ledger.Add(Rec(2.0, {prev}));
  ledger.Add(Rec(3.0, {lead, back}));
  // Serial: 1+3+2+3 = 9.  Two workers overlap lead/back: 1+3+3 = 7.
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 1).makespan_seconds, 9.0);
  EXPECT_DOUBLE_EQ(ReplayOnWorkers(ledger, 2).makespan_seconds, 7.0);
}

}  // namespace
}  // namespace wavepipe::pipeline
