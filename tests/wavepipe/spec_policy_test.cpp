// Unit tests for the adaptive speculation policy (wavepipe/spec_policy.hpp):
// the acceptance-driven depth controller, the multi-candidate predictor
// scoring, event-aware placement, and — under deterministic fault injection
// at spec.mispredict — the depth-degradation story end to end.  The
// controller is plain sequential state, so most tests drive it directly with
// crafted outcome streams; the fault test runs the real pipeline.
#include <gtest/gtest.h>

#include <vector>

#include "circuits/generators.hpp"
#include "engine/history.hpp"
#include "engine/trace.hpp"
#include "util/fault.hpp"
#include "wavepipe/spec_policy.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {
namespace {

using util::fault::Schedule;
using util::fault::ScopedFault;

SpecPolicyOptions AdaptiveOptions() {
  SpecPolicyOptions options;
  options.mode = SpecPolicyMode::kAdaptive;
  return options;
}

engine::SolutionPointPtr MakePoint(double time, std::vector<double> x) {
  auto point = std::make_shared<engine::SolutionPoint>();
  point->time = time;
  point->x = std::move(x);
  return point;
}

// ---- depth controller -------------------------------------------------------

TEST(SpecPolicyDepth, FixedModeReturnsTheSchemeDepthUnchanged) {
  SpeculationPolicy policy({}, 0.5);
  EXPECT_FALSE(policy.adaptive());
  for (int depth : {0, 1, 3, 7}) {
    EXPECT_EQ(policy.ChooseChainDepth(depth), depth);
  }
  // Fixed mode observes but never steers.
  for (int i = 0; i < 50; ++i) policy.OnChainValidated(3, 0);
  EXPECT_EQ(policy.ChooseChainDepth(3), 3);
  EXPECT_EQ(policy.stats().depth_raises, 0u);
  EXPECT_EQ(policy.stats().depth_cuts, 0u);
  EXPECT_EQ(policy.stats().depth_decisions, 5u);
}

TEST(SpecPolicyDepth, GrowsMonotonicallyToMaxOnAnAcceptStreak) {
  auto options = AdaptiveOptions();
  options.min_depth = 1;
  options.max_depth = 5;
  SpeculationPolicy policy(options, 0.5);

  int previous = policy.ChooseChainDepth(2);
  EXPECT_EQ(previous, 2);  // warm start from the scheme depth
  for (int round = 0; round < 40; ++round) {
    policy.OnLeadCost(4);
    const int depth = policy.ChooseChainDepth(2);
    EXPECT_GE(depth, previous) << "depth fell during an all-accept streak";
    EXPECT_LE(depth, previous + 1) << "depth moved more than one step per round";
    EXPECT_LE(depth, options.max_depth);
    previous = depth;
    policy.OnChainValidated(depth, depth);  // every entry accepted
  }
  EXPECT_EQ(previous, options.max_depth);
  EXPECT_GT(policy.stats().depth_raises, 0u);
  EXPECT_EQ(policy.stats().depth_cuts, 0u);
}

TEST(SpecPolicyDepth, ShrinksMonotonicallyToMinOnADiscardStreak) {
  auto options = AdaptiveOptions();
  options.min_depth = 1;
  options.max_depth = 6;
  SpeculationPolicy policy(options, 0.5);

  int previous = policy.ChooseChainDepth(4);
  EXPECT_EQ(previous, 4);
  for (int round = 0; round < 40; ++round) {
    const int depth = policy.ChooseChainDepth(4);
    EXPECT_LE(depth, previous) << "depth rose during an all-discard streak";
    EXPECT_GE(depth, options.min_depth) << "depth fell through the lower bound";
    previous = depth;
    policy.OnChainValidated(depth, 0);  // every entry discarded
  }
  EXPECT_EQ(previous, options.min_depth);
  EXPECT_GT(policy.stats().depth_cuts, 0u);
  EXPECT_EQ(policy.stats().depth_raises, 0u);
}

TEST(SpecPolicyDepth, BoundsAreClampedAndWarmStartRespectsThem) {
  auto options = AdaptiveOptions();
  options.min_depth = 2;
  options.max_depth = 3;
  SpeculationPolicy policy(options, 0.5);
  // Warm start clamps the scheme depth (5) into [2, 3].
  EXPECT_EQ(policy.ChooseChainDepth(5), 3);
  for (int round = 0; round < 30; ++round) {
    policy.OnChainValidated(3, 3);
    EXPECT_LE(policy.ChooseChainDepth(5), 3);
  }
  for (int round = 0; round < 30; ++round) {
    policy.OnChainValidated(3, 0);
    EXPECT_GE(policy.ChooseChainDepth(5), 2);
  }
}

TEST(SpecPolicyDepth, ThrottledDepthZeroKeepsADeterministicProbeCadence) {
  auto options = AdaptiveOptions();
  options.min_depth = 0;
  options.max_depth = 4;
  options.probe_period = 4;
  SpeculationPolicy policy(options, 0.5);

  policy.ChooseChainDepth(2);
  for (int round = 0; round < 60; ++round) policy.OnChainValidated(2, 0);
  EXPECT_EQ(policy.current_depth(), 0);

  int probes = 0;
  int zeros = 0;
  for (int round = 0; round < 32; ++round) {
    const int depth = policy.ChooseChainDepth(2);
    // The streak above never accepted, so the throttle must hold: only probe
    // chains (depth 1) are allowed through, on the fixed cadence.
    if (depth == 1) ++probes;
    else if (depth == 0) ++zeros;
    else FAIL() << "throttled controller chose depth " << depth;
    policy.OnChainValidated(depth, 0);
  }
  EXPECT_EQ(probes, 32 / options.probe_period);
  EXPECT_EQ(zeros, 32 - probes);
}

TEST(SpecPolicyDepth, ProbeAcceptanceReopensSpeculation) {
  auto options = AdaptiveOptions();
  options.min_depth = 0;
  options.max_depth = 4;
  options.probe_period = 2;
  SpeculationPolicy policy(options, 0.5);

  policy.ChooseChainDepth(2);
  for (int round = 0; round < 60; ++round) policy.OnChainValidated(2, 0);
  ASSERT_EQ(policy.current_depth(), 0);

  // The waveform turns predictable: every probe lands.  The acceptance EWMA
  // recovers through the probe outcomes and speculation resumes.
  for (int round = 0; round < 60 && policy.current_depth() == 0; ++round) {
    const int depth = policy.ChooseChainDepth(2);
    if (depth > 0) policy.OnChainValidated(depth, depth);
  }
  EXPECT_GT(policy.current_depth(), 0);
}

// ---- predictor selection ----------------------------------------------------

TEST(SpecPolicyPredictor, FixedModeAlwaysPicksThePolynomialCandidate) {
  SpeculationPolicy policy({}, 0.5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.ChoosePredictor(), SpecPredictor::kPolynomial);
  }
}

TEST(SpecPolicyPredictor, ExploitsTheCandidateWithTheBestHitRate) {
  auto options = AdaptiveOptions();
  options.explore_period = 1000;  // keep exploration out of this test
  SpeculationPolicy policy(options, 0.5);

  // Crafted history: the high-order candidate lands, the polynomial misses.
  for (int i = 0; i < 20; ++i) {
    policy.OnEntryOutcome(SpecPredictor::kHighOrder, true, 3, /*scored=*/true);
    policy.OnEntryOutcome(SpecPredictor::kPolynomial, false, 3, /*scored=*/true);
  }
  policy.ChoosePredictor();  // launch 0 is an exploration slot
  EXPECT_EQ(policy.ChoosePredictor(), SpecPredictor::kHighOrder);

  // The tide turns: the event candidate starts winning over everything.
  for (int i = 0; i < 40; ++i) {
    policy.OnEntryOutcome(SpecPredictor::kEvent, true, 3, /*scored=*/true);
    policy.OnEntryOutcome(SpecPredictor::kHighOrder, false, 3, /*scored=*/true);
  }
  EXPECT_EQ(policy.ChoosePredictor(), SpecPredictor::kEvent);
}

TEST(SpecPolicyPredictor, ExplorationSlotsRoundRobinDeterministically) {
  auto options = AdaptiveOptions();
  options.explore_period = 2;
  SpeculationPolicy policy(options, 0.5);
  // Launches 0, 2, 4 are exploration slots cycling through the candidates.
  EXPECT_EQ(policy.ChoosePredictor(), SpecPredictor::kPolynomial);  // 0
  policy.ChoosePredictor();                                         // 1: exploit
  EXPECT_EQ(policy.ChoosePredictor(), SpecPredictor::kHighOrder);   // 2
  policy.ChoosePredictor();                                         // 3: exploit
  EXPECT_EQ(policy.ChoosePredictor(), SpecPredictor::kEvent);       // 4
}

TEST(SpecPolicyPredictor, UnvalidatedTailEntriesFeedCostsButNotScores) {
  auto options = AdaptiveOptions();
  SpeculationPolicy policy(options, 0.5);
  policy.OnEntryOutcome(SpecPredictor::kPolynomial, false, 5, /*scored=*/false);
  EXPECT_EQ(policy.stats().predictor_hits[0], 0u);
  EXPECT_EQ(policy.stats().predictor_misses[0], 0u);
  policy.OnEntryOutcome(SpecPredictor::kPolynomial, true, 5, /*scored=*/true);
  EXPECT_EQ(policy.stats().predictor_hits[0], 1u);
}

TEST(SpecPolicyPredictor, HighOrderCandidateWidensTheStencilByOnePoint) {
  SpeculationPolicy policy(AdaptiveOptions(), 0.5);
  EXPECT_EQ(policy.PredictorPoints(SpecPredictor::kPolynomial, 2), 3);
  EXPECT_EQ(policy.PredictorPoints(SpecPredictor::kEvent, 2), 3);
  EXPECT_EQ(policy.PredictorPoints(SpecPredictor::kHighOrder, 2), 4);
}

// ---- event-aware placement --------------------------------------------------

TEST(SpecPolicyEvent, SnapsOntoASourceBreakpointWithinOneHmin) {
  SpeculationPolicy policy(AdaptiveOptions(), 0.5);
  const double hmin = 1e-9;
  engine::HistoryWindow window;  // no usable trend: breakpoints only
  const std::vector<double> breakpoints = {5e-6, 9e-6};

  const SpecEventSnap snap =
      policy.PredictEvent(window, 0, breakpoints, 0, /*t_prev=*/4e-6,
                          /*t_cand=*/6e-6, hmin);
  ASSERT_TRUE(snap.snapped);
  EXPECT_TRUE(snap.breakpoint);
  EXPECT_NEAR(snap.time, 5e-6, hmin);
  EXPECT_EQ(policy.stats().event_snaps, 1u);
}

TEST(SpecPolicyEvent, IgnoresBreakpointsOutsideTheStep) {
  SpeculationPolicy policy(AdaptiveOptions(), 0.5);
  const std::vector<double> breakpoints = {9e-6};
  const SpecEventSnap snap = policy.PredictEvent({}, 0, breakpoints, 0, 4e-6, 6e-6, 1e-9);
  EXPECT_FALSE(snap.snapped);
  EXPECT_DOUBLE_EQ(snap.time, 6e-6);
  EXPECT_EQ(policy.stats().event_snaps, 0u);
}

TEST(SpecPolicyEvent, SnapsOntoAPredictedZeroCrossing) {
  SpeculationPolicy policy(AdaptiveOptions(), 0.5);
  engine::HistoryWindow window;
  // Component 0 ramps 3 -> 2 over [0, 1]us: the linear trend reaches zero at
  // t = 3us, inside the speculative step [1us, 4us].
  window.push_back(MakePoint(0.0, {3.0, 5.0}));
  window.push_back(MakePoint(1e-6, {2.0, 5.0}));

  const SpecEventSnap snap =
      policy.PredictEvent(window, 2, {}, 0, /*t_prev=*/1e-6, /*t_cand=*/4e-6, 1e-9);
  ASSERT_TRUE(snap.snapped);
  EXPECT_FALSE(snap.breakpoint);
  EXPECT_NEAR(snap.time, 3e-6, 1e-12);
}

TEST(SpecPolicyEvent, IgnoresComponentsMovingAwayFromZeroOrBelowTheFloor) {
  auto options = AdaptiveOptions();
  options.zero_cross_floor = 1e-6;
  SpeculationPolicy policy(options, 0.5);
  engine::HistoryWindow window;
  // Component 0 moves away from zero; component 1 sits below the magnitude
  // floor (already at zero, not approaching it).
  window.push_back(MakePoint(0.0, {1.0, 1e-9}));
  window.push_back(MakePoint(1e-6, {2.0, -1e-9}));

  const SpecEventSnap snap = policy.PredictEvent(window, 2, {}, 0, 1e-6, 4e-6, 1e-9);
  EXPECT_FALSE(snap.snapped);
}

TEST(SpecPolicyEvent, EarliestEventWinsBetweenCornerAndCrossing) {
  SpeculationPolicy policy(AdaptiveOptions(), 0.5);
  engine::HistoryWindow window;
  // Crossing predicted at 2us; corner at 3us: the crossing is earlier.
  window.push_back(MakePoint(0.0, {2.0}));
  window.push_back(MakePoint(1e-6, {1.0}));
  const std::vector<double> breakpoints = {3e-6};

  const SpecEventSnap snap = policy.PredictEvent(window, 1, breakpoints, 0, 1e-6, 4e-6, 1e-9);
  ASSERT_TRUE(snap.snapped);
  EXPECT_FALSE(snap.breakpoint);
  EXPECT_NEAR(snap.time, 2e-6, 1e-12);
}

// ---- backward placement -----------------------------------------------------

TEST(SpecPolicyBackward, ConvertsForwardSlotsAsAcceptanceCollapses) {
  auto options = AdaptiveOptions();
  options.bwp_convert_warmup = 8;
  SpeculationPolicy policy(options, 0.5);
  // Before any evidence: one backward point, whatever the fixed choice was.
  EXPECT_EQ(policy.ChooseBackwardCount(1, 3), 1);

  for (int round = 0; round < 32; ++round) {
    // What the pipeline reports for a one-entry chain that missed: the entry
    // outcome (feeds the warmup sample count) plus the chain summary.
    policy.OnEntryOutcome(SpecPredictor::kPolynomial, false, 3, /*scored=*/true);
    policy.OnChainValidated(1, 0);
  }
  // Acceptance EWMA is ~0 with 32 >= 2*warmup samples: full conversion.
  EXPECT_EQ(policy.ChooseBackwardCount(1, 3), 3);
  // The cap still binds.
  EXPECT_EQ(policy.ChooseBackwardCount(1, 2), 2);
  EXPECT_EQ(policy.ChooseBackwardCount(1, 1), 1);
}

TEST(SpecPolicyBackward, HighAcceptanceKeepsTheSingleBackwardPoint) {
  auto options = AdaptiveOptions();
  options.bwp_convert_warmup = 8;
  SpeculationPolicy policy(options, 0.5);
  for (int round = 0; round < 32; ++round) policy.OnChainValidated(1, 1);
  EXPECT_EQ(policy.ChooseBackwardCount(1, 3), 1);
}

TEST(SpecPolicyBackward, LteRejectionsPullThePlacementTowardTheLeadingEdge) {
  auto options = AdaptiveOptions();
  SpeculationPolicy policy(options, 0.5);
  const double baseline = policy.ChooseBackwardFraction();
  EXPECT_DOUBLE_EQ(baseline, 0.5);

  for (int i = 0; i < 20; ++i) policy.OnLteRejection();
  const double pulled = policy.ChooseBackwardFraction();
  EXPECT_GT(pulled, baseline);
  EXPECT_LE(pulled, options.backward_fraction_max);

  // Accepted leading steps decay the pressure back down.
  for (int i = 0; i < 60; ++i) policy.OnLeadingAccepted();
  EXPECT_LT(policy.ChooseBackwardFraction(), pulled);
  EXPECT_GE(policy.ChooseBackwardFraction(), options.backward_fraction_min);
}

TEST(SpecPolicyBackward, FixedModeKeepsTheConfiguredFraction) {
  SpeculationPolicy policy({}, 0.42);
  for (int i = 0; i < 20; ++i) policy.OnLteRejection();
  EXPECT_DOUBLE_EQ(policy.ChooseBackwardFraction(), 0.42);
  EXPECT_EQ(policy.ChooseBackwardCount(2, 3), 2);
}

// ---- mispredict fault: depth degrades without thrashing ---------------------

TEST(SpecPolicyFault, ForcedMispredictsDegradeDepthWithoutThrashing) {
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  WavePipeOptions serial_options;
  serial_options.scheme = Scheme::kSerial;
  serial_options.threads = 1;
  const WavePipeResult serial = RunWavePipe(*gen.circuit, mna, gen.spec, serial_options);
  ASSERT_TRUE(serial.completed);

  WavePipeOptions options;
  options.scheme = Scheme::kForward;
  options.threads = 4;
  options.spec_policy.mode = SpecPolicyMode::kAdaptive;

  Schedule schedule;
  schedule.skip = 0;
  schedule.fire = Schedule::kUnlimited;
  ScopedFault fault("spec.mispredict", schedule);
  const WavePipeResult result = RunWavePipe(*gen.circuit, mna, gen.spec, options);

  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GT(fault.fired(), 0u);
  // Every prediction was forced out of tolerance, so nothing was accepted...
  EXPECT_EQ(result.sched.speculative_accepted, 0u);
  // ...and the controller must have throttled the chain down: the average
  // chosen depth ends well below the fixed scheme's constant 3, with the
  // raise counter showing no cut/raise oscillation against the losing streak.
  ASSERT_GT(result.spec.depth_decisions, 0u);
  const double average_depth = static_cast<double>(result.spec.depth_chosen) /
                               static_cast<double>(result.spec.depth_decisions);
  EXPECT_LT(average_depth, 1.0);
  EXPECT_GT(result.spec.depth_cuts, 0u);
  EXPECT_LE(result.spec.depth_raises, result.spec.depth_cuts);
  // Accuracy is never policy-dependent: with every speculation discarded the
  // waveform still matches the serial engine.
  const double deviation = engine::Trace::MaxDeviationAll(serial.trace, result.trace);
  EXPECT_LT(deviation, 0.08);
}

}  // namespace
}  // namespace wavepipe::pipeline
