// Forward-pipelining behaviour: speculation never leaks unvalidated state,
// repairs are cheap, and the critical path shortens.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {
namespace {

WavePipeResult RunScheme(const circuits::GeneratedCircuit& gen, Scheme scheme, int threads) {
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions options;
  options.scheme = scheme;
  options.threads = threads;
  return RunWavePipe(*gen.circuit, mna, gen.spec, options);
}

TEST(Fwp, SpeculatesAndAccepts) {
  const auto gen = circuits::MakeRcLadder(30);
  const auto res = RunScheme(gen, Scheme::kForward, 2);
  EXPECT_GT(res.sched.speculative_solves, 0u);
  EXPECT_GT(res.sched.speculative_accepted, 0u);
  // Every non-direct acceptance is backed by a repair record in the ledger.
  EXPECT_GE(res.ledger.CountKind(SolveKind::kRepair) + res.sched.speculative_direct,
            res.sched.speculative_accepted);
  EXPECT_EQ(res.sched.backward_solves, 0u);
}

TEST(Fwp, AccountingConsistent) {
  const auto gen = circuits::MakeRcLadder(30);
  const auto res = RunScheme(gen, Scheme::kForward, 2);
  EXPECT_EQ(res.sched.speculative_solves,
            res.sched.speculative_accepted + res.sched.speculative_discarded);
  // Accepted speculations either landed directly or via exactly one repair.
  EXPECT_LE(res.sched.speculative_accepted,
            res.sched.repair_solves + res.sched.speculative_direct);
  EXPECT_LE(res.sched.speculative_direct, res.sched.speculative_accepted);
}

TEST(Fwp, PipelinesWithoutPathology) {
  // Whether FWP reduces rounds depends on the cost regime (see DESIGN.md's
  // "Reconstruction refinements"); the invariants that must always hold:
  // no round explosion, real overlap in the task DAG, and some accepted
  // speculation on a predictable circuit.
  const auto gen = circuits::MakeRcLadder(50);
  const auto serial = RunScheme(gen, Scheme::kSerial, 1);
  const auto fwp = RunScheme(gen, Scheme::kForward, 2);
  EXPECT_LT(fwp.sched.rounds, serial.sched.rounds * 13 / 10);
  const auto replay1 = ReplayOnWorkers(fwp.ledger, 1, ReplayCost::kNewtonIterations);
  const auto replay2 = ReplayOnWorkers(fwp.ledger, 2, ReplayCost::kNewtonIterations);
  EXPECT_LT(replay2.makespan_seconds, replay1.makespan_seconds);
  EXPECT_GT(fwp.sched.speculative_accepted, 0u);
}

TEST(Fwp, WaveformMatchesSerial) {
  const auto gen = circuits::MakeRcLadder(30);
  const auto serial = RunScheme(gen, Scheme::kSerial, 1);
  const auto fwp = RunScheme(gen, Scheme::kForward, 2);
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, fwp.trace), 0.02);
}

TEST(Fwp, RepairsAreCheaperThanFullSolves) {
  const auto gen = circuits::MakeInverterChain(6);
  const auto res = RunScheme(gen, Scheme::kForward, 2);
  ASSERT_GT(res.sched.repair_solves, 0u);
  const double avg_repair_iters =
      static_cast<double>(res.sched.repair_newton_iterations) /
      static_cast<double>(res.sched.repair_solves);
  // Hot-started repairs: expect clearly fewer Newton iterations than the 3+
  // a cold nonlinear solve needs.
  EXPECT_LT(avg_repair_iters, 3.5);
}

TEST(Fwp, PredictionToleranceGatesAcceptance) {
  const auto gen = circuits::MakeRcLadder(30);
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions strict;
  strict.scheme = Scheme::kForward;
  strict.threads = 2;
  // Rejects everything except exactly-predicted flat stretches.
  strict.fwp_prediction_tol = 1e-9;
  const auto res_strict = RunWavePipe(*gen.circuit, mna, gen.spec, strict);

  WavePipeOptions loose = strict;
  loose.fwp_prediction_tol = 1e9;
  const auto res_loose = RunWavePipe(*gen.circuit, mna, gen.spec, loose);
  EXPECT_GT(res_loose.sched.speculative_accepted, 0u);
  EXPECT_LT(res_strict.sched.speculative_accepted,
            res_loose.sched.speculative_accepted);
  EXPECT_LT(res_strict.sched.speculation_acceptance(),
            res_loose.sched.speculation_acceptance());
  // Even with an absurdly loose gate, accuracy holds: repairs re-solve
  // against the true history and the LTE test still accepts/rejects.
  const auto serial = RunScheme(gen, Scheme::kSerial, 1);
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, res_loose.trace), 0.02);
}

TEST(Fwp, ThreeThreadsSpeculateDeeper) {
  const auto gen = circuits::MakeRcLadder(40);
  const auto t2 = RunScheme(gen, Scheme::kForward, 2);
  const auto t3 = RunScheme(gen, Scheme::kForward, 3);
  EXPECT_GT(static_cast<double>(t3.sched.speculative_solves) / t3.sched.rounds,
            static_cast<double>(t2.sched.speculative_solves) / t2.sched.rounds);
}

TEST(Fwp, CriticalPathShorterThanSerialWork) {
  const auto gen = circuits::MakeInverterChain(8);
  const auto fwp = RunScheme(gen, Scheme::kForward, 2);
  const auto replay = ReplayOnWorkers(fwp.ledger, 2);
  // Overlap exists: two workers beat one on the same ledger.
  EXPECT_LT(replay.makespan_seconds, ReplayOnWorkers(fwp.ledger, 1).makespan_seconds);
}

TEST(Fwp, NoSpeculationAcrossBreakpoints) {
  // A circuit whose pulse has many corners: accepted repairs must never land
  // beyond a breakpoint that the leading edge hasn't crossed.  Indirectly
  // verified: the trace must contain a sample exactly at each corner.
  const auto gen = circuits::MakeInverterChain(4);
  const auto res = RunScheme(gen, Scheme::kForward, 3);
  const auto corners = gen.circuit->CollectBreakpoints(gen.spec.tstart, gen.spec.tstop);
  for (double corner : corners) {
    bool found = false;
    for (std::size_t i = 0; i < res.trace.num_samples(); ++i) {
      if (std::abs(res.trace.time(i) - corner) < 1e-18 + 1e-12 * corner) found = true;
    }
    EXPECT_TRUE(found) << "missing breakpoint sample at " << corner;
  }
}

}  // namespace
}  // namespace wavepipe::pipeline
