// The paper's central claim, as a parameterized property: every WavePipe
// scheme, on every benchmark circuit class, at every thread count, produces
// the same waveform as the conventional serial loop (within LTE-tolerance
// scale) — "parallel circuit simulation without jeopardizing convergence and
// accuracy".
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {
namespace {

struct EquivalenceCase {
  const char* circuit;
  Scheme scheme;
  int threads;
  double max_deviation;  ///< absolute volts on the probe set
};

circuits::GeneratedCircuit MakeByName(const std::string& name) {
  if (name == "rcladder") return circuits::MakeRcLadder(40);
  if (name == "rcmesh") return circuits::MakeRcMesh(6, 6);
  if (name == "invchain") return circuits::MakeInverterChain(6);
  if (name == "rectifier") return circuits::MakeDiodeRectifier(2);
  if (name == "amp") return circuits::MakeMosAmplifierChain(2);
  throw std::logic_error("unknown circuit " + name);
}

class SchemeEquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(SchemeEquivalenceTest, WaveformMatchesSerial) {
  const EquivalenceCase& param = GetParam();
  const auto gen = MakeByName(param.circuit);
  engine::MnaStructure mna(*gen.circuit);

  WavePipeOptions serial_options;
  serial_options.scheme = Scheme::kSerial;
  const auto serial = RunWavePipe(*gen.circuit, mna, gen.spec, serial_options);

  WavePipeOptions options;
  options.scheme = param.scheme;
  options.threads = param.threads;
  const auto piped = RunWavePipe(*gen.circuit, mna, gen.spec, options);

  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, piped.trace),
            param.max_deviation)
      << param.circuit << " " << SchemeName(param.scheme) << " x" << param.threads;

  // End point agreement (the quantity integration errors accumulate into).
  ASSERT_NE(piped.final_point, nullptr);
  EXPECT_NEAR(piped.final_point->time, gen.spec.tstop, 1e-12 * gen.spec.tstop);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeEquivalenceTest,
    ::testing::Values(
        EquivalenceCase{"rcladder", Scheme::kBackward, 2, 0.02},
        EquivalenceCase{"rcladder", Scheme::kBackward, 3, 0.02},
        EquivalenceCase{"rcladder", Scheme::kForward, 2, 0.02},
        EquivalenceCase{"rcladder", Scheme::kForward, 4, 0.02},
        EquivalenceCase{"rcladder", Scheme::kCombined, 3, 0.02},
        EquivalenceCase{"rcmesh", Scheme::kBackward, 2, 0.02},
        EquivalenceCase{"rcmesh", Scheme::kForward, 2, 0.02},
        EquivalenceCase{"rcmesh", Scheme::kCombined, 3, 0.02},
        EquivalenceCase{"invchain", Scheme::kBackward, 2, 0.15},
        EquivalenceCase{"invchain", Scheme::kForward, 2, 0.15},
        EquivalenceCase{"invchain", Scheme::kCombined, 3, 0.15},
        EquivalenceCase{"invchain", Scheme::kCombined, 4, 0.15},
        EquivalenceCase{"rectifier", Scheme::kBackward, 2, 0.08},
        EquivalenceCase{"rectifier", Scheme::kForward, 2, 0.08},
        EquivalenceCase{"rectifier", Scheme::kCombined, 3, 0.08},
        EquivalenceCase{"amp", Scheme::kCombined, 3, 0.05}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return std::string(info.param.circuit) + "_" + SchemeName(info.param.scheme) + "_t" +
             std::to_string(info.param.threads);
    });

TEST(SerialParity, PipelineSerialSchemeMatchesEngineStepSequence) {
  // The serial engine and the pipeline driver's kSerial scheme share ONE
  // stop-time/breakpoint clipping rule (engine::ClipStepToSchedule), so
  // their step sequences must be identical — exactly, not within tolerance.
  const auto gen = circuits::MakeRcLadder(12);
  engine::MnaStructure mna(*gen.circuit);

  const auto serial = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  WavePipeOptions options;
  options.scheme = Scheme::kSerial;
  const auto piped = RunWavePipe(*gen.circuit, mna, gen.spec, options);

  ASSERT_TRUE(serial.completed);
  ASSERT_TRUE(piped.completed);
  EXPECT_EQ(serial.stats.steps_accepted, piped.stats.steps_accepted);
  ASSERT_EQ(serial.trace.num_samples(), piped.trace.num_samples());
  for (std::size_t i = 0; i < serial.trace.num_samples(); ++i) {
    EXPECT_DOUBLE_EQ(serial.trace.time(i), piped.trace.time(i)) << i;
    EXPECT_DOUBLE_EQ(serial.trace.value(i, 0), piped.trace.value(i, 0)) << i;
  }
}

TEST(Determinism, SameSeedSameSchedule) {
  // Two runs of the same configuration must make identical scheduling
  // decisions (rounds, accepted steps, speculation outcomes).
  const auto gen = circuits::MakeInverterChain(4);
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  const auto r1 = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  const auto r2 = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  EXPECT_EQ(r1.sched.rounds, r2.sched.rounds);
  EXPECT_EQ(r1.stats.steps_accepted, r2.stats.steps_accepted);
  EXPECT_EQ(r1.sched.speculative_accepted, r2.sched.speculative_accepted);
  EXPECT_EQ(r1.ledger.size(), r2.ledger.size());
  ASSERT_EQ(r1.trace.num_samples(), r2.trace.num_samples());
  for (std::size_t i = 0; i < r1.trace.num_samples(); ++i) {
    EXPECT_DOUBLE_EQ(r1.trace.time(i), r2.trace.time(i));
    EXPECT_DOUBLE_EQ(r1.trace.value(i, 0), r2.trace.value(i, 0));
  }
}

TEST(Combined, UsesBothMechanisms) {
  const auto gen = circuits::MakeRcLadder(40);
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 3;
  const auto res = RunWavePipe(*gen.circuit, mna, gen.spec, options);
  EXPECT_GT(res.sched.backward_solves, 0u);
  EXPECT_GT(res.sched.speculative_solves, 0u);
}

TEST(Combined, UpgradesThreadCountBelowThree) {
  const auto gen = circuits::MakeRcLadder(10);
  engine::MnaStructure mna(*gen.circuit);
  WavePipeOptions options;
  options.scheme = Scheme::kCombined;
  options.threads = 2;  // driver bumps to 3
  EXPECT_NO_THROW(RunWavePipe(*gen.circuit, mna, gen.spec, options));
}

TEST(SchemeNames, Stable) {
  EXPECT_STREQ(SchemeName(Scheme::kSerial), "serial");
  EXPECT_STREQ(SchemeName(Scheme::kBackward), "bwp");
  EXPECT_STREQ(SchemeName(Scheme::kForward), "fwp");
  EXPECT_STREQ(SchemeName(Scheme::kCombined), "combined");
}

}  // namespace
}  // namespace wavepipe::pipeline
