#include "sparse/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/csc.hpp"
#include "sparse/triplet.hpp"

namespace wavepipe::sparse {
namespace {

TEST(VectorOps, Dot) {
  std::vector<double> x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(Dot(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(VectorOps, AxpyAndScale) {
  std::vector<double> x{1, 1}, y{1, 2};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  Scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 1.5);
}

TEST(VectorOps, Norms) {
  std::vector<double> x{3, -4};
  EXPECT_DOUBLE_EQ(NormInf(x), 4.0);
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(std::vector<double>{}), 0.0);
}

TEST(VectorOps, MaxAbsDiff) {
  std::vector<double> a{1, 2, 3}, b{1, 5, 2};
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 3.0);
}

TEST(VectorOps, Residual) {
  TripletBuilder t(2, 2);
  t.Add(0, 0, 2.0);
  t.Add(1, 1, 3.0);
  const CscMatrix a = t.ToCsc();
  std::vector<double> x{1, 1}, b{5, 5}, r(2);
  Residual(a, x, b, r);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
}

TEST(VectorOps, WrmsNorm) {
  std::vector<double> x{1e-3, 2e-3}, w{1e-3, 1e-3};
  // errors 1 and 2 -> sqrt((1+4)/2)
  EXPECT_NEAR(WrmsNorm(x, w), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(WrmsNorm(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(VectorOps, BuildErrorWeights) {
  std::vector<double> ref{-2.0, 0.0};
  std::vector<double> abstol{1e-6, 1e-6};
  std::vector<double> w(2);
  BuildErrorWeights(ref, 1e-3, abstol, w);
  EXPECT_DOUBLE_EQ(w[0], 2e-3 + 1e-6);
  EXPECT_DOUBLE_EQ(w[1], 1e-6);
}

}  // namespace
}  // namespace wavepipe::sparse
