#include "sparse/dense.hpp"

#include <gtest/gtest.h>

#include "sparse/csc.hpp"
#include "sparse/triplet.hpp"
#include "util/error.hpp"

namespace wavepipe::sparse {
namespace {

TEST(Dense, SolveKnownSystem) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 3;
  DenseLu lu(a);
  std::vector<double> b{3, 4};  // solution x = {1, 1}
  lu.Solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(Dense, PivotingHandlesZeroDiagonal) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  DenseLu lu(a);  // would fail without row pivoting
  std::vector<double> b{2, 3};
  lu.Solve(b);
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Dense, SingularThrows) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  EXPECT_THROW(DenseLu lu(a), SingularMatrixError);
}

TEST(Dense, FromCscSumsEntries) {
  TripletBuilder t(2, 2);
  t.Add(0, 0, 1.0);
  t.Add(0, 0, 2.0);
  t.Add(1, 1, 5.0);
  const DenseMatrix d = DenseMatrix::FromCsc(t.ToCsc());
  EXPECT_DOUBLE_EQ(d.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.At(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d.At(0, 1), 0.0);
}

TEST(Dense, Multiply) {
  DenseMatrix a(2, 3);
  a.At(0, 0) = 1;
  a.At(0, 2) = 2;
  a.At(1, 1) = 3;
  std::vector<double> x{1, 1, 1}, y(2);
  a.Multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

}  // namespace
}  // namespace wavepipe::sparse
