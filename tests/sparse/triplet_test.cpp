#include "sparse/triplet.hpp"

#include <gtest/gtest.h>

#include "sparse/csc.hpp"

namespace wavepipe::sparse {
namespace {

TEST(Triplet, BuildsSortedCsc) {
  TripletBuilder b(3, 3);
  b.Add(2, 0, 3.0);
  b.Add(0, 0, 1.0);
  b.Add(1, 2, 5.0);
  b.Add(0, 1, 2.0);
  const CscMatrix m = b.ToCsc();
  EXPECT_EQ(m.num_nonzeros(), 4u);
  // Column 0: rows {0, 2} sorted.
  EXPECT_EQ(m.row_of(m.col_begin(0)), 0);
  EXPECT_EQ(m.row_of(m.col_begin(0) + 1), 2);
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(2, 0)), 3.0);
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(1, 2)), 5.0);
}

TEST(Triplet, SumsDuplicates) {
  TripletBuilder b(2, 2);
  b.Add(0, 0, 1.0);
  b.Add(0, 0, 2.5);
  b.Add(1, 1, -1.0);
  b.Add(1, 1, 1.0);
  const CscMatrix m = b.ToCsc();
  EXPECT_EQ(m.num_nonzeros(), 2u);  // duplicates merged
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(0, 0)), 3.5);
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(1, 1)), 0.0);
}

TEST(Triplet, EmptyMatrix) {
  TripletBuilder b(4, 4);
  const CscMatrix m = b.ToCsc();
  EXPECT_EQ(m.num_nonzeros(), 0u);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.FindEntry(1, 1), -1);
}

TEST(Triplet, EmptyColumnsHandled) {
  TripletBuilder b(3, 3);
  b.Add(0, 2, 1.0);  // only last column populated
  const CscMatrix m = b.ToCsc();
  EXPECT_EQ(m.col_begin(0), m.col_end(0));
  EXPECT_EQ(m.col_begin(1), m.col_end(1));
  EXPECT_EQ(m.col_end(2) - m.col_begin(2), 1);
}

TEST(Triplet, OutOfRangeAsserts) {
  TripletBuilder b(2, 2);
  EXPECT_THROW(b.Add(2, 0, 1.0), std::logic_error);
  EXPECT_THROW(b.Add(0, -1, 1.0), std::logic_error);
}

TEST(Triplet, ClearResets) {
  TripletBuilder b(2, 2);
  b.Add(0, 0, 1.0);
  b.Clear();
  EXPECT_EQ(b.num_entries(), 0u);
  EXPECT_EQ(b.ToCsc().num_nonzeros(), 0u);
}

TEST(Triplet, PatternEntriesSurviveAtZero) {
  TripletBuilder b(2, 2);
  b.AddPattern(0, 1);
  const CscMatrix m = b.ToCsc();
  ASSERT_GE(m.FindEntry(0, 1), 0);
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(0, 1)), 0.0);
}

}  // namespace
}  // namespace wavepipe::sparse
