// Level-scheduled parallel LU (RefactorParallel / SolveParallel) vs the
// serial kernels: bit-identity across the benchmark-circuit Jacobians and
// pool sizes, pivot-failure abort, and concurrent use under TSan.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "circuits/generators.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"
#include "sparse/lu.hpp"
#include "sparse/triplet.hpp"
#include "sparse/vector_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wavepipe::sparse {
namespace {

engine::NewtonInputs TransientInputs() {
  engine::NewtonInputs inputs;
  inputs.time = 1e-9;
  inputs.a0 = 2e9;
  inputs.transient = true;
  inputs.gmin = 1e-12;
  return inputs;
}

void SeedIterate(engine::SolveContext& ctx, double phase) {
  for (std::size_t i = 0; i < ctx.x.size(); ++i) {
    ctx.x[i] = 0.7 * std::sin(0.37 * static_cast<double>(i) + phase);
  }
}

std::vector<double> RandomVector(int n, util::Rng& rng) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = rng.Uniform(-2, 2);
  return v;
}

CscMatrix Tridiagonal(int n, double diag = 2.0, double off = -1.0) {
  TripletBuilder t(n, n);
  for (int i = 0; i < n; ++i) {
    t.Add(i, i, diag);
    if (i > 0) t.Add(i, i - 1, off);
    if (i + 1 < n) t.Add(i, i + 1, off);
  }
  return t.ToCsc();
}

SparseLu::Options ForceLevels() {
  SparseLu::Options opts;
  opts.force_level_schedule = true;  // bypass the profitability fallback
  return opts;
}

// Bit-identity over every benchmark-suite Jacobian at pool sizes 1/2/4:
// factor the circuit's Jacobian, then refactor both instances against the
// Jacobian of a DIFFERENT iterate (same pattern, new values) and require the
// solve outputs to agree to the last bit.
TEST(SparseLuParallel, RefactorAndSolveBitIdenticalAcrossSuite) {
  auto suite = circuits::MakeBenchmarkSuite();
  util::Rng rng(2024);
  for (unsigned pool_threads : {1u, 2u, 4u}) {
    util::ThreadPool pool(pool_threads);
    for (const auto& gen : suite) {
      const engine::MnaStructure mna(*gen.circuit);
      engine::SolveContext ctx(*gen.circuit, mna);
      const engine::NewtonInputs inputs = TransientInputs();

      SeedIterate(ctx, 0.2);
      engine::EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);

      SparseLu serial(ForceLevels());
      SparseLu parallel(ForceLevels());
      serial.Factor(ctx.matrix);
      parallel.Factor(ctx.matrix);

      // New values, same pattern.
      SeedIterate(ctx, 1.4);
      engine::EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);

      const bool ok_serial = serial.Refactor(ctx.matrix);
      const bool ok_parallel = parallel.RefactorParallel(ctx.matrix, &pool);
      ASSERT_EQ(ok_serial, ok_parallel) << gen.name << " pool=" << pool_threads;
      if (!ok_serial) continue;  // both degraded identically; nothing to solve

      const int n = mna.dimension();
      const std::vector<double> b = RandomVector(n, rng);
      std::vector<double> x_serial = b, x_parallel = b, ws1, ws2;
      serial.Solve(x_serial, ws1);
      parallel.SolveParallel(x_parallel, ws2, &pool);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(x_serial[i], x_parallel[i])
            << gen.name << " pool=" << pool_threads << " row " << i;
      }

      // SolveParallel on the SERIAL instance too: same factors, same bits.
      std::vector<double> x_cross = b;
      serial.SolveParallel(x_cross, ws1, &pool);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(x_serial[i], x_cross[i]) << gen.name << " row " << i;
      }
    }
  }
}

// The cost-model path (no force flag): results must still be bit-identical
// whichever kernel the model picks, and the stats must account for the
// choice.
TEST(SparseLuParallel, CostModelFallbackKeepsResultsIdentical) {
  util::ThreadPool pool(2);
  const CscMatrix a = Tridiagonal(200);
  SparseLu serial;  // default options: model decides
  SparseLu parallel;
  serial.Factor(a);
  parallel.Factor(a);
  ASSERT_TRUE(serial.Refactor(a));
  ASSERT_TRUE(parallel.RefactorParallel(a, &pool));

  util::Rng rng(7);
  const std::vector<double> b = RandomVector(200, rng);
  std::vector<double> x_serial = b, x_parallel = b, ws1, ws2;
  serial.Solve(x_serial, ws1);
  parallel.SolveParallel(x_parallel, ws2, &pool);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(x_serial[i], x_parallel[i]) << i;

  // A tridiagonal chain has one column per level: the model must refuse it.
  EXPECT_FALSE(parallel.LevelScheduleProfitable(2));
  EXPECT_EQ(parallel.stats().refactor_fallback_count, 1u);
  EXPECT_EQ(parallel.stats().parallel_refactor_count, 0u);
}

// A degraded pivot mid-schedule: RefactorParallel must return false, leave
// the object unfactored, and FactorOrRefactor must recover with a full
// factorization.
TEST(SparseLuParallel, PivotFailureAbortsAndRecovers) {
  // Diagonal pattern: every column is level 0, so the failing column aborts
  // sibling chunks of the SAME level via the atomic flag.
  const int n = 64;
  TripletBuilder t(n, n);
  for (int i = 0; i < n; ++i) t.Add(i, i, 1.0 + i);
  const CscMatrix good = t.ToCsc();

  util::ThreadPool pool(4);
  SparseLu lu(ForceLevels());
  lu.Factor(good);

  CscMatrix bad = good;
  bad.mutable_values()[40] = 0.0;  // singular pivot in column 40
  EXPECT_FALSE(lu.RefactorParallel(bad, &pool));
  EXPECT_FALSE(lu.factored());

  // Serial Refactor agrees on the same matrix after re-factoring the good one.
  lu.Factor(good);
  EXPECT_FALSE(lu.Refactor(bad));
  EXPECT_FALSE(lu.factored());

  // FactorOrRefactor falls back to Factor() and must throw on the singular
  // matrix — and succeed again on the good one.
  EXPECT_THROW(lu.FactorOrRefactor(bad, &pool), SingularMatrixError);
  lu.FactorOrRefactor(good, &pool);
  EXPECT_TRUE(lu.factored());
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), ws;
  lu.Solve(x, ws);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0 / (1.0 + i), 1e-12);
}

// Pivot degradation in a deeper schedule (chain): the abort propagates out
// of a level > 0.
TEST(SparseLuParallel, PivotFailureInDeepSchedule) {
  const int n = 50;
  const CscMatrix good = Tridiagonal(n);
  util::ThreadPool pool(2);
  SparseLu serial(ForceLevels());
  SparseLu parallel(ForceLevels());
  serial.Factor(good);
  parallel.Factor(good);

  // Zeroing a middle diagonal entry makes that column's reused pivot tiny
  // relative to its off-diagonals after the left-looking update.
  CscMatrix bad = good;
  auto values = bad.mutable_values();
  for (int k = bad.col_begin(n / 2); k < bad.col_end(n / 2); ++k) {
    if (bad.row_of(k) == n / 2) values[k] = 1e-14;
  }
  const bool ok_serial = serial.Refactor(bad);
  const bool ok_parallel = parallel.RefactorParallel(bad, &pool);
  EXPECT_EQ(ok_serial, ok_parallel);
}

// Several threads each drive their OWN SparseLu through refactor+solve
// cycles while SHARING one worker pool — the WavePipe driver's shape
// (per-context LU, shared intra-solve pool).  TSan-checked via the suite's
// tsan label.
TEST(SparseLuParallel, ConcurrentRefactorSolveSharedPool) {
  util::ThreadPool pool(4);
  const CscMatrix base = Tridiagonal(120);

  auto worker = [&pool, &base](unsigned seed) {
    SparseLu lu(ForceLevels());
    lu.Factor(base);
    util::Rng rng(seed);
    for (int round = 0; round < 20; ++round) {
      CscMatrix m = base;
      auto values = m.mutable_values();
      for (double& v : values) v += 0.01 * rng.Uniform(-1, 1);
      ASSERT_TRUE(lu.RefactorParallel(m, &pool));
      std::vector<double> x(120, 1.0), ws;
      lu.SolveParallel(x, ws, &pool);
      std::vector<double> r(120, 1.0);
      m.MultiplyAccumulate(x, r, -1.0);
      ASSERT_LT(NormInf(r), 1e-10);
    }
  };

  std::vector<std::thread> threads;
  for (unsigned s = 1; s <= 3; ++s) threads.emplace_back(worker, 1000 + s);
  for (auto& t : threads) t.join();
}

// The ordering cache: a second Factor() on the same pattern must reuse the
// fill-reducing ordering; a different pattern must not.
TEST(SparseLuParallel, OrderingCacheReusedOnSamePattern) {
  util::Rng rng(5);
  const CscMatrix a = Tridiagonal(80);
  SparseLu lu;
  lu.Factor(a);
  EXPECT_EQ(lu.stats().ordering_reuse_count, 0u);
  lu.Factor(a);
  EXPECT_EQ(lu.stats().ordering_reuse_count, 1u);

  const std::vector<double> b = RandomVector(80, rng);
  std::vector<double> x = b, ws;
  lu.Solve(x, ws);
  std::vector<double> r = b;
  a.MultiplyAccumulate(x, r, -1.0);
  EXPECT_LT(NormInf(r), 1e-12);

  const CscMatrix other = Tridiagonal(81);
  lu.Factor(other);
  EXPECT_EQ(lu.stats().ordering_reuse_count, 1u);  // new pattern: no reuse
  lu.Factor(other);
  EXPECT_EQ(lu.stats().ordering_reuse_count, 2u);
}

// Level-scheduling telemetry lands in Stats after Factor().
TEST(SparseLuParallel, StatsExposeLevelSchedules) {
  const CscMatrix a = Tridiagonal(32);
  SparseLu lu;
  lu.Factor(a);
  const SparseLu::Stats stats = lu.stats();
  // A tridiagonal chain factors column-by-column: n levels of width 1.
  EXPECT_EQ(stats.factor_levels, 32);
  EXPECT_EQ(stats.factor_widest_level, 1u);
  EXPECT_GT(stats.solve_fwd_levels, 0);
  EXPECT_GT(stats.solve_bwd_levels, 0);
  EXPECT_GT(stats.modeled_refactor_speedup2, 0.0);
  EXPECT_LE(stats.modeled_refactor_speedup2, 1.0);  // chains cannot speed up
  EXPECT_EQ(lu.factor_level_schedule().num_nodes(), 32u);
  EXPECT_DOUBLE_EQ(lu.ModelRefactorMakespanFlops(1), lu.serial_refactor_flops());
}

// The caller-workspace Refine overload improves (or at least does not
// degrade) the residual without allocating in the caller's loop.
TEST(SparseLuParallel, RefineWithCallerWorkspace) {
  util::Rng rng(11);
  const CscMatrix a = Tridiagonal(60, 2.0, -1.0);
  SparseLu lu;
  lu.Factor(a);
  const std::vector<double> b = RandomVector(60, rng);
  std::vector<double> x = b, ws;
  lu.Solve(x, ws);

  std::vector<double> residual, solve_ws;
  const double correction = lu.Refine(a, b, x, residual, solve_ws);
  EXPECT_GE(correction, 0.0);
  std::vector<double> r = b;
  a.MultiplyAccumulate(x, r, -1.0);
  EXPECT_LT(NormInf(r), 1e-11);

  // Convenience overload (thread-local scratch) matches.
  std::vector<double> x2 = b;
  lu.Solve(x2);
  lu.Refine(a, b, x2);
  std::vector<double> r2 = b;
  a.MultiplyAccumulate(x2, r2, -1.0);
  EXPECT_LT(NormInf(r2), 1e-11);
}

}  // namespace
}  // namespace wavepipe::sparse
