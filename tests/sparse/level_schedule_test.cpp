#include "sparse/level_schedule.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wavepipe::sparse {
namespace {

TEST(LevelSchedule, BucketsNodesByLevelAscendingIds) {
  // levels: node0->0, node1->1, node2->0, node3->2, node4->1
  const std::vector<int> level_of{0, 1, 0, 2, 1};
  const LevelSchedule s = BuildLevelSchedule(level_of);
  ASSERT_EQ(s.num_levels(), 3);
  EXPECT_EQ(s.num_nodes(), 5u);
  ASSERT_EQ(s.Level(0).size(), 2u);
  EXPECT_EQ(s.Level(0)[0], 0);
  EXPECT_EQ(s.Level(0)[1], 2);
  ASSERT_EQ(s.Level(1).size(), 2u);
  EXPECT_EQ(s.Level(1)[0], 1);
  EXPECT_EQ(s.Level(1)[1], 4);
  ASSERT_EQ(s.Level(2).size(), 1u);
  EXPECT_EQ(s.Level(2)[0], 3);
  EXPECT_EQ(s.widest_level(), 2u);
}

TEST(LevelSchedule, EmptyInput) {
  const LevelSchedule s = BuildLevelSchedule(std::vector<int>{});
  EXPECT_EQ(s.num_levels(), 0);
  EXPECT_EQ(s.num_nodes(), 0u);
  EXPECT_EQ(s.widest_level(), 0u);
}

TEST(LevelSchedule, MakespanAtOneThreadEqualsSerialSum) {
  const std::vector<int> level_of{0, 0, 1, 1, 2};
  const std::vector<double> cost{3.0, 5.0, 2.0, 2.0, 7.0};
  const LevelSchedule s = BuildLevelSchedule(level_of);
  // 1 thread: no barrier charge, per level max(sum/1, heaviest) == sum.
  EXPECT_DOUBLE_EQ(ModelLevelMakespan(s, cost, 1, 100.0), 19.0);
}

TEST(LevelSchedule, MakespanRespectsHeaviestNodeAndBarriers) {
  // One wide level: sum = 12, heaviest = 10.  At 4 threads sum/k = 3 but the
  // heaviest node pins the level at 10; plus one barrier.
  const std::vector<int> level_of{0, 0, 0};
  const std::vector<double> cost{10.0, 1.0, 1.0};
  const LevelSchedule s = BuildLevelSchedule(level_of);
  EXPECT_DOUBLE_EQ(ModelLevelMakespan(s, cost, 4, 5.0), 15.0);
}

}  // namespace
}  // namespace wavepipe::sparse
