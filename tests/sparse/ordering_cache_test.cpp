// Shared fill-reducing-ordering cache (sparse/ordering_cache.hpp): keyed
// hit/miss bookkeeping, first-insert-wins publication, and concurrent reuse
// by many SparseLu instances (the domain-decomposition piece-factor shape) —
// the latter is the suite's ThreadSanitizer target.
#include "sparse/ordering_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "sparse/lu.hpp"
#include "sparse/triplet.hpp"

namespace wavepipe::sparse {
namespace {

/// Tridiagonal test system; `diag` varies the values, never the pattern.
CscMatrix MakeChain(int n, double diag) {
  TripletBuilder builder(n, n);
  for (int i = 0; i < n; ++i) {
    builder.Add(i, i, diag);
    if (i + 1 < n) {
      builder.Add(i, i + 1, -1.0);
      builder.Add(i + 1, i, -1.0);
    }
  }
  return builder.ToCsc();
}

/// Pentadiagonal: same size as MakeChain but a different pattern/key.
CscMatrix MakeWideChain(int n, double diag) {
  TripletBuilder builder(n, n);
  for (int i = 0; i < n; ++i) {
    builder.Add(i, i, diag);
    if (i + 2 < n) {
      builder.Add(i, i + 2, -0.5);
      builder.Add(i + 2, i, -0.5);
    }
  }
  return builder.ToCsc();
}

TEST(OrderingCacheTest, EqualPatternsShareOneOrdering) {
  OrderingCache cache;
  const CscMatrix a = MakeChain(40, 4.0);
  const CscMatrix b = MakeChain(40, 7.5);  // same pattern, other values

  SparseLu lu_a, lu_b;
  lu_a.set_ordering_cache(&cache);
  lu_b.set_ordering_cache(&cache);
  lu_a.Factor(a);
  lu_b.Factor(b);

  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(cache.hits(), 1u);
  EXPECT_GE(cache.misses(), 1u);

  // The shared ordering must not change results: compare against a
  // cache-free factorization of the same matrix.
  SparseLu plain;
  plain.Factor(b);
  std::vector<double> x_cached(40, 1.0), x_plain(40, 1.0), ws;
  lu_b.Solve(x_cached, ws);
  plain.Solve(x_plain, ws);
  EXPECT_EQ(x_cached, x_plain);
}

TEST(OrderingCacheTest, DistinctPatternsGetDistinctEntries) {
  OrderingCache cache;
  SparseLu lu_a, lu_b;
  lu_a.set_ordering_cache(&cache);
  lu_b.set_ordering_cache(&cache);
  lu_a.Factor(MakeChain(30, 4.0));
  lu_b.Factor(MakeWideChain(30, 4.0));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(OrderingCacheTest, InsertIsFirstWins) {
  OrderingCache cache;
  OrderingCache::Key key;
  key.n = 3;
  key.nnz = 3;
  key.pattern_hash = 42;
  const auto first = cache.Insert(key, {0, 1, 2});
  const auto second = cache.Insert(key, {2, 1, 0});
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(*second, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(OrderingCacheTest, PatternHashSeparatesSizes) {
  // Regression: PatternHash once digested only col_ptr/row_idx, so every
  // empty n x n pattern collapsed to (nearly) one digest and a pattern padded
  // with empty trailing columns matched its smaller prefix.  The dimensions
  // now participate in the hash.
  EXPECT_NE(PatternHash(TripletBuilder(2, 2).ToCsc()),
            PatternHash(TripletBuilder(3, 3).ToCsc()));

  // A chain pattern vs the same chain embedded in a larger matrix with empty
  // trailing columns: identical col_ptr prefix + identical row_idx, different
  // size — the classic reduced-subnet shape (many small blocks of one family).
  const CscMatrix chain = MakeChain(30, 4.0);
  TripletBuilder padded_builder(40, 40);
  for (int i = 0; i < 30; ++i) {
    padded_builder.Add(i, i, 4.0);
    if (i + 1 < 30) {
      padded_builder.Add(i, i + 1, -1.0);
      padded_builder.Add(i + 1, i, -1.0);
    }
  }
  EXPECT_NE(PatternHash(chain), PatternHash(padded_builder.ToCsc()));
}

TEST(OrderingCacheTest, CrossSizePatternsNeverShareAnEntry) {
  // Even under a forced hash collision the Key compares n and nnz; and with
  // the fixed hash, same-family different-size chains get distinct digests,
  // so each size caches its own ordering of the right length.
  OrderingCache cache;
  SparseLu lu_small, lu_large;
  lu_small.set_ordering_cache(&cache);
  lu_large.set_ordering_cache(&cache);
  lu_small.Factor(MakeChain(20, 4.0));
  lu_large.Factor(MakeChain(32, 4.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 0u);

  // Solves on both stay correct (an ordering of the wrong length would have
  // been an out-of-bounds permutation before it got this far).
  std::vector<double> x_small(20, 1.0), x_large(32, 1.0), ws;
  lu_small.Solve(x_small, ws);
  lu_large.Solve(x_large, ws);
  SparseLu plain_small, plain_large;
  plain_small.Factor(MakeChain(20, 4.0));
  plain_large.Factor(MakeChain(32, 4.0));
  std::vector<double> y_small(20, 1.0), y_large(32, 1.0);
  plain_small.Solve(y_small, ws);
  plain_large.Solve(y_large, ws);
  EXPECT_EQ(x_small, y_small);
  EXPECT_EQ(x_large, y_large);
}

TEST(OrderingCacheTest, ConcurrentReuseAcrossManyFactorsIsSafe) {
  // The BBD piece-factor shape: many SparseLu instances, one shared cache,
  // two recurring patterns, all factoring and solving at once.
  OrderingCache cache;
  constexpr int kThreads = 8;
  constexpr int kRounds = 12;
  constexpr int kN = 48;

  // Reference solutions, computed serially without the cache.
  std::vector<std::vector<double>> expected;
  for (int pattern = 0; pattern < 2; ++pattern) {
    const CscMatrix m =
        pattern ? MakeWideChain(kN, 5.0) : MakeChain(kN, 5.0);
    SparseLu lu;
    lu.Factor(m);
    std::vector<double> x(kN, 1.0), ws;
    lu.Solve(x, ws);
    expected.push_back(std::move(x));
  }

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int pattern = (t + round) % 2;
        const CscMatrix m =
            pattern ? MakeWideChain(kN, 5.0) : MakeChain(kN, 5.0);
        SparseLu lu;
        lu.set_ordering_cache(&cache);
        lu.Factor(m);
        std::vector<double> x(kN, 1.0), ws;
        lu.Solve(x, ws);
        if (x != expected[static_cast<std::size_t>(pattern)]) ++mismatches[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  // Both patterns cached exactly once; everything after the first factor of
  // each pattern was a hit.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads * kRounds));
  // A miss can only happen before the first Insert of a pattern lands, so at
  // most kThreads threads can race into a miss per pattern.
  EXPECT_LE(cache.misses(), static_cast<std::uint64_t>(2 * kThreads));
}

}  // namespace
}  // namespace wavepipe::sparse
