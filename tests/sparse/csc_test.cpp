#include "sparse/csc.hpp"

#include <gtest/gtest.h>

#include "sparse/triplet.hpp"

namespace wavepipe::sparse {
namespace {

CscMatrix Make2x2(double a, double b, double c, double d) {
  TripletBuilder t(2, 2);
  if (a != 0) t.Add(0, 0, a);
  if (b != 0) t.Add(0, 1, b);
  if (c != 0) t.Add(1, 0, c);
  if (d != 0) t.Add(1, 1, d);
  return t.ToCsc();
}

TEST(Csc, Identity) {
  const CscMatrix eye = CscMatrix::Identity(3);
  EXPECT_EQ(eye.num_nonzeros(), 3u);
  std::vector<double> x{1, 2, 3}, y(3);
  eye.Multiply(x, y);
  EXPECT_EQ(y, x);
}

TEST(Csc, Multiply) {
  const CscMatrix m = Make2x2(1, 2, 3, 4);
  std::vector<double> x{1, 1}, y(2);
  m.Multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Csc, MultiplyAccumulateWithAlpha) {
  const CscMatrix m = Make2x2(1, 0, 0, 1);
  std::vector<double> x{2, 3}, y{10, 10};
  m.MultiplyAccumulate(x, y, -1.0);
  EXPECT_DOUBLE_EQ(y[0], 8.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Csc, MultiplyTranspose) {
  const CscMatrix m = Make2x2(1, 2, 3, 4);
  std::vector<double> x{1, 1}, y(2);
  m.MultiplyTranspose(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);  // col 0: 1 + 3
  EXPECT_DOUBLE_EQ(y[1], 6.0);  // col 1: 2 + 4
}

TEST(Csc, TransposeRoundTrip) {
  const CscMatrix m = Make2x2(1, 2, 0, 4);
  const CscMatrix mt = m.Transpose();
  EXPECT_DOUBLE_EQ(mt.value_of(mt.FindEntry(1, 0)), 2.0);
  EXPECT_EQ(mt.FindEntry(0, 1), -1);
  const CscMatrix mtt = mt.Transpose();
  EXPECT_TRUE(m.SamePattern(mtt));
}

TEST(Csc, FindEntry) {
  const CscMatrix m = Make2x2(1, 0, 3, 0);
  EXPECT_GE(m.FindEntry(0, 0), 0);
  EXPECT_GE(m.FindEntry(1, 0), 0);
  EXPECT_EQ(m.FindEntry(0, 1), -1);
  EXPECT_EQ(m.FindEntry(1, 1), -1);
}

TEST(Csc, ZeroValuesKeepsPattern) {
  CscMatrix m = Make2x2(1, 2, 3, 4);
  m.ZeroValues();
  EXPECT_EQ(m.num_nonzeros(), 4u);
  EXPECT_DOUBLE_EQ(m.value_of(m.FindEntry(1, 1)), 0.0);
}

TEST(Csc, SymmetrizedPattern) {
  const CscMatrix m = Make2x2(1, 2, 0, 4);  // asymmetric: (0,1) w/o (1,0)
  const CscMatrix s = m.SymmetrizedPattern();
  EXPECT_GE(s.FindEntry(1, 0), 0);
  EXPECT_GE(s.FindEntry(0, 1), 0);
}

TEST(Csc, ColumnMaxAbs) {
  const CscMatrix m = Make2x2(1, 2, -3, 4);
  EXPECT_DOUBLE_EQ(m.ColumnMaxAbs(0), 3.0);
  EXPECT_DOUBLE_EQ(m.ColumnMaxAbs(1), 4.0);
}

TEST(Csc, SamePattern) {
  const CscMatrix a = Make2x2(1, 2, 3, 4);
  const CscMatrix b = Make2x2(5, 6, 7, 8);
  const CscMatrix c = Make2x2(1, 0, 3, 4);
  EXPECT_TRUE(a.SamePattern(b));
  EXPECT_FALSE(a.SamePattern(c));
}

TEST(Csc, ToDenseString) {
  const CscMatrix m = Make2x2(1, 0, 0, 2);
  const std::string s = m.ToDenseString();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

}  // namespace
}  // namespace wavepipe::sparse
