#include "sparse/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "sparse/dense.hpp"
#include "sparse/triplet.hpp"
#include "sparse/vector_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavepipe::sparse {
namespace {

CscMatrix Tridiagonal(int n, double diag = 2.0, double off = -1.0) {
  TripletBuilder t(n, n);
  for (int i = 0; i < n; ++i) {
    t.Add(i, i, diag);
    if (i > 0) t.Add(i, i - 1, off);
    if (i + 1 < n) t.Add(i, i + 1, off);
  }
  return t.ToCsc();
}

/// Random diagonally-bumped sparse matrix with a guaranteed full diagonal.
CscMatrix RandomSparse(int n, double density, util::Rng& rng, double diag_boost = 4.0) {
  TripletBuilder t(n, n);
  for (int i = 0; i < n; ++i) t.Add(i, i, diag_boost + rng.Uniform(-1, 1));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r != c && rng.Bernoulli(density)) t.Add(r, c, rng.Uniform(-1, 1));
    }
  }
  return t.ToCsc();
}

std::vector<double> RandomVector(int n, util::Rng& rng) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = rng.Uniform(-2, 2);
  return v;
}

double SolveResidualInf(const CscMatrix& a, const std::vector<double>& x,
                        const std::vector<double>& b) {
  std::vector<double> r(b);
  a.MultiplyAccumulate(x, r, -1.0);
  return NormInf(r);
}

TEST(SparseLu, SolvesTridiagonal) {
  const CscMatrix a = Tridiagonal(10);
  SparseLu lu;
  lu.Factor(a);
  std::vector<double> b(10, 1.0);
  std::vector<double> x = b;
  lu.Solve(x);
  EXPECT_LT(SolveResidualInf(a, x, b), 1e-12);
}

TEST(SparseLu, MatchesDenseReference) {
  util::Rng rng(99);
  const CscMatrix a = RandomSparse(15, 0.3, rng);
  const std::vector<double> b = RandomVector(15, rng);

  SparseLu lu;
  lu.Factor(a);
  std::vector<double> x_sparse = b;
  lu.Solve(x_sparse);

  DenseLu dense(DenseMatrix::FromCsc(a));
  std::vector<double> x_dense = b;
  dense.Solve(x_dense);

  for (int i = 0; i < 15; ++i) EXPECT_NEAR(x_sparse[i], x_dense[i], 1e-9) << i;
}

TEST(SparseLu, RequiresPivotingOffDiagonal) {
  // [[0, 1], [1, 0]] has a structurally zero diagonal.
  TripletBuilder t(2, 2);
  t.Add(0, 1, 1.0);
  t.Add(1, 0, 1.0);
  const CscMatrix a = t.ToCsc();
  SparseLu lu;
  lu.Factor(a);
  std::vector<double> x{5.0, 7.0};
  lu.Solve(x);
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(SparseLu, SingularThrowsWithColumn) {
  TripletBuilder t(3, 3);
  t.Add(0, 0, 1.0);
  t.Add(1, 1, 1.0);
  // Column 2 empty -> structurally singular.
  const CscMatrix a = t.ToCsc();
  EXPECT_THROW(
      {
        SparseLu lu;
        lu.Factor(a);
      },
      SingularMatrixError);
}

TEST(SparseLu, NumericallySingularThrows) {
  TripletBuilder t(2, 2);
  t.Add(0, 0, 1.0);
  t.Add(0, 1, 1.0);
  t.Add(1, 0, 1.0);
  t.Add(1, 1, 1.0);  // rank 1
  SparseLu lu;
  EXPECT_THROW(lu.Factor(t.ToCsc()), SingularMatrixError);
}

TEST(SparseLu, RefactorMatchesFreshFactor) {
  util::Rng rng(7);
  CscMatrix a = RandomSparse(20, 0.2, rng);
  SparseLu lu;
  lu.Factor(a);

  // Same pattern, new values.
  CscMatrix a2 = a;
  auto values = a2.mutable_values();
  for (double& v : values) v *= rng.Uniform(0.5, 1.5);

  ASSERT_TRUE(lu.Refactor(a2));
  const std::vector<double> b = RandomVector(20, rng);
  std::vector<double> x = b;
  lu.Solve(x);
  EXPECT_LT(SolveResidualInf(a2, x, b), 1e-10);
  EXPECT_EQ(lu.stats().refactor_count, 1u);
  EXPECT_EQ(lu.stats().factor_count, 1u);
}

TEST(SparseLu, RefactorDetectsPivotDegradation) {
  // Factor a well-conditioned matrix, then refactor with values that make
  // the reused pivot catastrophically small.
  TripletBuilder t(2, 2);
  t.Add(0, 0, 4.0);
  t.Add(0, 1, 1.0);
  t.Add(1, 0, 1.0);
  t.Add(1, 1, 4.0);
  CscMatrix a = t.ToCsc();
  SparseLu lu;
  lu.Factor(a);

  CscMatrix bad = a;
  auto values = bad.mutable_values();
  values[bad.FindEntry(0, 0)] = 1e-16;  // pivot (0,0) collapses
  values[bad.FindEntry(1, 0)] = 1.0;
  EXPECT_FALSE(lu.Refactor(bad));
  EXPECT_FALSE(lu.factored());

  // FactorOrRefactor must recover by running a full factorization.
  lu.FactorOrRefactor(bad);
  EXPECT_TRUE(lu.factored());
  std::vector<double> x{1.0, 1.0};
  std::vector<double> b = x;
  lu.Solve(x);
  EXPECT_LT(SolveResidualInf(bad, x, b), 1e-10);
}

TEST(SparseLu, RefactorPivotTolTripRecoversViaFreshFactor) {
  // Regression: a pivot that is perfectly nonsingular in absolute terms but
  // small RELATIVE to its column must trip refactor_pivot_tol, and
  // FactorOrRefactor must transparently fall back to a fresh Factor() (which
  // re-pivots) instead of returning garbage triangles.
  TripletBuilder t(2, 2);
  t.Add(0, 0, 4.0);
  t.Add(0, 1, 1.0);
  t.Add(1, 0, 1.0);
  t.Add(1, 1, 4.0);
  CscMatrix a = t.ToCsc();

  SparseLu::Options options;
  options.refactor_pivot_tol = 1e-2;  // strict relative-quality gate
  SparseLu lu(options);
  lu.Factor(a);
  const auto factors_before = lu.stats().factor_count;

  // Pivot (0,0) becomes 1e-3 against a column max of 1.0: far from singular,
  // but below the 1e-2 relative gate.
  CscMatrix degraded = a;
  auto values = degraded.mutable_values();
  values[degraded.FindEntry(0, 0)] = 1e-3;
  EXPECT_FALSE(lu.Refactor(degraded));
  EXPECT_FALSE(lu.factored());

  lu.FactorOrRefactor(degraded);
  EXPECT_TRUE(lu.factored());
  EXPECT_EQ(lu.stats().factor_count, factors_before + 1);  // full factor, not refactor

  std::vector<double> b{1.0, 2.0};
  std::vector<double> x = b;
  lu.Solve(x);
  EXPECT_LT(SolveResidualInf(degraded, x, b), 1e-10);
}

TEST(SparseLu, ConcurrentSolvesWithPrivateWorkspaces) {
  // Solve() is const and must be safe from many threads sharing one
  // factorization, each bringing its own workspace (the WavePipe usage).
  const int n = 64;
  const CscMatrix a = Tridiagonal(n);
  SparseLu lu;
  lu.Factor(a);

  DenseLu dense(DenseMatrix::FromCsc(a));

  constexpr int kThreads = 4;
  constexpr int kSolvesPerThread = 25;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::vector<double> workspace;
      for (int s = 0; s < kSolvesPerThread; ++s) {
        std::vector<double> b(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) b[i] = std::sin(0.1 * (i + tid) + s);
        std::vector<double> x = b;
        lu.Solve(x, workspace);
        std::vector<double> x_ref = b;
        dense.Solve(x_ref);
        for (int i = 0; i < n; ++i) {
          if (std::abs(x[i] - x_ref[i]) > 1e-9) ++mismatches[tid];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int tid = 0; tid < kThreads; ++tid) EXPECT_EQ(mismatches[tid], 0) << tid;
  // Atomic tallies: no lost updates across concurrent solves.
  EXPECT_EQ(lu.stats().solve_count,
            static_cast<std::uint64_t>(kThreads * kSolvesPerThread));
}

TEST(SparseLu, IterativeRefinementImproves) {
  util::Rng rng(3);
  const CscMatrix a = RandomSparse(30, 0.15, rng);
  const std::vector<double> b = RandomVector(30, rng);
  SparseLu lu;
  lu.Factor(a);
  std::vector<double> x = b;
  lu.Solve(x);
  const double correction = lu.Refine(a, b, x);
  EXPECT_LT(correction, 1e-8);  // already nearly exact
  EXPECT_LT(SolveResidualInf(a, x, b), 1e-11);
}

TEST(SparseLu, StatsAccumulate) {
  const CscMatrix a = Tridiagonal(8);
  SparseLu lu;
  lu.Factor(a);
  std::vector<double> x(8, 1.0);
  lu.Solve(x);
  lu.Solve(x);
  EXPECT_EQ(lu.stats().solve_count, 2u);
  EXPECT_GT(lu.stats().nnz_u, 0u);
  EXPECT_GT(lu.stats().factor_flops, 0u);
}

TEST(SparseLu, OneByOne) {
  TripletBuilder t(1, 1);
  t.Add(0, 0, 5.0);
  SparseLu lu;
  lu.Factor(t.ToCsc());
  std::vector<double> x{10.0};
  lu.Solve(x);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

struct LuParam {
  unsigned seed;
  int n;
  double density;
  SparseLu::Options::Ordering ordering;
};

class RandomLuTest : public ::testing::TestWithParam<LuParam> {};

// Property: for random nonsingular sparse matrices under every ordering,
// Factor+Solve leaves residual ~0 and Refactor with perturbed values agrees
// with the dense reference.
TEST_P(RandomLuTest, FactorSolveRefactorProperty) {
  const LuParam p = GetParam();
  util::Rng rng(p.seed);
  const CscMatrix a = RandomSparse(p.n, p.density, rng);
  const std::vector<double> b = RandomVector(p.n, rng);

  SparseLu::Options options;
  options.ordering = p.ordering;
  SparseLu lu(options);
  lu.Factor(a);
  std::vector<double> x = b;
  lu.Solve(x);
  EXPECT_LT(SolveResidualInf(a, x, b), 1e-9 * std::max(1.0, NormInf(b)));

  CscMatrix a2 = a;
  for (double& v : a2.mutable_values()) v += rng.Uniform(-0.05, 0.05);
  if (lu.Refactor(a2)) {
    std::vector<double> x2 = b;
    lu.Solve(x2);
    EXPECT_LT(SolveResidualInf(a2, x2, b), 1e-9 * std::max(1.0, NormInf(b)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomLuTest,
    ::testing::Values(
        LuParam{1, 5, 0.5, SparseLu::Options::Ordering::kMinimumDegree},
        LuParam{2, 12, 0.3, SparseLu::Options::Ordering::kMinimumDegree},
        LuParam{3, 25, 0.15, SparseLu::Options::Ordering::kMinimumDegree},
        LuParam{4, 50, 0.08, SparseLu::Options::Ordering::kMinimumDegree},
        LuParam{5, 25, 0.15, SparseLu::Options::Ordering::kNatural},
        LuParam{6, 25, 0.15, SparseLu::Options::Ordering::kRcm},
        LuParam{7, 80, 0.05, SparseLu::Options::Ordering::kMinimumDegree},
        LuParam{8, 40, 0.1, SparseLu::Options::Ordering::kRcm},
        LuParam{9, 40, 0.1, SparseLu::Options::Ordering::kNatural},
        LuParam{10, 100, 0.03, SparseLu::Options::Ordering::kMinimumDegree}));

}  // namespace
}  // namespace wavepipe::sparse
