#include "sparse/ordering.hpp"

#include <gtest/gtest.h>

#include "sparse/csc.hpp"
#include "sparse/triplet.hpp"
#include "util/rng.hpp"

namespace wavepipe::sparse {
namespace {

CscMatrix TridiagonalPattern(int n) {
  TripletBuilder t(n, n);
  for (int i = 0; i < n; ++i) {
    t.Add(i, i, 2.0);
    if (i > 0) t.Add(i, i - 1, -1.0);
    if (i + 1 < n) t.Add(i, i + 1, -1.0);
  }
  return t.ToCsc();
}

CscMatrix ArrowPattern(int n) {
  // Dense first row/col + diagonal: natural order fills in completely,
  // minimum degree should eliminate the hub last.
  TripletBuilder t(n, n);
  for (int i = 0; i < n; ++i) {
    t.Add(i, i, 4.0);
    if (i > 0) {
      t.Add(0, i, 1.0);
      t.Add(i, 0, 1.0);
    }
  }
  return t.ToCsc();
}

TEST(Ordering, NaturalIsIdentity) {
  const auto order = NaturalOrder(5);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Ordering, IsPermutationValidator) {
  EXPECT_TRUE(IsPermutation({2, 0, 1}, 3));
  EXPECT_FALSE(IsPermutation({0, 0, 1}, 3));
  EXPECT_FALSE(IsPermutation({0, 1}, 3));
  EXPECT_FALSE(IsPermutation({0, 1, 3}, 3));
}

TEST(Ordering, MinimumDegreeIsPermutation) {
  const auto order = MinimumDegreeOrder(TridiagonalPattern(20));
  EXPECT_TRUE(IsPermutation(order, 20));
}

TEST(Ordering, MinimumDegreeEliminatesHubLast) {
  const auto order = MinimumDegreeOrder(ArrowPattern(12));
  ASSERT_TRUE(IsPermutation(order, 12));
  // The hub (vertex 0, degree 11) must be among the last two eliminated
  // (ties with the final leaf are broken arbitrarily).
  EXPECT_TRUE(order[11] == 0 || order[10] == 0);
}

TEST(Ordering, RcmIsPermutation) {
  const auto order = ReverseCuthillMcKeeOrder(ArrowPattern(10));
  EXPECT_TRUE(IsPermutation(order, 10));
}

TEST(Ordering, RcmHandlesDisconnectedGraph) {
  TripletBuilder t(6, 6);
  // Two disjoint triangles.
  for (int base : {0, 3}) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) t.Add(base + i, base + j, 1.0);
    }
  }
  const auto order = ReverseCuthillMcKeeOrder(t.ToCsc());
  EXPECT_TRUE(IsPermutation(order, 6));
  const auto md = MinimumDegreeOrder(t.ToCsc());
  EXPECT_TRUE(IsPermutation(md, 6));
}

TEST(Ordering, SingletonAndEmpty) {
  EXPECT_TRUE(MinimumDegreeOrder(TridiagonalPattern(1)) == std::vector<int>{0});
  EXPECT_TRUE(MinimumDegreeOrder(CscMatrix::Identity(0)).empty());
}

class RandomOrderingTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomOrderingTest, AlwaysPermutations) {
  util::Rng rng(GetParam());
  const int n = 5 + static_cast<int>(rng.NextBelow(30));
  TripletBuilder t(n, n);
  for (int i = 0; i < n; ++i) t.Add(i, i, 1.0);
  const int extra = n * 2;
  for (int k = 0; k < extra; ++k) {
    const int r = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    const int c = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    t.Add(r, c, 1.0);
  }
  const CscMatrix m = t.ToCsc();
  EXPECT_TRUE(IsPermutation(MinimumDegreeOrder(m), n));
  EXPECT_TRUE(IsPermutation(ReverseCuthillMcKeeOrder(m), n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOrderingTest, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace wavepipe::sparse
