// Integration-level accuracy checks against closed-form circuit solutions,
// including tolerance-scaling sweeps (the property that makes LTE control
// meaningful: tightening reltol tightens the waveform error).
#include <gtest/gtest.h>

#include <cmath>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/transient.hpp"
#include "testutil/helpers.hpp"

namespace wavepipe {
namespace {

using engine::Method;
using engine::MnaStructure;
using engine::RunTransientSerial;
using engine::SimOptions;
using engine::TransientSpec;

double RcError(double reltol, Method method) {
  const double delay = 1e-4;
  auto f = testutil::MakeStepRc(delay);
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  spec.tstop = 4e-3;
  spec.probes.unknowns = {f.out};
  spec.probes.names = {"out"};
  SimOptions options;
  options.reltol = reltol;
  options.method = method;
  const auto res = RunTransientSerial(*f.circuit, mna, spec, options);
  double worst = 0.0;
  for (std::size_t i = 0; i < res.trace.num_samples(); ++i) {
    const double t = res.trace.time(i);
    const double analytic = t <= delay ? 0.0 : 1.0 - std::exp(-(t - delay) / f.tau());
    worst = std::max(worst, std::abs(res.trace.value(i, 0) - analytic));
  }
  return worst;
}

class RcToleranceSweep
    : public ::testing::TestWithParam<std::tuple<double, Method>> {};

TEST_P(RcToleranceSweep, ErrorBoundedByTolerance) {
  const auto [reltol, method] = GetParam();
  const double err = RcError(reltol, method);
  // The waveform error tracks the LTE tolerance up to the trtol slack (7x)
  // and error accumulation; 50x is a safely conservative envelope that still
  // fails if step control is broken.
  EXPECT_LT(err, 50 * reltol + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RcToleranceSweep,
    ::testing::Combine(::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Values(Method::kBackwardEuler, Method::kTrapezoidal,
                                         Method::kGear2)));

TEST(Analytic, TighteningToleranceReducesError) {
  const double loose = RcError(1e-2, Method::kTrapezoidal);
  const double tight = RcError(1e-5, Method::kTrapezoidal);
  EXPECT_LT(tight, loose);
}

TEST(Analytic, RlcEnergyDecaysMonotonically) {
  // The envelope of the underdamped response must decay at rate alpha.
  auto f = testutil::MakeSeriesRlc();
  MnaStructure mna(*f.circuit);
  TransientSpec spec;
  spec.tstop = 3e-3;
  spec.probes.unknowns = {f.vc};
  spec.probes.names = {"vc"};
  const auto res = RunTransientSerial(*f.circuit, mna, spec, SimOptions{});
  // Peak deviation from the final value, early vs late in the decay.
  auto deviation_near = [&](double t) {
    double worst = 0.0;
    for (double dt = 0; dt < 2.5e-4; dt += 5e-6) {
      worst = std::max(worst, std::abs(res.trace.Interpolate(t + dt, 0) - 1.0));
    }
    return worst;
  };
  const double early = deviation_near(2e-4);
  const double late = deviation_near(1.4e-3);
  EXPECT_LT(late, early);
}

TEST(Analytic, LinearityScalesWithSource) {
  // Doubling the source doubles the response everywhere (linear circuit).
  auto run = [](double volts) {
    engine::Circuit c;
    const int in = c.AddNode("in"), out = c.AddNode("out");
    c.Emplace<devices::VoltageSource>(
        "v", in, devices::kGround,
        std::make_unique<devices::PulseWaveform>(0, volts, 1e-5, 1e-8, 1e-8, 1, 2));
    c.Emplace<devices::Resistor>("r", in, out, 1e3);
    c.Emplace<devices::Capacitor>("c", out, devices::kGround, 1e-7);
    c.Finalize();
    MnaStructure mna(c);
    TransientSpec spec;
    spec.tstop = 1e-3;
    spec.probes.unknowns = {out};
    spec.probes.names = {"out"};
    return RunTransientSerial(c, mna, spec, SimOptions{});
  };
  const auto r1 = run(1.0);
  const auto r2 = run(2.0);
  for (double t : {2e-4, 5e-4, 9e-4}) {
    EXPECT_NEAR(2 * r1.trace.Interpolate(t, 0), r2.trace.Interpolate(t, 0), 5e-3);
  }
}

TEST(Analytic, LadderDelayGrowsSuperlinearly) {
  // The 50% crossing delay of an RC ladder grows ~quadratically with length
  // (diffusive line): doubling the stages should much more than double it.
  auto delay_of = [](int stages) {
    engine::Circuit c;
    const int in = c.AddNode("in");
    int prev = in;
    for (int i = 0; i < stages; ++i) {
      const int node = c.AddNode("n" + std::to_string(i));
      c.Emplace<devices::Resistor>("r" + std::to_string(i), prev, node, 100.0);
      c.Emplace<devices::Capacitor>("c" + std::to_string(i), node, devices::kGround,
                                    1e-12);
      prev = node;
    }
    c.Emplace<devices::VoltageSource>(
        "v", in, devices::kGround,
        std::make_unique<devices::PulseWaveform>(0, 1, 1e-10, 1e-11, 1e-11, 1, 2));
    c.Finalize();
    MnaStructure mna(c);
    TransientSpec spec;
    spec.tstop = 100e-9 * stages * stages / 100;
    spec.probes.unknowns = {prev};
    spec.probes.names = {"end"};
    const auto res = RunTransientSerial(c, mna, spec, SimOptions{});
    for (std::size_t i = 0; i < res.trace.num_samples(); ++i) {
      if (res.trace.value(i, 0) >= 0.5) return res.trace.time(i);
    }
    return spec.tstop;
  };
  const double d10 = delay_of(10);
  const double d20 = delay_of(20);
  EXPECT_GT(d20, 2.5 * d10);
}

TEST(Analytic, LcTankFrequency) {
  // Parallel LC excited by an initial current step oscillates at
  // f = 1/(2 pi sqrt(LC)).
  engine::Circuit c;
  const int n = c.AddNode("tank");
  c.Emplace<devices::CurrentSource>(
      "i", devices::kGround, n,
      std::make_unique<devices::PulseWaveform>(0, 1e-3, 1e-6, 1e-8, 1e-8, 1e30, 0));
  c.Emplace<devices::Inductor>("l", n, devices::kGround, 1e-3);
  c.Emplace<devices::Capacitor>("cap", n, devices::kGround, 1e-9);
  c.Emplace<devices::Resistor>("rq", n, devices::kGround, 100e3);  // light damping
  c.Finalize();
  MnaStructure mna(c);
  TransientSpec spec;
  spec.tstop = 4e-5;
  spec.probes.unknowns = {n};
  spec.probes.names = {"tank"};
  SimOptions options;
  options.reltol = 1e-4;
  const auto res = RunTransientSerial(c, mna, spec, options);

  // Count zero crossings after the kick to estimate the period.
  std::vector<double> crossings;
  for (std::size_t i = 1; i < res.trace.num_samples(); ++i) {
    const double a = res.trace.value(i - 1, 0), b = res.trace.value(i, 0);
    if (res.trace.time(i) > 2e-6 && a * b < 0) {
      const double t0 = res.trace.time(i - 1);
      const double t1 = res.trace.time(i);
      crossings.push_back(t0 + (t1 - t0) * a / (a - b));
    }
  }
  ASSERT_GE(crossings.size(), 6u);
  const double half_period =
      (crossings.back() - crossings.front()) / (crossings.size() - 1);
  const double f_measured = 1.0 / (2 * half_period);
  const double f_expected = 1.0 / (2 * M_PI * std::sqrt(1e-3 * 1e-9));
  EXPECT_NEAR(f_measured, f_expected, 0.02 * f_expected);
}

}  // namespace
}  // namespace wavepipe
