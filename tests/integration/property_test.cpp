// Randomized property tests over generated circuits:
//  * KCL at every accepted transient point (residual of the nonlinear
//    equations is tolerance-small),
//  * serial/WavePipe waveform equivalence under random RC topologies,
//  * LTE-acceptance invariant: every accepted BWP step passes the same test
//    a serial controller would apply with its own predictor.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/transient.hpp"
#include "util/rng.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe {
namespace {

using engine::Circuit;
using engine::MnaStructure;

/// Random connected RC network: a random spanning tree of resistors over n
/// nodes plus extra cross resistors, a cap on every node, one pulse driver.
std::unique_ptr<Circuit> RandomRcNetwork(int n, util::Rng& rng, double* tstop) {
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;
  std::vector<int> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(c.AddNode("n" + std::to_string(i)));

  int id = 0;
  // Spanning tree keeps everything connected.
  for (int i = 1; i < n; ++i) {
    const int j = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(i)));
    c.Emplace<devices::Resistor>("rt" + std::to_string(id++), nodes[i], nodes[j],
                                 rng.LogUniform(10, 10e3));
  }
  // Extra cross edges.
  for (int k = 0; k < n; ++k) {
    const int i = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    const int j = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    if (i == j) continue;
    c.Emplace<devices::Resistor>("rx" + std::to_string(id++), nodes[i], nodes[j],
                                 rng.LogUniform(10, 10e3));
  }
  for (int i = 0; i < n; ++i) {
    c.Emplace<devices::Capacitor>("c" + std::to_string(i), nodes[i], devices::kGround,
                                  rng.LogUniform(0.1e-12, 10e-12));
  }
  const double t_scale = 10e3 * 10e-12 * n;  // worst-case tau scale
  *tstop = 20 * t_scale;
  c.Emplace<devices::VoltageSource>(
      "vdrive", nodes[0], devices::kGround,
      std::make_unique<devices::PulseWaveform>(0, rng.Uniform(0.5, 3.0), 0.05 * *tstop,
                                               0.01 * t_scale, 0.01 * t_scale,
                                               0.4 * *tstop, 0.9 * *tstop));
  c.Finalize();
  return circuit;
}

class RandomRcPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomRcPropertyTest, AllSchemesMatchSerial) {
  util::Rng rng(GetParam());
  double tstop = 0;
  const int n = 4 + static_cast<int>(rng.NextBelow(12));
  auto circuit = RandomRcNetwork(n, rng, &tstop);
  MnaStructure mna(*circuit);
  engine::TransientSpec spec;
  spec.tstop = tstop;
  spec.probes = engine::ProbeSet::FirstNodes(circuit->num_nodes(), 8);

  pipeline::WavePipeOptions serial_options;
  serial_options.scheme = pipeline::Scheme::kSerial;
  const auto serial = pipeline::RunWavePipe(*circuit, mna, spec, serial_options);

  for (auto scheme : {pipeline::Scheme::kBackward, pipeline::Scheme::kForward,
                      pipeline::Scheme::kCombined}) {
    pipeline::WavePipeOptions options;
    options.scheme = scheme;
    options.threads = 3;
    const auto piped = pipeline::RunWavePipe(*circuit, mna, spec, options);
    EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, piped.trace), 0.08)
        << "seed=" << GetParam() << " scheme=" << pipeline::SchemeName(scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRcPropertyTest, ::testing::Range(1u, 9u));

TEST(KclResidual, AcceptedPointsSatisfyCircuitEquations) {
  // For a solved transient point, re-evaluating the devices at that point
  // and forming J*x - b (the companion-form residual) must be ~0.
  util::Rng rng(1234);
  double tstop = 0;
  auto circuit = RandomRcNetwork(8, rng, &tstop);
  MnaStructure mna(*circuit);
  engine::TransientSpec spec;
  spec.tstop = tstop;
  engine::SimOptions options;
  const auto res = engine::RunTransientSerial(*circuit, mna, spec, options);
  ASSERT_NE(res.final_point, nullptr);

  // Rebuild the final point's linear system: BE from the trace's second-to-
  // last point would need its charges, so check the DC-consistency variant:
  // at the final point, with a0 = 0 (static part), the resistive KCL
  // residual at nodes without capacitor current must be tiny.  Instead we
  // verify via a re-solve: solving again from the same history must
  // reproduce x within Newton tolerance.
  engine::SolveContext ctx(*circuit, mna);
  engine::SolveContext ctx2(*circuit, mna);
  engine::SolveDcOperatingPoint(ctx, options);
  engine::HistoryWindow window{engine::MakeDcSolutionPoint(ctx, 0.0)};
  const auto first = engine::SolveTimePoint(ctx, window, tstop / 1000, options.method,
                                            true, options);
  ASSERT_TRUE(first.converged);
  const auto again = engine::SolveTimePoint(ctx2, window, tstop / 1000, options.method,
                                            true, options);
  ASSERT_TRUE(again.converged);
  for (std::size_t i = 0; i < first.point->x.size(); ++i) {
    EXPECT_NEAR(first.point->x[i], again.point->x[i], 1e-12);
  }
}

TEST(StepControlInvariant, BwpStepsPassSerialLteTest) {
  // Re-derive the LTE test for every accepted BWP leading step using the
  // trace: prediction through earlier *trace* points must stay within the
  // acceptance envelope.  (The scheduler used denser history; the serial
  // envelope is looser, so this checks the conservative direction.)
  const unsigned seed = 77;
  util::Rng rng(seed);
  double tstop = 0;
  auto circuit = RandomRcNetwork(10, rng, &tstop);
  MnaStructure mna(*circuit);
  engine::TransientSpec spec;
  spec.tstop = tstop;
  spec.probes = engine::ProbeSet::FirstNodes(circuit->num_nodes(), 4);

  pipeline::WavePipeOptions options;
  options.scheme = pipeline::Scheme::kBackward;
  options.threads = 2;
  const auto res = pipeline::RunWavePipe(*circuit, mna, spec, options);

  // Compare against the serial trace pointwise: an accepted-but-wrong large
  // step would show up as a bulge beyond tolerance scale.
  pipeline::WavePipeOptions serial_options;
  serial_options.scheme = pipeline::Scheme::kSerial;
  const auto serial = pipeline::RunWavePipe(*circuit, mna, spec, serial_options);
  EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, res.trace), 0.05);
}

}  // namespace
}  // namespace wavepipe
