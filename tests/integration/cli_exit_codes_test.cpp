// wavespice exit-code contract (see the code map in tools/wavespice.cpp and
// `wavespice --help`):
//
//   0 ok, 1 usage, 2 parse/elaboration error, 3 analysis failure,
//   4 run incomplete (budget/watchdog/structured abort), 5 checkpoint error.
//
// Job schedulers and the CI crash-recovery job key off these codes, so each
// one is pinned here by invoking the real binary.  WAVESPICE_BINARY is
// injected by the build (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

std::string Binary() { return WAVESPICE_BINARY; }

/// Runs `wavespice <args>` with stdout/stderr discarded; returns the exit
/// code (-1 when the process did not exit normally).
int RunCli(const std::string& args) {
  const std::string cmd = Binary() + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  if (status == -1) return -1;
  return WEXITSTATUS(status);
}

std::string WriteDeck(const std::string& name, const std::string& contents) {
  // ctest runs each TEST as its own process, so tests sharing a deck name
  // (RcDeck) can race on the file.  Write-then-rename keeps every reader on
  // a complete deck: rename(2) is atomic within TempDir.
  const std::string path = ::testing::TempDir() + "/" + name;
  const std::string staging = path + "." + std::to_string(::getpid()) + ".tmp";
  {
    std::ofstream out(staging);
    out << contents;
  }
  std::rename(staging.c_str(), path.c_str());
  return path;
}

std::string RcDeck() {
  return WriteDeck("cli_rc.sp",
                   "rc lowpass\n"
                   "V1 in 0 DC 0 PULSE(0 1 1u 1u 1u 100u 200u)\n"
                   "R1 in out 1k\n"
                   "C1 out 0 1n\n"
                   ".tran 1u 200u\n"
                   ".print v(out)\n"
                   ".end\n");
}

TEST(CliExitCodes, CleanRunExitsZero) {
  EXPECT_EQ(RunCli(RcDeck() + " --engine serial"), 0);
}

TEST(CliExitCodes, MissingDeckIsUsageError) { EXPECT_EQ(RunCli(""), 1); }

TEST(CliExitCodes, UnknownFlagIsUsageError) {
  EXPECT_EQ(RunCli(RcDeck() + " --frobnicate"), 1);
}

TEST(CliExitCodes, FlagMissingValueIsUsageError) {
  EXPECT_EQ(RunCli(RcDeck() + " --max-steps"), 1);
}

TEST(CliExitCodes, UnreadableDeckIsParseError) {
  EXPECT_EQ(RunCli("/nonexistent/deck.sp"), 2);
}

TEST(CliExitCodes, MalformedDeckIsParseError) {
  const std::string deck = WriteDeck("cli_bad.sp",
                                     "broken deck\n"
                                     "R1 in out not_a_number\n"
                                     ".tran 1u 10u\n"
                                     ".end\n");
  EXPECT_EQ(RunCli(deck), 2);
}

/// Like RunCli but captures combined stdout+stderr into `output`.
int RunCliCapture(const std::string& args, std::string& output) {
  const std::string log = ::testing::TempDir() + "/cli_capture." +
                          std::to_string(::getpid()) + ".log";
  const std::string cmd = Binary() + " " + args + " > " + log + " 2>&1";
  const int status = std::system(cmd.c_str());
  std::ifstream in(log);
  output.assign(std::istreambuf_iterator<char>(in), {});
  std::remove(log.c_str());
  if (status == -1) return -1;
  return WEXITSTATUS(status);
}

TEST(CliExitCodes, UnknownDirectiveIsStructuredParseError) {
  const std::string deck = WriteDeck("cli_unknown_card.sp",
                                     "unknown card\n"
                                     "R1 in 0 1k\n"
                                     ".frobnicate 1 2 3\n"
                                     ".tran 1u 10u\n"
                                     ".end\n");
  std::string output;
  EXPECT_EQ(RunCliCapture(deck, output), 2);
  // Structured: names the card, the line, and the recognized-but-unsupported
  // cards so a typo is distinguishable from a missing feature.
  EXPECT_NE(output.find(".frobnicate"), std::string::npos) << output;
  EXPECT_NE(output.find("line 3"), std::string::npos) << output;
  EXPECT_NE(output.find(".subckt"), std::string::npos) << output;
}

TEST(CliExitCodes, RecognizedUnsupportedDirectiveIsParseError) {
  const std::string deck = WriteDeck("cli_unsupported_card.sp",
                                     "unsupported card\n"
                                     "R1 in 0 1k\n"
                                     ".subckt inv in out\n"
                                     ".tran 1u 10u\n"
                                     ".end\n");
  std::string output;
  EXPECT_EQ(RunCliCapture(deck, output), 2);
  EXPECT_NE(output.find("recognized but not supported"), std::string::npos)
      << output;
}

std::string SweepDeck(const std::string& step_values) {
  return WriteDeck("cli_sweep.sp",
                   "cli sweep\n"
                   ".param rload=1k\n"
                   "V1 in 0 DC 0 PULSE(0 1 1u 1u 1u 10u 20u)\n"
                   "R1 in out {rload}\n"
                   "C1 out 0 1n\n"
                   ".step param rload list " + step_values + "\n"
                   ".tran 1u 20u\n"
                   ".print v(out)\n"
                   ".end\n");
}

TEST(CliExitCodes, CleanSweepExitsZero) {
  EXPECT_EQ(RunCli(SweepDeck("500 1k") + " --sweep --threads 2"), 0);
}

TEST(CliExitCodes, SweepWithFailingVariantIsIncomplete) {
  // rload=0 elaborates to a zero resistance: that corner fails, the batch
  // finishes, and the partial result is reported as "run incomplete".
  EXPECT_EQ(RunCli(SweepDeck("1k 0") + " --sweep"), 4);
}

TEST(CliExitCodes, DeckWithoutTranIsParseError) {
  const std::string deck = WriteDeck("cli_notran.sp",
                                     "no tran card\n"
                                     "V1 in 0 DC 1\n"
                                     "R1 in 0 1k\n"
                                     ".end\n");
  EXPECT_EQ(RunCli(deck), 2);
}

TEST(CliExitCodes, BudgetExhaustionIsIncomplete) {
  EXPECT_EQ(RunCli(RcDeck() + " --engine serial --max-steps 5"), 4);
}

TEST(CliExitCodes, CorruptCheckpointIsCheckpointError) {
  const std::string base = ::testing::TempDir() + "/cli_corrupt.ckpt";
  std::ofstream(base + ".a") << "not a checkpoint";
  std::ofstream(base + ".b") << "not a checkpoint";
  EXPECT_EQ(RunCli(RcDeck() + " --engine serial --resume " + base), 5);
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

TEST(CliExitCodes, MismatchedResumeIsCheckpointError) {
  const std::string base = ::testing::TempDir() + "/cli_mismatch.ckpt";
  // Serial checkpoint, stopped early by the step budget...
  ASSERT_EQ(RunCli(RcDeck() + " --engine serial --checkpoint " + base +
                   " --max-steps 5"),
            4);
  // ...resumed into a different engine: fingerprint mismatch, not a crash.
  EXPECT_EQ(RunCli(RcDeck() + " --engine finegrained --resume " + base), 5);
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

TEST(CliExitCodes, CheckpointResumeRoundTripCompletes) {
  const std::string base = ::testing::TempDir() + "/cli_roundtrip.ckpt";
  const std::string deck = RcDeck();
  ASSERT_EQ(RunCli(deck + " --engine serial --checkpoint " + base +
                   " --max-steps 7"),
            4);
  EXPECT_EQ(RunCli(deck + " --engine serial --resume " + base), 0);
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

}  // namespace
