// .ic / nodeset support: initial conditions steer multi-stable circuits into
// the intended state, end to end from deck text through both drivers.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "netlist/elaborate.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe {
namespace {

// Cross-coupled CMOS inverter pair (an SRAM-cell latch): two stable states;
// .ic picks which one the DC solve lands in.
constexpr const char* kLatchDeck = R"(latch
VDD vdd 0 2.5
.model nmosd NMOS (vto=0.7 kp=120u)
.model pmosd PMOS (vto=-0.8 kp=40u)
MP1 q qb vdd vdd pmosd W=4u L=1u
MN1 q qb 0 0 nmosd W=2u L=1u
MP2 qb q vdd vdd pmosd W=4u L=1u
MN2 qb q 0 0 nmosd W=2u L=1u
CQ q 0 10f
CQB qb 0 10f
.tran 1p 2n
.ic v(q)=%s v(qb)=%s
.print v(q) v(qb)
)";

double FinalQ(const char* vq, const char* vqb) {
  char deck[2048];
  std::snprintf(deck, sizeof(deck), kLatchDeck, vq, vqb);
  auto e = netlist::ParseAndElaborate(deck);
  engine::MnaStructure mna(*e.circuit);
  const auto res =
      engine::RunTransientSerial(*e.circuit, mna, e.spec, e.sim_options);
  return res.trace.value(res.trace.num_samples() - 1, 0);
}

TEST(Nodeset, SelectsLatchState) {
  EXPECT_GT(FinalQ("2.5", "0"), 2.0);  // q held high
  EXPECT_LT(FinalQ("0", "2.5"), 0.5);  // q held low
}

TEST(Nodeset, PropagatesThroughWavePipeDriver) {
  char deck[2048];
  std::snprintf(deck, sizeof(deck), kLatchDeck, "2.5", "0");
  auto e = netlist::ParseAndElaborate(deck);
  engine::MnaStructure mna(*e.circuit);
  pipeline::WavePipeOptions options;
  options.scheme = pipeline::Scheme::kCombined;
  options.threads = 3;
  options.sim = e.sim_options;
  const auto res = pipeline::RunWavePipe(*e.circuit, mna, e.spec, options);
  EXPECT_GT(res.trace.value(res.trace.num_samples() - 1, 0), 2.0);
}

TEST(Nodeset, BuilderApiInitialConditions) {
  auto gen = circuits::MakeRingOscillator(5);
  // Bias the ring's first stage explicitly; the run must still complete and
  // oscillate.
  gen.spec.initial_conditions = {{gen.circuit->NodeIndex("s0"), 2.5}};
  engine::MnaStructure mna(*gen.circuit);
  const auto res =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, engine::SimOptions{});
  EXPECT_GT(res.stats.steps_accepted, 100u);
}

}  // namespace
}  // namespace wavepipe
