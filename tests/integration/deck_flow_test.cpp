// End-to-end: SPICE deck text -> parse -> elaborate -> WavePipe transient,
// the path a downstream user of the library takes.
#include <gtest/gtest.h>

#include <cmath>

#include "netlist/elaborate.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe {
namespace {

constexpr const char* kRc = R"(rc lowpass
V1 in 0 DC 0 PULSE(0 1 100u 1u 1u 10m 20m)
R1 in out 1k
C1 out 0 1u
.tran 10u 5m
.print v(out) v(in)
.end
)";

constexpr const char* kDiodeClipper = R"(clipper
V1 in 0 SIN(0 3 10k)
R1 in out 1k
D1 out 0 dclip
D2 0 out dclip
.model dclip D (is=1e-14 n=1.2)
.tran 1u 300u
.print v(in) v(out)
)";

constexpr const char* kCmosInverter = R"(inverter
VDD vdd 0 2.5
VIN in 0 PULSE(0 2.5 1n 0.2n 0.2n 4n 8n)
.model pmos1 PMOS (vto=-0.8 kp=40u)
.model nmos1 NMOS (vto=0.7 kp=120u)
MP out in vdd vdd pmos1 W=4u L=1u
MN out in 0 0 nmos1 W=2u L=1u
CL out 0 20f
.tran 0.05n 16n
.print v(in) v(out)
)";

pipeline::WavePipeResult RunDeck(const char* deck, pipeline::Scheme scheme, int threads) {
  auto e = netlist::ParseAndElaborate(deck);
  engine::MnaStructure mna(*e.circuit);
  pipeline::WavePipeOptions options;
  options.scheme = scheme;
  options.threads = threads;
  options.sim = e.sim_options;
  return pipeline::RunWavePipe(*e.circuit, mna, e.spec, options);
}

TEST(DeckFlow, RcDeckThroughAllSchemes) {
  const auto serial = RunDeck(kRc, pipeline::Scheme::kSerial, 1);
  // v(out) fully charged at end.
  EXPECT_NEAR(serial.trace.value(serial.trace.num_samples() - 1, 0), 1.0, 0.02);  // ~4.9 tau
  for (auto scheme : {pipeline::Scheme::kBackward, pipeline::Scheme::kForward,
                      pipeline::Scheme::kCombined}) {
    const auto piped = RunDeck(kRc, scheme, 3);
    EXPECT_LT(engine::Trace::MaxDeviationAll(serial.trace, piped.trace), 0.03)
        << pipeline::SchemeName(scheme);
  }
}

TEST(DeckFlow, DiodeClipperClipsSymmetrically) {
  const auto res = RunDeck(kDiodeClipper, pipeline::Scheme::kCombined, 3);
  double vmin = 1e9, vmax = -1e9;
  for (std::size_t i = 0; i < res.trace.num_samples(); ++i) {
    vmin = std::min(vmin, res.trace.value(i, 1));
    vmax = std::max(vmax, res.trace.value(i, 1));
  }
  // Antiparallel diodes clamp the 3V sine to roughly +-0.8V.
  EXPECT_LT(vmax, 1.0);
  EXPECT_GT(vmin, -1.0);
  EXPECT_GT(vmax, 0.4);
  EXPECT_LT(vmin, -0.4);
}

TEST(DeckFlow, CmosInverterInverts) {
  const auto res = RunDeck(kCmosInverter, pipeline::Scheme::kCombined, 3);
  // When in is high, out is low and vice versa: correlation is negative.
  double corr = 0;
  for (std::size_t i = 0; i < res.trace.num_samples(); ++i) {
    corr += (res.trace.value(i, 0) - 1.25) * (res.trace.value(i, 1) - 1.25);
  }
  EXPECT_LT(corr, 0.0);
}

TEST(DeckFlow, DeckOptionsPropagate) {
  const std::string deck = std::string(kRc) + ".options method=gear2 reltol=1e-4\n";
  auto e = netlist::ParseAndElaborate(deck);
  EXPECT_EQ(e.sim_options.method, engine::Method::kGear2);
  EXPECT_DOUBLE_EQ(e.sim_options.reltol, 1e-4);
  engine::MnaStructure mna(*e.circuit);
  pipeline::WavePipeOptions options;
  options.scheme = pipeline::Scheme::kBackward;
  options.sim = e.sim_options;
  EXPECT_NO_THROW(pipeline::RunWavePipe(*e.circuit, mna, e.spec, options));
}

TEST(DeckFlow, SerialEngineAndPipelineSerialAgreeExactly) {
  auto e = netlist::ParseAndElaborate(kRc);
  engine::MnaStructure mna(*e.circuit);
  const auto engine_serial =
      engine::RunTransientSerial(*e.circuit, mna, e.spec, e.sim_options);
  pipeline::WavePipeOptions options;
  options.scheme = pipeline::Scheme::kSerial;
  options.sim = e.sim_options;
  const auto pipeline_serial = pipeline::RunWavePipe(*e.circuit, mna, e.spec, options);
  EXPECT_EQ(engine_serial.stats.steps_accepted, pipeline_serial.stats.steps_accepted);
  EXPECT_LT(engine::Trace::MaxDeviationAll(engine_serial.trace, pipeline_serial.trace),
            1e-12);
}

}  // namespace
}  // namespace wavepipe
