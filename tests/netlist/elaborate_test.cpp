#include "netlist/elaborate.hpp"

#include <gtest/gtest.h>

#include "devices/passive.hpp"
#include "testutil/helpers.hpp"
#include "util/error.hpp"

namespace wavepipe::netlist {
namespace {

TEST(Elaborate, BuildsCircuitWithNodesAndBranches) {
  const auto e = ParseAndElaborate(R"(rc deck
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1u
.tran 1u 1m
.end
)");
  EXPECT_EQ(e.circuit->num_nodes(), 2);
  EXPECT_EQ(e.circuit->num_branches(), 1);  // the V source
  EXPECT_EQ(e.circuit->num_devices(), 3u);
  EXPECT_TRUE(e.has_tran);
  EXPECT_DOUBLE_EQ(e.spec.tstop, 1e-3);
}

TEST(Elaborate, GroundAliases) {
  const auto e = ParseAndElaborate("t\nR1 a 0 1\nR2 a GND 1\nR3 a gnd 1\n");
  EXPECT_EQ(e.circuit->num_nodes(), 1);  // only "a"
}

TEST(Elaborate, CaseInsensitiveNodesAndNames) {
  const auto e = ParseAndElaborate("t\nR1 NodeA nodeB 1\nC1 NODEA 0 1p\n");
  EXPECT_EQ(e.circuit->num_nodes(), 2);
  EXPECT_TRUE(e.circuit->HasNode("nodea"));
}

TEST(Elaborate, DuplicateInstanceThrows) {
  EXPECT_THROW(ParseAndElaborate("t\nR1 a 0 1\nr1 b 0 2\n"), ElaborationError);
}

TEST(Elaborate, SourceWaveforms) {
  const auto e = ParseAndElaborate(R"(t
V1 a 0 PULSE(0 5 1n 1n 1n 10n 20n)
V2 b 0 SIN(0 1 1meg)
V3 c 0 EXP(0 1 0 1n)
V4 d 0 PWL(0 0 1n 1 2n 0)
V5 e 0 3.3
I1 a 0 DC 1m
)");
  EXPECT_EQ(e.circuit->num_branches(), 5);
  const auto bps = e.circuit->CollectBreakpoints(0.0, 20e-9);
  // Pulse corners {1n, 2n, 12n, 13n}; the PWL knots and EXP delay coincide
  // with 1n/2n and merge.
  EXPECT_GE(bps.size(), 4u);
}

TEST(Elaborate, DcValueComesFromWaveformAtZero) {
  const auto e = ParseAndElaborate("t\nV1 a 0 PULSE(2 5 1n 1n 1n 10n 20n)\nR1 a 0 1k\n");
  const auto x = testutil::SolveDc(*e.circuit);
  EXPECT_NEAR(x[e.circuit->NodeIndex("a")], 2.0, 1e-9);
}

TEST(Elaborate, DiodeNeedsModel) {
  EXPECT_THROW(ParseAndElaborate("t\nD1 a 0 nomodel\n"), ParseError);
  EXPECT_THROW(ParseAndElaborate("t\n.model m NMOS\nD1 a 0 m\n"), ElaborationError);
}

TEST(Elaborate, MosfetParameters) {
  const auto e = ParseAndElaborate(R"(t
.model mn NMOS (vto=0.5 kp=200u)
M1 d g 0 0 mn W=10u L=2u
)");
  EXPECT_EQ(e.circuit->num_devices(), 1u);
  EXPECT_TRUE(e.circuit->is_nonlinear());
}

TEST(Elaborate, MosfetUnknownParamThrows) {
  EXPECT_THROW(ParseAndElaborate("t\n.model mn NMOS\nM1 d g 0 0 mn AD=1p\n"), ParseError);
}

TEST(Elaborate, ControlledSources) {
  const auto e = ParseAndElaborate(R"(t
V1 in 0 1
R1 in a 1k
E1 b 0 in a 10
G1 c 0 in a 1m
F1 d 0 v1 2
H1 e 0 v1 50
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
R5 e 0 1k
)");
  // Branches: V1, E1, H1.
  EXPECT_EQ(e.circuit->num_branches(), 3);
}

TEST(Elaborate, MutualInductanceResolvesInductors) {
  const auto e = ParseAndElaborate(R"(t
L1 a 0 1m
L2 b 0 4m
K1 L1 L2 0.5
R1 a 0 1
R2 b 0 1
)");
  EXPECT_EQ(e.circuit->num_branches(), 2);
}

TEST(Elaborate, MutualWithUnknownInductorThrows) {
  EXPECT_THROW(ParseAndElaborate("t\nL1 a 0 1m\nK1 L1 LX 0.5\n"), ElaborationError);
}

TEST(Elaborate, OptionsApplied) {
  const auto e = ParseAndElaborate(R"(t
.options reltol=1e-4 abstol=1e-10 vntol=1u method=gear2 maxstep=1n itl4=33
)");
  EXPECT_DOUBLE_EQ(e.sim_options.reltol, 1e-4);
  EXPECT_DOUBLE_EQ(e.sim_options.abstol, 1e-10);
  EXPECT_DOUBLE_EQ(e.sim_options.vntol, 1e-6);
  EXPECT_EQ(e.sim_options.method, engine::Method::kGear2);
  EXPECT_DOUBLE_EQ(e.sim_options.hmax, 1e-9);
  EXPECT_EQ(e.sim_options.max_newton_iters, 33);
}

TEST(Elaborate, UnknownOptionIgnored) {
  EXPECT_NO_THROW(ParseAndElaborate("t\n.options mysteryopt=7\n"));
}

TEST(Elaborate, PrintNodesBecomeProbes) {
  const auto e = ParseAndElaborate(R"(t
R1 a b 1
R2 b 0 1
V1 a 0 1
.tran 1n 10n
.print v(b)
)");
  ASSERT_EQ(e.spec.probes.size(), 1u);
  EXPECT_EQ(e.spec.probes.names[0], "b");
}

TEST(Elaborate, IcResolvesNodes) {
  const auto e = ParseAndElaborate("t\nR1 out 0 1k\nC1 out 0 1p\n.ic v(out)=2.5\n");
  ASSERT_EQ(e.initial_conditions.size(), 1u);
  EXPECT_EQ(e.initial_conditions[0].first, e.circuit->NodeIndex("out"));
  EXPECT_DOUBLE_EQ(e.initial_conditions[0].second, 2.5);
}

TEST(Elaborate, TrailingGarbageOnElementThrows) {
  EXPECT_THROW(ParseAndElaborate("t\nR1 a 0 1k extra\n"), ParseError);
}

TEST(Elaborate, ZeroResistanceThrows) {
  EXPECT_THROW(ParseAndElaborate("t\nR1 a 0 0\n"), ElaborationError);
}

TEST(Elaborate, FullDeckSimulates) {
  const auto e = ParseAndElaborate(R"(low-pass
V1 in 0 DC 0 PULSE(0 1 0 1n 1n 1 2)
R1 in out 1k
C1 out 0 1u
.tran 10u 5m
.print v(out)
)");
  engine::MnaStructure mna(*e.circuit);
  const auto res =
      engine::RunTransientSerial(*e.circuit, mna, e.spec, e.sim_options);
  // After 5 tau the output is within a millivolt of the input.
  EXPECT_NEAR(res.trace.value(res.trace.num_samples() - 1, 0), 1.0, 0.01);  // 5 tau window
}

}  // namespace
}  // namespace wavepipe::netlist
