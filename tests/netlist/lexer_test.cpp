#include "netlist/lexer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wavepipe::netlist {
namespace {

TEST(Lexer, FirstLineIsTitle) {
  const auto deck = LexDeck("my circuit title\nR1 a b 1k\n");
  EXPECT_EQ(deck.title, "my circuit title");
  ASSERT_EQ(deck.lines.size(), 1u);
  EXPECT_EQ(deck.lines[0].tokens[0], "R1");
}

TEST(Lexer, CommentsSkipped) {
  const auto deck = LexDeck("t\n* full line comment\nR1 a b 1 $ trailing\nC1 a 0 1p ; also\n");
  ASSERT_EQ(deck.lines.size(), 2u);
  EXPECT_EQ(deck.lines[0].tokens.size(), 4u);
  EXPECT_EQ(deck.lines[1].tokens.size(), 4u);
}

TEST(Lexer, ContinuationJoins) {
  const auto deck = LexDeck("t\nV1 in 0\n+ PULSE(0 1\n+ 2 3)\n");
  ASSERT_EQ(deck.lines.size(), 1u);
  const auto& tokens = deck.lines[0].tokens;
  // V1 in 0 PULSE ( 0 1 2 3 )
  EXPECT_EQ(tokens.size(), 10u);
  EXPECT_EQ(tokens[3], "PULSE");
  EXPECT_EQ(tokens[4], "(");
  EXPECT_EQ(tokens.back(), ")");
}

TEST(Lexer, StrayContinuationThrows) {
  EXPECT_THROW(LexDeck("t\n+ continuation first\n"), ParseError);
}

TEST(Lexer, PunctuationSplit) {
  const auto deck = LexDeck("t\nM1 d g s b mod W=2u L=1u\n");
  const auto& tokens = deck.lines[0].tokens;
  // M1 d g s b mod W = 2u L = 1u
  ASSERT_EQ(tokens.size(), 12u);
  EXPECT_EQ(tokens[7], "=");
  EXPECT_EQ(tokens[8], "2u");
}

TEST(Lexer, WindowsLineEndings) {
  const auto deck = LexDeck("t\r\nR1 a b 1\r\n");
  ASSERT_EQ(deck.lines.size(), 1u);
  EXPECT_EQ(deck.lines[0].tokens[3], "1");
}

TEST(Lexer, LineNumbersTracked) {
  const auto deck = LexDeck("t\n\n* c\nR1 a b 1\n");
  ASSERT_EQ(deck.lines.size(), 1u);
  EXPECT_EQ(deck.lines[0].line_number, 4);
}

TEST(Lexer, EmptyDeck) {
  const auto deck = LexDeck("");
  EXPECT_TRUE(deck.lines.empty());
  EXPECT_EQ(deck.title, "");
}

TEST(Lexer, CommaSeparatedPwl) {
  const auto deck = LexDeck("t\nV1 a 0 PWL(0,0 1n,1)\n");
  const auto& tokens = deck.lines[0].tokens;
  // V1 a 0 PWL ( 0 , 0 1n , 1 )
  EXPECT_EQ(tokens.size(), 12u);
}

}  // namespace
}  // namespace wavepipe::netlist
