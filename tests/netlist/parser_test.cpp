#include "netlist/parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wavepipe::netlist {
namespace {

TEST(Parser, SubcircuitInstancesUnsupported) {
  // 'X' (subcircuit instance) is outside the supported flat-deck subset.
  EXPECT_THROW(ParseNetlist("t\nXBAD a b mysub\n"), ParseError);
}

TEST(Parser, BasicElements) {
  const auto nl = ParseNetlist("t\nR1 a b 1k\nC2 b 0 1p\nL3 a 0 1u\n.end\n");
  ASSERT_EQ(nl.elements.size(), 3u);
  EXPECT_EQ(nl.elements[0].kind, 'r');
  EXPECT_EQ(nl.elements[0].name, "r1");
  EXPECT_EQ(nl.elements[1].kind, 'c');
  EXPECT_EQ(nl.elements[2].kind, 'l');
  EXPECT_EQ(nl.elements[0].args.size(), 3u);
}

TEST(Parser, UnknownElementThrows) {
  EXPECT_THROW(ParseNetlist("t\nQ1 c b e model\n"), ParseError);
}

TEST(Parser, ModelCardWithParens) {
  const auto nl = ParseNetlist("t\n.model mynmos NMOS (vto=0.6 kp=100u)\n");
  ASSERT_EQ(nl.models.size(), 1u);
  const auto& m = nl.models.at("mynmos");
  EXPECT_EQ(m.type, "nmos");
  EXPECT_DOUBLE_EQ(m.params.at("vto"), 0.6);
  EXPECT_DOUBLE_EQ(m.params.at("kp"), 100e-6);
}

TEST(Parser, ModelCardWithoutParens) {
  const auto nl = ParseNetlist("t\n.model d1 D is=2e-14 n=1.5\n");
  const auto& m = nl.models.at("d1");
  EXPECT_EQ(m.type, "d");
  EXPECT_DOUBLE_EQ(m.params.at("is"), 2e-14);
  EXPECT_DOUBLE_EQ(m.params.at("n"), 1.5);
}

TEST(Parser, DuplicateModelThrows) {
  EXPECT_THROW(ParseNetlist("t\n.model m D\n.model M d\n"), ParseError);
}

TEST(Parser, UnsupportedModelTypeThrows) {
  EXPECT_THROW(ParseNetlist("t\n.model q NPN\n"), ParseError);
}

TEST(Parser, TranCard) {
  const auto nl = ParseNetlist("t\n.tran 1n 100n 10n\n");
  EXPECT_TRUE(nl.tran.present);
  EXPECT_DOUBLE_EQ(nl.tran.tstep, 1e-9);
  EXPECT_DOUBLE_EQ(nl.tran.tstop, 100e-9);
  EXPECT_DOUBLE_EQ(nl.tran.tstart, 10e-9);
}

TEST(Parser, TranRejectsBadWindow) {
  EXPECT_THROW(ParseNetlist("t\n.tran 1n 10n 10n\n"), ParseError);
  EXPECT_THROW(ParseNetlist("t\n.tran 1n\n"), ParseError);
}

TEST(Parser, OptionsKeyValueAndFlags) {
  const auto nl = ParseNetlist("t\n.options reltol=1e-4 method=gear noacct\n");
  EXPECT_EQ(nl.options.at("reltol"), "1e-4");
  EXPECT_EQ(nl.options.at("method"), "gear");
  EXPECT_EQ(nl.options.at("noacct"), "1");
}

TEST(Parser, IcCard) {
  const auto nl = ParseNetlist("t\n.ic v(out)=2.5 v(in)=0\n");
  EXPECT_DOUBLE_EQ(nl.initial_conditions.at("out"), 2.5);
  EXPECT_DOUBLE_EQ(nl.initial_conditions.at("in"), 0.0);
}

TEST(Parser, MalformedIcThrows) {
  EXPECT_THROW(ParseNetlist("t\n.ic out=2.5\n"), ParseError);
  EXPECT_THROW(ParseNetlist("t\n.ic v(out)\n"), ParseError);
}

TEST(Parser, PrintCard) {
  const auto nl = ParseNetlist("t\n.print tran v(a) v(b)\n");
  ASSERT_EQ(nl.print_nodes.size(), 2u);
  EXPECT_EQ(nl.print_nodes[0], "a");
  EXPECT_EQ(nl.print_nodes[1], "b");
}

TEST(Parser, OpCard) {
  EXPECT_TRUE(ParseNetlist("t\n.op\n").op_requested);
  EXPECT_FALSE(ParseNetlist("t\nR1 a 0 1\n").op_requested);
}

TEST(Parser, UnknownDirectiveThrows) {
  EXPECT_THROW(ParseNetlist("t\n.fourier 1k v(out)\n"), ParseError);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    ParseNetlist("t\nR1 a 0 1\n.tran 1n\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

}  // namespace
}  // namespace wavepipe::netlist
