// Linear-subnetwork reduction: detection, deterministic rebuild, no-op
// identity, unknown_map / RemapSpec translation, exact back-substitution on
// analytically solvable subnetworks, and counter export.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "circuits/generators.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/trace.hpp"
#include "engine/transient.hpp"
#include "reduce/reduce.hpp"
#include "reduce/reduced_subnet.hpp"
#include "util/telemetry.hpp"

namespace wavepipe::reduce {
namespace {

using devices::Capacitor;
using devices::CurrentSource;
using devices::DcWaveform;
using devices::Resistor;
using devices::VoltageSource;
using engine::Circuit;

TEST(ReduceDetectTest, LadderInteriorIsFullyEliminated) {
  auto gen = circuits::MakeRcLadder(10);
  const int nn = gen.circuit->num_nodes();
  const int nb = gen.circuit->num_branches();
  ASSERT_EQ(nn, 11);  // in + n1..n10
  ASSERT_EQ(nb, 1);   // vin branch

  auto result = Reduce(std::move(gen.circuit));
  EXPECT_TRUE(result.reduced);
  EXPECT_EQ(result.stats.subnets, 1u);
  EXPECT_EQ(result.stats.nodes_eliminated, 10u);
  EXPECT_EQ(result.stats.devices_absorbed, 20u);  // 10 R + 10 C
  EXPECT_EQ(result.stats.max_interior, 10u);
  EXPECT_EQ(result.stats.max_ports, 1u);  // only "in" borders the ladder
  // Survivors: "in" plus the source branch.
  EXPECT_EQ(result.circuit->num_nodes(), 1);
  EXPECT_EQ(result.circuit->num_branches(), 1);

  ASSERT_EQ(result.unknown_map.size(), static_cast<std::size_t>(nn + nb));
  EXPECT_EQ(result.unknown_map[0], 0);  // "in" keeps index 0
  for (int u = 1; u < nn; ++u) {
    EXPECT_TRUE(engine::ProbeSet::IsStateProbe(result.unknown_map[u]))
        << "eliminated node " << u << " should map to a state probe";
  }
  // Branch ordinal preserved, offset by the new node count.
  EXPECT_EQ(result.unknown_map[static_cast<std::size_t>(nn)],
            result.circuit->num_nodes() + 0);
}

TEST(ReduceDetectTest, NonlinearAnchorsMakeReductionANoOp) {
  auto gen = circuits::MakeRingOscillator(3);
  Circuit* original = gen.circuit.get();
  const int unknowns = gen.circuit->num_unknowns();

  auto result = Reduce(std::move(gen.circuit));
  EXPECT_FALSE(result.reduced);
  // The ORIGINAL circuit comes back unmoved: bit-identical downstream.
  EXPECT_EQ(result.circuit.get(), original);
  EXPECT_EQ(result.stats.subnets, 0u);
  std::vector<int> identity(static_cast<std::size_t>(unknowns));
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(result.unknown_map, identity);
}

TEST(ReduceDetectTest, KeepNodesSurviveElimination) {
  auto gen = circuits::MakeRcLadder(5);
  const int keep = gen.circuit->NodeIndex("n3");
  const int keep_list[] = {keep};
  auto result = Reduce(std::move(gen.circuit), keep_list);
  EXPECT_TRUE(result.reduced);
  // n3 is a kept unknown (non-negative mapping); the ladder splits around it.
  EXPECT_GE(result.unknown_map[static_cast<std::size_t>(keep)], 0);
  EXPECT_TRUE(result.circuit->HasNode("n3"));
  EXPECT_EQ(result.stats.subnets, 2u);
  EXPECT_EQ(result.stats.nodes_eliminated, 4u);
}

TEST(ReduceDetectTest, DeterministicAcrossIdenticalInputs) {
  auto a = Reduce(circuits::MakeRcMesh(5, 5).circuit);
  auto b = Reduce(circuits::MakeRcMesh(5, 5).circuit);
  EXPECT_EQ(a.unknown_map, b.unknown_map);
  EXPECT_EQ(a.stats.subnets, b.stats.subnets);
  EXPECT_EQ(a.stats.nodes_eliminated, b.stats.nodes_eliminated);
  EXPECT_EQ(a.circuit->num_unknowns(), b.circuit->num_unknowns());

  // The rebuilt circuits must solve bit-identically: same devices in the same
  // order, same elimination order (ascending node id), same stamps.
  auto gen = circuits::MakeRcMesh(5, 5);
  engine::TransientSpec spec = gen.spec;
  RemapSpec(a, spec);
  const engine::MnaStructure mna_a(*a.circuit);
  const engine::MnaStructure mna_b(*b.circuit);
  const auto run_a = engine::RunTransientSerial(*a.circuit, mna_a, spec, {});
  const auto run_b = engine::RunTransientSerial(*b.circuit, mna_b, spec, {});
  ASSERT_EQ(run_a.trace.num_samples(), run_b.trace.num_samples());
  for (std::size_t i = 0; i < run_a.trace.num_samples(); ++i) {
    ASSERT_EQ(run_a.trace.time(i), run_b.trace.time(i));
    for (std::size_t p = 0; p < spec.probes.size(); ++p) {
      ASSERT_EQ(run_a.trace.value(i, p), run_b.trace.value(i, p));
    }
  }
}

TEST(ReduceRemapTest, RemapSpecReroutesInteriorProbesAndCountsThem) {
  auto gen = circuits::MakeRcLadder(6);
  const int in = gen.circuit->NodeIndex("in");
  const int n6 = gen.circuit->NodeIndex("n6");
  auto result = Reduce(std::move(gen.circuit));

  engine::TransientSpec spec = gen.spec;
  spec.probes.unknowns = {in, n6};
  spec.probes.names = {"in", "n6"};
  const std::size_t expansions = RemapSpec(result, spec);
  EXPECT_EQ(expansions, 1u);
  EXPECT_EQ(spec.probes.unknowns[0], result.unknown_map[static_cast<std::size_t>(in)]);
  EXPECT_TRUE(engine::ProbeSet::IsStateProbe(spec.probes.unknowns[1]));
}

// A purely resistive divider: in -R- mid -R- gnd.  The eliminated mid node's
// back-substituted waveform must track v(in)/2 at every sample.  The bound is
// Newton tolerance, not machine epsilon: interior states are recorded during
// the final device evaluation, which runs one Newton iterate behind the
// published solution, and a linear circuit converges on iteration 1 with
// dx ~ prediction error (< reltol) — so no confirming pass refreshes them.
TEST(ReduceBacksubTest, StaticDividerTracksWithinNewtonTolerance) {
  auto circuit = std::make_unique<Circuit>();
  const int in = circuit->AddNode("in");
  const int mid = circuit->AddNode("mid");
  circuit->Emplace<VoltageSource>(
      "vin", in, devices::kGround,
      std::make_unique<devices::PulseWaveform>(0.0, 2.0, 1e-6, 1e-7, 1e-7, 4e-6, 10e-6));
  circuit->Emplace<Resistor>("r1", in, mid, 1e3);
  circuit->Emplace<Resistor>("r2", mid, devices::kGround, 1e3);
  circuit->Finalize();

  auto result = Reduce(std::move(circuit));
  ASSERT_TRUE(result.reduced);
  EXPECT_EQ(result.stats.static_subnets, 1u);

  engine::TransientSpec spec;
  spec.tstop = 8e-6;
  spec.tstep = 1e-7;
  spec.probes.unknowns = {in, mid};
  spec.probes.names = {"in", "mid"};
  RemapSpec(result, spec);

  const engine::MnaStructure mna(*result.circuit);
  const auto run = engine::RunTransientSerial(*result.circuit, mna, spec, {});
  ASSERT_GT(run.trace.num_samples(), 10u);
  for (std::size_t i = 0; i < run.trace.num_samples(); ++i) {
    EXPECT_NEAR(run.trace.value(i, 1), 0.5 * run.trace.value(i, 0), 1e-3);
  }
}

// Absorbed current source: in -R1- mid -R2- gnd with I injected into mid.
// DC: v_mid = (v_in/R1 + I) / (1/R1 + 1/R2).
TEST(ReduceBacksubTest, AbsorbedCurrentSourceKeepsDcSolution) {
  auto circuit = std::make_unique<Circuit>();
  const int in = circuit->AddNode("in");
  const int mid = circuit->AddNode("mid");
  circuit->Emplace<VoltageSource>("vin", in, devices::kGround,
                                  std::make_unique<DcWaveform>(1.0));
  circuit->Emplace<Resistor>("r1", in, mid, 1e3);
  circuit->Emplace<Resistor>("r2", mid, devices::kGround, 2e3);
  circuit->Emplace<CurrentSource>("iload", devices::kGround, mid,
                                  std::make_unique<DcWaveform>(0.5e-3));
  circuit->Finalize();

  auto result = Reduce(std::move(circuit));
  ASSERT_TRUE(result.reduced);
  EXPECT_EQ(result.stats.devices_absorbed, 3u);
  EXPECT_EQ(result.stats.static_subnets, 0u);  // the source makes it dynamic

  engine::TransientSpec spec;
  spec.tstop = 1e-6;
  spec.tstep = 1e-8;
  spec.probes.unknowns = {mid};
  spec.probes.names = {"mid"};
  RemapSpec(result, spec);

  const engine::MnaStructure mna(*result.circuit);
  const auto run = engine::RunTransientSerial(*result.circuit, mna, spec, {});
  const double expected = (1.0 / 1e3 + 0.5e-3) / (1.0 / 1e3 + 1.0 / 2e3);
  ASSERT_GT(run.trace.num_samples(), 0u);
  for (std::size_t i = 0; i < run.trace.num_samples(); ++i) {
    EXPECT_NEAR(run.trace.value(i, 0), expected, 1e-9);
  }
}

TEST(ReduceStatsTest, CountersExportUnderReducePrefixInSchemaOrder) {
  ReductionStats stats;
  stats.subnets = 2;
  stats.nodes_eliminated = 7;
  stats.interior_expansions = 3;
  util::telemetry::CounterRegistry registry;
  stats.ExportCounters(registry);
  const std::vector<std::string> expected = {
      "reduce.subnets",      "reduce.nodes_eliminated", "reduce.devices_absorbed",
      "reduce.static_subnets", "reduce.max_interior",   "reduce.max_ports",
      "reduce.interior_expansions"};
  ASSERT_EQ(registry.size(), expected.size());
  std::size_t i = 0;
  for (const auto& counter : registry.counters()) {
    EXPECT_EQ(counter.name, expected[i]) << "at position " << i;
    ++i;
  }
}

}  // namespace
}  // namespace wavepipe::reduce
