// Failure paths of the reduction pass: an interior Schur factorization that
// throws SingularMatrixError must surface as a failed Newton solve the rescue
// ladder owns — a transient blip is absorbed, a permanent degeneracy becomes
// a structured abort (never an unwound stack), and a REAL DC-singular
// interior (cap-only node) follows the same gshunt rescue the unreduced
// matrix would.
#include <gtest/gtest.h>

#include <memory>

#include "circuits/generators.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/transient.hpp"
#include "parallel/fine_grained.hpp"
#include "reduce/reduce.hpp"
#include "util/fault.hpp"

namespace wavepipe::reduce {
namespace {

using util::fault::Schedule;
using util::fault::ScopedFault;

class ReduceFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::DisarmAll(); }

  struct Prepared {
    std::unique_ptr<engine::Circuit> circuit;
    engine::TransientSpec spec;
  };

  static Prepared ReducedLadder() {
    auto gen = circuits::MakeRcLadder(8);
    auto result = Reduce(std::move(gen.circuit));
    EXPECT_TRUE(result.reduced);
    RemapSpec(result, gen.spec);
    return {std::move(result.circuit), std::move(gen.spec)};
  }
};

TEST_F(ReduceFaultTest, TransientSingularBlipIsAbsorbedByRescue) {
  auto prep = ReducedLadder();
  const engine::MnaStructure mna(*prep.circuit);

  // Unfaulted reference for the parity check afterwards.
  const auto clean = engine::RunTransientSerial(*prep.circuit, mna, prep.spec, {});
  ASSERT_TRUE(clean.completed);

  // Let the DC bundle build, then poison the next interior factorization
  // (the transient-a0 bundle).  The retry recomputes it cleanly — nothing
  // is cached from a failed Factor — so the run must still complete.
  Schedule blip;
  blip.skip = 1;
  blip.fire = 1;
  ScopedFault site("reduce.singular", blip);

  const auto run = engine::RunTransientSerial(*prep.circuit, mna, prep.spec, {});
  EXPECT_GT(site.fired(), 0u);
  ASSERT_TRUE(run.completed) << run.abort_reason;
  // The blip surfaces as a failed Newton solve; the shrink-and-retry loop
  // (and, had that exhausted, the rescue ladder) owns it from there.
  EXPECT_GT(run.stats.steps_rejected_newton + run.stats.TotalRescuesAttempted(), 0u)
      << "an injected singular factor must surface as a failed solve";
  ASSERT_EQ(run.trace.probes().size(), clean.trace.probes().size());
  for (std::size_t p = 0; p < run.trace.probes().size(); ++p) {
    EXPECT_LT(engine::Trace::MaxDeviation(clean.trace, run.trace, p), 0.02) << p;
  }
}

TEST_F(ReduceFaultTest, PermanentSingularityBecomesStructuredAbort) {
  auto prep = ReducedLadder();
  const engine::MnaStructure mna(*prep.circuit);

  // DC passes, then EVERY interior factorization fails: the rescue ladder
  // (which varies a0/gshunt, forcing fresh bundle builds that all throw)
  // must exhaust and end the run with the waveform intact — not a throw.
  Schedule permanent;
  permanent.skip = 1;
  permanent.fire = Schedule::kUnlimited;
  ScopedFault site("reduce.singular", permanent);

  engine::TransientResult run;
  ASSERT_NO_THROW(
      run = engine::RunTransientSerial(*prep.circuit, mna, prep.spec, {}));
  EXPECT_GT(site.fired(), 0u);
  EXPECT_FALSE(run.completed);
  EXPECT_FALSE(run.abort_reason.empty());
  EXPECT_LT(run.last_good_time, prep.spec.tstop);
}

TEST_F(ReduceFaultTest, FineGrainedEngineOwnsTheSameFaultSite) {
  auto prep = ReducedLadder();
  const engine::MnaStructure mna(*prep.circuit);

  Schedule blip;
  blip.skip = 1;
  blip.fire = 1;
  ScopedFault site("reduce.singular", blip);

  parallel::FineGrainedOptions options;
  options.threads = 3;
  parallel::FineGrainedResult run;
  ASSERT_NO_THROW(
      run = parallel::RunTransientFineGrained(*prep.circuit, mna, prep.spec, options));
  EXPECT_GT(site.fired(), 0u);
  // Concurrency caveat (util/fault.hpp): assert outcome properties, not which
  // worker absorbed the hit.  A one-shot blip must never abort the run.
  EXPECT_TRUE(run.completed) << run.abort_reason;
}

// No injection: a cap-only interior node is GENUINELY singular at DC
// (a0' = 0 zeroes its diagonal).  The unreduced matrix has the identical
// degeneracy, and both sides own it the same way — via the gshunt rescue —
// so the reduced run must complete exactly when the unreduced one does.
TEST_F(ReduceFaultTest, RealDcSingularInteriorMirrorsUnreducedRescue) {
  auto make = [] {
    auto circuit = std::make_unique<engine::Circuit>();
    const int in = circuit->AddNode("in");
    const int mid = circuit->AddNode("mid");
    circuit->Emplace<devices::VoltageSource>(
        "vin", in, devices::kGround,
        std::make_unique<devices::PulseWaveform>(0.0, 1.0, 1e-6, 1e-7, 1e-7, 4e-6,
                                                 10e-6));
    circuit->Emplace<devices::Capacitor>("c1", in, mid, 1e-12);
    circuit->Emplace<devices::Capacitor>("c2", mid, devices::kGround, 1e-12);
    circuit->Finalize();
    return circuit;
  };

  engine::TransientSpec spec;
  spec.tstop = 8e-6;
  spec.tstep = 1e-7;
  spec.probes.unknowns = {0, 1};  // in, mid
  spec.probes.names = {"in", "mid"};

  auto unreduced = make();
  const engine::MnaStructure mna_u(*unreduced);
  const auto base = engine::RunTransientSerial(*unreduced, mna_u, spec, {});

  auto result = Reduce(make());
  ASSERT_TRUE(result.reduced);
  engine::TransientSpec reduced_spec = spec;
  RemapSpec(result, reduced_spec);
  const engine::MnaStructure mna_r(*result.circuit);
  engine::TransientResult run;
  ASSERT_NO_THROW(run = engine::RunTransientSerial(*result.circuit, mna_r,
                                                   reduced_spec, {}));
  EXPECT_EQ(run.completed, base.completed);
  if (base.completed && run.completed) {
    for (std::size_t p = 0; p < spec.probes.size(); ++p) {
      EXPECT_LT(engine::Trace::MaxDeviation(base.trace, run.trace, p), 0.02) << p;
    }
  }
}

}  // namespace
}  // namespace wavepipe::reduce
