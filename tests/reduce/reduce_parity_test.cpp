// Reduction parity, the tentpole acceptance matrix: for every benchmark
// circuit class, every engine (serial / fine-grained / pipeline), and both
// partition settings, the reduced run's waveform — ports AND back-substituted
// interior probes — must match the serial unreduced baseline within the same
// LTE-scale tolerance the cross-scheme equivalence suite uses.  The reduced
// system takes a DIFFERENT accepted-step sequence (eliminated unknowns leave
// the LTE-controlled vector), so parity is time-interpolated deviation, not
// row-wise equality.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "parallel/fine_grained.hpp"
#include "reduce/reduce.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::reduce {
namespace {

enum class EngineKind { kSerial, kFineGrained, kPipeline };

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSerial: return "serial";
    case EngineKind::kFineGrained: return "finegrained";
    case EngineKind::kPipeline: return "pipeline";
  }
  return "?";
}

struct ParityCase {
  const char* circuit;
  EngineKind engine;
  int partition_pieces;
  double max_deviation;  ///< absolute volts, every probe
};

circuits::GeneratedCircuit MakeByName(const std::string& name) {
  if (name == "rcladder") return circuits::MakeRcLadder(16);
  if (name == "rcmesh") return circuits::MakeRcMesh(5, 5);
  if (name == "powergrid") return circuits::MakePowerGrid(8, 8);
  if (name == "parladder") return circuits::MakeParasiticLadder(3, 6);
  throw std::logic_error("unknown circuit " + name);
}

engine::Trace RunReducedTrace(const std::string& name, EngineKind kind, int pieces,
                              ReductionStats* stats_out) {
  auto gen = MakeByName(name);
  auto result = Reduce(std::move(gen.circuit));
  RemapSpec(result, gen.spec);
  if (stats_out) *stats_out = result.stats;

  const engine::MnaStructure mna(*result.circuit);
  switch (kind) {
    case EngineKind::kSerial: {
      engine::SimOptions options;
      options.partition_pieces = pieces;
      auto run = engine::RunTransientSerial(*result.circuit, mna, gen.spec, options);
      EXPECT_TRUE(run.completed) << run.abort_reason;
      return run.trace;
    }
    case EngineKind::kFineGrained: {
      parallel::FineGrainedOptions options;
      options.threads = 3;
      options.sim.partition_pieces = pieces;
      auto run = parallel::RunTransientFineGrained(*result.circuit, mna, gen.spec, options);
      EXPECT_TRUE(run.completed) << run.abort_reason;
      return run.trace;
    }
    case EngineKind::kPipeline: {
      pipeline::WavePipeOptions options;
      options.scheme = pipeline::Scheme::kCombined;
      options.threads = 3;
      options.sim.partition_pieces = pieces;
      auto run = pipeline::RunWavePipe(*result.circuit, mna, gen.spec, options);
      EXPECT_TRUE(run.completed) << run.abort_reason;
      return run.trace;
    }
  }
  throw std::logic_error("unreachable");
}

class ReduceParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(ReduceParityTest, ReducedWaveformMatchesUnreducedSerial) {
  const ParityCase& param = GetParam();

  // Baseline: serial, UNREDUCED, monolithic solve.
  const auto base_gen = MakeByName(param.circuit);
  const engine::MnaStructure base_mna(*base_gen.circuit);
  const auto baseline =
      engine::RunTransientSerial(*base_gen.circuit, base_mna, base_gen.spec, {});
  ASSERT_TRUE(baseline.completed) << baseline.abort_reason;

  ReductionStats stats;
  const engine::Trace reduced =
      RunReducedTrace(param.circuit, param.engine, param.partition_pieces, &stats);
  ASSERT_GT(stats.nodes_eliminated, 0u)
      << param.circuit << " must actually engage the reduction pass";
  ASSERT_EQ(reduced.probes().size(), baseline.trace.probes().size());

  for (std::size_t p = 0; p < reduced.probes().size(); ++p) {
    EXPECT_LT(engine::Trace::MaxDeviation(baseline.trace, reduced, p),
              param.max_deviation)
        << param.circuit << " " << EngineName(param.engine) << " partition "
        << param.partition_pieces << " probe " << baseline.trace.probes().names[p];
  }
}

// Every benchmark probe set includes at least one node the pass eliminates
// (rcladder's far end, parladder's mid-wire tap, ...), so each row below also
// exercises back-substituted interior waveforms through that engine.
//
// Tolerances follow the equivalence suite: 0.02 V for the linear classes;
// the MOS parasitic ladder under the speculative pipeline gets the same
// 0.15 V bar as the inverter chain there.
INSTANTIATE_TEST_SUITE_P(
    AllEngines, ReduceParityTest,
    ::testing::Values(
        ParityCase{"rcladder", EngineKind::kSerial, 0, 0.02},
        ParityCase{"rcladder", EngineKind::kSerial, 4, 0.02},
        ParityCase{"rcladder", EngineKind::kFineGrained, 0, 0.02},
        ParityCase{"rcladder", EngineKind::kFineGrained, 4, 0.02},
        ParityCase{"rcladder", EngineKind::kPipeline, 0, 0.02},
        ParityCase{"rcladder", EngineKind::kPipeline, 4, 0.02},
        ParityCase{"rcmesh", EngineKind::kSerial, 0, 0.02},
        ParityCase{"rcmesh", EngineKind::kSerial, 4, 0.02},
        ParityCase{"rcmesh", EngineKind::kFineGrained, 0, 0.02},
        ParityCase{"rcmesh", EngineKind::kPipeline, 0, 0.02},
        ParityCase{"powergrid", EngineKind::kSerial, 0, 0.02},
        ParityCase{"powergrid", EngineKind::kSerial, 4, 0.02},
        ParityCase{"powergrid", EngineKind::kFineGrained, 4, 0.02},
        ParityCase{"powergrid", EngineKind::kPipeline, 4, 0.02},
        ParityCase{"parladder", EngineKind::kSerial, 0, 0.05},
        ParityCase{"parladder", EngineKind::kSerial, 4, 0.05},
        ParityCase{"parladder", EngineKind::kFineGrained, 0, 0.05},
        ParityCase{"parladder", EngineKind::kPipeline, 0, 0.15}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return std::string(info.param.circuit) + "_" + EngineName(info.param.engine) +
             "_p" + std::to_string(info.param.partition_pieces);
    });

// Same engine, same circuit, --reduce twice: traces must be bit-identical.
// (Reduction is deterministic; any nondeterminism here would also break
// checkpoint/resume of reduced runs.)
TEST(ReduceDeterminism, ReducedRunsAreBitIdentical) {
  for (const char* name : {"rcladder", "parladder"}) {
    ReductionStats s1, s2;
    const auto t1 = RunReducedTrace(name, EngineKind::kSerial, 0, &s1);
    const auto t2 = RunReducedTrace(name, EngineKind::kSerial, 0, &s2);
    EXPECT_EQ(s1.nodes_eliminated, s2.nodes_eliminated) << name;
    ASSERT_EQ(t1.num_samples(), t2.num_samples()) << name;
    for (std::size_t i = 0; i < t1.num_samples(); ++i) {
      ASSERT_EQ(t1.time(i), t2.time(i)) << name << " sample " << i;
      for (std::size_t p = 0; p < t1.probes().size(); ++p) {
        ASSERT_EQ(t1.value(i, p), t2.value(i, p)) << name << " sample " << i;
      }
    }
  }
}

}  // namespace
}  // namespace wavepipe::reduce
