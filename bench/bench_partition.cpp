// Domain-decomposition bench: partitioned BBD factor+solve vs the monolithic
// level-scheduled LU, on a power-delivery grid past 100k unknowns.
//
// Methodology (1-vCPU container, see DESIGN.md "Environment substitutions"):
// all gated numbers are MODELED in deterministic flop units —
//   * monolithic baseline at k threads: the barrier-per-level cost model
//     ModelRefactorMakespanFlops(k) for the refactor plus one serial
//     triangular solve (monolithic sweeps do not meaningfully parallelize);
//   * partitioned at k threads: BbdSolver::ModelFactorSolveMakespanFlops(k) —
//     LPT-scheduled per-piece refactors, column-parallel Schur assembly,
//     serial Schur factor/solve, two LPT-scheduled per-piece solve sweeps.
// Both sides are pure functions of the factors, so the JSON is replayable and
// check_bench.py can gate it (`min_ratio` pins the headline >= 1.5x floor).
// Wall-clock numbers are reported for context and never gated.
//
// The mesh is deliberately elongated (3200x32): row-major node numbering
// makes the natural stripe separators `cols` wide, so the interface stays
// tiny relative to the pieces — the regime the BBD path is built for.
// Results go to BENCH_partition.json (run from the repo root so the
// committed copy refreshes in place).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuits/generators.hpp"
#include "engine/newton.hpp"
#include "partition/partitioner.hpp"
#include "sparse/bbd.hpp"
#include "sparse/lu.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace wavepipe;

namespace {

constexpr int kPieceCounts[] = {2, 4, 8};

engine::NewtonInputs TransientInputs() {
  engine::NewtonInputs inputs;
  inputs.time = 1e-9;
  inputs.a0 = 2e9;
  inputs.transient = true;
  inputs.gmin = 1e-12;
  return inputs;
}

void SeedIterate(engine::SolveContext& ctx, double phase) {
  for (std::size_t i = 0; i < ctx.x.size(); ++i) {
    ctx.x[i] = 0.7 * std::sin(0.37 * static_cast<double>(i) + phase);
  }
}

/// max|bbd - mono| / max|mono| over one shared right-hand side.
double SolveParityRelDiff(sparse::SparseLu& mono, sparse::BbdSolver& bbd, int n) {
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rhs[static_cast<std::size_t>(i)] = std::sin(0.13 * static_cast<double>(i)) + 1.5;
  }
  std::vector<double> x_mono = rhs, x_bbd = rhs, ws;
  mono.Solve(x_mono, ws);
  bbd.Solve(x_bbd, /*pool=*/nullptr);
  double max_ref = 0.0, max_diff = 0.0;
  for (int i = 0; i < n; ++i) {
    max_ref = std::max(max_ref, std::abs(x_mono[static_cast<std::size_t>(i)]));
    max_diff = std::max(max_diff, std::abs(x_bbd[static_cast<std::size_t>(i)] -
                                           x_mono[static_cast<std::size_t>(i)]));
  }
  return max_ref > 0.0 ? max_diff / max_ref : max_diff;
}

/// Smoke mode for CI: a small grid, engagement + parity checks, no JSON.
int RunSmoke() {
  const auto gen = circuits::MakePowerGrid(64, 16);
  const engine::MnaStructure mna(*gen.circuit);
  engine::SolveContext ctx(*gen.circuit, mna);
  SeedIterate(ctx, 0.2);
  engine::EvalDevices(ctx, TransientInputs(), /*limit_valid=*/false,
                      /*first_iteration=*/true);

  partition::PartitionTelemetry telem;
  partition::PartitionOptions popt;
  popt.pieces = 4;
  const auto plan = partition::PartitionPattern(ctx.matrix, popt, &telem);

  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  %-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };

  std::printf("bench_partition --smoke: %s (n=%d, pieces=4)\n", gen.name.c_str(),
              mna.dimension());
  check(plan->Validate(ctx.matrix), "separator property holds");
  int nonempty = 0;
  for (const auto& interior : plan->interiors) nonempty += !interior.empty();
  check(nonempty >= 2, "partition engaged (>= 2 non-empty pieces)");
  check(!plan->interface_nodes.empty(), "interface is non-empty");

  sparse::SparseLu mono;
  mono.Factor(ctx.matrix);
  sparse::BbdSolver bbd;
  bbd.Configure(plan, ctx.matrix);
  bbd.FactorOrRefactor(ctx.matrix, nullptr);
  check(SolveParityRelDiff(mono, bbd, mna.dimension()) < 1e-7,
        "BBD solve matches monolithic (full factor)");

  // Numeric-only refactor cycle must preserve parity too.
  bbd.FactorOrRefactor(ctx.matrix, nullptr);
  check(bbd.stats().refactor_count >= 1, "second cycle took the refactor path");
  check(SolveParityRelDiff(mono, bbd, mna.dimension()) < 1e-7,
        "BBD solve matches monolithic (refactor)");

  if (failures) {
    std::fprintf(stderr, "bench_partition --smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_partition --smoke: all checks passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--smoke")) return RunSmoke();

  std::printf("=== Domain decomposition: BBD vs monolithic level-scheduled ===\n\n");

  const auto gen = circuits::MakePowerGrid(3200, 32);
  const engine::MnaStructure mna(*gen.circuit);
  engine::SolveContext ctx(*gen.circuit, mna);
  SeedIterate(ctx, 0.2);
  engine::EvalDevices(ctx, TransientInputs(), /*limit_valid=*/false,
                      /*first_iteration=*/true);
  const int n = mna.dimension();
  std::printf("mesh %s: %d unknowns, %zu matrix nnz\n\n", gen.name.c_str(), n,
              mna.nnz());

  // Monolithic baseline: factor once, then one numeric refactor pass for a
  // wall-clock calibration point (report-only; the gate uses flop models).
  sparse::SparseLu mono;
  util::WallTimer mono_timer;
  mono.Factor(ctx.matrix);
  const double mono_factor_wall = mono_timer.Seconds();
  util::WallTimer mono_refactor_timer;
  mono.Refactor(ctx.matrix);
  const double mono_refactor_wall = mono_refactor_timer.Seconds();
  const sparse::SparseLu::Stats mono_stats = mono.stats();
  const double mono_solve_flops = static_cast<double>(
      mono_stats.nnz_l + mono_stats.nnz_u + static_cast<std::size_t>(n));
  const double mono_serial_flops = mono.serial_refactor_flops() + mono_solve_flops;

  util::Table table({"pieces", "interface", "imbalance", "bbd serial Mf",
                     "bbd makespan Mf", "x vs serial", "x vs levelsched",
                     "parity"});

  std::FILE* json = std::fopen("BENCH_partition.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_partition.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"mesh\": \"%s\",\n", gen.name.c_str());
  std::fprintf(json, "  \"unknowns\": %d,\n", n);
  std::fprintf(json, "  \"nnz_matrix\": %zu,\n", mna.nnz());
  std::fprintf(json, "  \"monolithic\": {\n");
  std::fprintf(json, "    \"nnz_factors\": %zu,\n",
               mono_stats.nnz_l + mono_stats.nnz_u);
  std::fprintf(json, "    \"serial_refactor_flops\": %.1f,\n",
               mono.serial_refactor_flops());
  std::fprintf(json, "    \"solve_flops\": %.1f,\n", mono_solve_flops);
  for (int threads : kPieceCounts) {
    std::fprintf(json, "    \"levelsched_makespan_flops_%d\": %.1f,\n", threads,
                 mono.ModelRefactorMakespanFlops(threads) + mono_solve_flops);
  }
  std::fprintf(json, "    \"factor_wall_seconds\": %.6f,\n", mono_factor_wall);
  std::fprintf(json, "    \"refactor_wall_seconds\": %.6f\n", mono_refactor_wall);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"partitions\": [\n");

  double speedup_vs_serial[3] = {0, 0, 0};
  double speedup_vs_levelsched_8 = 0.0;
  double worst_parity = 0.0;
  bool all_parity_ok = true;
  util::telemetry::CounterRegistry counters8;

  for (std::size_t pi = 0; pi < 3; ++pi) {
    const int pieces = kPieceCounts[pi];
    partition::PartitionTelemetry telem;
    partition::PartitionOptions popt;
    popt.pieces = pieces;
    const auto plan = partition::PartitionPattern(ctx.matrix, popt, &telem);

    sparse::BbdSolver bbd;
    bbd.Configure(plan, ctx.matrix);
    util::WallTimer bbd_timer;
    bbd.FactorOrRefactor(ctx.matrix, nullptr);
    const double bbd_factor_wall = bbd_timer.Seconds();
    // Second cycle takes the numeric-refactor path, so the flop tallies the
    // makespan model reads describe the Newton hot loop, not the first factor.
    util::WallTimer bbd_refactor_timer;
    bbd.FactorOrRefactor(ctx.matrix, nullptr);
    const double bbd_refactor_wall = bbd_refactor_timer.Seconds();

    const double bbd_serial = bbd.SerialFactorSolveFlops();
    const double bbd_makespan = bbd.ModelFactorSolveMakespanFlops(pieces);
    speedup_vs_serial[pi] = mono_serial_flops / bbd_makespan;
    const double levelsched =
        mono.ModelRefactorMakespanFlops(pieces) + mono_solve_flops;
    const double vs_levelsched = levelsched / bbd_makespan;
    if (pieces == 8) {
      speedup_vs_levelsched_8 = vs_levelsched;
      bbd.stats().ExportCounters(counters8);
    }

    const double parity = SolveParityRelDiff(mono, bbd, n);
    worst_parity = std::max(worst_parity, parity);
    all_parity_ok = all_parity_ok && parity < 1e-6;

    table.AddRow({std::to_string(pieces),
                  std::to_string(plan->interface_nodes.size()),
                  util::Table::Cell(plan->Imbalance(), 3),
                  util::Table::Cell(bbd_serial / 1e6, 2),
                  util::Table::Cell(bbd_makespan / 1e6, 2),
                  util::Table::Cell(speedup_vs_serial[pi], 3),
                  util::Table::Cell(vs_levelsched, 3),
                  util::Table::Cell(parity, 2)});

    std::fprintf(json, "    {\n");
    std::fprintf(json, "      \"name\": \"pieces_%d\",\n", pieces);
    std::fprintf(json, "      \"pieces\": %d,\n", bbd.stats().pieces);
    std::fprintf(json, "      \"interface_size\": %zu,\n",
                 plan->interface_nodes.size());
    std::fprintf(json, "      \"piece_imbalance\": %.4f,\n", plan->Imbalance());
    std::fprintf(json, "      \"edge_cut_before_refine\": %zu,\n",
                 telem.edge_cut_before);
    std::fprintf(json, "      \"edge_cut_after_refine\": %zu,\n",
                 telem.edge_cut_after);
    std::fprintf(json, "      \"schur_nnz\": %zu,\n", bbd.stats().schur_nnz);
    std::fprintf(json, "      \"bbd_serial_flops\": %.1f,\n", bbd_serial);
    std::fprintf(json, "      \"bbd_makespan_flops\": %.1f,\n", bbd_makespan);
    std::fprintf(json, "      \"factor_wall_seconds\": %.6f,\n", bbd_factor_wall);
    std::fprintf(json, "      \"refactor_wall_seconds\": %.6f,\n",
                 bbd_refactor_wall);
    std::fprintf(json, "      \"solve_parity_rel_diff\": %.3e\n", parity);
    std::fprintf(json, "    }%s\n", pi + 1 < 3 ? "," : "");
  }

  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"partition_counters_8\": ");
  bench::WriteCountersJson(json, counters8, 2);
  std::fprintf(json, ",\n");
  for (std::size_t pi = 0; pi < 3; ++pi) {
    std::fprintf(json, "  \"partition_modeled_speedup_%d\": %.6f,\n",
                 kPieceCounts[pi], speedup_vs_serial[pi]);
  }
  std::fprintf(json, "  \"modeled_speedup_vs_levelsched_8\": %.6f,\n",
               speedup_vs_levelsched_8);
  std::fprintf(json, "  \"max_solve_parity_rel_diff\": %.3e,\n", worst_parity);
  std::fprintf(json, "  \"partition_beats_monolithic\": %s,\n",
               speedup_vs_levelsched_8 > 1.0 ? "true" : "false");
  std::fprintf(json, "  \"bbd_matches_monolithic_solve\": %s,\n",
               all_parity_ok ? "true" : "false");
  // Gate SPEC consumed by tools/check_bench.py: every numeric key matching
  // the substring must stay at or above the floor in a fresh run.  This pins
  // the acceptance bar "partitioned factor+solve beats monolithic
  // level-scheduled LU by >= 1.5x on a 100k-unknown grid".
  std::fprintf(json, "  \"min_ratio\": {\"modeled_speedup_vs_levelsched\": 1.5}\n");
  std::fprintf(json, "}\n");
  std::fclose(json);

  bench::Emit(table, "bench_partition");
  std::printf("(json written to BENCH_partition.json)\n");
  std::printf(
      "Expected shape: stripe separators stay %d nodes wide, so the interface\n"
      "block is tiny next to the pieces and the modeled partitioned makespan\n"
      "drops nearly linearly with pieces, while the monolithic level schedule\n"
      "flattens out — the 8-piece speedup over it clears the 1.5x gate.\n",
      32);
  return all_parity_ok ? 0 : 1;
}
