// Durable-run overhead bench: what periodic checkpointing costs a run.
//
// Methodology (1-vCPU container, see DESIGN.md "Environment substitutions"):
// the gated number is MODELED and deterministic —
//
//   modeled_overhead = (bytes_per_checkpoint / kModeledDiskBps + kModeledFsync)
//                      / checkpoint cadence in seconds
//
// i.e. the fraction of wall time a run at the DEFAULT wall cadence
// (checkpoint_every_seconds = 15) spends serializing + writing one snapshot,
// assuming a pessimistic ~100 MB/s disk and a fixed per-write fsync cost.
// bytes_per_checkpoint is a pure function of the circuit and the accepted
// trajectory (both deterministic), so the JSON is replayable and
// check_bench.py gates the boolean `modeled_overhead_within_budget`
// (<= 2%) plus the bit-identity guard `resumed_run_bit_identical`.
// Measured wall numbers are reported for context and never gated.
//
// Results go to BENCH_resilience.json (run from the repo root so the
// committed copy refreshes in place).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "engine/resilience.hpp"
#include "util/checkpoint.hpp"

using namespace wavepipe;

namespace {

/// Pessimistic sustained write throughput + per-write fsync latency for the
/// overhead model (a 2020s laptop SSD does 10x better on both).
constexpr double kModeledDiskBps = 100.0 * 1024.0 * 1024.0;
constexpr double kModeledFsyncSeconds = 0.005;
/// The default wall cadence (engine/options.hpp) the model amortizes over.
constexpr double kDefaultCadenceSeconds = 15.0;
constexpr double kOverheadBudget = 0.02;

double ModeledOverhead(double bytes_per_checkpoint) {
  return (bytes_per_checkpoint / kModeledDiskBps + kModeledFsyncSeconds) /
         kDefaultCadenceSeconds;
}

struct EngineOverhead {
  std::string name;
  double plain_wall = 0.0;
  double ckpt_wall = 0.0;
  std::uint64_t writes = 0;
  double bytes_last = 0.0;
  double modeled_overhead = 0.0;
  bool bit_identical = true;
};

bool TracesIdentical(const engine::Trace& a, const engine::Trace& b) {
  if (a.num_samples() != b.num_samples()) return false;
  for (std::size_t s = 0; s < a.num_samples(); ++s) {
    if (a.times()[s] != b.times()[s]) return false;
    for (std::size_t p = 0; p < a.probes().size(); ++p) {
      if (a.value(s, p) != b.value(s, p)) return false;
    }
  }
  return true;
}

void RemoveSlots(const std::string& base) {
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

/// Runs `gen` twice on the serial engine — plain and with per-step
/// checkpointing (the worst case: every accepted step serializes) — and once
/// more resumed from a mid-run snapshot to pin bit-identity.
EngineOverhead MeasureSerial(const circuits::GeneratedCircuit& gen,
                             const engine::MnaStructure& mna,
                             const std::string& base) {
  EngineOverhead out;
  out.name = "serial";

  util::WallTimer plain_timer;
  const auto plain = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  out.plain_wall = plain_timer.Seconds();

  RemoveSlots(base);
  engine::SimOptions sim;
  sim.resilience.checkpoint_path = base;
  sim.resilience.checkpoint_every_steps = 1;  // worst case: every step
  util::WallTimer ckpt_timer;
  const auto with_ckpt = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, sim);
  out.ckpt_wall = ckpt_timer.Seconds();
  out.writes = with_ckpt.resilience.ckpt_writes;
  out.bytes_last = static_cast<double>(with_ckpt.resilience.ckpt_bytes_last);
  out.modeled_overhead = ModeledOverhead(out.bytes_last);
  out.bit_identical = TracesIdentical(plain.trace, with_ckpt.trace);

  // Kill-and-resume: stop mid-run on the step budget, resume, compare.
  RemoveSlots(base);
  engine::SimOptions first = sim;
  first.resilience.max_steps = plain.stats.steps_accepted / 2;
  (void)engine::RunTransientSerial(*gen.circuit, mna, gen.spec, first);
  const engine::TransientCheckpoint ck = engine::LoadCheckpoint(base);
  engine::SimOptions second;
  second.resilience.resume = &ck;
  const auto resumed = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, second);
  out.bit_identical =
      out.bit_identical && resumed.completed && TracesIdentical(plain.trace, resumed.trace);
  RemoveSlots(base);
  return out;
}

/// Same shape for the pipeline engine (combined scheme, round-barrier
/// checkpoints).
EngineOverhead MeasurePipeline(const circuits::GeneratedCircuit& gen,
                               const engine::MnaStructure& mna,
                               const std::string& base) {
  EngineOverhead out;
  out.name = "pipeline_combined";
  pipeline::WavePipeOptions options;
  options.scheme = pipeline::Scheme::kCombined;
  options.threads = 3;

  util::WallTimer plain_timer;
  const auto plain = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, options);
  out.plain_wall = plain_timer.Seconds();

  RemoveSlots(base);
  pipeline::WavePipeOptions with = options;
  with.sim.resilience.checkpoint_path = base;
  with.sim.resilience.checkpoint_every_steps = 1;
  util::WallTimer ckpt_timer;
  const auto with_ckpt = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, with);
  out.ckpt_wall = ckpt_timer.Seconds();
  out.writes = with_ckpt.resilience.ckpt_writes;
  out.bytes_last = static_cast<double>(with_ckpt.resilience.ckpt_bytes_last);
  out.modeled_overhead = ModeledOverhead(out.bytes_last);
  out.bit_identical = TracesIdentical(plain.trace, with_ckpt.trace);

  RemoveSlots(base);
  pipeline::WavePipeOptions first = with;
  first.sim.resilience.max_steps = plain.stats.steps_accepted / 2;
  (void)pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, first);
  const engine::TransientCheckpoint ck = engine::LoadCheckpoint(base);
  pipeline::WavePipeOptions second = options;
  second.sim.resilience.resume = &ck;
  const auto resumed = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, second);
  out.bit_identical =
      out.bit_identical && resumed.completed && TracesIdentical(plain.trace, resumed.trace);
  RemoveSlots(base);
  return out;
}

void WriteEngineJson(std::FILE* json, const EngineOverhead& m, bool last) {
  std::fprintf(json, "    {\n");
  std::fprintf(json, "      \"name\": \"%s\",\n", m.name.c_str());
  std::fprintf(json, "      \"bytes_per_checkpoint\": %.0f,\n", m.bytes_last);
  std::fprintf(json, "      \"checkpoint_writes\": %llu,\n",
               static_cast<unsigned long long>(m.writes));
  std::fprintf(json, "      \"modeled_overhead_at_default_cadence\": %.6f,\n",
               m.modeled_overhead);
  std::fprintf(json, "      \"modeled_overhead_within_budget\": %s,\n",
               m.modeled_overhead <= kOverheadBudget ? "true" : "false");
  std::fprintf(json, "      \"resumed_run_bit_identical\": %s,\n",
               m.bit_identical ? "true" : "false");
  std::fprintf(json, "      \"plain_wall_seconds\": %.6f,\n", m.plain_wall);
  std::fprintf(json, "      \"ckpt_every_step_wall_seconds\": %.6f\n", m.ckpt_wall);
  std::fprintf(json, "    }%s\n", last ? "" : ",");
}

/// Smoke mode for CI: tiny circuit, engagement + bit-identity + budget.
int RunSmoke() {
  const auto gen = circuits::MakeRcMesh(8, 8);
  const engine::MnaStructure mna(*gen.circuit);
  const std::string base = "bench_resilience_smoke.ckpt";

  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  %-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };

  std::printf("bench_resilience --smoke: %s (n=%d)\n", gen.name.c_str(),
              mna.dimension());
  const EngineOverhead serial = MeasureSerial(gen, mna, base);
  check(serial.writes > 0, "checkpoint sink engaged (writes > 0)");
  check(serial.bytes_last > 0, "checkpoint payload non-empty");
  check(serial.bit_identical, "checkpointed + resumed runs bit-identical");
  check(serial.modeled_overhead <= kOverheadBudget,
        "modeled overhead within 2% budget");

  if (failures) {
    std::fprintf(stderr, "bench_resilience --smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_resilience --smoke: all checks passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--smoke")) return RunSmoke();

  std::printf("=== Durable runs: checkpoint overhead ===\n\n");

  const auto gen = circuits::MakeRcMesh(24, 24);
  const engine::MnaStructure mna(*gen.circuit);
  std::printf("mesh %s: %d unknowns\n\n", gen.name.c_str(), mna.dimension());

  const std::string base = "bench_resilience.ckpt";
  const std::vector<EngineOverhead> engines = {MeasureSerial(gen, mna, base),
                                               MeasurePipeline(gen, mna, base)};

  util::Table table({"engine", "ckpt bytes", "writes", "modeled ovh",
                     "within 2%", "bit-identical", "plain wall s",
                     "ckpt wall s"});
  bool all_within = true;
  bool all_identical = true;
  for (const auto& m : engines) {
    all_within = all_within && m.modeled_overhead <= kOverheadBudget;
    all_identical = all_identical && m.bit_identical;
    table.AddRow({m.name, util::Table::Cell(m.bytes_last, 0),
                  std::to_string(m.writes),
                  util::Table::Cell(m.modeled_overhead, 6),
                  m.modeled_overhead <= kOverheadBudget ? "yes" : "NO",
                  m.bit_identical ? "yes" : "NO",
                  util::Table::Cell(m.plain_wall, 4),
                  util::Table::Cell(m.ckpt_wall, 4)});
  }
  bench::Emit(table, "bench_resilience");

  std::FILE* json = std::fopen("BENCH_resilience.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_resilience.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"mesh\": \"%s\",\n", gen.name.c_str());
  std::fprintf(json, "  \"unknowns\": %d,\n", mna.dimension());
  std::fprintf(json, "  \"modeled_disk_bytes_per_second\": %.0f,\n", kModeledDiskBps);
  std::fprintf(json, "  \"modeled_fsync_seconds\": %.3f,\n", kModeledFsyncSeconds);
  std::fprintf(json, "  \"default_cadence_seconds\": %.1f,\n", kDefaultCadenceSeconds);
  std::fprintf(json, "  \"overhead_budget\": %.2f,\n", kOverheadBudget);
  std::fprintf(json, "  \"engines\": [\n");
  for (std::size_t i = 0; i < engines.size(); ++i) {
    WriteEngineJson(json, engines[i], i + 1 == engines.size());
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"modeled_overhead_within_budget\": %s,\n",
               all_within ? "true" : "false");
  std::fprintf(json, "  \"resumed_run_bit_identical\": %s\n",
               all_identical ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("(json written to BENCH_resilience.json)\n");
  return all_within && all_identical ? 0 : 1;
}
