// Linear-subnetwork reduction bench: full serial transient on an inverter
// chain loaded with parasitic RC ladders, unreduced vs reduced.
//
// Methodology (1-vCPU container, see DESIGN.md "Environment substitutions"):
// the gated headline is MODELED in deterministic flop units.  Both sides run
// the REAL serial engine (so Newton-iteration counts, step counts and the
// parity traces are measured), and the per-Newton-iteration cost is modeled
// as the engine's actual factor+solve+assembly work:
//
//   per_iter = pattern_nnz + dimension            (assembly: one stamp pass)
//            + (nnz_l + nnz_u + dimension)        (numeric refactor)
//            + (nnz_l + nnz_u + dimension)        (triangular solve)
//
// with factor fill taken from a real SparseLu factorization of each system.
// The reduced side adds nodes_eliminated * kBackSubFlopsPerNode for the
// subnet work a ReducedSubnet pays per Eval: one cached-factor triangular
// solve over the interior (~2 flops/node for these ladder-like blocks), the
// X*v_p back-substitution (~np flops/node) and the state writes.  The
// interior FACTORIZATION is deliberately absent from the per-iteration term:
// factor bundles are cached per (a0, gshunt), so the hot loop never refactors
// the eliminated block — that amortization is the optimization being gated.
//
//   C_side          = newton_iterations_side * per_iter_side
//   modeled_speedup = C_unreduced / C_reduced          (gate: >= 2.0)
//
// Parity booleans compare the two runs' waveforms (time-interpolated): the
// surviving port probes AND the eliminated-interior probes (back-substituted
// state waveforms) must both track the unreduced run within solver tolerance.
// Results go to BENCH_reduction.json (run from the repo root so the committed
// copy refreshes in place).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "circuits/generators.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"
#include "engine/transient.hpp"
#include "reduce/reduce.hpp"
#include "sparse/lu.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace wavepipe;

namespace {

/// Per-eliminated-node flops a ReducedSubnet pays per Newton iteration (see
/// file comment): the interior triangular solve costs nnz_l + nnz_u ~ 2 per
/// node for these chain-like blocks, the X*v_p back-substitution ~ np = 2 per
/// node (stage-to-stage wires have two ports), plus one state write.
constexpr double kBackSubFlopsPerNode = 5.0;

/// Waveform tolerance: reduced runs take a different accepted-step sequence
/// (the eliminated unknowns leave the LTE-controlled vector), so parity is
/// time-interpolated deviation within solver tolerance, not bit equality.
constexpr double kParityTolVolts = 25e-3;  // 1% of VDD = 2.5 V

struct SideMetrics {
  int dimension = 0;
  std::size_t pattern_nnz = 0;
  std::size_t factor_nnz = 0;   // nnz_l + nnz_u of a real factorization
  std::uint64_t newton_iterations = 0;
  std::size_t steps = 0;
  double wall_seconds = 0.0;
  engine::Trace trace;

  double per_iter_flops(std::uint64_t extra = 0) const {
    const double n = static_cast<double>(dimension);
    const double assembly = static_cast<double>(pattern_nnz) + n;
    const double factor = static_cast<double>(factor_nnz) + n;
    const double solve = static_cast<double>(factor_nnz) + n;
    return assembly + factor + solve + static_cast<double>(extra);
  }
};

SideMetrics RunSide(const engine::Circuit& circuit, const engine::TransientSpec& spec) {
  const engine::MnaStructure mna(circuit);
  SideMetrics m;
  m.dimension = mna.dimension();
  m.pattern_nnz = mna.nnz();

  // Real factor fill for the flop model: assemble one transient-like iterate
  // and factor it, exactly as bench_partition calibrates its baseline.
  engine::SolveContext ctx(circuit, mna);
  for (std::size_t i = 0; i < ctx.x.size(); ++i) {
    ctx.x[i] = 0.6 * std::sin(0.41 * static_cast<double>(i) + 0.2);
  }
  engine::NewtonInputs inputs;
  inputs.time = 1e-9;
  inputs.a0 = 2e9;
  inputs.transient = true;
  inputs.gmin = 1e-12;
  engine::EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);
  sparse::SparseLu lu;
  lu.Factor(ctx.matrix);
  m.factor_nnz = lu.stats().nnz_l + lu.stats().nnz_u;

  util::WallTimer timer;
  const auto result = engine::RunTransientSerial(circuit, mna, spec, {});
  m.wall_seconds = timer.Seconds();
  m.newton_iterations = result.stats.newton_iterations;
  m.steps = result.stats.steps_accepted;
  m.trace = result.trace;
  return m;
}

struct BenchPoint {
  circuits::GeneratedCircuit gen;
  reduce::ReductionStats stats;
  SideMetrics unreduced;
  SideMetrics reduced;
  double port_dev = 0.0;      // surviving-node probes
  double interior_dev = 0.0;  // eliminated-node probes (back-substituted)
  double modeled_speedup = 0.0;
};

/// Runs one circuit both ways.  Probes 0..1 of MakeParasiticLadder are
/// surviving nodes (in, x0); probes 2..3 are eliminated ladder interiors.
BenchPoint RunPoint(int stages, int taps) {
  BenchPoint point;
  point.gen = circuits::MakeParasiticLadder(stages, taps);
  point.unreduced = RunSide(*point.gen.circuit, point.gen.spec);

  reduce::ReductionResult reduction =
      reduce::Reduce(std::move(point.gen.circuit), {});
  engine::TransientSpec reduced_spec = point.gen.spec;
  reduction.stats.interior_expansions += reduce::RemapSpec(reduction, reduced_spec);
  point.stats = reduction.stats;
  point.reduced = RunSide(*reduction.circuit, reduced_spec);
  point.gen.circuit = std::move(reduction.circuit);

  for (std::size_t p = 0; p < point.gen.spec.probes.size(); ++p) {
    const double dev =
        engine::Trace::MaxDeviation(point.unreduced.trace, point.reduced.trace, p);
    const bool interior =
        engine::ProbeSet::IsStateProbe(reduced_spec.probes.unknowns[p]);
    (interior ? point.interior_dev : point.port_dev) =
        std::max(interior ? point.interior_dev : point.port_dev, dev);
  }

  const double c_unred = static_cast<double>(point.unreduced.newton_iterations) *
                         point.unreduced.per_iter_flops();
  const double c_red =
      static_cast<double>(point.reduced.newton_iterations) *
      point.reduced.per_iter_flops(point.stats.nodes_eliminated *
                                   static_cast<std::uint64_t>(kBackSubFlopsPerNode));
  point.modeled_speedup = c_unred / c_red;
  return point;
}

/// Smoke mode for CI: small ladder, engagement + parity checks, no JSON.
int RunSmoke() {
  const BenchPoint point = RunPoint(/*stages=*/4, /*taps=*/12);
  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  %-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };
  std::printf("bench_reduce --smoke: %s (%d -> %d unknowns)\n",
              point.gen.name.c_str(), point.unreduced.dimension,
              point.reduced.dimension);
  check(point.stats.subnets > 0, "reduction engaged (subnets > 0)");
  check(point.stats.nodes_eliminated > 0, "interior nodes eliminated");
  check(point.stats.interior_expansions >= 2, "interior probes expanded");
  check(point.reduced.dimension < point.unreduced.dimension, "system got smaller");
  check(point.port_dev < kParityTolVolts, "port waveforms match");
  check(point.interior_dev < kParityTolVolts, "interior waveforms match");
  check(point.modeled_speedup > 1.0, "modeled factor+solve+assembly speedup > 1");
  if (failures) {
    std::fprintf(stderr, "bench_reduce --smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_reduce --smoke: all checks passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--smoke")) return RunSmoke();

  std::printf("=== Linear-subnetwork reduction: reduced vs unreduced transient ===\n\n");

  const BenchPoint point = RunPoint(/*stages=*/8, /*taps=*/48);
  const BenchPoint small = RunPoint(/*stages=*/4, /*taps=*/16);

  util::Table table({"circuit", "n", "n reduced", "eliminated", "iters", "iters red",
                     "port dev", "interior dev", "modeled x"});
  for (const BenchPoint* p : {&small, &point}) {
    table.AddRow({p->gen.name, std::to_string(p->unreduced.dimension),
                  std::to_string(p->reduced.dimension),
                  std::to_string(p->stats.nodes_eliminated),
                  std::to_string(p->unreduced.newton_iterations),
                  std::to_string(p->reduced.newton_iterations),
                  util::Table::Cell(p->port_dev, 2),
                  util::Table::Cell(p->interior_dev, 2),
                  util::Table::Cell(p->modeled_speedup, 3)});
  }

  const bool ports_ok = point.port_dev < kParityTolVolts &&
                        small.port_dev < kParityTolVolts;
  const bool interiors_ok = point.interior_dev < kParityTolVolts &&
                            small.interior_dev < kParityTolVolts;

  std::FILE* json = std::fopen("BENCH_reduction.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_reduction.json for writing\n");
    return 1;
  }
  util::telemetry::CounterRegistry counters;
  point.stats.ExportCounters(counters);

  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"circuit\": \"%s\",\n", point.gen.name.c_str());
  std::fprintf(json, "  \"unknowns_unreduced\": %d,\n", point.unreduced.dimension);
  std::fprintf(json, "  \"unknowns_reduced\": %d,\n", point.reduced.dimension);
  std::fprintf(json, "  \"pattern_nnz_unreduced\": %zu,\n", point.unreduced.pattern_nnz);
  std::fprintf(json, "  \"pattern_nnz_reduced\": %zu,\n", point.reduced.pattern_nnz);
  std::fprintf(json, "  \"factor_nnz_unreduced\": %zu,\n", point.unreduced.factor_nnz);
  std::fprintf(json, "  \"factor_nnz_reduced\": %zu,\n", point.reduced.factor_nnz);
  std::fprintf(json, "  \"newton_iterations_unreduced\": %llu,\n",
               static_cast<unsigned long long>(point.unreduced.newton_iterations));
  std::fprintf(json, "  \"newton_iterations_reduced\": %llu,\n",
               static_cast<unsigned long long>(point.reduced.newton_iterations));
  std::fprintf(json, "  \"steps_unreduced\": %zu,\n", point.unreduced.steps);
  std::fprintf(json, "  \"steps_reduced\": %zu,\n", point.reduced.steps);
  std::fprintf(json, "  \"backsub_flops_per_node\": %.1f,\n", kBackSubFlopsPerNode);
  std::fprintf(json, "  \"wall_seconds_unreduced\": %.6f,\n",
               point.unreduced.wall_seconds);
  std::fprintf(json, "  \"wall_seconds_reduced\": %.6f,\n", point.reduced.wall_seconds);
  std::fprintf(json, "  \"reduce_counters\": ");
  bench::WriteCountersJson(json, counters, 2);
  std::fprintf(json, ",\n");
  std::fprintf(json, "  \"max_port_deviation_volts\": %.3e,\n", point.port_dev);
  std::fprintf(json, "  \"max_interior_deviation_volts\": %.3e,\n", point.interior_dev);
  std::fprintf(json, "  \"parity_tolerance_volts\": %.3e,\n", kParityTolVolts);
  std::fprintf(json, "  \"port_waveforms_match\": %s,\n", ports_ok ? "true" : "false");
  std::fprintf(json, "  \"interior_waveforms_match\": %s,\n",
               interiors_ok ? "true" : "false");
  std::fprintf(json, "  \"modeled_speedup_small\": %.6f,\n", small.modeled_speedup);
  // Gate SPEC consumed by tools/check_bench.py: the headline modeled
  // factor+solve+assembly speedup of the reduced run must stay >= 2x.
  std::fprintf(json, "  \"modeled_speedup\": %.6f,\n", point.modeled_speedup);
  std::fprintf(json, "  \"min_ratio\": {\"modeled_speedup\": 2.0}\n");
  std::fprintf(json, "}\n");
  std::fclose(json);

  bench::Emit(table, "bench_reduce");
  std::printf("(json written to BENCH_reduction.json)\n");
  std::printf(
      "Expected shape: the parasitic ladders carry almost every unknown, so\n"
      "elimination shrinks the factored system by an order of magnitude while\n"
      "the cached interior factors leave only O(eliminated) back-substitution\n"
      "flops per Newton iteration — the modeled speedup clears the 2x gate and\n"
      "both parity booleans hold.\n");
  return (ports_ok && interiors_ok && point.modeled_speedup >= 2.0) ? 0 : 1;
}
