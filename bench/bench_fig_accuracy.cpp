// Figure A (reconstructed): accuracy — WavePipe waveforms overlaid on the
// serial reference, plus the max-deviation table.  The paper's claim:
// pipelining does not jeopardize accuracy; deviations stay at the LTE
// tolerance scale.
#include "bench_common.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Figure A: waveform accuracy vs serial reference ===\n\n");

  util::Table table({"circuit", "probe", "swing (V)", "bwp dev (mV)", "fwp dev (mV)",
                     "comb dev (mV)", "dev / swing"});

  std::vector<circuits::GeneratedCircuit> suite;
  suite.push_back(circuits::MakeRingOscillator(9));
  suite.push_back(circuits::MakeRcMesh(16, 16));
  suite.push_back(circuits::MakeInverterChain(20));
  suite.push_back(circuits::MakeDiodeRectifier(4));

  for (auto& gen : suite) {
    engine::MnaStructure mna(*gen.circuit);
    const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
    const auto bwp = bench::RunScheme(gen, mna, pipeline::Scheme::kBackward, 2);
    const auto fwp = bench::RunScheme(gen, mna, pipeline::Scheme::kForward, 2);
    const auto comb = bench::RunScheme(gen, mna, pipeline::Scheme::kCombined, 3);

    double vmin = 1e300, vmax = -1e300;
    for (std::size_t i = 0; i < serial.trace.num_samples(); ++i) {
      vmin = std::min(vmin, serial.trace.value(i, 0));
      vmax = std::max(vmax, serial.trace.value(i, 0));
    }
    const double swing = vmax - vmin;
    const double dev_bwp = engine::Trace::MaxDeviationAll(serial.trace, bwp.trace);
    const double dev_fwp = engine::Trace::MaxDeviationAll(serial.trace, fwp.trace);
    const double dev_comb = engine::Trace::MaxDeviationAll(serial.trace, comb.trace);
    const double worst = std::max({dev_bwp, dev_fwp, dev_comb});
    table.AddRow({gen.name, serial.trace.probes().names[0], util::Table::Cell(swing, 3),
                  util::Table::Cell(dev_bwp * 1e3, 3), util::Table::Cell(dev_fwp * 1e3, 3),
                  util::Table::Cell(dev_comb * 1e3, 3),
                  util::Table::Cell(worst / std::max(swing, 1e-12), 2)});

    if (gen.name.rfind("ringosc", 0) == 0) {
      std::printf("overlay (%s, probe %s): serial '*' vs combined 'o'\n", gen.name.c_str(),
                  serial.trace.probes().names[0].c_str());
      util::AsciiChart chart(72, 12);
      chart.AddSeries("serial", serial.trace.Series(0));
      chart.AddSeries("combined", comb.trace.Series(0));
      std::printf("%s\n", chart.ToString().c_str());
    }
  }
  bench::Emit(table, "fig_accuracy");
  std::printf("Expected shape (paper): overlays indistinguishable; deviations well\n"
              "under 1%% of signal swing (oscillator phase drift dominates there).\n");
  return 0;
}
