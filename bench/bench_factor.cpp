// Factorization bench: serial numeric refactorization vs the level-scheduled
// parallel path (sparse/lu.hpp), over the standard benchmark suite's circuit
// Jacobians.
//
// Methodology (1-vCPU container, see DESIGN.md "Environment substitutions"):
// the serial kernel and the 1-thread fallback are MEASURED (thread-CPU
// seconds over many refactor passes); multi-thread throughput is MODELED two
// ways —
//   * replay: the exact column-dependency DAG (plus the colored-assembly
//     phases feeding it) list-scheduled onto k virtual workers via the
//     ledger machinery (AppendAssemblyTasks/AppendFactorTasks), costed with
//     the measured per-flop rate;
//   * barrier model: ModelRefactorMakespanFlops(), the pessimistic
//     barrier-per-level cost model that gates the runtime serial fallback.
// Results go to BENCH_factor.json (run from the repo root so the committed
// copy refreshes in place).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuits/generators.hpp"
#include "engine/newton.hpp"
#include "sparse/lu.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wavepipe/virtual_pipeline.hpp"

using namespace wavepipe;

namespace {

constexpr int kModeledThreads[] = {1, 2, 4, 8};

engine::NewtonInputs TransientInputs() {
  engine::NewtonInputs inputs;
  inputs.time = 1e-9;
  inputs.a0 = 2e9;
  inputs.transient = true;
  inputs.gmin = 1e-12;
  return inputs;
}

void SeedIterate(engine::SolveContext& ctx, double phase) {
  for (std::size_t i = 0; i < ctx.x.size(); ++i) {
    ctx.x[i] = 0.7 * std::sin(0.37 * static_cast<double>(i) + phase);
  }
}

/// Min-of-repeats per-pass cost of `passes` calls to `body` — the usual
/// defence against scheduler noise in microsecond-scale measurements.
template <typename Body>
double MeasureSecondsPerPass(int passes, int repeats, Body&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    util::ThreadCpuTimer timer;
    for (int p = 0; p < passes; ++p) body();
    best = std::min(best, timer.Seconds() / static_cast<double>(passes));
  }
  return best;
}

void JsonArray(std::FILE* f, const char* key, const double (&v)[4], const char* tail) {
  std::fprintf(f, "      \"%s\": [%.9e, %.9e, %.9e, %.9e]%s\n", key, v[0], v[1], v[2],
               v[3], tail);
}

}  // namespace

int main() {
  std::printf("=== Numeric refactorization: serial vs level-scheduled ===\n\n");

  auto suite = circuits::MakeBenchmarkSuite();

  util::Table table({"circuit", "kind", "n", "nnz(LU)", "levels", "widest",
                     "serial us", "1t ratio", "replay x2", "replay x4", "model x2",
                     "model x4"});

  std::FILE* json = std::fopen("BENCH_factor.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_factor.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"threads_modeled\": [1, 2, 4, 8],\n  \"circuits\": [\n");

  bool all_within_5pct_at_1 = true;
  bool digital_mesh_beat_serial_at_2 = true;
  std::string largest_name;
  int largest_unknowns = 0;
  sparse::SparseLu::Stats largest_lu_stats;

  for (std::size_t ci = 0; ci < suite.size(); ++ci) {
    const auto& gen = suite[ci];
    const engine::MnaStructure mna(*gen.circuit);
    engine::SolveContext ctx(*gen.circuit, mna);
    const engine::NewtonInputs inputs = TransientInputs();
    SeedIterate(ctx, 0.2);
    engine::EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);

    sparse::SparseLu lu;
    lu.Factor(ctx.matrix);
    const sparse::SparseLu::Stats fstats = lu.stats();

    // Enough passes for stable thread-CPU timings on microsecond refactors.
    const int passes = std::max(
        1000, static_cast<int>(4'000'000 / (fstats.nnz_l + fstats.nnz_u + 1)));

    // The 1-thread "parallel" entry point must be indistinguishable from the
    // serial kernel (acceptance: within 5%) — the cost-model fallback routes
    // it straight to Refactor().  Container CPU interference comes in bursts
    // wider than one timing window, so estimate the ratio from PAIRED
    // back-to-back windows and take the median of the per-pair ratios: a
    // burst landing on one window of a pair produces an outlier ratio that
    // the median trims, instead of skewing a global min/mean.
    double serial_per_pass = 1e300;
    double fallback_per_pass = 1e300;
    std::vector<double> pair_ratios;
    for (int rep = 0; rep < 48; ++rep) {
      const double s = MeasureSecondsPerPass(passes, 1,
                                             [&] { lu.Refactor(ctx.matrix); });
      const double f = MeasureSecondsPerPass(passes, 1, [&] {
        lu.RefactorParallel(ctx.matrix, nullptr);
      });
      serial_per_pass = std::min(serial_per_pass, s);
      fallback_per_pass = std::min(fallback_per_pass, f);
      pair_ratios.push_back(f / s);
    }
    std::sort(pair_ratios.begin(), pair_ratios.end());
    const double one_thread_ratio = pair_ratios[pair_ratios.size() / 2];
    all_within_5pct_at_1 = all_within_5pct_at_1 && one_thread_ratio <= 1.05;

    // Serial triangular-solve cost for completeness (same units).
    std::vector<double> rhs(static_cast<std::size_t>(mna.dimension()), 1.0), ws;
    const double solve_per_pass = MeasureSecondsPerPass(passes, 3, [&] {
      std::fill(rhs.begin(), rhs.end(), 1.0);
      lu.Solve(rhs, ws);
    });

    // Measured per-flop rate calibrates both models.
    const double seconds_per_flop = serial_per_pass / lu.serial_refactor_flops();

    // Replay model: colored assembly phases feeding the exact column DAG,
    // list-scheduled on k virtual workers.  Assembly is costed at the
    // measured serial stamp rate per device.
    const double assembly_per_pass = MeasureSecondsPerPass(
        std::max(20, passes / 4), 2,
        [&] { engine::EvalDevices(ctx, inputs, false, true); });
    const double seconds_per_device =
        assembly_per_pass / static_cast<double>(gen.circuit->devices().size());
    const parallel::ColorSchedule schedule =
        parallel::BuildColorSchedule(*gen.circuit, mna);

    double replay_factor[4] = {0, 0, 0, 0};    // factor tasks only
    double replay_combined[4] = {0, 0, 0, 0};  // assembly -> factor pipeline
    for (int ti = 0; ti < 4; ++ti) {
      {
        pipeline::Ledger ledger;
        pipeline::AppendFactorTasks(ledger, lu, seconds_per_flop);
        replay_factor[ti] =
            pipeline::ReplayOnWorkers(ledger, kModeledThreads[ti]).makespan_seconds;
      }
      {
        pipeline::Ledger ledger;
        const pipeline::AppendedTasks assembly =
            pipeline::AppendAssemblyTasks(ledger, schedule, seconds_per_device);
        pipeline::AppendFactorTasks(ledger, lu, seconds_per_flop, assembly.tail);
        replay_combined[ti] =
            pipeline::ReplayOnWorkers(ledger, kModeledThreads[ti]).makespan_seconds;
      }
    }

    // Barrier-per-level cost model (the runtime fallback gate), flop units.
    double model_makespan[4];
    for (int ti = 0; ti < 4; ++ti) {
      model_makespan[ti] = lu.ModelRefactorMakespanFlops(kModeledThreads[ti]);
    }

    const double replay_speedup2 = replay_factor[0] / replay_factor[1];
    const double replay_speedup4 = replay_factor[0] / replay_factor[2];
    const bool beats_at_2 = replay_speedup2 > 1.0;
    const bool is_digital_or_mesh =
        gen.kind == "digital" || gen.name.find("mesh") != std::string::npos;
    if (is_digital_or_mesh) {
      digital_mesh_beat_serial_at_2 = digital_mesh_beat_serial_at_2 && beats_at_2;
    }
    if (mna.dimension() > largest_unknowns) {
      largest_unknowns = mna.dimension();
      largest_name = gen.name;
      largest_lu_stats = lu.stats();
    }

    table.AddRow({gen.name, gen.kind, std::to_string(mna.dimension()),
                  std::to_string(fstats.nnz_l + fstats.nnz_u),
                  std::to_string(fstats.factor_levels),
                  std::to_string(fstats.factor_widest_level),
                  util::Table::Cell(serial_per_pass * 1e6, 3),
                  util::Table::Cell(one_thread_ratio, 3),
                  util::Table::Cell(replay_speedup2, 3),
                  util::Table::Cell(replay_speedup4, 3),
                  util::Table::Cell(fstats.modeled_refactor_speedup2, 3),
                  util::Table::Cell(fstats.modeled_refactor_speedup4, 3)});

    std::fprintf(json, "    {\n");
    std::fprintf(json, "      \"name\": \"%s\",\n", gen.name.c_str());
    std::fprintf(json, "      \"kind\": \"%s\",\n", gen.kind.c_str());
    std::fprintf(json, "      \"unknowns\": %d,\n", mna.dimension());
    std::fprintf(json, "      \"nnz_matrix\": %zu,\n", mna.nnz());
    std::fprintf(json, "      \"nnz_factors\": %zu,\n", fstats.nnz_l + fstats.nnz_u);
    std::fprintf(json, "      \"factor_levels\": %d,\n", fstats.factor_levels);
    std::fprintf(json, "      \"factor_widest_level\": %zu,\n",
                 fstats.factor_widest_level);
    std::fprintf(json, "      \"solve_fwd_levels\": %d,\n", fstats.solve_fwd_levels);
    std::fprintf(json, "      \"solve_bwd_levels\": %d,\n", fstats.solve_bwd_levels);
    std::fprintf(json, "      \"passes\": %d,\n", passes);
    std::fprintf(json, "      \"serial_refactor_seconds_per_pass\": %.9e,\n",
                 serial_per_pass);
    std::fprintf(json, "      \"fallback_1thread_seconds_per_pass\": %.9e,\n",
                 fallback_per_pass);
    std::fprintf(json, "      \"one_thread_overhead_ratio\": %.6f,\n", one_thread_ratio);
    std::fprintf(json, "      \"serial_solve_seconds_per_pass\": %.9e,\n",
                 solve_per_pass);
    std::fprintf(json, "      \"serial_refactor_flops\": %.1f,\n",
                 lu.serial_refactor_flops());
    JsonArray(json, "replay_factor_makespan_seconds", replay_factor, ",");
    JsonArray(json, "replay_assembly_factor_makespan_seconds", replay_combined, ",");
    JsonArray(json, "barrier_model_makespan_flops", model_makespan, ",");
    std::fprintf(json, "      \"replay_speedup_2_threads\": %.6f,\n", replay_speedup2);
    std::fprintf(json, "      \"replay_speedup_4_threads\": %.6f,\n", replay_speedup4);
    std::fprintf(json, "      \"barrier_model_speedup_2_threads\": %.6f,\n",
                 fstats.modeled_refactor_speedup2);
    std::fprintf(json, "      \"barrier_model_speedup_4_threads\": %.6f,\n",
                 fstats.modeled_refactor_speedup4);
    std::fprintf(json, "      \"level_beats_serial_at_2_threads\": %s\n",
                 beats_at_2 ? "true" : "false");
    std::fprintf(json, "    }%s\n", ci + 1 < suite.size() ? "," : "");
  }

  std::fprintf(json, "  ],\n");
  // Same counter vocabulary as run_stats.json (sparse_lu.*) — shared schema
  // with the CLI stats output and tools/check_bench.py.
  {
    util::telemetry::CounterRegistry registry;
    largest_lu_stats.ExportCounters(registry);
    std::fprintf(json, "  \"largest_circuit\": \"%s\",\n", largest_name.c_str());
    std::fprintf(json, "  \"largest_circuit_sparse_lu_counters\": ");
    bench::WriteCountersJson(json, registry, 2);
    std::fprintf(json, ",\n");
  }
  std::fprintf(json, "  \"all_circuits_within_5pct_of_serial_at_1_thread\": %s,\n",
               all_within_5pct_at_1 ? "true" : "false");
  std::fprintf(json, "  \"digital_mesh_beat_serial_at_2_threads\": %s\n",
               digital_mesh_beat_serial_at_2 ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  bench::Emit(table, "bench_factor");
  std::printf("(json written to BENCH_factor.json)\n");
  std::printf(
      "Expected shape: wide elimination DAGs (digital chains, RC meshes) replay\n"
      "faster than serial at 2+ workers; deep chains (ladders, small analog loops)\n"
      "pin the replay at ~1x and the barrier cost model keeps them on the serial\n"
      "kernel at runtime, so the 1-thread ratio stays ~1.0 everywhere.\n");
  return 0;
}
