// Ablation 2: forward-pipelining acceptance thresholds.
// fwp_direct_tol gates zero-cost direct acceptance; fwp_prediction_tol gates
// the hot-start repair path.  Sweeps both and reports the speculation
// economy plus the resulting accuracy (which must stay tolerance-bounded for
// ANY setting — that is the scheme's safety property).
#include "bench_common.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Ablation 2: FWP prediction thresholds ===\n\n");
  auto gen = circuits::MakeInverterChain(10);
  engine::MnaStructure mna(*gen.circuit);
  const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
  std::printf("circuit %s, serial rounds %zu\n\n", gen.name.c_str(), serial.rounds);

  util::Table table({"direct tol", "repair tol", "accept %", "direct %", "speedup x2",
                     "max dev (mV)"});
  struct Case {
    double direct, repair;
  };
  // Very loose direct tolerances (>> trtol) are deliberately absent: they
  // pollute the history with supra-tolerance noise, and the LTE controller
  // responds with rejection storms — correct but pathologically slow.
  for (const Case c : {Case{0.0, 0.0}, Case{0.0, 8.0}, Case{0.5, 8.0}, Case{1.0, 8.0},
                       Case{2.0, 8.0}, Case{1.0, 2.0}, Case{1.0, 16.0}, Case{4.0, 8.0}}) {
    pipeline::WavePipeOptions custom;
    custom.fwp_direct_tol = c.direct;
    custom.fwp_prediction_tol = c.repair;
    const auto res =
        bench::RunScheme(gen, mna, pipeline::Scheme::kForward, 2, {}, &custom);
    const double direct_pct =
        res.sched.speculative_solves
            ? 100.0 * static_cast<double>(res.sched.speculative_direct) /
                  static_cast<double>(res.sched.speculative_solves)
            : 0.0;
    table.AddRow({util::Table::Cell(c.direct, 3), util::Table::Cell(c.repair, 3),
                  util::Table::Cell(100 * res.sched.speculation_acceptance(), 3),
                  util::Table::Cell(direct_pct, 3),
                  bench::Speedup(serial.makespan_seconds, res.makespan_seconds),
                  util::Table::Cell(
                      engine::Trace::MaxDeviationAll(serial.trace, res.trace) * 1e3, 3)});
  }
  bench::Emit(table, "abl_predictor");
  std::printf("Expected shape: speedup rises with the direct-acceptance rate; the\n"
              "deviation column stays at tolerance scale for every setting (the LTE\n"
              "test, not the thresholds, owns accuracy).\n");
  return 0;
}
