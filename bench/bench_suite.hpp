// The paper-scale benchmark circuit set used by every table bench
// (reconstruction of the paper's Table 1; see DESIGN.md source-text caveat).
// Sizes are chosen so the full suite finishes in minutes on one core while
// spanning three orders of magnitude in matrix size.
#pragma once

#include <vector>

#include "circuits/generators.hpp"

namespace wavepipe::bench {

inline std::vector<circuits::GeneratedCircuit> PaperSuite() {
  std::vector<circuits::GeneratedCircuit> suite;
  suite.push_back(circuits::MakeRcMesh(24, 24));        // power grid, linear
  suite.push_back(circuits::MakeRcLadder(400));         // long interconnect
  suite.push_back(circuits::MakeRingOscillator(11));    // autonomous analog
  suite.push_back(circuits::MakeInverterChain(30));     // digital chain
  suite.push_back(circuits::MakeDiodeRectifier(6));     // mixed AC/DC
  suite.push_back(circuits::MakeMosAmplifierChain(4));  // analog amplifier
  suite.push_back(circuits::MakeClockTree(4));          // buffered clock tree
  return suite;
}

/// A faster subset for the sweep-heavy benches.
inline std::vector<circuits::GeneratedCircuit> QuickSuite() {
  std::vector<circuits::GeneratedCircuit> suite;
  suite.push_back(circuits::MakeRcLadder(150));
  suite.push_back(circuits::MakeRingOscillator(9));
  suite.push_back(circuits::MakeInverterChain(12));
  return suite;
}

}  // namespace wavepipe::bench
