// Shared harness for the paper-reproduction benches: runs a circuit under a
// scheme, extracts the metrics every table reports, and prints both the
// ASCII table and a CSV copy (written next to the binary as <name>.csv).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::bench {

/// Writes a counter registry as a JSON object into an open bench JSON file,
/// `indent` spaces deep (no trailing newline).  The names come from the same
/// ExportCounters methods run_stats.json uses — bench artifacts and CLI
/// stats share one counter vocabulary (see wavepipe/trace_export.hpp).
inline void WriteCountersJson(std::FILE* f, const util::telemetry::CounterRegistry& reg,
                              int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::fprintf(f, "{");
  bool first = true;
  for (const auto& c : reg.counters()) {
    std::fprintf(f, "%s\n%s  \"%s\": ", first ? "" : ",", pad.c_str(), c.name.c_str());
    if (c.integral) {
      std::fprintf(f, "%lld", static_cast<long long>(c.value));
    } else {
      std::fprintf(f, "%.9g", c.value);
    }
    first = false;
  }
  std::fprintf(f, "\n%s}", pad.c_str());
}

/// Everything a table row needs about one (circuit, scheme, threads) run.
struct SchemeMetrics {
  pipeline::Scheme scheme = pipeline::Scheme::kSerial;
  int threads = 1;
  std::size_t rounds = 0;           ///< sequential macro-iterations
  std::size_t steps = 0;            ///< accepted leading steps
  std::uint64_t newton_iterations = 0;
  double wall_seconds = 0.0;        ///< measured on this machine (1 vCPU!)
  double makespan_seconds = 0.0;    ///< virtual replay on `threads` workers
  double busy_seconds = 0.0;        ///< total solver CPU across workers
  pipeline::PipelineSchedStats sched;
  pipeline::SpecPolicyStats spec;
  engine::TransientStats stats;
  engine::Trace trace;
};

inline SchemeMetrics RunScheme(const circuits::GeneratedCircuit& gen,
                               const engine::MnaStructure& mna, pipeline::Scheme scheme,
                               int threads, engine::SimOptions sim = {},
                               pipeline::WavePipeOptions* custom = nullptr) {
  pipeline::WavePipeOptions options;
  if (custom) options = *custom;
  options.scheme = scheme;
  options.threads = threads;
  options.sim = sim;

  util::WallTimer timer;
  auto result = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, options);
  const int workers = scheme == pipeline::Scheme::kSerial ? 1 : threads;
  // Iteration-count cost basis: deterministic across runs (individual solves
  // are microseconds here, so measured-seconds replay carries timing noise).
  const auto replay = pipeline::ReplayOnWorkers(result.ledger, workers,
                                                pipeline::ReplayCost::kNewtonIterations);

  SchemeMetrics m;
  m.scheme = scheme;
  m.threads = workers;
  m.rounds = result.sched.rounds;
  m.steps = result.stats.steps_accepted;
  m.newton_iterations = result.stats.newton_iterations;
  m.wall_seconds = timer.Seconds();
  m.makespan_seconds = replay.makespan_seconds;
  m.busy_seconds = replay.busy_seconds;
  m.sched = result.sched;
  m.spec = result.spec;
  m.stats = result.stats;
  m.trace = std::move(result.trace);
  return m;
}

/// Prints the table and writes `<csv_name>.csv` beside the binary.
inline void Emit(const util::Table& table, const std::string& csv_name) {
  table.Print(std::cout);
  const std::string path = csv_name + ".csv";
  table.WriteCsv(path);
  std::printf("(csv written to %s)\n\n", path.c_str());
}

inline std::string Speedup(double serial_makespan, double scheme_makespan) {
  return util::Table::Cell(serial_makespan / scheme_makespan, 3);
}

}  // namespace wavepipe::bench
