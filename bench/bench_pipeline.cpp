// Adaptive speculation policy bench: the combined BWP+FWP scheme with the
// historical fixed scheduler vs the acceptance-driven adaptive policy
// (wavepipe/spec_policy.hpp), on one linear mesh, one oscillator, and one
// switching digital deck.
//
// Methodology: every metric gated by CI is a DETERMINISTIC modeled number —
// the virtual-pipeline replay of the recorded solve ledger on `threads`
// workers with the Newton-iteration cost basis (ReplayCost::kNewtonIterations),
// exactly what tools/check_bench.py expects from `modeled_*` keys.  Wall
// seconds are reported for context but never gated.  Results go to
// BENCH_pipeline.json (run from the repo root so the committed copy
// refreshes in place).
//
// `--smoke` runs one small digital deck once per configuration and exits
// non-zero when the adaptive policy stops engaging, regresses the modeled
// makespan, or perturbs accuracy — a ctest-visible guard (label bench-smoke)
// that costs seconds.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuits/generators.hpp"
#include "util/table.hpp"

using namespace wavepipe;

namespace {

constexpr int kThreads = 4;

pipeline::WavePipeOptions AdaptiveOptions() {
  pipeline::WavePipeOptions options;
  options.spec_policy.mode = pipeline::SpecPolicyMode::kAdaptive;
  return options;
}

struct DeckResult {
  std::string name;
  std::string kind;
  int unknowns = 0;
  bench::SchemeMetrics serial;
  bench::SchemeMetrics fixed;
  bench::SchemeMetrics adaptive;
  double deviation = 0.0;   ///< adaptive trace vs serial trace
  double tolerance = 0.0;
};

DeckResult RunDeck(const circuits::GeneratedCircuit& gen) {
  const engine::MnaStructure mna(*gen.circuit);
  DeckResult r;
  r.name = gen.name;
  r.kind = gen.kind;
  r.unknowns = mna.dimension();
  r.serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
  r.fixed = bench::RunScheme(gen, mna, pipeline::Scheme::kCombined, kThreads);
  auto adaptive_options = AdaptiveOptions();
  r.adaptive = bench::RunScheme(gen, mna, pipeline::Scheme::kCombined, kThreads, {},
                                &adaptive_options);
  r.deviation = engine::Trace::MaxDeviationAll(r.serial.trace, r.adaptive.trace);
  // Same LTE-tolerance-scale accuracy gates as the equivalence tests and
  // bench_bypass: wider for switching/autonomous decks, where an LTE-scale
  // perturbation reads as phase drift at matched sample times.
  r.tolerance = gen.kind == "linear" ? 0.08 : 0.15;
  return r;
}

int RunSmoke() {
  // One small switching deck, one run per configuration: the gate is about
  // the adaptive policy ENGAGING and not regressing the modeled makespan —
  // never about wall time (which a loaded CI machine can't promise).
  const auto gen = circuits::MakeInverterChain(12);
  const DeckResult r = RunDeck(gen);

  int failures = 0;
  auto require = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };

  const double ratio = r.fixed.makespan_seconds / r.adaptive.makespan_seconds;
  std::printf("bench_pipeline --smoke: %s\n", r.name.c_str());
  std::printf("  modeled makespan (iteration units): serial %.0f, fixed %.0f, "
              "adaptive %.0f (adaptive/fixed ratio %.3f)\n",
              r.serial.makespan_seconds, r.fixed.makespan_seconds,
              r.adaptive.makespan_seconds, ratio);
  std::printf("  adaptive: %llu depth decisions (%llu raises, %llu cuts), "
              "acceptance %.3f, %llu event snaps, deviation %.3g V\n",
              static_cast<unsigned long long>(r.adaptive.spec.depth_decisions),
              static_cast<unsigned long long>(r.adaptive.spec.depth_raises),
              static_cast<unsigned long long>(r.adaptive.spec.depth_cuts),
              r.adaptive.sched.speculation_acceptance(),
              static_cast<unsigned long long>(r.adaptive.spec.event_snaps),
              r.deviation);
  require(r.fixed.spec.depth_decisions > 0, "fixed run counted depth decisions");
  require(r.fixed.spec.depth_raises == 0 && r.fixed.spec.depth_cuts == 0,
          "fixed run never steered the depth");
  require(r.adaptive.spec.depth_decisions > 0, "adaptive controller engaged");
  require(r.adaptive.sched.speculative_solves > 0, "adaptive run still speculates");
  // The controller must not LOSE against the fixed scheduler on its home
  // turf; a small slack absorbs round-granularity effects on a tiny deck.
  require(ratio >= 0.95, "adaptive within 5% of fixed modeled makespan");
  require(r.deviation < r.tolerance, "adaptive trace within LTE-tolerance scale");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--smoke")) return RunSmoke();

  std::printf("=== Adaptive speculation policy: fixed vs acceptance-driven ===\n\n");

  std::vector<circuits::GeneratedCircuit> decks;
  decks.push_back(circuits::MakeRcMesh(16, 16));
  decks.push_back(circuits::MakeRingOscillator(9));
  decks.push_back(circuits::MakeInverterChain(20));

  util::Table table({"deck", "kind", "n", "speedup fixed", "speedup adaptive",
                     "adp/fix", "spec acc", "depth avg", "snaps", "dev (V)"});

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_pipeline.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"threads\": %d,\n  \"decks\": [\n", kThreads);

  bool adaptive_no_worse = true;
  bool all_within_tolerance = true;
  double best_event_deck_speedup = 0.0;

  for (std::size_t di = 0; di < decks.size(); ++di) {
    const DeckResult r = RunDeck(decks[di]);

    const double speedup_fixed = r.serial.makespan_seconds / r.fixed.makespan_seconds;
    const double speedup_adaptive =
        r.serial.makespan_seconds / r.adaptive.makespan_seconds;
    const double ratio = r.fixed.makespan_seconds / r.adaptive.makespan_seconds;
    const auto& spec = r.adaptive.spec;
    const double depth_avg =
        spec.depth_decisions > 0
            ? static_cast<double>(spec.depth_chosen) /
                  static_cast<double>(spec.depth_decisions)
            : 0.0;

    adaptive_no_worse = adaptive_no_worse && ratio >= 0.999;
    all_within_tolerance = all_within_tolerance && r.deviation < r.tolerance;
    // The >= 1.6x target is specific to event-dense decks (oscillator /
    // switching digital); the linear mesh has no events to exploit.
    if (r.kind != "linear") {
      best_event_deck_speedup = std::max(best_event_deck_speedup, speedup_adaptive);
    }

    table.AddRow({r.name, r.kind, std::to_string(r.unknowns),
                  util::Table::Cell(speedup_fixed, 3),
                  util::Table::Cell(speedup_adaptive, 3), util::Table::Cell(ratio, 3),
                  util::Table::Cell(r.adaptive.sched.speculation_acceptance(), 3),
                  util::Table::Cell(depth_avg, 2),
                  std::to_string(spec.event_snaps), util::Table::Cell(r.deviation, 4)});

    std::fprintf(json, "    {\n");
    std::fprintf(json, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(json, "      \"kind\": \"%s\",\n", r.kind.c_str());
    std::fprintf(json, "      \"unknowns\": %d,\n", r.unknowns);
    std::fprintf(json, "      \"serial_wall_seconds\": %.9e,\n", r.serial.wall_seconds);
    std::fprintf(json, "      \"fixed_wall_seconds\": %.9e,\n", r.fixed.wall_seconds);
    std::fprintf(json, "      \"adaptive_wall_seconds\": %.9e,\n",
                 r.adaptive.wall_seconds);
    std::fprintf(json, "      \"modeled_speedup_fixed\": %.6f,\n", speedup_fixed);
    std::fprintf(json, "      \"modeled_speedup_adaptive\": %.6f,\n", speedup_adaptive);
    std::fprintf(json, "      \"adaptive_over_fixed_ratio\": %.6f,\n", ratio);
    std::fprintf(json, "      \"fixed_rounds\": %zu,\n", r.fixed.rounds);
    std::fprintf(json, "      \"adaptive_rounds\": %zu,\n", r.adaptive.rounds);
    std::fprintf(json, "      \"fixed_speculation_acceptance\": %.6f,\n",
                 r.fixed.sched.speculation_acceptance());
    std::fprintf(json, "      \"adaptive_speculation_acceptance\": %.6f,\n",
                 r.adaptive.sched.speculation_acceptance());
    std::fprintf(json, "      \"adaptive_depth_avg\": %.4f,\n", depth_avg);
    std::fprintf(json, "      \"adaptive_max_deviation_volts\": %.9e,\n", r.deviation);
    std::fprintf(json, "      \"deviation_tolerance_volts\": %.3f,\n", r.tolerance);
    std::fprintf(json, "      \"adaptive_within_tolerance\": %s,\n",
                 r.deviation < r.tolerance ? "true" : "false");
    // Full spec.* + sched.* counter block for the adaptive run — the same
    // vocabulary as run_stats.json so the artifacts stay diffable.
    {
      util::telemetry::CounterRegistry registry;
      r.adaptive.sched.ExportCounters(registry);
      r.adaptive.spec.ExportCounters(registry);
      std::fprintf(json, "      \"adaptive_counters\": ");
      bench::WriteCountersJson(json, registry, 6);
      std::fprintf(json, "\n");
    }
    std::fprintf(json, "    }%s\n", di + 1 < decks.size() ? "," : "");
  }

  std::fprintf(json, "  ],\n");
  // tools/check_bench.py reads this block: every current numeric metric
  // whose path contains the key must stay >= the floor.
  std::fprintf(json, "  \"min_ratio\": {\n");
  std::fprintf(json, "    \"adaptive_over_fixed_ratio\": 0.999\n");
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"best_event_deck_speedup_adaptive\": %.6f,\n",
               best_event_deck_speedup);
  std::fprintf(json, "  \"event_deck_speedup_at_least_1p6\": %s,\n",
               best_event_deck_speedup >= 1.6 ? "true" : "false");
  std::fprintf(json, "  \"adaptive_no_worse_on_all_decks\": %s,\n",
               adaptive_no_worse ? "true" : "false");
  std::fprintf(json, "  \"all_traces_within_tolerance\": %s\n",
               all_within_tolerance ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  bench::Emit(table, "bench_pipeline");
  std::printf("(json written to BENCH_pipeline.json)\n");
  std::printf(
      "Expected shape: the mesh gains little (no events, acceptance already\n"
      "high -> the controller simply deepens the chain); the oscillator and the\n"
      "switching chain gain from deeper chains while predictions land plus\n"
      "event-aware placement snapping speculative points onto source corners.\n");
  return 0;
}
