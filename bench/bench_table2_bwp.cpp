// Table 2 (reconstructed): backward pipelining vs serial SPICE.
//
// For each benchmark circuit: sequential rounds (the quantity BWP shrinks by
// taking larger leading steps), accepted steps, and the modeled multi-core
// speedup at 2 and 3 threads (virtual-time replay of the measured ledger —
// see DESIGN.md for why this substitutes for the paper's wall clock).
#include "bench_common.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Table 2: backward pipelining (BWP) ===\n\n");
  util::Table table({"circuit", "serial rounds", "bwp2 rounds", "bwp3 rounds",
                     "bwd solves (x2)", "speedup x2", "speedup x3", "max dev (V)"});

  for (auto& gen : bench::PaperSuite()) {
    engine::MnaStructure mna(*gen.circuit);
    const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
    const auto bwp2 = bench::RunScheme(gen, mna, pipeline::Scheme::kBackward, 2);
    const auto bwp3 = bench::RunScheme(gen, mna, pipeline::Scheme::kBackward, 3);

    table.AddRow({gen.name, util::Table::Cell(serial.rounds),
                  util::Table::Cell(bwp2.rounds), util::Table::Cell(bwp3.rounds),
                  util::Table::Cell(bwp2.sched.backward_solves),
                  bench::Speedup(serial.makespan_seconds, bwp2.makespan_seconds),
                  bench::Speedup(serial.makespan_seconds, bwp3.makespan_seconds),
                  util::Table::Cell(
                      engine::Trace::MaxDeviationAll(serial.trace, bwp2.trace), 2)});
  }
  bench::Emit(table, "table2_bwp");
  std::printf("Expected shape (paper): modest speedups, best on circuits with\n"
              "growth-cap-limited regions (pulsed/digital), ~1 on smooth analog.\n");
  return 0;
}
