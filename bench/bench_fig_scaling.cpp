// Figure C (reconstructed): modeled speedup vs thread count, per scheme.
// The paper's point: coarse-grained pipelining keeps scaling where
// fine-grained intra-time-point parallelism has already saturated — though
// WavePipe itself saturates once the pipeline depth (in-flight time points)
// is exhausted, visible here beyond 3-4 threads.
#include "bench_common.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Figure C: speedup vs thread count ===\n\n");

  std::vector<circuits::GeneratedCircuit> suite;
  suite.push_back(circuits::MakeRcLadder(300));
  suite.push_back(circuits::MakeInverterChain(24));

  for (auto& gen : suite) {
    engine::MnaStructure mna(*gen.circuit);
    const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
    std::printf("circuit %s (serial rounds %zu):\n", gen.name.c_str(), serial.rounds);

    util::Table table({"threads", "bwp", "fwp", "combined"});
    util::AsciiChart chart(60, 10);
    std::vector<std::pair<double, double>> series_bwp, series_fwp, series_comb;
    for (int threads = 1; threads <= 4; ++threads) {
      std::vector<std::string> row{util::Table::Cell(threads)};
      for (auto scheme : {pipeline::Scheme::kBackward, pipeline::Scheme::kForward,
                          pipeline::Scheme::kCombined}) {
        double speedup = 1.0;
        if (threads >= (scheme == pipeline::Scheme::kCombined ? 3 : 2)) {
          const auto res = bench::RunScheme(gen, mna, scheme, threads);
          speedup = serial.makespan_seconds / res.makespan_seconds;
        }
        row.push_back(util::Table::Cell(speedup, 3));
        auto& series = scheme == pipeline::Scheme::kBackward  ? series_bwp
                       : scheme == pipeline::Scheme::kForward ? series_fwp
                                                              : series_comb;
        series.emplace_back(threads, speedup);
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    chart.AddSeries("bwp", series_bwp);
    chart.AddSeries("fwp", series_fwp);
    chart.AddSeries("combined", series_comb);
    std::printf("%s\n", chart.ToString().c_str());
  }
  std::printf("Expected shape (paper): monotone but saturating gains; combined tops\n"
              "the individual schemes once 3+ threads are available.\n");
  return 0;
}
