// Assembly-strategy bench: serial device loop vs private-buffer reduction vs
// conflict-free colored stamping (parallel/coloring.hpp), over the standard
// benchmark suite.
//
// Each strategy is measured at 1 thread (per-phase thread-CPU seconds over
// many assembly passes), then projected to k workers with the virtual-time
// model ModelAssemblySeconds() — the same 1-vCPU-container methodology the
// pipeline benches use.  Results go to BENCH_assembly.json (run from the
// repo root so the committed copy refreshes in place).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuits/generators.hpp"
#include "engine/newton.hpp"
#include "parallel/coloring.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace wavepipe;

namespace {

constexpr int kModeledThreads[] = {1, 2, 4, 8};

engine::NewtonInputs TransientInputs() {
  engine::NewtonInputs inputs;
  inputs.time = 1e-9;
  inputs.a0 = 2e9;
  inputs.transient = true;
  inputs.gmin = 1e-12;
  return inputs;
}

void SeedIterate(engine::SolveContext& ctx) {
  for (std::size_t i = 0; i < ctx.x.size(); ++i) {
    ctx.x[i] = 0.7 * std::sin(0.37 * static_cast<double>(i) + 0.2);
  }
}

struct StrategyMeasurement {
  engine::AssemblyStats stats;           // accumulated over all passes
  double seconds_per_pass = 0.0;         // measured, 1 thread
  double modeled_per_pass[4] = {0, 0, 0, 0};  // at kModeledThreads
};

/// Runs `passes` assembly passes through the given assembler (or, with a
/// null mode marker, the serial device loop) and returns per-pass phase
/// costs.
StrategyMeasurement MeasureSerial(engine::SolveContext& ctx,
                                  const engine::NewtonInputs& inputs, int passes) {
  StrategyMeasurement m;
  m.stats.strategy = "serial";
  util::ThreadCpuTimer timer;
  for (int p = 0; p < passes; ++p) {
    engine::EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);
  }
  // The serial loop has no phase split; book everything as stamping.
  m.stats.stamp_seconds = timer.Seconds();
  m.stats.passes = static_cast<std::uint64_t>(passes);
  return m;
}

StrategyMeasurement MeasureStrategy(const circuits::GeneratedCircuit& gen,
                                    const engine::MnaStructure& mna,
                                    parallel::AssemblyMode mode,
                                    engine::SolveContext& ctx,
                                    const engine::NewtonInputs& inputs, int passes) {
  const auto assembler = parallel::MakeAssembler(mode, *gen.circuit, mna, /*threads=*/1);
  for (int p = 0; p < passes; ++p) {
    assembler->Assemble(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);
  }
  StrategyMeasurement m;
  m.stats = assembler->stats();
  return m;
}

void FinishMeasurement(StrategyMeasurement& m) {
  const double passes = static_cast<double>(m.stats.passes);
  m.seconds_per_pass =
      (m.stats.zero_seconds + m.stats.stamp_seconds + m.stats.merge_seconds) / passes;
  for (int i = 0; i < 4; ++i) {
    m.modeled_per_pass[i] =
        parallel::ModelAssemblySeconds(m.stats, kModeledThreads[i]) / passes;
  }
}

void JsonArray(std::FILE* f, const char* key, const double (&v)[4], const char* tail) {
  std::fprintf(f, "      \"%s\": [%.9e, %.9e, %.9e, %.9e]%s\n", key, v[0], v[1], v[2],
               v[3], tail);
}

}  // namespace

int main() {
  std::printf("=== Assembly strategies: serial vs reduction vs colored ===\n\n");

  auto suite = circuits::MakeBenchmarkSuite();

  util::Table table({"circuit", "devices", "nnz", "colors", "serial us", "red us",
                     "col us", "red x2", "col x2", "red x4", "col x4"});

  std::FILE* json = std::fopen("BENCH_assembly.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_assembly.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"threads_modeled\": [1, 2, 4, 8],\n  \"circuits\": [\n");

  std::string largest_name;
  std::size_t largest_nnz = 0;
  bool largest_colored_wins_at_2 = false;
  engine::AssemblyStats largest_colored_stats;

  for (std::size_t ci = 0; ci < suite.size(); ++ci) {
    const auto& gen = suite[ci];
    const engine::MnaStructure mna(*gen.circuit);
    const parallel::ColorSchedule schedule = parallel::BuildColorSchedule(*gen.circuit, mna);

    // Enough passes for stable thread-CPU timings on microsecond stamps.
    const int passes =
        std::max(200, static_cast<int>(2'000'000 / (mna.nnz() + 1)));

    engine::SolveContext ctx(*gen.circuit, mna);
    SeedIterate(ctx);
    const engine::NewtonInputs inputs = TransientInputs();

    StrategyMeasurement serial = MeasureSerial(ctx, inputs, passes);
    StrategyMeasurement reduction =
        MeasureStrategy(gen, mna, parallel::AssemblyMode::kReduction, ctx, inputs, passes);
    StrategyMeasurement colored =
        MeasureStrategy(gen, mna, parallel::AssemblyMode::kColored, ctx, inputs, passes);
    FinishMeasurement(serial);
    FinishMeasurement(reduction);
    FinishMeasurement(colored);

    const bool colored_wins_at_2 = colored.modeled_per_pass[1] < reduction.modeled_per_pass[1];
    if (mna.nnz() > largest_nnz) {
      largest_nnz = mna.nnz();
      largest_name = gen.name;
      largest_colored_wins_at_2 = colored_wins_at_2;
      largest_colored_stats = colored.stats;
    }

    table.AddRow({gen.name, std::to_string(gen.circuit->devices().size()),
                  std::to_string(mna.nnz()), std::to_string(schedule.num_colors()),
                  util::Table::Cell(serial.seconds_per_pass * 1e6, 3),
                  util::Table::Cell(reduction.seconds_per_pass * 1e6, 3),
                  util::Table::Cell(colored.seconds_per_pass * 1e6, 3),
                  util::Table::Cell(serial.seconds_per_pass / reduction.modeled_per_pass[1], 3),
                  util::Table::Cell(serial.seconds_per_pass / colored.modeled_per_pass[1], 3),
                  util::Table::Cell(serial.seconds_per_pass / reduction.modeled_per_pass[2], 3),
                  util::Table::Cell(serial.seconds_per_pass / colored.modeled_per_pass[2], 3)});

    std::fprintf(json, "    {\n");
    std::fprintf(json, "      \"name\": \"%s\",\n", gen.name.c_str());
    std::fprintf(json, "      \"devices\": %zu,\n", gen.circuit->devices().size());
    std::fprintf(json, "      \"unknowns\": %d,\n", mna.dimension());
    std::fprintf(json, "      \"nnz\": %zu,\n", mna.nnz());
    std::fprintf(json, "      \"colors\": %d,\n", schedule.num_colors());
    std::fprintf(json, "      \"conflict_edges\": %zu,\n", schedule.conflict_edges());
    std::fprintf(json, "      \"max_degree\": %d,\n", schedule.max_degree());
    std::fprintf(json, "      \"passes\": %d,\n", passes);
    std::fprintf(json,
                 "      \"measured_seconds_per_pass\": {\"serial\": %.9e, "
                 "\"reduction\": %.9e, \"colored\": %.9e},\n",
                 serial.seconds_per_pass, reduction.seconds_per_pass,
                 colored.seconds_per_pass);
    JsonArray(json, "modeled_reduction_seconds_per_pass", reduction.modeled_per_pass, ",");
    JsonArray(json, "modeled_colored_seconds_per_pass", colored.modeled_per_pass, ",");
    std::fprintf(json, "      \"colored_beats_reduction_at_2_threads\": %s\n",
                 colored_wins_at_2 ? "true" : "false");
    std::fprintf(json, "    }%s\n", ci + 1 < suite.size() ? "," : "");
  }

  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"largest_circuit\": \"%s\",\n", largest_name.c_str());
  // Same counter vocabulary as run_stats.json (assembly.*) — shared schema
  // with the CLI stats output and tools/check_bench.py.
  {
    util::telemetry::CounterRegistry registry;
    largest_colored_stats.ExportCounters(registry);
    std::fprintf(json, "  \"largest_circuit_colored_counters\": ");
    bench::WriteCountersJson(json, registry, 2);
    std::fprintf(json, ",\n");
  }
  std::fprintf(json, "  \"largest_circuit_colored_beats_reduction_at_2_threads\": %s\n",
               largest_colored_wins_at_2 ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  bench::Emit(table, "bench_assembly");
  std::printf("(json written to BENCH_assembly.json)\n");
  std::printf(
      "Expected shape: colored assembly removes the O(nnz x k) reduction sweep, so\n"
      "its modeled multi-thread time beats reduction everywhere the conflict graph\n"
      "colors well; supply-rail cliques (MOS circuits) shrink but don't erase the\n"
      "gap at 1-thread measurement granularity.\n");
  return 0;
}
