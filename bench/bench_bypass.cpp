// Device latency bypass + chord-Newton acceleration bench: end-to-end serial
// transient wall time with the accelerations OFF (the historical
// always-recompute engine) vs ON (bypass + chord factor reuse), over the
// Table-1 benchmark suite.
//
// Methodology: min-of-repeats wall time per configuration (scheduler-noise
// defence), identical specs and step control on both sides; accuracy is the
// max deviation of the accepted probe traces.  Results go to
// BENCH_bypass.json (run from the repo root so the committed copy refreshes
// in place).
//
// `--smoke` runs one tiny circuit once per configuration and exits non-zero
// when the accelerations stop engaging or regress the iteration/refactor
// economy — a ctest-visible guard (label bench-smoke) that costs seconds.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace wavepipe;

namespace {

engine::SimOptions AccelOptions() {
  engine::SimOptions sim;
  sim.device_bypass = true;
  sim.chord_newton = true;
  return sim;
}

struct RunMetrics {
  double wall_seconds = 1e300;  ///< min over repeats
  engine::TransientResult result;  ///< from the last repeat (deterministic)
};

RunMetrics RunRepeated(const circuits::GeneratedCircuit& gen,
                       const engine::MnaStructure& mna, const engine::SimOptions& sim,
                       int repeats) {
  RunMetrics m;
  for (int r = 0; r < repeats; ++r) {
    util::WallTimer timer;
    auto result = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, sim);
    m.wall_seconds = std::min(m.wall_seconds, timer.Seconds());
    m.result = std::move(result);
  }
  return m;
}

bool TracesBitIdentical(const engine::Trace& a, const engine::Trace& b) {
  if (a.num_samples() != b.num_samples()) return false;
  for (std::size_t i = 0; i < a.num_samples(); ++i) {
    if (a.time(i) != b.time(i)) return false;
    for (std::size_t p = 0; p < a.probes().size(); ++p) {
      if (a.value(i, p) != b.value(i, p)) return false;
    }
  }
  return true;
}

int RunSmoke() {
  // One tiny digital circuit, one run per configuration: the gate is about
  // the accelerations ENGAGING and not regressing the solve economy, not
  // about wall time (which a loaded CI machine can't promise).
  const auto gen = circuits::MakeInverterChain(8);
  const engine::MnaStructure mna(*gen.circuit);

  const auto base = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
  engine::SimOptions accel_options = AccelOptions();
  // The smoke circuit factors fill-free; force chord past the cost gate so
  // the engagement counters are exercised.
  accel_options.chord_fill_ratio = 0.0;
  const auto accel =
      engine::RunTransientSerial(*gen.circuit, mna, gen.spec, accel_options);

  int failures = 0;
  auto require = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };

  std::printf("bench_bypass --smoke: %s\n", gen.name.c_str());
  require(base.completed, "baseline transient completed");
  require(accel.completed, "accelerated transient completed");
  if (base.completed && accel.completed) {
    const double deviation = engine::Trace::MaxDeviationAll(base.trace, accel.trace);
    std::printf("  deviation %.3g V, iters %llu -> %llu, bypassed %llu/%llu, "
                "chord %llu, forced refactors %llu\n",
                deviation,
                static_cast<unsigned long long>(base.stats.newton_iterations),
                static_cast<unsigned long long>(accel.stats.newton_iterations),
                static_cast<unsigned long long>(accel.stats.bypassed_evals),
                static_cast<unsigned long long>(accel.stats.bypassed_evals +
                                                accel.stats.bypass_full_evals),
                static_cast<unsigned long long>(accel.stats.chord_solves),
                static_cast<unsigned long long>(accel.stats.forced_refactors));
    require(deviation < 0.15, "accepted trace within LTE-tolerance scale");
    require(accel.stats.bypassed_evals > 0, "bypass engaged (replayed evals > 0)");
    require(accel.stats.chord_solves > 0, "chord reuse engaged (chord solves > 0)");
    // Newton-iteration economy: chord iterates are allowed to add cheap
    // iterations, but a blow-up means the safety net stopped working.
    require(accel.stats.newton_iterations <=
                base.stats.newton_iterations + base.stats.newton_iterations / 2 + 50,
            "Newton iterations within 1.5x + 50 of baseline");
    // Every forced refactor burns a factorization; more of them than Newton
    // iterations means the rate monitor is thrashing.
    require(accel.stats.forced_refactors <= accel.stats.newton_iterations,
            "forced refactors bounded by Newton iterations");
    // A switching digital chain gives chord little to reuse; the adaptive
    // backoff must keep the attempts close to cost-neutral.
    require(accel.stats.lu_full_factors + accel.stats.lu_refactors <=
                (base.stats.lu_full_factors + base.stats.lu_refactors) * 11 / 10 + 10,
            "factorizations within 1.1x of baseline");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--smoke")) return RunSmoke();

  std::printf("=== Device bypass + chord Newton: end-to-end serial transient ===\n\n");
  const int repeats = 5;

  auto suite = circuits::MakeBenchmarkSuite();
  // Larger meshes: the chord win grows with LU fill, and table-1's 16x16
  // mesh is the smallest member of that family.
  suite.push_back(circuits::MakeRcMesh(24, 24));
  suite.push_back(circuits::MakeRcMesh(32, 32));
  util::Table table({"circuit", "kind", "n", "steps", "base ms", "accel ms", "speedup",
                     "bypassed", "chord", "forced", "deviation"});

  std::FILE* json = std::fopen("BENCH_bypass.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_bypass.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"repeats\": %d,\n  \"circuits\": [\n", repeats);

  int circuits_at_1p2 = 0;
  bool disabled_paths_bit_identical = true;
  bool all_within_tolerance = true;
  std::string largest_name;
  int largest_unknowns = 0;
  engine::TransientStats largest_accel_stats;

  for (std::size_t ci = 0; ci < suite.size(); ++ci) {
    const auto& gen = suite[ci];
    const engine::MnaStructure mna(*gen.circuit);

    const RunMetrics base = RunRepeated(gen, mna, {}, repeats);
    const RunMetrics accel = RunRepeated(gen, mna, AccelOptions(), repeats);

    // "Disabled" must mean DISABLED: a re-run with default options after the
    // accelerated runs reproduces the baseline trace bit for bit.
    const auto replay = engine::RunTransientSerial(*gen.circuit, mna, gen.spec, {});
    const bool bit_identical =
        TracesBitIdentical(base.result.trace, replay.trace);
    disabled_paths_bit_identical = disabled_paths_bit_identical && bit_identical;

    const auto& bs = base.result.stats;
    const auto& as = accel.result.stats;
    const double deviation =
        engine::Trace::MaxDeviationAll(base.result.trace, accel.result.trace);
    const double speedup = base.wall_seconds / accel.wall_seconds;
    const std::uint64_t bypass_total = as.bypassed_evals + as.bypass_full_evals;
    const double bypass_fraction =
        bypass_total > 0 ? static_cast<double>(as.bypassed_evals) /
                               static_cast<double>(bypass_total)
                         : 0.0;
    // LTE-tolerance-scale accuracy gate, matched to the equivalence tests.
    // Switching and autonomous circuits get the wider gate: an oscillator
    // turns any LTE-scale perturbation into accumulated phase drift, which
    // reads as amplitude deviation at matched sample times.
    const double tolerance = gen.kind == "linear" ? 0.08 : 0.15;
    if (speedup >= 1.2) ++circuits_at_1p2;
    all_within_tolerance = all_within_tolerance && deviation < tolerance;
    if (mna.dimension() > largest_unknowns) {
      largest_unknowns = mna.dimension();
      largest_name = gen.name;
      largest_accel_stats = as;
    }

    table.AddRow({gen.name, gen.kind, std::to_string(mna.dimension()),
                  std::to_string(as.steps_accepted),
                  util::Table::Cell(base.wall_seconds * 1e3, 2),
                  util::Table::Cell(accel.wall_seconds * 1e3, 2),
                  util::Table::Cell(speedup, 3),
                  util::Table::Cell(100.0 * bypass_fraction, 1) + "%",
                  std::to_string(as.chord_solves), std::to_string(as.forced_refactors),
                  util::Table::Cell(deviation, 4)});

    std::fprintf(json, "    {\n");
    std::fprintf(json, "      \"name\": \"%s\",\n", gen.name.c_str());
    std::fprintf(json, "      \"kind\": \"%s\",\n", gen.kind.c_str());
    std::fprintf(json, "      \"unknowns\": %d,\n", mna.dimension());
    std::fprintf(json, "      \"steps_accepted\": %zu,\n", as.steps_accepted);
    std::fprintf(json, "      \"baseline_wall_seconds\": %.9e,\n", base.wall_seconds);
    std::fprintf(json, "      \"accel_wall_seconds\": %.9e,\n", accel.wall_seconds);
    std::fprintf(json, "      \"speedup\": %.6f,\n", speedup);
    std::fprintf(json, "      \"baseline_newton_iterations\": %llu,\n",
                 static_cast<unsigned long long>(bs.newton_iterations));
    std::fprintf(json, "      \"accel_newton_iterations\": %llu,\n",
                 static_cast<unsigned long long>(as.newton_iterations));
    std::fprintf(json, "      \"baseline_factorizations\": %llu,\n",
                 static_cast<unsigned long long>(bs.lu_full_factors + bs.lu_refactors));
    std::fprintf(json, "      \"accel_factorizations\": %llu,\n",
                 static_cast<unsigned long long>(as.lu_full_factors + as.lu_refactors));
    std::fprintf(json, "      \"bypassed_evals\": %llu,\n",
                 static_cast<unsigned long long>(as.bypassed_evals));
    std::fprintf(json, "      \"bypass_full_evals\": %llu,\n",
                 static_cast<unsigned long long>(as.bypass_full_evals));
    std::fprintf(json, "      \"bypass_fraction\": %.6f,\n", bypass_fraction);
    std::fprintf(json, "      \"chord_solves\": %llu,\n",
                 static_cast<unsigned long long>(as.chord_solves));
    std::fprintf(json, "      \"forced_refactors\": %llu,\n",
                 static_cast<unsigned long long>(as.forced_refactors));
    std::fprintf(json, "      \"max_deviation_volts\": %.9e,\n", deviation);
    std::fprintf(json, "      \"deviation_tolerance_volts\": %.3f,\n", tolerance);
    std::fprintf(json, "      \"disabled_rerun_bit_identical\": %s,\n",
                 bit_identical ? "true" : "false");
    std::fprintf(json, "      \"speedup_at_least_1p2\": %s\n",
                 speedup >= 1.2 ? "true" : "false");
    std::fprintf(json, "    }%s\n", ci + 1 < suite.size() ? "," : "");
  }

  std::fprintf(json, "  ],\n");
  // Same counter vocabulary as run_stats.json (transient.* / lu.*), so
  // tools/check_bench.py and the CLI stats consumers share one schema.
  {
    util::telemetry::CounterRegistry registry;
    largest_accel_stats.ExportCounters(registry);
    std::fprintf(json, "  \"largest_circuit\": \"%s\",\n", largest_name.c_str());
    std::fprintf(json, "  \"largest_circuit_accel_counters\": ");
    bench::WriteCountersJson(json, registry, 2);
    std::fprintf(json, ",\n");
  }
  std::fprintf(json, "  \"circuits_at_or_above_1p2_speedup\": %d,\n", circuits_at_1p2);
  std::fprintf(json, "  \"speedup_1p2_on_at_least_two_circuits\": %s,\n",
               circuits_at_1p2 >= 2 ? "true" : "false");
  std::fprintf(json, "  \"all_traces_within_tolerance\": %s,\n",
               all_within_tolerance ? "true" : "false");
  std::fprintf(json, "  \"disabled_paths_bit_identical\": %s\n",
               disabled_paths_bit_identical ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);

  bench::Emit(table, "bench_bypass");
  std::printf("(json written to BENCH_bypass.json)\n");
  std::printf(
      "Expected shape: digital circuits (inverter chain, clock tree, ring) gain\n"
      "mostly from the bypass replaying quiescent MOSFETs between clock edges;\n"
      "linear circuits (RC mesh/ladder) gain from chord factor reuse eliminating\n"
      "per-iteration refactorizations once the step size settles.\n");
  return 0;
}
