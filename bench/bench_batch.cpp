// Batch sweep-throughput bench: variants/sec with shared symbolic artifacts
// vs a cold per-variant rebuild, on corners-analysis workloads (.step x .mc
// grids of .dc sweeps over an RC mesh and a power-grid deck, plus a small
// transient grid for the bit-identity booleans).
//
// Methodology (1-vCPU container, see DESIGN.md "Environment substitutions"):
// the gated headline is MODELED in deterministic flop units.  Both sides run
// the REAL batch runner (so Newton-iteration counts, ordering hit/miss
// counts and the waveform hashes are measured), and the costs are modeled
// from a real SparseLu factorization of the shared prototype:
//
//   S = kOrderingFlopsScale * factor_flops     (one min-degree ordering; the
//       ordering-cache header's premise — "computing a minimum-degree
//       ordering costs far more than a numeric refactorization" — made a
//       concrete constant)
//   W = newton_iterations * (pattern_nnz + n   (assembly)
//                            + factor_flops    (numeric refactor)
//                            + 2*(factor_nnz + n))  (triangular solve)
//
//   modeled_batch_speedup = (N*S + W) / (S + W)    (gate: >= 2.0)
//
// i.e. the cold side pays the symbolic cost N times, the shared side once;
// the numeric work W is identical on both sides BY CONSTRUCTION — the bench
// also asserts that as booleans: every batch variant's waveform hash equals
// a standalone run of the same variant deck, and the whole hash vector is
// identical at pool sizes 1 and 4.
//
// Wall-clock variants/sec for both sides are reported but never gated.
// Results go to BENCH_batch.json (run from the repo root so the committed
// copy refreshes in place).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "batch/runner.hpp"
#include "bench_common.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"
#include "engine/transient.hpp"
#include "netlist/elaborate.hpp"
#include "netlist/parser.hpp"
#include "sparse/lu.hpp"
#include "util/table.hpp"

using namespace wavepipe;

namespace {

/// One min-degree ordering modeled as this many numeric-refactor flop units
/// (see file comment).
constexpr double kOrderingFlopsScale = 25.0;

/// .step x .mc corners grid of .dc sweeps over a rows x cols RC mesh: the
/// per-variant numeric work is a handful of warm-started operating points,
/// so the symbolic share is large — the workload batch sharing targets.
std::string MeshDeck(int rows, int cols) {
  std::string deck = "rc mesh corners\n";
  deck += ".param rmesh=100\n";
  deck += "V1 n0_0 0 DC 1\n";
  auto node = [](int r, int c) {
    return "n" + std::to_string(r) + "_" + std::to_string(c);
  };
  int idx = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        deck += "Rh" + std::to_string(idx++) + " " + node(r, c) + " " +
                node(r, c + 1) + " {rmesh}\n";
      }
      if (r + 1 < rows) {
        deck += "Rv" + std::to_string(idx++) + " " + node(r, c) + " " +
                node(r + 1, c) + " {rmesh}\n";
      }
    }
  }
  // Corner load ties the far corner to ground so the sweep has a divider.
  deck += "Rload " + node(rows - 1, cols - 1) + " 0 1k\n";
  deck += ".step param rmesh list 50 100 200\n";
  deck += ".mc 2 variation=0.05\n";
  deck += ".dc V1 0 2 0.5\n";
  deck += ".print v(" + node(rows - 1, cols - 1) + ")\n";
  deck += ".end\n";
  return deck;
}

/// Power-grid flavor: mesh rails with distributed pulldown loads, stepped
/// rail resistance, .dc sweep of the supply for the IR-drop corners.
std::string GridDeck(int rows, int cols) {
  std::string deck = "power grid corners\n";
  deck += ".param rrail=2\n";
  deck += "V1 n0_0 0 DC 1\n";
  auto node = [](int r, int c) {
    return "n" + std::to_string(r) + "_" + std::to_string(c);
  };
  int idx = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        deck += "Rh" + std::to_string(idx++) + " " + node(r, c) + " " +
                node(r, c + 1) + " {rrail}\n";
      }
      if (r + 1 < rows) {
        deck += "Rv" + std::to_string(idx++) + " " + node(r, c) + " " +
                node(r + 1, c) + " {rrail}\n";
      }
      if ((r + c) % 3 == 0 && (r != 0 || c != 0)) {
        deck += "Rl" + std::to_string(idx++) + " " + node(r, c) + " 0 1k\n";
      }
    }
  }
  deck += ".step param rrail list 1 2 4\n";
  deck += ".mc 2 variation=0.1\n";
  deck += ".dc V1 0.9 1.1 0.05\n";
  deck += ".print v(" + node(rows - 1, cols - 1) + ")\n";
  deck += ".end\n";
  return deck;
}

/// Small transient grid for the tran bit-identity boolean (mirrors
/// examples/decks/rc_sweep.sp).
std::string TranDeck() {
  return "rc tran corners\n"
         ".param rload=1k\n"
         "V1 in 0 DC 0 PULSE(0 1 1u 100n 100n 10u 20u)\n"
         "R1 in out {rload}\n"
         "C1 out 0 1n\n"
         ".step param rload list 500 1k 2k\n"
         ".mc 2 variation=0.05\n"
         ".tran 0.2u 20u\n"
         ".print v(out)\n"
         ".end\n";
}

struct DeckPoint {
  std::string name;
  std::size_t variants = 0;
  int dimension = 0;
  std::size_t pattern_nnz = 0;
  std::size_t factor_nnz = 0;
  std::uint64_t factor_flops = 0;
  std::uint64_t newton_iterations = 0;
  std::uint64_t ordering_hits = 0;
  std::uint64_t ordering_misses = 0;
  double modeled_symbolic_flops = 0.0;
  double modeled_numeric_flops = 0.0;
  double modeled_batch_speedup = 0.0;
  double wall_shared = 0.0;
  double wall_cold = 0.0;
  bool standalone_identical = true;
  bool pool_invariant = true;
};

/// Re-runs one variant exactly as the batch would, but with NO shared
/// artifacts — the reference for the bit-identity boolean.
std::uint64_t StandaloneHash(const netlist::ParsedNetlist& parsed,
                             const batch::VariantSpec& spec,
                             const engine::SimOptions& sim) {
  batch::BatchOptions one;
  one.threads = 1;
  one.share_artifacts = false;
  one.sim = sim;
  const netlist::ParsedNetlist deck = batch::ApplyVariant(parsed, spec);
  const batch::BatchResult result = batch::RunBatch(deck, one);
  return result.variants.front().ok ? result.variants.front().waveform_hash : 0;
}

DeckPoint RunDeck(const std::string& name, const std::string& deck_text) {
  DeckPoint point;
  point.name = name;
  const netlist::ParsedNetlist parsed = netlist::ParseNetlist(deck_text);

  batch::BatchOptions options;
  options.threads = 4;
  options.sim = netlist::Elaborate(batch::ApplyParamDefaults(parsed)).sim_options;

  const batch::BatchResult shared = batch::RunBatch(parsed, options);
  point.variants = shared.variants.size();
  point.dimension = shared.artifacts.dimension;
  point.pattern_nnz = shared.artifacts.pattern_nnz;
  point.factor_nnz = shared.artifacts.factor_nnz;
  point.factor_flops = shared.artifacts.factor_flops;
  point.newton_iterations = shared.stats.newton_iterations;
  point.ordering_hits = shared.stats.ordering_hits;
  point.ordering_misses = shared.stats.ordering_misses;
  point.wall_shared = shared.stats.wall_seconds;

  batch::BatchOptions cold = options;
  cold.share_artifacts = false;
  const batch::BatchResult cold_run = batch::RunBatch(parsed, cold);
  point.wall_cold = cold_run.stats.wall_seconds;

  // Modeled headline (file comment): symbolic cost once vs once-per-variant.
  const double n = static_cast<double>(point.dimension);
  const double per_iter = static_cast<double>(point.pattern_nnz) + n +
                          static_cast<double>(point.factor_flops) +
                          2.0 * (static_cast<double>(point.factor_nnz) + n);
  point.modeled_symbolic_flops =
      kOrderingFlopsScale * static_cast<double>(point.factor_flops);
  point.modeled_numeric_flops =
      static_cast<double>(point.newton_iterations) * per_iter;
  const double nvar = static_cast<double>(point.variants);
  point.modeled_batch_speedup =
      (nvar * point.modeled_symbolic_flops + point.modeled_numeric_flops) /
      (point.modeled_symbolic_flops + point.modeled_numeric_flops);

  // Bit-identity booleans: every shared-batch waveform equals its standalone
  // (cold, cacheless) rerun, and a pool-size-1 shared batch reproduces the
  // pool-size-4 hash vector exactly.
  for (const auto& v : shared.variants) {
    if (!v.ok || StandaloneHash(parsed, v.spec, options.sim) != v.waveform_hash) {
      point.standalone_identical = false;
    }
  }
  batch::BatchOptions serial = options;
  serial.threads = 1;
  const batch::BatchResult pool1 = batch::RunBatch(parsed, serial);
  for (std::size_t i = 0; i < shared.variants.size(); ++i) {
    if (pool1.variants[i].waveform_hash != shared.variants[i].waveform_hash) {
      point.pool_invariant = false;
    }
  }
  if (cold_run.variants.size() != shared.variants.size()) {
    point.standalone_identical = false;
  }
  return point;
}

int RunSmoke() {
  const DeckPoint mesh = RunDeck("rcmesh8x8", MeshDeck(8, 8));
  const DeckPoint tran = RunDeck("rc_tran", TranDeck());
  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  %-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };
  std::printf("bench_batch --smoke: %s (%zu variants, dim %d)\n",
              mesh.name.c_str(), mesh.variants, mesh.dimension);
  check(mesh.variants == 6, "grid expands to 3 steps x 2 mc = 6 variants");
  check(mesh.ordering_misses <= 1, "shared cache: at most the prototype miss");
  check(mesh.ordering_hits >= mesh.variants, "every variant hit the shared ordering");
  check(mesh.standalone_identical, "batch == standalone bit-identical (dc)");
  check(mesh.pool_invariant, "pool 1 == pool 4 bit-identical (dc)");
  check(tran.standalone_identical, "batch == standalone bit-identical (tran)");
  check(tran.pool_invariant, "pool 1 == pool 4 bit-identical (tran)");
  check(mesh.modeled_batch_speedup > 1.0, "modeled shared-vs-cold speedup > 1");
  if (failures) {
    std::fprintf(stderr, "bench_batch --smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_batch --smoke: all checks passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--smoke")) return RunSmoke();

  std::printf("=== Batch analysis: shared symbolic artifacts vs cold rebuild ===\n\n");

  const DeckPoint mesh = RunDeck("rcmesh16x16", MeshDeck(16, 16));
  const DeckPoint grid = RunDeck("powergrid24x24", GridDeck(24, 24));
  const DeckPoint tran = RunDeck("rc_tran", TranDeck());

  util::Table table({"deck", "n", "variants", "iters", "hits", "misses",
                     "modeled x", "v/s shared", "v/s cold"});
  for (const DeckPoint* p : {&mesh, &grid, &tran}) {
    table.AddRow({p->name, std::to_string(p->dimension), std::to_string(p->variants),
                  std::to_string(p->newton_iterations), std::to_string(p->ordering_hits),
                  std::to_string(p->ordering_misses),
                  util::Table::Cell(p->modeled_batch_speedup, 3),
                  util::Table::Cell(p->wall_shared > 0.0
                                        ? static_cast<double>(p->variants) / p->wall_shared
                                        : 0.0, 1),
                  util::Table::Cell(p->wall_cold > 0.0
                                        ? static_cast<double>(p->variants) / p->wall_cold
                                        : 0.0, 1)});
  }

  const double headline = std::min(mesh.modeled_batch_speedup,
                                   grid.modeled_batch_speedup);
  const bool identity = mesh.standalone_identical && grid.standalone_identical &&
                        tran.standalone_identical;
  const bool invariant = mesh.pool_invariant && grid.pool_invariant &&
                         tran.pool_invariant;

  std::FILE* json = std::fopen("BENCH_batch.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_batch.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"ordering_flops_scale\": %.1f,\n", kOrderingFlopsScale);
  std::fprintf(json, "  \"decks\": [\n");
  bool first = true;
  for (const DeckPoint* p : {&mesh, &grid, &tran}) {
    std::fprintf(json, "%s    {\n", first ? "" : ",\n");
    first = false;
    std::fprintf(json, "      \"name\": \"%s\",\n", p->name.c_str());
    std::fprintf(json, "      \"variants\": %zu,\n", p->variants);
    std::fprintf(json, "      \"dimension\": %d,\n", p->dimension);
    std::fprintf(json, "      \"pattern_nnz\": %zu,\n", p->pattern_nnz);
    std::fprintf(json, "      \"factor_nnz\": %zu,\n", p->factor_nnz);
    std::fprintf(json, "      \"factor_flops\": %llu,\n",
                 static_cast<unsigned long long>(p->factor_flops));
    std::fprintf(json, "      \"newton_iterations\": %llu,\n",
                 static_cast<unsigned long long>(p->newton_iterations));
    std::fprintf(json, "      \"ordering_hits\": %llu,\n",
                 static_cast<unsigned long long>(p->ordering_hits));
    std::fprintf(json, "      \"ordering_misses\": %llu,\n",
                 static_cast<unsigned long long>(p->ordering_misses));
    std::fprintf(json, "      \"modeled_symbolic_flops\": %.0f,\n",
                 p->modeled_symbolic_flops);
    std::fprintf(json, "      \"modeled_numeric_flops\": %.0f,\n",
                 p->modeled_numeric_flops);
    // The tran deck's ratio is report-only (long transients are numeric-
    // dominated by design), so it carries a key the min_ratio floor and the
    // gated-substring list never match.
    std::fprintf(json, "      \"%s\": %.6f,\n",
                 p == &tran ? "shared_vs_cold_ratio_report_only"
                            : "modeled_batch_speedup",
                 p->modeled_batch_speedup);
    std::fprintf(json, "      \"wall_seconds_shared\": %.6f,\n", p->wall_shared);
    std::fprintf(json, "      \"wall_seconds_cold\": %.6f,\n", p->wall_cold);
    std::fprintf(json, "      \"variants_per_wall_second_shared\": %.3f,\n",
                 p->wall_shared > 0.0
                     ? static_cast<double>(p->variants) / p->wall_shared
                     : 0.0);
    std::fprintf(json, "      \"variants_per_wall_second_cold\": %.3f,\n",
                 p->wall_cold > 0.0
                     ? static_cast<double>(p->variants) / p->wall_cold
                     : 0.0);
    std::fprintf(json, "      \"standalone_bit_identical\": %s,\n",
                 p->standalone_identical ? "true" : "false");
    std::fprintf(json, "      \"pool_invariant_bit_identical\": %s\n",
                 p->pool_invariant ? "true" : "false");
    std::fprintf(json, "    }");
  }
  std::fprintf(json, "\n  ],\n");
  std::fprintf(json, "  \"variants_bit_identical_standalone\": %s,\n",
               identity ? "true" : "false");
  std::fprintf(json, "  \"pool_sizes_bit_identical\": %s,\n",
               invariant ? "true" : "false");
  // Gate SPEC consumed by tools/check_bench.py: the headline modeled
  // shared-vs-cold throughput ratio must stay >= 2x on both corners decks
  // (the tran deck's ratio is reported, not gated — long transients are
  // numeric-dominated by design).
  std::fprintf(json, "  \"modeled_batch_speedup\": %.6f,\n", headline);
  std::fprintf(json, "  \"min_ratio\": {\"modeled_batch_speedup\": 2.0}\n");
  std::fprintf(json, "}\n");
  std::fclose(json);

  bench::Emit(table, "bench_batch");
  std::printf("(json written to BENCH_batch.json)\n");
  std::printf(
      "Expected shape: the corners decks solve a handful of warm-started\n"
      "operating points per variant, so the min-degree ordering dominates a\n"
      "cold variant's cost; sharing it across the grid clears the 2x modeled\n"
      "gate while every waveform stays bit-identical to a standalone run at\n"
      "any pool size.\n");
  return (identity && invariant && headline >= 2.0) ? 0 : 1;
}
