// Table 1 (reconstructed): benchmark circuit characteristics.
// Columns mirror the standard DAC parallel-SPICE table: circuit, class,
// matrix size, device count, Jacobian nonzeros, simulation window, and the
// serial baseline's step/iteration counts.
#include "bench_common.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Table 1: benchmark circuits (reconstructed set) ===\n\n");
  util::Table table({"circuit", "class", "unknowns", "devices", "nnz", "window (s)",
                     "serial steps", "newton iters", "serial wall (s)"});

  for (auto& gen : bench::PaperSuite()) {
    engine::MnaStructure mna(*gen.circuit);
    const auto serial =
        bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
    table.AddRow({gen.name, gen.kind, util::Table::Cell(gen.circuit->num_unknowns()),
                  util::Table::Cell(gen.circuit->num_devices()),
                  util::Table::Cell(mna.nnz()), util::Table::Cell(gen.spec.tstop, 3),
                  util::Table::Cell(serial.steps),
                  util::Table::Cell(static_cast<std::size_t>(serial.newton_iterations)),
                  util::Table::Cell(serial.wall_seconds, 3)});
  }
  bench::Emit(table, "table1_circuits");
  return 0;
}
