// Figure B (reconstructed): time-step size along the simulation — serial vs
// backward pipelining.  BWP's raised growth cap shows up as a faster climb
// back to large steps after every waveform corner, i.e. fewer, larger steps.
#include <cmath>

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

namespace {

std::vector<std::pair<double, double>> StepSizeSeries(const engine::Trace& trace) {
  std::vector<std::pair<double, double>> out;
  for (std::size_t i = 1; i < trace.num_samples(); ++i) {
    out.emplace_back(trace.time(i), trace.time(i) - trace.time(i - 1));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure B: step-size trace, serial vs BWP ===\n\n");
  auto gen = circuits::MakeRcLadder(200);
  engine::MnaStructure mna(*gen.circuit);
  const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
  const auto bwp = bench::RunScheme(gen, mna, pipeline::Scheme::kBackward, 2);

  std::printf("circuit %s: serial %zu accepted steps, bwp %zu leading steps\n\n",
              gen.name.c_str(), serial.steps, bwp.steps);

  util::AsciiChart chart(72, 14);
  chart.AddSeries("serial h(t)", StepSizeSeries(serial.trace));
  chart.AddSeries("bwp h(t)", StepSizeSeries(bwp.trace));
  std::printf("%s\n", chart.ToString().c_str());

  // Histogram of step sizes (decades).
  util::Table table({"h bucket", "serial count", "bwp count"});
  const auto s_series = StepSizeSeries(serial.trace);
  const auto b_series = StepSizeSeries(bwp.trace);
  for (int decade = -6; decade <= 0; ++decade) {
    const double lo = gen.spec.tstop * std::pow(10.0, decade - 1);
    const double hi = gen.spec.tstop * std::pow(10.0, decade);
    auto count = [&](const std::vector<std::pair<double, double>>& series) {
      std::size_t n = 0;
      for (const auto& [t, h] : series) {
        if (h > lo && h <= hi) ++n;
      }
      return n;
    };
    table.AddRow({"(" + util::FormatDouble(lo, 2) + ", " + util::FormatDouble(hi, 2) + "]",
                  util::Table::Cell(count(s_series)), util::Table::Cell(count(b_series))});
  }
  bench::Emit(table, "fig_steps");
  std::printf("Expected shape (paper): BWP's distribution shifts toward larger steps;\n"
              "total step count drops by the rounds ratio of Table 2.\n");
  return 0;
}
