// Ablation 1: sensitivity of backward pipelining to the raised growth cap.
// gamma = 2 degenerates to serial behaviour (helpers wasted); very large
// gamma buys little because the LTE test rejects over-ambitious steps and
// each rejection costs a round.
#include "bench_common.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Ablation 1: BWP growth cap gamma ===\n\n");
  auto gen = circuits::MakeRcLadder(300);
  engine::MnaStructure mna(*gen.circuit);
  const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
  std::printf("circuit %s, serial rounds %zu\n\n", gen.name.c_str(), serial.rounds);

  util::Table table({"gamma", "rounds", "steps", "lte rejects", "speedup x2"});
  for (double gamma : {2.0, 2.5, 3.0, 4.0, 6.0, 10.0}) {
    pipeline::WavePipeOptions custom;
    custom.bwp_growth_caps = {gamma};
    const auto res = bench::RunScheme(gen, mna, pipeline::Scheme::kBackward, 2, {},
                                      &custom);
    table.AddRow({util::Table::Cell(gamma, 3), util::Table::Cell(res.rounds),
                  util::Table::Cell(res.steps),
                  util::Table::Cell(res.stats.steps_rejected_lte),
                  bench::Speedup(serial.makespan_seconds, res.makespan_seconds)});
  }
  bench::Emit(table, "abl_growth");
  std::printf("Expected shape: a sweet spot near gamma = 3-4 (the paper's choice);\n"
              "gamma = 2 wastes the helper, gamma >> 4 trades rounds for rejections.\n");
  return 0;
}
