// Table 3 (reconstructed): forward pipelining vs serial SPICE at 2 threads,
// with the speculation-economy columns (acceptance rate, direct-acceptance
// rate, repair cost) that explain where the speedup comes from.
#include "bench_common.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Table 3: forward pipelining (FWP), 2 threads ===\n\n");
  util::Table table({"circuit", "serial rounds", "fwp rounds", "spec", "accept %",
                     "direct %", "repair iters", "speedup x2", "max dev (V)"});

  for (auto& gen : bench::PaperSuite()) {
    engine::MnaStructure mna(*gen.circuit);
    const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
    const auto fwp = bench::RunScheme(gen, mna, pipeline::Scheme::kForward, 2);

    const double repair_iters =
        fwp.sched.repair_solves
            ? static_cast<double>(fwp.sched.repair_newton_iterations) /
                  static_cast<double>(fwp.sched.repair_solves)
            : 0.0;
    const double direct_pct =
        fwp.sched.speculative_solves
            ? 100.0 * static_cast<double>(fwp.sched.speculative_direct) /
                  static_cast<double>(fwp.sched.speculative_solves)
            : 0.0;
    table.AddRow(
        {gen.name, util::Table::Cell(serial.rounds), util::Table::Cell(fwp.rounds),
         util::Table::Cell(fwp.sched.speculative_solves),
         util::Table::Cell(100 * fwp.sched.speculation_acceptance(), 3),
         util::Table::Cell(direct_pct, 3), util::Table::Cell(repair_iters, 3),
         bench::Speedup(serial.makespan_seconds, fwp.makespan_seconds),
         util::Table::Cell(engine::Trace::MaxDeviationAll(serial.trace, fwp.trace), 2)});
  }
  bench::Emit(table, "table3_fwp");
  std::printf("Expected shape (paper): speedup tracks the acceptance rate; smooth\n"
              "waveform stretches predict well and pipeline, sharp transitions don't.\n");
  return 0;
}
