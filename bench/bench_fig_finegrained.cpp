// Figure D (reconstructed): WavePipe vs conventional fine-grained
// parallelism (intra-time-point parallel device evaluation).  The paper's
// motivation: fine-grained speedup is Amdahl-capped by the serial matrix
// solution; WavePipe's coarse-grained axis is orthogonal and keeps scaling.
#include "bench_common.hpp"
#include "bench_suite.hpp"
#include "parallel/fine_grained.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Figure D: WavePipe vs fine-grained device-eval parallelism ===\n\n");

  std::vector<circuits::GeneratedCircuit> suite;
  suite.push_back(circuits::MakeInverterChain(30));   // model-eval heavy
  suite.push_back(circuits::MakeClockTree(4));        // mixed
  suite.push_back(circuits::MakeRcMesh(20, 20));      // matrix heavy

  util::Table table({"circuit", "eval %", "lu %", "fg x2", "fg x4", "fg x8",
                     "wavepipe x2", "wavepipe x4"});

  for (auto& gen : suite) {
    engine::MnaStructure mna(*gen.circuit);

    // Phase breakdown from an instrumented 1-thread fine-grained run.
    parallel::FineGrainedOptions fg_options;
    fg_options.threads = 1;
    const auto fg = parallel::RunTransientFineGrained(*gen.circuit, mna, gen.spec,
                                                      fg_options);
    const double total = fg.phases.Total();

    const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
    const auto wp2 = bench::RunScheme(gen, mna, pipeline::Scheme::kForward, 2);
    const auto wp4 = bench::RunScheme(gen, mna, pipeline::Scheme::kCombined, 4);

    table.AddRow(
        {gen.name, util::Table::Cell(100 * fg.phases.model_eval / total, 3),
         util::Table::Cell(100 * fg.phases.lu / total, 3),
         util::Table::Cell(parallel::ModelFineGrainedSpeedup(fg.phases, 2), 3),
         util::Table::Cell(parallel::ModelFineGrainedSpeedup(fg.phases, 4), 3),
         util::Table::Cell(parallel::ModelFineGrainedSpeedup(fg.phases, 8), 3),
         bench::Speedup(serial.makespan_seconds, wp2.makespan_seconds),
         bench::Speedup(serial.makespan_seconds, wp4.makespan_seconds)});
  }
  bench::Emit(table, "fig_finegrained");
  std::printf(
      "Expected shape (paper): fine-grained gains track the device-eval share and\n"
      "flatten fast (serial LU floor); WavePipe's axis is independent of that split\n"
      "and composes with fine-grained parallelism (they multiply, not compete).\n");
  return 0;
}
