// Micro benchmarks (google-benchmark): the kernel costs the pipeline cost
// model rests on — sparse LU factor vs refactor vs solve, fill-reducing
// orderings, and full device-evaluation sweeps.
#include <benchmark/benchmark.h>

#include "circuits/generators.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"
#include "sparse/lu.hpp"
#include "sparse/ordering.hpp"
#include "sparse/triplet.hpp"
#include "util/rng.hpp"

using namespace wavepipe;

namespace {

/// Assembled Jacobian of an n x n RC mesh (the canonical circuit matrix).
sparse::CscMatrix MeshMatrix(int n) {
  auto gen = circuits::MakeRcMesh(n, n);
  engine::MnaStructure mna(*gen.circuit);
  engine::SolveContext ctx(*gen.circuit, mna);
  engine::NewtonInputs inputs;
  inputs.a0 = 1e9;
  inputs.transient = true;
  engine::EvalDevices(ctx, inputs, false, true);
  return ctx.matrix;
}

void BM_LuFactor(benchmark::State& state) {
  const sparse::CscMatrix a = MeshMatrix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sparse::SparseLu lu;
    lu.Factor(a);
    benchmark::DoNotOptimize(lu.stats().nnz_l);
  }
  state.SetLabel(std::to_string(a.cols()) + " unknowns");
}
BENCHMARK(BM_LuFactor)->Arg(8)->Arg(16)->Arg(32);

void BM_LuRefactor(benchmark::State& state) {
  const sparse::CscMatrix a = MeshMatrix(static_cast<int>(state.range(0)));
  sparse::SparseLu lu;
  lu.Factor(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu.Refactor(a));
  }
  state.SetLabel(std::to_string(a.cols()) + " unknowns");
}
BENCHMARK(BM_LuRefactor)->Arg(8)->Arg(16)->Arg(32);

void BM_LuSolve(benchmark::State& state) {
  const sparse::CscMatrix a = MeshMatrix(static_cast<int>(state.range(0)));
  sparse::SparseLu lu;
  lu.Factor(a);
  std::vector<double> b(static_cast<std::size_t>(a.cols()), 1.0);
  for (auto _ : state) {
    std::vector<double> x = b;
    lu.Solve(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(16)->Arg(32);

void BM_OrderingMinDegree(benchmark::State& state) {
  const sparse::CscMatrix a = MeshMatrix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::MinimumDegreeOrder(a));
  }
}
BENCHMARK(BM_OrderingMinDegree)->Arg(8)->Arg(16);

void BM_FillByOrdering(benchmark::State& state) {
  // Measures factor time under the three orderings (fill differences).
  const sparse::CscMatrix a = MeshMatrix(16);
  const auto ordering = static_cast<sparse::SparseLu::Options::Ordering>(state.range(0));
  sparse::SparseLu::Options options;
  options.ordering = ordering;
  for (auto _ : state) {
    sparse::SparseLu lu(options);
    lu.Factor(a);
    benchmark::DoNotOptimize(lu.stats().nnz_l);
  }
  sparse::SparseLu lu(options);
  lu.Factor(a);
  state.SetLabel("nnz(L)=" + std::to_string(lu.stats().nnz_l));
}
BENCHMARK(BM_FillByOrdering)->Arg(0)->Arg(1)->Arg(2);  // MD, natural, RCM

void BM_DeviceEval(benchmark::State& state) {
  auto gen = circuits::MakeInverterChain(static_cast<int>(state.range(0)));
  engine::MnaStructure mna(*gen.circuit);
  engine::SolveContext ctx(*gen.circuit, mna);
  engine::NewtonInputs inputs;
  inputs.a0 = 1e9;
  inputs.transient = true;
  for (auto _ : state) {
    engine::EvalDevices(ctx, inputs, false, true);
    benchmark::DoNotOptimize(ctx.rhs.data());
  }
  state.SetLabel(std::to_string(gen.circuit->num_devices()) + " devices");
}
BENCHMARK(BM_DeviceEval)->Arg(10)->Arg(40);

void BM_FullTimePointSolve(benchmark::State& state) {
  // The unit of WavePipe scheduling: one nonlinear time-point solve.
  auto gen = circuits::MakeInverterChain(20);
  engine::MnaStructure mna(*gen.circuit);
  engine::SolveContext ctx(*gen.circuit, mna);
  engine::SimOptions options;
  engine::SolveDcOperatingPoint(ctx, options);
  engine::HistoryWindow window{engine::MakeDcSolutionPoint(ctx, 0.0)};
  for (auto _ : state) {
    auto result = engine::SolveTimePoint(ctx, window, 1e-12, options.method, true, options);
    benchmark::DoNotOptimize(result.converged);
  }
}
BENCHMARK(BM_FullTimePointSolve);

}  // namespace

BENCHMARK_MAIN();
