// Table 4 (reconstructed): the combined BWP+FWP scheme at 3 and 4 threads —
// the paper's headline configuration.
#include "bench_common.hpp"
#include "bench_suite.hpp"

using namespace wavepipe;

int main() {
  std::printf("=== Table 4: combined backward + forward pipelining ===\n\n");
  util::Table table({"circuit", "serial rounds", "comb3 rounds", "comb4 rounds",
                     "speedup x3", "speedup x4", "best scheme", "max dev (V)"});

  for (auto& gen : bench::PaperSuite()) {
    engine::MnaStructure mna(*gen.circuit);
    const auto serial = bench::RunScheme(gen, mna, pipeline::Scheme::kSerial, 1);
    const auto bwp2 = bench::RunScheme(gen, mna, pipeline::Scheme::kBackward, 2);
    const auto fwp2 = bench::RunScheme(gen, mna, pipeline::Scheme::kForward, 2);
    const auto comb3 = bench::RunScheme(gen, mna, pipeline::Scheme::kCombined, 3);
    const auto comb4 = bench::RunScheme(gen, mna, pipeline::Scheme::kCombined, 4);

    const double s_bwp = serial.makespan_seconds / bwp2.makespan_seconds;
    const double s_fwp = serial.makespan_seconds / fwp2.makespan_seconds;
    const double s_c3 = serial.makespan_seconds / comb3.makespan_seconds;
    const double s_c4 = serial.makespan_seconds / comb4.makespan_seconds;
    const double best = std::max({s_bwp, s_fwp, s_c3, s_c4});
    const char* best_name = best == s_c4   ? "comb4"
                            : best == s_c3 ? "comb3"
                            : best == s_fwp ? "fwp2"
                                            : "bwp2";

    table.AddRow({gen.name, util::Table::Cell(serial.rounds),
                  util::Table::Cell(comb3.rounds), util::Table::Cell(comb4.rounds),
                  util::Table::Cell(s_c3, 3), util::Table::Cell(s_c4, 3), best_name,
                  util::Table::Cell(
                      engine::Trace::MaxDeviationAll(serial.trace, comb3.trace), 2)});
  }
  bench::Emit(table, "table4_combined");
  std::printf("Expected shape (paper): combined >= max(bwp, fwp) on most circuits;\n"
              "gains saturate beyond 3-4 threads (limited in-flight time points).\n");
  return 0;
}
