// DC sweep (.dc): step one independent source's DC value and solve the
// operating point at each step, warm-starting from the previous solution.
// The recorded Trace uses the swept value as the "time" axis, so every CSV /
// comparison utility built for transient waveforms works unchanged.
#pragma once

#include <cstdint>

#include "engine/circuit.hpp"
#include "engine/mna.hpp"
#include "engine/options.hpp"
#include "engine/trace.hpp"
#include "netlist/parser.hpp"

namespace wavepipe::batch {

struct DcSweepResult {
  engine::Trace trace;               ///< sample per sweep point (time = value)
  std::uint64_t points = 0;          ///< operating points solved
  std::uint64_t newton_iterations = 0;
};

/// Runs the sweep.  `circuit` is mutated between (sequential) solves — the
/// swept source's waveform is replaced per point — and left at the last
/// point's value; never share it with a concurrent solver.  Empty `probes`
/// defaults to the first nodes, like the transient engines.  Honors
/// SimOptions::ordering_cache.  Throws on an unknown/unsuitable source or a
/// non-convergent point.
DcSweepResult RunDcSweep(engine::Circuit& circuit,
                         const engine::MnaStructure& structure,
                         const netlist::DcCard& card, const engine::ProbeSet& probes,
                         const engine::SimOptions& options);

}  // namespace wavepipe::batch
