#include "batch/ac.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "devices/sources.hpp"
#include "engine/dcop.hpp"
#include "engine/newton.hpp"
#include "sparse/csc.hpp"
#include "sparse/lu.hpp"
#include "sparse/ordering_cache.hpp"
#include "util/error.hpp"

namespace wavepipe::batch {
namespace {

std::vector<double> FrequencyGrid(const netlist::AcCard& card) {
  std::vector<double> freqs;
  if (card.scale == netlist::AcCard::Scale::kDec) {
    const double tol = card.fstop * (1.0 + 1e-9);
    for (int k = 0;; ++k) {
      const double f =
          card.fstart * std::pow(10.0, static_cast<double>(k) / card.points);
      if (f > tol) break;
      freqs.push_back(f);
    }
  } else {
    if (card.points == 1) return {card.fstart};
    const double step = (card.fstop - card.fstart) / (card.points - 1);
    for (int k = 0; k < card.points; ++k) freqs.push_back(card.fstart + k * step);
  }
  return freqs;
}

/// The 2n doubled pattern [[G, -wC], [wC, G]] with slot maps back into the
/// 1n pattern, so per-frequency value refresh is one linear sweep.
struct DoubledSystem {
  sparse::CscMatrix matrix;  // 2n x 2n, values refreshed per frequency
  // For pattern slot k of the 1n matrix, the four doubled-value indices:
  std::vector<int> slot_gg;   // (i,     j)     <- G
  std::vector<int> slot_wc;   // (i + n, j)     <- +wC
  std::vector<int> slot_mwc;  // (i,     j + n) <- -wC
  std::vector<int> slot_gg2;  // (i + n, j + n) <- G
};

DoubledSystem BuildDoubledPattern(const sparse::CscMatrix& pattern) {
  const int n = pattern.cols();
  const std::size_t nnz = pattern.num_nonzeros();
  DoubledSystem sys;
  sys.slot_gg.resize(nnz);
  sys.slot_wc.resize(nnz);
  sys.slot_mwc.resize(nnz);
  sys.slot_gg2.resize(nnz);

  std::vector<int> col_ptr(static_cast<std::size_t>(2 * n) + 1, 0);
  std::vector<int> row_idx;
  row_idx.reserve(4 * nnz);
  // Column j of the doubled matrix: rows {i} (G) then rows {i + n} (wC) —
  // both runs ascending, so the concatenation stays sorted.
  int cursor = 0;
  for (int j = 0; j < n; ++j) {
    for (int k = pattern.col_begin(j); k < pattern.col_end(j); ++k) {
      sys.slot_gg[static_cast<std::size_t>(k)] = cursor++;
      row_idx.push_back(pattern.row_of(k));
    }
    for (int k = pattern.col_begin(j); k < pattern.col_end(j); ++k) {
      sys.slot_wc[static_cast<std::size_t>(k)] = cursor++;
      row_idx.push_back(pattern.row_of(k) + n);
    }
    col_ptr[static_cast<std::size_t>(j) + 1] = cursor;
  }
  for (int j = 0; j < n; ++j) {
    for (int k = pattern.col_begin(j); k < pattern.col_end(j); ++k) {
      sys.slot_mwc[static_cast<std::size_t>(k)] = cursor++;
      row_idx.push_back(pattern.row_of(k));
    }
    for (int k = pattern.col_begin(j); k < pattern.col_end(j); ++k) {
      sys.slot_gg2[static_cast<std::size_t>(k)] = cursor++;
      row_idx.push_back(pattern.row_of(k) + n);
    }
    col_ptr[static_cast<std::size_t>(n + j) + 1] = cursor;
  }
  sys.matrix = sparse::CscMatrix(2 * n, 2 * n, std::move(col_ptr), std::move(row_idx),
                                 std::vector<double>(4 * nnz, 0.0));
  return sys;
}

}  // namespace

AcResult RunAcAnalysis(const engine::Circuit& circuit,
                       const engine::MnaStructure& structure,
                       const netlist::AcCard& card, const engine::ProbeSet& probes,
                       const engine::SimOptions& options) {
  AcResult result;
  const int n = structure.dimension();

  // ---- operating point + G/C extraction -----------------------------------
  engine::SolveContext ctx(circuit, structure);
  ctx.ConfigureAcceleration(options);
  if (options.ordering_cache != nullptr) ctx.lu.set_ordering_cache(options.ordering_cache);
  const engine::DcopResult dcop = engine::SolveDcOperatingPoint(ctx, options);
  result.dcop_iterations = static_cast<std::uint64_t>(dcop.newton.iterations);

  // Two linearization passes at the operating point.  With zeroed history
  // IntegrateState() returns a0 * q, so a0 = 0 gives G and the a0 = 1
  // difference isolates every reactive stamp as C.
  std::fill(ctx.state_hist.begin(), ctx.state_hist.end(), 0.0);
  engine::NewtonInputs inputs;
  inputs.transient = true;
  inputs.gmin = options.gmin;
  inputs.a0 = 0.0;
  engine::EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);
  std::vector<double> g_values(ctx.matrix.values().begin(), ctx.matrix.values().end());
  inputs.a0 = 1.0;
  engine::EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);
  std::vector<double> c_values(ctx.matrix.values().size());
  for (std::size_t k = 0; k < c_values.size(); ++k) {
    c_values[k] = ctx.matrix.values()[k] - g_values[k];
  }

  // ---- AC stimulus ---------------------------------------------------------
  std::vector<double> b_re(static_cast<std::size_t>(n), 0.0);
  std::vector<double> b_im(static_cast<std::size_t>(n), 0.0);
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  auto add_phasor = [&](int row, double mag, double phase_deg, double sign) {
    if (row < 0) return;
    b_re[static_cast<std::size_t>(row)] += sign * mag * std::cos(phase_deg * kDegToRad);
    b_im[static_cast<std::size_t>(row)] += sign * mag * std::sin(phase_deg * kDegToRad);
  };
  bool any_stimulus = false;
  for (const auto& device : circuit.devices()) {
    if (const auto* v = dynamic_cast<const devices::VoltageSource*>(device.get())) {
      if (v->ac_mag() == 0.0) continue;
      add_phasor(v->branch(), v->ac_mag(), v->ac_phase_deg(), 1.0);
      any_stimulus = true;
    } else if (const auto* i = dynamic_cast<const devices::CurrentSource*>(device.get())) {
      if (i->ac_mag() == 0.0) continue;
      add_phasor(i->p(), i->ac_mag(), i->ac_phase_deg(), -1.0);
      add_phasor(i->n(), i->ac_mag(), i->ac_phase_deg(), 1.0);
      any_stimulus = true;
    }
  }
  if (!any_stimulus) {
    throw ElaborationError(".ac: no source carries an AC stimulus (add 'ac <mag>')");
  }

  // ---- doubled real system + inherited ordering ----------------------------
  DoubledSystem sys = BuildDoubledPattern(structure.pattern());
  sparse::SparseLu lu;
  if (options.ordering_cache != nullptr) {
    lu.set_ordering_cache(options.ordering_cache);
    // Reuse the real pattern's fill-reducing ordering: interleave it and
    // publish it under the doubled pattern's key before the first Factor().
    const sparse::OrderingCache::Key real_key{
        n, structure.pattern().num_nonzeros(), sparse::PatternHash(structure.pattern()),
        static_cast<int>(sparse::SparseLu::Options{}.ordering)};
    if (const auto real_order = options.ordering_cache->Find(real_key)) {
      std::vector<int> doubled_order;
      doubled_order.reserve(static_cast<std::size_t>(2 * n));
      for (const int q : *real_order) {
        doubled_order.push_back(q);
        doubled_order.push_back(q + n);
      }
      const sparse::OrderingCache::Key doubled_key{
          2 * n, sys.matrix.num_nonzeros(), sparse::PatternHash(sys.matrix),
          static_cast<int>(sparse::SparseLu::Options{}.ordering)};
      options.ordering_cache->Insert(doubled_key, std::move(doubled_order));
      result.ordering_injected = true;
    }
  }

  // ---- probes --------------------------------------------------------------
  const engine::ProbeSet base_probes =
      probes.size() > 0 ? probes : engine::ProbeSet::FirstNodes(circuit.num_nodes(), 16);
  engine::ProbeSet ac_probes;
  for (std::size_t p = 0; p < base_probes.size(); ++p) {
    ac_probes.unknowns.push_back(base_probes.unknowns[p]);
    ac_probes.names.push_back("vm(" + base_probes.names[p] + ")");
  }
  for (std::size_t p = 0; p < base_probes.size(); ++p) {
    ac_probes.unknowns.push_back(base_probes.unknowns[p]);
    ac_probes.names.push_back("vp(" + base_probes.names[p] + ")");
  }
  result.trace = engine::Trace(ac_probes);

  // ---- frequency loop ------------------------------------------------------
  std::vector<double> xb(static_cast<std::size_t>(2 * n));
  std::vector<double> workspace;
  std::vector<double> sample(ac_probes.size());
  for (const double freq : FrequencyGrid(card)) {
    const double w = 2.0 * std::numbers::pi * freq;
    auto values = sys.matrix.mutable_values();
    for (std::size_t k = 0; k < g_values.size(); ++k) {
      values[static_cast<std::size_t>(sys.slot_gg[k])] = g_values[k];
      values[static_cast<std::size_t>(sys.slot_gg2[k])] = g_values[k];
      values[static_cast<std::size_t>(sys.slot_wc[k])] = w * c_values[k];
      values[static_cast<std::size_t>(sys.slot_mwc[k])] = -w * c_values[k];
    }
    lu.FactorOrRefactor(sys.matrix);
    for (int i = 0; i < n; ++i) {
      xb[static_cast<std::size_t>(i)] = b_re[static_cast<std::size_t>(i)];
      xb[static_cast<std::size_t>(n + i)] = b_im[static_cast<std::size_t>(i)];
    }
    lu.Solve(xb, workspace);

    const std::size_t half = base_probes.size();
    for (std::size_t p = 0; p < half; ++p) {
      const int unknown = ac_probes.unknowns[p];
      double re = 0.0, im = 0.0;
      if (unknown >= 0) {
        re = xb[static_cast<std::size_t>(unknown)];
        im = xb[static_cast<std::size_t>(n + unknown)];
      }
      sample[p] = std::hypot(re, im);
      sample[half + p] = std::atan2(im, re) / kDegToRad;
    }
    result.trace.AppendProbeSample(freq, sample);
    ++result.points;
  }
  return result;
}

}  // namespace wavepipe::batch
