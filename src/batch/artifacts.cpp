#include "batch/artifacts.hpp"

#include "engine/newton.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wavepipe::batch {

SharedAnalysisArtifacts BuildSharedArtifacts(const engine::Circuit& circuit,
                                             const engine::MnaStructure& structure,
                                             const engine::SimOptions& options) {
  util::WallTimer timer;
  SharedAnalysisArtifacts artifacts;
  artifacts.ordering_cache = std::make_shared<sparse::OrderingCache>();
  artifacts.dimension = structure.dimension();
  artifacts.pattern_nnz = structure.pattern().num_nonzeros();
  artifacts.pattern_hash = sparse::PatternHash(structure.pattern());

  // Prototype factorization through the shared cache: publishes the
  // fill-reducing ordering under the pattern's key, so every variant's
  // Factor() starts with a hit.  The DC stamp at the flat start can be
  // singular for some circuits — then the facts stay zero and the cache
  // warms on the first variant that factors successfully.
  {
    engine::SolveContext ctx(circuit, structure);
    ctx.lu.set_ordering_cache(artifacts.ordering_cache.get());
    engine::NewtonInputs inputs;
    inputs.gmin = options.gmin;
    engine::EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);
    try {
      ctx.lu.Factor(ctx.matrix);
      const sparse::SparseLu::Stats& stats = ctx.lu.stats();
      artifacts.factor_nnz = stats.nnz_l + stats.nnz_u;
      artifacts.factor_flops = stats.factor_flops;
      artifacts.factor_levels = stats.factor_levels;
    } catch (const SingularMatrixError&) {
      // Ordering may still have been published before the pivot failure;
      // either way the bundle stays usable.
    }
  }

  if (options.partition_pieces > 0) {
    artifacts.partition_plan =
        partition::PartitionPattern(structure.pattern(), options.partition_pieces);
  }

  artifacts.coloring = std::make_shared<const parallel::ColorSchedule>(
      parallel::BuildColorSchedule(circuit, structure));

  artifacts.build_seconds = timer.Seconds();
  artifacts.built = true;
  return artifacts;
}

void AttachArtifacts(engine::SimOptions& options,
                     const SharedAnalysisArtifacts& artifacts) {
  options.ordering_cache = artifacts.ordering_cache.get();
  options.partition_plan = artifacts.partition_plan;
}

}  // namespace wavepipe::batch
