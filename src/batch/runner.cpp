#include "batch/runner.hpp"

#include <cstring>
#include <exception>
#include <future>
#include <memory>
#include <utility>

#include "batch/ac.hpp"
#include "batch/dc_sweep.hpp"
#include "engine/mna.hpp"
#include "engine/transient.hpp"
#include "netlist/elaborate.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace wavepipe::batch {
namespace {

std::uint64_t Fnv1a(std::uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Runs ONE variant start to finish.  Everything here is local to the task
/// except `artifacts` (immutable bundle; its OrderingCache is internally
/// synchronized) — the whole determinism story rests on that locality.
void RunVariant(const netlist::ParsedNetlist& base, const VariantSpec& spec,
                const BatchOptions& options, const SharedAnalysisArtifacts* artifacts,
                VariantResult& out) {
  util::WallTimer timer;
  out.index = spec.index;
  out.spec = spec;
  try {
    const netlist::ParsedNetlist deck = ApplyVariant(base, spec);
    netlist::ElaboratedCircuit elab = netlist::Elaborate(deck);
    engine::Circuit& circuit = *elab.circuit;
    const engine::MnaStructure structure(circuit);

    engine::SimOptions sim = options.sim;
    if (artifacts != nullptr) AttachArtifacts(sim, *artifacts);

    if (elab.has_tran) {
      out.analysis = "tran";
      const engine::TransientResult tran =
          engine::RunTransientSerial(circuit, structure, elab.spec, sim);
      if (!tran.completed) {
        throw Error("transient aborted: " + tran.abort_reason);
      }
      out.trace = tran.trace;
      out.steps_accepted = tran.stats.steps_accepted;
      out.newton_iterations = tran.stats.newton_iterations;
    } else if (elab.dc.present) {
      out.analysis = "dc";
      DcSweepResult dc = RunDcSweep(circuit, structure, elab.dc, elab.probes, sim);
      out.trace = std::move(dc.trace);
      out.points = dc.points;
      out.newton_iterations = dc.newton_iterations;
    } else if (elab.ac.present) {
      out.analysis = "ac";
      AcResult ac = RunAcAnalysis(circuit, structure, elab.ac, elab.probes, sim);
      out.trace = std::move(ac.trace);
      out.points = ac.points;
      out.newton_iterations = ac.dcop_iterations;
    } else {
      throw Error("netlist has no analysis card (.tran/.dc/.ac)");
    }
    out.waveform_hash = HashTrace(out.trace);
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  out.wall_seconds = timer.Seconds();
}

}  // namespace

std::uint64_t HashTrace(const engine::Trace& trace) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  const std::size_t probes = trace.probes().size();
  hash = Fnv1a(hash, &probes, sizeof(probes));
  const auto times = trace.times();
  hash = Fnv1a(hash, times.data(), times.size() * sizeof(double));
  for (std::size_t i = 0; i < trace.num_samples(); ++i) {
    for (std::size_t p = 0; p < probes; ++p) {
      const double v = trace.value(i, p);
      hash = Fnv1a(hash, &v, sizeof(v));
    }
  }
  return hash;
}

BatchResult RunBatch(const netlist::ParsedNetlist& base, const BatchOptions& options) {
  util::WallTimer timer;
  if (!base.tran.present && !base.dc.present && !base.ac.present) {
    // Whole-batch error, not a per-variant one: no variant could do anything.
    throw Error("netlist has no analysis card (.tran/.dc/.ac)");
  }
  BatchResult result;
  result.plan = BuildSweepPlan(base);
  const std::vector<VariantSpec> variants =
      ExpandVariants(result.plan, base, options.mc_seed);

  // Shared symbolic artifacts from the prototype (variant 0).  Every variant
  // shares the sparsity pattern — only values differ — so the ordering,
  // partition plan and coloring computed here serve them all.  A prototype
  // that will not elaborate is a whole-batch error, surfaced immediately.
  if (options.share_artifacts) {
    const netlist::ParsedNetlist proto_deck = ApplyVariant(base, variants.front());
    netlist::ElaboratedCircuit proto = netlist::Elaborate(proto_deck);
    const engine::MnaStructure structure(*proto.circuit);
    result.artifacts = BuildSharedArtifacts(*proto.circuit, structure, options.sim);
  }
  const SharedAnalysisArtifacts* shared =
      result.artifacts.built ? &result.artifacts : nullptr;

  result.variants.resize(variants.size());
  const int threads = options.threads > 1 ? options.threads : 1;
  if (threads == 1 || variants.size() <= 1) {
    for (std::size_t i = 0; i < variants.size(); ++i) {
      RunVariant(base, variants[i], options, shared, result.variants[i]);
    }
  } else {
    util::ThreadPool pool(static_cast<unsigned>(threads));
    std::vector<std::future<void>> futures;
    futures.reserve(variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      // Each task owns slot i exclusively; the spec is copied by value.
      futures.push_back(pool.Submit([&base, &options, shared, spec = variants[i],
                                     slot = &result.variants[i]] {
        RunVariant(base, spec, options, shared, *slot);
      }));
    }
    for (auto& future : futures) future.get();
  }

  // ---- aggregate -----------------------------------------------------------
  BatchStats& stats = result.stats;
  stats.variants_total = result.variants.size();
  stats.step_axes = result.plan.axis_names.size();
  stats.mc_samples = result.plan.mc_present ? result.plan.mc_runs : 0;
  stats.artifacts_shared = shared != nullptr ? result.variants.size() : 0;
  stats.artifacts_build_seconds = result.artifacts.build_seconds;
  for (const VariantResult& v : result.variants) {
    if (v.ok) ++stats.variants_ok; else ++stats.variants_failed;
    stats.steps_accepted += v.steps_accepted;
    stats.newton_iterations += v.newton_iterations;
    if (v.analysis == "dc") stats.dc_points += v.points;
    if (v.analysis == "ac") stats.ac_points += v.points;
  }
  if (result.artifacts.ordering_cache != nullptr) {
    stats.ordering_hits = result.artifacts.ordering_cache->hits();
    stats.ordering_misses = result.artifacts.ordering_cache->misses();
  }
  stats.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace wavepipe::batch
