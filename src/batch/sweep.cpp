#include "batch/sweep.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace wavepipe::batch {
namespace {

using netlist::ElementCard;
using netlist::ParsedNetlist;
using netlist::StepCard;

/// Round-trip-exact formatting for substituted/perturbed values: 17
/// significant digits reconstruct the exact double, which is what makes a
/// rewritten variant deck bit-identical to the in-memory variant.
std::string FormatExact(double value) { return util::FormatDouble(value, 17); }

/// `{name}` -> name, or empty when the token is not a parameter reference.
std::string ParamRef(const std::string& token) {
  if (token.size() < 3 || token.front() != '{' || token.back() != '}') return {};
  return util::ToLowerAscii(token.substr(1, token.size() - 2));
}

}  // namespace

std::size_t SweepPlan::num_variants() const {
  std::size_t n = static_cast<std::size_t>(mc_runs);
  for (const auto& values : axis_values) n *= values.size();
  return n;
}

std::vector<double> ExpandStepValues(const StepCard& card) {
  std::vector<double> values;
  switch (card.kind) {
    case StepCard::Kind::kLin: {
      // Edge rule: include stop when start + k*step lands on it within a
      // half-ulp-scale tolerance (1e-9 of the span), so 0..1 step 0.25
      // yields 5 points, not 4.
      const double span = card.stop - card.start;
      const int count = static_cast<int>(std::floor(span / card.step + 1e-9)) + 1;
      for (int k = 0; k < count; ++k) values.push_back(card.start + k * card.step);
      break;
    }
    case StepCard::Kind::kDec: {
      // start * 10^(k / points), up to and including stop.
      const double tol = card.stop * (1.0 + 1e-9);
      for (int k = 0;; ++k) {
        const double value =
            card.start * std::pow(10.0, static_cast<double>(k) / card.points_per_decade);
        if (value > tol) break;
        values.push_back(value);
      }
      break;
    }
    case StepCard::Kind::kList:
      values = card.values;
      break;
  }
  return values;
}

SweepPlan BuildSweepPlan(const ParsedNetlist& netlist) {
  SweepPlan plan;
  for (const StepCard& card : netlist.steps) {
    plan.axis_names.push_back(card.param);
    plan.axis_values.push_back(ExpandStepValues(card));
  }
  if (netlist.mc.present) {
    plan.mc_present = true;
    plan.mc_runs = netlist.mc.runs;
    plan.mc_variation = netlist.mc.variation;
  }
  return plan;
}

std::vector<VariantSpec> ExpandVariants(const SweepPlan& plan,
                                        const ParsedNetlist& netlist,
                                        std::uint64_t base_seed) {
  // Defaults once; each grid point overrides the stepped names.
  std::vector<std::pair<std::string, std::string>> defaults;
  for (const auto& [name, value] : netlist.params) {
    bool replaced = false;
    for (auto& existing : defaults) {
      if (existing.first == name) {
        existing.second = value;  // later .param cards override earlier ones
        replaced = true;
        break;
      }
    }
    if (!replaced) defaults.emplace_back(name, value);
  }

  const std::size_t axes = plan.axis_values.size();
  std::vector<VariantSpec> variants;
  variants.reserve(plan.num_variants());
  for (int mc = 0; mc < plan.mc_runs; ++mc) {
    // Per-sample seed from (base_seed, mc sample) only: splitmix64 step so
    // neighboring samples decorrelate.  Sample index, NOT grid index — all
    // grid points of one MC sample share the device perturbation draw.
    std::uint64_t seed = 0;
    if (plan.mc_present) {
      std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(mc) + 1);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      seed = z ^ (z >> 31);
      if (seed == 0) seed = 1;  // 0 means "no perturbation"
    }

    std::vector<std::size_t> cursor(axes, 0);
    bool grid_done = false;
    while (!grid_done) {
      VariantSpec variant;
      variant.index = static_cast<int>(variants.size());
      variant.mc_index = mc;
      variant.seed = seed;
      variant.variation = plan.mc_present ? plan.mc_variation : 0.0;
      variant.params = defaults;
      for (std::size_t a = 0; a < axes; ++a) {
        const double value = plan.axis_values[a][cursor[a]];
        variant.step_values.emplace_back(plan.axis_names[a], value);
        bool replaced = false;
        for (auto& existing : variant.params) {
          if (existing.first == plan.axis_names[a]) {
            existing.second = FormatExact(value);
            replaced = true;
            break;
          }
        }
        if (!replaced) variant.params.emplace_back(plan.axis_names[a], FormatExact(value));
      }
      variants.push_back(std::move(variant));

      // Odometer increment, last axis fastest.
      grid_done = true;
      for (std::size_t a = axes; a-- > 0;) {
        if (++cursor[a] < plan.axis_values[a].size()) {
          grid_done = false;
          break;
        }
        cursor[a] = 0;
      }
      if (axes == 0) grid_done = true;
    }
  }
  return variants;
}

ParsedNetlist ApplyVariant(const ParsedNetlist& base, const VariantSpec& variant) {
  ParsedNetlist out = base;
  // Variant decks elaborate standalone: the sweep cards are consumed here.
  out.steps.clear();
  out.mc.present = false;
  out.params.clear();

  for (ElementCard& card : out.elements) {
    for (std::string& arg : card.args) {
      const std::string name = ParamRef(arg);
      if (name.empty()) continue;
      bool found = false;
      for (const auto& [pname, pvalue] : variant.params) {
        if (pname == name) {
          arg = pvalue;
          found = true;
          break;
        }
      }
      if (!found) {
        throw ParseError("undefined parameter '{" + name + "}' in element '" +
                             card.name + "'",
                         card.line);
      }
    }
  }

  if (variant.seed != 0 && variant.variation > 0.0) {
    // Seeded device variation: one draw per R/C/L in element order, so the
    // perturbation sequence depends only on (deck, seed) — never on pool
    // size or scheduling.  The value token is rewritten in place AFTER
    // parameter substitution, 17-digit exact, so a perturbed deck written
    // to disk reproduces the variant bit for bit.
    util::Rng rng(variant.seed);
    for (ElementCard& card : out.elements) {
      if (card.kind != 'r' && card.kind != 'c' && card.kind != 'l') continue;
      if (card.args.size() < 3) continue;
      const double u = 2.0 * rng.NextDouble() - 1.0;  // drawn even if unparsable
      const auto value = util::ParseSpiceNumber(card.args[2]);
      if (!value) continue;
      card.args[2] = FormatExact(*value * (1.0 + variant.variation * u));
    }
  }
  return out;
}

ParsedNetlist ApplyParamDefaults(const ParsedNetlist& base) {
  const SweepPlan trivial;  // no axes, single sample, no MC
  const std::vector<VariantSpec> variants = ExpandVariants(trivial, base, 0);
  return ApplyVariant(base, variants.front());
}

}  // namespace wavepipe::batch
