// Batch sweep runner: expand the variant grid of a deck (.param / .step /
// .mc), execute every variant on a thread pool, and share the per-pattern
// symbolic artifacts (fill-reducing ordering, BBD partition plan, coloring)
// across all of them.
//
// Determinism contract: a variant's waveform is a pure function of its
// VariantSpec — never of pool size, scheduling order, or which variant ran
// first.  The two mechanisms that make this true:
//   * every variant elaborates its OWN Circuit and runs the serial engines,
//     so nothing numeric is shared between concurrent variants;
//   * the only shared mutable object is the OrderingCache, whose first-
//     insert-wins policy hands every variant the identical permutation (the
//     ordering algorithms are pure, so racing candidates are equal anyway).
// tests/batch/runner_test.cpp pins this: pool sizes 1 and 4 produce
// bit-identical waveform hashes, and each variant matches a standalone run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/artifacts.hpp"
#include "batch/stats.hpp"
#include "batch/sweep.hpp"
#include "engine/options.hpp"
#include "engine/trace.hpp"
#include "netlist/parser.hpp"

namespace wavepipe::batch {

struct BatchOptions {
  /// Variant-level workers (>= 1).  Variants are independent; each runs the
  /// serial engine internally, so this is the only parallelism knob.
  int threads = 1;
  /// Base seed for .mc device variation (per-sample seeds derive from it).
  std::uint64_t mc_seed = 1;
  /// Simulator options applied verbatim to every variant (tolerances,
  /// acceleration).  Callers typically seed this from the prototype deck's
  /// elaborated sim_options so .options cards take effect.
  engine::SimOptions sim;
  /// Build SharedAnalysisArtifacts once and attach them to every variant.
  /// Off = every variant rebuilds its own symbolic work (the "cold" baseline
  /// the throughput bench compares against).
  bool share_artifacts = true;
};

struct VariantResult {
  int index = 0;
  VariantSpec spec;
  bool ok = false;
  std::string error;       ///< failure message when !ok
  std::string analysis;    ///< "tran", "dc", or "ac"
  engine::Trace trace;     ///< waveform (empty when !ok before any solve)
  std::uint64_t steps_accepted = 0;     ///< tran only
  std::uint64_t newton_iterations = 0;  ///< all verbs
  std::uint64_t points = 0;             ///< dc/ac sweep points
  std::uint64_t waveform_hash = 0;      ///< HashTrace(trace); 0 when !ok
  double wall_seconds = 0.0;
};

struct BatchResult {
  SweepPlan plan;
  std::vector<VariantResult> variants;  ///< indexed by VariantSpec::index
  SharedAnalysisArtifacts artifacts;    ///< built=false when sharing is off
  BatchStats stats;
};

/// FNV-1a over the raw bytes of a trace's times and values.  Two traces hash
/// equal iff they are bit-identical sample for sample — the primitive behind
/// every determinism check in the batch tests and bench.
std::uint64_t HashTrace(const engine::Trace& trace);

/// Expands and runs the whole batch.  Per-variant failures (non-convergence,
/// singular corner, bad substitution) are captured into that variant's
/// result and counted in stats.variants_failed — one bad corner never aborts
/// the batch.  Throws only on whole-batch errors: no analysis card, an
/// unexpandable sweep, or a prototype that will not elaborate.
BatchResult RunBatch(const netlist::ParsedNetlist& base, const BatchOptions& options);

}  // namespace wavepipe::batch
