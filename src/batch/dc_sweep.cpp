#include "batch/dc_sweep.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "devices/sources.hpp"
#include "devices/waveform.hpp"
#include "engine/dcop.hpp"
#include "engine/newton.hpp"
#include "util/error.hpp"

namespace wavepipe::batch {
namespace {

/// Sweep points with the .step-lin edge rule (stop included when the
/// increment lands on it within rounding).
std::vector<double> SweepValues(const netlist::DcCard& card) {
  const double span = card.stop - card.start;
  const int count = static_cast<int>(std::floor(span / card.step + 1e-9)) + 1;
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) values.push_back(card.start + k * card.step);
  return values;
}

}  // namespace

DcSweepResult RunDcSweep(engine::Circuit& circuit,
                         const engine::MnaStructure& structure,
                         const netlist::DcCard& card, const engine::ProbeSet& probes,
                         const engine::SimOptions& options) {
  devices::Device* device = circuit.FindDevice(card.source);
  if (device == nullptr) {
    throw ElaborationError(".dc: unknown source '" + card.source + "'");
  }
  auto* vsource = dynamic_cast<devices::VoltageSource*>(device);
  auto* isource = dynamic_cast<devices::CurrentSource*>(device);
  if (vsource == nullptr && isource == nullptr) {
    throw ElaborationError(".dc: '" + card.source + "' is not a V or I source");
  }
  auto retune = [&](double value) {
    auto waveform = std::make_unique<devices::DcWaveform>(value);
    if (vsource != nullptr) vsource->SetWaveform(std::move(waveform));
    else isource->SetWaveform(std::move(waveform));
  };

  DcSweepResult result;
  result.trace = engine::Trace(probes.size() > 0
                                   ? probes
                                   : engine::ProbeSet::FirstNodes(circuit.num_nodes(), 16));

  engine::SolveContext ctx(circuit, structure);
  ctx.ConfigureAcceleration(options);
  if (options.ordering_cache != nullptr) ctx.lu.set_ordering_cache(options.ordering_cache);

  // Points are SOLVED in card order (the warm start walks the curve in the
  // direction the user asked for) but RECORDED ascending: Trace requires a
  // strictly increasing axis, so a descending sweep buffers its samples and
  // appends them reversed.
  const std::vector<double> values = SweepValues(card);
  const bool descending = card.step < 0.0;
  std::vector<double> sample(result.trace.probes().size());
  std::vector<std::vector<double>> buffered;
  if (descending) buffered.reserve(values.size());
  for (const double value : values) {
    retune(value);
    // Warm start: ctx.x keeps the previous point's solution, which is what
    // makes a fine sweep through a nonlinear curve cheap and robust.
    const engine::DcopResult dcop = engine::SolveDcOperatingPoint(ctx, options);
    result.newton_iterations += static_cast<std::uint64_t>(dcop.newton.iterations);
    ++result.points;
    for (std::size_t p = 0; p < sample.size(); ++p) {
      const int unknown = result.trace.probes().unknowns[p];
      sample[p] = unknown >= 0 ? ctx.x[static_cast<std::size_t>(unknown)] : 0.0;
    }
    if (descending) buffered.push_back(sample);
    else result.trace.AppendProbeSample(value, sample);
  }
  for (std::size_t i = buffered.size(); i-- > 0;) {
    result.trace.AppendProbeSample(values[i], buffered[i]);
  }
  return result;
}

}  // namespace wavepipe::batch
