// SharedAnalysisArtifacts: the per-pattern symbolic work one batch computes
// once and every variant reuses read-only.
//
// All sweep variants of a deck share one sparsity pattern — parameter and
// Monte Carlo edits change VALUES, never the matrix structure (the grid is
// expanded from one element list).  The expensive symbolic artifacts are
// pure functions of that pattern:
//
//   * the fill-reducing column ordering  (sparse/ordering_cache.hpp)
//   * the BBD partition plan             (partition::PartitionPattern)
//   * the assembly color schedule        (parallel::BuildColorSchedule)
//   * the level schedules                (rebuilt per factor from the
//                                         ordering — sharing the ordering
//                                         shares them transitively)
//
// The bundle is built once from a prototype variant and handed to every
// runner thread.  Determinism contract: an OrderingCache hit returns the
// exact permutation the instance would have computed itself (the ordering
// algorithms are pure), so a variant solved with shared artifacts is
// bit-identical to the same variant solved standalone.  Thread-safety
// contract: everything here is immutable after Build; the cache's internal
// Find/Insert are mutex-protected and its entries are immutable shared_ptrs.
#pragma once

#include <cstdint>
#include <memory>

#include "engine/circuit.hpp"
#include "engine/mna.hpp"
#include "engine/options.hpp"
#include "parallel/coloring.hpp"
#include "partition/partitioner.hpp"
#include "sparse/ordering_cache.hpp"

namespace wavepipe::batch {

struct SharedAnalysisArtifacts {
  /// Pre-warmed with the prototype's ordering; attached to every variant's
  /// SparseLu via SimOptions::ordering_cache.
  std::shared_ptr<sparse::OrderingCache> ordering_cache;
  /// Non-null only when SimOptions::partition_pieces > 0.
  std::shared_ptr<const sparse::BbdPlan> partition_plan;
  /// Conflict-free assembly schedule of the shared topology (device indices
  /// are position-stable across variants because every variant elaborates
  /// the same element list).
  std::shared_ptr<const parallel::ColorSchedule> coloring;

  // ---- pattern facts (bench/report metadata) --------------------------------
  int dimension = 0;
  std::size_t pattern_nnz = 0;
  std::uint64_t pattern_hash = 0;
  std::size_t factor_nnz = 0;        ///< |L| + |U| of the prototype factor
  std::uint64_t factor_flops = 0;    ///< multiply-adds of one full factor
  int factor_levels = 0;             ///< refactor DAG depth (level schedule)
  double build_seconds = 0.0;        ///< one-time bundle construction cost

  /// True once Build() ran (the prototype factor may fail on a deliberately
  /// broken variant; the cache then warms on the first healthy one).
  bool built = false;
};

/// Builds the bundle from a prototype circuit: computes the ordering by
/// factoring the DC-stamped prototype matrix through the shared cache,
/// partitions the pattern when options ask for pieces, and colors the
/// device-conflict graph.  Never throws on a singular prototype — the
/// ordering facts are simply left at zero.
SharedAnalysisArtifacts BuildSharedArtifacts(const engine::Circuit& circuit,
                                             const engine::MnaStructure& structure,
                                             const engine::SimOptions& options);

/// Points `options` at the bundle (ordering cache + partition plan).
void AttachArtifacts(engine::SimOptions& options,
                     const SharedAnalysisArtifacts& artifacts);

}  // namespace wavepipe::batch
