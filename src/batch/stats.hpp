// Aggregate counters of one batch run, exported as the `batch.*` group of
// run_stats.json (schema v1.4, appended last).
//
// Header-only on purpose: wavepipe/trace_export.cpp exports the group for
// EVERY engine (all zeros outside batch mode, keeping the schema key set
// structurally identical across engines), and wp_batch links wp_wavepipe —
// a compiled BatchStats inside wp_batch would make the dependency circular.
#pragma once

#include <cstdint>

#include "util/telemetry.hpp"

namespace wavepipe::batch {

struct BatchStats {
  // ---- variant grid ---------------------------------------------------------
  std::uint64_t variants_total = 0;   ///< expanded grid size (steps x mc)
  std::uint64_t variants_ok = 0;      ///< completed to the horizon
  std::uint64_t variants_failed = 0;  ///< parse/elaborate/solve failures
  std::uint64_t step_axes = 0;        ///< .step cards expanded
  std::uint64_t mc_samples = 0;       ///< .mc run count (0 when absent)

  // ---- shared symbolic artifacts --------------------------------------------
  std::uint64_t ordering_hits = 0;    ///< OrderingCache hits over the batch
  std::uint64_t ordering_misses = 0;  ///< orderings actually computed
  std::uint64_t artifacts_shared = 0; ///< 1 when variants reused one bundle
  double artifacts_build_seconds = 0.0;  ///< one-time prototype bundle cost

  // ---- aggregate work -------------------------------------------------------
  std::uint64_t steps_accepted = 0;      ///< transient steps over ok variants
  std::uint64_t newton_iterations = 0;   ///< Newton iterations over ok variants
  std::uint64_t dc_points = 0;           ///< .dc sweep points solved
  std::uint64_t ac_points = 0;           ///< .ac frequencies solved
  double wall_seconds = 0.0;             ///< whole-batch wall clock

  /// Registers every field under the `batch.` prefix, in schema order.
  void ExportCounters(util::telemetry::CounterRegistry& registry) const {
    registry.Count("batch.variants_total", variants_total);
    registry.Count("batch.variants_ok", variants_ok);
    registry.Count("batch.variants_failed", variants_failed);
    registry.Count("batch.step_axes", step_axes);
    registry.Count("batch.mc_samples", mc_samples);
    registry.Count("batch.ordering_hits", ordering_hits);
    registry.Count("batch.ordering_misses", ordering_misses);
    registry.Count("batch.artifacts_shared", artifacts_shared);
    registry.Value("batch.artifacts_build_seconds", artifacts_build_seconds);
    registry.Count("batch.steps_accepted", steps_accepted);
    registry.Count("batch.newton_iterations", newton_iterations);
    registry.Count("batch.dc_points", dc_points);
    registry.Count("batch.ac_points", ac_points);
    registry.Value("batch.wall_seconds", wall_seconds);
  }
};

}  // namespace wavepipe::batch
