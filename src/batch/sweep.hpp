// Sweep planner: .param / .step / .mc cards -> an explicit variant grid.
//
// A variant is a pure value assignment: the full parameter map (defaults
// overridden by its grid point) plus a Monte Carlo sample index and seed.
// ApplyVariant() rewrites a ParsedNetlist at the CARD level — `{name}`
// tokens substituted, R/C/L values perturbed by the seeded MC draw — so a
// variant deck elaborates through the unchanged front end and is therefore
// bit-identical to running the rewritten deck standalone.  Every function
// here is deterministic: the grid order, the per-variant seeds and the
// perturbation draws depend only on the deck and the base seed, never on
// thread count or scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netlist/parser.hpp"

namespace wavepipe::batch {

/// One fully resolved grid point.
struct VariantSpec {
  int index = 0;  ///< flat grid index (mc-major, then axis order)
  /// Full parameter assignment: .param defaults overridden by this grid
  /// point's stepped values.  Values are raw tokens (numbers pre-formatted
  /// round-trip-exact with 17 significant digits).
  std::vector<std::pair<std::string, std::string>> params;
  /// Just the stepped axes as numbers, for CSV columns (axis order).
  std::vector<std::pair<std::string, double>> step_values;
  int mc_index = 0;        ///< 0-based Monte Carlo sample (0 when .mc absent)
  std::uint64_t seed = 0;  ///< per-variant MC seed; 0 = no perturbation
  double variation = 0.0;  ///< .mc variation fraction
};

/// The expanded sweep axes of a deck.
struct SweepPlan {
  std::vector<std::string> axis_names;             ///< stepped param per axis
  std::vector<std::vector<double>> axis_values;    ///< expanded per axis
  bool mc_present = false;
  int mc_runs = 1;
  double mc_variation = 0.0;
  /// Grid size: product of axis sizes times mc_runs.
  std::size_t num_variants() const;
};

/// Expands one .step card into its value list (lin/dec/list edge rules:
/// lin includes stop when start + k*step lands on it within rounding; dec
/// runs start * 10^(k/points) up to and including stop).
std::vector<double> ExpandStepValues(const netlist::StepCard& card);

/// Builds the plan from a deck's .step/.mc cards.  A deck with neither
/// yields the trivial single-variant plan.
SweepPlan BuildSweepPlan(const netlist::ParsedNetlist& netlist);

/// Expands the full variant grid.  Order: Monte Carlo sample major, then
/// the cartesian product of the axes with the LAST .step card fastest.
/// Per-variant seeds derive from (base_seed, mc_index) only, so one MC
/// sample's device perturbations are identical across all its grid points —
/// the sweep axes stay comparable within a sample.
std::vector<VariantSpec> ExpandVariants(const SweepPlan& plan,
                                        const netlist::ParsedNetlist& netlist,
                                        std::uint64_t base_seed);

/// Rewrites `base` for one variant: substitutes every `{name}` element-arg
/// token from the variant's parameter map, then (when the variant carries a
/// nonzero seed) perturbs each R/C/L value by its seeded MC factor.  Throws
/// ParseError on an undefined `{name}` reference.
netlist::ParsedNetlist ApplyVariant(const netlist::ParsedNetlist& base,
                                    const VariantSpec& variant);

/// Substitutes `{name}` tokens from the deck's own .param defaults (no
/// stepping, no MC) — the single-run path for decks that use parameters.
netlist::ParsedNetlist ApplyParamDefaults(const netlist::ParsedNetlist& base);

}  // namespace wavepipe::batch
