// Small-signal AC analysis (.ac): linearize at the DC operating point and
// solve (G + jwC) x = b over a frequency grid.
//
// G and C are extracted with two device passes through the UNCHANGED model
// evaluation: the companion integration hook IntegrateState() contributes
// a0 * q with zeroed history, so the Jacobian at a0 = 0 is the conductance
// matrix G and the entrywise difference J(a0 = 1) - J(a0 = 0) is the
// capacitance/inductance matrix C — every reactive stamp (including the
// inductor's -L branch term) falls out without any device knowing about AC.
//
// The complex system is solved as the equivalent 2n real system
//   [ G  -wC ] [Re x]   [Re b]
//   [ wC   G ] [Im x] = [Im b]
// on the SAME SparseLu.  The 2n pattern inherits the real pattern's
// fill-reducing ordering: the interleaved permutation [q0, q0+n, q1, q1+n,
// ...] is published into the shared OrderingCache under the 2n pattern's
// key, so Factor() "finds" it instead of re-running minimum degree on a
// matrix twice the size — the batch artifact-reuse story extended to a new
// analysis verb with zero changes to the LU itself.
#pragma once

#include <cstdint>

#include "engine/circuit.hpp"
#include "engine/mna.hpp"
#include "engine/options.hpp"
#include "engine/trace.hpp"
#include "netlist/parser.hpp"

namespace wavepipe::batch {

struct AcResult {
  /// One sample per frequency (time = Hz).  Probes come in pairs per probed
  /// node: `vm(node)` magnitude [V], `vp(node)` phase [degrees].
  engine::Trace trace;
  std::uint64_t points = 0;           ///< frequencies solved
  std::uint64_t dcop_iterations = 0;  ///< Newton cost of the operating point
  bool ordering_injected = false;     ///< 2n ordering derived from the 1n cache
};

/// Runs the frequency sweep.  Empty `probes` defaults to the first nodes.
/// Honors SimOptions::ordering_cache for both the operating point and the
/// interleaved 2n ordering injection.  Throws when the operating point does
/// not converge or the AC matrix is singular at some frequency.
AcResult RunAcAnalysis(const engine::Circuit& circuit,
                       const engine::MnaStructure& structure,
                       const netlist::AcCard& card, const engine::ProbeSet& probes,
                       const engine::SimOptions& options);

}  // namespace wavepipe::batch
