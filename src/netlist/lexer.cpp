#include "netlist/lexer.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavepipe::netlist {
namespace {

std::string_view StripTrailingComment(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '$' || line[i] == ';') return line.substr(0, i);
  }
  return line;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char ch : text) {
    if (util::IsSpaceAscii(ch)) {
      flush();
    } else if (ch == '(' || ch == ')' || ch == ',' || ch == '=') {
      flush();
      tokens.push_back(std::string(1, ch));
    } else {
      current.push_back(ch);
    }
  }
  flush();
  return tokens;
}

}  // namespace

LexedDeck LexDeck(std::string_view text) {
  LexedDeck deck;
  const auto physical = util::SplitExact(text, '\n');

  bool saw_title = false;
  for (std::size_t i = 0; i < physical.size(); ++i) {
    const int line_number = static_cast<int>(i) + 1;
    std::string_view raw = physical[i];
    if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);

    if (!saw_title) {
      // SPICE: the very first line is always the title.
      deck.title = std::string(util::TrimAscii(raw));
      saw_title = true;
      continue;
    }

    std::string_view line = util::TrimAscii(StripTrailingComment(raw));
    if (line.empty()) continue;
    if (line.front() == '*') continue;  // comment line

    if (line.front() == '+') {
      if (deck.lines.empty()) {
        throw ParseError("continuation line with nothing to continue", line_number);
      }
      auto continued = Tokenize(line.substr(1));
      auto& previous = deck.lines.back().tokens;
      previous.insert(previous.end(), continued.begin(), continued.end());
      continue;
    }

    LogicalLine logical;
    logical.line_number = line_number;
    logical.tokens = Tokenize(line);
    if (!logical.tokens.empty()) deck.lines.push_back(std::move(logical));
  }
  return deck;
}

}  // namespace wavepipe::netlist
