#include "netlist/parser.hpp"

#include "netlist/lexer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavepipe::netlist {
namespace {

using util::EqualsIgnoreCase;
using util::ParseSpiceNumber;
using util::ToLowerAscii;

double RequireNumber(const std::string& token, int line) {
  const auto value = ParseSpiceNumber(token);
  if (!value) throw ParseError("expected a number, got '" + token + "'", line);
  return *value;
}

/// Parses ".model name type ( k=v k=v ... )" — parens optional.
ModelCard ParseModelCard(const std::vector<std::string>& tokens, int line) {
  if (tokens.size() < 3) throw ParseError(".model needs a name and a type", line);
  ModelCard card;
  card.line = line;
  card.name = ToLowerAscii(tokens[1]);
  card.type = ToLowerAscii(tokens[2]);
  if (card.type != "d" && card.type != "nmos" && card.type != "pmos") {
    throw ParseError("unsupported .model type '" + tokens[2] + "'", line);
  }
  std::size_t i = 3;
  while (i < tokens.size()) {
    const std::string& tok = tokens[i];
    if (tok == "(" || tok == ")" || tok == ",") {
      ++i;
      continue;
    }
    // Expect key = value.
    if (i + 2 >= tokens.size() || tokens[i + 1] != "=") {
      throw ParseError("expected 'param = value' in .model, got '" + tok + "'", line);
    }
    card.params[ToLowerAscii(tok)] = RequireNumber(tokens[i + 2], line);
    i += 3;
  }
  return card;
}

void ParseDotCard(const std::vector<std::string>& tokens, int line, ParsedNetlist& out) {
  const std::string directive = ToLowerAscii(tokens[0]);
  if (directive == ".model") {
    ModelCard card = ParseModelCard(tokens, line);
    if (out.models.count(card.name)) {
      throw ParseError("duplicate .model '" + card.name + "'", line);
    }
    out.models.emplace(card.name, std::move(card));
  } else if (directive == ".tran") {
    if (tokens.size() < 3) throw ParseError(".tran needs tstep and tstop", line);
    out.tran.present = true;
    out.tran.tstep = RequireNumber(tokens[1], line);
    out.tran.tstop = RequireNumber(tokens[2], line);
    out.tran.tstart = tokens.size() > 3 ? RequireNumber(tokens[3], line) : 0.0;
    if (out.tran.tstop <= out.tran.tstart) {
      throw ParseError(".tran: tstop must exceed tstart", line);
    }
  } else if (directive == ".op") {
    out.op_requested = true;
  } else if (directive == ".options" || directive == ".option") {
    std::size_t i = 1;
    while (i < tokens.size()) {
      const std::string key = ToLowerAscii(tokens[i]);
      if (i + 2 < tokens.size() + 1 && i + 1 < tokens.size() && tokens[i + 1] == "=") {
        if (i + 2 >= tokens.size()) throw ParseError("option '" + key + "' missing value", line);
        out.options[key] = ToLowerAscii(tokens[i + 2]);
        i += 3;
      } else {
        out.options[key] = "1";  // boolean flag
        i += 1;
      }
    }
  } else if (directive == ".ic") {
    // .ic v(node)=value ...
    std::size_t i = 1;
    while (i < tokens.size()) {
      if (!EqualsIgnoreCase(tokens[i], "v")) {
        throw ParseError(".ic: expected v(node)=value", line);
      }
      if (i + 5 >= tokens.size() + 1 || i + 4 >= tokens.size() || tokens[i + 1] != "(" ||
          tokens[i + 3] != ")" || tokens[i + 4] != "=") {
        throw ParseError(".ic: malformed v(node)=value", line);
      }
      if (i + 5 >= tokens.size()) throw ParseError(".ic: missing value", line);
      out.initial_conditions[ToLowerAscii(tokens[i + 2])] =
          RequireNumber(tokens[i + 5], line);
      i += 6;
    }
  } else if (directive == ".print" || directive == ".probe" || directive == ".plot") {
    // .print [tran] v(a) v(b) ...
    std::size_t i = 1;
    while (i < tokens.size()) {
      if (EqualsIgnoreCase(tokens[i], "tran")) {
        ++i;
        continue;
      }
      if (EqualsIgnoreCase(tokens[i], "v") && i + 3 < tokens.size() + 1 &&
          i + 1 < tokens.size() && tokens[i + 1] == "(") {
        if (i + 3 >= tokens.size() || tokens[i + 3] != ")") {
          throw ParseError(".print: malformed v(node)", line);
        }
        out.print_nodes.push_back(ToLowerAscii(tokens[i + 2]));
        i += 4;
      } else {
        throw ParseError(".print: expected v(node), got '" + tokens[i] + "'", line);
      }
    }
  } else if (directive == ".end" || directive == ".ends") {
    // no-op
  } else {
    throw ParseError("unsupported directive '" + directive + "'", line);
  }
}

}  // namespace

ParsedNetlist ParseNetlist(std::string_view text) {
  const LexedDeck deck = LexDeck(text);
  ParsedNetlist out;
  out.title = deck.title;

  for (const LogicalLine& line : deck.lines) {
    const std::string& head = line.tokens.front();
    if (head.front() == '.') {
      ParseDotCard(line.tokens, line.line_number, out);
      continue;
    }
    const char kind = util::ToLowerAscii(head.front());
    static constexpr std::string_view kKnown = "rclkviegfhdm";
    if (kKnown.find(kind) == std::string_view::npos) {
      throw ParseError("unknown element type '" + std::string(1, head.front()) + "'",
                       line.line_number);
    }
    ElementCard card;
    card.kind = kind;
    card.name = ToLowerAscii(head);
    card.args.assign(line.tokens.begin() + 1, line.tokens.end());
    card.line = line.line_number;
    out.elements.push_back(std::move(card));
  }
  return out;
}

}  // namespace wavepipe::netlist
