#include "netlist/parser.hpp"

#include <fstream>
#include <sstream>

#include "netlist/lexer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavepipe::netlist {
namespace {

using util::EqualsIgnoreCase;
using util::ParseSpiceNumber;
using util::ToLowerAscii;

double RequireNumber(const std::string& token, int line) {
  const auto value = ParseSpiceNumber(token);
  if (!value) throw ParseError("expected a number, got '" + token + "'", line);
  return *value;
}

/// Parses ".model name type ( k=v k=v ... )" — parens optional.
ModelCard ParseModelCard(const std::vector<std::string>& tokens, int line) {
  if (tokens.size() < 3) throw ParseError(".model needs a name and a type", line);
  ModelCard card;
  card.line = line;
  card.name = ToLowerAscii(tokens[1]);
  card.type = ToLowerAscii(tokens[2]);
  if (card.type != "d" && card.type != "nmos" && card.type != "pmos") {
    throw ParseError("unsupported .model type '" + tokens[2] + "'", line);
  }
  std::size_t i = 3;
  while (i < tokens.size()) {
    const std::string& tok = tokens[i];
    if (tok == "(" || tok == ")" || tok == ",") {
      ++i;
      continue;
    }
    // Expect key = value.
    if (i + 2 >= tokens.size() || tokens[i + 1] != "=") {
      throw ParseError("expected 'param = value' in .model, got '" + tok + "'", line);
    }
    card.params[ToLowerAscii(tok)] = RequireNumber(tokens[i + 2], line);
    i += 3;
  }
  return card;
}

/// Cards a real SPICE front end would accept but this reproduction does not
/// implement.  Listed in the unknown-directive error so a user can tell a
/// typo from a genuinely unsupported feature.
constexpr const char* kRecognizedUnsupported[] = {
    ".subckt", ".include", ".lib",   ".global", ".temp", ".nodeset",
    ".four",   ".noise",   ".tf",    ".sens",   ".meas", ".measure",
    ".save",   ".func",    ".csparam",
};

std::string RecognizedUnsupportedList() {
  std::string list;
  for (const char* card : kRecognizedUnsupported) {
    if (!list.empty()) list += " ";
    list += card;
  }
  return list;
}

/// .param name = value ...  (values stay raw tokens; `{name}` references in
/// element args are substituted textually by the batch planner).
void ParseParamCard(const std::vector<std::string>& tokens, int line, ParsedNetlist& out) {
  std::size_t i = 1;
  while (i < tokens.size()) {
    const std::string name = ToLowerAscii(tokens[i]);
    if (i + 1 >= tokens.size() || tokens[i + 1] != "=" || i + 2 >= tokens.size()) {
      throw ParseError(".param: expected 'name = value', got '" + tokens[i] + "'", line);
    }
    out.params.emplace_back(name, tokens[i + 2]);
    i += 3;
  }
  if (out.params.empty()) throw ParseError(".param needs at least one name = value", line);
}

/// .step [param] <name> lin|dec|list ...
void ParseStepCard(const std::vector<std::string>& tokens, int line, ParsedNetlist& out) {
  std::size_t i = 1;
  if (i < tokens.size() && EqualsIgnoreCase(tokens[i], "param")) ++i;
  if (i + 1 >= tokens.size()) {
    throw ParseError(".step needs a parameter name and a lin|dec|list spec", line);
  }
  StepCard card;
  card.line = line;
  card.param = ToLowerAscii(tokens[i]);
  const std::string kind = ToLowerAscii(tokens[i + 1]);
  i += 2;
  if (kind == "lin") {
    if (i + 2 >= tokens.size()) throw ParseError(".step lin needs start stop step", line);
    card.kind = StepCard::Kind::kLin;
    card.start = RequireNumber(tokens[i], line);
    card.stop = RequireNumber(tokens[i + 1], line);
    card.step = RequireNumber(tokens[i + 2], line);
    if (card.step == 0.0) throw ParseError(".step lin: zero increment", line);
    if ((card.stop - card.start) * card.step < 0.0) {
      throw ParseError(".step lin: increment walks away from stop", line);
    }
  } else if (kind == "dec") {
    if (i + 2 >= tokens.size()) throw ParseError(".step dec needs start stop points", line);
    card.kind = StepCard::Kind::kDec;
    card.start = RequireNumber(tokens[i], line);
    card.stop = RequireNumber(tokens[i + 1], line);
    card.points_per_decade = static_cast<int>(RequireNumber(tokens[i + 2], line));
    if (card.start <= 0.0 || card.stop < card.start) {
      throw ParseError(".step dec: needs 0 < start <= stop", line);
    }
    if (card.points_per_decade < 1) throw ParseError(".step dec: points must be >= 1", line);
  } else if (kind == "list") {
    card.kind = StepCard::Kind::kList;
    while (i < tokens.size()) card.values.push_back(RequireNumber(tokens[i++], line));
    if (card.values.empty()) throw ParseError(".step list needs at least one value", line);
  } else {
    throw ParseError(".step: expected lin, dec or list, got '" + kind + "'", line);
  }
  for (const StepCard& existing : out.steps) {
    if (existing.param == card.param) {
      throw ParseError(".step: duplicate axis for parameter '" + card.param + "'", line);
    }
  }
  out.steps.push_back(std::move(card));
}

void ParseDotCard(const std::vector<std::string>& tokens, int line, ParsedNetlist& out) {
  const std::string directive = ToLowerAscii(tokens[0]);
  if (directive == ".model") {
    ModelCard card = ParseModelCard(tokens, line);
    if (out.models.count(card.name)) {
      throw ParseError("duplicate .model '" + card.name + "'", line);
    }
    out.models.emplace(card.name, std::move(card));
  } else if (directive == ".tran") {
    if (tokens.size() < 3) throw ParseError(".tran needs tstep and tstop", line);
    out.tran.present = true;
    out.tran.tstep = RequireNumber(tokens[1], line);
    out.tran.tstop = RequireNumber(tokens[2], line);
    out.tran.tstart = tokens.size() > 3 ? RequireNumber(tokens[3], line) : 0.0;
    if (out.tran.tstop <= out.tran.tstart) {
      throw ParseError(".tran: tstop must exceed tstart", line);
    }
  } else if (directive == ".op") {
    out.op_requested = true;
  } else if (directive == ".options" || directive == ".option") {
    std::size_t i = 1;
    while (i < tokens.size()) {
      const std::string key = ToLowerAscii(tokens[i]);
      if (i + 2 < tokens.size() + 1 && i + 1 < tokens.size() && tokens[i + 1] == "=") {
        if (i + 2 >= tokens.size()) throw ParseError("option '" + key + "' missing value", line);
        out.options[key] = ToLowerAscii(tokens[i + 2]);
        i += 3;
      } else {
        out.options[key] = "1";  // boolean flag
        i += 1;
      }
    }
  } else if (directive == ".ic") {
    // .ic v(node)=value ...
    std::size_t i = 1;
    while (i < tokens.size()) {
      if (!EqualsIgnoreCase(tokens[i], "v")) {
        throw ParseError(".ic: expected v(node)=value", line);
      }
      if (i + 5 >= tokens.size() + 1 || i + 4 >= tokens.size() || tokens[i + 1] != "(" ||
          tokens[i + 3] != ")" || tokens[i + 4] != "=") {
        throw ParseError(".ic: malformed v(node)=value", line);
      }
      if (i + 5 >= tokens.size()) throw ParseError(".ic: missing value", line);
      out.initial_conditions[ToLowerAscii(tokens[i + 2])] =
          RequireNumber(tokens[i + 5], line);
      i += 6;
    }
  } else if (directive == ".print" || directive == ".probe" || directive == ".plot") {
    // .print [tran] v(a) v(b) ...
    std::size_t i = 1;
    while (i < tokens.size()) {
      if (EqualsIgnoreCase(tokens[i], "tran")) {
        ++i;
        continue;
      }
      if (EqualsIgnoreCase(tokens[i], "v") && i + 3 < tokens.size() + 1 &&
          i + 1 < tokens.size() && tokens[i + 1] == "(") {
        if (i + 3 >= tokens.size() || tokens[i + 3] != ")") {
          throw ParseError(".print: malformed v(node)", line);
        }
        out.print_nodes.push_back(ToLowerAscii(tokens[i + 2]));
        i += 4;
      } else {
        throw ParseError(".print: expected v(node), got '" + tokens[i] + "'", line);
      }
    }
  } else if (directive == ".param") {
    ParseParamCard(tokens, line, out);
  } else if (directive == ".step") {
    ParseStepCard(tokens, line, out);
  } else if (directive == ".mc") {
    if (tokens.size() < 2) throw ParseError(".mc needs a run count", line);
    out.mc.present = true;
    out.mc.line = line;
    out.mc.runs = static_cast<int>(RequireNumber(tokens[1], line));
    if (out.mc.runs < 1) throw ParseError(".mc: run count must be >= 1", line);
    // Variation: positional (".mc 4 0.05") or named (".mc 4 variation=0.05";
    // the lexer splits '=' into its own token).
    if (tokens.size() == 3) {
      out.mc.variation = RequireNumber(tokens[2], line);
    } else if (tokens.size() == 5 && ToLowerAscii(tokens[2]) == "variation" &&
               tokens[3] == "=") {
      out.mc.variation = RequireNumber(tokens[4], line);
    } else if (tokens.size() > 2) {
      throw ParseError(".mc: expected '.mc N [variation=X]'", line);
    }
    if (out.mc.variation < 0.0 || out.mc.variation >= 1.0) {
      throw ParseError(".mc: variation must be in [0, 1)", line);
    }
  } else if (directive == ".dc") {
    if (tokens.size() < 5) throw ParseError(".dc needs source start stop step", line);
    out.dc.present = true;
    out.dc.line = line;
    out.dc.source = ToLowerAscii(tokens[1]);
    out.dc.start = RequireNumber(tokens[2], line);
    out.dc.stop = RequireNumber(tokens[3], line);
    out.dc.step = RequireNumber(tokens[4], line);
    if (out.dc.step == 0.0) throw ParseError(".dc: zero increment", line);
    if ((out.dc.stop - out.dc.start) * out.dc.step < 0.0) {
      throw ParseError(".dc: increment walks away from stop", line);
    }
  } else if (directive == ".ac") {
    if (tokens.size() < 5) throw ParseError(".ac needs dec|lin points fstart fstop", line);
    out.ac.present = true;
    out.ac.line = line;
    const std::string scale = ToLowerAscii(tokens[1]);
    if (scale == "dec") out.ac.scale = AcCard::Scale::kDec;
    else if (scale == "lin") out.ac.scale = AcCard::Scale::kLin;
    else throw ParseError(".ac: expected dec or lin, got '" + scale + "'", line);
    out.ac.points = static_cast<int>(RequireNumber(tokens[2], line));
    out.ac.fstart = RequireNumber(tokens[3], line);
    out.ac.fstop = RequireNumber(tokens[4], line);
    if (out.ac.points < 1) throw ParseError(".ac: points must be >= 1", line);
    if (out.ac.fstart <= 0.0 || out.ac.fstop < out.ac.fstart) {
      throw ParseError(".ac: needs 0 < fstart <= fstop", line);
    }
  } else if (directive == ".end" || directive == ".ends") {
    // no-op
  } else {
    // Structured unknown-directive error: name the card and the line, and
    // distinguish a known-but-unimplemented SPICE card from a typo.
    for (const char* known : kRecognizedUnsupported) {
      if (directive == known) {
        throw ParseError("directive '" + directive +
                             "' is recognized but not supported by this simulator",
                         line);
      }
    }
    throw ParseError("unknown directive '" + directive +
                         "'; recognized but unsupported cards: " +
                         RecognizedUnsupportedList(),
                     line);
  }
}

}  // namespace

ParsedNetlist ParseNetlist(std::string_view text) {
  const LexedDeck deck = LexDeck(text);
  ParsedNetlist out;
  out.title = deck.title;

  for (const LogicalLine& line : deck.lines) {
    const std::string& head = line.tokens.front();
    if (head.front() == '.') {
      ParseDotCard(line.tokens, line.line_number, out);
      continue;
    }
    const char kind = util::ToLowerAscii(head.front());
    static constexpr std::string_view kKnown = "rclkviegfhdm";
    if (kKnown.find(kind) == std::string_view::npos) {
      throw ParseError("unknown element type '" + std::string(1, head.front()) + "'",
                       line.line_number);
    }
    ElementCard card;
    card.kind = kind;
    card.name = ToLowerAscii(head);
    card.args.assign(line.tokens.begin() + 1, line.tokens.end());
    card.line = line.line_number;
    out.elements.push_back(std::move(card));
  }
  return out;
}

ParsedNetlist ParseNetlistFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open deck file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseNetlist(buffer.str());
}

}  // namespace wavepipe::netlist
