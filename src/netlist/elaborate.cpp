#include "netlist/elaborate.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavepipe::netlist {
namespace {

using devices::Waveform;
using util::EqualsIgnoreCase;
using util::ParseSpiceNumber;
using util::ToLowerAscii;

double RequireNumber(const std::string& token, int line) {
  const auto value = ParseSpiceNumber(token);
  if (!value) throw ParseError("expected a number, got '" + token + "'", line);
  return *value;
}

/// Cursor over an element card's argument tokens.
class Args {
 public:
  explicit Args(const ElementCard& card) : card_(card) {}

  bool done() const { return pos_ >= card_.args.size(); }
  const std::string& peek() const {
    if (done()) throw ParseError(card_.name + ": unexpected end of line", card_.line);
    return card_.args[pos_];
  }
  std::string Next() {
    const std::string tok = peek();
    ++pos_;
    return tok;
  }
  double NextNumber() { return RequireNumber(Next(), card_.line); }
  int line() const { return card_.line; }

 private:
  const ElementCard& card_;
  std::size_t pos_ = 0;
};

/// Parses the source specification tail of a V/I card:
///   [DC value] [AC mag [phase]] [PULSE|SIN|EXP|PWL ( v v v ... )] | value
/// If both DC and a time-varying function are given, the function wins for
/// transient and its t = 0 value is used for DC (documented simplification).
/// An `ac` clause sets the small-signal stimulus via *ac_mag / *ac_phase —
/// it never affects DC or transient.
std::unique_ptr<Waveform> ParseSourceWaveform(Args& args, double* ac_mag,
                                              double* ac_phase) {
  double dc_value = 0.0;

  while (!args.done()) {
    const std::string tok = ToLowerAscii(args.Next());
    if (tok == "dc") {
      dc_value = args.NextNumber();
      continue;
    }
    if (tok == "ac") {
      *ac_mag = args.NextNumber();
      *ac_phase = 0.0;
      // Optional phase: a following number (not a keyword like pulse/sin).
      if (!args.done() && ParseSpiceNumber(args.peek())) *ac_phase = args.NextNumber();
      continue;
    }
    if (tok == "pulse" || tok == "sin" || tok == "exp" || tok == "pwl") {
      std::vector<double> v;
      if (!args.done() && args.peek() == "(") args.Next();
      while (!args.done() && args.peek() != ")") {
        if (args.peek() == ",") {
          args.Next();
          continue;
        }
        v.push_back(args.NextNumber());
      }
      if (!args.done()) args.Next();  // consume ')'

      auto get = [&](std::size_t i, double fallback) {
        return i < v.size() ? v[i] : fallback;
      };
      if (tok == "pulse") {
        if (v.size() < 2) throw ParseError("PULSE needs at least v1 v2", args.line());
        return std::make_unique<devices::PulseWaveform>(
            v[0], v[1], get(2, 0.0), get(3, 0.0), get(4, 0.0), get(5, 1e30), get(6, 0.0));
      }
      if (tok == "sin") {
        if (v.size() < 3) throw ParseError("SIN needs vo va freq", args.line());
        return std::make_unique<devices::SinWaveform>(v[0], v[1], v[2], get(3, 0.0),
                                                      get(4, 0.0));
      }
      if (tok == "exp") {
        if (v.size() < 2) throw ParseError("EXP needs v1 v2", args.line());
        const double td1 = get(2, 0.0);
        const double tau1 = get(3, 1e-9);
        const double td2 = get(4, td1 + tau1);
        const double tau2 = get(5, tau1);
        return std::make_unique<devices::ExpWaveform>(v[0], v[1], td1, tau1, td2, tau2);
      }
      // PWL.
      if (v.size() < 2 || v.size() % 2 != 0) {
        throw ParseError("PWL needs t/v pairs", args.line());
      }
      std::vector<std::pair<double, double>> points;
      for (std::size_t i = 0; i + 1 < v.size(); i += 2) points.emplace_back(v[i], v[i + 1]);
      return std::make_unique<devices::PwlWaveform>(std::move(points));
    }
    // Bare number = DC value.
    const auto value = ParseSpiceNumber(tok);
    if (!value) throw ParseError("unexpected source token '" + tok + "'", args.line());
    dc_value = *value;
  }
  return std::make_unique<devices::DcWaveform>(dc_value);
}

double ModelParam(const ModelCard& card, const char* key, double fallback) {
  const auto it = card.params.find(key);
  return it == card.params.end() ? fallback : it->second;
}

devices::DiodeModel BuildDiodeModel(const ModelCard& card) {
  devices::DiodeModel m;
  m.name = card.name;
  m.is = ModelParam(card, "is", m.is);
  m.n = ModelParam(card, "n", m.n);
  m.rs = ModelParam(card, "rs", m.rs);
  m.cj0 = ModelParam(card, "cjo", ModelParam(card, "cj0", m.cj0));
  m.vj = ModelParam(card, "vj", m.vj);
  m.m = ModelParam(card, "m", m.m);
  m.tt = ModelParam(card, "tt", m.tt);
  return m;
}

devices::MosfetModel BuildMosfetModel(const ModelCard& card) {
  const double level = ModelParam(card, "level", 1.0);
  if (level != 1.0) {
    throw ElaborationError(".model " + card.name + ": only LEVEL=1 is supported");
  }
  devices::MosfetModel m;
  m.name = card.name;
  m.type = card.type == "pmos" ? -1 : 1;
  m.vto = ModelParam(card, "vto", m.type == 1 ? 0.7 : -0.7);
  m.kp = ModelParam(card, "kp", m.type == 1 ? 110e-6 : 40e-6);
  m.gamma = ModelParam(card, "gamma", m.gamma);
  m.phi = ModelParam(card, "phi", m.phi);
  m.lambda = ModelParam(card, "lambda", m.lambda);
  m.tox = ModelParam(card, "tox", m.tox);
  m.cgso = ModelParam(card, "cgso", m.cgso);
  m.cgdo = ModelParam(card, "cgdo", m.cgdo);
  m.cgbo = ModelParam(card, "cgbo", m.cgbo);
  m.meyer = ModelParam(card, "meyer", 0.0) != 0.0;
  return m;
}

const ModelCard& FindModel(const ParsedNetlist& netlist, const std::string& name,
                           int line) {
  const auto it = netlist.models.find(ToLowerAscii(name));
  if (it == netlist.models.end()) {
    throw ParseError("unknown .model '" + name + "'", line);
  }
  return it->second;
}

engine::SimOptions BuildSimOptions(const ParsedNetlist& netlist) {
  engine::SimOptions sim;
  for (const auto& [key, value] : netlist.options) {
    const auto number = ParseSpiceNumber(value);
    if (key == "reltol" && number) sim.reltol = *number;
    else if (key == "abstol" && number) sim.abstol = *number;
    else if (key == "vntol" && number) sim.vntol = *number;
    else if (key == "gmin" && number) sim.gmin = *number;
    else if (key == "trtol" && number) sim.trtol = *number;
    else if ((key == "itl4" || key == "itl1") && number) {
      if (key == "itl4") sim.max_newton_iters = static_cast<int>(*number);
      else sim.max_dcop_iters = static_cast<int>(*number);
    } else if (key == "maxstep" && number) {
      sim.hmax = *number;
    } else if (key == "method") {
      if (value == "trap" || value == "trapezoidal") sim.method = engine::Method::kTrapezoidal;
      else if (value == "gear" || value == "gear2") sim.method = engine::Method::kGear2;
      else if (value == "be" || value == "euler") sim.method = engine::Method::kBackwardEuler;
      else throw ElaborationError(".options method: unknown method '" + value + "'");
    }
    // Unknown options are accepted and ignored, as in SPICE.
  }
  return sim;
}

}  // namespace

ElaboratedCircuit Elaborate(const ParsedNetlist& netlist) {
  ElaboratedCircuit out;
  out.title = netlist.title;
  out.circuit = std::make_unique<engine::Circuit>();
  engine::Circuit& c = *out.circuit;

  std::set<std::string> names;
  for (const ElementCard& card : netlist.elements) {
    if (!names.insert(card.name).second) {
      throw ElaborationError("duplicate instance name '" + card.name + "'");
    }
    Args args(card);
    switch (card.kind) {
      case 'r': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        const double value = args.NextNumber();
        if (value == 0.0) throw ElaborationError(card.name + ": zero resistance");
        c.Emplace<devices::Resistor>(card.name, p, n, value);
        break;
      }
      case 'c': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        c.Emplace<devices::Capacitor>(card.name, p, n, args.NextNumber());
        break;
      }
      case 'l': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        c.Emplace<devices::Inductor>(card.name, p, n, args.NextNumber());
        break;
      }
      case 'k': {
        const std::string l1 = ToLowerAscii(args.Next());
        const std::string l2 = ToLowerAscii(args.Next());
        const double k = args.NextNumber();
        // Inductance values are needed for M = k*sqrt(L1*L2); find them.
        auto find_l = [&](const std::string& lname) -> double {
          for (const ElementCard& e : netlist.elements) {
            if (e.kind == 'l' && e.name == lname && e.args.size() >= 3) {
              return RequireNumber(e.args[2], e.line);
            }
          }
          throw ElaborationError(card.name + ": unknown inductor '" + lname + "'");
        };
        c.Emplace<devices::MutualInductance>(card.name, l1, l2, k, find_l(l1), find_l(l2));
        break;
      }
      case 'v': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        double ac_mag = 0.0, ac_phase = 0.0;
        auto* source = c.Emplace<devices::VoltageSource>(
            card.name, p, n, ParseSourceWaveform(args, &ac_mag, &ac_phase));
        source->set_ac(ac_mag, ac_phase);
        break;
      }
      case 'i': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        double ac_mag = 0.0, ac_phase = 0.0;
        auto* source = c.Emplace<devices::CurrentSource>(
            card.name, p, n, ParseSourceWaveform(args, &ac_mag, &ac_phase));
        source->set_ac(ac_mag, ac_phase);
        break;
      }
      case 'e': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        const int cp = c.AddNode(args.Next());
        const int cn = c.AddNode(args.Next());
        c.Emplace<devices::Vcvs>(card.name, p, n, cp, cn, args.NextNumber());
        break;
      }
      case 'g': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        const int cp = c.AddNode(args.Next());
        const int cn = c.AddNode(args.Next());
        c.Emplace<devices::Vccs>(card.name, p, n, cp, cn, args.NextNumber());
        break;
      }
      case 'f': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        const std::string sense = ToLowerAscii(args.Next());
        c.Emplace<devices::Cccs>(card.name, p, n, sense, args.NextNumber());
        break;
      }
      case 'h': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        const std::string sense = ToLowerAscii(args.Next());
        c.Emplace<devices::Ccvs>(card.name, p, n, sense, args.NextNumber());
        break;
      }
      case 'd': {
        const int p = c.AddNode(args.Next());
        const int n = c.AddNode(args.Next());
        const ModelCard& model = FindModel(netlist, args.Next(), card.line);
        if (model.type != "d") {
          throw ElaborationError(card.name + ": model '" + model.name + "' is not a diode");
        }
        const double area = args.done() ? 1.0 : args.NextNumber();
        c.Emplace<devices::Diode>(card.name, p, n, BuildDiodeModel(model), area);
        break;
      }
      case 'm': {
        const int d = c.AddNode(args.Next());
        const int g = c.AddNode(args.Next());
        const int s = c.AddNode(args.Next());
        const int b = c.AddNode(args.Next());
        const ModelCard& model = FindModel(netlist, args.Next(), card.line);
        if (model.type != "nmos" && model.type != "pmos") {
          throw ElaborationError(card.name + ": model '" + model.name + "' is not a MOSFET");
        }
        double w = 2e-6, l = 1e-6;
        while (!args.done()) {
          const std::string key = ToLowerAscii(args.Next());
          if (args.done() || args.peek() != "=") {
            throw ParseError(card.name + ": expected '" + key + " = value'", card.line);
          }
          args.Next();  // '='
          const double value = args.NextNumber();
          if (key == "w") w = value;
          else if (key == "l") l = value;
          else throw ParseError(card.name + ": unknown parameter '" + key + "'", card.line);
        }
        c.Emplace<devices::Mosfet>(card.name, d, g, s, b, BuildMosfetModel(model), w, l);
        break;
      }
      default:
        throw ElaborationError(std::string("unhandled element kind '") + card.kind + "'");
    }
    if (!args.done() && card.kind != 'v' && card.kind != 'i') {
      throw ParseError(card.name + ": trailing garbage '" + args.peek() + "'", card.line);
    }
  }
  c.Finalize();

  out.sim_options = BuildSimOptions(netlist);
  for (const std::string& node : netlist.print_nodes) {
    out.probes.unknowns.push_back(c.NodeIndex(node));
    out.probes.names.push_back(node);
  }
  out.has_tran = netlist.tran.present;
  if (out.has_tran) {
    out.spec.tstart = netlist.tran.tstart;
    out.spec.tstop = netlist.tran.tstop;
    out.spec.tstep = netlist.tran.tstep;
    out.spec.probes = out.probes;
  }
  out.dc = netlist.dc;
  out.ac = netlist.ac;
  if (out.dc.present && c.FindDevice(out.dc.source) == nullptr) {
    throw ElaborationError(".dc: unknown source '" + out.dc.source + "'");
  }
  for (const auto& [node, volts] : netlist.initial_conditions) {
    out.initial_conditions.emplace_back(c.NodeIndex(node), volts);
  }
  out.spec.initial_conditions = out.initial_conditions;
  return out;
}

ElaboratedCircuit ParseAndElaborate(std::string_view deck_text) {
  return Elaborate(ParseNetlist(deck_text));
}

ElaboratedCircuit LoadDeckFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open deck file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseAndElaborate(buffer.str());
}

}  // namespace wavepipe::netlist
