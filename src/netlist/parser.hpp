// Deck parser: token lines -> a structured netlist (no device objects yet;
// elaboration turns this into an engine::Circuit).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wavepipe::netlist {

struct ModelCard {
  std::string name;                      ///< lowercase
  std::string type;                      ///< "d", "nmos", or "pmos"
  std::map<std::string, double> params;  ///< lowercase keys
  int line = 0;
};

/// One element instance, pre-parsed into name, nodes and remaining fields.
struct ElementCard {
  char kind = '?';  ///< lowercase element letter: r c l k v i e g f h d m
  std::string name; ///< full instance name, lowercase ("r1", "mload")
  std::vector<std::string> args;  ///< tokens after the name (punct split out)
  int line = 0;
};

struct TranCard {
  bool present = false;
  double tstep = 0.0;
  double tstop = 0.0;
  double tstart = 0.0;
};

struct ParsedNetlist {
  std::string title;
  std::vector<ElementCard> elements;
  std::map<std::string, ModelCard> models;       ///< by lowercase name
  TranCard tran;
  bool op_requested = false;
  std::map<std::string, std::string> options;    ///< raw .options key -> value
  std::map<std::string, double> initial_conditions;  ///< node -> volts (.ic)
  std::vector<std::string> print_nodes;          ///< .print/.probe v(x) targets
};

/// Parses a full deck.  Throws ParseError with line numbers on bad input.
ParsedNetlist ParseNetlist(std::string_view text);

}  // namespace wavepipe::netlist
