// Deck parser: token lines -> a structured netlist (no device objects yet;
// elaboration turns this into an engine::Circuit).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wavepipe::netlist {

struct ModelCard {
  std::string name;                      ///< lowercase
  std::string type;                      ///< "d", "nmos", or "pmos"
  std::map<std::string, double> params;  ///< lowercase keys
  int line = 0;
};

/// One element instance, pre-parsed into name, nodes and remaining fields.
struct ElementCard {
  char kind = '?';  ///< lowercase element letter: r c l k v i e g f h d m
  std::string name; ///< full instance name, lowercase ("r1", "mload")
  std::vector<std::string> args;  ///< tokens after the name (punct split out)
  int line = 0;
};

struct TranCard {
  bool present = false;
  double tstep = 0.0;
  double tstop = 0.0;
  double tstart = 0.0;
};

/// One `.step` axis of a parameter sweep.  Multiple cards nest: the batch
/// planner expands their cartesian product (src/batch/sweep.hpp).
struct StepCard {
  enum class Kind {
    kLin,   ///< .step <param> lin <start> <stop> <increment>
    kDec,   ///< .step <param> dec <start> <stop> <points-per-decade>
    kList,  ///< .step <param> list v1 v2 ...
  };
  std::string param;  ///< lowercase parameter name
  Kind kind = Kind::kLin;
  double start = 0.0, stop = 0.0;
  double step = 0.0;            ///< lin: increment
  int points_per_decade = 0;    ///< dec
  std::vector<double> values;   ///< list
  int line = 0;
};

/// `.mc <runs> [variation]`: seeded Monte Carlo corners; every R/C/L value
/// is perturbed by a deterministic per-(variant, device) factor in
/// [1 - variation, 1 + variation].
struct McCard {
  bool present = false;
  int runs = 0;
  double variation = 0.1;
  int line = 0;
};

/// `.dc <source> <start> <stop> <increment>`: sweep one V/I source's DC
/// value, solving the operating point at each step.
struct DcCard {
  bool present = false;
  std::string source;  ///< lowercase instance name of the swept source
  double start = 0.0, stop = 0.0, step = 0.0;
  int line = 0;
};

/// `.ac dec|lin <points> <fstart> <fstop>`: small-signal frequency sweep.
struct AcCard {
  enum class Scale { kDec, kLin };
  bool present = false;
  Scale scale = Scale::kDec;
  int points = 0;  ///< per decade (dec) or total (lin)
  double fstart = 0.0, fstop = 0.0;
  int line = 0;
};

struct ParsedNetlist {
  std::string title;
  std::vector<ElementCard> elements;
  std::map<std::string, ModelCard> models;       ///< by lowercase name
  TranCard tran;
  bool op_requested = false;
  std::map<std::string, std::string> options;    ///< raw .options key -> value
  std::map<std::string, double> initial_conditions;  ///< node -> volts (.ic)
  std::vector<std::string> print_nodes;          ///< .print/.probe v(x) targets
  /// `.param name = value` defaults, in declaration order (later cards
  /// override earlier ones).  Values stay raw tokens: `{name}` references in
  /// element args are substituted textually (src/batch/sweep.hpp).
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<StepCard> steps;  ///< sweep axes, cartesian-product order
  McCard mc;
  DcCard dc;
  AcCard ac;
};

/// Parses a full deck.  Throws ParseError with line numbers on bad input.
ParsedNetlist ParseNetlist(std::string_view text);

/// Loads and parses a deck from a file path (throws util::Error when the
/// file cannot be opened).  The batch front end parses before elaborating so
/// it can expand .param/.step/.mc variants from the card level.
ParsedNetlist ParseNetlistFile(const std::string& path);

}  // namespace wavepipe::netlist
