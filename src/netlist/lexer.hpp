// Deck lexer: physical lines -> logical lines -> token lists.
//
// Handles SPICE line conventions: the first line is the title, '*' starts a
// comment line, '$' and ';' start trailing comments, '+' continues the
// previous logical line.  Punctuation '(' ')' ',' '=' is split into its own
// tokens so PULSE(...) and W=2u parse uniformly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wavepipe::netlist {

struct LogicalLine {
  int line_number = 0;  ///< physical line where the logical line starts
  std::vector<std::string> tokens;
};

struct LexedDeck {
  std::string title;
  std::vector<LogicalLine> lines;
};

/// Lexes a whole deck.  Throws ParseError on stray continuation lines.
LexedDeck LexDeck(std::string_view text);

}  // namespace wavepipe::netlist
