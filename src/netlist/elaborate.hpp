// Elaboration: ParsedNetlist -> engine::Circuit plus analysis setup.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "engine/circuit.hpp"
#include "engine/options.hpp"
#include "engine/transient.hpp"
#include "netlist/parser.hpp"

namespace wavepipe::netlist {

struct ElaboratedCircuit {
  std::string title;
  std::unique_ptr<engine::Circuit> circuit;
  bool has_tran = false;
  engine::TransientSpec spec;       ///< valid when has_tran
  engine::SimOptions sim_options;   ///< .options applied over defaults
  /// .ic entries resolved to unknown indices (applied as the DC guess).
  std::vector<std::pair<int, double>> initial_conditions;
  /// Non-transient analysis verbs carried through from the deck (check
  /// .present); the CLI / batch runner dispatch on tran > dc > ac.
  DcCard dc;
  AcCard ac;
  /// .print/.probe selections resolved against the circuit, shared by every
  /// analysis verb (spec.probes duplicates this for the transient path).
  engine::ProbeSet probes;
};

/// Builds devices from cards; throws ElaborationError / ParseError on
/// missing models, bad node counts, duplicate instances.
ElaboratedCircuit Elaborate(const ParsedNetlist& netlist);

/// Convenience: parse + elaborate a deck string.
ElaboratedCircuit ParseAndElaborate(std::string_view deck_text);

/// Convenience: load a deck from a file path.
ElaboratedCircuit LoadDeckFile(const std::string& path);

}  // namespace wavepipe::netlist
