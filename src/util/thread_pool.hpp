// Fixed-size thread pool with futures.
//
// WavePipe's pipeline schemes submit one task per in-flight time point; the
// fine-grained baseline submits one task per device chunk.  The pool is
// intentionally simple: a mutex-protected deque and condition variable.  At
// WavePipe's granularity (one task = a full nonlinear solve, milliseconds to
// seconds) queue contention is irrelevant; clarity and correctness win.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace wavepipe::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.  Exceptions thrown
  /// by `fn` propagate through the future.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace wavepipe::util
