// Fixed-size thread pool with futures.
//
// WavePipe's pipeline schemes submit one task per in-flight time point; the
// fine-grained baseline submits one task per device chunk.  The pool is
// intentionally simple: a mutex-protected deque and condition variable.  At
// WavePipe's granularity (one task = a full nonlinear solve, milliseconds to
// seconds) queue contention is irrelevant; clarity and correctness win.
//
// Shutdown semantics:
//  * Shutdown() (also run by the destructor) DRAINS the queue: every task
//    already accepted by Submit() runs to completion before the workers
//    exit, so no future obtained from a successful Submit() can dangle.
//  * Submit() after shutdown has begun throws wavepipe::Error instead of
//    enqueueing a task no worker would ever run (whose future.get() would
//    deadlock the caller forever).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace wavepipe::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.  Exceptions thrown
  /// by `fn` propagate through the future.  Throws wavepipe::Error if the
  /// pool has begun stopping (the task would never run and its future could
  /// never be satisfied).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    // The fault check runs INSIDE the packaged task so an injected throw is
    // captured into the future — exactly how a real task failure surfaces.
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<Fn>(fn)]() mutable -> Result {
          if (WP_FAULT_POINT("pool.task_throw")) {
            throw fault::FaultInjectedError("pool.task_throw");
          }
          return fn();
        });
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw Error("ThreadPool: Submit after shutdown began; the task would never run");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Stops accepting work, drains every queued task, and joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Liveness heartbeats for the stall watchdog (engine/resilience.hpp):
  /// ticked by workers at task pickup and completion (relaxed).  A pool whose
  /// started beat advances while completed stays put has a hung task; one
  /// where neither moves is idle or starved — the watchdog's no-progress
  /// window covers both, fed alongside the Newton-loop heartbeats.
  const std::atomic<std::uint64_t>& tasks_started_heartbeat() const {
    return tasks_started_;
  }
  const std::atomic<std::uint64_t>& tasks_completed_heartbeat() const {
    return tasks_completed_;
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> tasks_started_{0};
  std::atomic<std::uint64_t> tasks_completed_{0};
};

}  // namespace wavepipe::util
