// Durable binary snapshots: the byte-level half of checkpoint/restart.
//
// A checkpoint file is
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//   0       4     magic "WPCK"
//   4       4     format version (u32 LE) — currently 1
//   8       8     generation (u64 LE, monotonically increasing per run)
//   16      8     payload length in bytes (u64 LE)
//   24      4     CRC-32 of the payload (u32 LE, IEEE polynomial)
//   28      n     payload (engine-defined, see engine/resilience.hpp)
//
// Durability protocol: every write goes to `<path>.tmp`, is fsync'd, then
// renamed over one of TWO generation slots `<path>.a` / `<path>.b` (picked by
// generation parity).  rename(2) is atomic on POSIX, so a reader never sees a
// torn file, and double-buffering means a crash DURING a checkpoint write can
// at worst lose the newest generation — the previous slot still validates.
// LoadNewestCheckpoint() reads both slots and returns the highest-generation
// payload whose magic/version/length/CRC all check out.
//
// Fault sites (util/fault.hpp): `ckpt.write` simulates an I/O failure (throws
// CheckpointError before the slot is replaced); `ckpt.corrupt` flips a payload
// byte AFTER the CRC is computed, producing an on-disk file that must be
// rejected at load time.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wavepipe::util {

/// Anything wrong with checkpoint I/O or contents: unreadable/corrupt files,
/// truncated payloads, format-version or run-fingerprint mismatches.  Mapped
/// to its own wavespice exit code (5) so job schedulers can distinguish
/// "resume input is bad" from "the analysis itself failed".
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) over `bytes`.
std::uint32_t Crc32(std::span<const std::uint8_t> bytes);

/// Little-endian append-only payload builder.  All multi-byte integers are
/// written LE regardless of host order so checkpoint files are portable.
class ByteWriter {
 public:
  void U8(std::uint8_t v) { bytes_.push_back(v); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& v);
  void DoubleVec(std::span<const double> v);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked sequential reader over a payload.  Every underrun throws
/// CheckpointError — a truncated file can never be silently accepted.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();
  std::vector<double> DoubleVec();

  bool AtEnd() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void Need(std::size_t n);
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Atomically publishes `payload` as generation `generation` of checkpoint
/// `path_base` (slot `<path_base>.a` or `.b` by generation parity).  Returns
/// the number of bytes written (header + payload).  Throws CheckpointError on
/// any I/O failure (including the injected `ckpt.write` fault) — the
/// previously published slots are untouched in every failure mode.
std::size_t WriteCheckpointSlot(const std::string& path_base,
                                std::span<const std::uint8_t> payload,
                                std::uint64_t generation);

struct LoadedCheckpoint {
  std::uint64_t generation = 0;
  std::vector<std::uint8_t> payload;
};

/// Reads both generation slots of `path_base` (falling back to `path_base`
/// itself as a bare single file) and returns the highest-generation payload
/// that validates.  Throws CheckpointError when no slot holds a valid
/// checkpoint, with the per-slot rejection reasons in the message.
LoadedCheckpoint LoadNewestCheckpoint(const std::string& path_base);

}  // namespace wavepipe::util
