#include "util/fault.hpp"

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace wavepipe::util::fault {
namespace {

struct SiteState {
  std::string name;
  Schedule schedule;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  std::uint64_t rng = 0;  ///< splitmix64 state, seeded from schedule.seed
};

// A mutex-protected registry is fine here: ShouldFire only runs while a test
// has armed at least one site, and even then one lock per fault-point hit is
// noise next to the nonlinear solve each hit sits inside.  The common
// (disabled) path never touches the registry at all.
std::mutex g_mutex;
std::vector<SiteState>& Registry() {
  static std::vector<SiteState> sites;
  return sites;
}
std::atomic<int> g_armed{0};

SiteState* Find(std::string_view site) {
  for (auto& state : Registry()) {
    if (state.name == site) return &state;
  }
  return nullptr;
}

double NextUniform(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

bool Enabled() { return g_armed.load(std::memory_order_relaxed) > 0; }

void Arm(std::string_view site, const Schedule& schedule) {
  std::lock_guard<std::mutex> lock(g_mutex);
  SiteState* state = Find(site);
  if (state == nullptr) {
    Registry().push_back({});
    state = &Registry().back();
    state->name = std::string(site);
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
  state->schedule = schedule;
  state->hits = 0;
  state->fired = 0;
  state->rng = schedule.seed;
}

void Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& sites = Registry();
  for (auto it = sites.begin(); it != sites.end(); ++it) {
    if (it->name == site) {
      sites.erase(it);
      g_armed.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed.fetch_sub(static_cast<int>(Registry().size()), std::memory_order_relaxed);
  Registry().clear();
}

std::uint64_t Hits(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const SiteState* state = Find(site);
  return state != nullptr ? state->hits : 0;
}

std::uint64_t Fired(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const SiteState* state = Find(site);
  return state != nullptr ? state->fired : 0;
}

bool ShouldFire(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  SiteState* state = Find(site);
  if (state == nullptr) return false;
  const std::uint64_t hit = state->hits++;
  if (hit < state->schedule.skip) return false;
  if (state->schedule.fire != Schedule::kUnlimited &&
      hit >= state->schedule.skip + state->schedule.fire) {
    return false;
  }
  if (state->schedule.probability < 1.0 &&
      NextUniform(state->rng) >= state->schedule.probability) {
    return false;
  }
  ++state->fired;
  return true;
}

}  // namespace wavepipe::util::fault
