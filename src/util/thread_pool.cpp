#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace wavepipe::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  WP_ASSERT(num_threads >= 1);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasks_started_.fetch_add(1, std::memory_order_relaxed);
    task();  // packaged_task captures exceptions into the future
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace wavepipe::util
