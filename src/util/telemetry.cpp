#include "util/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "util/error.hpp"

namespace wavepipe::util::telemetry {

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

void CounterRegistry::Add(std::string_view name, double value, bool integral) {
  if (Find(name) != nullptr) {
    throw Error("telemetry: duplicate counter name '" + std::string(name) + "'");
  }
  counters_.push_back(Counter{std::string(name), value, integral});
}

void CounterRegistry::Count(std::string_view name, std::uint64_t value) {
  Add(name, static_cast<double>(value), /*integral=*/true);
}

void CounterRegistry::Value(std::string_view name, double value) {
  Add(name, value, /*integral=*/false);
}

const Counter* CounterRegistry::Find(std::string_view name) const {
  for (const auto& counter : counters_) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

std::vector<std::string> CounterRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& counter : counters_) names.push_back(counter.name);
  return names;
}

// ---------------------------------------------------------------------------
// Span capture
// ---------------------------------------------------------------------------

namespace {

/// Per-thread event buffer.  Owned jointly by the thread (thread_local
/// shared_ptr, appends) and the global registry (shared_ptr, drains on
/// StopCapture), so events survive worker-thread exit.  The per-buffer
/// mutex is uncontended except for the brief overlap with StopCapture.
struct ThreadBuffer {
  std::mutex mutex;
  std::uint32_t epoch = 0;  ///< capture epoch the events belong to
  std::vector<SpanEvent> events;
};

struct GlobalState {
  // Capture toggle + epoch.  `active` is the one relaxed load inactive spans
  // pay; `epoch` distinguishes captures so a span that straddles Start/Stop
  // can never leak into the wrong capture.
  std::atomic<bool> active{false};
  std::atomic<std::uint32_t> epoch{0};

  std::mutex registry_mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<LaneLabel> lanes;
};

GlobalState& State() {
  static GlobalState state;
  return state;
}

thread_local std::shared_ptr<ThreadBuffer> tl_buffer;
thread_local std::uint32_t tl_lane = 0;
thread_local std::int32_t tl_depth = 0;

ThreadBuffer& LocalBuffer() {
  if (!tl_buffer) {
    tl_buffer = std::make_shared<ThreadBuffer>();
    GlobalState& state = State();
    std::lock_guard<std::mutex> lock(state.registry_mutex);
    state.buffers.push_back(tl_buffer);
  }
  return *tl_buffer;
}

double NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

void RecordEvent(const SpanEvent& event, std::uint32_t epoch) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.epoch != epoch) {
    // First event of a new capture on this thread: drop the previous
    // capture's leftovers (already drained or abandoned).
    buffer.events.clear();
    buffer.epoch = epoch;
  }
  buffer.events.push_back(event);
}

}  // namespace

bool CaptureActive() { return State().active.load(std::memory_order_relaxed); }

void StartCapture() {
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.registry_mutex);
  state.epoch.fetch_add(1, std::memory_order_relaxed);
  state.active.store(true, std::memory_order_release);
}

Capture StopCapture() {
  GlobalState& state = State();
  Capture capture;
  state.active.store(false, std::memory_order_release);
  const std::uint32_t epoch = state.epoch.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state.registry_mutex);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    if (buffer->epoch != epoch) continue;
    capture.events.insert(capture.events.end(), buffer->events.begin(),
                          buffer->events.end());
    buffer->events.clear();
  }
  std::stable_sort(capture.events.begin(), capture.events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });
  capture.lanes = state.lanes;
  std::stable_sort(capture.lanes.begin(), capture.lanes.end(),
                   [](const LaneLabel& a, const LaneLabel& b) { return a.lane < b.lane; });
  return capture;
}

void RegisterLane(std::uint32_t lane, std::string label) {
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.registry_mutex);
  for (const auto& existing : state.lanes) {
    if (existing.lane == lane) return;  // first registration wins
  }
  state.lanes.push_back(LaneLabel{lane, std::move(label)});
}

std::uint32_t CurrentLane() { return tl_lane; }

ScopedLane::ScopedLane(std::uint32_t lane) : previous_(tl_lane) { tl_lane = lane; }

ScopedLane::ScopedLane(std::uint32_t lane, std::string label) : previous_(tl_lane) {
  tl_lane = lane;
  RegisterLane(lane, std::move(label));
}

ScopedLane::~ScopedLane() { tl_lane = previous_; }

#if !defined(WAVEPIPE_TELEMETRY_DISABLED)

Span::Span(const char* category, const char* name)
    : category_(category), name_(name) {
  if (!CaptureActive()) return;  // epoch_ stays 0: record nothing on close
  epoch_ = State().epoch.load(std::memory_order_relaxed);
  ++tl_depth;
  start_us_ = NowMicros();
}

Span::~Span() {
  if (epoch_ == 0) return;
  const double end_us = NowMicros();
  --tl_depth;
  if (!CaptureActive()) return;  // capture ended mid-span: drop, never truncate
  SpanEvent event;
  event.category = category_;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.lane = tl_lane;
  event.depth = tl_depth;
  event.instant = false;
  RecordEvent(event, epoch_);
}

void Instant(const char* category, const char* name) {
  if (!CaptureActive()) return;
  SpanEvent event;
  event.category = category;
  event.name = name;
  event.start_us = NowMicros();
  event.dur_us = 0.0;
  event.lane = tl_lane;
  event.depth = tl_depth;
  event.instant = true;
  RecordEvent(event, State().epoch.load(std::memory_order_relaxed));
}

#endif  // !WAVEPIPE_TELEMETRY_DISABLED

}  // namespace wavepipe::util::telemetry
