#include "util/strings.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wavepipe::util {

char ToLowerAscii(char c) { return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c; }

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(ToLowerAscii(c));
  return out;
}

bool IsDigitAscii(char c) { return c >= '0' && c <= '9'; }

bool IsAlphaAscii(char c) { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'); }

bool IsSpaceAscii(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f'; }

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerAscii(a[i]) != ToLowerAscii(b[i])) return false;
  }
  return true;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

std::string_view TrimAscii(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpaceAscii(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpaceAscii(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitTokens(std::string_view s, std::string_view delims) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    size_t start = i;
    while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> SplitExact(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::optional<double> ParseSpiceNumber(std::string_view s) {
  s = TrimAscii(s);
  if (s.empty()) return std::nullopt;

  // strtod needs a NUL-terminated buffer; SPICE numbers are short.
  char buffer[64];
  if (s.size() >= sizeof(buffer)) return std::nullopt;
  std::memcpy(buffer, s.data(), s.size());
  buffer[s.size()] = '\0';

  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer, &end);
  if (end == buffer || errno == ERANGE) return std::nullopt;

  std::string_view rest = TrimAscii(std::string_view(end));
  if (rest.empty()) return value;
  // Only an alphabetic suffix is legal after the mantissa.
  for (char c : rest) {
    if (!IsAlphaAscii(c)) return std::nullopt;
  }

  const std::string suffix = ToLowerAscii(rest);
  double scale = 1.0;
  size_t consumed = 1;
  if (suffix.rfind("meg", 0) == 0) {
    scale = 1e6;
    consumed = 3;
  } else if (suffix.rfind("mil", 0) == 0) {
    scale = 25.4e-6;
    consumed = 3;
  } else {
    switch (suffix[0]) {
      case 't': scale = 1e12; break;
      case 'g': scale = 1e9; break;
      case 'k': scale = 1e3; break;
      case 'm': scale = 1e-3; break;
      case 'u': scale = 1e-6; break;
      case 'n': scale = 1e-9; break;
      case 'p': scale = 1e-12; break;
      case 'f': scale = 1e-15; break;
      case 'a': scale = 1e-18; break;
      default:
        // Unknown letter: SPICE treats it as a unit ("10V"), scale 1.
        scale = 1.0;
        consumed = 0;
        break;
    }
  }
  // Remaining letters after the suffix are a unit and are ignored ("10pF").
  (void)consumed;
  return value * scale;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

}  // namespace wavepipe::util
