// String helpers used by the netlist front end and table writers.
//
// SPICE decks are ASCII and case-insensitive; these helpers are deliberately
// locale-independent (std::tolower and friends consult the global locale,
// which is wrong for a deck parser).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wavepipe::util {

/// ASCII-only lowercase (locale independent).
char ToLowerAscii(char c);
std::string ToLowerAscii(std::string_view s);

bool IsDigitAscii(char c);
bool IsAlphaAscii(char c);
bool IsSpaceAscii(char c);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

std::string_view TrimAscii(std::string_view s);

/// Splits on any run of characters from `delims`; empty fields are dropped.
std::vector<std::string_view> SplitTokens(std::string_view s, std::string_view delims = " \t");

/// Splits on a single delimiter; empty fields are kept.
std::vector<std::string_view> SplitExact(std::string_view s, char delim);

/// Parses a SPICE number with an optional engineering suffix:
///   1k = 1e3, 2.5u = 2.5e-6, 10meg = 1e7, 3mil = 3*25.4e-6, ...
/// Trailing alphabetic unit garbage after the suffix is ignored, as in SPICE
/// ("10pF" parses as 10e-12).  Returns nullopt on malformed input.
std::optional<double> ParseSpiceNumber(std::string_view s);

/// Formats a double compactly ("1.5e-09" -> "1.5n" style is NOT used; we keep
/// plain scientific with `digits` significant digits for unambiguous CSVs).
std::string FormatDouble(double value, int digits = 6);

}  // namespace wavepipe::util
