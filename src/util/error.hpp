// Error types shared across the WavePipe code base.
//
// Errors that a caller can reasonably recover from (bad netlist, singular
// matrix, non-convergent Newton loop) are reported with exceptions derived
// from `wavepipe::Error`.  Programming errors (violated preconditions) are
// checked with WP_ASSERT, which is active in all build types: a circuit
// simulator that silently reads out of bounds produces plausible-looking
// garbage, which is worse than a crash.
#pragma once

#include <stdexcept>
#include <string>

namespace wavepipe {

/// Base class for all recoverable WavePipe errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed netlist / deck input.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = 0)
      : Error(line > 0 ? "parse error at line " + std::to_string(line) + ": " + what
                       : "parse error: " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Structural problems found while elaborating a circuit (dangling nodes,
/// missing .model cards, duplicate instance names, ...).
class ElaborationError : public Error {
 public:
  using Error::Error;
};

/// Numerical failure: singular or numerically unacceptable matrix.
class SingularMatrixError : public Error {
 public:
  explicit SingularMatrixError(const std::string& what, int column = -1)
      : Error(what), column_(column) {}
  /// Column (unknown index) at which factorization broke down, or -1.
  int column() const { return column_; }

 private:
  int column_;
};

/// Newton-Raphson (or a continuation wrapper around it) failed to converge.
class ConvergenceError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] inline void AssertFail(const char* expr, const char* file, int line) {
  throw std::logic_error(std::string("assertion failed: ") + expr + " at " + file + ":" +
                         std::to_string(line));
}

}  // namespace wavepipe

#define WP_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::wavepipe::AssertFail(#expr, __FILE__, __LINE__))
