// Deterministic pseudo-random number generator (xoshiro256** seeded with
// splitmix64).  Circuit generators and property tests must be reproducible
// from a single seed across platforms, which rules out std::default_random_
// engine (implementation-defined) and std::uniform_real_distribution
// (implementation-defined rounding); both are reimplemented here.
#pragma once

#include <cstdint>

namespace wavepipe::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the 256-bit xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t NextBelow(std::uint64_t n) {
    // Rejection sampling for an unbiased result.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  int UniformInt(int lo, int hi_inclusive) {
    return lo + static_cast<int>(NextBelow(static_cast<std::uint64_t>(hi_inclusive - lo + 1)));
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Log-uniform in [lo, hi): natural for component values (1pF..1uF etc.).
  double LogUniform(double lo, double hi);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace wavepipe::util

#include <cmath>

namespace wavepipe::util {

inline double Rng::LogUniform(double lo, double hi) {
  return std::exp(Uniform(std::log(lo), std::log(hi)));
}

}  // namespace wavepipe::util
