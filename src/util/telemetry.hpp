// Low-overhead telemetry: scoped span timers with thread-lane ids and a
// named-counter registry every stats block exports into.
//
// Two halves, deliberately different in cost profile:
//
//  * SPANS — hot-path instrumentation.  `WP_TSPAN("factor", "lu_factor")`
//    plants a scoped timer; while no capture is running the constructor is
//    ONE relaxed atomic load and the destructor a predictable branch, so the
//    engine pays nothing measurable (same discipline as WP_FAULT_POINT).
//    During a capture each thread appends completed spans to its own buffer
//    (per-buffer mutex, uncontended on the fast path); StopCapture() merges
//    them into one time-sorted event list.  Threads carry a LANE id — the
//    WavePipe driver assigns lane 0 to the round loop and lane i+1 to
//    context slot i — which is what the Chrome trace_event exporter
//    (wavepipe/trace_export.hpp) renders as one track per pipeline worker.
//    Configuring with -DWAVEPIPE_TELEMETRY=OFF compiles the span macros and
//    the Span/Instant bodies out entirely; the accepted waveforms are
//    bit-identical either way (telemetry never touches numerics — the OFF
//    build only removes the last few nanoseconds of overhead, and the CI
//    telemetry-off job holds it to that claim).
//
//  * COUNTERS — cold-path accounting.  CounterRegistry is an insertion-
//    ordered, uniqueness-enforced map of counter name -> value that
//    NewtonStats / AssemblyStats / SparseLu::Stats / TransientStats /
//    PipelineSchedStats export into (their ExportCounters methods).  It is
//    the ONE source both `wavespice --stats` and the run_stats.json exporter
//    print from, so a counter added to a stats struct appears in both
//    automatically and the two can never drift apart.  Always compiled in:
//    it runs once per run, not per iteration.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wavepipe::util::telemetry {

/// False when the library was configured with -DWAVEPIPE_TELEMETRY=OFF (the
/// span half compiles to no-ops; captures always come back empty).  Tests
/// that assert on captured spans skip themselves when this is false.
#if defined(WAVEPIPE_TELEMETRY_DISABLED)
inline constexpr bool kSpansCompiledIn = false;
#else
inline constexpr bool kSpansCompiledIn = true;
#endif

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

struct Counter {
  std::string name;
  double value = 0.0;
  /// True for event counts (printed/serialized as integers), false for
  /// real-valued metrics (seconds, ratios, modeled speedups).
  bool integral = true;
};

/// Insertion-ordered named-counter map.  Registration enforces uniqueness:
/// a second counter with an already-registered name throws util::Error —
/// two stats blocks silently fighting over one name is exactly the drift
/// this registry exists to prevent.
class CounterRegistry {
 public:
  /// Registers an integral event counter.
  void Count(std::string_view name, std::uint64_t value);
  /// Registers a real-valued metric (seconds, ratio, speedup).
  void Value(std::string_view name, double value);

  const std::vector<Counter>& counters() const { return counters_; }
  std::size_t size() const { return counters_.size(); }
  /// Null when no counter has that name.
  const Counter* Find(std::string_view name) const;
  /// Registration-ordered names (schema-parity tests compare these).
  std::vector<std::string> Names() const;

 private:
  void Add(std::string_view name, double value, bool integral);
  std::vector<Counter> counters_;
};

// ---------------------------------------------------------------------------
// Span capture
// ---------------------------------------------------------------------------

/// One completed span (or instant marker) from a capture.
struct SpanEvent {
  const char* category = "";  ///< phase family: "assembly", "factor", ...
  const char* name = "";      ///< static string; no allocation on record
  double start_us = 0.0;      ///< process-relative monotonic microseconds
  double dur_us = 0.0;        ///< 0 for instants
  std::uint32_t lane = 0;     ///< thread lane at record time
  std::int32_t depth = 0;     ///< nesting depth at open (0 = outermost)
  bool instant = false;       ///< true for Instant() markers
};

struct LaneLabel {
  std::uint32_t lane = 0;
  std::string label;
};

/// Everything StopCapture() hands back: events time-sorted by start, lane
/// labels sorted by lane id (first registration of a lane wins).
struct Capture {
  std::vector<SpanEvent> events;
  std::vector<LaneLabel> lanes;
};

/// True while a capture is running.  Relaxed load; this is the whole cost an
/// inactive span pays.
bool CaptureActive();

/// Begins a capture: clears previously buffered events and opens a new
/// epoch.  Spans already open when the capture starts are NOT recorded
/// (their epoch predates the capture) — a capture only contains spans that
/// both opened and closed inside it, which keeps events well-nested.
void StartCapture();

/// Ends the capture and returns the merged, time-sorted events.  Spans
/// still open are dropped, never truncated.
Capture StopCapture();

/// Names a lane for exporters.  First registration of a lane id wins;
/// re-registering the same id is ignored (the WavePipe driver registers its
/// slot lanes once per run, but tests may run several captures).
void RegisterLane(std::uint32_t lane, std::string label);

/// This thread's current lane id (0 unless a ScopedLane is active).
std::uint32_t CurrentLane();

/// Sets the calling thread's lane for the lifetime of the scope, restoring
/// the previous lane on exit.  The label overload also registers the lane
/// name.  Cheap enough for per-task use (two thread-local stores).
class ScopedLane {
 public:
  explicit ScopedLane(std::uint32_t lane);
  ScopedLane(std::uint32_t lane, std::string label);
  ~ScopedLane();
  ScopedLane(const ScopedLane&) = delete;
  ScopedLane& operator=(const ScopedLane&) = delete;

 private:
  std::uint32_t previous_ = 0;
};

#if !defined(WAVEPIPE_TELEMETRY_DISABLED)

/// Scoped span timer.  Records one SpanEvent on destruction when a capture
/// was active for the span's whole lifetime.  `category` and `name` must be
/// string literals (or otherwise outlive the capture); nothing is copied on
/// the hot path.
class Span {
 public:
  Span(const char* category, const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* category_;
  const char* name_;
  double start_us_ = 0.0;
  std::uint32_t epoch_ = 0;  ///< 0 = capture inactive at open; record nothing
};

/// Records a zero-duration marker event (step rejections, valve trips).
void Instant(const char* category, const char* name);

#else  // WAVEPIPE_TELEMETRY_DISABLED

class Span {
 public:
  Span(const char*, const char*) {}
};

inline void Instant(const char*, const char*) {}

#endif

}  // namespace wavepipe::util::telemetry

// Scoped-span convenience macros — the form production code uses.  They
// vanish entirely under -DWAVEPIPE_TELEMETRY=OFF.
#define WP_TELEMETRY_CONCAT_INNER(a, b) a##b
#define WP_TELEMETRY_CONCAT(a, b) WP_TELEMETRY_CONCAT_INNER(a, b)
#if !defined(WAVEPIPE_TELEMETRY_DISABLED)
#define WP_TSPAN(category, name)                                      \
  ::wavepipe::util::telemetry::Span WP_TELEMETRY_CONCAT(wp_tspan_,    \
                                                        __LINE__) {   \
    category, name                                                    \
  }
#define WP_TINSTANT(category, name) ::wavepipe::util::telemetry::Instant(category, name)
#else
#define WP_TSPAN(category, name) static_cast<void>(0)
#define WP_TINSTANT(category, name) static_cast<void>(0)
#endif
