// Minimal leveled logger.
//
// The simulator is a library first: by default it is silent (kWarn).  Tools
// (examples, benches) raise the level.  Logging is thread-safe; WavePipe
// worker threads log scheduling decisions at kDebug.
#pragma once

#include <sstream>
#include <string>

namespace wavepipe::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one line ("[level] message") to stderr under a lock.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace wavepipe::util

// Level check happens before the stream is built, so disabled logs cost one
// comparison.
#define WP_LOG(level)                                               \
  if (::wavepipe::util::GetLogLevel() > ::wavepipe::util::LogLevel::level) \
    ;                                                               \
  else                                                              \
    ::wavepipe::util::internal::LogLine(::wavepipe::util::LogLevel::level)

#define WP_DEBUG WP_LOG(kDebug)
#define WP_INFO WP_LOG(kInfo)
#define WP_WARN WP_LOG(kWarn)
#define WP_ERROR WP_LOG(kError)
