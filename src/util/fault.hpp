// Deterministic, site-addressed fault injection for failure-path testing.
//
// Production code plants named injection points at the places where real
// numerical or concurrency failures originate:
//
//   if (WP_FAULT_POINT("newton.converge")) { ...pretend Newton diverged... }
//
// Sites are inert by default: WP_FAULT_POINT compiles to one relaxed atomic
// load and a predictable branch when nothing is armed, so the hot paths pay
// nothing measurable.  Tests arm a site with a Schedule — skip the first N
// hits, then fire the next M (optionally with a seeded per-site probability
// stream) — which makes every failure scenario scriptable and reproducible:
// the RNG is a private splitmix64 stream per site, never the global clock or
// std::rand.
//
// Counting is global (one counter per site across all threads).  Under
// concurrency the *which-thread* assignment of the k-th hit is scheduling-
// dependent, so tests written against concurrent engines must assert
// outcome properties (completed XOR structured abort, no hang, stats
// consistency) rather than which worker absorbed the fault.
//
// Injection-site catalogue (kept in DESIGN.md "Robustness" section):
//   newton.converge   SolveNewton reports non-convergence immediately
//   lu.pivot          SparseLu::FactorOrRefactor throws SingularMatrixError
//   device.eval_nan   EvalDevices poisons the RHS with a NaN
//   pool.task_throw   a ThreadPool task throws before running its body
//   chord.degraded    a chord-Newton iterate reports a degraded contraction
//                     rate, forcing a refactorization on the next iteration
//   spec.mispredict   ValidateSpeculativeChain sees the prediction error as
//                     out of tolerance, forcing the discard path (exercises
//                     the adaptive speculation policy's depth degradation)
//   schur.factor      BbdSolver::FactorOrRefactor throws SingularMatrixError
//                     from the Schur-complement factorization
//   ckpt.write        WriteCheckpointSlot fails as if the disk did (throws
//                     CheckpointError before the slot is replaced)
//   ckpt.corrupt      WriteCheckpointSlot flips a payload byte AFTER the CRC
//                     is sealed, producing an on-disk file a resume must reject
//   watchdog.stall    the stall watchdog's next sample reads as no-progress
//                     regardless of the real heartbeats (forces escalation)
//   breaker.trip      the next breaker-board observation trips the breaker of
//                     the feature it is attributed to, bypassing the EWMA
//   reduce.singular   a ReducedSubnet's interior factorization throws
//                     SingularMatrixError (degenerate eliminated subnetwork);
//                     surfaces as a failed Newton solve the rescue ladder owns
#pragma once

#include <cstdint>
#include <string_view>

#include "util/error.hpp"

namespace wavepipe::util::fault {

/// When an armed site injects.  The site's hit counter starts at zero on
/// Arm(); hit indices [skip, skip + fire) are candidates, and each candidate
/// fires with `probability` drawn from a splitmix64 stream seeded by `seed`.
struct Schedule {
  std::uint64_t skip = 0;  ///< hits to let pass before the window opens
  std::uint64_t fire = 1;  ///< candidate injections once the window opens
  double probability = 1.0;  ///< per-candidate chance of actually firing
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;  ///< per-site RNG stream seed
  static constexpr std::uint64_t kUnlimited = ~0ull;  ///< fire forever
};

/// Arms (or re-arms, resetting counters) the named site.
void Arm(std::string_view site, const Schedule& schedule);
/// Disarms one site; its counters are discarded.
void Disarm(std::string_view site);
/// Disarms every site (test teardown).
void DisarmAll();

/// Total times the named site was evaluated while armed.
std::uint64_t Hits(std::string_view site);
/// Times the named site actually injected.
std::uint64_t Fired(std::string_view site);

/// True when at least one site is armed.  Relaxed atomic load — this is the
/// only cost a disabled fault point pays.
bool Enabled();

/// Counts a hit against `site` and reports whether to inject.  Only called
/// when Enabled(); unarmed sites always return false.
bool ShouldFire(std::string_view site);

/// RAII arm/disarm for tests: arms `site` on construction, disarms it on
/// destruction, so a throwing assertion can't leak an armed fault into the
/// next test.
class ScopedFault {
 public:
  explicit ScopedFault(std::string_view site, const Schedule& schedule = {})
      : site_(site) {
    Arm(site_, schedule);
  }
  ~ScopedFault() { Disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  std::uint64_t hits() const { return Hits(site_); }
  std::uint64_t fired() const { return Fired(site_); }

 private:
  std::string_view site_;
};

/// Thrown by injection points that simulate an exception escaping (e.g.
/// pool.task_throw).  Distinct type so tests can tell an injected throw from
/// a genuine engine error.
class FaultInjectedError : public Error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : Error("injected fault: " + site) {}
};

}  // namespace wavepipe::util::fault

/// Evaluates to true when the named site should inject a fault now.
#define WP_FAULT_POINT(site)              \
  (::wavepipe::util::fault::Enabled() &&  \
   ::wavepipe::util::fault::ShouldFire(site))
