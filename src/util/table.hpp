// Console table / CSV writers used by the benchmark harnesses to print the
// paper-style tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wavepipe::util {

/// Accumulates rows of strings and renders an aligned ASCII table, e.g.
///
///   +----------+-------+---------+
///   | circuit  | nodes | speedup |
///   +----------+-------+---------+
///   | mesh32   |  1024 |    1.52 |
///   +----------+-------+---------+
///
/// Numeric-looking cells are right-aligned, text cells left-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `digits` significant digits.
  static std::string Cell(double value, int digits = 4);
  static std::string Cell(int value);
  static std::string Cell(std::size_t value);

  /// Renders the ASCII table.
  std::string ToString() const;
  /// Renders RFC-4180-ish CSV (cells containing comma/quote are quoted).
  std::string ToCsv() const;

  void Print(std::ostream& os) const;
  /// Writes the CSV form to `path`; throws wavepipe::Error on I/O failure.
  void WriteCsv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an ASCII line chart (time on x, one or more named series on y)
/// for "figure" benches, so figures are inspectable without a plotting stack.
/// Each series is a vector of (x, y); series are linearly interpolated onto
/// the common x range.
class AsciiChart {
 public:
  AsciiChart(int width, int height) : width_(width), height_(height) {}

  void AddSeries(std::string name, std::vector<std::pair<double, double>> points);

  std::string ToString() const;

 private:
  int width_;
  int height_;
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>> series_;
};

}  // namespace wavepipe::util
