#include "util/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault.hpp"

namespace wavepipe::util {
namespace {

constexpr std::array<char, 4> kMagic = {'W', 'P', 'C', 'K'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 4;

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string SlotPath(const std::string& path_base, std::uint64_t generation) {
  return path_base + ((generation % 2 == 0) ? ".a" : ".b");
}

/// One slot's validation outcome: a payload, or the reason it was rejected.
struct SlotRead {
  bool valid = false;
  std::uint64_t generation = 0;
  std::vector<std::uint8_t> payload;
  std::string reject_reason;
};

SlotRead ReadSlot(const std::string& path) {
  SlotRead slot;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    slot.reject_reason = path + ": " + std::strerror(errno);
    return slot;
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 65536> chunk;
  std::size_t got;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), file)) > 0) {
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    slot.reject_reason = path + ": read error";
    return slot;
  }
  if (bytes.size() < kHeaderBytes) {
    slot.reject_reason = path + ": truncated header (" + std::to_string(bytes.size()) +
                         " bytes)";
    return slot;
  }
  if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    slot.reject_reason = path + ": bad magic";
    return slot;
  }
  const std::uint32_t version = GetU32(bytes.data() + 4);
  if (version != kCheckpointFormatVersion) {
    slot.reject_reason = path + ": unsupported format version " + std::to_string(version);
    return slot;
  }
  slot.generation = GetU64(bytes.data() + 8);
  const std::uint64_t payload_len = GetU64(bytes.data() + 16);
  const std::uint32_t stored_crc = GetU32(bytes.data() + 24);
  if (bytes.size() - kHeaderBytes != payload_len) {
    slot.reject_reason = path + ": truncated payload (" +
                         std::to_string(bytes.size() - kHeaderBytes) + " of " +
                         std::to_string(payload_len) + " bytes)";
    return slot;
  }
  const std::span<const std::uint8_t> payload(bytes.data() + kHeaderBytes, payload_len);
  const std::uint32_t crc = Crc32(payload);
  if (crc != stored_crc) {
    slot.reject_reason = path + ": CRC mismatch";
    return slot;
  }
  slot.valid = true;
  slot.payload.assign(payload.begin(), payload.end());
  return slot;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::U32(std::uint32_t v) { PutU32(bytes_, v); }
void ByteWriter::U64(std::uint64_t v) { PutU64(bytes_, v); }

void ByteWriter::F64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(const std::string& v) {
  U64(v.size());
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void ByteWriter::DoubleVec(std::span<const double> v) {
  U64(v.size());
  for (const double d : v) F64(d);
}

void ByteReader::Need(std::size_t n) {
  if (bytes_.size() - pos_ < n) {
    throw CheckpointError("checkpoint payload truncated: need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos_) + ", have " +
                          std::to_string(bytes_.size() - pos_));
  }
}

std::uint8_t ByteReader::U8() {
  Need(1);
  return bytes_[pos_++];
}

std::uint32_t ByteReader::U32() {
  Need(4);
  const std::uint32_t v = GetU32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::U64() {
  Need(8);
  const std::uint64_t v = GetU64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

double ByteReader::F64() {
  const std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::Str() {
  const std::uint64_t n = U64();
  Need(n);
  std::string v(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return v;
}

std::vector<double> ByteReader::DoubleVec() {
  const std::uint64_t n = U64();
  Need(n * 8);
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(F64());
  return v;
}

std::size_t WriteCheckpointSlot(const std::string& path_base,
                                std::span<const std::uint8_t> payload,
                                std::uint64_t generation) {
  if (WP_FAULT_POINT("ckpt.write")) {
    throw CheckpointError("injected ckpt.write I/O failure");
  }

  std::vector<std::uint8_t> file_bytes;
  file_bytes.reserve(kHeaderBytes + payload.size());
  file_bytes.insert(file_bytes.end(), kMagic.begin(), kMagic.end());
  PutU32(file_bytes, kCheckpointFormatVersion);
  PutU64(file_bytes, generation);
  PutU64(file_bytes, payload.size());
  PutU32(file_bytes, Crc32(payload));
  file_bytes.insert(file_bytes.end(), payload.begin(), payload.end());

  // After the CRC is sealed: a flipped payload byte yields a well-formed file
  // that MUST be rejected by LoadNewestCheckpoint — the corrupt-file tests'
  // deterministic way to produce on-disk damage.
  if (WP_FAULT_POINT("ckpt.corrupt") && !payload.empty()) {
    file_bytes[kHeaderBytes + payload.size() / 2] ^= 0xFFu;
  }

  const std::string final_path = SlotPath(path_base, generation);
  const std::string tmp_path = path_base + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    throw CheckpointError(tmp_path + ": open failed: " + std::strerror(errno));
  }
  const std::size_t wrote = std::fwrite(file_bytes.data(), 1, file_bytes.size(), file);
  if (wrote != file_bytes.size() || std::fflush(file) != 0 ||
      ::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    std::remove(tmp_path.c_str());
    throw CheckpointError(tmp_path + ": write failed: " + std::strerror(errno));
  }
  std::fclose(file);
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    std::remove(tmp_path.c_str());
    throw CheckpointError(final_path + ": rename failed: " + reason);
  }
  return file_bytes.size();
}

LoadedCheckpoint LoadNewestCheckpoint(const std::string& path_base) {
  SlotRead best;
  std::string reasons;
  for (const std::string& path :
       {path_base + ".a", path_base + ".b", path_base}) {
    SlotRead slot = ReadSlot(path);
    if (slot.valid) {
      if (!best.valid || slot.generation > best.generation) best = std::move(slot);
    } else {
      if (!reasons.empty()) reasons += "; ";
      reasons += slot.reject_reason;
    }
  }
  if (!best.valid) {
    throw CheckpointError("no valid checkpoint at " + path_base + " (" + reasons + ")");
  }
  LoadedCheckpoint loaded;
  loaded.generation = best.generation;
  loaded.payload = std::move(best.payload);
  return loaded;
}

}  // namespace wavepipe::util
