// Wall-clock timer used for solve-cost accounting and benchmark reporting.
#pragma once

#include <chrono>

namespace wavepipe::util {

/// Monotonic wall-clock stopwatch.  Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// The WavePipe ledger records the cost of each nonlinear solve with this
/// clock, NOT wall time: when more tasks run than cores exist (always true
/// on a 1-vCPU container), concurrently scheduled tasks time-share the core
/// and each would see the others' slices in its wall time.  Thread CPU time
/// is exactly the single-thread cost the virtual pipeline replay needs.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}
  void Reset() { start_ = Now(); }
  double Seconds() const { return Now() - start_; }

 private:
  static double Now();
  double start_;
};

}  // namespace wavepipe::util
