#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavepipe::util {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size();
}

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  WP_ASSERT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double value, int digits) { return FormatDouble(value, digits); }
std::string Table::Cell(int value) { return std::to_string(value); }
std::string Table::Cell(std::size_t value) { return std::to_string(value); }

std::string Table::ToString() const {
  const std::size_t cols = header_.size();
  std::vector<std::size_t> width(cols);
  std::vector<bool> numeric(cols, true);
  for (std::size_t c = 0; c < cols; ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
      if (!LooksNumeric(row[c])) numeric[c] = false;
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < cols; ++c) os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells, bool align_numeric) {
    os << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = width[c] - cell.size();
      if (align_numeric && numeric[c]) {
        os << ' ' << std::string(pad, ' ') << cell << ' ';
      } else {
        os << ' ' << cell << std::string(pad, ' ') << ' ';
      }
      os << '|';
    }
    os << '\n';
  };

  rule();
  line(header_, /*align_numeric=*/false);
  rule();
  for (const auto& row : rows_) line(row, /*align_numeric=*/true);
  rule();
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << CsvEscape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print(std::ostream& os) const { os << ToString(); }

void Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open " + path + " for writing");
  out << ToCsv();
  if (!out) throw Error("write failed for " + path);
}

void AsciiChart::AddSeries(std::string name, std::vector<std::pair<double, double>> points) {
  std::sort(points.begin(), points.end());
  series_.emplace_back(std::move(name), std::move(points));
}

std::string AsciiChart::ToString() const {
  if (series_.empty()) return "(empty chart)\n";

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& [name, pts] : series_) {
    for (const auto& [x, y] : pts) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (!(xmax > xmin)) xmax = xmin + 1;
  if (!(ymax > ymin)) ymax = ymin + 1;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  const char* glyphs = "*o+x#@";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const auto& pts = series_[s].second;
    const char glyph = glyphs[s % 6];
    // Sample each column by linear interpolation for a continuous trace.
    for (int col = 0; col < width_; ++col) {
      const double x = xmin + (xmax - xmin) * col / std::max(1, width_ - 1);
      // Find bracketing points.
      double y = std::numeric_limits<double>::quiet_NaN();
      for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
        if (pts[i].first <= x && x <= pts[i + 1].first) {
          const double t = (x - pts[i].first) /
                           std::max(1e-300, pts[i + 1].first - pts[i].first);
          y = pts[i].second + t * (pts[i + 1].second - pts[i].second);
          break;
        }
      }
      if (std::isnan(y)) continue;
      int row = static_cast<int>(std::lround((ymax - y) / (ymax - ymin) * (height_ - 1)));
      row = std::clamp(row, 0, height_ - 1);
      grid[row][col] = glyph;
    }
  }

  std::ostringstream os;
  os << FormatDouble(ymax, 3) << '\n';
  for (const auto& line : grid) os << '|' << line << '\n';
  os << FormatDouble(ymin, 3) << ' ' << std::string(std::max(0, width_ - 16), '-') << ' '
     << "x: [" << FormatDouble(xmin, 3) << ", " << FormatDouble(xmax, 3) << "]\n";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    os << "  '" << glyphs[s % 6] << "' = " << series_[s].first << '\n';
  }
  return os.str();
}

}  // namespace wavepipe::util
