#include "sparse/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>

#include "sparse/csc.hpp"
#include "util/error.hpp"

namespace wavepipe::sparse {
namespace {

// Adjacency lists (no self loops) of the undirected graph of A + A^T.
std::vector<std::vector<int>> BuildAdjacency(const CscMatrix& matrix) {
  const CscMatrix sym = matrix.SymmetrizedPattern();
  const int n = sym.cols();
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    for (int k = sym.col_begin(c); k < sym.col_end(c); ++k) {
      const int r = sym.row_of(k);
      if (r != c) adj[c].push_back(r);
    }
  }
  return adj;
}

}  // namespace

std::vector<int> NaturalOrder(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

bool IsPermutation(const std::vector<int>& order, int n) {
  if (static_cast<int>(order.size()) != n) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int v : order) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

std::vector<int> MinimumDegreeOrder(const CscMatrix& matrix) {
  WP_ASSERT(matrix.rows() == matrix.cols());
  const int n = matrix.cols();
  // Sets give O(log d) updates during elimination; for the sizes we target
  // (<= ~1e5 nodes, low average degree) this is far from the bottleneck.
  std::vector<std::set<int>> adj(static_cast<std::size_t>(n));
  {
    auto lists = BuildAdjacency(matrix);
    for (int v = 0; v < n; ++v) adj[v].insert(lists[v].begin(), lists[v].end());
  }

  // Bucketed degree lists with lazy deletion.
  using Entry = std::pair<int, int>;  // (degree, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<int> degree(static_cast<std::size_t>(n));
  std::vector<bool> eliminated(static_cast<std::size_t>(n), false);
  for (int v = 0; v < n; ++v) {
    degree[v] = static_cast<int>(adj[v].size());
    heap.emplace(degree[v], v);
  }

  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!heap.empty()) {
    const auto [deg, v] = heap.top();
    heap.pop();
    if (eliminated[v] || deg != degree[v]) continue;  // stale heap entry
    eliminated[v] = true;
    order.push_back(v);

    // Eliminate v: clique its neighbourhood (this models LU fill).
    std::vector<int> nbrs(adj[v].begin(), adj[v].end());
    for (int u : nbrs) {
      adj[u].erase(v);
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int u = nbrs[i];
      if (eliminated[u]) continue;
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const int w = nbrs[j];
        if (eliminated[w]) continue;
        if (adj[u].insert(w).second) adj[w].insert(u);
      }
    }
    for (int u : nbrs) {
      if (eliminated[u]) continue;
      const int d = static_cast<int>(adj[u].size());
      if (d != degree[u]) {
        degree[u] = d;
        heap.emplace(d, u);
      }
    }
    adj[v].clear();
  }
  WP_ASSERT(IsPermutation(order, n));
  return order;
}

std::vector<int> ReverseCuthillMcKeeOrder(const CscMatrix& matrix) {
  WP_ASSERT(matrix.rows() == matrix.cols());
  const int n = matrix.cols();
  auto adj = BuildAdjacency(matrix);
  for (auto& list : adj) std::sort(list.begin(), list.end());

  std::vector<int> degree(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) degree[v] = static_cast<int>(adj[v].size());

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));

  for (;;) {
    // Pick the unvisited vertex of minimum degree as the next BFS root.
    int root = -1;
    for (int v = 0; v < n; ++v) {
      if (!visited[v] && (root < 0 || degree[v] < degree[root])) root = v;
    }
    if (root < 0) break;

    std::queue<int> queue;
    queue.push(root);
    visited[root] = true;
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop();
      order.push_back(v);
      std::vector<int> next;
      for (int u : adj[v]) {
        if (!visited[u]) {
          visited[u] = true;
          next.push_back(u);
        }
      }
      std::sort(next.begin(), next.end(),
                [&](int a, int b) { return degree[a] < degree[b]; });
      for (int u : next) queue.push(u);
    }
  }
  std::reverse(order.begin(), order.end());
  WP_ASSERT(IsPermutation(order, n));
  return order;
}

}  // namespace wavepipe::sparse
