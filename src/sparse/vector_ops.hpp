// Dense vector kernels shared by the Newton loop and the integrators.
#pragma once

#include <span>
#include <vector>

namespace wavepipe::sparse {

class CscMatrix;

double Dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void Scale(double alpha, std::span<double> x);

double NormInf(std::span<const double> x);
double Norm2(std::span<const double> x);

/// max_i |x_i - y_i|.
double MaxAbsDiff(std::span<const double> x, std::span<const double> y);

/// r = b - A*x (r may alias b).
void Residual(const CscMatrix& a, std::span<const double> x, std::span<const double> b,
              std::span<double> r);

/// Weighted RMS norm: sqrt(mean((x_i / w_i)^2)).  The SPICE/DASSL-style
/// error norm; weights are reltol*|ref_i| + abstol_i.
double WrmsNorm(std::span<const double> x, std::span<const double> weights);

/// weights_i = reltol * |ref_i| + abstol_i.
void BuildErrorWeights(std::span<const double> ref, double reltol,
                       std::span<const double> abstol, std::span<double> weights);

}  // namespace wavepipe::sparse
