#include "sparse/csc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sparse/triplet.hpp"
#include "util/error.hpp"

namespace wavepipe::sparse {

CscMatrix::CscMatrix(int rows, int cols, std::vector<int> col_ptr, std::vector<int> row_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  WP_ASSERT(col_ptr_.size() == static_cast<std::size_t>(cols_) + 1);
  WP_ASSERT(row_idx_.size() == values_.size());
  WP_ASSERT(col_ptr_.front() == 0);
  WP_ASSERT(col_ptr_.back() == static_cast<int>(row_idx_.size()));
}

CscMatrix CscMatrix::Identity(int n) {
  std::vector<int> col_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<int> row_idx(static_cast<std::size_t>(n));
  std::vector<double> values(static_cast<std::size_t>(n), 1.0);
  for (int i = 0; i <= n; ++i) col_ptr[i] = i;
  for (int i = 0; i < n; ++i) row_idx[i] = i;
  return CscMatrix(n, n, std::move(col_ptr), std::move(row_idx), std::move(values));
}

int CscMatrix::FindEntry(int row, int col) const {
  WP_ASSERT(col >= 0 && col < cols_);
  const auto begin = row_idx_.begin() + col_ptr_[col];
  const auto end = row_idx_.begin() + col_ptr_[col + 1];
  const auto it = std::lower_bound(begin, end, row);
  if (it == end || *it != row) return -1;
  return static_cast<int>(it - row_idx_.begin());
}

void CscMatrix::ZeroValues() { std::fill(values_.begin(), values_.end(), 0.0); }

void CscMatrix::Multiply(std::span<const double> x, std::span<double> y) const {
  WP_ASSERT(static_cast<int>(x.size()) == cols_);
  WP_ASSERT(static_cast<int>(y.size()) == rows_);
  std::fill(y.begin(), y.end(), 0.0);
  MultiplyAccumulate(x, y);
}

void CscMatrix::MultiplyAccumulate(std::span<const double> x, std::span<double> y,
                                   double alpha) const {
  for (int c = 0; c < cols_; ++c) {
    const double xc = alpha * x[c];
    if (xc == 0.0) continue;
    for (int k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      y[row_idx_[k]] += values_[k] * xc;
    }
  }
}

void CscMatrix::MultiplyTranspose(std::span<const double> x, std::span<double> y) const {
  WP_ASSERT(static_cast<int>(x.size()) == rows_);
  WP_ASSERT(static_cast<int>(y.size()) == cols_);
  for (int c = 0; c < cols_; ++c) {
    double sum = 0.0;
    for (int k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      sum += values_[k] * x[row_idx_[k]];
    }
    y[c] = sum;
  }
}

CscMatrix CscMatrix::Transpose() const {
  TripletBuilder builder(cols_, rows_);
  for (int c = 0; c < cols_; ++c) {
    for (int k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      builder.Add(c, row_idx_[k], values_[k]);
    }
  }
  return builder.ToCsc();
}

CscMatrix CscMatrix::SymmetrizedPattern() const {
  WP_ASSERT(rows_ == cols_);
  TripletBuilder builder(rows_, cols_);
  for (int c = 0; c < cols_; ++c) {
    for (int k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      builder.Add(row_idx_[k], c, values_[k]);
      builder.Add(c, row_idx_[k], values_[k]);
    }
  }
  return builder.ToCsc();
}

double CscMatrix::ColumnMaxAbs(int col) const {
  double best = 0.0;
  for (int k = col_ptr_[col]; k < col_ptr_[col + 1]; ++k) {
    best = std::max(best, std::abs(values_[k]));
  }
  return best;
}

bool CscMatrix::SamePattern(const CscMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && col_ptr_ == other.col_ptr_ &&
         row_idx_ == other.row_idx_;
}

std::string CscMatrix::ToDenseString() const {
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const int k = FindEntry(r, c);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%10.4g", k < 0 ? 0.0 : values_[k]);
      os << buf << ' ';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wavepipe::sparse
