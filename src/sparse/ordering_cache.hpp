// Shared fill-reducing-ordering cache.
//
// Computing a minimum-degree (or RCM) ordering costs far more than a numeric
// refactorization, and the same sparsity pattern recurs constantly: every
// FactorOrRefactor pivot-failure fallback re-factors the identical pattern,
// every WavePipe context factors the same circuit matrix, and a domain-
// decomposed solve factors many pieces whose patterns often coincide (equal
// mesh stripes).  SparseLu has always kept a private single-slot cache; this
// promotes it to a shared, explicitly keyed artifact several SparseLu
// instances (and, later, batch variants) reuse concurrently.
//
// Keying: (n, nnz, FNV-1a pattern hash, ordering kind).  A hash collision
// merely reuses a permutation computed for a different pattern, which costs
// fill quality, never correctness — the factorization pivots within whatever
// column order it is given (same contract as SparseLu's private cache).
//
// Thread safety: Find/Insert are mutex-protected; the cached orderings are
// immutable shared_ptrs, so readers hold them with no lock.  Insert is
// first-wins: concurrent factors of one pattern agree on a single ordering,
// keeping results deterministic regardless of thread interleaving (both
// candidates are identical anyway — the ordering algorithms are pure).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace wavepipe::sparse {

class CscMatrix;

/// FNV-1a over the pattern arrays — cheap O(nnz) fingerprint used by the
/// ordering cache key (and by SparseLu's private fallback cache).
std::uint64_t PatternHash(const CscMatrix& matrix);

class OrderingCache {
 public:
  struct Key {
    int n = 0;
    std::size_t nnz = 0;
    std::uint64_t pattern_hash = 0;
    int ordering_kind = 0;  ///< SparseLu::Options::Ordering, widened
    bool operator==(const Key&) const = default;
  };

  using OrderingPtr = std::shared_ptr<const std::vector<int>>;

  /// Cached ordering for `key`, or null.  Counts a hit/miss.
  OrderingPtr Find(const Key& key);

  /// Publishes `order` for `key` and returns the cache's copy.  First insert
  /// wins: if another thread published the key meanwhile, the already-cached
  /// ordering is returned and `order` is dropped.
  OrderingPtr Insert(const Key& key, std::vector<int> order);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<Key, OrderingPtr>> entries_;  // few patterns: linear scan
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace wavepipe::sparse
