// Level sets over a DAG, for barrier-style parallel execution.
//
// A level schedule partitions the nodes of a dependency DAG into "levels":
// level(v) = 1 + max level over v's dependencies (0 when none).  All nodes in
// one level are mutually independent, so a level can execute on any number of
// threads; the whole DAG then runs as num_levels() sequential parallel
// phases.  This is the classical scheme for parallel sparse triangular solves
// and numeric refactorization (the column-dependency DAG of the LU factors —
// see sparse/lu.hpp), where the DAG is fixed at Factor() time and replayed
// every Newton iteration.
//
// The schedule is deterministic: nodes within a level are kept in ascending
// id order, so chunk partitions — and therefore results, since level-parallel
// kernels write disjoint outputs — never depend on thread count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wavepipe::sparse {

class LevelSchedule {
 public:
  LevelSchedule() = default;

  int num_levels() const { return static_cast<int>(level_ptr_.size()) - 1; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::span<const int> Level(int level) const {
    return std::span<const int>(nodes_).subspan(
        static_cast<std::size_t>(level_ptr_[level]),
        static_cast<std::size_t>(level_ptr_[level + 1] - level_ptr_[level]));
  }
  /// Size of the largest level — the parallelism available in the widest phase.
  std::size_t widest_level() const;
  /// All nodes, grouped by level, ascending id inside each level.
  std::span<const int> nodes() const { return nodes_; }

 private:
  friend LevelSchedule BuildLevelSchedule(std::span<const int> level_of);
  std::vector<int> level_ptr_;  // size num_levels + 1
  std::vector<int> nodes_;      // nodes bucketed by level
};

/// Buckets nodes by a precomputed level assignment (level_of[v] >= 0 for
/// every v).  Counting sort: O(nodes + levels), stable, so node ids ascend
/// within each level.
LevelSchedule BuildLevelSchedule(std::span<const int> level_of);

/// Deterministic makespan model of one barrier-per-level execution at
/// `threads` workers, in the units of `node_cost`:
///
///   per level:  max(level_cost / threads, heaviest node) + barrier_cost
///
/// The max() captures that a level cannot finish before its most expensive
/// node; barrier_cost is the fork/join overhead per level (charged only when
/// threads > 1, so the 1-thread model equals the serial cost exactly).  This
/// is the fallback gate for thin-level DAGs: deep elimination trees on analog
/// meshes model slower than serial and keep the serial kernel.
double ModelLevelMakespan(const LevelSchedule& schedule, std::span<const double> node_cost,
                          int threads, double barrier_cost);

}  // namespace wavepipe::sparse
