// Coordinate-format (COO) builder for sparse matrices.
//
// MNA assembly naturally produces duplicate coordinates (every device stamps
// its own conductance into shared nodes); ToCsc() sums duplicates, which is
// exactly the MNA superposition rule.
#pragma once

#include <cstdint>
#include <vector>

namespace wavepipe::sparse {

class CscMatrix;

class TripletBuilder {
 public:
  TripletBuilder(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t num_entries() const { return row_.size(); }

  /// Adds value at (row, col); duplicates are summed by ToCsc().
  void Add(int row, int col, double value);

  /// Structural insertion (value 0) — used to reserve a slot in the pattern.
  void AddPattern(int row, int col) { Add(row, col, 0.0); }

  /// Compresses to CSC, summing duplicates and sorting row indices per column.
  CscMatrix ToCsc() const;

  void Clear();

 private:
  int rows_;
  int cols_;
  std::vector<int> row_;
  std::vector<int> col_;
  std::vector<double> value_;
};

}  // namespace wavepipe::sparse
