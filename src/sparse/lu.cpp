#include "sparse/lu.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <numeric>

#include "sparse/ordering.hpp"
#include "sparse/vector_ops.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace wavepipe::sparse {

void SparseLu::Stats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("sparse_lu.nnz_l", nnz_l);
  registry.Count("sparse_lu.nnz_u", nnz_u);
  registry.Count("sparse_lu.factor_count", factor_count);
  registry.Count("sparse_lu.refactor_count", refactor_count);
  registry.Count("sparse_lu.solve_count", solve_count);
  registry.Count("sparse_lu.factor_flops", factor_flops);
  registry.Count("sparse_lu.solve_flops", solve_flops);
  registry.Count("sparse_lu.factor_levels", static_cast<std::uint64_t>(factor_levels));
  registry.Count("sparse_lu.factor_widest_level", factor_widest_level);
  registry.Count("sparse_lu.solve_fwd_levels", static_cast<std::uint64_t>(solve_fwd_levels));
  registry.Count("sparse_lu.solve_bwd_levels", static_cast<std::uint64_t>(solve_bwd_levels));
  registry.Value("sparse_lu.modeled_refactor_speedup2", modeled_refactor_speedup2);
  registry.Value("sparse_lu.modeled_refactor_speedup4", modeled_refactor_speedup4);
  registry.Count("sparse_lu.parallel_refactor_count", parallel_refactor_count);
  registry.Count("sparse_lu.refactor_fallback_count", refactor_fallback_count);
  registry.Count("sparse_lu.parallel_solve_count", parallel_solve_count);
  registry.Count("sparse_lu.ordering_reuse_count", ordering_reuse_count);
  registry.Count("sparse_lu.chord_step_count", chord_step_count);
}
namespace {

/// Below this many columns a level chunk is processed inline by the calling
/// thread: a fork/join submission costs more than a handful of sparse
/// column updates.  Affects speed only, never results.
constexpr std::size_t kMinColsPerChunk = 8;

}  // namespace

SparseLu::SparseLu(Options options) : options_(options) {}

void SparseLu::Reset(const Options& options) {
  options_ = options;
  factored_ = false;
  n_ = 0;
  pattern_nnz_ = 0;
  ordering_cached_ = false;
  stats_ = Stats{};
  solve_count_.store(0, std::memory_order_relaxed);
  solve_flops_.store(0, std::memory_order_relaxed);
  parallel_solve_count_.store(0, std::memory_order_relaxed);
  chord_step_count_.store(0, std::memory_order_relaxed);
}

void SparseLu::ComputeOrdering(const CscMatrix& matrix) {
  const std::uint64_t hash = PatternHash(matrix);
  if (ordering_cached_ && ordering_n_ == matrix.cols() &&
      ordering_nnz_ == matrix.num_nonzeros() && ordering_pattern_hash_ == hash &&
      ordering_kind_ == options_.ordering) {
    ++stats_.ordering_reuse_count;
    return;
  }
  // Shared cache: other instances may already have ordered this pattern
  // (WavePipe contexts on one circuit, equal BBD piece stripes).
  const OrderingCache::Key key{matrix.cols(), matrix.num_nonzeros(), hash,
                               static_cast<int>(options_.ordering)};
  if (ordering_cache_ != nullptr) {
    if (OrderingCache::OrderingPtr cached = ordering_cache_->Find(key)) {
      q_ = *cached;
      ++stats_.ordering_reuse_count;
      ordering_cached_ = true;
      ordering_n_ = matrix.cols();
      ordering_nnz_ = matrix.num_nonzeros();
      ordering_pattern_hash_ = hash;
      ordering_kind_ = options_.ordering;
      return;
    }
  }
  switch (options_.ordering) {
    case Options::Ordering::kMinimumDegree:
      q_ = MinimumDegreeOrder(matrix);
      break;
    case Options::Ordering::kNatural:
      q_ = NaturalOrder(matrix.cols());
      break;
    case Options::Ordering::kRcm:
      q_ = ReverseCuthillMcKeeOrder(matrix);
      break;
  }
  if (ordering_cache_ != nullptr) {
    // First insert wins; adopt whatever the cache settled on so concurrent
    // factors of one pattern stay deterministic.
    q_ = *ordering_cache_->Insert(key, q_);
  }
  ordering_cached_ = true;
  ordering_n_ = matrix.cols();
  ordering_nnz_ = matrix.num_nonzeros();
  ordering_pattern_hash_ = hash;
  ordering_kind_ = options_.ordering;
}

void SparseLu::SymbolicReach(const CscMatrix& matrix, int col, int stamp) {
  // Iterative DFS over the graph "node i -> rows of L column pinv_[i]".
  // Nodes are ORIGINAL row indices (L row ids are original during Factor()).
  postorder_.clear();
  for (int k = matrix.col_begin(col); k < matrix.col_end(col); ++k) {
    const int start = matrix.row_of(k);
    if (mark_[start] == stamp) continue;

    dfs_stack_.clear();
    dfs_stack_.push_back(start);
    // dfs_child_[depth] = next child index to explore at that stack depth.
    dfs_child_.resize(1);
    dfs_child_[0] = (pinv_[start] >= 0) ? lp_[pinv_[start]] : -1;
    mark_[start] = stamp;

    while (!dfs_stack_.empty()) {
      const std::size_t depth = dfs_stack_.size() - 1;
      const int node = dfs_stack_.back();
      const int lcol = pinv_[node];
      bool descended = false;
      if (lcol >= 0) {
        int& child_it = dfs_child_[depth];
        const int child_end = lp_[lcol + 1];
        while (child_it < child_end) {
          const int child = li_[child_it++];
          if (mark_[child] != stamp) {
            mark_[child] = stamp;
            dfs_stack_.push_back(child);
            dfs_child_.resize(dfs_stack_.size());
            dfs_child_.back() = (pinv_[child] >= 0) ? lp_[pinv_[child]] : -1;
            descended = true;
            break;
          }
        }
      }
      if (!descended) {
        postorder_.push_back(node);  // finished
        dfs_stack_.pop_back();
        dfs_child_.resize(dfs_stack_.size());
      }
    }
  }
}

void SparseLu::Factor(const CscMatrix& matrix) {
  WP_ASSERT(matrix.rows() == matrix.cols());
  n_ = matrix.cols();
  pattern_nnz_ = matrix.num_nonzeros();
  factored_ = false;

  ComputeOrdering(matrix);

  pinv_.assign(static_cast<std::size_t>(n_), -1);
  prow_.assign(static_cast<std::size_t>(n_), -1);
  lp_.assign(static_cast<std::size_t>(n_) + 1, 0);
  up_.assign(static_cast<std::size_t>(n_) + 1, 0);
  li_.clear();
  lx_.clear();
  ui_.clear();
  ux_.clear();
  udiag_.assign(static_cast<std::size_t>(n_), 0.0);
  work_.assign(static_cast<std::size_t>(n_), 0.0);
  mark_.assign(static_cast<std::size_t>(n_), -1);

  std::uint64_t flops = 0;
  std::vector<std::pair<int, double>> ucol;  // (permuted row, value) staging

  for (int j = 0; j < n_; ++j) {
    const int col = q_[j];

    // --- Symbolic: reach of A(:,col) over current L ------------------------
    SymbolicReach(matrix, col, /*stamp=*/j);

    // --- Numeric: sparse triangular solve x = L \ A(:,col) -----------------
    // Invariant: work_ is zero outside the current reach.
    for (int k = matrix.col_begin(col); k < matrix.col_end(col); ++k) {
      work_[matrix.row_of(k)] = matrix.value_of(k);
    }
    // Reverse finishing order = topological order (dependencies first).
    for (auto it = postorder_.rbegin(); it != postorder_.rend(); ++it) {
      const int node = *it;
      const int lcol = pinv_[node];
      if (lcol < 0) continue;  // not yet pivotal: no outgoing updates
      const double xj = work_[node];
      if (xj == 0.0) continue;
      for (int k = lp_[lcol]; k < lp_[lcol + 1]; ++k) {
        work_[li_[k]] -= lx_[k] * xj;
        ++flops;
      }
    }

    // --- Partition reach into U entries and pivot candidates ---------------
    ucol.clear();
    int pivot_row = -1;
    double pivot_abs = 0.0;
    for (int node : postorder_) {
      if (pinv_[node] >= 0) {
        ucol.emplace_back(pinv_[node], work_[node]);
      } else {
        const double mag = std::abs(work_[node]);
        if (mag > pivot_abs) {
          pivot_abs = mag;
          pivot_row = node;
        }
      }
    }
    // Diagonal preference: keep A(col,col) as pivot when close enough to the
    // column max.  (mark_[col] == j tests membership in the reach.)
    if (mark_[col] == j && pinv_[col] < 0 &&
        std::abs(work_[col]) >= options_.diag_preference * pivot_abs) {
      pivot_row = col;
    }
    if (pivot_row < 0 || std::abs(work_[pivot_row]) <= options_.singular_tol) {
      // Clean up workspace before throwing so the object stays reusable.
      for (int node : postorder_) work_[node] = 0.0;
      throw SingularMatrixError(
          "sparse LU: singular at elimination step " + std::to_string(j) +
              " (original column " + std::to_string(col) + ")",
          col);
    }
    const double pivot = work_[pivot_row];
    pinv_[pivot_row] = j;
    prow_[j] = pivot_row;
    udiag_[j] = pivot;

    // --- Emit U column j (sorted by permuted row for Refactor()) -----------
    std::sort(ucol.begin(), ucol.end());
    for (const auto& [row, value] : ucol) {
      ui_.push_back(row);
      ux_.push_back(value);
    }
    up_[j + 1] = static_cast<int>(ui_.size());

    // --- Emit L column j (original row ids for now, remapped after) --------
    for (int node : postorder_) {
      if (pinv_[node] < 0) {  // remaining candidates go below the pivot
        li_.push_back(node);
        lx_.push_back(work_[node] / pivot);
        ++flops;
      }
      work_[node] = 0.0;  // restore invariant
    }
    lp_[j + 1] = static_cast<int>(li_.size());
  }

  // Remap L row indices into permuted space (every row is pivotal now).
  for (int& row : li_) row = pinv_[row];

  BuildSchedules();

  stats_.nnz_l = li_.size();
  stats_.nnz_u = ui_.size() + static_cast<std::size_t>(n_);
  stats_.factor_count += 1;
  stats_.factor_flops += flops;
  stats_.factor_levels = factor_levels_.num_levels();
  stats_.factor_widest_level = factor_levels_.widest_level();
  stats_.solve_fwd_levels = fwd_levels_.num_levels();
  stats_.solve_bwd_levels = bwd_levels_.num_levels();
  stats_.modeled_refactor_speedup2 =
      serial_refactor_flops_ > 0.0
          ? serial_refactor_flops_ / ModelRefactorMakespanFlops(2)
          : 1.0;
  stats_.modeled_refactor_speedup4 =
      serial_refactor_flops_ > 0.0
          ? serial_refactor_flops_ / ModelRefactorMakespanFlops(4)
          : 1.0;
  factored_ = true;
}

void SparseLu::BuildSchedules() {
  const std::size_t n = static_cast<std::size_t>(n_);

  // Row-major mirror of L, columns ascending per row (counting sort over
  // ascending columns keeps them sorted).
  lrow_ptr_.assign(n + 1, 0);
  for (int row : li_) ++lrow_ptr_[static_cast<std::size_t>(row) + 1];
  for (std::size_t i = 0; i < n; ++i) lrow_ptr_[i + 1] += lrow_ptr_[i];
  lrow_col_.resize(li_.size());
  lrow_val_.resize(li_.size());
  {
    std::vector<int> cursor(lrow_ptr_.begin(), lrow_ptr_.end() - 1);
    for (int j = 0; j < n_; ++j) {
      for (int k = lp_[j]; k < lp_[j + 1]; ++k) {
        const int pos = cursor[static_cast<std::size_t>(li_[k])]++;
        lrow_col_[static_cast<std::size_t>(pos)] = j;
        lrow_val_[static_cast<std::size_t>(pos)] = k;
      }
    }
  }

  // Row-major mirror of U with columns DESCENDING per row: backward
  // substitution applies columns n-1..0, so the gather must replay that
  // order for bit-identity.
  urow_ptr_.assign(n + 1, 0);
  for (int row : ui_) ++urow_ptr_[static_cast<std::size_t>(row) + 1];
  for (std::size_t i = 0; i < n; ++i) urow_ptr_[i + 1] += urow_ptr_[i];
  urow_col_.resize(ui_.size());
  urow_val_.resize(ui_.size());
  {
    std::vector<int> cursor(urow_ptr_.begin(), urow_ptr_.end() - 1);
    for (int j = n_ - 1; j >= 0; --j) {
      for (int k = up_[j]; k < up_[j + 1]; ++k) {
        const int pos = cursor[static_cast<std::size_t>(ui_[k])]++;
        urow_col_[static_cast<std::size_t>(pos)] = j;
        urow_val_[static_cast<std::size_t>(pos)] = k;
      }
    }
  }

  // Level assignments.  Refactor DAG: column j reads L's column r for every
  // U(r,j) != 0, so level(j) = 1 + max over those r (all r < j: ascending
  // sweep finalizes dependencies first).
  std::vector<int> level(n, 0);
  for (int j = 0; j < n_; ++j) {
    int lv = 0;
    for (int k = up_[j]; k < up_[j + 1]; ++k) {
      lv = std::max(lv, level[static_cast<std::size_t>(ui_[k])] + 1);
    }
    level[static_cast<std::size_t>(j)] = lv;
  }
  factor_levels_ = BuildLevelSchedule(level);

  // Forward substitution: z[i] is final once every column r with L(i,r) != 0
  // has been applied — propagate levels down each L column.
  std::fill(level.begin(), level.end(), 0);
  for (int j = 0; j < n_; ++j) {
    const int lj = level[static_cast<std::size_t>(j)];
    for (int k = lp_[j]; k < lp_[j + 1]; ++k) {
      int& li_level = level[static_cast<std::size_t>(li_[k])];
      li_level = std::max(li_level, lj + 1);
    }
  }
  fwd_levels_ = BuildLevelSchedule(level);

  // Backward substitution: z[r] needs every column j > r with U(r,j) != 0
  // already divided — propagate levels up each U column, descending.
  std::fill(level.begin(), level.end(), 0);
  for (int j = n_ - 1; j >= 0; --j) {
    const int lj = level[static_cast<std::size_t>(j)];
    for (int k = up_[j]; k < up_[j + 1]; ++k) {
      int& r_level = level[static_cast<std::size_t>(ui_[k])];
      r_level = std::max(r_level, lj + 1);
    }
  }
  bwd_levels_ = BuildLevelSchedule(level);

  // Per-column refactor flop model: one multiply-add per L entry of every
  // dependency column, plus the pivot scaling of this column's L entries.
  col_flops_.assign(n, 0.0);
  serial_refactor_flops_ = 0.0;
  for (int j = 0; j < n_; ++j) {
    double flops = 0.0;
    for (int k = up_[j]; k < up_[j + 1]; ++k) {
      const int r = ui_[k];
      flops += static_cast<double>(lp_[r + 1] - lp_[r]);
    }
    flops += static_cast<double>(lp_[j + 1] - lp_[j]);
    col_flops_[static_cast<std::size_t>(j)] = flops;
    serial_refactor_flops_ += flops;
  }

  // Triangular-solve node costs: entries gathered per node (+1 for the
  // load/store or diagonal division).
  fwd_node_cost_.assign(n, 0.0);
  bwd_node_cost_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    fwd_node_cost_[i] = static_cast<double>(lrow_ptr_[i + 1] - lrow_ptr_[i]) + 1.0;
    bwd_node_cost_[i] = static_cast<double>(urow_ptr_[i + 1] - urow_ptr_[i]) + 1.0;
  }
}

double SparseLu::ModelRefactorMakespanFlops(int threads) const {
  return ModelLevelMakespan(factor_levels_, col_flops_, threads,
                            options_.level_barrier_flops);
}

bool SparseLu::LevelScheduleProfitable(int threads) const {
  if (threads < 2) return false;
  if (options_.force_level_schedule) return true;
  return serial_refactor_flops_ >
         options_.level_min_speedup * ModelRefactorMakespanFlops(threads);
}

bool SparseLu::RefactorColumn(const CscMatrix& matrix, int j, double* work,
                              std::uint64_t& flops) {
  const int col = q_[j];

  // Zero the factor pattern of this column, then scatter A's column into
  // permuted positions.  The factor pattern is a superset of A's pattern
  // (fill-in), so zero-first makes all fill positions well defined.
  for (int k = up_[j]; k < up_[j + 1]; ++k) work[ui_[k]] = 0.0;
  for (int k = lp_[j]; k < lp_[j + 1]; ++k) work[li_[k]] = 0.0;
  work[j] = 0.0;
  for (int k = matrix.col_begin(col); k < matrix.col_end(col); ++k) {
    work[pinv_[matrix.row_of(k)]] = matrix.value_of(k);
  }

  // Left-looking update: U rows ascending guarantees each x[r] is final
  // before its L column is applied.
  for (int k = up_[j]; k < up_[j + 1]; ++k) {
    const int r = ui_[k];
    const double xr = work[r];
    ux_[k] = xr;
    if (xr == 0.0) continue;
    for (int m = lp_[r]; m < lp_[r + 1]; ++m) {
      work[li_[m]] -= lx_[m] * xr;
      ++flops;
    }
  }

  // Pivot quality check against the column's magnitude.
  const double pivot = work[j];
  double col_max = std::abs(pivot);
  for (int k = lp_[j]; k < lp_[j + 1]; ++k) {
    col_max = std::max(col_max, std::abs(work[li_[k]]));
  }
  if (std::abs(pivot) <= options_.singular_tol ||
      std::abs(pivot) < options_.refactor_pivot_tol * col_max) {
    // Clean up the workspace; the caller invalidates the factors.
    for (int k = up_[j]; k < up_[j + 1]; ++k) work[ui_[k]] = 0.0;
    for (int k = lp_[j]; k < lp_[j + 1]; ++k) work[li_[k]] = 0.0;
    work[j] = 0.0;
    return false;
  }
  udiag_[j] = pivot;
  for (int k = lp_[j]; k < lp_[j + 1]; ++k) {
    lx_[k] = work[li_[k]] / pivot;
    work[li_[k]] = 0.0;
    ++flops;
  }
  for (int k = up_[j]; k < up_[j + 1]; ++k) work[ui_[k]] = 0.0;
  work[j] = 0.0;
  return true;
}

bool SparseLu::Refactor(const CscMatrix& matrix) {
  WP_ASSERT(factored_);
  WP_ASSERT(matrix.rows() == n_ && matrix.cols() == n_);
  WP_ASSERT(matrix.num_nonzeros() == pattern_nnz_);

  std::uint64_t flops = 0;
  for (int j = 0; j < n_; ++j) {
    if (!RefactorColumn(matrix, j, work_.data(), flops)) {
      factored_ = false;
      return false;
    }
  }

  stats_.refactor_count += 1;
  stats_.factor_flops += flops;
  return true;
}

bool SparseLu::RefactorParallel(const CscMatrix& matrix, util::ThreadPool* pool) {
  const int threads = pool ? static_cast<int>(pool->size()) : 1;
  if (threads < 2 || !LevelScheduleProfitable(threads)) {
    if (threads >= 2) ++stats_.refactor_fallback_count;
    return Refactor(matrix);
  }
  WP_ASSERT(factored_);
  WP_ASSERT(matrix.rows() == n_ && matrix.cols() == n_);
  WP_ASSERT(matrix.num_nonzeros() == pattern_nnz_);

  if (parallel_work_.size() < static_cast<std::size_t>(threads)) {
    parallel_work_.resize(static_cast<std::size_t>(threads));
  }
  for (int c = 0; c < threads; ++c) {
    parallel_work_[static_cast<std::size_t>(c)].resize(static_cast<std::size_t>(n_));
  }

  std::atomic<bool> abort{false};
  std::uint64_t flops = 0;
  std::vector<std::future<std::uint64_t>> futures;

  for (int l = 0; l < factor_levels_.num_levels() && !abort.load(std::memory_order_relaxed);
       ++l) {
    const std::span<const int> nodes = factor_levels_.Level(l);
    const std::size_t chunk_count = std::clamp<std::size_t>(
        nodes.size() / kMinColsPerChunk, 1, static_cast<std::size_t>(threads));
    auto run_chunk = [&](std::span<const int> part, double* work) -> std::uint64_t {
      std::uint64_t local_flops = 0;
      for (int j : part) {
        if (abort.load(std::memory_order_relaxed)) break;
        if (!RefactorColumn(matrix, j, work, local_flops)) {
          abort.store(true, std::memory_order_relaxed);
          break;
        }
      }
      return local_flops;
    };

    if (chunk_count <= 1) {
      flops += run_chunk(nodes, parallel_work_[0].data());
      continue;
    }
    // Deterministic contiguous partition; columns within a level are
    // independent and write disjoint factor slots, so any partition yields
    // the same bits — contiguity just keeps the index streams cache-friendly.
    const std::size_t per_chunk = (nodes.size() + chunk_count - 1) / chunk_count;
    futures.clear();
    std::size_t chunk = 0;
    for (std::size_t begin = 0; begin < nodes.size(); begin += per_chunk, ++chunk) {
      const std::span<const int> part =
          nodes.subspan(begin, std::min(per_chunk, nodes.size() - begin));
      double* work = parallel_work_[chunk].data();
      futures.push_back(pool->Submit([&run_chunk, part, work] { return run_chunk(part, work); }));
    }
    for (auto& future : futures) flops += future.get();
  }

  if (abort.load(std::memory_order_relaxed)) {
    factored_ = false;
    return false;
  }
  stats_.refactor_count += 1;
  stats_.parallel_refactor_count += 1;
  stats_.factor_flops += flops;
  return true;
}

void SparseLu::FactorOrRefactor(const CscMatrix& matrix) {
  FactorOrRefactor(matrix, nullptr);
}

void SparseLu::FactorOrRefactor(const CscMatrix& matrix, util::ThreadPool* pool) {
  // Fault site: a pivot failure at the entry point of the Newton loop's
  // linear-solver path.  Thrown (not returned) so tests exercise the same
  // unwinding a genuine SingularMatrixError from Factor() would take.
  if (WP_FAULT_POINT("lu.pivot")) {
    throw SingularMatrixError("lu.pivot: injected pivot failure", -1);
  }
  if (factored_ && matrix.cols() == n_ && matrix.num_nonzeros() == pattern_nnz_) {
    if (RefactorParallel(matrix, pool)) return;
  }
  Factor(matrix);
}

void SparseLu::Solve(std::span<double> b) const {
  // Thread-local scratch: no per-call allocation on hot paths, and still
  // safe when many threads share one factorization.
  static thread_local std::vector<double> tl_workspace;
  Solve(b, tl_workspace);
}

void SparseLu::Solve(std::span<double> b, std::vector<double>& workspace) const {
  WP_ASSERT(factored_);
  WP_ASSERT(static_cast<int>(b.size()) == n_);

  // z = P b.
  workspace.resize(static_cast<std::size_t>(n_));
  std::vector<double>& z = workspace;
  for (int i = 0; i < n_; ++i) z[pinv_[i]] = b[i];

  // Forward substitution, unit lower triangular.
  for (int j = 0; j < n_; ++j) {
    const double zj = z[j];
    if (zj == 0.0) continue;
    for (int k = lp_[j]; k < lp_[j + 1]; ++k) z[li_[k]] -= lx_[k] * zj;
  }
  // Back substitution.
  for (int j = n_ - 1; j >= 0; --j) {
    const double zj = z[j] / udiag_[j];
    z[j] = zj;
    if (zj == 0.0) continue;
    for (int k = up_[j]; k < up_[j + 1]; ++k) z[ui_[k]] -= ux_[k] * zj;
  }
  // Un-permute columns: x[q_[j]] = z[j].
  for (int j = 0; j < n_; ++j) b[q_[j]] = z[j];

  solve_count_.fetch_add(1, std::memory_order_relaxed);
  solve_flops_.fetch_add(li_.size() + ui_.size() + static_cast<std::size_t>(n_),
                         std::memory_order_relaxed);
}

void SparseLu::SolveParallel(std::span<double> b, std::vector<double>& workspace,
                             util::ThreadPool* pool) const {
  const int threads = pool ? static_cast<int>(pool->size()) : 1;
  bool profitable = false;
  if (threads >= 2) {
    if (options_.force_level_schedule) {
      profitable = true;
    } else {
      const double serial_cost =
          static_cast<double>(li_.size() + ui_.size() + static_cast<std::size_t>(n_));
      const double parallel_cost =
          ModelLevelMakespan(fwd_levels_, fwd_node_cost_, threads,
                             options_.level_barrier_flops) +
          ModelLevelMakespan(bwd_levels_, bwd_node_cost_, threads,
                             options_.level_barrier_flops);
      profitable = serial_cost > options_.level_min_speedup * parallel_cost;
    }
  }
  if (!profitable) {
    Solve(b, workspace);
    return;
  }

  WP_ASSERT(factored_);
  WP_ASSERT(static_cast<int>(b.size()) == n_);
  workspace.resize(static_cast<std::size_t>(n_));
  double* z = workspace.data();
  for (int i = 0; i < n_; ++i) z[pinv_[i]] = b[i];

  // Each node writes only z[node] and reads nodes finalized in earlier
  // levels, so intra-level execution is race-free; the gathers accumulate in
  // the exact serial substitution order (L rows ascending, U rows
  // descending), so the bits match Solve().
  auto run_levels = [&](const LevelSchedule& levels, auto&& node_op) {
    std::vector<std::future<void>> futures;
    for (int l = 0; l < levels.num_levels(); ++l) {
      const std::span<const int> nodes = levels.Level(l);
      const std::size_t chunk_count = std::clamp<std::size_t>(
          nodes.size() / kMinColsPerChunk, 1, static_cast<std::size_t>(threads));
      if (chunk_count <= 1) {
        for (int node : nodes) node_op(node);
        continue;
      }
      const std::size_t per_chunk = (nodes.size() + chunk_count - 1) / chunk_count;
      futures.clear();
      for (std::size_t begin = 0; begin < nodes.size(); begin += per_chunk) {
        const std::span<const int> part =
            nodes.subspan(begin, std::min(per_chunk, nodes.size() - begin));
        futures.push_back(pool->Submit([&node_op, part] {
          for (int node : part) node_op(node);
        }));
      }
      for (auto& future : futures) future.get();
    }
  };

  // Forward substitution (row-gather form of the unit lower triangle).
  run_levels(fwd_levels_, [&](int i) {
    double zi = z[i];
    for (int k = lrow_ptr_[i]; k < lrow_ptr_[i + 1]; ++k) {
      zi -= lx_[lrow_val_[k]] * z[lrow_col_[k]];
    }
    z[i] = zi;
  });
  // Back substitution (row-gather, columns descending, then the division).
  run_levels(bwd_levels_, [&](int i) {
    double zi = z[i];
    for (int k = urow_ptr_[i]; k < urow_ptr_[i + 1]; ++k) {
      zi -= ux_[urow_val_[k]] * z[urow_col_[k]];
    }
    z[i] = zi / udiag_[i];
  });

  for (int j = 0; j < n_; ++j) b[q_[j]] = z[j];

  solve_count_.fetch_add(1, std::memory_order_relaxed);
  parallel_solve_count_.fetch_add(1, std::memory_order_relaxed);
  solve_flops_.fetch_add(li_.size() + ui_.size() + static_cast<std::size_t>(n_),
                         std::memory_order_relaxed);
}

SparseLu::Stats SparseLu::stats() const {
  Stats snapshot = stats_;
  snapshot.solve_count = solve_count_.load(std::memory_order_relaxed);
  snapshot.solve_flops = solve_flops_.load(std::memory_order_relaxed);
  snapshot.parallel_solve_count = parallel_solve_count_.load(std::memory_order_relaxed);
  snapshot.chord_step_count = chord_step_count_.load(std::memory_order_relaxed);
  return snapshot;
}

double SparseLu::Refine(const CscMatrix& matrix, std::span<const double> b,
                        std::span<double> x, std::vector<double>& residual,
                        std::vector<double>& solve_workspace) const {
  residual.assign(b.begin(), b.end());
  matrix.MultiplyAccumulate(x, residual, -1.0);
  Solve(residual, solve_workspace);
  const double correction = NormInf(residual);
  Axpy(1.0, residual, x);
  return correction;
}

double SparseLu::Refine(const CscMatrix& matrix, std::span<const double> b,
                        std::span<double> x) const {
  static thread_local std::vector<double> tl_residual;
  static thread_local std::vector<double> tl_workspace;
  return Refine(matrix, b, x, tl_residual, tl_workspace);
}

double SparseLu::ChordStep(const CscMatrix& matrix, std::span<const double> b,
                           std::span<double> x, std::vector<double>& residual,
                           std::vector<double>& solve_workspace,
                           util::ThreadPool* pool) const {
  residual.assign(b.begin(), b.end());
  matrix.MultiplyAccumulate(x, residual, -1.0);
  SolveParallel(residual, solve_workspace, pool);
  const double correction = NormInf(residual);
  Axpy(1.0, residual, x);
  chord_step_count_.fetch_add(1, std::memory_order_relaxed);
  return correction;
}

}  // namespace wavepipe::sparse
