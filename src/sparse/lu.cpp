#include "sparse/lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sparse/ordering.hpp"
#include "sparse/vector_ops.hpp"
#include "util/error.hpp"

namespace wavepipe::sparse {

SparseLu::SparseLu(Options options) : options_(options) {}

void SparseLu::ComputeOrdering(const CscMatrix& matrix) {
  switch (options_.ordering) {
    case Options::Ordering::kMinimumDegree:
      q_ = MinimumDegreeOrder(matrix);
      break;
    case Options::Ordering::kNatural:
      q_ = NaturalOrder(matrix.cols());
      break;
    case Options::Ordering::kRcm:
      q_ = ReverseCuthillMcKeeOrder(matrix);
      break;
  }
}

void SparseLu::SymbolicReach(const CscMatrix& matrix, int col, int stamp) {
  // Iterative DFS over the graph "node i -> rows of L column pinv_[i]".
  // Nodes are ORIGINAL row indices (L row ids are original during Factor()).
  postorder_.clear();
  for (int k = matrix.col_begin(col); k < matrix.col_end(col); ++k) {
    const int start = matrix.row_of(k);
    if (mark_[start] == stamp) continue;

    dfs_stack_.clear();
    dfs_stack_.push_back(start);
    // dfs_child_[depth] = next child index to explore at that stack depth.
    dfs_child_.resize(1);
    dfs_child_[0] = (pinv_[start] >= 0) ? lp_[pinv_[start]] : -1;
    mark_[start] = stamp;

    while (!dfs_stack_.empty()) {
      const std::size_t depth = dfs_stack_.size() - 1;
      const int node = dfs_stack_.back();
      const int lcol = pinv_[node];
      bool descended = false;
      if (lcol >= 0) {
        int& child_it = dfs_child_[depth];
        const int child_end = lp_[lcol + 1];
        while (child_it < child_end) {
          const int child = li_[child_it++];
          if (mark_[child] != stamp) {
            mark_[child] = stamp;
            dfs_stack_.push_back(child);
            dfs_child_.resize(dfs_stack_.size());
            dfs_child_.back() = (pinv_[child] >= 0) ? lp_[pinv_[child]] : -1;
            descended = true;
            break;
          }
        }
      }
      if (!descended) {
        postorder_.push_back(node);  // finished
        dfs_stack_.pop_back();
        dfs_child_.resize(dfs_stack_.size());
      }
    }
  }
}

void SparseLu::Factor(const CscMatrix& matrix) {
  WP_ASSERT(matrix.rows() == matrix.cols());
  n_ = matrix.cols();
  pattern_nnz_ = matrix.num_nonzeros();
  factored_ = false;

  ComputeOrdering(matrix);

  pinv_.assign(static_cast<std::size_t>(n_), -1);
  prow_.assign(static_cast<std::size_t>(n_), -1);
  lp_.assign(static_cast<std::size_t>(n_) + 1, 0);
  up_.assign(static_cast<std::size_t>(n_) + 1, 0);
  li_.clear();
  lx_.clear();
  ui_.clear();
  ux_.clear();
  udiag_.assign(static_cast<std::size_t>(n_), 0.0);
  work_.assign(static_cast<std::size_t>(n_), 0.0);
  mark_.assign(static_cast<std::size_t>(n_), -1);

  std::uint64_t flops = 0;
  std::vector<std::pair<int, double>> ucol;  // (permuted row, value) staging

  for (int j = 0; j < n_; ++j) {
    const int col = q_[j];

    // --- Symbolic: reach of A(:,col) over current L ------------------------
    SymbolicReach(matrix, col, /*stamp=*/j);

    // --- Numeric: sparse triangular solve x = L \ A(:,col) -----------------
    // Invariant: work_ is zero outside the current reach.
    for (int k = matrix.col_begin(col); k < matrix.col_end(col); ++k) {
      work_[matrix.row_of(k)] = matrix.value_of(k);
    }
    // Reverse finishing order = topological order (dependencies first).
    for (auto it = postorder_.rbegin(); it != postorder_.rend(); ++it) {
      const int node = *it;
      const int lcol = pinv_[node];
      if (lcol < 0) continue;  // not yet pivotal: no outgoing updates
      const double xj = work_[node];
      if (xj == 0.0) continue;
      for (int k = lp_[lcol]; k < lp_[lcol + 1]; ++k) {
        work_[li_[k]] -= lx_[k] * xj;
        ++flops;
      }
    }

    // --- Partition reach into U entries and pivot candidates ---------------
    ucol.clear();
    int pivot_row = -1;
    double pivot_abs = 0.0;
    for (int node : postorder_) {
      if (pinv_[node] >= 0) {
        ucol.emplace_back(pinv_[node], work_[node]);
      } else {
        const double mag = std::abs(work_[node]);
        if (mag > pivot_abs) {
          pivot_abs = mag;
          pivot_row = node;
        }
      }
    }
    // Diagonal preference: keep A(col,col) as pivot when close enough to the
    // column max.  (mark_[col] == j tests membership in the reach.)
    if (mark_[col] == j && pinv_[col] < 0 &&
        std::abs(work_[col]) >= options_.diag_preference * pivot_abs) {
      pivot_row = col;
    }
    if (pivot_row < 0 || std::abs(work_[pivot_row]) <= options_.singular_tol) {
      // Clean up workspace before throwing so the object stays reusable.
      for (int node : postorder_) work_[node] = 0.0;
      throw SingularMatrixError(
          "sparse LU: singular at elimination step " + std::to_string(j) +
              " (original column " + std::to_string(col) + ")",
          col);
    }
    const double pivot = work_[pivot_row];
    pinv_[pivot_row] = j;
    prow_[j] = pivot_row;
    udiag_[j] = pivot;

    // --- Emit U column j (sorted by permuted row for Refactor()) -----------
    std::sort(ucol.begin(), ucol.end());
    for (const auto& [row, value] : ucol) {
      ui_.push_back(row);
      ux_.push_back(value);
    }
    up_[j + 1] = static_cast<int>(ui_.size());

    // --- Emit L column j (original row ids for now, remapped after) --------
    for (int node : postorder_) {
      if (pinv_[node] < 0) {  // remaining candidates go below the pivot
        li_.push_back(node);
        lx_.push_back(work_[node] / pivot);
        ++flops;
      }
      work_[node] = 0.0;  // restore invariant
    }
    lp_[j + 1] = static_cast<int>(li_.size());
  }

  // Remap L row indices into permuted space (every row is pivotal now).
  for (int& row : li_) row = pinv_[row];

  stats_.nnz_l = li_.size();
  stats_.nnz_u = ui_.size() + static_cast<std::size_t>(n_);
  stats_.factor_count += 1;
  stats_.factor_flops += flops;
  factored_ = true;
}

bool SparseLu::Refactor(const CscMatrix& matrix) {
  WP_ASSERT(factored_);
  WP_ASSERT(matrix.rows() == n_ && matrix.cols() == n_);
  WP_ASSERT(matrix.num_nonzeros() == pattern_nnz_);

  std::uint64_t flops = 0;
  for (int j = 0; j < n_; ++j) {
    const int col = q_[j];

    // Zero the factor pattern of this column, then scatter A's column into
    // permuted positions.  The factor pattern is a superset of A's pattern
    // (fill-in), so zero-first makes all fill positions well defined.
    for (int k = up_[j]; k < up_[j + 1]; ++k) work_[ui_[k]] = 0.0;
    for (int k = lp_[j]; k < lp_[j + 1]; ++k) work_[li_[k]] = 0.0;
    work_[j] = 0.0;
    for (int k = matrix.col_begin(col); k < matrix.col_end(col); ++k) {
      work_[pinv_[matrix.row_of(k)]] = matrix.value_of(k);
    }

    // Left-looking update: U rows ascending guarantees each x[r] is final
    // before its L column is applied.
    for (int k = up_[j]; k < up_[j + 1]; ++k) {
      const int r = ui_[k];
      const double xr = work_[r];
      ux_[k] = xr;
      if (xr == 0.0) continue;
      for (int m = lp_[r]; m < lp_[r + 1]; ++m) {
        work_[li_[m]] -= lx_[m] * xr;
        ++flops;
      }
    }

    // Pivot quality check against the column's magnitude.
    const double pivot = work_[j];
    double col_max = std::abs(pivot);
    for (int k = lp_[j]; k < lp_[j + 1]; ++k) {
      col_max = std::max(col_max, std::abs(work_[li_[k]]));
    }
    if (std::abs(pivot) <= options_.singular_tol ||
        std::abs(pivot) < options_.refactor_pivot_tol * col_max) {
      // Invalidate and clean up the workspace.
      for (int k = up_[j]; k < up_[j + 1]; ++k) work_[ui_[k]] = 0.0;
      for (int k = lp_[j]; k < lp_[j + 1]; ++k) work_[li_[k]] = 0.0;
      work_[j] = 0.0;
      factored_ = false;
      return false;
    }
    udiag_[j] = pivot;
    for (int k = lp_[j]; k < lp_[j + 1]; ++k) {
      lx_[k] = work_[li_[k]] / pivot;
      work_[li_[k]] = 0.0;
      ++flops;
    }
    for (int k = up_[j]; k < up_[j + 1]; ++k) work_[ui_[k]] = 0.0;
    work_[j] = 0.0;
  }

  stats_.refactor_count += 1;
  stats_.factor_flops += flops;
  return true;
}

void SparseLu::FactorOrRefactor(const CscMatrix& matrix) {
  if (factored_ && matrix.cols() == n_ && matrix.num_nonzeros() == pattern_nnz_) {
    if (Refactor(matrix)) return;
  }
  Factor(matrix);
}

void SparseLu::Solve(std::span<double> b) const {
  std::vector<double> workspace;
  Solve(b, workspace);
}

void SparseLu::Solve(std::span<double> b, std::vector<double>& workspace) const {
  WP_ASSERT(factored_);
  WP_ASSERT(static_cast<int>(b.size()) == n_);

  // z = P b.
  workspace.resize(static_cast<std::size_t>(n_));
  std::vector<double>& z = workspace;
  for (int i = 0; i < n_; ++i) z[pinv_[i]] = b[i];

  // Forward substitution, unit lower triangular.
  for (int j = 0; j < n_; ++j) {
    const double zj = z[j];
    if (zj == 0.0) continue;
    for (int k = lp_[j]; k < lp_[j + 1]; ++k) z[li_[k]] -= lx_[k] * zj;
  }
  // Back substitution.
  for (int j = n_ - 1; j >= 0; --j) {
    const double zj = z[j] / udiag_[j];
    z[j] = zj;
    if (zj == 0.0) continue;
    for (int k = up_[j]; k < up_[j + 1]; ++k) z[ui_[k]] -= ux_[k] * zj;
  }
  // Un-permute columns: x[q_[j]] = z[j].
  for (int j = 0; j < n_; ++j) b[q_[j]] = z[j];

  solve_count_.fetch_add(1, std::memory_order_relaxed);
  solve_flops_.fetch_add(li_.size() + ui_.size() + static_cast<std::size_t>(n_),
                         std::memory_order_relaxed);
}

SparseLu::Stats SparseLu::stats() const {
  Stats snapshot = stats_;
  snapshot.solve_count = solve_count_.load(std::memory_order_relaxed);
  snapshot.solve_flops = solve_flops_.load(std::memory_order_relaxed);
  return snapshot;
}

double SparseLu::Refine(const CscMatrix& matrix, std::span<const double> b,
                        std::span<double> x) const {
  std::vector<double> r(b.begin(), b.end());
  matrix.MultiplyAccumulate(x, r, -1.0);
  Solve(r);
  const double correction = NormInf(r);
  Axpy(1.0, r, x);
  return correction;
}

}  // namespace wavepipe::sparse
