#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/csc.hpp"
#include "util/error.hpp"

namespace wavepipe::sparse {

DenseMatrix::DenseMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, 0.0) {}

DenseMatrix DenseMatrix::FromCsc(const CscMatrix& sparse) {
  DenseMatrix out(sparse.rows(), sparse.cols());
  for (int c = 0; c < sparse.cols(); ++c) {
    for (int k = sparse.col_begin(c); k < sparse.col_end(c); ++k) {
      out.At(sparse.row_of(k), c) += sparse.value_of(k);
    }
  }
  return out;
}

void DenseMatrix::Multiply(std::span<const double> x, std::span<double> y) const {
  WP_ASSERT(static_cast<int>(x.size()) == cols_);
  WP_ASSERT(static_cast<int>(y.size()) == rows_);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int c = 0; c < cols_; ++c) sum += At(r, c) * x[c];
    y[r] = sum;
  }
}

DenseLu::DenseLu(const DenseMatrix& matrix) {
  WP_ASSERT(matrix.rows() == matrix.cols());
  n_ = matrix.rows();
  lu_.resize(static_cast<std::size_t>(n_) * n_);
  for (int r = 0; r < n_; ++r) {
    for (int c = 0; c < n_; ++c) lu_[static_cast<std::size_t>(r) * n_ + c] = matrix.At(r, c);
  }
  pivots_.resize(static_cast<std::size_t>(n_));

  auto at = [&](int r, int c) -> double& { return lu_[static_cast<std::size_t>(r) * n_ + c]; };
  for (int k = 0; k < n_; ++k) {
    // Partial pivoting.
    int pivot = k;
    for (int r = k + 1; r < n_; ++r) {
      if (std::abs(at(r, k)) > std::abs(at(pivot, k))) pivot = r;
    }
    pivots_[k] = pivot;
    if (pivot != k) {
      for (int c = 0; c < n_; ++c) std::swap(at(k, c), at(pivot, c));
    }
    const double diag = at(k, k);
    if (diag == 0.0) throw SingularMatrixError("dense LU: zero pivot", k);
    for (int r = k + 1; r < n_; ++r) {
      const double factor = at(r, k) / diag;
      at(r, k) = factor;
      if (factor == 0.0) continue;
      for (int c = k + 1; c < n_; ++c) at(r, c) -= factor * at(k, c);
    }
  }
}

void DenseLu::Solve(std::span<double> b) const {
  WP_ASSERT(static_cast<int>(b.size()) == n_);
  auto at = [&](int r, int c) { return lu_[static_cast<std::size_t>(r) * n_ + c]; };
  for (int k = 0; k < n_; ++k) {
    if (pivots_[k] != k) std::swap(b[k], b[pivots_[k]]);
  }
  // Forward substitution (unit lower).
  for (int r = 1; r < n_; ++r) {
    double sum = b[r];
    for (int c = 0; c < r; ++c) sum -= at(r, c) * b[c];
    b[r] = sum;
  }
  // Back substitution.
  for (int r = n_ - 1; r >= 0; --r) {
    double sum = b[r];
    for (int c = r + 1; c < n_; ++c) sum -= at(r, c) * b[c];
    b[r] = sum / at(r, r);
  }
}

}  // namespace wavepipe::sparse
