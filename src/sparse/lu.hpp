// Sparse LU factorization for circuit (MNA) matrices.
//
// Two paths, mirroring what production SPICE engines do:
//
//  * Factor(): full Gilbert–Peierls left-looking factorization with
//    threshold partial pivoting and a diagonal preference, on top of a
//    fill-reducing minimum-degree column ordering.  Run once per sparsity
//    pattern (and again whenever pivots degrade).
//
//  * Refactor(): numeric-only refactorization that reuses the symbolic
//    pattern AND the pivot sequence of the last Factor().  This is the hot
//    path of the Newton loop: every Newton iteration changes only the
//    *values* of the Jacobian, never its pattern, so refactorization skips
//    the entire symbolic machinery.  If a reused pivot has become too small
//    relative to its column, Refactor() reports failure and the caller falls
//    back to Factor().
//
// On top of the fixed factor pattern, Factor() additionally derives the
// column-dependency DAG (column j depends on every r with U(r,j) != 0: its
// left-looking update reads L's column r) and its level sets, plus the
// analogous DAGs for the forward (L's rows) and backward (U's rows)
// triangular substitutions.  RefactorParallel()/SolveParallel() execute
// those level sets with a caller-supplied worker pool, one barrier per
// level, bit-identical to the serial kernels: every column/row computation
// is a pure function of already-finalized predecessors, chunk partitions
// are deterministic, and no accumulation order changes.  A per-level cost
// model (flops per level vs barrier overhead) falls back to the serial
// kernels when levels are too thin — deep elimination chains on analog
// meshes must not regress.
//
// The factorization is A(:, q) = P^T · L · U, i.e. column j of the factors
// corresponds to original column q[j], and row i of A lives at permuted
// position pinv[i].
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/level_schedule.hpp"
#include "sparse/ordering_cache.hpp"

namespace wavepipe::util {
class ThreadPool;
namespace telemetry {
class CounterRegistry;
}
}  // namespace wavepipe::util

namespace wavepipe::sparse {

class SparseLu {
 public:
  struct Options {
    /// Pick the diagonal entry as pivot whenever |diag| >= diag_preference *
    /// (column max).  Keeps MNA pivots on the diagonal (low fill, stable for
    /// diagonally dominant conductance matrices) while still escaping to
    /// true partial pivoting when the diagonal collapses.
    double diag_preference = 1e-3;
    /// Refactor() fails (returns false) when a reused pivot is smaller than
    /// this fraction of its column's max, signalling that the pivot sequence
    /// chosen at Factor() time is no longer numerically valid.
    double refactor_pivot_tol = 1e-10;
    /// Absolute floor below which a pivot is considered singular.
    double singular_tol = 1e-300;
    /// Fill-reducing ordering choice.
    enum class Ordering { kMinimumDegree, kNatural, kRcm };
    Ordering ordering = Ordering::kMinimumDegree;
    /// RefactorParallel()/SolveParallel() run their level schedules only when
    /// the per-level cost model predicts at least this speedup over the
    /// serial kernel at the pool's thread count; below it they silently run
    /// serial (correctness never depends on the choice — results are
    /// bit-identical either way).
    double level_min_speedup = 1.15;
    /// Modeled cost of one fork/join level barrier, in flop units, for the
    /// fallback decision.  Deliberately pessimistic toward level scheduling
    /// so thin-level DAGs keep the proven serial path.
    double level_barrier_flops = 384.0;
    /// Test hook: bypass the cost model and always execute the level
    /// schedules when a usable pool is supplied.
    bool force_level_schedule = false;
  };

  struct Stats {
    std::size_t nnz_l = 0;            // strictly-lower entries (unit diagonal implicit)
    std::size_t nnz_u = 0;            // strictly-upper entries + n diagonal entries
    std::uint64_t factor_count = 0;   // full factorizations performed
    std::uint64_t refactor_count = 0; // numeric-only refactorizations
    std::uint64_t solve_count = 0;
    std::uint64_t factor_flops = 0;   // multiply-add count, cumulative
    std::uint64_t solve_flops = 0;
    // Level-scheduling telemetry (valid after Factor()).  Benches and traces
    // read these instead of re-deriving schedules.
    int factor_levels = 0;                 ///< refactor DAG depth
    std::size_t factor_widest_level = 0;   ///< widest refactor level (columns)
    int solve_fwd_levels = 0;              ///< forward-substitution DAG depth
    int solve_bwd_levels = 0;              ///< backward-substitution DAG depth
    double modeled_refactor_speedup2 = 1.0;  ///< cost model, 2 threads
    double modeled_refactor_speedup4 = 1.0;  ///< cost model, 4 threads
    std::uint64_t parallel_refactor_count = 0;  ///< level-scheduled refactors run
    std::uint64_t refactor_fallback_count = 0;  ///< pool given, model chose serial
    std::uint64_t parallel_solve_count = 0;     ///< level-scheduled solves run
    std::uint64_t ordering_reuse_count = 0;     ///< Factor() reused a cached ordering
    std::uint64_t chord_step_count = 0;         ///< ChordStep() calls (stale-factor solves)

    /// Registers every field under the `sparse_lu.` prefix (the `lu.` block
    /// absorbed into TransientStats keeps its own names, so both may live in
    /// one registry).  See util/telemetry.hpp.
    void ExportCounters(util::telemetry::CounterRegistry& registry) const;
  };

  SparseLu() : SparseLu(Options{}) {}
  explicit SparseLu(Options options);

  /// Re-initializes with `options`: drops the factors, the private ordering
  /// slot and all counters, as if freshly constructed.  The attached shared
  /// ordering cache (if any) stays attached.  Exists because the atomic
  /// solve counters make SparseLu non-movable, so holders that rebuild
  /// (BbdSolver pieces) reset in place instead of assigning a new instance.
  void Reset(const Options& options);

  /// Full symbolic + numeric factorization.  Throws SingularMatrixError if a
  /// structurally or numerically singular column is met.  Also rebuilds the
  /// level schedules and row-major factor mirrors the parallel kernels use.
  void Factor(const CscMatrix& matrix);

  /// Numeric-only refactorization.  Preconditions: Factor() has succeeded on
  /// a matrix with the identical pattern.  Returns false when pivot quality
  /// degraded; the factors are then invalid and Factor() must be rerun.
  bool Refactor(const CscMatrix& matrix);

  /// Level-scheduled parallel refactorization on `pool`.  Bit-identical to
  /// Refactor(): each column is the same pure function of its (barrier-
  /// separated, already final) dependency columns.  Falls back to the serial
  /// kernel when `pool` is null/single-threaded or the per-level cost model
  /// predicts no win (see Options::level_min_speedup).  A degraded pivot
  /// raises an atomic abort flag: in-flight columns drain, no further level
  /// starts, and false is returned with the factors invalidated.
  bool RefactorParallel(const CscMatrix& matrix, util::ThreadPool* pool);

  /// Refactor() if a compatible factorization exists, else Factor().
  void FactorOrRefactor(const CscMatrix& matrix);
  /// Same, routing the numeric refactorization through RefactorParallel().
  void FactorOrRefactor(const CscMatrix& matrix, util::ThreadPool* pool);

  /// Solves A x = b in place (b becomes x) using `workspace` as scratch
  /// (resized to the matrix dimension).  Thread-safe: any number of threads
  /// may Solve() against one factorization concurrently as long as each
  /// passes its own workspace.  Hot paths keep a workspace alive across
  /// calls to avoid reallocation.
  void Solve(std::span<double> b, std::vector<double>& workspace) const;

  /// Convenience overload backed by a thread-local workspace — no per-call
  /// allocation after the first use on a thread, and still safe to call from
  /// any number of threads concurrently.
  void Solve(std::span<double> b) const;

  /// Level-scheduled parallel triangular solves on `pool`, bit-identical to
  /// Solve(): the row-gather form accumulates each unknown's updates in
  /// exactly the serial substitution order.  Falls back to Solve() when the
  /// pool is absent/single-threaded or the cost model predicts no win
  /// (triangular-solve levels are thin on circuit matrices — the fallback is
  /// the common case; the parallel path exists for wide digital/mesh DAGs).
  void SolveParallel(std::span<double> b, std::vector<double>& workspace,
                     util::ThreadPool* pool) const;

  /// One step of iterative refinement: x += A \ (b - A x).  Returns the
  /// inf-norm of the correction (a cheap accuracy probe).  `residual` and
  /// `solve_workspace` are caller scratch (resized to dimension) so Newton
  /// loops refine without per-call allocation.
  double Refine(const CscMatrix& matrix, std::span<const double> b, std::span<double> x,
                std::vector<double>& residual, std::vector<double>& solve_workspace) const;

  /// Convenience overload backed by thread-local scratch.
  double Refine(const CscMatrix& matrix, std::span<const double> b,
                std::span<double> x) const;

  /// Chord-Newton step with a stale factor: x += LU \ (b - A x), where A/b
  /// are the CURRENT Jacobian/RHS and LU is whatever this object last
  /// factored.  Numerically this is one iterative-refinement sweep whose
  /// "preconditioner" happens to be stale — the fixed point still satisfies
  /// A x = b exactly, which is what makes factor reuse safe for Newton.
  /// Returns the inf-norm of the applied correction.  `residual` and
  /// `solve_workspace` are caller scratch (resized to dimension); the solve
  /// routes through SolveParallel() so level scheduling applies when `pool`
  /// is usable.
  double ChordStep(const CscMatrix& matrix, std::span<const double> b,
                   std::span<double> x, std::vector<double>& residual,
                   std::vector<double>& solve_workspace, util::ThreadPool* pool) const;

  /// Attaches a shared fill-reducing-ordering cache (not owned; may be null
  /// to detach).  Factor() consults it after the private single-slot cache
  /// misses and publishes freshly computed orderings into it, so several
  /// SparseLu instances factoring equal patterns (WavePipe contexts, BBD
  /// pieces, batch variants) compute each ordering once.  Safe to share one
  /// cache across threads; see sparse/ordering_cache.hpp.
  void set_ordering_cache(OrderingCache* cache) { ordering_cache_ = cache; }

  bool factored() const { return factored_; }
  int dimension() const { return n_; }
  /// Snapshot of the counters (by value: solve counters are atomics
  /// internally so concurrent Solve() calls don't race on the tallies).
  Stats stats() const;
  std::span<const int> column_order() const { return q_; }

  // --- level-schedule introspection (valid after Factor()) -----------------
  /// Refactor column-dependency level sets (nodes are permuted column ids).
  const LevelSchedule& factor_level_schedule() const { return factor_levels_; }
  const LevelSchedule& forward_level_schedule() const { return fwd_levels_; }
  const LevelSchedule& backward_level_schedule() const { return bwd_levels_; }
  /// Modeled refactorization flops of permuted column j (update + scale).
  std::span<const double> column_flops() const { return col_flops_; }
  /// Serial refactorization cost: sum of column_flops().
  double serial_refactor_flops() const { return serial_refactor_flops_; }
  /// Permuted columns that column j's refactorization depends on — exactly
  /// the rows of U's column j.  This is the DAG the ledger replay exports.
  std::span<const int> FactorColumnDeps(int j) const {
    return std::span<const int>(ui_).subspan(
        static_cast<std::size_t>(up_[j]),
        static_cast<std::size_t>(up_[j + 1] - up_[j]));
  }
  /// Per-level cost model of a level-scheduled refactorization at `threads`
  /// workers, in flop units (equals serial_refactor_flops() at 1 thread).
  double ModelRefactorMakespanFlops(int threads) const;
  /// True when the cost model favors the level-scheduled refactorization.
  bool LevelScheduleProfitable(int threads) const;

 private:
  void ComputeOrdering(const CscMatrix& matrix);
  // Depth-first reach of A(:, col) over the partially built L; appends the
  // reach in reverse-topological (finishing) order to postorder_.
  void SymbolicReach(const CscMatrix& matrix, int col, int stamp);
  // Rebuilds the row-major factor mirrors, the dependency level sets and the
  // per-column flop model after a successful Factor().
  void BuildSchedules();
  // Numeric refactorization of permuted column j against `work` (dense
  // scratch, zero on this column's factor pattern not required — the kernel
  // zeroes exactly the slots it reads).  Writes this column's ux_/lx_/udiag_
  // slots only, reads dependency L columns finalized in earlier levels, so
  // concurrent calls on distinct columns of one level are race-free and
  // bit-identical to the serial loop.  Returns false on pivot degradation
  // (slots cleaned, nothing published).
  bool RefactorColumn(const CscMatrix& matrix, int j, double* work, std::uint64_t& flops);

  Options options_;
  Stats stats_;  ///< factor-side counters (mutated only by Factor/Refactor)
  /// Solve-side counters, atomic so concurrent const Solve() calls sharing
  /// one factorization tally without racing.
  mutable std::atomic<std::uint64_t> solve_count_{0};
  mutable std::atomic<std::uint64_t> solve_flops_{0};
  mutable std::atomic<std::uint64_t> parallel_solve_count_{0};
  mutable std::atomic<std::uint64_t> chord_step_count_{0};
  bool factored_ = false;
  int n_ = 0;
  std::size_t pattern_nnz_ = 0;  // nnz of the matrix Factor() saw

  // Column elimination order and row permutation.
  std::vector<int> q_;     // q_[j] = original column eliminated at step j
  std::vector<int> pinv_;  // pinv_[original row] = permuted position
  std::vector<int> prow_;  // prow_[permuted position] = original row
  // Fill-reducing ordering cache: ComputeOrdering() is skipped when Factor()
  // sees the same pattern again (the FactorOrRefactor pivot-failure fallback
  // re-factors the identical pattern every time).
  bool ordering_cached_ = false;
  int ordering_n_ = 0;
  std::size_t ordering_nnz_ = 0;
  std::uint64_t ordering_pattern_hash_ = 0;
  Options::Ordering ordering_kind_ = Options::Ordering::kMinimumDegree;
  /// Optional shared cache consulted when the private slot misses.
  OrderingCache* ordering_cache_ = nullptr;

  // L: strictly lower triangular, unit diagonal implicit, permuted row ids.
  std::vector<int> lp_;
  std::vector<int> li_;
  std::vector<double> lx_;
  // U: strictly upper, permuted row ids sorted ascending per column.
  std::vector<int> up_;
  std::vector<int> ui_;
  std::vector<double> ux_;
  std::vector<double> udiag_;

  // Row-major mirrors of the factor patterns (value arrays stay lx_/ux_ via
  // the *_val_ index maps, so refactorization needs no mirror refresh).
  // L rows keep columns ascending (the forward-substitution gather order);
  // U rows keep columns DESCENDING (the backward-substitution order).
  std::vector<int> lrow_ptr_, lrow_col_, lrow_val_;
  std::vector<int> urow_ptr_, urow_col_, urow_val_;

  // Level sets: refactor DAG (U columns), forward solve (L rows), backward
  // solve (U rows); all over permuted column/row ids.
  LevelSchedule factor_levels_;
  LevelSchedule fwd_levels_;
  LevelSchedule bwd_levels_;
  std::vector<double> col_flops_;      // refactor flops per permuted column
  std::vector<double> fwd_node_cost_;  // forward-solve entries per node
  std::vector<double> bwd_node_cost_;  // backward-solve entries per node
  double serial_refactor_flops_ = 0.0;

  // Workspaces (sized n), reused across Factor/Refactor calls.  Solve()
  // deliberately does NOT touch these: it is const and may run concurrently
  // from several threads, so its scratch is caller-provided.
  std::vector<double> work_;
  std::vector<int> mark_;
  std::vector<int> postorder_;
  std::vector<int> dfs_stack_;
  std::vector<int> dfs_child_;
  // Per-chunk dense scratch for RefactorParallel (one per in-flight chunk).
  std::vector<std::vector<double>> parallel_work_;
};

}  // namespace wavepipe::sparse
