// Sparse LU factorization for circuit (MNA) matrices.
//
// Two paths, mirroring what production SPICE engines do:
//
//  * Factor(): full Gilbert–Peierls left-looking factorization with
//    threshold partial pivoting and a diagonal preference, on top of a
//    fill-reducing minimum-degree column ordering.  Run once per sparsity
//    pattern (and again whenever pivots degrade).
//
//  * Refactor(): numeric-only refactorization that reuses the symbolic
//    pattern AND the pivot sequence of the last Factor().  This is the hot
//    path of the Newton loop: every Newton iteration changes only the
//    *values* of the Jacobian, never its pattern, so refactorization skips
//    the entire symbolic machinery.  If a reused pivot has become too small
//    relative to its column, Refactor() reports failure and the caller falls
//    back to Factor().
//
// The factorization is A(:, q) = P^T · L · U, i.e. column j of the factors
// corresponds to original column q[j], and row i of A lives at permuted
// position pinv[i].
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csc.hpp"

namespace wavepipe::sparse {

class SparseLu {
 public:
  struct Options {
    /// Pick the diagonal entry as pivot whenever |diag| >= diag_preference *
    /// (column max).  Keeps MNA pivots on the diagonal (low fill, stable for
    /// diagonally dominant conductance matrices) while still escaping to
    /// true partial pivoting when the diagonal collapses.
    double diag_preference = 1e-3;
    /// Refactor() fails (returns false) when a reused pivot is smaller than
    /// this fraction of its column's max, signalling that the pivot sequence
    /// chosen at Factor() time is no longer numerically valid.
    double refactor_pivot_tol = 1e-10;
    /// Absolute floor below which a pivot is considered singular.
    double singular_tol = 1e-300;
    /// Fill-reducing ordering choice.
    enum class Ordering { kMinimumDegree, kNatural, kRcm };
    Ordering ordering = Ordering::kMinimumDegree;
  };

  struct Stats {
    std::size_t nnz_l = 0;            // strictly-lower entries (unit diagonal implicit)
    std::size_t nnz_u = 0;            // strictly-upper entries + n diagonal entries
    std::uint64_t factor_count = 0;   // full factorizations performed
    std::uint64_t refactor_count = 0; // numeric-only refactorizations
    std::uint64_t solve_count = 0;
    std::uint64_t factor_flops = 0;   // multiply-add count, cumulative
    std::uint64_t solve_flops = 0;
  };

  SparseLu() : SparseLu(Options{}) {}
  explicit SparseLu(Options options);

  /// Full symbolic + numeric factorization.  Throws SingularMatrixError if a
  /// structurally or numerically singular column is met.
  void Factor(const CscMatrix& matrix);

  /// Numeric-only refactorization.  Preconditions: Factor() has succeeded on
  /// a matrix with the identical pattern.  Returns false when pivot quality
  /// degraded; the factors are then invalid and Factor() must be rerun.
  bool Refactor(const CscMatrix& matrix);

  /// Refactor() if a compatible factorization exists, else Factor().
  void FactorOrRefactor(const CscMatrix& matrix);

  /// Solves A x = b in place (b becomes x) using `workspace` as scratch
  /// (resized to the matrix dimension).  Thread-safe: any number of threads
  /// may Solve() against one factorization concurrently as long as each
  /// passes its own workspace.  Hot paths keep a workspace alive across
  /// calls to avoid reallocation.
  void Solve(std::span<double> b, std::vector<double>& workspace) const;

  /// Convenience overload with a per-call workspace allocation.  Equally
  /// thread-safe, but allocates; prefer the workspace overload in hot loops.
  void Solve(std::span<double> b) const;

  /// One step of iterative refinement: x += A \ (b - A x).  Returns the
  /// inf-norm of the correction (a cheap accuracy probe).
  double Refine(const CscMatrix& matrix, std::span<const double> b,
                std::span<double> x) const;

  bool factored() const { return factored_; }
  int dimension() const { return n_; }
  /// Snapshot of the counters (by value: solve counters are atomics
  /// internally so concurrent Solve() calls don't race on the tallies).
  Stats stats() const;
  std::span<const int> column_order() const { return q_; }

 private:
  void ComputeOrdering(const CscMatrix& matrix);
  // Depth-first reach of A(:, col) over the partially built L; appends the
  // reach in reverse-topological (finishing) order to postorder_.
  void SymbolicReach(const CscMatrix& matrix, int col, int stamp);

  Options options_;
  Stats stats_;  ///< factor-side counters (mutated only by Factor/Refactor)
  /// Solve-side counters, atomic so concurrent const Solve() calls sharing
  /// one factorization tally without racing.
  mutable std::atomic<std::uint64_t> solve_count_{0};
  mutable std::atomic<std::uint64_t> solve_flops_{0};
  bool factored_ = false;
  int n_ = 0;
  std::size_t pattern_nnz_ = 0;  // nnz of the matrix Factor() saw

  // Column elimination order and row permutation.
  std::vector<int> q_;     // q_[j] = original column eliminated at step j
  std::vector<int> pinv_;  // pinv_[original row] = permuted position
  std::vector<int> prow_;  // prow_[permuted position] = original row

  // L: strictly lower triangular, unit diagonal implicit, permuted row ids.
  std::vector<int> lp_;
  std::vector<int> li_;
  std::vector<double> lx_;
  // U: strictly upper, permuted row ids sorted ascending per column.
  std::vector<int> up_;
  std::vector<int> ui_;
  std::vector<double> ux_;
  std::vector<double> udiag_;

  // Workspaces (sized n), reused across Factor/Refactor calls.  Solve()
  // deliberately does NOT touch these: it is const and may run concurrently
  // from several threads, so its scratch is caller-provided.
  std::vector<double> work_;
  std::vector<int> mark_;
  std::vector<int> postorder_;
  std::vector<int> dfs_stack_;
  std::vector<int> dfs_child_;
};

}  // namespace wavepipe::sparse
