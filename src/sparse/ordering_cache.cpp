#include "sparse/ordering_cache.hpp"

#include "sparse/csc.hpp"

namespace wavepipe::sparse {

std::uint64_t PatternHash(const CscMatrix& matrix) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](int v) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ull;
  };
  // The dimensions participate in the hash: col_ptr/row_idx alone collide
  // across sizes (every empty n x n pattern hashes its n+1 zero col_ptr
  // entries to nearly the same digest, and a pattern padded with empty
  // trailing columns is indistinguishable from its smaller prefix).  Keys
  // also compare n, but reduced-subnet matrices make same-hash/different-n
  // patterns common enough that the hash itself must separate them.
  mix(matrix.rows());
  mix(matrix.cols());
  for (int p : matrix.col_ptr()) mix(p);
  for (int r : matrix.row_idx()) mix(r);
  return h;
}

OrderingCache::OrderingPtr OrderingCache::Find(const Key& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [k, order] : entries_) {
    if (k == key) {
      ++hits_;
      return order;
    }
  }
  ++misses_;
  return nullptr;
}

OrderingCache::OrderingPtr OrderingCache::Insert(const Key& key, std::vector<int> order) {
  auto candidate = std::make_shared<const std::vector<int>>(std::move(order));
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [k, cached] : entries_) {
    if (k == key) return cached;  // first insert won; agree with it
  }
  entries_.emplace_back(key, candidate);
  return candidate;
}

std::size_t OrderingCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t OrderingCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t OrderingCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace wavepipe::sparse
