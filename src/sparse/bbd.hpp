// Bordered-block-diagonal (BBD) solve path for domain-decomposed circuits.
//
// A vertex-separator partition of the MNA unknowns reorders the system into
//
//        [ A_00          F_0 ] [x_0]   [b_0]
//        [      A_11     F_1 ] [x_1] = [b_1]          A_kk: piece interiors
//        [           ..   .. ] [ ..]   [ ..]          F_k/E_k: coupling
//        [ E_0  E_1  ..   C  ] [x_c]   [b_c]          C: interface block
//
// with NO coupling between the interiors of different pieces (the separator
// property the partitioner guarantees).  Factorization then decomposes into
// embarrassingly parallel per-piece LU factors plus one small Schur
// complement on the interface,
//
//        S = C - sum_k E_k · A_kk^{-1} · F_k,
//
// and each solve into two parallel per-piece triangular sweeps around one
// interface solve:
//
//        z_k = A_kk^{-1} b_k                (parallel over pieces)
//        g   = b_c - sum_k E_k z_k          (small, serial)
//        x_c = S^{-1} g                     (small, serial)
//        x_k = A_kk^{-1} (b_k - F_k x_c)    (parallel over pieces)
//
// The back-substitution deliberately re-solves against b_k - F_k x_c instead
// of storing the dense maps W_k = A_kk^{-1} F_k: one extra per-piece
// triangular sweep per solve buys O(n_k x n_if) less memory per piece, which
// is what makes 100k-unknown grids fit.
//
// Every piece runs the existing SparseLu kernels (with a shared
// OrderingCache so equal-stripe patterns are ordered once); the pieces and
// the Schur column assembly execute across the caller's ThreadPool.  Results
// are deterministic: each piece/column computation is a pure function of its
// inputs and all cross-piece accumulations run in fixed piece order.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/lu.hpp"
#include "sparse/ordering_cache.hpp"

namespace wavepipe::util {
class ThreadPool;
namespace telemetry {
class CounterRegistry;
}
}  // namespace wavepipe::util

namespace wavepipe::sparse {

/// Vertex-separator partition of the n unknowns of a (structurally nearly
/// symmetric) sparse matrix: every unknown is interior to exactly one piece
/// or on the shared interface, and no matrix entry couples interiors of two
/// different pieces.  Produced by partition::PartitionPattern
/// (src/partition); defined here so the sparse layer's BBD solver does not
/// depend on the partitioner.
struct BbdPlan {
  static constexpr int kInterface = -1;

  int num_pieces = 0;
  int dimension = 0;
  /// Piece id per unknown; kInterface marks interface unknowns.
  std::vector<int> piece_of;
  /// Global unknown ids per piece interior, ascending.
  std::vector<std::vector<int>> interiors;
  /// Global unknown ids on the interface, ascending.
  std::vector<int> interface_nodes;
  /// local_index[g] = position of unknown g within its block (its piece's
  /// `interiors` list or `interface_nodes`), matching the orders above.
  std::vector<int> local_index;

  std::size_t LargestPiece() const;
  std::size_t SmallestPiece() const;
  /// Largest piece over the ideal even interior split (1.0 = balanced).
  double Imbalance() const;
  /// Checks the separator property against `pattern` (test/debug aid):
  /// no entry may couple interiors of two different pieces.
  bool Validate(const CscMatrix& pattern) const;
};

/// Counters of one BbdSolver, exported under the `partition.` prefix.
/// Flop tallies are deterministic (pure functions of the factors), so the
/// bench speedup model is replayable; schur_seconds is wall clock.
struct BbdStats {
  int pieces = 0;
  std::size_t interface_size = 0;
  double piece_imbalance = 0.0;
  std::uint64_t full_factor_count = 0;   ///< cycles running a full piece Factor()
  std::uint64_t refactor_count = 0;      ///< numeric-only cycles
  std::uint64_t solve_count = 0;
  std::uint64_t schur_factor_count = 0;
  std::size_t schur_nnz = 0;             ///< structural interface-block nnz
  double schur_seconds = 0.0;            ///< Schur assembly + factor wall clock
  std::uint64_t piece_factor_flops = 0;  ///< cumulative, all pieces
  std::uint64_t schur_assembly_flops = 0;
  std::uint64_t schur_factor_flops = 0;
  std::uint64_t piece_solve_flops = 0;   ///< cumulative, both sweeps

  /// Registers every field under the `partition.` prefix.
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;
};

class BbdSolver {
 public:
  BbdSolver() = default;

  /// Symbolic setup against `pattern` (the full-system CSC pattern the plan
  /// was computed for): builds the piece/coupling sub-patterns, the value
  /// scatter maps, and the structural Schur pattern.  Call once per pattern;
  /// numeric FactorOrRefactor()/Solve() reuse all of it.  Throws Error if
  /// `pattern` violates the plan's separator property.
  void Configure(std::shared_ptr<const BbdPlan> plan, const CscMatrix& pattern,
                 const SparseLu::Options& lu_options = {});

  bool configured() const { return plan_ != nullptr; }
  bool factored() const { return factored_; }
  const BbdPlan& plan() const { return *plan_; }
  const BbdStats& stats() const { return stats_; }

  /// Numeric factorization of `matrix` (same pattern as Configure() saw):
  /// scatters values, factors every piece (in parallel on `pool`; numeric
  /// refactorization when the piece already holds compatible factors),
  /// assembles and factors the Schur complement.  Throws SingularMatrixError
  /// when a piece or the interface block is singular — same contract as
  /// SparseLu::FactorOrRefactor, so Newton's rescue ladder applies unchanged.
  void FactorOrRefactor(const CscMatrix& matrix, util::ThreadPool* pool);

  /// Solves A x = b in place (b becomes x).  Requires FactorOrRefactor().
  /// Piece sweeps run in parallel on `pool`; interface math is serial.
  void Solve(std::span<double> b, util::ThreadPool* pool);

  /// Modeled makespan, in flop units, of one partitioned factor+solve cycle
  /// on `threads` workers: LPT-scheduled piece refactors + column-parallel
  /// Schur assembly + serial Schur factor/solve + LPT-scheduled piece solve
  /// sweeps.  Valid after FactorOrRefactor(); feeds bench_partition.
  double ModelFactorSolveMakespanFlops(int threads) const;
  /// Serial flops of the same cycle (= makespan at 1 thread).
  double SerialFactorSolveFlops() const;

 private:
  struct Piece {
    std::vector<int> globals;  ///< = plan interiors[k]
    CscMatrix a;               ///< interior x interior
    CscMatrix f;               ///< interior x interface (border column block)
    CscMatrix e;               ///< interface x interior (border row block)
    std::vector<int> a_src, f_src, e_src;  ///< global nnz index per local nnz
    /// Interface rows structurally reachable through this piece (rows
    /// present in e): the structural support of E_k · A_kk^{-1} · F_k(:,c).
    std::vector<int> interface_rows;
    SparseLu lu;
    std::vector<double> solve_work;  ///< per-piece triangular-solve scratch
    std::vector<double> z;           ///< interior intermediate / rhs slice
    // Last-cycle flop tallies for the makespan model.
    double factor_flops = 0.0;
    double solve_flops = 0.0;  ///< one triangular sweep
  };

  void ScatterValues(const CscMatrix& matrix);
  void AssembleSchur(util::ThreadPool* pool);

  std::shared_ptr<const BbdPlan> plan_;
  SparseLu::Options lu_options_;
  /// Shared across pieces: equal stripe patterns are ordered once.
  OrderingCache ordering_cache_;
  /// deque, not vector: Piece holds a SparseLu (non-movable atomics), so
  /// elements must construct in place and never relocate.
  std::deque<Piece> pieces_;
  CscMatrix c_;                   ///< interface x interface of A
  std::vector<int> c_src_;        ///< global nnz index per c_ nnz
  CscMatrix schur_;               ///< fixed structural pattern, refreshed values
  std::vector<int> c_to_schur_;   ///< schur_ value slot per c_ nnz
  SparseLu schur_lu_;
  std::vector<double> schur_work_;
  bool factored_ = false;
  double schur_factor_flops_last_ = 0.0;
  double schur_assembly_flops_last_ = 0.0;
  double schur_solve_flops_ = 0.0;  ///< one interface triangular sweep
  BbdStats stats_;
};

}  // namespace wavepipe::sparse
