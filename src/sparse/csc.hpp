// Compressed sparse column matrix.
//
// This is the storage the LU factorization and the MNA assembler work on.
// Row indices inside each column are kept sorted, which FindEntry() relies on
// (binary search) and which makes the pattern canonical: two assemblies of
// the same circuit produce bit-identical patterns, so LU symbolic reuse works.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace wavepipe::sparse {

class CscMatrix {
 public:
  CscMatrix() = default;

  /// Takes ownership of raw CSC arrays.  col_ptr has size cols+1; row index
  /// runs within each column must be sorted strictly ascending.
  CscMatrix(int rows, int cols, std::vector<int> col_ptr, std::vector<int> row_idx,
            std::vector<double> values);

  /// Builds an n x n identity.
  static CscMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t num_nonzeros() const { return row_idx_.size(); }

  std::span<const int> col_ptr() const { return col_ptr_; }
  std::span<const int> row_idx() const { return row_idx_; }
  std::span<const double> values() const { return values_; }
  std::span<double> mutable_values() { return values_; }

  int col_begin(int col) const { return col_ptr_[col]; }
  int col_end(int col) const { return col_ptr_[col + 1]; }
  int row_of(int k) const { return row_idx_[k]; }
  double value_of(int k) const { return values_[k]; }

  /// Index into values() of entry (row, col), or -1 if not in the pattern.
  /// O(log nnz(col)).
  int FindEntry(int row, int col) const;

  /// Sets all stored values to zero (pattern preserved).
  void ZeroValues();

  /// y = A * x.
  void Multiply(std::span<const double> x, std::span<double> y) const;
  /// y += alpha * A * x.
  void MultiplyAccumulate(std::span<const double> x, std::span<double> y,
                          double alpha = 1.0) const;
  /// y = A^T * x.
  void MultiplyTranspose(std::span<const double> x, std::span<double> y) const;

  CscMatrix Transpose() const;

  /// Pattern of A + A^T (values summed); used by the fill-reducing ordering.
  CscMatrix SymmetrizedPattern() const;

  /// Max absolute value within column `col` (0 if empty).
  double ColumnMaxAbs(int col) const;

  /// True if both matrices share an identical sparsity pattern.
  bool SamePattern(const CscMatrix& other) const;

  /// Human-readable dump (small matrices only; for debugging/tests).
  std::string ToDenseString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> col_ptr_{0};
  std::vector<int> row_idx_;
  std::vector<double> values_;
};

}  // namespace wavepipe::sparse
