#include "sparse/level_schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavepipe::sparse {

std::size_t LevelSchedule::widest_level() const {
  std::size_t widest = 0;
  for (int l = 0; l < num_levels(); ++l) widest = std::max(widest, Level(l).size());
  return widest;
}

LevelSchedule BuildLevelSchedule(std::span<const int> level_of) {
  LevelSchedule schedule;
  int num_levels = 0;
  for (int level : level_of) {
    WP_ASSERT(level >= 0);
    num_levels = std::max(num_levels, level + 1);
  }
  schedule.level_ptr_.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  for (int level : level_of) ++schedule.level_ptr_[static_cast<std::size_t>(level) + 1];
  for (int l = 0; l < num_levels; ++l) {
    schedule.level_ptr_[static_cast<std::size_t>(l) + 1] +=
        schedule.level_ptr_[static_cast<std::size_t>(l)];
  }
  schedule.nodes_.resize(level_of.size());
  std::vector<int> cursor(schedule.level_ptr_.begin(), schedule.level_ptr_.end() - 1);
  for (std::size_t v = 0; v < level_of.size(); ++v) {  // ascending id per level
    schedule.nodes_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(level_of[v])]++)] = static_cast<int>(v);
  }
  return schedule;
}

double ModelLevelMakespan(const LevelSchedule& schedule, std::span<const double> node_cost,
                          int threads, double barrier_cost) {
  const double k = static_cast<double>(std::max(1, threads));
  double total = 0.0;
  for (int l = 0; l < schedule.num_levels(); ++l) {
    double sum = 0.0, heaviest = 0.0;
    for (int node : schedule.Level(l)) {
      const double cost = node_cost[static_cast<std::size_t>(node)];
      sum += cost;
      heaviest = std::max(heaviest, cost);
    }
    total += std::max(sum / k, heaviest);
    if (threads > 1) total += barrier_cost;
  }
  return total;
}

}  // namespace wavepipe::sparse
