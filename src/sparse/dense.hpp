// Small dense matrix with LU solve.
//
// Reference implementation used by tests to cross-check the sparse LU, and a
// fallback for tiny systems where sparse bookkeeping costs more than it
// saves.
#pragma once

#include <span>
#include <vector>

namespace wavepipe::sparse {

class CscMatrix;

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols);

  static DenseMatrix FromCsc(const CscMatrix& sparse);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& At(int row, int col) { return data_[static_cast<std::size_t>(row) * cols_ + col]; }
  double At(int row, int col) const {
    return data_[static_cast<std::size_t>(row) * cols_ + col];
  }

  void Multiply(std::span<const double> x, std::span<double> y) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Dense LU with partial pivoting.  Throws SingularMatrixError.
class DenseLu {
 public:
  explicit DenseLu(const DenseMatrix& matrix);

  /// Solves A x = b in place.
  void Solve(std::span<double> b) const;

 private:
  int n_ = 0;
  std::vector<double> lu_;    // row-major packed LU
  std::vector<int> pivots_;   // row swaps
};

}  // namespace wavepipe::sparse
