#include "sparse/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/csc.hpp"
#include "util/error.hpp"

namespace wavepipe::sparse {

double Dot(std::span<const double> x, std::span<const double> y) {
  WP_ASSERT(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  WP_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double NormInf(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double Norm2(std::span<const double> x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}

double MaxAbsDiff(std::span<const double> x, std::span<const double> y) {
  WP_ASSERT(x.size() == y.size());
  double best = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) best = std::max(best, std::abs(x[i] - y[i]));
  return best;
}

void Residual(const CscMatrix& a, std::span<const double> x, std::span<const double> b,
              std::span<double> r) {
  WP_ASSERT(r.size() == b.size());
  if (r.data() != b.data()) std::copy(b.begin(), b.end(), r.begin());
  a.MultiplyAccumulate(x, r, -1.0);
}

double WrmsNorm(std::span<const double> x, std::span<const double> weights) {
  WP_ASSERT(x.size() == weights.size());
  if (x.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = x[i] / weights[i];
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(x.size()));
}

void BuildErrorWeights(std::span<const double> ref, double reltol,
                       std::span<const double> abstol, std::span<double> weights) {
  WP_ASSERT(ref.size() == weights.size());
  WP_ASSERT(abstol.size() == weights.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    weights[i] = reltol * std::abs(ref[i]) + abstol[i];
  }
}

}  // namespace wavepipe::sparse
