#include "sparse/triplet.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/csc.hpp"
#include "util/error.hpp"

namespace wavepipe::sparse {

TripletBuilder::TripletBuilder(int rows, int cols) : rows_(rows), cols_(cols) {
  WP_ASSERT(rows >= 0 && cols >= 0);
}

void TripletBuilder::Add(int row, int col, double value) {
  WP_ASSERT(row >= 0 && row < rows_);
  WP_ASSERT(col >= 0 && col < cols_);
  row_.push_back(row);
  col_.push_back(col);
  value_.push_back(value);
}

CscMatrix TripletBuilder::ToCsc() const {
  const std::size_t nnz_in = row_.size();

  // Counting sort by (col, row): stable two-pass radix over row then col.
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (col_[a] != col_[b]) return col_[a] < col_[b];
    return row_[a] < row_[b];
  });

  std::vector<int> col_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  std::vector<int> row_idx;
  std::vector<double> values;
  row_idx.reserve(nnz_in);
  values.reserve(nnz_in);

  int last_col = -1;
  int last_row = -1;
  for (std::size_t k : order) {
    const int r = row_[k];
    const int c = col_[k];
    if (c == last_col && r == last_row) {
      values.back() += value_[k];  // duplicate: MNA superposition
      continue;
    }
    row_idx.push_back(r);
    values.push_back(value_[k]);
    ++col_ptr[static_cast<std::size_t>(c) + 1];
    last_col = c;
    last_row = r;
  }
  for (int c = 0; c < cols_; ++c) col_ptr[c + 1] += col_ptr[c];

  return CscMatrix(rows_, cols_, std::move(col_ptr), std::move(row_idx), std::move(values));
}

void TripletBuilder::Clear() {
  row_.clear();
  col_.clear();
  value_.clear();
}

}  // namespace wavepipe::sparse
