#include "sparse/bbd.hpp"

#include <algorithm>
#include <functional>
#include <future>
#include <string>

#include "sparse/triplet.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace wavepipe::sparse {

std::size_t BbdPlan::LargestPiece() const {
  std::size_t largest = 0;
  for (const auto& interior : interiors) largest = std::max(largest, interior.size());
  return largest;
}

std::size_t BbdPlan::SmallestPiece() const {
  if (interiors.empty()) return 0;
  std::size_t smallest = interiors.front().size();
  for (const auto& interior : interiors) smallest = std::min(smallest, interior.size());
  return smallest;
}

double BbdPlan::Imbalance() const {
  std::size_t total = 0;
  for (const auto& interior : interiors) total += interior.size();
  if (total == 0 || interiors.empty()) return 1.0;
  const double ideal = static_cast<double>(total) / static_cast<double>(interiors.size());
  return static_cast<double>(LargestPiece()) / ideal;
}

bool BbdPlan::Validate(const CscMatrix& pattern) const {
  if (pattern.cols() != dimension || pattern.rows() != dimension) return false;
  if (static_cast<int>(piece_of.size()) != dimension) return false;
  if (static_cast<int>(local_index.size()) != dimension) return false;
  for (int col = 0; col < dimension; ++col) {
    const int pc = piece_of[col];
    if (pc == kInterface) continue;
    for (int k = pattern.col_begin(col); k < pattern.col_end(col); ++k) {
      const int pr = piece_of[pattern.row_of(k)];
      if (pr != kInterface && pr != pc) return false;  // interior-to-interior coupling
    }
  }
  return true;
}

void BbdStats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("partition.pieces", static_cast<std::uint64_t>(pieces));
  registry.Count("partition.interface_size", interface_size);
  registry.Value("partition.piece_imbalance", piece_imbalance);
  registry.Count("partition.full_factors", full_factor_count);
  registry.Count("partition.refactors", refactor_count);
  registry.Count("partition.solves", solve_count);
  registry.Count("partition.schur_factors", schur_factor_count);
  registry.Count("partition.schur_nnz", schur_nnz);
  registry.Value("partition.schur_seconds", schur_seconds);
  registry.Count("partition.piece_factor_flops", piece_factor_flops);
  registry.Count("partition.schur_assembly_flops", schur_assembly_flops);
  registry.Count("partition.schur_factor_flops", schur_factor_flops);
  registry.Count("partition.piece_solve_flops", piece_solve_flops);
}

void BbdSolver::Configure(std::shared_ptr<const BbdPlan> plan, const CscMatrix& pattern,
                          const SparseLu::Options& lu_options) {
  WP_ASSERT(plan != nullptr);
  if (!plan->Validate(pattern)) {
    throw Error("BbdSolver: pattern violates the plan's separator property");
  }
  plan_ = std::move(plan);
  lu_options_ = lu_options;
  factored_ = false;
  stats_ = BbdStats{};
  stats_.pieces = plan_->num_pieces;
  stats_.interface_size = plan_->interface_nodes.size();
  stats_.piece_imbalance = plan_->Imbalance();

  const int n_if = static_cast<int>(plan_->interface_nodes.size());
  pieces_.clear();
  pieces_.resize(static_cast<std::size_t>(plan_->num_pieces));

  // Sub-patterns.  Every global entry lands in exactly one block: the
  // separator property leaves no interior-to-interior coupling across pieces.
  std::vector<TripletBuilder> a_build, f_build, e_build;
  for (int k = 0; k < plan_->num_pieces; ++k) {
    Piece& piece = pieces_[static_cast<std::size_t>(k)];
    piece.globals = plan_->interiors[static_cast<std::size_t>(k)];
    const int nk = static_cast<int>(piece.globals.size());
    a_build.emplace_back(nk, nk);
    f_build.emplace_back(nk, n_if);
    e_build.emplace_back(n_if, nk);
  }
  TripletBuilder c_build(n_if, n_if);

  for (int col = 0; col < pattern.cols(); ++col) {
    const int pc = plan_->piece_of[col];
    const int lc = plan_->local_index[col];
    for (int k = pattern.col_begin(col); k < pattern.col_end(col); ++k) {
      const int row = pattern.row_of(k);
      const int pr = plan_->piece_of[row];
      const int lr = plan_->local_index[row];
      if (pc != BbdPlan::kInterface) {
        if (pr == pc) {
          a_build[static_cast<std::size_t>(pc)].AddPattern(lr, lc);
        } else {
          e_build[static_cast<std::size_t>(pc)].AddPattern(lr, lc);
        }
      } else if (pr != BbdPlan::kInterface) {
        f_build[static_cast<std::size_t>(pr)].AddPattern(lr, lc);
      } else {
        c_build.AddPattern(lr, lc);
      }
    }
  }

  // Compress and build the value scatter maps: src[local nnz] = global nnz.
  // Each global entry maps to exactly one block slot, so a second pattern
  // sweep with FindEntry() fills the maps completely.
  for (int k = 0; k < plan_->num_pieces; ++k) {
    Piece& piece = pieces_[static_cast<std::size_t>(k)];
    piece.a = a_build[static_cast<std::size_t>(k)].ToCsc();
    piece.f = f_build[static_cast<std::size_t>(k)].ToCsc();
    piece.e = e_build[static_cast<std::size_t>(k)].ToCsc();
    piece.a_src.assign(piece.a.num_nonzeros(), -1);
    piece.f_src.assign(piece.f.num_nonzeros(), -1);
    piece.e_src.assign(piece.e.num_nonzeros(), -1);
    piece.lu.Reset(lu_options_);
    piece.lu.set_ordering_cache(&ordering_cache_);
    piece.interface_rows.clear();
    for (int r : piece.e.row_idx()) piece.interface_rows.push_back(r);
    std::sort(piece.interface_rows.begin(), piece.interface_rows.end());
    piece.interface_rows.erase(
        std::unique(piece.interface_rows.begin(), piece.interface_rows.end()),
        piece.interface_rows.end());
  }
  c_ = c_build.ToCsc();
  c_src_.assign(c_.num_nonzeros(), -1);

  for (int col = 0; col < pattern.cols(); ++col) {
    const int pc = plan_->piece_of[col];
    const int lc = plan_->local_index[col];
    for (int k = pattern.col_begin(col); k < pattern.col_end(col); ++k) {
      const int row = pattern.row_of(k);
      const int pr = plan_->piece_of[row];
      const int lr = plan_->local_index[row];
      if (pc != BbdPlan::kInterface) {
        Piece& piece = pieces_[static_cast<std::size_t>(pc)];
        if (pr == pc) {
          piece.a_src[static_cast<std::size_t>(piece.a.FindEntry(lr, lc))] = k;
        } else {
          piece.e_src[static_cast<std::size_t>(piece.e.FindEntry(lr, lc))] = k;
        }
      } else if (pr != BbdPlan::kInterface) {
        Piece& piece = pieces_[static_cast<std::size_t>(pr)];
        piece.f_src[static_cast<std::size_t>(piece.f.FindEntry(lr, lc))] = k;
      } else {
        c_src_[static_cast<std::size_t>(c_.FindEntry(lr, lc))] = k;
      }
    }
  }

  // Structural Schur pattern: C's pattern, the diagonal, and — for every
  // interface column a piece couples into — all interface rows reachable
  // through that piece (the support of E_k · A_kk^{-1} · F_k(:,c)).  Fixed
  // across refactors; structural zeros are stored, never dropped, so the
  // pattern (and SparseLu's symbolic reuse) is stable.
  TripletBuilder schur_build(n_if, n_if);
  for (int c = 0; c < n_if; ++c) {
    schur_build.AddPattern(c, c);
    for (int k = c_.col_begin(c); k < c_.col_end(c); ++k) {
      schur_build.AddPattern(c_.row_of(k), c);
    }
    for (const Piece& piece : pieces_) {
      if (piece.f.col_begin(c) == piece.f.col_end(c)) continue;
      for (int r : piece.interface_rows) schur_build.AddPattern(r, c);
    }
  }
  schur_ = schur_build.ToCsc();
  stats_.schur_nnz = schur_.num_nonzeros();
  c_to_schur_.assign(c_.num_nonzeros(), -1);
  for (int c = 0; c < n_if; ++c) {
    for (int k = c_.col_begin(c); k < c_.col_end(c); ++k) {
      c_to_schur_[static_cast<std::size_t>(k)] = schur_.FindEntry(c_.row_of(k), c);
    }
  }
  schur_lu_.Reset(lu_options_);
  schur_work_.assign(static_cast<std::size_t>(n_if), 0.0);
}

void BbdSolver::ScatterValues(const CscMatrix& matrix) {
  const auto src = matrix.values();
  for (Piece& piece : pieces_) {
    auto scatter = [&src](CscMatrix& block, const std::vector<int>& map) {
      auto dst = block.mutable_values();
      for (std::size_t i = 0; i < map.size(); ++i) dst[i] = src[map[i]];
    };
    scatter(piece.a, piece.a_src);
    scatter(piece.f, piece.f_src);
    scatter(piece.e, piece.e_src);
  }
  auto dst = c_.mutable_values();
  for (std::size_t i = 0; i < c_src_.size(); ++i) dst[i] = src[c_src_[i]];
}

void BbdSolver::FactorOrRefactor(const CscMatrix& matrix, util::ThreadPool* pool) {
  WP_ASSERT(configured());
  WP_ASSERT(matrix.cols() == plan_->dimension);
  factored_ = false;
  ScatterValues(matrix);

  std::uint64_t full_before = 0, re_before = 0;
  for (const Piece& piece : pieces_) {
    full_before += piece.lu.stats().factor_count;
    re_before += piece.lu.stats().refactor_count;
  }

  {
    WP_TSPAN("factor", "bbd_pieces");
    auto factor_piece = [](Piece& piece) {
      if (piece.globals.empty()) return;
      const std::uint64_t flops_before = piece.lu.stats().factor_flops;
      // Pieces are the parallel grain; each factors with the serial kernels.
      piece.lu.FactorOrRefactor(piece.a);
      const auto& s = piece.lu.stats();
      piece.factor_flops = static_cast<double>(s.factor_flops - flops_before);
      piece.solve_flops =
          static_cast<double>(s.nnz_l + s.nnz_u) + static_cast<double>(piece.globals.size());
    };
    if (pool != nullptr && pool->size() > 1 && pieces_.size() > 1) {
      std::vector<std::future<void>> futures;
      futures.reserve(pieces_.size());
      for (Piece& piece : pieces_) {
        futures.push_back(pool->Submit([&piece, &factor_piece] { factor_piece(piece); }));
      }
      // Drain every future before rethrowing so no sibling task dangles;
      // the first failure (by piece order) wins, matching the serial loop.
      std::exception_ptr first_error;
      for (auto& future : futures) {
        try {
          future.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    } else {
      for (Piece& piece : pieces_) factor_piece(piece);
    }
  }

  std::uint64_t full_after = 0, re_after = 0, factor_flops = 0;
  for (const Piece& piece : pieces_) {
    full_after += piece.lu.stats().factor_count;
    re_after += piece.lu.stats().refactor_count;
    factor_flops += static_cast<std::uint64_t>(piece.factor_flops);
  }
  stats_.piece_factor_flops += factor_flops;
  if (full_after > full_before) {
    stats_.full_factor_count += 1;
  } else {
    stats_.refactor_count += 1;
  }
  (void)re_before;
  (void)re_after;

  if (!plan_->interface_nodes.empty()) {
    util::WallTimer schur_timer;
    AssembleSchur(pool);
    {
      WP_TSPAN("factor", "schur_factor");
      // Fault site: the interface (or a degenerate piece) block turns
      // singular.  Surfaces as SingularMatrixError so Newton's step-shrink /
      // rescue ladder handles a failed partitioned factorization exactly
      // like a failed monolithic one.
      if (WP_FAULT_POINT("schur.factor")) {
        throw SingularMatrixError("injected schur.factor pivot failure");
      }
      const std::uint64_t flops_before = schur_lu_.stats().factor_flops;
      schur_lu_.FactorOrRefactor(schur_);
      const auto& s = schur_lu_.stats();
      schur_factor_flops_last_ = static_cast<double>(s.factor_flops - flops_before);
      schur_solve_flops_ = static_cast<double>(s.nnz_l + s.nnz_u) +
                           static_cast<double>(plan_->interface_nodes.size());
    }
    stats_.schur_factor_count += 1;
    stats_.schur_factor_flops += static_cast<std::uint64_t>(schur_factor_flops_last_);
    stats_.schur_seconds += schur_timer.Seconds();
  }
  factored_ = true;
}

void BbdSolver::AssembleSchur(util::ThreadPool* pool) {
  WP_TSPAN("factor", "schur_assembly");
  const int n_if = static_cast<int>(plan_->interface_nodes.size());
  std::uint64_t solve_flops_before = 0;
  for (const Piece& piece : pieces_) solve_flops_before += piece.lu.stats().solve_flops;

  schur_.ZeroValues();
  auto schur_values = schur_.mutable_values();

  // Columns are independent: each computes its own dense interface column
  // and writes a disjoint slice of schur_'s value array.  Accumulation order
  // within a column is fixed (pieces ascending), so chunking over a pool
  // changes nothing but wall clock.
  auto do_columns = [&](int col_begin, int col_end) {
    std::vector<double> dense(static_cast<std::size_t>(n_if), 0.0);
    std::vector<double> w;
    std::vector<double> work;
    for (int c = col_begin; c < col_end; ++c) {
      std::fill(dense.begin(), dense.end(), 0.0);
      for (const Piece& piece : pieces_) {
        const int fb = piece.f.col_begin(c);
        const int fe = piece.f.col_end(c);
        if (fb == fe) continue;
        w.assign(piece.globals.size(), 0.0);
        for (int k = fb; k < fe; ++k) w[piece.f.row_of(k)] = piece.f.value_of(k);
        piece.lu.Solve(w, work);  // w = A_kk^{-1} F_k(:, c)
        piece.e.MultiplyAccumulate(w, dense, -1.0);
      }
      for (int k = schur_.col_begin(c); k < schur_.col_end(c); ++k) {
        schur_values[k] = dense[schur_.row_of(k)];
      }
    }
  };

  if (pool != nullptr && pool->size() > 1 && n_if > 1) {
    const int chunks = std::min<int>(static_cast<int>(pool->size()) * 2, n_if);
    const int per_chunk = (n_if + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    for (int begin = 0; begin < n_if; begin += per_chunk) {
      const int end = std::min(begin + per_chunk, n_if);
      futures.push_back(pool->Submit([&do_columns, begin, end] { do_columns(begin, end); }));
    }
    std::exception_ptr first_error;
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    do_columns(0, n_if);
  }

  // S = C - sum_k E_k A_kk^{-1} F_k: the dense columns above wrote the sum
  // term; add C's values on top (serial, fixed order).
  for (std::size_t i = 0; i < c_src_.size(); ++i) {
    schur_values[c_to_schur_[i]] += c_.value_of(static_cast<int>(i));
  }

  std::uint64_t solve_flops_after = 0;
  for (const Piece& piece : pieces_) solve_flops_after += piece.lu.stats().solve_flops;
  stats_.schur_assembly_flops += solve_flops_after - solve_flops_before;
  schur_assembly_flops_last_ = static_cast<double>(solve_flops_after - solve_flops_before);
}

void BbdSolver::Solve(std::span<double> b, util::ThreadPool* pool) {
  WP_ASSERT(factored_);
  WP_ASSERT(static_cast<int>(b.size()) == plan_->dimension);
  WP_TSPAN("solve", "bbd_solve");
  const std::size_t n_if = plan_->interface_nodes.size();
  std::uint64_t solve_flops_before = 0;
  for (const Piece& piece : pieces_) solve_flops_before += piece.lu.stats().solve_flops;

  auto run_pieces = [&](auto&& body) {
    if (pool != nullptr && pool->size() > 1 && pieces_.size() > 1) {
      std::vector<std::future<void>> futures;
      futures.reserve(pieces_.size());
      for (Piece& piece : pieces_) {
        futures.push_back(pool->Submit([&piece, &body] { body(piece); }));
      }
      std::exception_ptr first_error;
      for (auto& future : futures) {
        try {
          future.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    } else {
      for (Piece& piece : pieces_) body(piece);
    }
  };

  // Forward sweep: z_k = A_kk^{-1} b_k, all pieces independent.
  run_pieces([&b](Piece& piece) {
    if (piece.globals.empty()) return;
    piece.z.resize(piece.globals.size());
    for (std::size_t i = 0; i < piece.globals.size(); ++i) piece.z[i] = b[piece.globals[i]];
    piece.lu.Solve(piece.z, piece.solve_work);
  });

  if (n_if > 0) {
    // Interface residual and solve: g = b_c - sum_k E_k z_k; x_c = S^{-1} g.
    schur_work_.resize(n_if);
    for (std::size_t i = 0; i < n_if; ++i) schur_work_[i] = b[plan_->interface_nodes[i]];
    for (Piece& piece : pieces_) {
      if (piece.globals.empty()) continue;
      piece.e.MultiplyAccumulate(piece.z, schur_work_, -1.0);
    }
    std::vector<double> schur_scratch;
    schur_lu_.Solve(schur_work_, schur_scratch);

    // Back-substitution: x_k = A_kk^{-1} (b_k - F_k x_c).  Re-solving here
    // instead of keeping W_k = A_kk^{-1} F_k trades one extra sweep per
    // solve for not storing a dense n_k x n_if map per piece.
    run_pieces([&b, this](Piece& piece) {
      if (piece.globals.empty()) return;
      for (std::size_t i = 0; i < piece.globals.size(); ++i) piece.z[i] = b[piece.globals[i]];
      piece.f.MultiplyAccumulate(schur_work_, piece.z, -1.0);
      piece.lu.Solve(piece.z, piece.solve_work);
      for (std::size_t i = 0; i < piece.globals.size(); ++i) b[piece.globals[i]] = piece.z[i];
    });
    for (std::size_t i = 0; i < n_if; ++i) b[plan_->interface_nodes[i]] = schur_work_[i];
  } else {
    for (Piece& piece : pieces_) {
      for (std::size_t i = 0; i < piece.globals.size(); ++i) b[piece.globals[i]] = piece.z[i];
    }
  }

  std::uint64_t solve_flops_after = 0;
  for (const Piece& piece : pieces_) solve_flops_after += piece.lu.stats().solve_flops;
  stats_.piece_solve_flops += solve_flops_after - solve_flops_before;
  stats_.solve_count += 1;
}

double BbdSolver::ModelFactorSolveMakespanFlops(int threads) const {
  WP_ASSERT(threads >= 1);
  // LPT (longest-processing-time) list schedule: deterministic lower-bound
  // style makespan for independent piece tasks on `threads` workers.
  auto lpt = [threads](std::vector<double> costs) {
    std::sort(costs.begin(), costs.end(), std::greater<double>());
    std::vector<double> bins(static_cast<std::size_t>(threads), 0.0);
    for (double cost : costs) {
      *std::min_element(bins.begin(), bins.end()) += cost;
    }
    return *std::max_element(bins.begin(), bins.end());
  };
  std::vector<double> factor_costs, solve_costs;
  double border_flops = 0.0;
  for (const Piece& piece : pieces_) {
    factor_costs.push_back(piece.factor_flops);
    solve_costs.push_back(piece.solve_flops);
    border_flops += static_cast<double>(piece.e.num_nonzeros() + piece.f.num_nonzeros());
  }
  // Factor phase: parallel piece factors, column-parallel Schur assembly,
  // serial Schur factor.  Solve phase: two parallel piece sweeps around the
  // serial interface gather/solve.
  return lpt(factor_costs) + schur_assembly_flops_last_ / threads +
         schur_factor_flops_last_ + 2.0 * lpt(solve_costs) + schur_solve_flops_ +
         border_flops;
}

double BbdSolver::SerialFactorSolveFlops() const {
  double total = schur_assembly_flops_last_ + schur_factor_flops_last_ + schur_solve_flops_;
  for (const Piece& piece : pieces_) {
    total += piece.factor_flops + 2.0 * piece.solve_flops +
             static_cast<double>(piece.e.num_nonzeros() + piece.f.num_nonzeros());
  }
  return total;
}

}  // namespace wavepipe::sparse
