// Fill-reducing column orderings for sparse LU.
//
// MNA matrices of real circuits are nearly structurally symmetric, so a
// symmetric minimum-degree ordering on the pattern of A + A^T works well —
// the same choice classic SPICE makes (Markowitz on a nearly symmetric
// pattern degenerates to minimum degree).
#pragma once

#include <vector>

namespace wavepipe::sparse {

class CscMatrix;

/// Minimum-degree ordering of the undirected graph of A + A^T.
/// Returns a permutation `order` with order[k] = the k-th pivot, i.e. columns
/// of A should be eliminated in the sequence order[0], order[1], ...
/// Uses a quotient-graph-free eager elimination (adjacency merging), which is
/// O(n * avg_fill) — fine for the 10^2..10^5 unknowns this project targets.
std::vector<int> MinimumDegreeOrder(const CscMatrix& matrix);

/// Natural (identity) ordering, as a baseline for the micro benchmarks.
std::vector<int> NaturalOrder(int n);

/// Reverse Cuthill-McKee ordering of A + A^T: bandwidth-reducing alternative
/// used in the ordering ablation micro bench.
std::vector<int> ReverseCuthillMcKeeOrder(const CscMatrix& matrix);

/// Validates that `order` is a permutation of 0..n-1.
bool IsPermutation(const std::vector<int>& order, int n);

}  // namespace wavepipe::sparse
