#include "parallel/fine_grained.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "engine/dcop.hpp"
#include "engine/integrator.hpp"
#include "engine/resilience.hpp"
#include "engine/step_control.hpp"
#include "partition/partitioner.hpp"
#include "util/error.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace wavepipe::parallel {

void PhaseBreakdown::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Value("phases.model_eval_seconds", model_eval);
  registry.Value("phases.reduction_seconds", reduction);
  registry.Value("phases.lu_seconds", lu);
  registry.Value("phases.control_seconds", control);
  registry.Value("phases.total_seconds", Total());
}
namespace {

using engine::SolveContext;

/// Thin wrapper that routes engine::EvalDevices through a DeviceAssembler
/// (reduction or colored, see parallel/coloring.hpp) and converts the
/// assembler's phase clock into the PhaseBreakdown the bench/model expect.
class FineGrainedEvaluator {
 public:
  FineGrainedEvaluator(const engine::Circuit& circuit, const engine::MnaStructure& structure,
                       const FineGrainedOptions& options) {
    // One pool serves both colored stamping and level-scheduled LU: the two
    // phases alternate within a Newton iteration, never overlap.
    const int pool_size = std::max(options.threads, options.factor_threads);
    if (pool_size > 1) {
      pool_ = std::make_unique<util::ThreadPool>(static_cast<unsigned>(pool_size));
    }
    assembler_ = MakeAssembler(options.assembly, circuit, structure, options.threads,
                               options.coloring, pool_.get());
    if (options.factor_threads > 1) factor_pool_ = pool_.get();
  }

  /// Delegates the zero+stamp half of this context's EvalDevices calls and
  /// routes its LU through the shared pool (when factor_threads >= 2).
  void Attach(SolveContext& ctx) {
    ctx.assembler = assembler_.get();
    ctx.factor_pool = factor_pool_;
  }

  engine::AssemblyStats stats() const { return assembler_->stats(); }

  /// Breaker re-probe hooks: the originally configured strategy objects, so
  /// a half-open parallel-assembly/factor breaker can restore exactly what
  /// it degraded (engine/resilience.hpp).
  engine::DeviceAssembler* assembler() const { return assembler_.get(); }
  util::ThreadPool* factor_pool() const { return factor_pool_; }
  /// Worker pool (null for 1-thread runs) — heartbeat source for the stall
  /// watchdog.
  util::ThreadPool* pool() const { return pool_.get(); }

  void Eval(SolveContext& ctx, const engine::NewtonInputs& inputs, bool limit_valid,
            bool first_iteration, PhaseBreakdown& phases) {
    const engine::AssemblyStats before = assembler_->stats();
    engine::EvalDevices(ctx, inputs, limit_valid, first_iteration);
    const engine::AssemblyStats after = assembler_->stats();
    // Zero + stamp is the distributable work; the merge sweep (reduction) or
    // the color barriers (colored) are the parallelization overhead.
    phases.model_eval += (after.zero_seconds - before.zero_seconds) +
                         (after.stamp_seconds - before.stamp_seconds);
    phases.reduction += after.merge_seconds - before.merge_seconds;
  }

 private:
  std::unique_ptr<util::ThreadPool> pool_;  ///< shared: assembly + factorization
  std::unique_ptr<engine::DeviceAssembler> assembler_;
  util::ThreadPool* factor_pool_ = nullptr;  ///< pool_.get() when factor_threads >= 2
};

/// Newton loop on top of the parallel evaluator (mirrors engine::SolveNewton).
engine::NewtonStats SolveNewtonFineGrained(FineGrainedEvaluator& evaluator,
                                           SolveContext& ctx,
                                           const engine::NewtonInputs& inputs,
                                           const engine::SimOptions& options,
                                           int max_iterations, PhaseBreakdown& phases) {
  const int n = ctx.structure().dimension();
  const int num_nodes = ctx.circuit().num_nodes();
  engine::NewtonStats stats;

  // Every chord decision — attempt gates (fill-ratio, backoff, a0 drift),
  // trust-gated acceptance, safety nets — is the shared ChordPolicy, the
  // same object engine::SolveNewton runs, so the two loops cannot drift.
  engine::ChordPolicy chord(ctx, inputs, options);

  bool limit_valid = false;
  for (int iter = 0; iter < max_iterations; ++iter) {
    stats.iterations = iter + 1;
    ++ctx.total_newton_iterations;
    ctx.heartbeat.fetch_add(1, std::memory_order_relaxed);
    try {
      evaluator.Eval(ctx, inputs, limit_valid, iter == 0, phases);
    } catch (const SingularMatrixError&) {
      // ReducedSubnet interior pivot failure ("reduce.singular" or real):
      // classified as a failed solve, same as a singular BBD/LU pivot below.
      stats.converged = false;
      stats.singular = true;
      stats.final_delta = std::numeric_limits<double>::infinity();
      chord.Settle(false);
      return stats;
    }
    limit_valid = true;

    util::ThreadCpuTimer lu_timer;
    if (chord.ShouldUseChord(iter)) {
      WP_TSPAN("solve", "chord_step");
      chord.BeginChordStep(stats);
      std::copy(ctx.x.begin(), ctx.x.end(), ctx.x_new.begin());
      ctx.lu.ChordStep(ctx.matrix, ctx.rhs, ctx.x_new, ctx.refine_work, ctx.lu_work,
                       ctx.factor_pool);
    } else if (ctx.partition_active()) {
      // BBD path, mirroring engine::SolveNewton: per-piece parallel factors
      // + Schur coupling on the shared pool.  A singular piece or Schur
      // pivot (including the injected schur.factor fault) is attributed to
      // THIS Newton solve — a failed solve the step-shrink ladder owns, not
      // an unwound run.
      const auto before_full = ctx.bbd.stats().full_factor_count;
      const auto before_re = ctx.bbd.stats().refactor_count;
      try {
        WP_TSPAN("factor", "bbd_factor");
        ctx.bbd.FactorOrRefactor(ctx.matrix, ctx.factor_pool);
      } catch (const SingularMatrixError&) {
        stats.converged = false;
        stats.singular = true;
        stats.final_delta = std::numeric_limits<double>::infinity();
        chord.Settle(false);
        return stats;
      }
      stats.lu_full_factors +=
          static_cast<int>(ctx.bbd.stats().full_factor_count - before_full);
      stats.lu_refactors += static_cast<int>(ctx.bbd.stats().refactor_count - before_re);
      ctx.RecordFactorSeeds(ctx.bbd_seeds,
                            ctx.bbd.stats().full_factor_count != before_full);
      std::copy(ctx.rhs.begin(), ctx.rhs.end(), ctx.x_new.begin());
      ctx.bbd.Solve(ctx.x_new, ctx.factor_pool);
    } else {
      const auto before_factor = ctx.lu.stats().factor_count;
      const auto before_refactor = ctx.lu.stats().refactor_count;
      chord.NoteFactorAttempt();  // reuse state stays invalid if this throws
      try {
        WP_TSPAN("factor", "lu_factor");
        ctx.lu.FactorOrRefactor(ctx.matrix, ctx.factor_pool);
      } catch (const SingularMatrixError&) {
        stats.converged = false;
        stats.singular = true;
        stats.final_delta = std::numeric_limits<double>::infinity();
        chord.Settle(false);
        return stats;
      }
      stats.lu_full_factors += static_cast<int>(ctx.lu.stats().factor_count - before_factor);
      stats.lu_refactors += static_cast<int>(ctx.lu.stats().refactor_count - before_refactor);
      ctx.RecordFactorSeeds(ctx.lu_seeds,
                            ctx.lu.stats().factor_count != before_factor);
      chord.NoteFreshFactor();
      WP_TSPAN("solve", "triangular_solve");
      std::copy(ctx.rhs.begin(), ctx.rhs.end(), ctx.x_new.begin());
      ctx.lu.SolveParallel(ctx.x_new, ctx.lu_work, ctx.factor_pool);
    }
    phases.lu += lu_timer.Seconds();

    double worst = 0.0;
    bool finite = true;
    for (int i = 0; i < n; ++i) {
      const double xn = ctx.x_new[i];
      if (!std::isfinite(xn)) {
        finite = false;
        break;
      }
      const double tol = options.reltol * std::max(std::abs(xn), std::abs(ctx.x[i])) +
                         (i < num_nodes ? options.vntol : options.abstol);
      worst = std::max(worst, std::abs(xn - ctx.x[i]) / tol);
    }
    if (!finite) {
      stats.converged = false;
      stats.final_delta = std::numeric_limits<double>::infinity();
      chord.Settle(false);
      return stats;
    }
    std::swap(ctx.x, ctx.x_new);
    stats.final_delta = worst;

    // Same convergence protocol as engine::SolveNewton (incl. hot-start fast
    // acceptance) so both paths take identical step sequences; the chord
    // policy withholds acceptance from untrusted stale-factor iterates.
    const bool hot_start_accept = worst <= 0.05;
    const bool confirmed =
        worst <= 1.0 &&
        (iter >= 1 || !ctx.circuit().is_nonlinear() || inputs.trusted_seed);
    if (chord.FinishIteration(worst, confirmed || hot_start_accept, stats)) {
      stats.converged = true;
      if (worst > 0.1) {
        try {
          evaluator.Eval(ctx, inputs, /*limit_valid=*/true, /*first_iteration=*/false,
                         phases);
        } catch (const SingularMatrixError&) {
          stats.converged = false;
          stats.singular = true;
          stats.final_delta = std::numeric_limits<double>::infinity();
          chord.Settle(false);
          return stats;
        }
      }
      chord.Settle(true);
      return stats;
    }
  }
  stats.converged = false;
  chord.Settle(false);
  return stats;
}

}  // namespace

FineGrainedResult RunTransientFineGrained(const engine::Circuit& circuit,
                                          const engine::MnaStructure& structure,
                                          const engine::TransientSpec& spec,
                                          const FineGrainedOptions& options) {
  util::telemetry::ScopedLane lane(0, "fine-grained");
  util::WallTimer total_timer;
  FineGrainedResult result;
  result.trace = engine::Trace(spec.probes.size() > 0
                                   ? spec.probes
                                   : engine::ProbeSet::FirstNodes(circuit.num_nodes(), 16));

  // Durable-run machinery (engine/resilience.hpp); inert with the default
  // ResilienceOptions.  `live` is the options block breakers may degrade.
  const engine::ResilienceOptions& res = options.sim.resilience;
  engine::SimOptions live = options.sim;
  engine::ResilienceStats& rstats = result.resilience;
  engine::CheckpointSink sink(res, rstats);
  const engine::RunBudget run_budget(res);
  engine::StallWatchdog watchdog(res, rstats);
  engine::BreakerBoard breakers(res, rstats);

  FineGrainedEvaluator evaluator(circuit, structure, options);
  SolveContext ctx(circuit, structure);
  if (options.sim.ordering_cache != nullptr) {
    ctx.lu.set_ordering_cache(options.sim.ordering_cache);
  }
  ctx.record_factor_seeds = sink.enabled();
  watchdog.AddSource(&ctx.heartbeat);
  if (evaluator.pool() != nullptr) {
    watchdog.AddSource(&evaluator.pool()->tasks_started_heartbeat());
    watchdog.AddSource(&evaluator.pool()->tasks_completed_heartbeat());
  }
  watchdog.Start();
  result.last_good_time = spec.tstart;

  engine::History history(options.sim.history_depth);

  if (res.resume == nullptr) {
    // DC operating point (reuses the serial path; the phase split targets
    // the transient loop, which dominates).
    const engine::DcopResult dcop =
        engine::SolveDcOperatingPoint(ctx, options.sim, spec.initial_conditions);
    result.stats.dcop_strategy = dcop.strategy;
  }

  // From here on every EvalDevices on this context goes through the
  // assembler.
  evaluator.Attach(ctx);
  ctx.ConfigureAcceleration(options.sim);
  if (options.sim.partition_pieces > 0) {
    ctx.ConfigurePartition(
        options.sim.partition_plan != nullptr
            ? options.sim.partition_plan
            : partition::PartitionPattern(structure.pattern(),
                                          options.sim.partition_pieces));
  }

  const engine::StepLimits limits = engine::StepLimits::FromSpec(spec, options.sim);
  std::vector<double> breakpoints = circuit.CollectBreakpoints(spec.tstart, spec.tstop);
  std::size_t next_bp = 0;

  double h = limits.h0;
  bool restart = true;
  int steps_since_restart = 0;
  std::uint64_t process_steps = 0;   // accepted steps THIS process (budget basis)
  std::uint64_t process_newton = 0;  // Newton iterations THIS process

  // Priming counters excluded from the absorbed partition stats (see the
  // serial engine for the rationale).
  sparse::BbdStats bbd_prime_base{};
  const auto net_bbd_stats = [&]() {
    sparse::BbdStats s = ctx.bbd.stats();
    s.full_factor_count -= bbd_prime_base.full_factor_count;
    s.refactor_count -= bbd_prime_base.refactor_count;
    s.solve_count -= bbd_prime_base.solve_count;
    s.schur_factor_count -= bbd_prime_base.schur_factor_count;
    s.schur_seconds -= bbd_prime_base.schur_seconds;
    return s;
  };

  if (res.resume != nullptr) {
    const engine::TransientCheckpoint& ck = *res.resume;
    engine::ValidateResume(ck, "fine-grained", "", options.sim.partition_pieces,
                           static_cast<std::uint64_t>(ctx.x.size()),
                           result.trace.probes().size(), spec.tstop);
    rstats.ckpt_resumed = 1;
    result.stats = ck.stats;
    for (const auto& p : ck.history) {
      auto point = std::make_shared<engine::SolutionPoint>();
      point->time = p.time;
      point->x = p.x;
      point->q = p.q;
      point->qdot = p.qdot;
      point->auxiliary = p.auxiliary;
      history.Add(std::move(point));
    }
    const std::size_t stride = result.trace.probes().size();
    for (std::size_t s = 0; s < ck.trace_times.size(); ++s) {
      result.trace.AppendProbeSample(
          ck.trace_times[s],
          std::span<const double>(ck.trace_values).subspan(s * stride, stride));
    }
    result.final_point = history.newest();
    h = ck.h;
    restart = ck.restart;
    steps_since_restart = static_cast<int>(ck.steps_since_restart);
    next_bp = ck.next_breakpoint;
    ctx.PrimeFactorsFromSeeds(
        engine::FactorSeeds{ck.lu_seed_full, ck.lu_seed_numeric},
        engine::FactorSeeds{ck.bbd_seed_full, ck.bbd_seed_numeric});
    if (ctx.bbd.configured()) bbd_prime_base = ctx.bbd.stats();
  } else {
    history.Add(engine::MakeDcSolutionPoint(ctx, spec.tstart));
    result.trace.Record(spec.tstart, history.newest()->x, history.newest()->q);
  }
  result.trace.ReserveEstimate(spec.tstop - spec.tstart, limits.hmin);

  // Serializes the CURRENT accepted-step boundary (stats absorbed into the
  // snapshot copy; running tallies stay raw).
  const auto snapshot = [&]() -> std::vector<std::uint8_t> {
    engine::TransientCheckpoint ck;
    ck.engine = "fine-grained";
    ck.partition_pieces = options.sim.partition_pieces;
    ck.num_unknowns = static_cast<std::uint64_t>(ctx.x.size());
    ck.num_probes = result.trace.probes().size();
    ck.tstop = spec.tstop;
    ck.h = h;
    ck.restart = restart;
    ck.steps_since_restart = static_cast<std::uint64_t>(steps_since_restart);
    ck.next_breakpoint = next_bp;
    for (const auto& sp : history.Window(history.size())) {
      engine::CheckpointPoint p;
      p.time = sp->time;
      p.x = sp->x;
      p.q = sp->q;
      p.qdot = sp->qdot;
      p.auxiliary = sp->auxiliary;
      ck.history.push_back(std::move(p));
    }
    ck.stats = result.stats;
    ck.stats.AbsorbLuStats(ctx.lu.stats());
    if (ctx.bbd.configured()) ck.stats.AbsorbPartitionStats(net_bbd_stats());
    ck.stats.bypassed_evals += ctx.bypass.bypassed_evals();
    ck.stats.bypass_full_evals += ctx.bypass.full_evals();
    ck.stats.wall_seconds = total_timer.Seconds();
    ck.lu_seed_full = ctx.lu_seeds.full;
    ck.lu_seed_numeric = ctx.lu_seeds.numeric;
    ck.bbd_seed_full = ctx.bbd_seeds.full;
    ck.bbd_seed_numeric = ctx.bbd_seeds.numeric;
    ck.trace_times.assign(result.trace.times().begin(), result.trace.times().end());
    const std::size_t stride = result.trace.probes().size();
    ck.trace_values.reserve(result.trace.num_samples() * stride);
    for (std::size_t s = 0; s < result.trace.num_samples(); ++s) {
      for (std::size_t p = 0; p < stride; ++p) {
        ck.trace_values.push_back(result.trace.value(s, p));
      }
    }
    return engine::SerializeCheckpoint(ck);
  };

  // Accepted-step boundary hook: breaker cooldowns, checkpoint cadence, the
  // budget governor, watchdog escalation.  True = stop the run now.
  const auto accepted_boundary = [&]() -> bool {
    ++process_steps;
    if (breakers.enabled()) {
      const std::uint64_t reprobe = breakers.OnAcceptedStep();
      if (reprobe & engine::FeatureBit(engine::Feature::kChord)) {
        live.chord_newton = options.sim.chord_newton;
      }
      if (reprobe & engine::FeatureBit(engine::Feature::kPartition)) {
        ctx.ReengagePartition();
      }
      if (reprobe & engine::FeatureBit(engine::Feature::kParallelFactor)) {
        ctx.factor_pool = evaluator.factor_pool();
      }
      if (reprobe & engine::FeatureBit(engine::Feature::kParallelAssembly)) {
        ctx.assembler = evaluator.assembler();
      }
    }
    sink.MaybeWrite(process_steps, snapshot);
    if (watchdog.ShouldAbort()) {
      ++rstats.watchdog_escalations;
      result.completed = false;
      result.abort_reason = watchdog.AbortReason();
      return true;
    }
    const std::string budget_reason =
        run_budget.Exceeded(process_steps, process_newton, total_timer.Seconds());
    if (!budget_reason.empty()) {
      rstats.budget_exhausted = 1;
      result.completed = false;
      result.abort_reason = budget_reason;
      return true;
    }
    return false;
  };

  while (history.newest_time() < spec.tstop - 1e-15 * spec.tstop) {
    const double t_now = history.newest_time();
    h = std::clamp(h, limits.hmin, limits.hmax);
    double t_new = t_now + h;
    bool hit_breakpoint = false;
    while (next_bp < breakpoints.size() && breakpoints[next_bp] <= t_now + limits.hmin) {
      ++next_bp;
    }
    if (next_bp < breakpoints.size() && t_new >= breakpoints[next_bp] - limits.hmin) {
      t_new = breakpoints[next_bp];
      hit_breakpoint = true;
    }
    if (t_new > spec.tstop) {
      t_new = spec.tstop;
      hit_breakpoint = false;
    }

    util::ThreadCpuTimer control_timer;
    const engine::HistoryWindow window = history.Window(4);
    const engine::Method method =
        restart ? engine::Method::kBackwardEuler : live.method;
    const engine::IntegrationPlan plan =
        engine::PlanIntegration(method, t_new, window, ctx.state_hist);
    std::vector<double> predicted(ctx.x.size());
    engine::PredictSolution(window, restart ? 1 : plan.order + 1, t_new, predicted);
    ctx.x = predicted;
    result.phases.control += control_timer.Seconds();

    engine::NewtonInputs inputs;
    inputs.time = t_new;
    inputs.a0 = plan.a0;
    inputs.transient = true;
    inputs.gmin = live.gmin;
    const engine::NewtonStats newton = SolveNewtonFineGrained(
        evaluator, ctx, inputs, live, live.max_newton_iters, result.phases);
    if (breakers.enabled()) {
      std::uint64_t mask = 0;
      if (live.chord_newton) mask |= engine::FeatureBit(engine::Feature::kChord);
      if (ctx.bypass.active()) mask |= engine::FeatureBit(engine::Feature::kBypass);
      if (ctx.partition_active()) mask |= engine::FeatureBit(engine::Feature::kPartition);
      if (ctx.factor_pool != nullptr) {
        mask |= engine::FeatureBit(engine::Feature::kParallelFactor);
      }
      if (ctx.assembler != nullptr) {
        mask |= engine::FeatureBit(engine::Feature::kParallelAssembly);
      }
      const std::uint64_t tripped = breakers.OnSolveOutcome(
          mask, newton.converged, /*seconds=*/0.0);
      if (tripped & engine::FeatureBit(engine::Feature::kChord)) live.chord_newton = false;
      if (tripped & engine::FeatureBit(engine::Feature::kBypass)) ctx.bypass.Disable();
      if (tripped & engine::FeatureBit(engine::Feature::kPartition)) {
        ctx.DisengagePartition();
      }
      if (tripped & engine::FeatureBit(engine::Feature::kParallelFactor)) {
        ctx.factor_pool = nullptr;
      }
      if (tripped & engine::FeatureBit(engine::Feature::kParallelAssembly)) {
        ctx.assembler = nullptr;
      }
    }
    process_newton += static_cast<std::uint64_t>(newton.iterations);
    result.stats.newton_iterations += static_cast<std::uint64_t>(newton.iterations);
    result.stats.lu_full_factors += static_cast<std::uint64_t>(newton.lu_full_factors);
    result.stats.lu_refactors += static_cast<std::uint64_t>(newton.lu_refactors);
    result.stats.chord_solves += static_cast<std::uint64_t>(newton.chord_solves);
    result.stats.forced_refactors += static_cast<std::uint64_t>(newton.forced_refactors);

    if (!newton.converged) {
      result.stats.steps_rejected_newton += 1;
      h = (t_new - t_now) / live.newton_fail_shrink;
      if (h < limits.hmin) {
        // Structured abort, same contract as the serial engine: the
        // accepted waveform survives in the result (and in the final
        // checkpoint below) instead of unwinding the stack.
        result.completed = false;
        result.abort_reason =
            "fine-grained transient: Newton failure with step at hmin, t = " +
            std::to_string(t_now) + (newton.singular ? " (singular pivot)" : "");
        break;
      }
      continue;
    }

    control_timer.Reset();
    const bool lte_active = !restart && steps_since_restart >= 1 && window.size() >= 2;
    const engine::StepControlParams params =
        engine::MakeStepParams(live, circuit.num_nodes(), plan.order);
    const engine::StepAssessment assess =
        engine::AssessStep(ctx.x, predicted, t_new - t_now, lte_active, params);
    result.phases.control += control_timer.Seconds();

    if (!assess.accept && (t_new - t_now) > limits.hmin * (1.0 + 1e-6)) {
      result.stats.steps_rejected_lte += 1;
      h = std::max(assess.h_next, limits.hmin);
      continue;
    }

    auto point = std::make_shared<engine::SolutionPoint>();
    point->time = t_new;
    point->x = ctx.x;
    point->q = ctx.state_now;
    point->qdot.resize(ctx.state_now.size());
    engine::ComputeQdot(plan, point->q, ctx.state_hist, point->qdot);
    history.Add(point);
    result.trace.Record(t_new, point->x, point->q);
    result.final_point = point;
    result.stats.steps_accepted += 1;
    ++steps_since_restart;
    restart = false;

    if (hit_breakpoint) {
      ++next_bp;
      restart = true;
      steps_since_restart = 0;
      h = limits.h0;
    } else {
      h = std::max(assess.h_next, limits.hmin);
    }

    if (accepted_boundary()) break;
  }

  watchdog.Finish();
  sink.WriteFinal(snapshot);
  result.last_good_time = history.empty() ? spec.tstart : history.newest_time();
  result.stats.wall_seconds = total_timer.Seconds();
  result.stats.AbsorbLuStats(ctx.lu.stats());
  if (ctx.bbd.configured()) result.stats.AbsorbPartitionStats(net_bbd_stats());
  result.stats.bypassed_evals += ctx.bypass.bypassed_evals();
  result.stats.bypass_full_evals += ctx.bypass.full_evals();
  result.assembly = evaluator.stats();
  return result;
}

double ModelFineGrainedSpeedup(const PhaseBreakdown& phases, int threads) {
  WP_ASSERT(threads >= 1);
  const double serial_total = phases.Total() - phases.reduction;  // 1-thread run has no copies
  // With k threads: model eval / k; reduction sweeps k private copies; LU
  // and control untouched.
  const double reduction_k = phases.reduction * threads;
  const double parallel_total =
      phases.model_eval / threads + reduction_k + phases.lu + phases.control;
  return serial_total / parallel_total;
}

}  // namespace wavepipe::parallel
