// Conflict-free parallel matrix assembly via device graph coloring.
//
// Two devices CONFLICT when their stamp footprints (Jacobian value slots +
// RHS rows, see Device::StampFootprint) intersect.  Coloring the conflict
// graph partitions the device list into classes whose members write disjoint
// memory, so one color can be stamped by any number of threads straight into
// the shared matrix — no private Jacobian copies, no reduction sweep, no
// locks.  A full assembly pass is then `num_colors` parallel phases
// separated by barriers.
//
// This is the standard fix for the fine-grained baseline's O(nnz x threads)
// reduction tax (cf. EEspice in PAPERS.md); it also drops into every
// pipelined WavePipe solve through the engine::DeviceAssembler hook.
//
// Two coloring strategies:
//
//  * kLargestDegreeFirst — Welsh–Powell greedy, fewest colors (fewest
//    barriers).  Per-slot accumulation order follows color order, so results
//    deviate from the serial device loop only at rounding level — but they
//    are DETERMINISTIC: independent of thread count and scheduling, unlike
//    the reduction path whose bits change with the chunk partition.
//
//  * kOrderPreserving — layered coloring: each device's color is one more
//    than the highest color among earlier conflicting devices.  Per-slot
//    accumulation order and association then exactly match the serial
//    device loop, making colored assembly BIT-IDENTICAL to
//    engine::EvalDevices.  The price is more colors (a conflict chain of
//    length L forces L layers), so this mode is for verification and for
//    reproducibility-critical runs, not peak throughput.
//
// Degenerate graphs (a dense supply node turns its neighbors into one big
// clique) make coloring useless; CompareAssemblyCosts() is the deterministic
// structure-only cost model that decides colored vs reduction, and
// MakeAssembler(kAuto, ...) applies it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/circuit.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"

namespace wavepipe::util {
class ThreadPool;
}

namespace wavepipe::parallel {

enum class ColorStrategy {
  kLargestDegreeFirst,
  kOrderPreserving,
};

struct ColoringOptions {
  ColorStrategy strategy = ColorStrategy::kLargestDegreeFirst;
};

/// A device's resolved write set, with ground writes already dropped.
/// `resources` is the merged id space the conflict graph is built over:
/// Jacobian slot s -> s, RHS row r -> nnz + r; sorted, deduplicated.
struct StampFootprintSet {
  std::vector<int> jacobian_slots;
  std::vector<int> rhs_rows;
  std::vector<int> resources;
};

/// Queries one device (valid after MnaStructure resolved the pattern).
StampFootprintSet FootprintOf(const devices::Device& device,
                              const engine::MnaStructure& structure);

/// The conflict-free stamping schedule: device indices grouped by color,
/// ascending inside each group, colors executed in ascending order.
class ColorSchedule {
 public:
  int num_colors() const { return static_cast<int>(color_begin_.size()) - 1; }
  std::span<const int> ColorDevices(int color) const {
    return std::span<const int>(device_order_)
        .subspan(static_cast<std::size_t>(color_begin_[color]),
                 static_cast<std::size_t>(color_begin_[color + 1] - color_begin_[color]));
  }
  int color_of(std::size_t device) const { return color_of_[device]; }
  /// All devices sorted by (color, index) — the single-threaded stamp order.
  std::span<const int> device_order() const { return device_order_; }
  std::size_t num_devices() const { return color_of_.size(); }
  std::size_t conflict_edges() const { return conflict_edges_; }
  int max_degree() const { return max_degree_; }
  ColorStrategy strategy() const { return strategy_; }
  /// Largest color class (the parallelism available in the widest phase).
  std::size_t widest_color() const;

 private:
  friend ColorSchedule BuildColorSchedule(const engine::Circuit&,
                                          const engine::MnaStructure&, ColoringOptions);
  std::vector<int> color_of_;      // by device index
  std::vector<int> device_order_;  // devices sorted by (color, index)
  std::vector<int> color_begin_;   // size num_colors + 1
  std::size_t conflict_edges_ = 0;
  int max_degree_ = 0;
  ColorStrategy strategy_ = ColorStrategy::kLargestDegreeFirst;
};

/// Builds the device-conflict graph from every device's footprint and
/// colors it greedily.  Deterministic: depends only on circuit structure.
ColorSchedule BuildColorSchedule(const engine::Circuit& circuit,
                                 const engine::MnaStructure& structure,
                                 ColoringOptions options = {});

/// Deterministic structure-only cost model, in "memory write" units per
/// assembly pass.  Used by MakeAssembler(kAuto) to decide when the
/// chromatic number is degenerate (dense supply node -> one color per
/// device -> barrier cost swamps the saved reduction).
struct AssemblyCostEstimate {
  double colored = 0.0;
  double reduction = 0.0;
  bool prefer_colored = false;
};
AssemblyCostEstimate CompareAssemblyCosts(const ColorSchedule& schedule,
                                          const engine::MnaStructure& structure,
                                          int threads);

enum class AssemblyMode {
  kAuto,       ///< cost model picks colored or reduction
  kReduction,  ///< force private-buffer chunked reduction (the old baseline)
  kColored,    ///< force conflict-free colored stamping
};

/// Creates the assembler for the requested mode.  The returned object stamps
/// on `shared_pool` when one is given (so assembly and level-scheduled LU
/// refactorization share a single set of workers), otherwise it owns its own
/// stamping thread pool (when threads > 1).  It may be attached to any
/// number of SolveContexts via SolveContext::assembler.  Colored assemblers
/// are safe to use from several contexts concurrently; the reduction
/// assembler owns private accumulation buffers and must only drive one
/// context at a time.
std::unique_ptr<engine::DeviceAssembler> MakeAssembler(
    AssemblyMode mode, const engine::Circuit& circuit,
    const engine::MnaStructure& structure, int threads, ColoringOptions options = {},
    util::ThreadPool* shared_pool = nullptr);

/// Virtual-time model of one assembly pass at `threads` workers, fed by the
/// measured 1-thread phase seconds of the same strategy:
///   serial:     zero + stamp                      (nothing scales)
///   reduction:  zero + stamp/k + merge*k          (merge sweeps k buffers)
///   colored:    (zero + stamp)/k + merge          (barriers don't shrink)
/// This is how the assembly bench reports multi-thread throughput from a
/// 1-vCPU container.
double ModelAssemblySeconds(const engine::AssemblyStats& measured, int threads);

}  // namespace wavepipe::parallel
