// Conventional fine-grained parallel SPICE: the baseline WavePipe is
// positioned against in the paper.
//
// Parallelism lives INSIDE each time-point solve: device model evaluation is
// distributed across worker threads, while the time axis, the Newton
// iteration and the sparse LU remain strictly sequential.  Its scaling is
// therefore Amdahl-limited by the matrix solution — the motivation the paper
// opens with, and the effect the fig-D bench quantifies.
//
// Two assembly strategies sit behind the evaluator (see parallel/coloring.hpp):
//
//  * reduction — each worker accumulates into a private Jacobian/RHS copy,
//    merged serially afterwards (the historical baseline; the merge is the
//    O(nnz x threads) tax).
//  * colored   — conflict-free device coloring stamps the shared matrix
//    directly, no private copies, one barrier per color.
//
// The default (kAuto) picks per circuit with a structure-only cost model;
// tests force either mode explicitly.
#pragma once

#include "engine/circuit.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"
#include "engine/options.hpp"
#include "engine/trace.hpp"
#include "engine/transient.hpp"
#include "parallel/coloring.hpp"

namespace wavepipe::parallel {

struct FineGrainedOptions {
  int threads = 2;
  /// Workers for level-scheduled LU refactorization / triangular solves
  /// inside each Newton iteration (see sparse/lu.hpp).  0 = serial LU (the
  /// historical behavior); >= 2 enables the parallel kernels, sharing ONE
  /// worker pool with assembly — assembly and factorization never overlap
  /// within an iteration, so the pool is sized max(threads, factor_threads).
  int factor_threads = 0;
  /// Assembly strategy; kAuto lets the cost model choose colored vs
  /// reduction from the conflict graph.
  AssemblyMode assembly = AssemblyMode::kAuto;
  /// Coloring heuristic when the colored path is used.
  ColoringOptions coloring;
  engine::SimOptions sim;
};

/// Where the CPU time of a run went (thread-CPU seconds, summed over
/// workers for the parallel phase).
struct PhaseBreakdown {
  double model_eval = 0.0;  ///< device evaluation (parallelizable)
  double reduction = 0.0;   ///< summing private Jacobian/RHS copies (overhead)
  double lu = 0.0;          ///< factor + triangular solves (serial)
  double control = 0.0;     ///< everything else: predictor, LTE, bookkeeping

  double Total() const { return model_eval + reduction + lu + control; }

  /// Registers the breakdown under the `phases.` prefix (util/telemetry.hpp).
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;
};

struct FineGrainedResult {
  engine::Trace trace;
  engine::TransientStats stats;
  PhaseBreakdown phases;
  engine::AssemblyStats assembly;  ///< strategy chosen + per-phase assembly time
  engine::SolutionPointPtr final_point;
  /// Structured failure reporting (same contract as TransientResult): an
  /// unconverged step at hmin, a budget stop, or a watchdog escalation ends
  /// the run with completed=false and the waveform up to last_good_time
  /// intact instead of an unwound stack.
  bool completed = true;
  std::string abort_reason;
  double last_good_time = 0.0;
  /// Durable-run telemetry (ckpt./watchdog./resilience. counter groups).
  engine::ResilienceStats resilience;
};

/// Runs the fine-grained-parallel transient.  Waveforms are identical to the
/// serial engine (same math, same step control) — only the evaluation is
/// distributed.
FineGrainedResult RunTransientFineGrained(const engine::Circuit& circuit,
                                          const engine::MnaStructure& structure,
                                          const engine::TransientSpec& spec,
                                          const FineGrainedOptions& options);

/// Amdahl-style runtime model for k threads given a measured breakdown:
/// model eval divides by k, the reduction grows with (k-1) private copies,
/// LU and control stay serial.  Returns the modeled speedup over 1 thread.
double ModelFineGrainedSpeedup(const PhaseBreakdown& phases, int threads);

}  // namespace wavepipe::parallel
