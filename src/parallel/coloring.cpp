#include "parallel/coloring.hpp"

#include <algorithm>
#include <cstring>
#include <future>
#include <mutex>
#include <numeric>

#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace wavepipe::parallel {
namespace {

/// Below this many devices a color phase is stamped inline by the calling
/// thread: a fork/join barrier costs more than evaluating a handful of
/// devices.  Chosen conservatively; affects speed only, never results.
constexpr std::size_t kMinDevicesPerChunk = 8;

/// One fork/join barrier expressed in memory-write units for the structure-
/// only cost model (a submit + future wait is roughly a microsecond; a write
/// a couple of nanoseconds).  Deliberately pessimistic toward coloring so
/// the automatic mode only leaves the proven reduction path when the win is
/// clear.
constexpr double kBarrierWriteUnits = 512.0;

devices::EvalContext MakeEval(engine::SolveContext& ctx, const engine::NewtonInputs& inputs,
                              bool limit_valid, bool first_iteration,
                              std::span<double> jacobian, std::span<double> rhs) {
  devices::EvalContext eval;
  eval.time = inputs.time;
  eval.a0 = inputs.a0;
  eval.transient = inputs.transient;
  eval.first_iteration = first_iteration;
  eval.gmin = inputs.gmin;
  eval.source_scale = inputs.source_scale;
  eval.gshunt = inputs.gshunt;
  eval.x = ctx.x;
  eval.jacobian_values = jacobian;
  eval.rhs = rhs;
  // State and limiting slots are disjoint per device (claimed in Bind), so
  // the shared arrays are safe under any device partition.
  eval.state_now = ctx.state_now;
  eval.state_hist = ctx.state_hist;
  eval.limit_prev = ctx.limit_a;
  eval.limit_now = ctx.limit_b;
  eval.limit_valid = limit_valid;
  return eval;
}

}  // namespace

// ---------------------------------------------------------------- footprint

StampFootprintSet FootprintOf(const devices::Device& device,
                              const engine::MnaStructure& structure) {
  StampFootprintSet fp;
  device.StampFootprint(fp.jacobian_slots, fp.rhs_rows);

  auto drop_ground = [](std::vector<int>& v) {
    v.erase(std::remove_if(v.begin(), v.end(), [](int id) { return id < 0; }), v.end());
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  drop_ground(fp.jacobian_slots);
  drop_ground(fp.rhs_rows);

  const int nnz = static_cast<int>(structure.nnz());
  fp.resources = fp.jacobian_slots;
  fp.resources.reserve(fp.jacobian_slots.size() + fp.rhs_rows.size());
  for (int row : fp.rhs_rows) fp.resources.push_back(nnz + row);
  return fp;
}

// ----------------------------------------------------------------- coloring

std::size_t ColorSchedule::widest_color() const {
  std::size_t widest = 0;
  for (int c = 0; c < num_colors(); ++c) {
    widest = std::max(widest, ColorDevices(c).size());
  }
  return widest;
}

ColorSchedule BuildColorSchedule(const engine::Circuit& circuit,
                                 const engine::MnaStructure& structure,
                                 ColoringOptions options) {
  WP_ASSERT(circuit.finalized());
  const auto& devices = circuit.devices();
  const std::size_t num_devices = devices.size();

  // Resource -> touching devices.  Resource ids merge Jacobian slots and RHS
  // rows (see FootprintOf); counting sort keeps this O(writes).
  const std::size_t num_resources =
      structure.nnz() + static_cast<std::size_t>(structure.dimension());
  std::vector<std::vector<int>> touchers(num_resources);
  for (std::size_t d = 0; d < num_devices; ++d) {
    const StampFootprintSet fp = FootprintOf(*devices[d], structure);
    for (int res : fp.resources) {
      touchers[static_cast<std::size_t>(res)].push_back(static_cast<int>(d));
    }
  }

  // Adjacency: all pairs within one resource's toucher list conflict.  A
  // dense node (every device on a supply rail) degenerates into a clique;
  // that's expected — the cost model rejects coloring there.
  std::vector<std::vector<int>> adj(num_devices);
  for (const auto& group : touchers) {
    for (std::size_t i = 0; i + 1 < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        adj[static_cast<std::size_t>(group[i])].push_back(group[j]);
        adj[static_cast<std::size_t>(group[j])].push_back(group[i]);
      }
    }
  }
  ColorSchedule schedule;
  schedule.strategy_ = options.strategy;
  schedule.color_of_.assign(num_devices, -1);
  for (auto& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()), neighbors.end());
    schedule.max_degree_ = std::max(schedule.max_degree_, static_cast<int>(neighbors.size()));
    schedule.conflict_edges_ += neighbors.size();
  }
  schedule.conflict_edges_ /= 2;

  int num_colors = 0;
  if (options.strategy == ColorStrategy::kLargestDegreeFirst) {
    // Welsh–Powell greedy: color in (degree desc, index asc) order with the
    // smallest color absent from the already-colored neighborhood.
    std::vector<int> order(num_devices);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&adj](int a, int b) {
      return adj[static_cast<std::size_t>(a)].size() >
             adj[static_cast<std::size_t>(b)].size();
    });
    std::vector<int> forbidden(num_devices, -1);  // color -> stamp of last use
    for (int v : order) {
      for (int neighbor : adj[static_cast<std::size_t>(v)]) {
        const int c = schedule.color_of_[static_cast<std::size_t>(neighbor)];
        if (c >= 0) forbidden[static_cast<std::size_t>(c)] = v;
      }
      int color = 0;
      while (forbidden[static_cast<std::size_t>(color)] == v) ++color;
      schedule.color_of_[static_cast<std::size_t>(v)] = color;
      num_colors = std::max(num_colors, color + 1);
    }
  } else {
    // Order-preserving layering: a device lands one layer above every
    // earlier device it conflicts with.  Colors executed in ascending order
    // then replay each shared slot's accumulation in exact device order —
    // the bit-identity invariant the verification tests pin down.
    for (std::size_t d = 0; d < num_devices; ++d) {
      int color = 0;
      for (int neighbor : adj[d]) {
        if (static_cast<std::size_t>(neighbor) < d) {
          color = std::max(color, schedule.color_of_[static_cast<std::size_t>(neighbor)] + 1);
        }
      }
      schedule.color_of_[d] = color;
      num_colors = std::max(num_colors, color + 1);
    }
  }

  schedule.color_begin_.assign(static_cast<std::size_t>(num_colors) + 1, 0);
  for (std::size_t d = 0; d < num_devices; ++d) {
    ++schedule.color_begin_[static_cast<std::size_t>(schedule.color_of_[d]) + 1];
  }
  for (int c = 0; c < num_colors; ++c) {
    schedule.color_begin_[static_cast<std::size_t>(c) + 1] +=
        schedule.color_begin_[static_cast<std::size_t>(c)];
  }
  schedule.device_order_.resize(num_devices);
  std::vector<int> cursor(schedule.color_begin_.begin(), schedule.color_begin_.end() - 1);
  for (std::size_t d = 0; d < num_devices; ++d) {  // ascending index per color
    schedule.device_order_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(schedule.color_of_[d])]++)] = static_cast<int>(d);
  }
  return schedule;
}

// --------------------------------------------------------------- cost model

AssemblyCostEstimate CompareAssemblyCosts(const ColorSchedule& schedule,
                                          const engine::MnaStructure& structure,
                                          int threads) {
  const double k = static_cast<double>(std::max(1, threads));
  const double sweep =
      static_cast<double>(structure.nnz()) + static_cast<double>(structure.dimension());
  AssemblyCostEstimate est;
  // Critical-path overhead per assembly pass, in write units.  The stamping
  // itself is identical work in both paths and cancels.
  //   reduction: zero k private copies (parallel, ~1 sweep) + serial merge
  //              of k copies.
  //   colored:   zero the shared copy (parallel) + one barrier per color.
  est.reduction = (k + 1.0) * sweep;
  est.colored = sweep / k + static_cast<double>(schedule.num_colors()) * kBarrierWriteUnits;
  est.prefer_colored =
      threads > 1 && schedule.num_devices() > 0 && est.colored < est.reduction;
  return est;
}

double ModelAssemblySeconds(const engine::AssemblyStats& measured, int threads) {
  const double k = static_cast<double>(std::max(1, threads));
  if (std::strcmp(measured.strategy, "reduction") == 0) {
    return measured.zero_seconds + measured.stamp_seconds / k + measured.merge_seconds * k;
  }
  if (std::strcmp(measured.strategy, "colored") == 0) {
    return (measured.zero_seconds + measured.stamp_seconds) / k + measured.merge_seconds;
  }
  return measured.zero_seconds + measured.stamp_seconds + measured.merge_seconds;
}

// --------------------------------------------------------------- assemblers

namespace {

/// Shared bookkeeping: thread pool ownership + mutex-guarded stats.  When a
/// shared (externally owned) pool is supplied, stamping runs on it and no
/// private pool is created — this is how assembly and level-scheduled LU
/// refactorization share one set of workers.
class AssemblerBase : public engine::DeviceAssembler {
 public:
  AssemblerBase(const engine::Circuit& circuit, const engine::MnaStructure& structure,
                int threads, util::ThreadPool* shared_pool)
      : circuit_(circuit), structure_(structure), threads_(std::max(1, threads)) {
    if (shared_pool != nullptr && shared_pool->size() > 1) {
      pool_ = shared_pool;
      threads_ = std::max(threads_, static_cast<int>(shared_pool->size()));
    } else if (threads_ > 1) {
      owned_pool_ = std::make_unique<util::ThreadPool>(static_cast<unsigned>(threads_));
      pool_ = owned_pool_.get();
    }
  }

  engine::AssemblyStats stats() const override {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }

 protected:
  void AddTimings(double zero, double stamp, double merge) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.passes += 1;
    stats_.zero_seconds += zero;
    stats_.stamp_seconds += stamp;
    stats_.merge_seconds += merge;
  }

  const engine::Circuit& circuit_;
  const engine::MnaStructure& structure_;
  int threads_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;  ///< owned_pool_.get() or the shared pool
  mutable std::mutex stats_mutex_;
  engine::AssemblyStats stats_;
};

/// The old fine-grained baseline, behind the DeviceAssembler interface:
/// contiguous device chunks accumulate into private full-size Jacobian/RHS
/// copies, merged serially afterwards.  Owns the private buffers, so it can
/// only drive one SolveContext at a time.
class ReductionAssembler final : public AssemblerBase {
 public:
  ReductionAssembler(const engine::Circuit& circuit, const engine::MnaStructure& structure,
                     int threads, util::ThreadPool* shared_pool)
      : AssemblerBase(circuit, structure, threads, shared_pool) {
    stats_.strategy = "reduction";
    const std::size_t num_devices = circuit.devices().size();
    const std::size_t per_chunk =
        (num_devices + static_cast<std::size_t>(threads_) - 1) /
        static_cast<std::size_t>(std::max(1, threads_));
    for (std::size_t begin = 0; begin < num_devices; begin += per_chunk) {
      chunks_.emplace_back(begin, std::min(begin + per_chunk, num_devices));
    }
    buffers_.resize(chunks_.size());
    for (auto& buf : buffers_) {
      buf.jacobian.assign(structure.nnz(), 0.0);
      buf.rhs.assign(static_cast<std::size_t>(structure.dimension()), 0.0);
    }
  }

  void Assemble(engine::SolveContext& ctx, const engine::NewtonInputs& inputs,
                bool limit_valid, bool first_iteration) override {
    struct ChunkTimings {
      double zero = 0.0, stamp = 0.0;
    };
    auto run_chunk = [&](std::size_t c) -> ChunkTimings {
      ChunkTimings t;
      util::ThreadCpuTimer timer;
      auto& buf = buffers_[c];
      std::fill(buf.jacobian.begin(), buf.jacobian.end(), 0.0);
      std::fill(buf.rhs.begin(), buf.rhs.end(), 0.0);
      t.zero = timer.Seconds();

      timer.Reset();
      devices::EvalContext eval =
          MakeEval(ctx, inputs, limit_valid, first_iteration, buf.jacobian, buf.rhs);
      const auto& devices = circuit_.devices();
      if (ctx.bypass.active()) {
        // Replay works against private buffers too: a device lives in one
        // chunk, its chunk buffer is zeroed every pass, so the captured
        // deltas are exactly what the merge sweep would have summed.
        for (std::size_t i = chunks_[c].first; i < chunks_[c].second; ++i) {
          ctx.bypass.Process(i, *devices[i], eval);
        }
      } else {
        for (std::size_t i = chunks_[c].first; i < chunks_[c].second; ++i) {
          devices[i]->Eval(eval);
        }
      }
      t.stamp = timer.Seconds();
      return t;
    };

    double zero = 0.0, stamp = 0.0;
    if (pool_ && chunks_.size() > 1) {
      std::vector<std::future<ChunkTimings>> futures;
      futures.reserve(chunks_.size());
      for (std::size_t c = 0; c < chunks_.size(); ++c) {
        futures.push_back(pool_->Submit([&run_chunk, c] { return run_chunk(c); }));
      }
      for (auto& future : futures) {
        const ChunkTimings t = future.get();
        zero += t.zero;
        stamp += t.stamp;
      }
    } else {
      for (std::size_t c = 0; c < chunks_.size(); ++c) {
        const ChunkTimings t = run_chunk(c);
        zero += t.zero;
        stamp += t.stamp;
      }
    }

    // The serial merge: the reduction tax this subsystem exists to remove.
    util::ThreadCpuTimer merge_timer;
    auto values = ctx.matrix.mutable_values();
    std::fill(values.begin(), values.end(), 0.0);
    std::fill(ctx.rhs.begin(), ctx.rhs.end(), 0.0);
    for (const auto& buf : buffers_) {
      for (std::size_t k = 0; k < values.size(); ++k) values[k] += buf.jacobian[k];
      for (std::size_t i = 0; i < ctx.rhs.size(); ++i) ctx.rhs[i] += buf.rhs[i];
    }
    AddTimings(zero, stamp, merge_timer.Seconds());
  }

 private:
  struct Buffers {
    std::vector<double> jacobian;
    std::vector<double> rhs;
  };
  std::vector<std::pair<std::size_t, std::size_t>> chunks_;
  std::vector<Buffers> buffers_;
};

/// Conflict-free colored stamping: colors execute as sequential barriers,
/// devices inside a color stamp the shared matrix/RHS directly from any
/// number of threads.  Stateless with respect to the context, so WavePipe
/// workers share one instance across their per-slot contexts.
class ColoredAssembler final : public AssemblerBase {
 public:
  ColoredAssembler(const engine::Circuit& circuit, const engine::MnaStructure& structure,
                   ColorSchedule schedule, int threads, util::ThreadPool* shared_pool)
      : AssemblerBase(circuit, structure, threads, shared_pool),
        schedule_(std::move(schedule)) {
    stats_.strategy = "colored";
    stats_.colors = schedule_.num_colors();
    stats_.conflict_edges = schedule_.conflict_edges();
    stats_.max_degree = schedule_.max_degree();
  }

  const ColorSchedule& schedule() const { return schedule_; }

  void Assemble(engine::SolveContext& ctx, const engine::NewtonInputs& inputs,
                bool limit_valid, bool first_iteration) override {
    util::ThreadCpuTimer zero_timer;
    auto values = ctx.matrix.mutable_values();
    std::fill(values.begin(), values.end(), 0.0);
    std::fill(ctx.rhs.begin(), ctx.rhs.end(), 0.0);
    const double zero = zero_timer.Seconds();

    double stamp = 0.0, barrier = 0.0;
    const auto& devices = circuit_.devices();
    // Latency bypass: replay cached stamps for quiescent devices.  Safe under
    // the color partition — a replay writes exactly the device's footprint
    // slots, the same set the coloring already keeps conflict-free.  Process()
    // keeps per-device scratch, so concurrent same-color chunks never share
    // mutable bypass state either.
    const bool bypassing = ctx.bypass.active();
    auto stamp_range = [&](std::span<const int> ids) -> double {
      util::ThreadCpuTimer timer;
      devices::EvalContext eval =
          MakeEval(ctx, inputs, limit_valid, first_iteration, values, ctx.rhs);
      if (bypassing) {
        for (int id : ids) {
          const auto d = static_cast<std::size_t>(id);
          ctx.bypass.Process(d, *devices[d], eval);
        }
      } else {
        for (int id : ids) devices[static_cast<std::size_t>(id)]->Eval(eval);
      }
      return timer.Seconds();
    };

    if (!pool_) {
      // Single-threaded: colors in order on the calling thread, one timer
      // over the whole loop (a per-color thread-CPU read is a syscall and
      // would dominate small color groups — and distort the 1-thread
      // measurement the virtual-time bench projects from).
      util::ThreadCpuTimer timer;
      devices::EvalContext eval =
          MakeEval(ctx, inputs, limit_valid, first_iteration, values, ctx.rhs);
      if (bypassing) {
        for (int id : schedule_.device_order()) {
          const auto d = static_cast<std::size_t>(id);
          ctx.bypass.Process(d, *devices[d], eval);
        }
      } else {
        for (int id : schedule_.device_order()) {
          devices[static_cast<std::size_t>(id)]->Eval(eval);
        }
      }
      AddTimings(zero, timer.Seconds(), 0.0);
      return;
    }

    for (int color = 0; color < schedule_.num_colors(); ++color) {
      const std::span<const int> group = schedule_.ColorDevices(color);
      const std::size_t chunk_count = std::clamp<std::size_t>(
          group.size() / kMinDevicesPerChunk, 1, static_cast<std::size_t>(threads_));
      if (chunk_count <= 1) {
        stamp += stamp_range(group);
        continue;
      }
      // Fork/join barrier: same-color devices write disjoint slots, so the
      // partition is free to be anything; contiguous keeps it cache-friendly.
      util::WallTimer barrier_timer;
      const std::size_t per_chunk = (group.size() + chunk_count - 1) / chunk_count;
      std::vector<std::future<double>> futures;
      futures.reserve(chunk_count);
      for (std::size_t begin = 0; begin < group.size(); begin += per_chunk) {
        const std::span<const int> part =
            group.subspan(begin, std::min(per_chunk, group.size() - begin));
        futures.push_back(pool_->Submit([&stamp_range, part] { return stamp_range(part); }));
      }
      double color_cpu = 0.0;
      for (auto& future : futures) color_cpu += future.get();
      stamp += color_cpu;
      barrier += std::max(0.0, barrier_timer.Seconds() - color_cpu);
    }
    AddTimings(zero, stamp, barrier);
  }

 private:
  ColorSchedule schedule_;
};

}  // namespace

std::unique_ptr<engine::DeviceAssembler> MakeAssembler(
    AssemblyMode mode, const engine::Circuit& circuit,
    const engine::MnaStructure& structure, int threads, ColoringOptions options,
    util::ThreadPool* shared_pool) {
  if (mode == AssemblyMode::kReduction) {
    return std::make_unique<ReductionAssembler>(circuit, structure, threads, shared_pool);
  }
  if (mode == AssemblyMode::kColored) {
    return std::make_unique<ColoredAssembler>(
        circuit, structure, BuildColorSchedule(circuit, structure, options), threads,
        shared_pool);
  }
  // kAuto.  One thread: the 1-chunk reduction path IS the serial loop (same
  // bits, no barriers), so coloring can only add overhead.
  if (threads <= 1 && (shared_pool == nullptr || shared_pool->size() <= 1)) {
    return std::make_unique<ReductionAssembler>(circuit, structure, threads, nullptr);
  }
  const int effective_threads =
      std::max(threads, shared_pool ? static_cast<int>(shared_pool->size()) : 1);
  ColorSchedule schedule = BuildColorSchedule(circuit, structure, options);
  const AssemblyCostEstimate est =
      CompareAssemblyCosts(schedule, structure, effective_threads);
  if (est.prefer_colored) {
    return std::make_unique<ColoredAssembler>(circuit, structure, std::move(schedule),
                                              threads, shared_pool);
  }
  return std::make_unique<ReductionAssembler>(circuit, structure, threads, shared_pool);
}

}  // namespace wavepipe::parallel
