#include "devices/sources.hpp"

#include "util/error.hpp"

namespace wavepipe::devices {

// ----------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(std::string name, int p, int n,
                             std::unique_ptr<Waveform> waveform)
    : Device(std::move(name)), p_(p), n_(n), waveform_(std::move(waveform)) {
  WP_ASSERT(waveform_ != nullptr);
}

void VoltageSource::Bind(Binder& binder) { branch_ = binder.AddBranch(name()); }

void VoltageSource::DeclarePattern(PatternBuilder& pattern) {
  slot_pb_ = pattern.Entry(p_, branch_);
  slot_nb_ = pattern.Entry(n_, branch_);
  slot_bp_ = pattern.Entry(branch_, p_);
  slot_bn_ = pattern.Entry(branch_, n_);
}

void VoltageSource::Eval(EvalContext& ctx) const {
  ctx.AddJacobian(slot_pb_, 1.0);
  ctx.AddJacobian(slot_nb_, -1.0);
  ctx.AddJacobian(slot_bp_, 1.0);
  ctx.AddJacobian(slot_bn_, -1.0);
  const double value = ctx.transient ? waveform_->Value(ctx.time) : waveform_->DcValue();
  ctx.AddRhs(branch_, ctx.source_scale * value);
}

void VoltageSource::StampFootprint(std::vector<int>& jacobian_slots,
                                   std::vector<int>& rhs_rows) const {
  jacobian_slots.insert(jacobian_slots.end(), {slot_pb_, slot_nb_, slot_bp_, slot_bn_});
  rhs_rows.push_back(branch_);
}

void VoltageSource::CollectBreakpoints(double t0, double t1,
                                       std::vector<double>& out) const {
  waveform_->CollectBreakpoints(t0, t1, out);
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, int p, int n,
                             std::unique_ptr<Waveform> waveform)
    : Device(std::move(name)), p_(p), n_(n), waveform_(std::move(waveform)) {
  WP_ASSERT(waveform_ != nullptr);
}

void CurrentSource::Eval(EvalContext& ctx) const {
  const double value = ctx.transient ? waveform_->Value(ctx.time) : waveform_->DcValue();
  const double i = ctx.source_scale * value;
  ctx.AddRhs(p_, -i);
  ctx.AddRhs(n_, i);
}

void CurrentSource::StampFootprint(std::vector<int>& jacobian_slots,
                                   std::vector<int>& rhs_rows) const {
  (void)jacobian_slots;
  rhs_rows.insert(rhs_rows.end(), {p_, n_});
}

void CurrentSource::CollectBreakpoints(double t0, double t1,
                                       std::vector<double>& out) const {
  waveform_->CollectBreakpoints(t0, t1, out);
}

// --------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, int p, int n, int cp, int cn, double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::Bind(Binder& binder) { branch_ = binder.AddBranch(name()); }

void Vcvs::DeclarePattern(PatternBuilder& pattern) {
  slot_pb_ = pattern.Entry(p_, branch_);
  slot_nb_ = pattern.Entry(n_, branch_);
  slot_bp_ = pattern.Entry(branch_, p_);
  slot_bn_ = pattern.Entry(branch_, n_);
  slot_bcp_ = pattern.Entry(branch_, cp_);
  slot_bcn_ = pattern.Entry(branch_, cn_);
}

void Vcvs::Eval(EvalContext& ctx) const {
  ctx.AddJacobian(slot_pb_, 1.0);
  ctx.AddJacobian(slot_nb_, -1.0);
  // Branch equation: v_p − v_n − gain·(v_cp − v_cn) = 0.
  ctx.AddJacobian(slot_bp_, 1.0);
  ctx.AddJacobian(slot_bn_, -1.0);
  ctx.AddJacobian(slot_bcp_, -gain_);
  ctx.AddJacobian(slot_bcn_, gain_);
}

void Vcvs::StampFootprint(std::vector<int>& jacobian_slots,
                          std::vector<int>& rhs_rows) const {
  (void)rhs_rows;
  jacobian_slots.insert(jacobian_slots.end(),
                        {slot_pb_, slot_nb_, slot_bp_, slot_bn_, slot_bcp_, slot_bcn_});
}

// --------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, int p, int n, int cp, int cn, double gm)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gm_(gm) {}

void Vccs::DeclarePattern(PatternBuilder& pattern) {
  slots_.Declare(pattern, p_, n_, cp_, cn_);
}

void Vccs::Eval(EvalContext& ctx) const { slots_.Stamp(ctx, gm_); }

void Vccs::StampFootprint(std::vector<int>& jacobian_slots,
                          std::vector<int>& rhs_rows) const {
  (void)rhs_rows;
  slots_.AppendTo(jacobian_slots);
}

// --------------------------------------------------------------------- Cccs

Cccs::Cccs(std::string name, int p, int n, std::string sense_vsource, double gain)
    : Device(std::move(name)), p_(p), n_(n), sense_(std::move(sense_vsource)),
      gain_(gain) {}

void Cccs::Bind(Binder& binder) { sense_branch_ = binder.BranchOf(sense_); }

void Cccs::DeclarePattern(PatternBuilder& pattern) {
  slot_pb_ = pattern.Entry(p_, sense_branch_);
  slot_nb_ = pattern.Entry(n_, sense_branch_);
}

void Cccs::Eval(EvalContext& ctx) const {
  ctx.AddJacobian(slot_pb_, gain_);
  ctx.AddJacobian(slot_nb_, -gain_);
}

void Cccs::StampFootprint(std::vector<int>& jacobian_slots,
                          std::vector<int>& rhs_rows) const {
  (void)rhs_rows;
  jacobian_slots.insert(jacobian_slots.end(), {slot_pb_, slot_nb_});
}

// --------------------------------------------------------------------- Ccvs

Ccvs::Ccvs(std::string name, int p, int n, std::string sense_vsource,
           double transresistance)
    : Device(std::move(name)), p_(p), n_(n), sense_(std::move(sense_vsource)),
      transresistance_(transresistance) {}

void Ccvs::Bind(Binder& binder) {
  // Resolve the (possibly not-yet-bound) sense source first: BranchOf may
  // throw for deferred binding, and claiming our own branch before that
  // would leak an unknown on retry.
  sense_branch_ = binder.BranchOf(sense_);
  branch_ = binder.AddBranch(name());
}

void Ccvs::DeclarePattern(PatternBuilder& pattern) {
  slot_pb_ = pattern.Entry(p_, branch_);
  slot_nb_ = pattern.Entry(n_, branch_);
  slot_bp_ = pattern.Entry(branch_, p_);
  slot_bn_ = pattern.Entry(branch_, n_);
  slot_bs_ = pattern.Entry(branch_, sense_branch_);
}

void Ccvs::Eval(EvalContext& ctx) const {
  ctx.AddJacobian(slot_pb_, 1.0);
  ctx.AddJacobian(slot_nb_, -1.0);
  // Branch equation: v_p − v_n − r·i_sense = 0.
  ctx.AddJacobian(slot_bp_, 1.0);
  ctx.AddJacobian(slot_bn_, -1.0);
  ctx.AddJacobian(slot_bs_, -transresistance_);
}

void Ccvs::StampFootprint(std::vector<int>& jacobian_slots,
                          std::vector<int>& rhs_rows) const {
  (void)rhs_rows;
  jacobian_slots.insert(jacobian_slots.end(),
                        {slot_pb_, slot_nb_, slot_bp_, slot_bn_, slot_bs_});
}

}  // namespace wavepipe::devices
