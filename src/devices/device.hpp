// Abstract device interface.
//
// Lifecycle:
//   1. construction (from the netlist or the C++ builder API)
//   2. Bind()            — claim branch unknowns / state / limiting slots
//   3. DeclarePattern()  — claim Jacobian entries, store returned slot ids
//   4. Eval() x N        — hot loop; const, reentrant, writes via EvalContext
//
// See context.hpp for the thread-safety contract that makes step 4 safe to
// run concurrently from multiple WavePipe workers.
#pragma once

#include <string>
#include <vector>

#include "devices/context.hpp"

namespace wavepipe::devices {

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  virtual void Bind(Binder& binder) = 0;
  virtual void DeclarePattern(PatternBuilder& pattern) = 0;
  virtual void Eval(EvalContext& ctx) const = 0;

  /// Appends every Jacobian value slot and every RHS row this device's
  /// Eval() may ever write (a superset over all operating regions).  Valid
  /// only after DeclarePattern() has resolved slot ids.  Ground writes
  /// (slot/row -1) may be included; consumers must ignore them.
  ///
  /// This is the conflict footprint the parallel assembly coloring is built
  /// from: two devices whose footprints are disjoint can stamp the shared
  /// matrix concurrently.  State and limiting slots are excluded on purpose —
  /// they are claimed per device during Bind() and never shared.
  virtual void StampFootprint(std::vector<int>& jacobian_slots,
                              std::vector<int>& rhs_rows) const = 0;

  /// Appends to `out` every time in (t0, t1] where this device's behaviour
  /// has a corner (source edges, PWL knots).  The transient loop lands a
  /// time point exactly on each breakpoint and resets the step size there.
  virtual void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const {
    (void)t0;
    (void)t1;
    (void)out;
  }

  /// True if Eval() depends nonlinearly on x (drives Newton iteration count
  /// heuristics and convergence bookkeeping).
  virtual bool is_nonlinear() const { return false; }

  /// True when Eval() derives a STATE value from the state history itself,
  /// not purely from x (a ReducedSubnet's back-substituted interior voltages
  /// and absorbed-capacitor charges).  Ordinary device states (C·v, L·i,
  /// junction charges) are functions of the solution vector, so a validated
  /// x pins them; history-coupled states are not, and any scheduler that
  /// publishes a point solved against a PREDICTED history must re-derive
  /// them against the true history first (engine::RefreshPointStates).
  virtual bool states_depend_on_history() const { return false; }

  /// Appends every NODE index this device's equations touch: terminal nodes
  /// AND controlling nodes (branch unknowns excluded; kGround entries
  /// allowed, consumers drop them).  This is the adjacency the linear-
  /// subnetwork reduction pass (src/reduce) walks, and the invariant it
  /// relies on: a node NOT listed by any non-reducible device is provably
  /// outside every nonlinear/controlled coupling and may be eliminated.
  /// Every device must implement it — a missing terminal would silently
  /// expose its node to elimination.
  virtual void TerminalNodes(std::vector<int>& out) const = 0;

  /// Rewrites every stored node index through `map` (old node id -> new node
  /// id; kGround entries stay kGround).  Called once by the reduction pass
  /// when it rebuilds the circuit over the surviving node set, BEFORE the
  /// rebuilt circuit is finalized — branch/state/limit slots are re-claimed
  /// by the subsequent Bind(), so only node ids need rewriting here.
  virtual void RemapNodes(const std::vector<int>& map) = 0;

  /// Appends the unknown indices whose values Eval() reads (terminal nodes,
  /// controlling nodes, branch currents; ground entries allowed — consumers
  /// drop them).  Implementing this is a device's opt-in to the latency
  /// bypass (engine/bypass.hpp): it declares that Eval() is a pure function
  /// of these unknowns, the device's own state/limit slots and the per-pass
  /// scalars (a0, gmin, source_scale, transient) — never of time or the
  /// iteration count.  Time-varying devices (sources) must NOT implement it.
  /// The default (appending nothing) keeps the device out of the bypass set.
  virtual void ControllingUnknowns(std::vector<int>& out) const { (void)out; }

  /// Number of Jacobian entries this device stamps (for load statistics).
  virtual int pattern_size() const = 0;

 private:
  std::string name_;
};

/// Shared RemapNodes kernel: ground passes through, everything else goes via
/// the map (which must cover every surviving node id).
inline int RemapNode(const std::vector<int>& map, int node) {
  return node < 0 ? kGround : map[static_cast<std::size_t>(node)];
}

/// Stamps a standard 2-terminal conductance block: rows/cols (p,p) (p,n)
/// (n,p) (n,n).  Shared by most devices; returns the 4 slot ids.
struct ConductanceSlots {
  int pp = -1, pn = -1, np = -1, nn = -1;

  void Declare(PatternBuilder& pattern, int p, int n) {
    pp = pattern.Entry(p, p);
    pn = pattern.Entry(p, n);
    np = pattern.Entry(n, p);
    nn = pattern.Entry(n, n);
  }

  /// Adds conductance g between the two terminals.
  void Stamp(EvalContext& ctx, double g) const {
    ctx.AddJacobian(pp, g);
    ctx.AddJacobian(pn, -g);
    ctx.AddJacobian(np, -g);
    ctx.AddJacobian(nn, g);
  }

  void AppendTo(std::vector<int>& slots) const {
    slots.insert(slots.end(), {pp, pn, np, nn});
  }
};

/// Stamps a transconductance block: current g*(Vcp - Vcn) injected from
/// terminal p to terminal n.
struct TransconductanceSlots {
  int pcp = -1, pcn = -1, ncp = -1, ncn = -1;

  void Declare(PatternBuilder& pattern, int p, int n, int cp, int cn) {
    pcp = pattern.Entry(p, cp);
    pcn = pattern.Entry(p, cn);
    ncp = pattern.Entry(n, cp);
    ncn = pattern.Entry(n, cn);
  }

  void Stamp(EvalContext& ctx, double gm) const {
    ctx.AddJacobian(pcp, gm);
    ctx.AddJacobian(pcn, -gm);
    ctx.AddJacobian(ncp, -gm);
    ctx.AddJacobian(ncn, gm);
  }

  void AppendTo(std::vector<int>& slots) const {
    slots.insert(slots.end(), {pcp, pcn, ncp, ncn});
  }
};

}  // namespace wavepipe::devices
