// Independent and controlled sources.
#pragma once

#include <memory>
#include <string>

#include "devices/device.hpp"
#include "devices/waveform.hpp"

namespace wavepipe::devices {

/// Independent voltage source (branch-current unknown).  Positive branch
/// current flows from p through the source to n.
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, int p, int n, std::unique_ptr<Waveform> waveform);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
  }
  int pattern_size() const override { return 4; }

  int branch() const { return branch_; }
  const Waveform& waveform() const { return *waveform_; }

  /// Small-signal AC stimulus (the `ac mag [phase]` card tail).  Zero mag
  /// (default) keeps the source quiet in .ac analysis.
  void set_ac(double mag, double phase_deg) {
    ac_mag_ = mag;
    ac_phase_deg_ = phase_deg;
  }
  double ac_mag() const { return ac_mag_; }
  double ac_phase_deg() const { return ac_phase_deg_; }

  /// Replaces the waveform (DC-sweep verb retuning the swept source between
  /// sequential operating-point solves).  Never call while a solver shares
  /// the circuit.
  void SetWaveform(std::unique_ptr<Waveform> waveform) { waveform_ = std::move(waveform); }

 private:
  int p_, n_;
  std::unique_ptr<Waveform> waveform_;
  double ac_mag_ = 0.0, ac_phase_deg_ = 0.0;
  int branch_ = -1;
  int slot_pb_ = -1, slot_nb_ = -1, slot_bp_ = -1, slot_bn_ = -1;
};

/// Independent current source; positive current flows p -> n through it.
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, int p, int n, std::unique_ptr<Waveform> waveform);

  void Bind(Binder&) override {}
  void DeclarePattern(PatternBuilder&) override {}
  void Eval(EvalContext& ctx) const override;
  void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
  }
  int pattern_size() const override { return 0; }

  int p() const { return p_; }
  int n() const { return n_; }
  const Waveform& waveform() const { return *waveform_; }

  /// Small-signal AC stimulus (see VoltageSource::set_ac).
  void set_ac(double mag, double phase_deg) {
    ac_mag_ = mag;
    ac_phase_deg_ = phase_deg;
  }
  double ac_mag() const { return ac_mag_; }
  double ac_phase_deg() const { return ac_phase_deg_; }

  /// Replaces the waveform (DC-sweep verb; see VoltageSource::SetWaveform).
  void SetWaveform(std::unique_ptr<Waveform> waveform) { waveform_ = std::move(waveform); }

 private:
  int p_, n_;
  std::unique_ptr<Waveform> waveform_;
  double ac_mag_ = 0.0, ac_phase_deg_ = 0.0;
};

/// VCVS ("E"): v(p,n) = gain * v(cp,cn).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, int p, int n, int cp, int cn, double gain);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_, cp_, cn_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
    cp_ = RemapNode(map, cp_);
    cn_ = RemapNode(map, cn_);
  }
  int pattern_size() const override { return 6; }

  int branch() const { return branch_; }

 private:
  int p_, n_, cp_, cn_;
  double gain_;
  int branch_ = -1;
  int slot_pb_ = -1, slot_nb_ = -1, slot_bp_ = -1, slot_bn_ = -1, slot_bcp_ = -1,
      slot_bcn_ = -1;
};

/// VCCS ("G"): i(p->n) = gm * v(cp,cn).
class Vccs final : public Device {
 public:
  Vccs(std::string name, int p, int n, int cp, int cn, double gm);

  void Bind(Binder&) override {}
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_, cp_, cn_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
    cp_ = RemapNode(map, cp_);
    cn_ = RemapNode(map, cn_);
  }
  int pattern_size() const override { return 4; }

 private:
  int p_, n_, cp_, cn_;
  double gm_;
  TransconductanceSlots slots_;
};

/// CCCS ("F"): i(p->n) = gain * i(sense V-source branch).
class Cccs final : public Device {
 public:
  Cccs(std::string name, int p, int n, std::string sense_vsource, double gain);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
  }
  int pattern_size() const override { return 2; }

 private:
  int p_, n_;
  std::string sense_;
  double gain_;
  int sense_branch_ = -1;
  int slot_pb_ = -1, slot_nb_ = -1;
};

/// CCVS ("H"): v(p,n) = r * i(sense V-source branch).
class Ccvs final : public Device {
 public:
  Ccvs(std::string name, int p, int n, std::string sense_vsource, double transresistance);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
  }
  int pattern_size() const override { return 5; }

 private:
  int p_, n_;
  std::string sense_;
  double transresistance_;
  int branch_ = -1;
  int sense_branch_ = -1;
  int slot_pb_ = -1, slot_nb_ = -1, slot_bp_ = -1, slot_bn_ = -1, slot_bs_ = -1;
};

}  // namespace wavepipe::devices
