#include "devices/device.hpp"

// Intentionally (almost) empty: Device is header-only apart from anchoring
// the vtable here so every translation unit doesn't emit it.

namespace wavepipe::devices {}  // namespace wavepipe::devices
