#include "devices/passive.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wavepipe::devices {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, int p, int n, double resistance)
    : Device(std::move(name)), p_(p), n_(n), resistance_(resistance) {
  WP_ASSERT(resistance != 0.0);
  conductance_ = 1.0 / resistance;
}

void Resistor::DeclarePattern(PatternBuilder& pattern) { slots_.Declare(pattern, p_, n_); }

void Resistor::Eval(EvalContext& ctx) const { slots_.Stamp(ctx, conductance_); }

void Resistor::StampFootprint(std::vector<int>& jacobian_slots,
                              std::vector<int>& rhs_rows) const {
  (void)rhs_rows;
  slots_.AppendTo(jacobian_slots);
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, int p, int n, double capacitance)
    : Device(std::move(name)), p_(p), n_(n), capacitance_(capacitance) {
  WP_ASSERT(capacitance >= 0.0);
}

void Capacitor::Bind(Binder& binder) { state_ = binder.AddState(name()); }

void Capacitor::DeclarePattern(PatternBuilder& pattern) { slots_.Declare(pattern, p_, n_); }

void Capacitor::Eval(EvalContext& ctx) const {
  const double v = ctx.V(p_) - ctx.V(n_);
  const double q = capacitance_ * v;
  const double i = ctx.IntegrateState(state_, q);  // dq/dt (0 during DC)
  const double geq = ctx.a0 * capacitance_;
  slots_.Stamp(ctx, geq);
  // Companion current: the RHS sees  -(i - geq*v)  at p, + at n.
  const double ieq = i - geq * v;
  ctx.AddRhs(p_, -ieq);
  ctx.AddRhs(n_, ieq);
}

void Capacitor::StampFootprint(std::vector<int>& jacobian_slots,
                               std::vector<int>& rhs_rows) const {
  slots_.AppendTo(jacobian_slots);
  rhs_rows.insert(rhs_rows.end(), {p_, n_});
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, int p, int n, double inductance)
    : Device(std::move(name)), p_(p), n_(n), inductance_(inductance) {
  WP_ASSERT(inductance > 0.0);
}

void Inductor::Bind(Binder& binder) {
  branch_ = binder.AddBranch(name());
  state_ = binder.AddState(name());
}

void Inductor::DeclarePattern(PatternBuilder& pattern) {
  slot_pb_ = pattern.Entry(p_, branch_);
  slot_nb_ = pattern.Entry(n_, branch_);
  slot_bp_ = pattern.Entry(branch_, p_);
  slot_bn_ = pattern.Entry(branch_, n_);
  slot_bb_ = pattern.Entry(branch_, branch_);
}

void Inductor::Eval(EvalContext& ctx) const {
  // KCL: branch current leaves p, enters n.
  ctx.AddJacobian(slot_pb_, 1.0);
  ctx.AddJacobian(slot_nb_, -1.0);
  // Branch equation F = v_p − v_n − dφ/dt, φ = L·i.
  const double i = ctx.Unknown(branch_);
  const double flux = inductance_ * i;
  const double flux_dot = ctx.IntegrateState(state_, flux);
  ctx.AddJacobian(slot_bp_, 1.0);
  ctx.AddJacobian(slot_bn_, -1.0);
  ctx.AddJacobian(slot_bb_, -ctx.a0 * inductance_);
  // Companion RHS: J·x − F = history term (see derivation in DESIGN.md).
  ctx.AddRhs(branch_, flux_dot - ctx.a0 * flux);
}

void Inductor::StampFootprint(std::vector<int>& jacobian_slots,
                              std::vector<int>& rhs_rows) const {
  jacobian_slots.insert(jacobian_slots.end(),
                        {slot_pb_, slot_nb_, slot_bp_, slot_bn_, slot_bb_});
  rhs_rows.push_back(branch_);
}

// ------------------------------------------------------- MutualInductance

MutualInductance::MutualInductance(std::string name, std::string inductor1,
                                   std::string inductor2, double coupling, double l1,
                                   double l2)
    : Device(std::move(name)), name1_(std::move(inductor1)), name2_(std::move(inductor2)) {
  WP_ASSERT(coupling > -1.0 && coupling < 1.0 && coupling != 0.0);
  mutual_ = coupling * std::sqrt(l1 * l2);
}

void MutualInductance::Bind(Binder& binder) {
  branch1_ = binder.BranchOf(name1_);
  branch2_ = binder.BranchOf(name2_);
  state12_ = binder.AddState(name());
  state21_ = binder.AddState(name());
}

void MutualInductance::DeclarePattern(PatternBuilder& pattern) {
  slot_b1b2_ = pattern.Entry(branch1_, branch2_);
  slot_b2b1_ = pattern.Entry(branch2_, branch1_);
}

void MutualInductance::Eval(EvalContext& ctx) const {
  // Adds −d(M·i_other)/dt to each inductor's branch equation.
  const double i1 = ctx.Unknown(branch1_);
  const double i2 = ctx.Unknown(branch2_);
  const double q12 = mutual_ * i2;  // extra flux seen by branch 1
  const double q21 = mutual_ * i1;
  const double q12_dot = ctx.IntegrateState(state12_, q12);
  const double q21_dot = ctx.IntegrateState(state21_, q21);
  ctx.AddJacobian(slot_b1b2_, -ctx.a0 * mutual_);
  ctx.AddJacobian(slot_b2b1_, -ctx.a0 * mutual_);
  ctx.AddRhs(branch1_, q12_dot - ctx.a0 * q12);
  ctx.AddRhs(branch2_, q21_dot - ctx.a0 * q21);
}

void MutualInductance::StampFootprint(std::vector<int>& jacobian_slots,
                                      std::vector<int>& rhs_rows) const {
  jacobian_slots.insert(jacobian_slots.end(), {slot_b1b2_, slot_b2b1_});
  rhs_rows.insert(rhs_rows.end(), {branch1_, branch2_});
}

}  // namespace wavepipe::devices
