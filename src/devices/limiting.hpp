// Newton-iteration limiting helpers.
//
// Exponential device equations overflow double precision when Newton
// proposes a junction voltage a few volts too high; SPICE's classic fix is
// to limit the per-iteration voltage change.  These are the standard
// Berkeley SPICE3 limiting functions (pnjlim, fetlim, limvds), reimplemented.
#pragma once

namespace wavepipe::devices {

/// Limits a PN-junction voltage update.  vnew/vold are the proposed and
/// previous junction voltages, vt the thermal voltage, vcrit the critical
/// voltage sqrt-law corner of the junction.  Sets *limited if the value was
/// changed.
double PnjLim(double vnew, double vold, double vt, double vcrit, bool* limited);

/// Limits a MOSFET gate-source voltage update around the threshold vto.
double FetLim(double vnew, double vold, double vto);

/// Limits a MOSFET drain-source voltage update.
double LimVds(double vnew, double vold);

/// Critical voltage of a junction with saturation current isat at thermal
/// voltage vt: the voltage where the exponential's curvature takes over.
double JunctionVcrit(double isat, double vt);

}  // namespace wavepipe::devices
