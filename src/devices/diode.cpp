#include "devices/diode.hpp"

#include <cmath>

#include "devices/limiting.hpp"
#include "util/error.hpp"

namespace wavepipe::devices {
namespace {

constexpr double kBoltzmann = 1.380649e-23;
constexpr double kElectronCharge = 1.602176634e-19;

// Forward-depletion capacitance linearization corner, as in SPICE (fc).
constexpr double kFc = 0.5;

}  // namespace

double DiodeModel::ThermalVoltage() const { return kBoltzmann * temp / kElectronCharge; }

Diode::Diode(std::string name, int p, int n, DiodeModel model, double area)
    : Device(std::move(name)), p_(p), n_(n), model_(std::move(model)), area_(area) {
  WP_ASSERT(area_ > 0);
  isat_ = model_.is * area_;
  vt_ = model_.n * model_.ThermalVoltage();
  vcrit_ = JunctionVcrit(isat_, vt_);
}

void Diode::Bind(Binder& binder) {
  state_ = binder.AddState(name());
  limit_ = binder.AddLimitSlot();
}

void Diode::DeclarePattern(PatternBuilder& pattern) { slots_.Declare(pattern, p_, n_); }

double Diode::Current(double vd, double gmin) const {
  if (vd >= -3 * vt_) {
    return isat_ * (std::exp(vd / vt_) - 1) + gmin * vd;
  }
  // Reverse region: SPICE's smooth reverse characteristic avoids the flat
  // exponential tail that starves Newton of gradient.
  const double arg = 3 * vt_ / (vd * std::exp(1.0));
  const double arg3 = arg * arg * arg;
  return -isat_ * (1 + arg3) + gmin * vd;
}

double Diode::Conductance(double vd, double gmin) const {
  if (vd >= -3 * vt_) {
    return isat_ / vt_ * std::exp(vd / vt_) + gmin;
  }
  // d/dvd of -isat*(1 + arg^3): arg = 3vt/(vd*e) is negative here, so
  // 3*isat*arg^3/vd is positive (SPICE3's diode gd).
  const double arg = 3 * vt_ / (vd * std::exp(1.0));
  const double arg3 = arg * arg * arg;
  return 3 * isat_ * arg3 / vd + gmin;
}

double Diode::Charge(double vd) const {
  const double cj0 = model_.cj0 * area_;
  const double tt_current = model_.tt * Current(vd, 0.0);
  if (cj0 == 0.0) return tt_current;
  double depletion;
  if (vd < kFc * model_.vj) {
    depletion = cj0 * model_.vj / (1 - model_.m) *
                (1 - std::pow(1 - vd / model_.vj, 1 - model_.m));
  } else {
    // Linearized beyond fc·vj, C¹-continuous with the sqrt-law region.
    const double f1 = model_.vj / (1 - model_.m) * (1 - std::pow(1 - kFc, 1 - model_.m));
    const double f2 = std::pow(1 - kFc, 1 + model_.m);
    const double f3 = 1 - kFc * (1 + model_.m);
    const double vd0 = kFc * model_.vj;
    depletion = cj0 * (f1 + (1 / f2) * (f3 * (vd - vd0) +
                                        model_.m / (2 * model_.vj) * (vd * vd - vd0 * vd0)));
  }
  return depletion + tt_current;
}

double Diode::Capacitance(double vd) const {
  const double cj0 = model_.cj0 * area_;
  const double diffusion = model_.tt * Conductance(vd, 0.0);
  if (cj0 == 0.0) return diffusion;
  double depletion;
  if (vd < kFc * model_.vj) {
    depletion = cj0 * std::pow(1 - vd / model_.vj, -model_.m);
  } else {
    const double f2 = std::pow(1 - kFc, 1 + model_.m);
    depletion = cj0 / f2 * (1 - kFc * (1 + model_.m) + model_.m * vd / model_.vj);
  }
  return depletion + diffusion;
}

void Diode::Eval(EvalContext& ctx) const {
  double vd = ctx.V(p_) - ctx.V(n_);
  // Junction limiting against this solve's previous iterate.
  const double vd_old = ctx.PrevLimit(limit_, vd > vcrit_ ? vcrit_ : vd);
  bool limited = false;
  vd = PnjLim(vd, vd_old, vt_, vcrit_, &limited);
  ctx.SetLimit(limit_, vd);

  const double id = Current(vd, ctx.gmin);
  const double gd = Conductance(vd, ctx.gmin);
  slots_.Stamp(ctx, gd);
  const double ieq = id - gd * vd;
  ctx.AddRhs(p_, -ieq);
  ctx.AddRhs(n_, ieq);

  if (ctx.transient || ctx.a0 != 0.0) {
    const double q = Charge(vd);
    const double c = Capacitance(vd);
    const double iq = ctx.IntegrateState(state_, q);
    const double gc = ctx.a0 * c;
    slots_.Stamp(ctx, gc);
    const double iceq = iq - gc * vd;
    ctx.AddRhs(p_, -iceq);
    ctx.AddRhs(n_, iceq);
  } else {
    // Keep the charge state current during DC so the first transient step
    // starts from the operating-point charge.
    ctx.IntegrateState(state_, Charge(vd));
  }
}

void Diode::StampFootprint(std::vector<int>& jacobian_slots,
                           std::vector<int>& rhs_rows) const {
  slots_.AppendTo(jacobian_slots);
  rhs_rows.insert(rhs_rows.end(), {p_, n_});
}

void Diode::ControllingUnknowns(std::vector<int>& out) const {
  out.insert(out.end(), {p_, n_});
}

}  // namespace wavepipe::devices
