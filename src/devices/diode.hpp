// PN-junction diode: Shockley equation with series conductance floor (gmin),
// junction voltage limiting, depletion + diffusion capacitance.
#pragma once

#include <memory>
#include <string>

#include "devices/device.hpp"

namespace wavepipe::devices {

/// .model parameters (SPICE "D" model card subset).
struct DiodeModel {
  std::string name = "d_default";
  double is = 1e-14;    ///< saturation current [A]
  double n = 1.0;       ///< emission coefficient
  double rs = 0.0;      ///< series resistance [ohm] (0 = none)
  double cj0 = 0.0;     ///< zero-bias junction capacitance [F]
  double vj = 1.0;      ///< junction potential [V]
  double m = 0.5;       ///< grading coefficient
  double tt = 0.0;      ///< transit time [s] (diffusion capacitance)
  double temp = 300.15; ///< device temperature [K]

  double ThermalVoltage() const;
};

class Diode final : public Device {
 public:
  /// `area` scales is/cj0 as in SPICE.  rs > 0 adds an internal node — not
  /// supported here; rs is folded into the companion conductance instead
  /// (documented approximation, exact for rs = 0).
  Diode(std::string name, int p, int n, DiodeModel model, double area = 1.0);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void ControllingUnknowns(std::vector<int>& out) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
  }
  bool is_nonlinear() const override { return true; }
  int pattern_size() const override { return 4; }

  const DiodeModel& model() const { return model_; }

  /// Static current for a junction voltage (exposed for unit tests).
  double Current(double vd, double gmin) const;
  double Conductance(double vd, double gmin) const;
  /// Junction charge (depletion + diffusion) for a junction voltage.
  double Charge(double vd) const;
  double Capacitance(double vd) const;

 private:
  int p_, n_;
  DiodeModel model_;
  double area_;
  double isat_;     // area-scaled saturation current
  double vt_;       // n * thermal voltage
  double vcrit_;
  int state_ = -1;  // junction charge
  int limit_ = -1;  // limited junction voltage memory
  ConductanceSlots slots_;
};

}  // namespace wavepipe::devices
