#include "devices/limiting.hpp"

#include <algorithm>
#include <cmath>

namespace wavepipe::devices {

double PnjLim(double vnew, double vold, double vt, double vcrit, bool* limited) {
  if (limited) *limited = false;
  if (vnew > vcrit && std::abs(vnew - vold) > vt + vt) {
    if (vold > 0) {
      const double arg = (vnew - vold) / vt;
      if (arg > 0) {
        vnew = vold + vt * (2 + std::log(arg - 2));
      } else {
        vnew = vold - vt * (2 + std::log(2 - arg));
      }
    } else {
      vnew = vt * std::log(vnew / vt);
    }
    if (limited) *limited = true;
  }
  return vnew;
}

double FetLim(double vnew, double vold, double vto) {
  const double vtsthi = std::abs(2 * (vold - vto)) + 2.0;
  const double vtstlo = vtsthi / 2 + 2.0;
  const double vtox = vto + 3.5;
  const double delv = vnew - vold;

  if (vold >= vto) {
    if (vold >= vtox) {
      if (delv <= 0) {
        // Going off.
        if (vnew >= vtox) {
          if (-delv > vtstlo) vnew = vold - vtstlo;
        } else {
          vnew = std::max(vnew, vto + 2.0);
        }
      } else {
        // Staying on.
        if (delv >= vtsthi) vnew = vold + vtsthi;
      }
    } else {
      // Middle region.
      if (delv <= 0) {
        vnew = std::max(vnew, vto - 0.5);
      } else {
        vnew = std::min(vnew, vto + 4.0);
      }
    }
  } else {
    // Off.
    if (delv <= 0) {
      if (-delv > vtsthi) vnew = vold - vtsthi;
    } else {
      if (vnew <= vto + 0.5) {
        if (delv > vtstlo) vnew = vold + vtstlo;
      } else {
        vnew = vto + 0.5;
      }
    }
  }
  return vnew;
}

double LimVds(double vnew, double vold) {
  if (vold >= 3.5) {
    if (vnew > vold) {
      vnew = std::min(vnew, 3 * vold + 2);
    } else if (vnew < 3.5) {
      vnew = std::max(vnew, 2.0);
    }
  } else {
    if (vnew > vold) {
      vnew = std::min(vnew, 4.0);
    } else {
      vnew = std::max(vnew, -0.5);
    }
  }
  return vnew;
}

double JunctionVcrit(double isat, double vt) {
  return vt * std::log(vt / (std::sqrt(2.0) * isat));
}

}  // namespace wavepipe::devices
