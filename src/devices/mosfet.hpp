// MOSFET level 1 (Shichman–Hodges), the workhorse of the digital benchmark
// circuits: square-law channel current with body effect and channel-length
// modulation, plus gate capacitances (constant split or piecewise Meyer).
#pragma once

#include <string>

#include "devices/device.hpp"

namespace wavepipe::devices {

/// .model parameters (SPICE level-1 subset).  Defaults approximate a generic
/// 1um CMOS process, adequate for ring oscillators and logic chains.
struct MosfetModel {
  std::string name = "mos_default";
  int type = 1;          ///< +1 NMOS, -1 PMOS
  double vto = 0.7;      ///< threshold voltage [V] (negative for PMOS given as -0.7 etc.)
  double kp = 110e-6;    ///< transconductance parameter [A/V^2]
  double gamma = 0.4;    ///< body-effect coefficient [sqrt(V)]
  double phi = 0.65;     ///< surface potential [V]
  double lambda = 0.05;  ///< channel-length modulation [1/V]
  double tox = 20e-9;    ///< oxide thickness [m] (sets Cox for gate caps)
  double cgso = 0.0;     ///< gate-source overlap cap [F/m of width]
  double cgdo = 0.0;     ///< gate-drain overlap cap [F/m]
  double cgbo = 0.0;     ///< gate-bulk overlap cap [F/m of length]
  bool meyer = false;    ///< true: piecewise Meyer caps; false: constant split

  /// Oxide capacitance per area [F/m^2].
  double CoxPerArea() const;
};

class Mosfet final : public Device {
 public:
  Mosfet(std::string name, int d, int g, int s, int b, MosfetModel model, double w,
         double l);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void ControllingUnknowns(std::vector<int>& out) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {d_, g_, s_, b_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    d_ = RemapNode(map, d_);
    g_ = RemapNode(map, g_);
    s_ = RemapNode(map, s_);
    b_ = RemapNode(map, b_);
  }
  bool is_nonlinear() const override { return true; }
  int pattern_size() const override { return 16; }

  const MosfetModel& model() const { return model_; }
  double width() const { return w_; }
  double length() const { return l_; }

  /// Channel current and derivatives at (vgs, vds, vbs) in the type-folded
  /// frame (exposed for unit tests).  Handles both vds signs.
  struct ChannelEval {
    double ids;   // drain->source current
    double gm;    // d ids / d vgs
    double gds;   // d ids / d vds
    double gmbs;  // d ids / d vbs
  };
  ChannelEval EvalChannel(double vgs, double vds, double vbs) const;

 private:
  struct CapSet {
    double cgs, cgd, cgb;
  };
  CapSet EvalCaps(double vgs, double vds, double vbs) const;

  int d_, g_, s_, b_;
  MosfetModel model_;
  double w_, l_;
  double beta_;   // kp * W / L
  double coxwl_;  // total oxide capacitance

  int state_qgs_ = -1, state_qgd_ = -1, state_qgb_ = -1;
  int limit_vgs_ = -1, limit_vds_ = -1, limit_vbs_ = -1;

  // Full 4x4 slot block over (d, g, s, b).
  int slot_[4][4] = {};
};

}  // namespace wavepipe::devices
