// Time-dependent source waveforms: DC, PULSE, SIN, EXP, PWL.
//
// Matches SPICE semantics, including the breakpoint sets the transient loop
// uses to land on waveform corners (a step that straddles a PULSE edge
// otherwise forces a cascade of LTE rejections).
#pragma once

#include <memory>
#include <vector>

namespace wavepipe::devices {

class Waveform {
 public:
  virtual ~Waveform() = default;

  /// Value at absolute time t (t < 0 is treated as t = 0).
  virtual double Value(double t) const = 0;

  /// Appends corner times in (t0, t1] to `out`.
  virtual void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const {
    (void)t0;
    (void)t1;
    (void)out;
  }

  /// Value for the DC operating point (SPICE uses the t=0 value).
  double DcValue() const { return Value(0.0); }
};

/// Constant value.
class DcWaveform final : public Waveform {
 public:
  explicit DcWaveform(double value) : value_(value) {}
  double Value(double) const override { return value_; }

 private:
  double value_;
};

/// PULSE(v1 v2 td tr tf pw per)
class PulseWaveform final : public Waveform {
 public:
  PulseWaveform(double v1, double v2, double delay, double rise, double fall, double width,
                double period);
  double Value(double t) const override;
  void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const override;

  double period() const { return period_; }

 private:
  double v1_, v2_, delay_, rise_, fall_, width_, period_;
};

/// SIN(vo va freq td theta)
class SinWaveform final : public Waveform {
 public:
  SinWaveform(double offset, double amplitude, double freq, double delay = 0.0,
              double damping = 0.0);
  double Value(double t) const override;
  void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const override;

 private:
  double offset_, amplitude_, freq_, delay_, damping_;
};

/// EXP(v1 v2 td1 tau1 td2 tau2)
class ExpWaveform final : public Waveform {
 public:
  ExpWaveform(double v1, double v2, double rise_delay, double rise_tau, double fall_delay,
              double fall_tau);
  double Value(double t) const override;
  void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const override;

 private:
  double v1_, v2_, rise_delay_, rise_tau_, fall_delay_, fall_tau_;
};

/// PWL(t1 v1 t2 v2 ...) — linear interpolation, clamped outside the knots.
class PwlWaveform final : public Waveform {
 public:
  /// Points must be strictly increasing in time.
  explicit PwlWaveform(std::vector<std::pair<double, double>> points);
  double Value(double t) const override;
  void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const override;

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace wavepipe::devices
