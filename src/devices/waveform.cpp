#include "devices/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wavepipe::devices {
namespace {

constexpr double kPi = 3.14159265358979323846;

void AddBreakpoint(double t, double t0, double t1, std::vector<double>& out) {
  if (t > t0 && t <= t1) out.push_back(t);
}

}  // namespace

PulseWaveform::PulseWaveform(double v1, double v2, double delay, double rise, double fall,
                             double width, double period)
    : v1_(v1), v2_(v2), delay_(delay), rise_(rise), fall_(fall), width_(width),
      period_(period) {
  WP_ASSERT(rise_ >= 0 && fall_ >= 0 && width_ >= 0);
  // SPICE defaults degenerate zero rise/fall to "very fast but finite" so the
  // waveform stays a function; 1ps keeps corners well-posed.
  if (rise_ == 0) rise_ = 1e-12;
  if (fall_ == 0) fall_ = 1e-12;
  if (period_ <= 0) period_ = 1e30;  // single pulse
  WP_ASSERT(period_ >= rise_ + width_ + fall_);
}

double PulseWaveform::Value(double t) const {
  t = std::max(t, 0.0);
  if (t < delay_) return v1_;
  const double tp = std::fmod(t - delay_, period_);
  if (tp < rise_) return v1_ + (v2_ - v1_) * tp / rise_;
  if (tp < rise_ + width_) return v2_;
  if (tp < rise_ + width_ + fall_) {
    return v2_ + (v1_ - v2_) * (tp - rise_ - width_) / fall_;
  }
  return v1_;
}

void PulseWaveform::CollectBreakpoints(double t0, double t1, std::vector<double>& out) const {
  if (period_ >= 1e29) {
    // Single pulse.
    AddBreakpoint(delay_, t0, t1, out);
    AddBreakpoint(delay_ + rise_, t0, t1, out);
    AddBreakpoint(delay_ + rise_ + width_, t0, t1, out);
    AddBreakpoint(delay_ + rise_ + width_ + fall_, t0, t1, out);
    return;
  }
  // Periodic: emit corners of every period intersecting (t0, t1].
  const double first_period = std::floor(std::max(0.0, t0 - delay_) / period_);
  for (double k = first_period;; k += 1.0) {
    const double base = delay_ + k * period_;
    if (base > t1) break;
    AddBreakpoint(base, t0, t1, out);
    AddBreakpoint(base + rise_, t0, t1, out);
    AddBreakpoint(base + rise_ + width_, t0, t1, out);
    AddBreakpoint(base + rise_ + width_ + fall_, t0, t1, out);
  }
}

SinWaveform::SinWaveform(double offset, double amplitude, double freq, double delay,
                         double damping)
    : offset_(offset), amplitude_(amplitude), freq_(freq), delay_(delay), damping_(damping) {
  WP_ASSERT(freq_ > 0);
}

double SinWaveform::Value(double t) const {
  t = std::max(t, 0.0);
  if (t < delay_) return offset_;
  const double tau = t - delay_;
  return offset_ + amplitude_ * std::exp(-damping_ * tau) * std::sin(2 * kPi * freq_ * tau);
}

void SinWaveform::CollectBreakpoints(double t0, double t1, std::vector<double>& out) const {
  // The only corner is the delayed start; the sinusoid itself is smooth.
  AddBreakpoint(delay_, t0, t1, out);
}

ExpWaveform::ExpWaveform(double v1, double v2, double rise_delay, double rise_tau,
                         double fall_delay, double fall_tau)
    : v1_(v1), v2_(v2), rise_delay_(rise_delay), rise_tau_(rise_tau),
      fall_delay_(fall_delay), fall_tau_(fall_tau) {
  WP_ASSERT(rise_tau_ > 0 && fall_tau_ > 0);
  WP_ASSERT(fall_delay_ >= rise_delay_);
}

double ExpWaveform::Value(double t) const {
  t = std::max(t, 0.0);
  double v = v1_;
  if (t >= rise_delay_) {
    v += (v2_ - v1_) * (1.0 - std::exp(-(t - rise_delay_) / rise_tau_));
  }
  if (t >= fall_delay_) {
    v += (v1_ - v2_) * (1.0 - std::exp(-(t - fall_delay_) / fall_tau_));
  }
  return v;
}

void ExpWaveform::CollectBreakpoints(double t0, double t1, std::vector<double>& out) const {
  AddBreakpoint(rise_delay_, t0, t1, out);
  AddBreakpoint(fall_delay_, t0, t1, out);
}

PwlWaveform::PwlWaveform(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  WP_ASSERT(!points_.empty());
  for (std::size_t i = 1; i < points_.size(); ++i) {
    WP_ASSERT(points_[i].first > points_[i - 1].first);
  }
}

double PwlWaveform::Value(double t) const {
  t = std::max(t, 0.0);
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  const auto it = std::upper_bound(points_.begin(), points_.end(), t,
                                   [](double v, const auto& p) { return v < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double f = (t - lo.first) / (hi.first - lo.first);
  return lo.second + f * (hi.second - lo.second);
}

void PwlWaveform::CollectBreakpoints(double t0, double t1, std::vector<double>& out) const {
  for (const auto& [t, v] : points_) AddBreakpoint(t, t0, t1, out);
}

}  // namespace wavepipe::devices
