// Contexts through which devices talk to the analysis engine.
//
// Thread-safety contract (load-bearing for WavePipe): after elaboration,
// Device instances are IMMUTABLE — Eval() is const and writes only through
// the EvalContext it is handed.  Several WavePipe worker threads evaluate the
// same device list concurrently, each with its own EvalContext (own Jacobian
// values, RHS, state and limiting arrays).  Any per-instance mutable state
// (Newton limiting memory, charges) therefore lives in context slots claimed
// during Bind(), never in the device object.
#pragma once

#include <span>
#include <string>

namespace wavepipe::devices {

/// Terminal index representing the ground/reference node.  Stamps into
/// ground rows/columns are discarded (the ground equation is dropped in MNA).
inline constexpr int kGround = -1;

/// Phase 1 of elaboration: devices claim extra unknowns (branch currents),
/// dynamic-state slots (charges/fluxes) and Newton-limiting memory slots.
class Binder {
 public:
  virtual ~Binder() = default;

  /// Claims a new branch-current unknown; returns its unknown index.
  virtual int AddBranch(const std::string& owner_name) = 0;
  /// Claims a dynamic state slot (one charge or flux).
  virtual int AddState(const std::string& owner_name) = 0;
  /// Claims one double of Newton-limiting memory.
  virtual int AddLimitSlot() = 0;
  /// Looks up the branch unknown of another device (for F/H/K elements).
  /// Throws ElaborationError if `device_name` has no branch.
  virtual int BranchOf(const std::string& device_name) = 0;
};

/// Phase 2: devices declare which Jacobian entries they will write.  The
/// engine compresses all declarations into one CSC pattern and hands back a
/// slot id per declaration; Eval() then accumulates by slot, so the hot loop
/// never searches the matrix.  Ground rows/cols yield slot -1 (discarded).
class PatternBuilder {
 public:
  virtual ~PatternBuilder() = default;
  virtual int Entry(int row, int col) = 0;
};

/// Phase 3 (hot path, non-virtual): one Newton evaluation.
///
/// The engine uses the classic SPICE companion formulation: devices stamp
/// the Jacobian J and the right-hand side b such that the linear system
/// J * x_next = b reproduces  J * x_k - F(x_k).  Linear devices therefore
/// stamp their exact conductances with no RHS term; nonlinear devices stamp
/// the linearization g = dI/dV plus the equivalent current  Ieq = I - g*V.
class EvalContext {
 public:
  // ---- inputs -------------------------------------------------------------
  double time = 0.0;            ///< absolute time of the point being solved
  double a0 = 0.0;              ///< d/dt coefficient of the active integrator
  bool transient = false;       ///< false during DC operating point
  bool first_iteration = true;  ///< true on Newton iteration 0
  double gmin = 0.0;            ///< continuation gmin across nonlinear junctions
  double source_scale = 1.0;    ///< source-stepping continuation factor
  /// Rescue-ladder node shunt the ENGINE adds on every node diagonal.  Most
  /// devices ignore it; a ReducedSubnet must see it to fold the same shunt
  /// onto its eliminated interior diagonals (see src/reduce).
  double gshunt = 0.0;

  std::span<const double> x;  ///< current Newton iterate (all unknowns)

  /// Voltage of a terminal (0 for ground).
  double V(int node) const { return node < 0 ? 0.0 : x[static_cast<std::size_t>(node)]; }
  /// Value of any unknown (branch currents included).
  double Unknown(int index) const { return x[static_cast<std::size_t>(index)]; }

  // ---- outputs ------------------------------------------------------------
  std::span<double> jacobian_values;  ///< indexed by pattern slot
  std::span<double> rhs;              ///< indexed by unknown

  void AddJacobian(int slot, double value) {
    if (slot >= 0) jacobian_values[static_cast<std::size_t>(slot)] += value;
  }
  void AddRhs(int row, double value) {
    if (row >= 0) rhs[static_cast<std::size_t>(row)] += value;
  }

  // ---- dynamic state ------------------------------------------------------
  std::span<double> state_now;          ///< charges computed this iterate
  std::span<const double> state_hist;   ///< integrator history term per slot

  /// Records candidate charge/flux q for `slot` and returns its time
  /// derivative under the active method:  dq/dt ≈ a0*q + history(slot).
  /// During DC both a0 and the history are zero, so dynamic branches vanish.
  double IntegrateState(int slot, double q) {
    state_now[static_cast<std::size_t>(slot)] = q;
    return a0 * q + state_hist[static_cast<std::size_t>(slot)];
  }

  // ---- Newton limiting memory ---------------------------------------------
  std::span<const double> limit_prev;  ///< limited values of previous iterate
  std::span<double> limit_now;
  bool limit_valid = false;  ///< false on the very first iterate of a solve

  /// Previous limited value of `slot`, or `seed` when no history exists yet.
  double PrevLimit(int slot, double seed) const {
    return limit_valid ? limit_prev[static_cast<std::size_t>(slot)] : seed;
  }
  void SetLimit(int slot, double value) {
    limit_now[static_cast<std::size_t>(slot)] = value;
  }
};

}  // namespace wavepipe::devices
