// Passive elements: resistor, capacitor, inductor, mutual inductance.
#pragma once

#include <string>

#include "devices/device.hpp"

namespace wavepipe::devices {

/// Linear resistor between nodes p and n.
class Resistor final : public Device {
 public:
  Resistor(std::string name, int p, int n, double resistance);

  void Bind(Binder& binder) override {}
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
  }
  int pattern_size() const override { return 4; }

  double resistance() const { return resistance_; }
  /// Exactly the value Eval() stamps — the reduction pass absorbs this, not
  /// a recomputed 1/R, so reduced stamps reuse the same bits.
  double conductance() const { return conductance_; }
  int p() const { return p_; }
  int n() const { return n_; }

 private:
  int p_, n_;
  double resistance_;
  double conductance_;
  ConductanceSlots slots_;
};

/// Linear capacitor.  Charge q = C·v is handed to the integrator; the device
/// stamps geq = a0·C plus the companion current.  Open during DC (a0 = 0).
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, int p, int n, double capacitance);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
  }
  int pattern_size() const override { return 4; }

  double capacitance() const { return capacitance_; }
  int state_slot() const { return state_; }
  int p() const { return p_; }
  int n() const { return n_; }

 private:
  int p_, n_;
  double capacitance_;
  int state_ = -1;
  ConductanceSlots slots_;
};

/// Linear inductor with a branch-current unknown.  Branch equation
/// v_p − v_n − dφ/dt = 0 with φ = L·i; shorts during DC.
class Inductor final : public Device {
 public:
  Inductor(std::string name, int p, int n, double inductance);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override {
    out.insert(out.end(), {p_, n_});
  }
  void RemapNodes(const std::vector<int>& map) override {
    p_ = RemapNode(map, p_);
    n_ = RemapNode(map, n_);
  }
  int pattern_size() const override { return 5; }

  double inductance() const { return inductance_; }
  int branch() const { return branch_; }

 private:
  int p_, n_;
  double inductance_;
  int branch_ = -1;
  int state_ = -1;
  int slot_bp_ = -1, slot_bn_ = -1, slot_pb_ = -1, slot_nb_ = -1, slot_bb_ = -1;
};

/// Mutual inductance K between two previously declared inductors:
/// adds −M·d(i_other)/dt to each branch equation, M = k·sqrt(L1·L2).
class MutualInductance final : public Device {
 public:
  MutualInductance(std::string name, std::string inductor1, std::string inductor2,
                   double coupling, double l1, double l2);

  void Bind(Binder& binder) override;
  void DeclarePattern(PatternBuilder& pattern) override;
  void Eval(EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void TerminalNodes(std::vector<int>& out) const override { (void)out; }
  void RemapNodes(const std::vector<int>& map) override { (void)map; }
  int pattern_size() const override { return 2; }

  double mutual() const { return mutual_; }

 private:
  std::string name1_, name2_;
  double mutual_;
  int branch1_ = -1, branch2_ = -1;
  int state12_ = -1, state21_ = -1;  // cross fluxes M·i2 and M·i1
  int slot_b1b2_ = -1, slot_b2b1_ = -1;
};

}  // namespace wavepipe::devices
