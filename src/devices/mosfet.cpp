#include "devices/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "devices/limiting.hpp"
#include "util/error.hpp"

namespace wavepipe::devices {
namespace {

constexpr double kEpsOx = 3.9 * 8.8541878128e-12;  // SiO2 permittivity [F/m]

}  // namespace

double MosfetModel::CoxPerArea() const { return kEpsOx / tox; }

Mosfet::Mosfet(std::string name, int d, int g, int s, int b, MosfetModel model, double w,
               double l)
    : Device(std::move(name)), d_(d), g_(g), s_(s), b_(b), model_(std::move(model)), w_(w),
      l_(l) {
  WP_ASSERT(w_ > 0 && l_ > 0);
  WP_ASSERT(model_.type == 1 || model_.type == -1);
  beta_ = model_.kp * w_ / l_;
  coxwl_ = model_.CoxPerArea() * w_ * l_;
}

void Mosfet::Bind(Binder& binder) {
  state_qgs_ = binder.AddState(name());
  state_qgd_ = binder.AddState(name());
  state_qgb_ = binder.AddState(name());
  limit_vgs_ = binder.AddLimitSlot();
  limit_vds_ = binder.AddLimitSlot();
  limit_vbs_ = binder.AddLimitSlot();
}

void Mosfet::DeclarePattern(PatternBuilder& pattern) {
  const int nodes[4] = {d_, g_, s_, b_};
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) slot_[r][c] = pattern.Entry(nodes[r], nodes[c]);
  }
}

Mosfet::ChannelEval Mosfet::EvalChannel(double vgs, double vds, double vbs) const {
  // Reverse mode (vds < 0): evaluate the forward equations with source and
  // drain exchanged, then map the derivatives back by the chain rule.
  const bool reverse = vds < 0;
  const double fvgs = reverse ? vgs - vds : vgs;
  const double fvds = reverse ? -vds : vds;
  const double fvbs = reverse ? vbs - vds : vbs;

  // Body effect.  vbs > phi would make the sqrt imaginary; clamp (the
  // junction limiting keeps iterates out of that region anyway).
  const double arg = std::max(model_.phi - fvbs, 1e-6);
  const double sqrt_term = std::sqrt(arg);
  // Folded frame is always NMOS-like: vto enters multiplied by the type.
  const double vth = model_.vto * model_.type +
                     model_.gamma * (sqrt_term - std::sqrt(model_.phi));
  const double dvth_dvbs = (arg > 1e-6) ? -model_.gamma / (2 * sqrt_term) : 0.0;

  const double vgst = fvgs - vth;
  double ids = 0, f1 = 0, f2 = 0, f3 = 0;  // F and its partials in forward frame
  if (vgst <= 0) {
    // Cutoff.
  } else if (vgst <= fvds) {
    // Saturation.
    const double clm = 1 + model_.lambda * fvds;
    ids = 0.5 * beta_ * vgst * vgst * clm;
    f1 = beta_ * vgst * clm;
    f2 = 0.5 * beta_ * vgst * vgst * model_.lambda;
    f3 = f1 * (-dvth_dvbs);
  } else {
    // Linear (triode).
    const double clm = 1 + model_.lambda * fvds;
    ids = beta_ * fvds * (vgst - 0.5 * fvds) * clm;
    f1 = beta_ * fvds * clm;
    f2 = beta_ * (vgst - fvds) * clm + beta_ * fvds * (vgst - 0.5 * fvds) * model_.lambda;
    f3 = f1 * (-dvth_dvbs);
  }

  ChannelEval out{};
  if (!reverse) {
    out.ids = ids;
    out.gm = f1;
    out.gds = f2;
    out.gmbs = f3;
  } else {
    // I = -F(vgs - vds, -vds, vbs - vds).
    out.ids = -ids;
    out.gm = -f1;
    out.gmbs = -f3;
    out.gds = f1 + f2 + f3;
  }
  return out;
}

Mosfet::CapSet Mosfet::EvalCaps(double vgs, double vds, double vbs) const {
  CapSet caps{};
  const double ov_gs = model_.cgso * w_;
  const double ov_gd = model_.cgdo * w_;
  const double ov_gb = model_.cgbo * l_;

  if (!model_.meyer) {
    // Constant split: half the oxide capacitance to source, half to drain.
    caps.cgs = ov_gs + 0.5 * coxwl_;
    caps.cgd = ov_gd + 0.5 * coxwl_;
    caps.cgb = ov_gb;
    return caps;
  }

  // Piecewise Meyer capacitances (SPICE DEVqmeyer), evaluated in the
  // type-folded frame; reverse mode swaps cgs/cgd.
  const bool reverse = vds < 0;
  const double fvgs = reverse ? vgs - vds : vgs;
  const double fvds = reverse ? -vds : vds;
  const double fvbs = reverse ? vbs - vds : vbs;
  const double arg = std::max(model_.phi - fvbs, 1e-6);
  const double vth = model_.vto * model_.type +
                     model_.gamma * (std::sqrt(arg) - std::sqrt(model_.phi));
  const double vgst = fvgs - vth;
  const double phi = model_.phi;

  double cgs_m, cgd_m, cgb_m;
  if (vgst <= -phi) {
    cgb_m = 0.5 * coxwl_;
    cgs_m = 0;
    cgd_m = 0;
  } else if (vgst <= -phi / 2) {
    cgb_m = -vgst * coxwl_ / (2 * phi);
    cgs_m = 0;
    cgd_m = 0;
  } else if (vgst <= 0) {
    cgb_m = -vgst * coxwl_ / (2 * phi);
    cgs_m = vgst * coxwl_ / (1.5 * phi) + coxwl_ / 3;
    cgd_m = 0;
  } else if (vgst <= fvds) {
    // Saturation.
    cgb_m = 0;
    cgs_m = 2.0 / 3.0 * coxwl_;
    cgd_m = 0;
  } else {
    // Linear.
    const double denom = 2 * vgst - fvds;
    const double rs = (vgst - fvds) / denom;
    const double rd = vgst / denom;
    cgb_m = 0;
    cgs_m = (1 - rs * rs) * 2.0 / 3.0 * coxwl_;
    cgd_m = (1 - rd * rd) * 2.0 / 3.0 * coxwl_;
  }
  if (reverse) std::swap(cgs_m, cgd_m);
  caps.cgs = ov_gs + cgs_m;
  caps.cgd = ov_gd + cgd_m;
  caps.cgb = ov_gb + cgb_m;
  return caps;
}

void Mosfet::Eval(EvalContext& ctx) const {
  const double type = static_cast<double>(model_.type);
  // Type-folded controlling voltages.
  double vgs = type * (ctx.V(g_) - ctx.V(s_));
  double vds = type * (ctx.V(d_) - ctx.V(s_));
  double vbs = type * (ctx.V(b_) - ctx.V(s_));

  // Newton limiting (memory slots hold folded values).
  const double folded_vto = model_.vto * type;
  const double vgs_old = ctx.PrevLimit(limit_vgs_, vgs);
  const double vds_old = ctx.PrevLimit(limit_vds_, vds);
  const double vbs_old = ctx.PrevLimit(limit_vbs_, vbs);
  if (ctx.limit_valid) {
    vgs = FetLim(vgs, vgs_old, folded_vto);
    vds = LimVds(vds, vds_old);
    // Bulk junction: cap the per-iteration change.
    vbs = std::clamp(vbs, vbs_old - 1.0, vbs_old + 1.0);
  }
  vbs = std::min(vbs, model_.phi - 1e-3);  // keep body-effect sqrt real
  ctx.SetLimit(limit_vgs_, vgs);
  ctx.SetLimit(limit_vds_, vds);
  ctx.SetLimit(limit_vbs_, vbs);

  const ChannelEval ch = EvalChannel(vgs, vds, vbs);

  // Physical drain current and node-frame derivatives (the type factor
  // cancels in every second derivative; see DESIGN.md key decision notes).
  const double id_phys = type * ch.ids;
  const double gm = ch.gm, gds = ch.gds, gmbs = ch.gmbs;
  const double gss = gm + gds + gmbs;

  enum { D = 0, G = 1, S = 2, B = 3 };
  ctx.AddJacobian(slot_[D][G], gm);
  ctx.AddJacobian(slot_[D][D], gds);
  ctx.AddJacobian(slot_[D][B], gmbs);
  ctx.AddJacobian(slot_[D][S], -gss);
  ctx.AddJacobian(slot_[S][G], -gm);
  ctx.AddJacobian(slot_[S][D], -gds);
  ctx.AddJacobian(slot_[S][B], -gmbs);
  ctx.AddJacobian(slot_[S][S], gss);

  // Companion RHS in node frame: ieq = I_D − J_row · v.  The folded voltages
  // equal type·(node differences), so type·(g·v_folded) = g·(node diff)·1.
  const double lin = gm * vgs + gds * vds + gmbs * vbs;  // folded frame
  const double ieq = id_phys - type * lin;
  ctx.AddRhs(d_, -ieq);
  ctx.AddRhs(s_, ieq);

  // gmin from drain and source to bulk keeps isolated nodes anchored.
  if (ctx.gmin > 0) {
    ctx.AddJacobian(slot_[D][D], ctx.gmin);
    ctx.AddJacobian(slot_[D][B], -ctx.gmin);
    ctx.AddJacobian(slot_[B][D], -ctx.gmin);
    ctx.AddJacobian(slot_[B][B], ctx.gmin);
    ctx.AddJacobian(slot_[S][S], ctx.gmin);
    ctx.AddJacobian(slot_[S][B], -ctx.gmin);
    ctx.AddJacobian(slot_[B][S], -ctx.gmin);
    ctx.AddJacobian(slot_[B][B], ctx.gmin);
  }

  // Gate capacitances (charges in node frame; caps evaluated folded).
  const CapSet caps = EvalCaps(vgs, vds, vbs);
  struct GateCap {
    int other;      // node on the far side of the cap
    double c;
    int state;
  };
  const GateCap gate_caps[3] = {{s_, caps.cgs, state_qgs_},
                                {d_, caps.cgd, state_qgd_},
                                {b_, caps.cgb, state_qgb_}};
  const int gate_row[3] = {S, D, B};
  for (int k = 0; k < 3; ++k) {
    const auto& gc = gate_caps[k];
    const double v = ctx.V(g_) - ctx.V(gc.other);
    const double q = gc.c * v;
    if (!ctx.transient && ctx.a0 == 0.0) {
      ctx.IntegrateState(gc.state, q);  // record operating-point charge
      continue;
    }
    const double iq = ctx.IntegrateState(gc.state, q);
    const double geq = ctx.a0 * gc.c;
    const int o = gate_row[k];
    ctx.AddJacobian(slot_[G][G], geq);
    ctx.AddJacobian(slot_[G][o], -geq);
    ctx.AddJacobian(slot_[o][G], -geq);
    ctx.AddJacobian(slot_[o][o], geq);
    const double iceq = iq - geq * v;
    ctx.AddRhs(g_, -iceq);
    ctx.AddRhs(gc.other, iceq);
  }
}

void Mosfet::StampFootprint(std::vector<int>& jacobian_slots,
                            std::vector<int>& rhs_rows) const {
  // Eval() may touch any of the 16 block slots depending on region/caps;
  // report the full block so the footprint is a superset in every regime.
  for (const auto& row : slot_) {
    jacobian_slots.insert(jacobian_slots.end(), row, row + 4);
  }
  rhs_rows.insert(rhs_rows.end(), {d_, g_, s_, b_});
}

void Mosfet::ControllingUnknowns(std::vector<int>& out) const {
  out.insert(out.end(), {d_, g_, s_, b_});
}

}  // namespace wavepipe::devices
