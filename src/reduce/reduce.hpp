// Linear-subnetwork reduction: netlist-elaboration pass that detects maximal
// linear-only subgraphs (resistors, capacitors, current sources), eliminates
// their interior nodes by exact companion-model-aware Gaussian elimination and
// replaces each subgraph with one ReducedSubnet device stamping the small
// Schur-complement equivalent (see reduced_subnet.hpp for the algebra).
//
// Detection is a deterministic port-boundary sweep:
//   * every node listed by any NON-reducible device (via TerminalNodes) is
//     anchored, as is every node in `keep_nodes` (initial conditions, nodesets)
//     and ground;
//   * connected components of non-anchored nodes under the reducible-device
//     adjacency, discovered by BFS over ascending node ids, become subnets;
//   * a component's ports are its anchored neighbors; reducible devices with
//     at least one interior endpoint are absorbed, the rest stay.
// Probed nodes are NOT anchored: probes of eliminated interiors are rerouted
// to the subnet's back-substituted state slots (ProbeSet::EncodeState), so
// `.print` output is unchanged — that is the on-demand interior expansion.
//
// The pass consumes the elaborated circuit and rebuilds a fresh one over the
// surviving node set (ascending original id, so survivor indices only shift
// down); when nothing is reducible the ORIGINAL circuit is returned unmoved
// and downstream behaviour is bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/circuit.hpp"
#include "engine/transient.hpp"

namespace wavepipe::util::telemetry {
class CounterRegistry;
}

namespace wavepipe::reduce {

/// Counters describing one reduction pass (run_stats schema v1.3: exported
/// under "reduce.*").
struct ReductionStats {
  std::uint64_t subnets = 0;             ///< ReducedSubnet devices created
  std::uint64_t nodes_eliminated = 0;    ///< interior unknowns removed
  std::uint64_t devices_absorbed = 0;    ///< R/C/I devices folded into subnets
  std::uint64_t static_subnets = 0;      ///< purely resistive subnets
  std::uint64_t max_interior = 0;        ///< largest eliminated interior
  std::uint64_t max_ports = 0;           ///< widest port boundary
  std::uint64_t interior_expansions = 0; ///< probes rerouted to state slots

  /// Exports every counter under the "reduce." prefix.
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;
};

/// Result of Reduce().  `unknown_map` translates ORIGINAL unknown indices:
///   * surviving node  -> its node index in `circuit`
///   * eliminated node -> engine::ProbeSet::EncodeState(slot) of the state
///     slot carrying its back-substituted voltage (a negative encoding)
///   * branch j        -> circuit->num_nodes() + j (branch ordinals survive:
///     absorbed devices never claim branches)
struct ReductionResult {
  std::unique_ptr<engine::Circuit> circuit;
  bool reduced = false;          ///< false: `circuit` is the input, untouched
  std::vector<int> unknown_map;  ///< size = original num_unknowns()
  ReductionStats stats;
};

/// Runs the reduction pass on a finalized circuit.  `keep_nodes` lists node
/// unknowns that must survive even if only linear devices touch them
/// (targets of .ic/.nodeset — their values are imposed by unknown index).
/// Returns the input circuit unmoved (reduced = false, identity map) when
/// nothing is reducible.
ReductionResult Reduce(std::unique_ptr<engine::Circuit> circuit,
                       std::span<const int> keep_nodes = {});

/// Rewrites `spec` (probe unknowns, initial-condition targets) through
/// `result.unknown_map` and returns how many probes were rerouted to
/// back-substituted interior state slots.  Callers add the return value to
/// `result.stats.interior_expansions`.
std::size_t RemapSpec(const ReductionResult& result, engine::TransientSpec& spec);

}  // namespace wavepipe::reduce
