#include "reduce/reduced_subnet.hpp"

#include <algorithm>
#include <span>

#include "sparse/lu.hpp"
#include "sparse/triplet.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace wavepipe::reduce {

namespace {

/// Per-thread scratch so the hot Eval() path allocates only on first use.
/// Safe under concurrent Eval(): each worker thread owns its own copy, and
/// every vector is fully (re)sized and overwritten per call.
struct Workspace {
  std::vector<double> r;        // local RHS, interior then ports
  std::vector<double> w;        // A_ii^{-1} r_i
  std::vector<double> vp;       // port voltages of the current iterate
  std::vector<double> vi;       // back-substituted interior voltages
  std::vector<double> lu_work;  // SparseLu::Solve workspace
};

Workspace& LocalWorkspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace

/// One factorization of the interior block for a fixed (a0', gshunt) pair,
/// plus the dense products the Schur stamp needs.  Immutable once built;
/// shared by concurrent Evals through shared_ptr<const Bundle>.
struct ReducedSubnet::Bundle {
  sparse::SparseLu lu;        ///< factored A_ii (kNatural: ascending node id)
  std::vector<double> a_ip;   ///< ni x np, column-major (a_ip[i + j*ni])
  std::vector<double> x;      ///< ni x np, column-major: A_ii^{-1} a_ip
  std::vector<double> s;      ///< np x np, row-major Schur complement
};

ReducedSubnet::ReducedSubnet(std::string name, std::vector<int> port_nodes,
                             int num_interior,
                             std::vector<AbsorbedResistor> resistors,
                             std::vector<AbsorbedCapacitor> capacitors,
                             std::vector<AbsorbedSource> sources,
                             std::vector<std::unique_ptr<devices::Device>> absorbed)
    : devices::Device(std::move(name)),
      ports_(std::move(port_nodes)),
      ni_(num_interior),
      resistors_(std::move(resistors)),
      capacitors_(std::move(capacitors)),
      sources_(std::move(sources)),
      absorbed_(std::move(absorbed)) {
  WP_ASSERT(ni_ > 0);
  const int np = num_ports();
  auto check_local = [&](int a, int b) {
    WP_ASSERT(a >= devices::kGround && a < ni_ + np);
    WP_ASSERT(b >= devices::kGround && b < ni_ + np);
    WP_ASSERT(a < ni_ || b < ni_);  // absorbed => at least one interior end
  };
  for (const auto& r : resistors_) check_local(r.a, r.b);
  for (const auto& c : capacitors_) check_local(c.a, c.b);
  for (const auto& s : sources_) check_local(s.a, s.b);
}

ReducedSubnet::~ReducedSubnet() = default;

void ReducedSubnet::Bind(devices::Binder& binder) {
  // Finalize() may Bind more than once (deferred-bind retry); reassign from
  // scratch each time.
  cap_state_.clear();
  cap_state_.reserve(capacitors_.size());
  for (std::size_t k = 0; k < capacitors_.size(); ++k) {
    cap_state_.push_back(binder.AddState(name()));
  }
  interior_state_.clear();
  interior_state_.reserve(static_cast<std::size_t>(ni_));
  for (int k = 0; k < ni_; ++k) {
    interior_state_.push_back(binder.AddState(name()));
  }
}

void ReducedSubnet::DeclarePattern(devices::PatternBuilder& pattern) {
  // The Schur complement couples every port with every port: a dense np x np
  // block.  This is the reduction's pattern cost — bounded by the (small)
  // port count, independent of how many interior nodes were eliminated.
  const int np = num_ports();
  port_slots_.assign(static_cast<std::size_t>(np) * static_cast<std::size_t>(np), -1);
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      port_slots_[static_cast<std::size_t>(i * np + j)] =
          pattern.Entry(ports_[static_cast<std::size_t>(i)],
                        ports_[static_cast<std::size_t>(j)]);
    }
  }
}

std::shared_ptr<const ReducedSubnet::Bundle> ReducedSubnet::BundleFor(
    double a0, double gshunt) const {
  const std::pair<double, double> key(a0, gshunt);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    for (const auto& [k, bundle] : cache_) {
      if (k == key) return bundle;
    }
  }
  // Build outside the lock: concurrent builders produce bit-identical
  // bundles (same deterministic assembly + factorization), so it does not
  // matter whose insert wins.
  auto built = ComputeBundle(a0, gshunt);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (const auto& [k, bundle] : cache_) {
    if (k == key) return bundle;  // first insert won; agree with it
  }
  if (cache_.size() >= kMaxBundles) cache_.erase(cache_.begin());
  cache_.emplace_back(key, built);
  return built;
}

std::shared_ptr<const ReducedSubnet::Bundle> ReducedSubnet::ComputeBundle(
    double a0, double gshunt) const {
  if (WP_FAULT_POINT("reduce.singular")) {
    throw SingularMatrixError("reduce.singular: injected interior pivot failure");
  }
  const int ni = ni_;
  const int np = num_ports();
  auto bundle = std::make_shared<Bundle>();
  bundle->a_ip.assign(static_cast<std::size_t>(ni) * static_cast<std::size_t>(np), 0.0);
  std::vector<double> s_diag(static_cast<std::size_t>(np), 0.0);

  sparse::TripletBuilder triplets(ni, ni);
  // Reserve every interior diagonal so the gshunt fold (and the factorization
  // pivot) always has an entry, even for nodes whose devices vanish at DC.
  for (int k = 0; k < ni; ++k) triplets.AddPattern(k, k);

  // Two-terminal conductance g between local endpoints (a, b).  By the
  // absorption rule at least one endpoint is interior and port-port coupling
  // cannot occur, so the port-side contribution is diagonal-only.
  auto stamp_g = [&](int a, int b, double g) {
    if (a == b) return;  // degenerate self-loop stamps net zero
    for (int e : {a, b}) {
      if (e < 0) continue;
      if (e < ni) {
        triplets.Add(e, e, g);
      } else {
        s_diag[static_cast<std::size_t>(e - ni)] += g;
      }
    }
    if (a >= 0 && b >= 0) {
      const bool a_int = a < ni;
      const bool b_int = b < ni;
      if (a_int && b_int) {
        triplets.Add(a, b, -g);
        triplets.Add(b, a, -g);
      } else if (a_int) {
        bundle->a_ip[static_cast<std::size_t>(a) +
                     static_cast<std::size_t>(b - ni) * static_cast<std::size_t>(ni)] -= g;
      } else {
        WP_ASSERT(b_int);
        bundle->a_ip[static_cast<std::size_t>(b) +
                     static_cast<std::size_t>(a - ni) * static_cast<std::size_t>(ni)] -= g;
      }
    }
  };

  for (const auto& r : resistors_) stamp_g(r.a, r.b, r.conductance);
  if (a0 != 0.0) {
    for (const auto& c : capacitors_) stamp_g(c.a, c.b, a0 * c.capacitance);
  }
  // The engine stamps gshunt on every surviving node diagonal itself; the
  // eliminated interiors must receive the same shunt here or the rescue
  // ladder (DC gmin stepping, transient gshunt rungs) would behave
  // differently reduced vs unreduced.
  if (gshunt > 0.0) {
    for (int k = 0; k < ni; ++k) triplets.Add(k, k, gshunt);
  }

  sparse::SparseLu::Options options;
  options.ordering = sparse::SparseLu::Options::Ordering::kNatural;
  bundle->lu.Reset(options);
  bundle->lu.Factor(triplets.ToCsc());  // throws SingularMatrixError on zero pivot

  // X = A_ii^{-1} A_ip, one triangular solve per port column.
  bundle->x = bundle->a_ip;
  std::vector<double> lu_work;
  for (int j = 0; j < np; ++j) {
    std::span<double> column(bundle->x.data() + static_cast<std::size_t>(j) * ni,
                             static_cast<std::size_t>(ni));
    bundle->lu.Solve(column, lu_work);
  }

  // S = A_pp - A_pi X  with A_pi = A_ip^T (the absorbed block is symmetric)
  // and A_pp diagonal (see stamp_g).
  bundle->s.assign(static_cast<std::size_t>(np) * static_cast<std::size_t>(np), 0.0);
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      double acc = (i == j) ? s_diag[static_cast<std::size_t>(i)] : 0.0;
      const double* col_i = bundle->a_ip.data() + static_cast<std::size_t>(i) * ni;
      const double* col_j = bundle->x.data() + static_cast<std::size_t>(j) * ni;
      for (int k = 0; k < ni; ++k) acc -= col_i[k] * col_j[k];
      bundle->s[static_cast<std::size_t>(i * np + j)] = acc;
    }
  }
  return bundle;
}

void ReducedSubnet::Eval(devices::EvalContext& ctx) const {
  const int ni = ni_;
  const int np = num_ports();
  // DC zeroes the dynamic branches exactly as for an unreduced capacitor
  // (a0 = 0, history = 0); a cap-free subnet normalizes to key 0.0 so the
  // whole run shares one conductance-only bundle per gshunt value.
  const double a0 = (ctx.transient && !capacitors_.empty()) ? ctx.a0 : 0.0;
  const auto bundle = BundleFor(a0, ctx.gshunt);

  Workspace& ws = LocalWorkspace();
  ws.r.assign(static_cast<std::size_t>(ni + np), 0.0);
  auto add_r = [&](int local, double value) {
    if (local >= 0) ws.r[static_cast<std::size_t>(local)] += value;
  };

  // Companion RHS of the absorbed devices.  A capacitor's equivalent current
  // is exactly its integrator history term (ieq = i - geq*v = hist), which is
  // iterate-independent — the whole local RHS is, so one interior solve per
  // Eval suffices for exact equivalence.
  for (std::size_t k = 0; k < capacitors_.size(); ++k) {
    const double ieq = ctx.state_hist[static_cast<std::size_t>(cap_state_[k])];
    add_r(capacitors_[k].a, -ieq);
    add_r(capacitors_[k].b, ieq);
  }
  for (const auto& s : sources_) {
    const double i = ctx.source_scale *
                     (ctx.transient ? s.waveform->Value(ctx.time) : s.waveform->DcValue());
    add_r(s.a, -i);
    add_r(s.b, i);
  }

  // w = A_ii^{-1} r_i
  ws.w.assign(ws.r.begin(), ws.r.begin() + ni);
  bundle->lu.Solve(std::span<double>(ws.w), ws.lu_work);

  ws.vp.resize(static_cast<std::size_t>(np));
  for (int j = 0; j < np; ++j) {
    ws.vp[static_cast<std::size_t>(j)] = ctx.V(ports_[static_cast<std::size_t>(j)]);
  }

  // Stamp the Schur block and the condensed port RHS.
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      ctx.AddJacobian(port_slots_[static_cast<std::size_t>(i * np + j)],
                      bundle->s[static_cast<std::size_t>(i * np + j)]);
    }
    double rp = ws.r[static_cast<std::size_t>(ni + i)];
    const double* col_i = bundle->a_ip.data() + static_cast<std::size_t>(i) * ni;
    for (int k = 0; k < ni; ++k) rp -= col_i[k] * ws.w[static_cast<std::size_t>(k)];
    ctx.AddRhs(ports_[static_cast<std::size_t>(i)], rp);
  }

  // Back-substitute the interior voltages of THIS iterate:
  //   v_i = A_ii^{-1} (r_i - A_ip v_p) = w - X v_p.
  ws.vi = ws.w;
  for (int j = 0; j < np; ++j) {
    const double vpj = ws.vp[static_cast<std::size_t>(j)];
    if (vpj == 0.0) continue;
    const double* col_j = bundle->x.data() + static_cast<std::size_t>(j) * ni;
    for (int k = 0; k < ni; ++k) ws.vi[static_cast<std::size_t>(k)] -= col_j[k] * vpj;
  }
  for (int k = 0; k < ni; ++k) {
    ctx.state_now[static_cast<std::size_t>(interior_state_[static_cast<std::size_t>(k)])] =
        ws.vi[static_cast<std::size_t>(k)];
  }

  // Absorbed capacitor charges follow the back-substituted voltages so the
  // integrator history they feed next step matches the unreduced run.
  auto local_v = [&](int local) {
    if (local < 0) return 0.0;
    return local < ni ? ws.vi[static_cast<std::size_t>(local)]
                      : ws.vp[static_cast<std::size_t>(local - ni)];
  };
  for (std::size_t k = 0; k < capacitors_.size(); ++k) {
    const double v = local_v(capacitors_[k].a) - local_v(capacitors_[k].b);
    ctx.IntegrateState(cap_state_[k], capacitors_[k].capacitance * v);
  }
}

void ReducedSubnet::StampFootprint(std::vector<int>& jacobian_slots,
                                   std::vector<int>& rhs_rows) const {
  jacobian_slots.insert(jacobian_slots.end(), port_slots_.begin(), port_slots_.end());
  // Port RHS rows are written only when the subnet carries a companion RHS.
  if (!capacitors_.empty() || !sources_.empty()) {
    rhs_rows.insert(rhs_rows.end(), ports_.begin(), ports_.end());
  }
}

void ReducedSubnet::CollectBreakpoints(double t0, double t1,
                                       std::vector<double>& out) const {
  for (const auto& s : sources_) s.device->CollectBreakpoints(t0, t1, out);
}

void ReducedSubnet::TerminalNodes(std::vector<int>& out) const {
  out.insert(out.end(), ports_.begin(), ports_.end());
}

void ReducedSubnet::RemapNodes(const std::vector<int>& map) {
  for (int& p : ports_) p = devices::RemapNode(map, p);
}

int ReducedSubnet::pattern_size() const {
  return num_ports() * num_ports();
}

std::size_t ReducedSubnet::bundle_count() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

}  // namespace wavepipe::reduce
