// ReducedSubnet: the exact Schur-complement equivalent of an eliminated
// linear-only subnetwork, packaged as a Device.
//
// The reduction pass (reduce.hpp) detects maximal subgraphs containing only
// resistors, capacitors and current sources, eliminates their interior nodes
// and replaces the absorbed devices with one ReducedSubnet per subgraph.  At
// every Eval() the subnet stamps the small dense port-coupling block
//
//   S      = A_pp - A_pi * A_ii^{-1} * A_ip          (Jacobian, ports x ports)
//   r_hat  = r_p  - A_pi * A_ii^{-1} * r_i           (RHS, port rows)
//
// where A is the subnetwork's own companion-model contribution G + a0*C and
// r its companion RHS.  Because Gaussian elimination of interior unknowns is
// exact for a linear block, the engine's solution on the surviving unknowns
// is algebraically identical to the unreduced system's — the reduction is a
// performance transform, not an approximation.  The eliminated interior
// voltages are back-substituted (v_i = A_ii^{-1} (r_i - A_ip v_p)) and
// written to state slots claimed during Bind(), which is how probes of
// eliminated nodes keep producing waveforms (engine::ProbeSet::EncodeState).
//
// Determinism: the interior matrix is assembled in fixed device order over
// interiors indexed by ascending original node id, and factored with
// SparseLu's kNatural ordering — the elimination order IS the ascending node
// id order, so reduced stamps are bit-identical across runs and threads.
//
// Factor bundles (factored A_ii + X = A_ii^{-1} A_ip + S) depend only on the
// pair (a0', gshunt); a bounded, mutex-protected cache keyed bit-exactly on
// that pair makes the per-Eval cost one triangular solve + two small dense
// products once the integrator settles on a step size.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "devices/device.hpp"
#include "devices/waveform.hpp"
#include "sparse/csc.hpp"

namespace wavepipe::reduce {

class ReducedSubnet final : public devices::Device {
 public:
  /// Local endpoint index convention used by the absorbed-device records:
  /// [0, num_interior) are interior nodes in ascending ORIGINAL node id,
  /// [num_interior, num_interior + num_ports) are ports in ascending original
  /// node id, and devices::kGround (-1) is ground.
  struct AbsorbedResistor {
    int a = -1, b = -1;
    double conductance = 0.0;
  };
  struct AbsorbedCapacitor {
    int a = -1, b = -1;
    double capacitance = 0.0;
  };
  struct AbsorbedSource {
    int a = -1, b = -1;                          ///< current flows a -> b
    const devices::Waveform* waveform = nullptr; ///< owned by `absorbed` below
    const devices::Device* device = nullptr;     ///< for CollectBreakpoints
  };

  /// `port_nodes` are node ids of the REBUILT circuit, ascending original id.
  /// `absorbed` keeps the eliminated device objects alive (the source records
  /// point into their waveforms); their node ids are stale and never used.
  ReducedSubnet(std::string name, std::vector<int> port_nodes, int num_interior,
                std::vector<AbsorbedResistor> resistors,
                std::vector<AbsorbedCapacitor> capacitors,
                std::vector<AbsorbedSource> sources,
                std::vector<std::unique_ptr<devices::Device>> absorbed);
  ~ReducedSubnet() override;

  // ---- Device interface -----------------------------------------------------
  void Bind(devices::Binder& binder) override;
  void DeclarePattern(devices::PatternBuilder& pattern) override;
  /// May throw SingularMatrixError when the interior block factorization hits
  /// a zero pivot (degenerate eliminated subnetwork, or the injected
  /// "reduce.singular" fault).  The Newton loops catch it and classify the
  /// solve as failed-singular — the same contract as a singular full-matrix
  /// pivot.
  void Eval(devices::EvalContext& ctx) const override;
  void StampFootprint(std::vector<int>& jacobian_slots,
                      std::vector<int>& rhs_rows) const override;
  void CollectBreakpoints(double t0, double t1, std::vector<double>& out) const override;
  void TerminalNodes(std::vector<int>& out) const override;
  void RemapNodes(const std::vector<int>& map) override;
  int pattern_size() const override;
  /// Interior voltages and absorbed-capacitor charges are back-substituted
  /// THROUGH the state history, not derived from x alone — schedulers that
  /// accept points solved over predicted histories must refresh them.
  bool states_depend_on_history() const override { return true; }

  // ---- reduction-pass queries -----------------------------------------------
  int num_ports() const { return static_cast<int>(ports_.size()); }
  int num_interior() const { return ni_; }
  std::size_t num_absorbed_devices() const { return absorbed_.size(); }
  /// Purely resistive (no capacitors, no sources): the equivalent is one
  /// constant conductance block — a single cached bundle serves every solve.
  bool is_static() const { return capacitors_.empty() && sources_.empty(); }

  /// State slot holding the back-substituted voltage of interior node k
  /// (ascending original node id).  Valid after Bind(); the reduction pass
  /// routes probes of eliminated nodes here via ProbeSet::EncodeState.
  int interior_state_slot(int k) const {
    return interior_state_[static_cast<std::size_t>(k)];
  }

  /// Factor bundles built so far (telemetry/tests).
  std::size_t bundle_count() const;

 private:
  struct Bundle;
  /// Bundle for the bit-exact key (a0', gshunt); builds and caches on miss.
  /// The cache is bounded (kMaxBundles, oldest evicted) and first-insert-wins
  /// so concurrent Evals agree on one (identical) bundle.
  std::shared_ptr<const Bundle> BundleFor(double a0, double gshunt) const;
  std::shared_ptr<const Bundle> ComputeBundle(double a0, double gshunt) const;

  static constexpr std::size_t kMaxBundles = 32;

  std::vector<int> ports_;  ///< rebuilt-circuit node ids, ascending original id
  int ni_ = 0;
  std::vector<AbsorbedResistor> resistors_;
  std::vector<AbsorbedCapacitor> capacitors_;
  std::vector<AbsorbedSource> sources_;
  std::vector<std::unique_ptr<devices::Device>> absorbed_;

  std::vector<int> cap_state_;       ///< per-capacitor charge slot (Bind)
  std::vector<int> interior_state_;  ///< per-interior-node voltage slot (Bind)
  std::vector<int> port_slots_;      ///< np x np Jacobian slots, row-major

  mutable std::mutex cache_mutex_;
  mutable std::vector<std::pair<std::pair<double, double>, std::shared_ptr<const Bundle>>>
      cache_;
};

}  // namespace wavepipe::reduce
