#include "reduce/reduce.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/trace.hpp"
#include "reduce/reduced_subnet.hpp"
#include "util/telemetry.hpp"

namespace wavepipe::reduce {

namespace {

/// One maximal linear-only component found by the boundary sweep.
struct Component {
  std::vector<int> interiors;  ///< eliminated nodes, ascending original id
  std::vector<int> ports;      ///< anchored neighbors, ascending original id
};

/// Local index of original node `old` in `comp` (see ReducedSubnet's
/// convention): interiors map to [0, ni), ports to [ni, ni+np), ground to -1.
int LocalIndex(const Component& comp, int old) {
  if (old < 0) return devices::kGround;
  const int ni = static_cast<int>(comp.interiors.size());
  auto it = std::lower_bound(comp.interiors.begin(), comp.interiors.end(), old);
  if (it != comp.interiors.end() && *it == old) {
    return static_cast<int>(it - comp.interiors.begin());
  }
  auto pt = std::lower_bound(comp.ports.begin(), comp.ports.end(), old);
  WP_ASSERT(pt != comp.ports.end() && *pt == old);
  return ni + static_cast<int>(pt - comp.ports.begin());
}

}  // namespace

void ReductionStats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("reduce.subnets", subnets);
  registry.Count("reduce.nodes_eliminated", nodes_eliminated);
  registry.Count("reduce.devices_absorbed", devices_absorbed);
  registry.Count("reduce.static_subnets", static_subnets);
  registry.Count("reduce.max_interior", max_interior);
  registry.Count("reduce.max_ports", max_ports);
  registry.Count("reduce.interior_expansions", interior_expansions);
}

ReductionResult Reduce(std::unique_ptr<engine::Circuit> circuit,
                       std::span<const int> keep_nodes) {
  WP_ASSERT(circuit && circuit->finalized());
  const int nn = circuit->num_nodes();
  const int nb = circuit->num_branches();
  const auto& devs = circuit->devices();

  // ---- classify: reducible devices vs anchors -------------------------------
  // A node listed by ANY non-reducible device (TerminalNodes covers terminal
  // and controlling nodes) is anchored and survives; so do keep_nodes.
  struct ReducibleRef {
    std::size_t index;
    int a, b;
  };
  std::vector<ReducibleRef> reducibles;
  std::vector<char> anchored(static_cast<std::size_t>(nn), 0);
  std::vector<int> terms;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    const devices::Device* d = devs[i].get();
    if (const auto* r = dynamic_cast<const devices::Resistor*>(d)) {
      reducibles.push_back({i, r->p(), r->n()});
    } else if (const auto* c = dynamic_cast<const devices::Capacitor*>(d)) {
      reducibles.push_back({i, c->p(), c->n()});
    } else if (const auto* s = dynamic_cast<const devices::CurrentSource*>(d)) {
      reducibles.push_back({i, s->p(), s->n()});
    } else {
      terms.clear();
      d->TerminalNodes(terms);
      for (int t : terms) {
        if (t >= 0) anchored[static_cast<std::size_t>(t)] = 1;
      }
    }
  }
  for (int u : keep_nodes) {
    if (u >= 0 && u < nn) anchored[static_cast<std::size_t>(u)] = 1;
  }

  // ---- adjacency over reducible devices -------------------------------------
  // Current-source endpoints count as edges: an absorbed source's non-interior
  // endpoint must end up a port of the SAME component so its companion current
  // lands in that subnet's condensed RHS.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(nn));
  for (const auto& ref : reducibles) {
    if (ref.a >= 0 && ref.b >= 0 && ref.a != ref.b) {
      adj[static_cast<std::size_t>(ref.a)].push_back(ref.b);
      adj[static_cast<std::size_t>(ref.b)].push_back(ref.a);
    }
  }

  // ---- connected components of non-anchored nodes ---------------------------
  // Seeds sweep ascending node ids and the per-component node lists are
  // sorted, so detection output is a pure function of the circuit.
  std::vector<int> comp_of(static_cast<std::size_t>(nn), -1);
  std::vector<Component> components;
  for (int seed = 0; seed < nn; ++seed) {
    if (anchored[static_cast<std::size_t>(seed)] || comp_of[static_cast<std::size_t>(seed)] >= 0) {
      continue;
    }
    const int id = static_cast<int>(components.size());
    Component comp;
    std::vector<int> frontier{seed};
    comp_of[static_cast<std::size_t>(seed)] = id;
    while (!frontier.empty()) {
      const int node = frontier.back();
      frontier.pop_back();
      comp.interiors.push_back(node);
      for (int nbr : adj[static_cast<std::size_t>(node)]) {
        if (anchored[static_cast<std::size_t>(nbr)]) {
          comp.ports.push_back(nbr);
        } else if (comp_of[static_cast<std::size_t>(nbr)] < 0) {
          comp_of[static_cast<std::size_t>(nbr)] = id;
          frontier.push_back(nbr);
        }
      }
    }
    std::sort(comp.interiors.begin(), comp.interiors.end());
    std::sort(comp.ports.begin(), comp.ports.end());
    comp.ports.erase(std::unique(comp.ports.begin(), comp.ports.end()), comp.ports.end());
    components.push_back(std::move(comp));
  }

  if (components.empty()) {
    // Nothing reducible: hand the ORIGINAL circuit back untouched so the
    // --reduce flag is bit-identical on decks with no linear interior.
    ReductionResult out;
    out.reduced = false;
    out.unknown_map.resize(static_cast<std::size_t>(nn + nb));
    std::iota(out.unknown_map.begin(), out.unknown_map.end(), 0);
    out.circuit = std::move(circuit);
    return out;
  }

  // ---- assign reducible devices: absorbed into a component or survivor ------
  struct Build {
    std::vector<ReducedSubnet::AbsorbedResistor> resistors;
    std::vector<ReducedSubnet::AbsorbedCapacitor> capacitors;
    std::vector<ReducedSubnet::AbsorbedSource> sources;
    std::vector<std::unique_ptr<devices::Device>> owned;
  };
  std::vector<Build> builds(components.size());
  std::vector<char> absorbed(devs.size(), 0);
  for (const auto& ref : reducibles) {
    const int ca = ref.a >= 0 ? comp_of[static_cast<std::size_t>(ref.a)] : -1;
    const int cb = ref.b >= 0 ? comp_of[static_cast<std::size_t>(ref.b)] : -1;
    const int cid = ca >= 0 ? ca : cb;
    if (cid < 0) continue;  // both endpoints anchored/ground: stays stamped
    WP_ASSERT(ca < 0 || cb < 0 || ca == cb);
    absorbed[ref.index] = 1;
    const Component& comp = components[static_cast<std::size_t>(cid)];
    Build& build = builds[static_cast<std::size_t>(cid)];
    const int la = LocalIndex(comp, ref.a);
    const int lb = LocalIndex(comp, ref.b);
    const devices::Device* d = devs[ref.index].get();
    if (const auto* r = dynamic_cast<const devices::Resistor*>(d)) {
      build.resistors.push_back({la, lb, r->conductance()});
    } else if (const auto* c = dynamic_cast<const devices::Capacitor*>(d)) {
      build.capacitors.push_back({la, lb, c->capacitance()});
    } else {
      const auto* s = dynamic_cast<const devices::CurrentSource*>(d);
      WP_ASSERT(s != nullptr);
      build.sources.push_back({la, lb, &s->waveform(), s});
    }
  }

  // ---- rebuild the circuit over the surviving node set ----------------------
  // Kept nodes are re-added in ascending original id, so survivors' indices
  // only shift down and the engine's unknown ordering stays deterministic.
  std::vector<int> node_map(static_cast<std::size_t>(nn), -1);
  auto rebuilt = std::make_unique<engine::Circuit>();
  for (int old = 0; old < nn; ++old) {
    if (comp_of[static_cast<std::size_t>(old)] >= 0) continue;  // eliminated
    node_map[static_cast<std::size_t>(old)] = rebuilt->AddNode(circuit->node_name(old));
  }

  auto old_devices = circuit->TakeDevices();
  for (std::size_t i = 0; i < old_devices.size(); ++i) {
    if (absorbed[i]) continue;
    old_devices[i]->RemapNodes(node_map);
    rebuilt->Add(std::move(old_devices[i]));
  }
  // Absorbed device objects migrate into their subnet (waveform ownership);
  // collected AFTER the survivor pass so each component keeps device order.
  for (const auto& ref : reducibles) {
    if (!absorbed[ref.index]) continue;
    const int cid = ref.a >= 0 && comp_of[static_cast<std::size_t>(ref.a)] >= 0
                        ? comp_of[static_cast<std::size_t>(ref.a)]
                        : comp_of[static_cast<std::size_t>(ref.b)];
    builds[static_cast<std::size_t>(cid)].owned.push_back(std::move(old_devices[ref.index]));
  }

  ReductionResult out;
  out.reduced = true;
  out.stats.subnets = components.size();

  std::vector<ReducedSubnet*> subnets;
  subnets.reserve(components.size());
  for (std::size_t c = 0; c < components.size(); ++c) {
    const Component& comp = components[c];
    Build& build = builds[c];
    std::vector<int> port_nodes;
    port_nodes.reserve(comp.ports.size());
    for (int port : comp.ports) {
      port_nodes.push_back(node_map[static_cast<std::size_t>(port)]);
    }
    auto subnet = std::make_unique<ReducedSubnet>(
        "reduce:" + circuit->node_name(comp.interiors.front()), std::move(port_nodes),
        static_cast<int>(comp.interiors.size()), std::move(build.resistors),
        std::move(build.capacitors), std::move(build.sources), std::move(build.owned));
    out.stats.nodes_eliminated += comp.interiors.size();
    out.stats.devices_absorbed += subnet->num_absorbed_devices();
    if (subnet->is_static()) ++out.stats.static_subnets;
    out.stats.max_interior = std::max<std::uint64_t>(out.stats.max_interior, comp.interiors.size());
    out.stats.max_ports = std::max<std::uint64_t>(out.stats.max_ports, comp.ports.size());
    subnets.push_back(rebuilt->Add(std::move(subnet)));
  }
  rebuilt->Finalize();

  // ---- original-unknown translation table -----------------------------------
  out.unknown_map.assign(static_cast<std::size_t>(nn + nb), devices::kGround);
  for (int old = 0; old < nn; ++old) {
    const int cid = comp_of[static_cast<std::size_t>(old)];
    if (cid < 0) {
      out.unknown_map[static_cast<std::size_t>(old)] = node_map[static_cast<std::size_t>(old)];
    } else {
      const Component& comp = components[static_cast<std::size_t>(cid)];
      const int k = LocalIndex(comp, old);
      out.unknown_map[static_cast<std::size_t>(old)] = engine::ProbeSet::EncodeState(
          subnets[static_cast<std::size_t>(cid)]->interior_state_slot(k));
    }
  }
  // Branch ordinals are preserved: absorbed devices never claim branches and
  // survivors keep their relative order, so original branch j is rebuilt
  // branch j — only the node-count offset changes.
  WP_ASSERT(rebuilt->num_branches() == nb);
  for (int j = 0; j < nb; ++j) {
    out.unknown_map[static_cast<std::size_t>(nn + j)] = rebuilt->num_nodes() + j;
  }

  out.circuit = std::move(rebuilt);
  return out;
}

std::size_t RemapSpec(const ReductionResult& result, engine::TransientSpec& spec) {
  std::size_t expansions = 0;
  for (int& u : spec.probes.unknowns) {
    if (u < 0) continue;  // ground probes pass through
    const int mapped = result.unknown_map[static_cast<std::size_t>(u)];
    if (engine::ProbeSet::IsStateProbe(mapped)) ++expansions;
    u = mapped;
  }
  for (auto& ic : spec.initial_conditions) {
    if (ic.first >= 0) {
      ic.first = result.unknown_map[static_cast<std::size_t>(ic.first)];
    }
  }
  return expansions;
}

}  // namespace wavepipe::reduce
