// Parameterized benchmark-circuit generators.
//
// These stand in for the proprietary netlists of the paper's evaluation (see
// DESIGN.md, "Environment substitutions"): the same circuit classes —
// linear interconnect grids, digital gate chains, oscillators, rectifiers,
// analog amplifier stages — with sizes as knobs so experiments sweep them.
// Every generator returns a finalized circuit plus the transient window it
// is meant to be simulated over.
#pragma once

#include <memory>
#include <string>

#include "devices/mosfet.hpp"
#include "engine/circuit.hpp"
#include "engine/transient.hpp"

namespace wavepipe::circuits {

struct GeneratedCircuit {
  std::unique_ptr<engine::Circuit> circuit;
  std::string name;
  std::string kind;  ///< "linear", "digital", "analog", or "mixed"
  engine::TransientSpec spec;
};

/// Generic ~1um CMOS models used by all MOS-based generators.
devices::MosfetModel DefaultNmos();
devices::MosfetModel DefaultPmos();

/// Series RC ladder (`stages` sections) driven by a PULSE voltage source:
/// the canonical linear transmission-line stand-in.
GeneratedCircuit MakeRcLadder(int stages, double r_ohm = 100.0, double c_farad = 1e-12);

/// rows x cols RC mesh: resistive grid, capacitor to ground at every node,
/// a VDD source at the corner and PULSE current loads sprinkled across the
/// grid (seeded) — a small power-delivery network.
GeneratedCircuit MakeRcMesh(int rows, int cols, unsigned seed = 1,
                            double r_ohm = 10.0, double c_farad = 0.5e-12,
                            int num_loads = -1);

/// Power-delivery grid at partitioning scale: an RC mesh with a tighter
/// resistive fabric (1 ohm segments), 1 pF decap per node and one switching
/// load per ~256 nodes.  Same topology as MakeRcMesh, renamed and re-tuned
/// so domain-decomposition experiments can ask for "powergrid3200x32"
/// (102,400 unknowns) without disturbing the rcmesh benchmark points.
/// Elongated aspect ratios (rows >> cols) keep the row-major numbering's
/// natural stripe separators `cols` wide, which is what makes the
/// interface block small relative to the pieces.
GeneratedCircuit MakePowerGrid(int rows, int cols, unsigned seed = 1);

/// N-stage (odd) CMOS ring oscillator with explicit load capacitors and a
/// startup kick current pulse on stage 0.
GeneratedCircuit MakeRingOscillator(int stages, double vdd = 2.5, double cload = 5e-15);

/// CMOS inverter chain driven by a PULSE clock, load capacitor per stage —
/// the "digital gate chain" workload.
GeneratedCircuit MakeInverterChain(int stages, double vdd = 2.5, double cload = 10e-15);

/// CMOS inverter chain whose stage-to-stage wires are parasitic RC ladders
/// (`taps` R/C sections per wire): the linear-subnetwork-reduction workload.
/// Every ladder interior node touches only resistors and capacitors, so
/// --reduce eliminates taps-1 nodes per wire while the MOSFET-anchored stage
/// nodes survive as ports.  The probe set includes a mid-ladder interior node
/// to exercise back-substituted interior expansion.
GeneratedCircuit MakeParasiticLadder(int stages, int taps, double vdd = 2.5,
                                     double r_ohm = 50.0, double c_farad = 2e-15);

/// Full-wave diode bridge rectifier with RC smoothing, driven by a SIN
/// source; optionally `ladder_sections` of RC filtering after the bridge.
GeneratedCircuit MakeDiodeRectifier(int ladder_sections = 4, double freq = 1e6);

/// Chain of common-source MOS amplifier stages, RC-coupled, SIN input —
/// the "analog" workload.
GeneratedCircuit MakeMosAmplifierChain(int stages, double freq = 10e6);

/// Binary clock H-tree of depth `levels`: RC wire segments with a CMOS
/// buffer (two cascaded inverters) at every branch point, PULSE clock root,
/// leaf load capacitors.  Mixed digital/interconnect workload.
GeneratedCircuit MakeClockTree(int levels, double vdd = 2.5);

/// All paper-scale benchmark circuits (Table 1 set), by reconstruction.
std::vector<GeneratedCircuit> MakeBenchmarkSuite();

}  // namespace wavepipe::circuits
