#include "circuits/generators.hpp"

#include <cmath>

#include "devices/diode.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavepipe::circuits {

using devices::Capacitor;
using devices::CurrentSource;
using devices::DcWaveform;
using devices::Diode;
using devices::DiodeModel;
using devices::Mosfet;
using devices::MosfetModel;
using devices::PulseWaveform;
using devices::Resistor;
using devices::SinWaveform;
using devices::VoltageSource;
using engine::Circuit;
using engine::ProbeSet;

namespace {

/// Adds a CMOS inverter (PMOS + NMOS) between `in` and `out`.
void AddInverter(Circuit& c, const std::string& tag, int in, int out, int vdd,
                 const MosfetModel& nmos, const MosfetModel& pmos) {
  // PMOS: drain=out gate=in source=vdd bulk=vdd; NMOS mirrored to ground.
  c.Emplace<Mosfet>("mp_" + tag, out, in, vdd, vdd, pmos, 4e-6, 1e-6);
  c.Emplace<Mosfet>("mn_" + tag, out, in, devices::kGround, devices::kGround, nmos, 2e-6,
                    1e-6);
}

ProbeSet NamedProbes(const Circuit& c, std::initializer_list<std::string> names) {
  ProbeSet probes;
  for (const auto& n : names) {
    probes.unknowns.push_back(c.NodeIndex(n));
    probes.names.push_back(n);
  }
  return probes;
}

}  // namespace

MosfetModel DefaultNmos() {
  MosfetModel m;
  m.name = "nmos_generic";
  m.type = 1;
  m.vto = 0.7;
  m.kp = 120e-6;
  m.gamma = 0.45;
  m.phi = 0.65;
  m.lambda = 0.04;
  m.tox = 10e-9;
  m.cgso = 0.3e-9;
  m.cgdo = 0.3e-9;
  return m;
}

MosfetModel DefaultPmos() {
  MosfetModel m;
  m.name = "pmos_generic";
  m.type = -1;
  m.vto = -0.8;
  m.kp = 40e-6;
  m.gamma = 0.5;
  m.phi = 0.65;
  m.lambda = 0.05;
  m.tox = 10e-9;
  m.cgso = 0.3e-9;
  m.cgdo = 0.3e-9;
  return m;
}

GeneratedCircuit MakeRcLadder(int stages, double r_ohm, double c_farad) {
  WP_ASSERT(stages >= 1);
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;

  const int in = c.AddNode("in");
  int prev = in;
  for (int i = 1; i <= stages; ++i) {
    const int node = c.AddNode("n" + std::to_string(i));
    c.Emplace<Resistor>("r" + std::to_string(i), prev, node, r_ohm);
    c.Emplace<Capacitor>("c" + std::to_string(i), node, devices::kGround, c_farad);
    prev = node;
  }
  const double tau = r_ohm * c_farad * stages * stages / 2.0;  // Elmore-ish
  const double tstop = 20.0 * tau;
  c.Emplace<VoltageSource>(
      "vin", in, devices::kGround,
      std::make_unique<PulseWaveform>(0.0, 1.0, 0.05 * tstop, tau / 20, tau / 20,
                                      0.45 * tstop, tstop * 2));
  c.Finalize();

  GeneratedCircuit out;
  out.name = "rcladder" + std::to_string(stages);
  out.kind = "linear";
  out.spec.tstart = 0.0;
  out.spec.tstop = tstop;
  out.spec.tstep = tstop / 200.0;
  out.spec.probes = NamedProbes(c, {"in", "n" + std::to_string(stages)});
  out.circuit = std::move(circuit);
  return out;
}

GeneratedCircuit MakeRcMesh(int rows, int cols, unsigned seed, double r_ohm, double c_farad,
                            int num_loads) {
  WP_ASSERT(rows >= 2 && cols >= 2);
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;
  util::Rng rng(seed);

  auto node_name = [](int r, int col) {
    return "g" + std::to_string(r) + "_" + std::to_string(col);
  };
  // Grid nodes and resistive fabric.
  std::vector<int> nodes(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int col = 0; col < cols; ++col) {
      nodes[static_cast<std::size_t>(r) * cols + col] = c.AddNode(node_name(r, col));
    }
  }
  int res_id = 0;
  for (int r = 0; r < rows; ++r) {
    for (int col = 0; col < cols; ++col) {
      const int here = nodes[static_cast<std::size_t>(r) * cols + col];
      if (col + 1 < cols) {
        c.Emplace<Resistor>("rh" + std::to_string(res_id++), here,
                            nodes[static_cast<std::size_t>(r) * cols + col + 1], r_ohm);
      }
      if (r + 1 < rows) {
        c.Emplace<Resistor>("rv" + std::to_string(res_id++), here,
                            nodes[static_cast<std::size_t>(r + 1) * cols + col], r_ohm);
      }
      c.Emplace<Capacitor>("cg" + std::to_string(here), here, devices::kGround, c_farad);
    }
  }
  // Supply at the corner through a small spreading resistance.
  const int vddnode = c.AddNode("vddpin");
  c.Emplace<VoltageSource>("vdd", vddnode, devices::kGround,
                           std::make_unique<DcWaveform>(1.8));
  c.Emplace<Resistor>("rspread", vddnode, nodes[0], r_ohm / 10.0);

  // Switching current loads (PULSE) at random grid nodes.
  const double t_unit = r_ohm * c_farad * rows * cols;  // grid time constant scale
  const double tstop = 60.0 * t_unit;
  if (num_loads < 0) num_loads = std::max(2, rows * cols / 16);
  for (int k = 0; k < num_loads; ++k) {
    const int target = nodes[rng.NextBelow(nodes.size())];
    const double i_peak = rng.Uniform(0.5e-3, 3e-3);
    const double delay = rng.Uniform(0.05, 0.4) * tstop;
    const double width = rng.Uniform(0.05, 0.2) * tstop;
    const double period = rng.Uniform(0.3, 0.6) * tstop;
    c.Emplace<CurrentSource>(
        "iload" + std::to_string(k), target, devices::kGround,
        std::make_unique<PulseWaveform>(0.0, i_peak, delay, width / 10, width / 10, width,
                                        period));
  }
  c.Finalize();

  GeneratedCircuit out;
  out.name = "rcmesh" + std::to_string(rows) + "x" + std::to_string(cols);
  out.kind = "linear";
  out.spec.tstart = 0.0;
  out.spec.tstop = tstop;
  out.spec.tstep = tstop / 200.0;
  out.spec.probes = NamedProbes(
      c, {node_name(0, 0), node_name(rows / 2, cols / 2), node_name(rows - 1, cols - 1)});
  out.circuit = std::move(circuit);
  return out;
}

GeneratedCircuit MakePowerGrid(int rows, int cols, unsigned seed) {
  GeneratedCircuit grid =
      MakeRcMesh(rows, cols, seed, /*r_ohm=*/1.0, /*c_farad=*/1e-12,
                 /*num_loads=*/std::max(4, rows * cols / 256));
  grid.name = "powergrid" + std::to_string(rows) + "x" + std::to_string(cols);
  return grid;
}

GeneratedCircuit MakeRingOscillator(int stages, double vdd, double cload) {
  WP_ASSERT(stages >= 3 && stages % 2 == 1);
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;
  const MosfetModel nmos = DefaultNmos();
  const MosfetModel pmos = DefaultPmos();

  const int vddnode = c.AddNode("vdd");
  c.Emplace<VoltageSource>("vdd", vddnode, devices::kGround,
                           std::make_unique<DcWaveform>(vdd));
  std::vector<int> taps(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) taps[i] = c.AddNode("s" + std::to_string(i));
  for (int i = 0; i < stages; ++i) {
    const int in = taps[i];
    const int out_node = taps[(i + 1) % stages];
    AddInverter(c, std::to_string(i), in, out_node, vddnode, nmos, pmos);
    c.Emplace<Capacitor>("cl" + std::to_string(i), out_node, devices::kGround, cload);
  }
  // Startup kick: short current pulse pulls stage 0 away from the metastable
  // mid-rail operating point the DC solve finds for a symmetric ring.
  c.Emplace<CurrentSource>(
      "ikick", devices::kGround, taps[0],
      std::make_unique<PulseWaveform>(0.0, 200e-6, 10e-12, 5e-12, 5e-12, 100e-12, 1.0));
  c.Finalize();

  // Rough stage delay for scaling the window: C·Vdd / Idsat.
  const double idsat = 0.5 * nmos.kp * 2.0 * (vdd - nmos.vto) * (vdd - nmos.vto);
  const double stage_delay = (cload + 15e-15) * vdd / idsat;
  const double period = 2.0 * stages * stage_delay;

  GeneratedCircuit out;
  out.name = "ringosc" + std::to_string(stages);
  out.kind = "analog";
  out.spec.tstart = 0.0;
  out.spec.tstop = 15.0 * period;
  out.spec.tstep = period / 40.0;
  out.spec.probes = NamedProbes(c, {"s0", "s1"});
  out.circuit = std::move(circuit);
  return out;
}

GeneratedCircuit MakeInverterChain(int stages, double vdd, double cload) {
  WP_ASSERT(stages >= 1);
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;
  const MosfetModel nmos = DefaultNmos();
  const MosfetModel pmos = DefaultPmos();

  const int vddnode = c.AddNode("vdd");
  c.Emplace<VoltageSource>("vdd", vddnode, devices::kGround,
                           std::make_unique<DcWaveform>(vdd));

  const double idsat = 0.5 * nmos.kp * 2.0 * (vdd - nmos.vto) * (vdd - nmos.vto);
  const double stage_delay = (cload + 15e-15) * vdd / idsat;
  const double period = std::max(40.0 * stage_delay, 4.0 * stages * stage_delay);

  const int in = c.AddNode("in");
  c.Emplace<VoltageSource>(
      "vin", in, devices::kGround,
      std::make_unique<PulseWaveform>(0.0, vdd, period / 10, period / 100, period / 100,
                                      period * 0.4, period));
  int prev = in;
  for (int i = 0; i < stages; ++i) {
    const int node = c.AddNode("x" + std::to_string(i));
    AddInverter(c, std::to_string(i), prev, node, vddnode, nmos, pmos);
    c.Emplace<Capacitor>("cl" + std::to_string(i), node, devices::kGround, cload);
    prev = node;
  }
  c.Finalize();

  GeneratedCircuit out;
  out.name = "invchain" + std::to_string(stages);
  out.kind = "digital";
  out.spec.tstart = 0.0;
  out.spec.tstop = 2.0 * period;
  out.spec.tstep = period / 100.0;
  out.spec.probes = NamedProbes(c, {"in", "x" + std::to_string(stages - 1)});
  out.circuit = std::move(circuit);
  return out;
}

GeneratedCircuit MakeParasiticLadder(int stages, int taps, double vdd, double r_ohm,
                                     double c_farad) {
  WP_ASSERT(stages >= 1 && taps >= 2);
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;
  const MosfetModel nmos = DefaultNmos();
  const MosfetModel pmos = DefaultPmos();

  const int vddnode = c.AddNode("vdd");
  c.Emplace<VoltageSource>("vdd", vddnode, devices::kGround,
                           std::make_unique<DcWaveform>(vdd));

  const double idsat = 0.5 * nmos.kp * 2.0 * (vdd - nmos.vto) * (vdd - nmos.vto);
  const double wire_tau = r_ohm * c_farad * taps * taps / 2.0;  // Elmore-ish
  const double stage_delay = (taps * c_farad + 15e-15) * vdd / idsat + wire_tau;
  const double period = std::max(40.0 * stage_delay, 4.0 * stages * stage_delay);

  const int in = c.AddNode("in");
  c.Emplace<VoltageSource>(
      "vin", in, devices::kGround,
      std::make_unique<PulseWaveform>(0.0, vdd, period / 10, period / 100, period / 100,
                                      period * 0.4, period));
  int prev = in;
  for (int i = 0; i < stages; ++i) {
    const std::string tag = std::to_string(i);
    const int drive = c.AddNode("x" + tag);
    AddInverter(c, tag, prev, drive, vddnode, nmos, pmos);
    // Parasitic RC ladder from this stage's output to the next stage's input.
    // The `taps - 1` mid-ladder nodes (w<i>_<k>) see only R/C devices, so the
    // reduction pass eliminates all of them; `drive` and the far end remain
    // anchored by the MOSFETs.
    int node = drive;
    for (int k = 1; k <= taps; ++k) {
      const int next = c.AddNode("w" + tag + "_" + std::to_string(k));
      c.Emplace<Resistor>("rw" + tag + "_" + std::to_string(k), node, next, r_ohm);
      c.Emplace<Capacitor>("cw" + tag + "_" + std::to_string(k), next, devices::kGround,
                           c_farad);
      node = next;
    }
    prev = node;
  }
  c.Finalize();

  GeneratedCircuit out;
  out.name = "parladder" + std::to_string(stages) + "x" + std::to_string(taps);
  out.kind = "mixed";
  out.spec.tstart = 0.0;
  out.spec.tstop = 2.0 * period;
  out.spec.tstep = period / 100.0;
  // Probe a mid-ladder INTERIOR node on purpose: under --reduce its waveform
  // comes from back-substitution, which is what the parity suites compare.
  out.spec.probes =
      NamedProbes(c, {"in", "x0", "w0_" + std::to_string(std::max(1, taps / 2)),
                      "w" + std::to_string(stages - 1) + "_" + std::to_string(taps)});
  out.circuit = std::move(circuit);
  return out;
}

GeneratedCircuit MakeDiodeRectifier(int ladder_sections, double freq) {
  WP_ASSERT(ladder_sections >= 0);
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;

  DiodeModel dm;
  dm.name = "dbridge";
  dm.is = 1e-14;
  dm.cj0 = 2e-12;
  dm.tt = 5e-9;

  const int acp = c.AddNode("acp");
  const int acn = c.AddNode("acn");
  const int outp = c.AddNode("outp");
  const int outn = c.AddNode("outn");
  c.Emplace<VoltageSource>("vac", acp, acn, std::make_unique<SinWaveform>(0.0, 5.0, freq));
  // Bridge.
  c.Emplace<Diode>("d1", acp, outp, dm);
  c.Emplace<Diode>("d2", acn, outp, dm);
  c.Emplace<Diode>("d3", outn, acp, dm);
  c.Emplace<Diode>("d4", outn, acn, dm);
  // Ground reference on the negative rail.
  c.Emplace<Resistor>("rref", outn, devices::kGround, 1.0);
  // Smoothing cap + load.
  c.Emplace<Capacitor>("csmooth", outp, outn, 100e-9);
  c.Emplace<Resistor>("rload", outp, outn, 2e3);
  // Optional RC post-filter ladder.
  int prev = outp;
  for (int i = 0; i < ladder_sections; ++i) {
    const int node = c.AddNode("f" + std::to_string(i));
    c.Emplace<Resistor>("rf" + std::to_string(i), prev, node, 50.0);
    c.Emplace<Capacitor>("cf" + std::to_string(i), node, outn, 20e-9);
    prev = node;
  }
  c.Finalize();

  GeneratedCircuit out;
  out.name = "rectifier" + std::to_string(ladder_sections);
  out.kind = "mixed";
  out.spec.tstart = 0.0;
  out.spec.tstop = 6.0 / freq;
  out.spec.tstep = 0.01 / freq;
  out.spec.probes =
      ladder_sections > 0
          ? NamedProbes(c, {"acp", "outp", "f" + std::to_string(ladder_sections - 1)})
          : NamedProbes(c, {"acp", "outp"});
  out.circuit = std::move(circuit);
  return out;
}

GeneratedCircuit MakeMosAmplifierChain(int stages, double freq) {
  WP_ASSERT(stages >= 1);
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;
  const MosfetModel nmos = DefaultNmos();
  const double vdd = 3.3;

  const int vddnode = c.AddNode("vdd");
  c.Emplace<VoltageSource>("vdd", vddnode, devices::kGround,
                           std::make_unique<DcWaveform>(vdd));
  const int in = c.AddNode("in");
  c.Emplace<VoltageSource>("vin", in, devices::kGround,
                           std::make_unique<SinWaveform>(0.0, 10e-3, freq));

  int prev = in;
  for (int i = 0; i < stages; ++i) {
    const std::string tag = std::to_string(i);
    const int gate = c.AddNode("gate" + tag);
    const int drain = c.AddNode("amp" + tag);
    // AC coupling into a resistive bias divider.
    c.Emplace<Capacitor>("cc" + tag, prev, gate, 10e-12);
    c.Emplace<Resistor>("rb1" + tag, vddnode, gate, 300e3);
    c.Emplace<Resistor>("rb2" + tag, gate, devices::kGround, 100e3);
    // Common-source stage with source degeneration.
    const int source = c.AddNode("src" + tag);
    c.Emplace<Resistor>("rd" + tag, vddnode, drain, 10e3);
    c.Emplace<Resistor>("rs" + tag, source, devices::kGround, 1e3);
    c.Emplace<Capacitor>("cs" + tag, source, devices::kGround, 50e-12);
    c.Emplace<Mosfet>("m" + tag, drain, gate, source, devices::kGround, nmos, 20e-6, 2e-6);
    c.Emplace<Capacitor>("cl" + tag, drain, devices::kGround, 0.5e-12);
    prev = drain;
  }
  c.Finalize();

  GeneratedCircuit out;
  out.name = "amp" + std::to_string(stages);
  out.kind = "analog";
  out.spec.tstart = 0.0;
  out.spec.tstop = 8.0 / freq;
  out.spec.tstep = 0.01 / freq;
  out.spec.probes = NamedProbes(c, {"in", "amp" + std::to_string(stages - 1)});
  out.circuit = std::move(circuit);
  return out;
}

GeneratedCircuit MakeClockTree(int levels, double vdd) {
  WP_ASSERT(levels >= 1 && levels <= 10);
  auto circuit = std::make_unique<Circuit>();
  Circuit& c = *circuit;
  const MosfetModel nmos = DefaultNmos();
  const MosfetModel pmos = DefaultPmos();

  const int vddnode = c.AddNode("vdd");
  c.Emplace<VoltageSource>("vdd", vddnode, devices::kGround,
                           std::make_unique<DcWaveform>(vdd));

  const double clock_period = 4e-9;
  const int clk = c.AddNode("clk");
  c.Emplace<VoltageSource>(
      "vclk", clk, devices::kGround,
      std::make_unique<PulseWaveform>(0.0, vdd, 0.2e-9, 0.1e-9, 0.1e-9,
                                      clock_period / 2 - 0.1e-9, clock_period));

  int wire_id = 0;
  // Recursive binary fan-out: each level adds an RC wire + buffer per branch.
  struct Frame {
    int node;
    int level;
    std::string path;
  };
  std::vector<Frame> stack{{clk, 0, "r"}};
  int last_leaf = -1;
  std::string last_leaf_name;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.level == levels) {
      c.Emplace<Capacitor>("cleaf_" + f.path, f.node, devices::kGround, 20e-15);
      last_leaf = f.node;
      last_leaf_name = "b_" + f.path;  // buffer output feeding this leaf
      continue;
    }
    for (int child = 0; child < 2; ++child) {
      const std::string path = f.path + std::to_string(child);
      // RC wire segment.
      const int mid = c.AddNode("w_" + path);
      c.Emplace<Resistor>("rw" + std::to_string(wire_id), f.node, mid, 150.0);
      c.Emplace<Capacitor>("cw" + std::to_string(wire_id), mid, devices::kGround, 8e-15);
      ++wire_id;
      // Two cascaded inverters = non-inverting buffer.
      const int inv1 = c.AddNode("i_" + path);
      const int buf = c.AddNode("b_" + path);
      AddInverter(c, "a" + path, mid, inv1, vddnode, nmos, pmos);
      AddInverter(c, "b" + path, inv1, buf, vddnode, nmos, pmos);
      stack.push_back({buf, f.level + 1, path});
    }
  }
  c.Finalize();

  GeneratedCircuit out;
  out.name = "clocktree" + std::to_string(levels);
  out.kind = "digital";
  out.spec.tstart = 0.0;
  out.spec.tstop = 3.0 * clock_period;
  out.spec.tstep = clock_period / 100.0;
  out.spec.probes = NamedProbes(c, {"clk", last_leaf_name});
  (void)last_leaf;
  out.circuit = std::move(circuit);
  return out;
}

std::vector<GeneratedCircuit> MakeBenchmarkSuite() {
  std::vector<GeneratedCircuit> suite;
  suite.push_back(MakeRcMesh(16, 16));
  suite.push_back(MakeRcLadder(200));
  suite.push_back(MakeRingOscillator(9));
  suite.push_back(MakeInverterChain(20));
  suite.push_back(MakeDiodeRectifier(4));
  suite.push_back(MakeMosAmplifierChain(3));
  suite.push_back(MakeClockTree(3));
  return suite;
}

}  // namespace wavepipe::circuits
