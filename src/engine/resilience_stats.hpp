// Resilience counter block (run_stats.v1.2 additive groups) and the
// breaker-guarded feature lanes.  Split from engine/resilience.hpp so that
// every engine's result struct can embed the stats without pulling in the
// checkpoint/watchdog machinery (transient.hpp includes this; resilience.hpp
// includes transient.hpp).
#pragma once

#include <array>
#include <cstdint>

namespace wavepipe::util::telemetry {
class CounterRegistry;
}  // namespace wavepipe::util::telemetry

namespace wavepipe::engine {

/// Feature lanes guarded by circuit-breakers, in export order.
enum class Feature {
  kChord = 0,
  kBypass,
  kPartition,
  kParallelFactor,
  kParallelAssembly,
};
inline constexpr int kNumFeatures = 5;
const char* FeatureName(Feature feature);

/// Mask bit for BreakerBoard attribution.
inline std::uint64_t FeatureBit(Feature feature) {
  return std::uint64_t{1} << static_cast<int>(feature);
}

struct ResilienceStats {
  // ckpt.* — checkpoint activity of THIS process (a resumed run counts only
  // its own writes, so these keys are excluded from resume-parity diffs).
  std::uint64_t ckpt_writes = 0;
  std::uint64_t ckpt_write_failures = 0;
  std::uint64_t ckpt_bytes_last = 0;
  std::uint64_t ckpt_generation = 0;
  std::uint64_t ckpt_resumed = 0;  ///< 1 when the run started from --resume

  // watchdog.*
  std::uint64_t watchdog_stalls = 0;       ///< no-progress windows detected
  std::uint64_t watchdog_escalations = 0;  ///< stalls that aborted the run

  // resilience.*
  std::uint64_t breaker_trips = 0;     ///< closed -> open transitions
  std::uint64_t breaker_retrips = 0;   ///< half-open probe failed, re-opened
  std::uint64_t breaker_reprobes = 0;  ///< open -> half-open transitions
  std::array<std::uint64_t, kNumFeatures> feature_trips{};
  std::uint64_t budget_exhausted = 0;  ///< 1 when the governor ended the run

  /// Registers the ckpt./watchdog./resilience. groups (additive tail of the
  /// run_stats schema — key ORDER here is part of the schema contract).
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;
};

}  // namespace wavepipe::engine
