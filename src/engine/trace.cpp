#include "engine/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wavepipe::engine {

ProbeSet ProbeSet::All(int num_unknowns) {
  ProbeSet out;
  out.unknowns.reserve(static_cast<std::size_t>(num_unknowns));
  for (int i = 0; i < num_unknowns; ++i) {
    out.unknowns.push_back(i);
    out.names.push_back("u" + std::to_string(i));
  }
  return out;
}

ProbeSet ProbeSet::FirstNodes(int num_nodes, int limit) {
  ProbeSet out;
  const int n = std::min(num_nodes, limit);
  for (int i = 0; i < n; ++i) {
    out.unknowns.push_back(i);
    out.names.push_back("v" + std::to_string(i));
  }
  return out;
}

void Trace::ReserveEstimate(double span, double hmin) {
  if (!(span > 0.0)) return;
  // span/hmin is a hard upper bound on accepted steps but off by orders of
  // magnitude in practice (hmin_ratio defaults to 1e-9 of the span); the cap
  // keeps the reservation proportional to a realistic long run instead.
  constexpr double kMaxReservedSamples = 4096.0;
  double estimate = kMaxReservedSamples;
  if (hmin > 0.0) estimate = std::min(span / hmin, kMaxReservedSamples);
  const auto samples = static_cast<std::size_t>(estimate);
  reserved_samples_ = samples;
  times_.reserve(times_.size() + samples);
  values_.reserve(values_.size() + samples * probes_.size());
}

void Trace::Record(double time, std::span<const double> full_solution) {
  Record(time, full_solution, {});
}

void Trace::Record(double time, std::span<const double> full_solution,
                   std::span<const double> states) {
  WP_ASSERT(times_.empty() || time > times_.back());
  times_.push_back(time);
  for (int u : probes_.unknowns) {
    if (u >= 0) {
      values_.push_back(full_solution[static_cast<std::size_t>(u)]);
    } else if (ProbeSet::IsStateProbe(u)) {
      // Back-substituted interior voltage living in a state slot (see
      // ProbeSet::EncodeState); requires the caller to pass the state vector.
      values_.push_back(states[static_cast<std::size_t>(ProbeSet::DecodeState(u))]);
    } else {
      values_.push_back(0.0);  // ground probe
    }
  }
}

void Trace::AppendProbeSample(double time, std::span<const double> probe_values) {
  WP_ASSERT(probe_values.size() == probes_.size());
  WP_ASSERT(times_.empty() || time > times_.back());
  times_.push_back(time);
  values_.insert(values_.end(), probe_values.begin(), probe_values.end());
}

double Trace::Interpolate(double t, std::size_t p) const {
  WP_ASSERT(!times_.empty());
  WP_ASSERT(p < probes_.size());
  if (t <= times_.front()) return value(0, p);
  if (t >= times_.back()) return value(times_.size() - 1, p);
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return value(lo, p) + f * (value(hi, p) - value(lo, p));
}

std::vector<std::pair<double, double>> Trace::Series(std::size_t p) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i) out.emplace_back(times_[i], value(i, p));
  return out;
}

double Trace::MaxDeviation(const Trace& a, const Trace& b, std::size_t p) {
  double worst = 0.0;
  for (double t : a.times_) worst = std::max(worst, std::abs(a.Interpolate(t, p) - b.Interpolate(t, p)));
  for (double t : b.times_) worst = std::max(worst, std::abs(a.Interpolate(t, p) - b.Interpolate(t, p)));
  return worst;
}

double Trace::MaxDeviationAll(const Trace& a, const Trace& b) {
  WP_ASSERT(a.probes_.size() == b.probes_.size());
  double worst = 0.0;
  for (std::size_t p = 0; p < a.probes_.size(); ++p) {
    worst = std::max(worst, MaxDeviation(a, b, p));
  }
  return worst;
}

}  // namespace wavepipe::engine
