// DC operating point with SPICE's continuation ladder:
//   1. direct Newton from the flat (all-zero) start,
//   2. gmin stepping (a shrinking shunt conductance on every node),
//   3. source stepping (ramping all independent sources from 0 to 100%).
#pragma once

#include <string>

#include "engine/history.hpp"
#include "engine/newton.hpp"
#include "engine/options.hpp"

namespace wavepipe::engine {

struct DcopResult {
  NewtonStats newton;
  std::string strategy;  ///< "direct", "gmin-stepping", or "source-stepping"
};

/// Solves the operating point into ctx.x / ctx.state_now.  Starts from the
/// guess already in ctx.x (zero it for a cold start).  Throws
/// ConvergenceError when every strategy fails.
///
/// `nodesets` (SPICE .ic): the listed node voltages are forced through a
/// 1-ohm clamp for a first solve, then the clamp is released and the
/// operating point re-solved from there — steering multi-stable circuits
/// into the requested state.
DcopResult SolveDcOperatingPoint(
    SolveContext& ctx, const SimOptions& options,
    std::span<const std::pair<int, double>> nodesets = {});

/// Wraps the converged operating point as the t = `time` history seed for a
/// transient run (qdot = 0: the operating point is an equilibrium).
SolutionPointPtr MakeDcSolutionPoint(const SolveContext& ctx, double time);

}  // namespace wavepipe::engine
