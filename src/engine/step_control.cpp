#include "engine/step_control.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wavepipe::engine {

void PredictSolution(const HistoryWindow& window, int points, double t_new,
                     std::span<double> out) {
  PredictField(window, points, t_new, &SolutionPoint::x, out);
}

SolutionPointPtr PredictPoint(const HistoryWindow& window, int points, double t_new) {
  WP_ASSERT(!window.empty());
  auto point = std::make_shared<SolutionPoint>();
  point->time = t_new;
  point->auxiliary = true;
  point->x.resize(window.back()->x.size());
  point->q.resize(window.back()->q.size());
  point->qdot.resize(window.back()->qdot.size());
  PredictField(window, points, t_new, &SolutionPoint::x, point->x);
  PredictField(window, points, t_new, &SolutionPoint::q, point->q);
  PredictField(window, points, t_new, &SolutionPoint::qdot, point->qdot);
  return point;
}

void PredictField(const HistoryWindow& window, int points, double t_new,
                  const std::vector<double> SolutionPoint::*field, std::span<double> out) {
  WP_ASSERT(!window.empty());
  const int m = std::min<int>(points, static_cast<int>(window.size()));
  WP_ASSERT(m >= 1);
  const std::size_t n = out.size();

  // Use the m newest points (ascending time): window[size-m .. size-1].
  const std::size_t base = window.size() - static_cast<std::size_t>(m);
  std::vector<double> times(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    times[i] = window[base + static_cast<std::size_t>(i)]->time;
    WP_ASSERT(((*window[base + static_cast<std::size_t>(i)]).*field).size() == n);
  }

  // Lagrange-basis extrapolation, vectorized over unknowns.  m is at most 4,
  // so the O(m^2) basis weights are negligible next to the O(m·n) sweep.
  std::fill(out.begin(), out.end(), 0.0);
  for (int i = 0; i < m; ++i) {
    double weight = 1.0;
    for (int j = 0; j < m; ++j) {
      if (j == i) continue;
      weight *= (t_new - times[j]) / (times[i] - times[j]);
    }
    const auto& xi = (*window[base + static_cast<std::size_t>(i)]).*field;
    for (std::size_t u = 0; u < n; ++u) out[u] += weight * xi[u];
  }
}

StepAssessment AssessStep(std::span<const double> solved, std::span<const double> predicted,
                          double h, bool lte_active, const StepControlParams& params) {
  WP_ASSERT(solved.size() == predicted.size());
  StepAssessment out;

  if (!lte_active) {
    out.accept = true;
    out.error = 0.0;
    out.h_next = h * params.growth_cap;
    return out;
  }

  out.error = SolutionWrmsDistance(solved, predicted, params) / params.trtol;
  out.accept = out.error <= 1.0;

  // Optimal-step rule; the tiny floor on error avoids div-by-zero blowup on
  // exactly-polynomial waveforms.
  const double exponent = -1.0 / (params.order + 1);
  double factor = params.safety * std::pow(std::max(out.error, 1e-10), exponent);
  factor = std::clamp(factor, params.min_shrink, params.growth_cap);
  if (!out.accept) factor = std::min(factor, params.reject_shrink);
  out.h_next = h * factor;
  return out;
}

double SolutionWrmsDistance(std::span<const double> a, std::span<const double> b,
                            const StepControlParams& params) {
  WP_ASSERT(a.size() == b.size());
  if (params.norm_unknowns >= 0) {
    a = a.subspan(0, static_cast<std::size_t>(params.norm_unknowns));
    b = b.subspan(0, static_cast<std::size_t>(params.norm_unknowns));
  }
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double tol =
        params.reltol * std::max(std::abs(a[i]), std::abs(b[i])) +
        (static_cast<int>(i) < params.num_nodes ? params.vntol : params.abstol);
    const double e = (a[i] - b[i]) / tol;
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace wavepipe::engine
